file(REMOVE_RECURSE
  "CMakeFiles/test_access_control.dir/test_access_control.cc.o"
  "CMakeFiles/test_access_control.dir/test_access_control.cc.o.d"
  "test_access_control"
  "test_access_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_access_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

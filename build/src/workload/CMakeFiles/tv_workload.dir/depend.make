# Empty dependencies file for tv_workload.
# This may be replaced when dependencies are built.

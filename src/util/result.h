#ifndef TIGERVECTOR_UTIL_RESULT_H_
#define TIGERVECTOR_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace tigervector {

// Result<T> carries either a value of type T or an error Status, in the
// style of arrow::Result. An OK Result always holds a value.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error Status keeps call sites
  // terse: `return value;` or `return Status::NotFound(...)`.
  Result(T value) : value_(std::move(value)) {}            // NOLINT
  Result(Status status) : status_(std::move(status)) {     // NOLINT
    assert(!status_.ok() && "OK Result must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Assigns the value of a Result expression to `lhs`, or returns its error.
#define TV_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value()

#define TV_ASSIGN_OR_RETURN(lhs, expr) \
  TV_ASSIGN_OR_RETURN_IMPL(TV_CONCAT(_tv_result_, __LINE__), lhs, expr)

#define TV_CONCAT_INNER(a, b) a##b
#define TV_CONCAT(a, b) TV_CONCAT_INNER(a, b)

}  // namespace tigervector

#endif  // TIGERVECTOR_UTIL_RESULT_H_

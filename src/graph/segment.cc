#include "graph/segment.h"

#include <algorithm>
#include <mutex>

namespace tigervector {

GraphSegment::GraphSegment(SegmentId id, VertexId base_vid, uint32_t capacity)
    : id_(id), base_vid_(base_vid), capacity_(capacity) {
  records_.resize(capacity);
  out_edges_.resize(capacity);
  in_edges_.resize(capacity);
}

Status GraphSegment::ApplyInsertVertex(VertexId vid, VertexTypeId vtype,
                                       std::vector<Value> attrs, Tid tid) {
  if (!InRange(vid)) return Status::InvalidArgument("vid out of segment range");
  std::unique_lock<std::shared_mutex> lock(mu_);
  VertexRecord& rec = records_[OffsetOf(vid)];
  if (rec.exists && rec.deleted_tid == kMaxTid) {
    return Status::AlreadyExists("vertex " + std::to_string(vid));
  }
  rec.type = vtype;
  rec.exists = true;
  rec.created_tid = tid;
  rec.deleted_tid = kMaxTid;
  rec.attrs = std::move(attrs);
  ++used_slots_;
  BumpVersion(tid);
  return Status::OK();
}

Status GraphSegment::ApplySetAttr(VertexId vid, uint16_t attr_idx, Value value,
                                  Tid tid) {
  if (!InRange(vid)) return Status::InvalidArgument("vid out of segment range");
  std::unique_lock<std::shared_mutex> lock(mu_);
  VertexRecord& rec = records_[OffsetOf(vid)];
  if (!rec.exists) return Status::NotFound("vertex " + std::to_string(vid));
  if (attr_idx >= rec.attrs.size()) {
    return Status::OutOfRange("attr index " + std::to_string(attr_idx));
  }
  attr_deltas_.push_back(AttrDelta{tid, OffsetOf(vid), attr_idx, std::move(value)});
  BumpVersion(tid);
  return Status::OK();
}

Status GraphSegment::ApplyDeleteVertex(VertexId vid, Tid tid) {
  if (!InRange(vid)) return Status::InvalidArgument("vid out of segment range");
  std::unique_lock<std::shared_mutex> lock(mu_);
  VertexRecord& rec = records_[OffsetOf(vid)];
  if (!rec.exists || rec.deleted_tid != kMaxTid) {
    return Status::NotFound("vertex " + std::to_string(vid));
  }
  rec.deleted_tid = tid;
  BumpVersion(tid);
  return Status::OK();
}

Status GraphSegment::ApplyAddEdge(VertexId src_vid, EdgeTypeId etype, VertexId peer,
                                  bool out, Tid tid) {
  if (!InRange(src_vid)) return Status::InvalidArgument("vid out of segment range");
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& list = out ? out_edges_[OffsetOf(src_vid)] : in_edges_[OffsetOf(src_vid)];
  list.push_back(EdgeRec{etype, peer, tid, kMaxTid});
  BumpVersion(tid);
  return Status::OK();
}

Status GraphSegment::ApplyDeleteEdge(VertexId src_vid, EdgeTypeId etype, VertexId peer,
                                     bool out, Tid tid) {
  if (!InRange(src_vid)) return Status::InvalidArgument("vid out of segment range");
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& list = out ? out_edges_[OffsetOf(src_vid)] : in_edges_[OffsetOf(src_vid)];
  for (EdgeRec& e : list) {
    if (e.etype == etype && e.peer == peer && e.deleted_tid == kMaxTid) {
      e.deleted_tid = tid;
      BumpVersion(tid);
      return Status::OK();
    }
  }
  return Status::NotFound("edge " + std::to_string(src_vid) + "->" +
                          std::to_string(peer));
}

bool GraphSegment::IsVisible(VertexId vid, Tid read_tid) const {
  if (!InRange(vid)) return false;
  std::shared_lock<std::shared_mutex> lock(mu_);
  const VertexRecord& rec = records_[OffsetOf(vid)];
  return rec.exists && rec.created_tid <= read_tid && rec.deleted_tid > read_tid;
}

int GraphSegment::VertexType(VertexId vid) const {
  if (!InRange(vid)) return -1;
  std::shared_lock<std::shared_mutex> lock(mu_);
  const VertexRecord& rec = records_[OffsetOf(vid)];
  if (!rec.exists) return -1;
  return rec.type;
}

Status GraphSegment::GetAttr(VertexId vid, uint16_t attr_idx, Tid read_tid,
                             Value* out) const {
  if (!InRange(vid)) return Status::InvalidArgument("vid out of segment range");
  std::shared_lock<std::shared_mutex> lock(mu_);
  const uint32_t offset = OffsetOf(vid);
  const VertexRecord& rec = records_[offset];
  if (!rec.exists || rec.created_tid > read_tid || rec.deleted_tid <= read_tid) {
    return Status::NotFound("vertex " + std::to_string(vid));
  }
  if (attr_idx >= rec.attrs.size()) {
    return Status::OutOfRange("attr index " + std::to_string(attr_idx));
  }
  // Latest visible delta wins over the snapshot (deltas are appended in
  // commit order, so scan backwards).
  for (auto it = attr_deltas_.rbegin(); it != attr_deltas_.rend(); ++it) {
    if (it->offset == offset && it->attr_idx == attr_idx && it->tid <= read_tid) {
      *out = it->value;
      return Status::OK();
    }
  }
  *out = rec.attrs[attr_idx];
  return Status::OK();
}

void GraphSegment::ForEachEdge(VertexId vid, EdgeTypeId etype, bool out, Tid read_tid,
                               const std::function<void(VertexId)>& fn) const {
  if (!InRange(vid)) return;
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto& list = out ? out_edges_[OffsetOf(vid)] : in_edges_[OffsetOf(vid)];
  for (const EdgeRec& e : list) {
    if (e.etype == etype && e.created_tid <= read_tid && e.deleted_tid > read_tid) {
      fn(e.peer);
    }
  }
}

void GraphSegment::ForEachVertex(int vtype, Tid read_tid,
                                 const std::function<void(VertexId)>& fn) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (uint32_t offset = 0; offset < capacity_; ++offset) {
    const VertexRecord& rec = records_[offset];
    if (!rec.exists || rec.created_tid > read_tid || rec.deleted_tid <= read_tid) {
      continue;
    }
    if (vtype >= 0 && rec.type != static_cast<VertexTypeId>(vtype)) continue;
    fn(base_vid_ + offset);
  }
}

size_t GraphSegment::Vacuum(Tid up_to_tid) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  size_t applied = 0;
  // Deltas are in commit order, so the last applied value per slot wins.
  auto it = attr_deltas_.begin();
  while (it != attr_deltas_.end() && it->tid <= up_to_tid) {
    records_[it->offset].attrs[it->attr_idx] = std::move(it->value);
    ++it;
    ++applied;
  }
  attr_deltas_.erase(attr_deltas_.begin(), it);
  // Physically drop old deleted edges (safe once no reader can hold a
  // read_tid below up_to_tid; the engine guarantees that before calling).
  for (auto* lists : {&out_edges_, &in_edges_}) {
    for (auto& list : *lists) {
      list.erase(std::remove_if(list.begin(), list.end(),
                                [up_to_tid](const EdgeRec& e) {
                                  return e.deleted_tid <= up_to_tid;
                                }),
                 list.end());
    }
  }
  // The fold itself changes no MVCC-visible state at or above up_to_tid,
  // but bumping keeps version-keyed caches conservatively fresh across
  // vacuum boundaries (commit/vacuum/merge all advance the version).
  BumpVersion(up_to_tid);
  return applied;
}

size_t GraphSegment::pending_attr_deltas() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return attr_deltas_.size();
}

uint32_t GraphSegment::used_slots() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return used_slots_;
}

}  // namespace tigervector

#ifndef TIGERVECTOR_EMBEDDING_EMBEDDING_SERVICE_H_
#define TIGERVECTOR_EMBEDDING_EMBEDDING_SERVICE_H_

#include <atomic>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "embedding/embedding_segment.h"
#include "graph/graph_store.h"
#include "util/result.h"

namespace tigervector {

class ThreadPool;

// A multi-attribute vector search request. `attrs` lists one or more
// (vertex type, embedding attribute) pairs; they must pass the embedding
// compatibility check (paper Sec. 4.1). The filter is evaluated over global
// vertex ids, so a predicate bitmap from the graph engine plugs in directly.
struct VectorSearchRequest {
  std::vector<std::pair<std::string, std::string>> attrs;
  const float* query = nullptr;
  size_t k = 10;
  size_t ef = 64;
  FilterView filter;
  Tid read_tid = kMaxTid;
  // Per-segment brute-force fallback threshold; 0 uses the service default.
  size_t bruteforce_threshold = 0;
  // Rerank multiple for quantized (SQ8) scans; 0 uses the process default.
  size_t rerank_factor = 0;
  // When non-null, only segments with segment_mask[seg_id % mask_size]
  // semantics... restricted to these segment ids (used by the MPP layer to
  // scope a request to one logical server's shard). Empty -> all segments.
  const std::vector<SegmentId>* segment_subset = nullptr;
  ThreadPool* pool = nullptr;  // intra-request segment parallelism
};

struct VectorSearchResult {
  std::vector<SearchHit> hits;  // ascending distance, global vids as labels
  size_t segments_searched = 0;
  size_t bruteforce_segments = 0;  // segments that took the exact-scan path
  size_t delta_candidates = 0;     // candidates served from the delta overlay
  size_t quant_segments = 0;       // segments that ranked on SQ8 codes
  size_t reranked = 0;             // candidates rescored with exact fp32
};

// The embedding service module (paper Sec. 4.2): owns every embedding
// segment, receives committed vector deltas from the graph engine's commit
// protocol (EmbeddingSink), runs the two-stage vacuum, and serves
// segment-parallel top-k / range search with global merge (EmbeddingAction).
class EmbeddingService : public EmbeddingSink {
 public:
  struct Options {
    HnswParams index_params;       // dim/metric/max_elements overridden per attr
    std::string delta_dir;         // empty -> in-memory delta files
    size_t bruteforce_threshold = 64;
    size_t max_vacuum_threads = 4;
  };

  EmbeddingService(GraphStore* store, Options options);

  // --- EmbeddingSink (called under the engine commit lock) ---
  Status ApplyUpsert(VertexTypeId vtype, const std::string& attr, VertexId vid,
                     const std::vector<float>& value, Tid tid) override;
  Status ApplyDelete(VertexTypeId vtype, const std::string& attr, VertexId vid,
                     Tid tid) override;

  // --- Search (EmbeddingAction) ---
  // Validates attribute existence and pairwise compatibility, fans the
  // query out across embedding segments (in parallel when request.pool is
  // set), and merges local top-k lists into the global top-k.
  Result<VectorSearchResult> TopKSearch(const VectorSearchRequest& request) const;

  // All hits with distance < threshold across the requested attributes.
  Result<VectorSearchResult> RangeSearch(const VectorSearchRequest& request,
                                         float threshold) const;

  // Latest visible embedding of a vertex.
  Status GetEmbedding(const std::string& vertex_type, const std::string& attr,
                      VertexId vid, float* out) const;

  // --- Vacuum (paper Sec. 4.3, Fig. 4) ---
  // Stage 1 on every segment: seal in-memory deltas (up to the currently
  // visible tid) into delta files. Returns total records sealed.
  Result<size_t> RunDeltaMerge();
  // Stage 2 on every segment: fold sealed delta files into the indexes.
  // Uses up to SuggestVacuumThreads() workers from `pool`.
  Result<size_t> RunIndexMerge(ThreadPool* pool);
  // Rebuild all indexes from scratch (the "rebuild beats incremental when
  // >20% updated" path, paper Fig. 11).
  Status RebuildAllIndexes(ThreadPool* pool);

  // --- Index snapshot persistence ---
  // Writes every (HNSW) segment index to `dir` plus a manifest, after
  // folding all pending deltas. A fresh process with the same schema can
  // then LoadIndexSnapshots instead of replaying the WAL into the indexes.
  Status SaveIndexSnapshots(const std::string& dir, ThreadPool* pool);
  // Restores segment indexes from a snapshot directory.
  Status LoadIndexSnapshots(const std::string& dir);

  // --- Crash recovery (used by Database::Recover) ---
  struct RecoveryStats {
    size_t snapshots_adopted = 0;
    size_t snapshots_rejected = 0;
    size_t delta_files_adopted = 0;
    size_t delta_files_quarantined = 0;
    size_t stale_files_removed = 0;
    size_t tmp_files_removed = 0;
  };
  // Best-effort variant of LoadIndexSnapshots: a missing or unreadable
  // manifest means "no snapshot" (not an error), and a snapshot file that
  // fails to load or adopt is skipped — WAL replay covers the gap either
  // way, snapshots only shorten it.
  Status RecoverSnapshots(const std::string& dir, RecoveryStats* stats);
  // Re-attaches sealed delta files left behind by a pre-crash delta merge
  // (names `emb_<vtype>_<attr>_seg<id>_tid<max>.delta`). Files are adopted
  // per segment in ascending max_tid order; a corrupt file is quarantined
  // (renamed with a ".quarantined" suffix) and stops that segment's chain,
  // leaving the rest to WAL replay. Files at or below a segment's durable
  // horizon are stale duplicates of an adopted snapshot and are removed, as
  // are leftover ".tmp" staging files from interrupted atomic writes.
  Status RecoverDeltaFiles(const std::string& dir, RecoveryStats* stats);

  // Adaptive vacuum parallelism: back off while foreground searches are
  // active (paper Sec. 4.3: the number of index-update threads is tuned
  // dynamically to balance efficiency and query responsiveness).
  size_t SuggestVacuumThreads() const;

  // --- Introspection ---
  // Aggregated index statistics across all segments (paper Sec. 4.4: "we
  // enhance the indexes to report relevant statistics for measuring its
  // performance"). Non-HNSW indexes contribute zeros.
  struct ServiceStats {
    uint64_t distance_computations = 0;
    uint64_t hops = 0;
    uint64_t searches = 0;
    uint64_t inserts = 0;
    uint64_t updates = 0;
    size_t segments = 0;
    size_t live_vectors = 0;
  };
  ServiceStats AggregateStats() const;

  size_t TotalPendingDeltas() const;
  size_t NumEmbeddingSegments() const;
  // Embedding segments of one attribute, ordered by segment id.
  std::vector<const EmbeddingSegment*> SegmentsOf(const std::string& vertex_type,
                                                  const std::string& attr) const;
  size_t active_searches() const { return active_searches_.load(); }
  const Options& options() const { return options_; }

  // --- structure version (cache invalidation key) ---
  // Monotone counter bumped at the END of every operation that changes the
  // search structure without a commit: delta merge, index merge, rebuild,
  // snapshot load, recovery adoption. Commits do not bump it — the commit
  // horizon (read_tid) already keys cached results across commits; this
  // covers the vacuum/merge side where approximate (HNSW) answers can
  // change with no tid advancing.
  uint64_t structure_version() const {
    return structure_version_.load(std::memory_order_acquire);
  }
  // False while a structural operation is in flight. The top-k result
  // cache bypasses both lookups and inserts in that window: a search
  // overlapping a merge may observe a half-merged structure and is not
  // reproducible, so it must neither be served from nor admitted to the
  // cache.
  bool structure_stable() const {
    return structure_changes_inflight_.load(std::memory_order_acquire) == 0;
  }

 private:
  struct AttrKey {
    VertexTypeId vtype;
    std::string attr;
    bool operator<(const AttrKey& other) const {
      if (vtype != other.vtype) return vtype < other.vtype;
      return attr < other.attr;
    }
  };

  struct AttrState {
    EmbeddingTypeInfo info;
    // Sparse, indexed by SegmentId; slots are created on first delta.
    std::vector<std::unique_ptr<EmbeddingSegment>> segments;
  };

  // Finds the attribute state, validating against the schema.
  Result<AttrState*> GetOrCreateAttrState(VertexTypeId vtype, const std::string& attr);
  Result<const AttrState*> FindAttrState(const std::string& vertex_type,
                                         const std::string& attr) const;
  EmbeddingSegment* GetOrCreateSegment(AttrState* state, const EmbeddingTypeInfo& info,
                                       SegmentId seg_id);

  // Shared fan-out used by TopK and Range.
  template <typename SegmentFn>
  Result<VectorSearchResult> FanOut(const VectorSearchRequest& request,
                                    SegmentFn segment_fn) const;

  // RAII guard for structural operations: marks the structure unstable for
  // its lifetime and bumps the version on exit (before clearing the
  // in-flight mark, so observers that see the structure stable again also
  // see the new version).
  class ScopedStructureChange {
   public:
    explicit ScopedStructureChange(EmbeddingService* service) : service_(service) {
      service_->structure_changes_inflight_.fetch_add(1, std::memory_order_acq_rel);
    }
    ~ScopedStructureChange() {
      service_->structure_version_.fetch_add(1, std::memory_order_acq_rel);
      service_->structure_changes_inflight_.fetch_sub(1, std::memory_order_acq_rel);
    }

   private:
    EmbeddingService* service_;
  };

  GraphStore* store_;
  Options options_;
  mutable std::shared_mutex mu_;  // guards attr_states_ map & segment slots
  std::map<AttrKey, AttrState> attr_states_;
  mutable std::atomic<size_t> active_searches_{0};
  std::atomic<uint64_t> structure_version_{0};
  std::atomic<uint32_t> structure_changes_inflight_{0};
};

}  // namespace tigervector

#endif  // TIGERVECTOR_EMBEDDING_EMBEDDING_SERVICE_H_

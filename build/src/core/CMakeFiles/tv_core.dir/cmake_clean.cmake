file(REMOVE_RECURSE
  "CMakeFiles/tv_core.dir/access_control.cc.o"
  "CMakeFiles/tv_core.dir/access_control.cc.o.d"
  "CMakeFiles/tv_core.dir/database.cc.o"
  "CMakeFiles/tv_core.dir/database.cc.o.d"
  "libtv_core.a"
  "libtv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// AVX-512F one-pair kernels. This TU is compiled with -mavx512f and may
// only be entered through the runtime dispatcher (dispatch.cc), which has
// verified CPU support. The non-multiple-of-16 tail is handled with masked
// loads (zero-fill), so there is no scalar cleanup loop and short dims stay
// branch-light. Two 16-lane FMA accumulators per stream.

#if defined(TV_HAVE_AVX512_KERNELS)

#include <immintrin.h>

#include <cmath>
#include <cstddef>

#include "simd/kernels.h"

namespace tigervector::simd::internal {

namespace {

inline __mmask16 TailMask(size_t remaining) {
  return static_cast<__mmask16>((1u << remaining) - 1u);
}

}  // namespace

float Avx512L2(const float* a, const float* b, size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    const __m512 d0 =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    const __m512 d1 =
        _mm512_sub_ps(_mm512_loadu_ps(a + i + 16), _mm512_loadu_ps(b + i + 16));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
  }
  if (i + 16 <= dim) {
    const __m512 d =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc0 = _mm512_fmadd_ps(d, d, acc0);
    i += 16;
  }
  if (i < dim) {
    const __mmask16 m = TailMask(dim - i);
    const __m512 d = _mm512_sub_ps(_mm512_maskz_loadu_ps(m, a + i),
                                   _mm512_maskz_loadu_ps(m, b + i));
    acc1 = _mm512_fmadd_ps(d, d, acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

float Avx512Ip(const float* a, const float* b, size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i), acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  if (i + 16 <= dim) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i), acc0);
    i += 16;
  }
  if (i < dim) {
    const __mmask16 m = TailMask(dim - i);
    acc1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, a + i),
                           _mm512_maskz_loadu_ps(m, b + i), acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

float Avx512Cosine(const float* a, const float* b, size_t dim) {
  __m512 dot = _mm512_setzero_ps();
  __m512 na = _mm512_setzero_ps();
  __m512 nb = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m512 va = _mm512_loadu_ps(a + i);
    const __m512 vb = _mm512_loadu_ps(b + i);
    dot = _mm512_fmadd_ps(va, vb, dot);
    na = _mm512_fmadd_ps(va, va, na);
    nb = _mm512_fmadd_ps(vb, vb, nb);
  }
  if (i < dim) {
    const __mmask16 m = TailMask(dim - i);
    const __m512 va = _mm512_maskz_loadu_ps(m, a + i);
    const __m512 vb = _mm512_maskz_loadu_ps(m, b + i);
    dot = _mm512_fmadd_ps(va, vb, dot);
    na = _mm512_fmadd_ps(va, va, na);
    nb = _mm512_fmadd_ps(vb, vb, nb);
  }
  const float dot_s = _mm512_reduce_add_ps(dot);
  const float na_s = _mm512_reduce_add_ps(na);
  const float nb_s = _mm512_reduce_add_ps(nb);
  const float denom = std::sqrt(na_s) * std::sqrt(nb_s);
  if (denom == 0.f) return 2.f;  // zero-norm sentinel: worst cosine distance
  return 1.f - dot_s / denom;
}

}  // namespace tigervector::simd::internal

#endif  // TV_HAVE_AVX512_KERNELS

#ifndef TIGERVECTOR_SIMD_DISTANCE_H_
#define TIGERVECTOR_SIMD_DISTANCE_H_

#include <cstddef>

namespace tigervector {

// Distance metric for an embedding attribute (paper Sec. 4.1, METRIC=...).
// All metrics are expressed as distances (smaller is closer):
//   kL2      -> squared Euclidean distance
//   kIp      -> 1 - <a, b>            (assumes roughly normalized data)
//   kCosine  -> 1 - cos(a, b)
enum class Metric { kL2 = 0, kIp = 1, kCosine = 2 };

const char* MetricName(Metric metric);

// Raw kernels. Unrolled scalar implementations; gcc auto-vectorizes them
// with -O2 -ftree-vectorize on this target.
float L2SquaredDistance(const float* a, const float* b, size_t dim);
float InnerProduct(const float* a, const float* b, size_t dim);
float CosineDistance(const float* a, const float* b, size_t dim);

// Dispatches on `metric`. This is the single distance entry point used by
// the HNSW index, brute-force search, and delta scans.
float ComputeDistance(Metric metric, const float* a, const float* b, size_t dim);

// L2 norm of a vector; used to pre-normalize cosine data.
float L2Norm(const float* a, size_t dim);

// In-place normalization to unit length (no-op for zero vectors).
void NormalizeInPlace(float* a, size_t dim);

}  // namespace tigervector

#endif  // TIGERVECTOR_SIMD_DISTANCE_H_

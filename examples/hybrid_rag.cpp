// VectorGraphRAG retrieval patterns on a social-network-like corpus
// (paper Sec. 1 and Sec. 5): pure vector search, filtered search, vector
// search on graph patterns, range search, and query composition — each a
// retrieval strategy an advanced RAG pipeline would use to ground an LLM.
#include <cstdio>

#include "query/session.h"
#include "workload/snb.h"

using namespace tigervector;

namespace {

void PrintSet(const Database& db, const char* title,
              const std::vector<VertexId>& vids) {
  std::printf("%s (%zu results)\n", title, vids.size());
  const Tid tid = db.store()->visible_tid();
  size_t shown = 0;
  for (VertexId vid : vids) {
    if (shown++ >= 5) {
      std::printf("  ...\n");
      break;
    }
    auto content = db.store()->GetAttr(vid, "content", tid);
    std::printf("  vid=%llu %s\n", static_cast<unsigned long long>(vid),
                content.ok() ? std::get<std::string>(*content).c_str() : "?");
  }
}

}  // namespace

int main() {
  Database::Options options;
  options.store.segment_capacity = 256;
  Database db(options);
  GsqlSession session(&db);

  SnbConfig config;
  config.num_persons = 400;
  config.posts_per_person = 3;
  config.comments_per_post = 1;
  config.embedding_dim = 32;
  if (!CreateSnbSchema(&db, config).ok()) return 1;
  SnbStats stats;
  if (!LoadSnb(&db, config, &stats).ok()) return 1;
  std::printf("loaded %zu persons, %zu posts, %zu comments, %zu knows edges\n\n",
              stats.num_persons, stats.num_posts, stats.num_comments,
              stats.num_knows_edges);

  // The "user question" embedding a RAG pipeline would produce.
  QueryParams params;
  params["topic"] = std::vector<float>(32, 90.0f);

  // --- Strategy 1: pure vector search over all messages (both types). ---
  auto r1 = session.Run(
      "Hits = VectorSearch({Post.content_emb, Comment.content_emb}, $topic, 5);"
      "PRINT Hits;",
      params);
  if (!r1.ok()) {
    std::fprintf(stderr, "%s\n", r1.status().ToString().c_str());
    return 1;
  }
  PrintSet(db, "1) pure vector search across Post+Comment", r1->prints[0].vertices);

  // --- Strategy 2: filtered vector search (language predicate). ---
  auto r2 = session.Run(
      "Hits = SELECT s FROM (s:Post) WHERE s.language = \"English\""
      " ORDER BY VECTOR_DIST(s.content_emb, $topic) LIMIT 5; PRINT Hits;",
      params);
  if (!r2.ok()) return 1;
  PrintSet(db, "\n2) filtered search: English posts only", r2->prints[0].vertices);
  std::printf("plan:\n%s", r2->last_plan.c_str());

  // --- Strategy 3: vector search on a graph pattern (friends' posts). ---
  auto r3 = session.Run(
      "Hits = SELECT t FROM (s:Person) -[:knows]- (:Person)"
      " <-[:hasCreator]- (t:Post) WHERE s.firstName = \"Alice\""
      " ORDER BY VECTOR_DIST(t.content_emb, $topic) LIMIT 5; PRINT Hits;",
      params);
  if (!r3.ok()) return 1;
  PrintSet(db, "\n3) hybrid: posts by friends of Alice", r3->prints[0].vertices);

  // --- Strategy 4: query composition (Q3 analog): graph block feeds the
  // VectorSearch function as a candidate filter. ---
  auto r4 = session.Run(
      "RecentPosts = SELECT t FROM (t:Post) WHERE t.creationDate > 1000600;"
      "Hits = VectorSearch({Post.content_emb}, $topic, 5,"
      " {filter: RecentPosts, ef: 128, distanceMap: @@dist});"
      "PRINT Hits; PRINT @@dist;",
      params);
  if (!r4.ok()) return 1;
  PrintSet(db, "\n4) composition: vector search within recent posts",
           r4->prints[0].vertices);
  std::printf("   distances:");
  for (const auto& [vid, d] : r4->prints[1].distances) std::printf(" %.1f", d);
  std::printf("\n");

  // --- Strategy 5: range search (everything within a similarity radius). ---
  auto r5 = session.Run(
      "Hits = SELECT s FROM (s:Post)"
      " WHERE VECTOR_DIST(s.content_emb, $topic) < 30000.0; PRINT Hits;",
      params);
  if (!r5.ok()) return 1;
  std::printf("\n5) range search: %zu posts within radius\n",
              r5->prints[0].vertices.size());

  return 0;
}

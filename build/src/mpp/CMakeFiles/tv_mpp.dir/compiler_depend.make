# Empty compiler generated dependencies file for tv_mpp.
# This may be replaced when dependencies are built.

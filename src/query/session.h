#ifndef TIGERVECTOR_QUERY_SESSION_H_
#define TIGERVECTOR_QUERY_SESSION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/executor.h"

namespace tigervector {

// Output of one script run: everything PRINTed, plus the final variable
// bindings for programmatic inspection.
struct ScriptResult {
  struct Printed {
    std::string name;
    std::vector<VertexId> vertices;  // sorted; empty for pure distance maps
    std::unordered_map<VertexId, float> distances;
    bool is_distance_map = false;
  };
  std::vector<Printed> prints;
  // Plan text of the last SELECT executed (for inspection/tests).
  std::string last_plan;
  // Pairs of the last similarity join.
  std::vector<SelectResult::Pair> last_join_pairs;
  // Report of the last CREATE LOADING JOB executed.
  LoadReport last_load_report;
  // Filled when the script was prefixed with PROFILE: per-stage timings
  // (span name -> total microseconds), per-query counters, and the rendered
  // breakdown table.
  bool profiled = false;
  std::map<std::string, double> profile_stage_micros;
  std::map<std::string, uint64_t> profile_counters;
  std::string profile;
  // Filled when the script was prefixed with EXPLAIN (plan only, nothing
  // executed) or EXPLAIN ANALYZE (executed; plan nodes annotated with
  // actuals).
  bool explained = false;
  bool analyzed = false;
  std::string explain;
  // Flight-recorder id assigned to this run (0 when recording is compiled
  // out with TIGERVECTOR_NO_METRICS).
  uint64_t flight_id = 0;
};

// A GSQL session: executes scripts statement by statement, maintaining
// vertex-set variables and distance-map accumulators across statements
// (and across Run calls), which is the query-composition mechanism of the
// paper's Sec. 5.5 (Q2/Q3-style procedures).
class GsqlSession {
 public:
  explicit GsqlSession(Database* db) : db_(db), executor_(db) {}

  // Parses and executes a script with the given $parameter bindings.
  Result<ScriptResult> Run(const std::string& script,
                           const QueryParams& params = QueryParams());

  // Role all subsequent statements run under (empty = superuser).
  void SetRole(std::string role) { executor_.SetRole(std::move(role)); }

  // Skips both query-cache tiers (lookups and inserts) for this session's
  // statements without touching the database-wide toggle. Differential
  // tests run the same script through a cached and a bypassing session and
  // compare results bit-for-bit.
  void SetCacheBypass(bool bypass) { executor_.set_cache_bypass(bypass); }

  // Injects a vertex set variable from C++ (e.g. produced by a graph
  // algorithm such as Louvain) for use in subsequent scripts.
  void SetVariable(const std::string& name, VertexSet value) {
    vars_[name] = std::move(value);
  }
  const VertexSet* GetVariable(const std::string& name) const {
    auto it = vars_.find(name);
    return it == vars_.end() ? nullptr : &it->second;
  }

 private:
  // Executes parsed statements; with execute = false (EXPLAIN) only plans
  // SELECT / VectorSearch statements and skips everything else.
  Status ExecuteStatements(const std::vector<Statement>& statements,
                           const QueryParams& params, bool execute,
                           ScriptResult* result);

  Database* db_;
  QueryExecutor executor_;
  // Serializes Run: a second concurrent Run on the same session is rejected
  // with kAborted ("session busy") instead of racing on vars_/executor_.
  std::mutex run_mu_;
  VarMap vars_;
  std::unordered_map<std::string, std::unordered_map<VertexId, float>> dist_maps_;
};

}  // namespace tigervector

#endif  // TIGERVECTOR_QUERY_SESSION_H_

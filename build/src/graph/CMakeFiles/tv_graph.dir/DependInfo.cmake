
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph_store.cc" "src/graph/CMakeFiles/tv_graph.dir/graph_store.cc.o" "gcc" "src/graph/CMakeFiles/tv_graph.dir/graph_store.cc.o.d"
  "/root/repo/src/graph/schema.cc" "src/graph/CMakeFiles/tv_graph.dir/schema.cc.o" "gcc" "src/graph/CMakeFiles/tv_graph.dir/schema.cc.o.d"
  "/root/repo/src/graph/segment.cc" "src/graph/CMakeFiles/tv_graph.dir/segment.cc.o" "gcc" "src/graph/CMakeFiles/tv_graph.dir/segment.cc.o.d"
  "/root/repo/src/graph/transaction.cc" "src/graph/CMakeFiles/tv_graph.dir/transaction.cc.o" "gcc" "src/graph/CMakeFiles/tv_graph.dir/transaction.cc.o.d"
  "/root/repo/src/graph/types.cc" "src/graph/CMakeFiles/tv_graph.dir/types.cc.o" "gcc" "src/graph/CMakeFiles/tv_graph.dir/types.cc.o.d"
  "/root/repo/src/graph/wal.cc" "src/graph/CMakeFiles/tv_graph.dir/wal.cc.o" "gcc" "src/graph/CMakeFiles/tv_graph.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tv_util.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/tv_embedding_types.dir/DependInfo.cmake"
  "/root/repo/build/src/simd/CMakeFiles/tv_simd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libtv_query.a"
)

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/database.h"
#include "graph/wal.h"
#include "query/session.h"
#include "util/rng.h"

namespace tigervector {
namespace {

// Property-style tests: randomized operation sequences checked against
// simple reference models.

// ---------------- WAL fuzz: encode/decode round trip ----------------

Mutation RandomMutation(Rng* rng) {
  Mutation m;
  m.kind = static_cast<Mutation::Kind>(rng->NextBounded(7));
  m.vid = rng->Next64() % 1000;
  switch (m.kind) {
    case Mutation::Kind::kInsertVertex: {
      m.vtype = static_cast<VertexTypeId>(rng->NextBounded(4));
      const size_t n = rng->NextBounded(5);
      for (size_t i = 0; i < n; ++i) {
        switch (rng->NextBounded(4)) {
          case 0:
            m.attrs.push_back(Value{static_cast<int64_t>(rng->Next64() % 100000)});
            break;
          case 1:
            m.attrs.push_back(Value{rng->NextDouble() * 100});
            break;
          case 2: {
            std::string s;
            const size_t len = rng->NextBounded(20);
            for (size_t j = 0; j < len; ++j) {
              s.push_back(static_cast<char>('a' + rng->NextBounded(26)));
            }
            m.attrs.push_back(Value{std::move(s)});
            break;
          }
          default:
            m.attrs.push_back(Value{rng->NextBounded(2) == 0});
        }
      }
      break;
    }
    case Mutation::Kind::kSetAttr:
      m.attr_idx = static_cast<uint16_t>(rng->NextBounded(8));
      m.value = Value{static_cast<int64_t>(rng->Next64() % 1000)};
      break;
    case Mutation::Kind::kInsertEdge:
    case Mutation::Kind::kDeleteEdge:
      m.etype = static_cast<EdgeTypeId>(rng->NextBounded(4));
      m.dst = rng->Next64() % 1000;
      break;
    case Mutation::Kind::kDeleteVertex:
      break;
    case Mutation::Kind::kUpsertEmbedding: {
      m.emb_attr = "emb" + std::to_string(rng->NextBounded(3));
      const size_t dim = 1 + rng->NextBounded(16);
      for (size_t i = 0; i < dim; ++i) {
        m.embedding.push_back(rng->NextFloat() * 100 - 50);
      }
      break;
    }
    case Mutation::Kind::kDeleteEmbedding:
      m.emb_attr = "emb";
      break;
  }
  return m;
}

bool MutationEquals(const Mutation& a, const Mutation& b) {
  if (a.kind != b.kind || a.vid != b.vid) return false;
  if (a.attrs.size() != b.attrs.size()) return false;
  for (size_t i = 0; i < a.attrs.size(); ++i) {
    if (!(a.attrs[i] == b.attrs[i])) return false;
  }
  return a.vtype == b.vtype && a.attr_idx == b.attr_idx && a.value == b.value &&
         a.etype == b.etype && a.dst == b.dst && a.emb_attr == b.emb_attr &&
         a.embedding == b.embedding;
}

TEST(WalFuzzTest, RandomBatchesRoundTrip) {
  Rng rng(1234);
  for (int round = 0; round < 50; ++round) {
    std::vector<Mutation> batch;
    const size_t n = rng.NextBounded(20);
    for (size_t i = 0; i < n; ++i) batch.push_back(RandomMutation(&rng));
    auto bytes = WriteAheadLog::EncodeMutations(batch);
    auto decoded = WriteAheadLog::DecodeMutations(bytes.data(), bytes.size());
    ASSERT_TRUE(decoded.ok()) << "round " << round;
    ASSERT_EQ(decoded->size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_TRUE(MutationEquals(batch[i], (*decoded)[i]))
          << "round " << round << " mutation " << i;
    }
  }
}

TEST(WalFuzzTest, TruncationAtEveryPointFailsCleanly) {
  Rng rng(99);
  std::vector<Mutation> batch;
  for (int i = 0; i < 5; ++i) batch.push_back(RandomMutation(&rng));
  auto bytes = WriteAheadLog::EncodeMutations(batch);
  // Decoding any strict prefix must fail or yield fewer mutations — never
  // crash or fabricate data.
  for (size_t cut = 0; cut < bytes.size(); cut += 7) {
    auto decoded = WriteAheadLog::DecodeMutations(bytes.data(), cut);
    if (decoded.ok()) {
      EXPECT_LT(decoded->size(), batch.size() + 1);
    }
  }
}

// ---------------- Model-based embedding store test ----------------

// Random interleaving of upserts, deletes, and both vacuum stages; the
// latest-committed value per vertex (the model) must always agree with
// exact search and GetEmbedding.
TEST(EmbeddingModelTest, RandomOpsMatchReferenceModel) {
  Database::Options options;
  options.store.segment_capacity = 32;
  options.embeddings.index_params.m = 8;
  Database db(options);
  EmbeddingTypeInfo info;
  info.dimension = 4;
  info.model = "M";
  info.metric = Metric::kL2;
  ASSERT_TRUE(db.schema()->CreateVertexType("Item", {}).ok());
  ASSERT_TRUE(db.schema()->AddEmbeddingAttr("Item", "emb", info).ok());

  // Pre-create 60 vertices.
  std::vector<VertexId> vids;
  {
    Transaction txn = db.Begin();
    for (int i = 0; i < 60; ++i) {
      auto vid = txn.InsertVertex("Item", {});
      ASSERT_TRUE(vid.ok());
      vids.push_back(*vid);
    }
    ASSERT_TRUE(txn.Commit().ok());
  }

  std::map<VertexId, std::vector<float>> model;  // live embeddings
  Rng rng(4321);
  for (int step = 0; step < 400; ++step) {
    const int op = static_cast<int>(rng.NextBounded(10));
    if (op < 6) {
      // Upsert a random vertex to a fresh unique location.
      const VertexId vid = vids[rng.NextBounded(vids.size())];
      std::vector<float> v = {static_cast<float>(step), static_cast<float>(vid % 7),
                              0, 0};
      Transaction txn = db.Begin();
      ASSERT_TRUE(txn.SetEmbedding(vid, "Item", "emb", v).ok());
      ASSERT_TRUE(txn.Commit().ok());
      model[vid] = v;
    } else if (op < 8) {
      // Delete a random live embedding.
      if (model.empty()) continue;
      auto it = model.begin();
      std::advance(it, rng.NextBounded(model.size()));
      Transaction txn = db.Begin();
      ASSERT_TRUE(txn.DeleteEmbedding(it->first, "emb").ok());
      ASSERT_TRUE(txn.Commit().ok());
      model.erase(it);
    } else if (op == 8) {
      ASSERT_TRUE(db.embeddings()->RunDeltaMerge().ok());
    } else {
      ASSERT_TRUE(db.embeddings()->RunDeltaMerge().ok());
      ASSERT_TRUE(db.embeddings()->RunIndexMerge(db.pool()).ok());
    }

    // Periodically verify the model.
    if (step % 40 != 39) continue;
    for (const auto& [vid, expect] : model) {
      float buf[4];
      ASSERT_TRUE(db.embeddings()->GetEmbedding("Item", "emb", vid, buf).ok())
          << "step " << step << " vid " << vid;
      EXPECT_EQ(std::vector<float>(buf, buf + 4), expect);
      // Exact-match top-1 search must return this vertex (values unique).
      VectorSearchRequest request;
      request.attrs = {{"Item", "emb"}};
      request.query = expect.data();
      request.k = 1;
      request.ef = 256;
      request.bruteforce_threshold = 0;
      auto result = db.embeddings()->TopKSearch(request);
      ASSERT_TRUE(result.ok());
      ASSERT_FALSE(result->hits.empty());
      EXPECT_EQ(result->hits[0].label, vid) << "step " << step;
      EXPECT_NEAR(result->hits[0].distance, 0.0f, 1e-4);
    }
    // Deleted embeddings stay gone.
    for (VertexId vid : vids) {
      if (model.count(vid) > 0) continue;
      float buf[4];
      EXPECT_FALSE(db.embeddings()->GetEmbedding("Item", "emb", vid, buf).ok());
    }
  }
}

// ---------------- MVCC visibility sweep ----------------

TEST(MvccPropertyTest, AttrHistoryVisibleAtEveryTid) {
  Schema schema;
  ASSERT_TRUE(schema.CreateVertexType("P", {{"x", AttrType::kInt}}).ok());
  GraphStore::Options options;
  options.segment_capacity = 8;
  GraphStore store(&schema, options);
  Transaction txn0(&store);
  auto vid = txn0.InsertVertex("P", {int64_t{0}});
  ASSERT_TRUE(vid.ok());
  auto tid0 = txn0.Commit();
  ASSERT_TRUE(tid0.ok());
  // 20 updates, remembering (tid -> value).
  std::map<Tid, int64_t> history;
  history[*tid0] = 0;
  for (int64_t v = 1; v <= 20; ++v) {
    Transaction txn(&store);
    ASSERT_TRUE(txn.SetAttr(*vid, "P", "x", v).ok());
    auto tid = txn.Commit();
    ASSERT_TRUE(tid.ok());
    history[*tid] = v;
  }
  // Every historical tid reads its own value.
  for (const auto& [tid, expect] : history) {
    auto got = store.GetAttr(*vid, "x", tid);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::get<int64_t>(*got), expect) << "tid " << tid;
  }
  // After vacuum, only the latest is guaranteed (snapshot folded).
  store.VacuumGraph();
  auto latest = store.GetAttr(*vid, "x", store.visible_tid());
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(std::get<int64_t>(*latest), 20);
}

// ---------------- Pattern-match cross-check ----------------

// The executor's forward+backward semi-join must agree with naive path
// enumeration on random graphs.
TEST(PatternPropertyTest, SemiJoinMatchesNaiveEnumeration) {
  Rng rng(777);
  for (int round = 0; round < 5; ++round) {
    Database db;
    GsqlSession session(&db);
    ASSERT_TRUE(session
                    .Run("CREATE VERTEX N (grp INT);"
                         "CREATE DIRECTED EDGE e (FROM N, TO N);")
                    .ok());
    const size_t n = 30;
    std::vector<VertexId> vids;
    Transaction txn = db.Begin();
    for (size_t i = 0; i < n; ++i) {
      auto vid = txn.InsertVertex("N", {static_cast<int64_t>(i % 3)});
      ASSERT_TRUE(vid.ok());
      vids.push_back(*vid);
    }
    std::set<std::pair<size_t, size_t>> edges;
    for (int e = 0; e < 60; ++e) {
      const size_t a = rng.NextBounded(n), b = rng.NextBounded(n);
      if (a == b) continue;
      if (edges.insert({a, b}).second) {
        ASSERT_TRUE(txn.InsertEdge("e", vids[a], vids[b]).ok());
      }
    }
    ASSERT_TRUE(txn.Commit().ok());

    // Query: targets t of 2-hop paths from group-0 sources.
    auto result = session.Run(
        "R = SELECT t FROM (s:N) -[:e]-> (:N) -[:e]-> (t:N) WHERE s.grp = 0;"
        "PRINT R;");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::set<VertexId> got(result->prints[0].vertices.begin(),
                           result->prints[0].vertices.end());
    // Naive enumeration.
    std::set<VertexId> want;
    for (const auto& [a, b] : edges) {
      if (a % 3 != 0) continue;
      for (const auto& [c, d] : edges) {
        if (c == b) want.insert(vids[d]);
      }
    }
    EXPECT_EQ(got, want) << "round " << round;
  }
}

}  // namespace
}  // namespace tigervector

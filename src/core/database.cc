#include "core/database.h"

namespace tigervector {

Database::Database(Options options) : options_(std::move(options)) {
  store_ = std::make_unique<GraphStore>(&schema_, options_.store);
  embeddings_ = std::make_unique<EmbeddingService>(store_.get(), options_.embeddings);
  store_->SetEmbeddingSink(embeddings_.get());
  pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  if (options_.num_servers > 1) {
    Cluster::Options copts;
    copts.num_servers = options_.num_servers;
    copts.threads_per_server = options_.threads_per_server;
    cluster_ = std::make_unique<Cluster>(store_.get(), embeddings_.get(), copts);
  }
}

Result<size_t> Database::Vacuum() {
  TV_RETURN_NOT_OK(embeddings_->RunDeltaMerge().status());
  // The index merge is the expensive stage; use the adaptive thread count
  // so foreground queries stay responsive.
  (void)embeddings_->SuggestVacuumThreads();
  auto merged = embeddings_->RunIndexMerge(pool_.get());
  if (!merged.ok()) return merged.status();
  store_->VacuumGraph();
  return *merged;
}

Result<VertexSet> Database::VectorSearch(
    const std::vector<std::pair<std::string, std::string>>& attrs,
    const std::vector<float>& query, size_t k, const VectorSearchFnOptions& options) {
  // Drop attributes whose vertex type the role cannot read (their vectors
  // are "unauthorized", paper Sec. 5.1); fail only when nothing remains.
  std::vector<std::pair<std::string, std::string>> permitted;
  for (const auto& [type_name, attr] : attrs) {
    auto vt = schema_.GetVertexType(type_name);
    if (!vt.ok()) return vt.status();
    if (access_.CanRead(options.role, (*vt)->id)) {
      permitted.emplace_back(type_name, attr);
    }
  }
  if (permitted.empty()) {
    return Status::InvalidArgument("permission denied: role '" + options.role +
                                   "' cannot read any requested vertex type");
  }
  VectorSearchRequest request;
  request.attrs = permitted;
  request.query = query.data();
  request.k = k;
  request.ef = options.ef;
  request.pool = pool_.get();
  Bitmap filter_bitmap;
  if (options.filter != nullptr) {
    filter_bitmap = VertexSetToBitmap(*options.filter, store_->vid_upper_bound());
    request.filter = FilterView(&filter_bitmap);
  }
  auto result = embeddings_->TopKSearch(request);
  if (!result.ok()) return result.status();
  VertexSet out;
  for (const SearchHit& hit : result->hits) {
    out.insert(hit.label);
    if (options.distance_map != nullptr) {
      (*options.distance_map)[hit.label] = hit.distance;
    }
  }
  return out;
}

}  // namespace tigervector

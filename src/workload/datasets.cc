#include "workload/datasets.h"

#include <algorithm>
#include <queue>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace tigervector {

namespace {

// Clustered generator: points are cluster centers plus noise; queries are
// drawn near base points so nearest-neighbor structure is non-trivial.
VectorDataset MakeClustered(const std::string& name, size_t dim, size_t num_base,
                            size_t num_queries, uint64_t seed, bool non_negative,
                            bool normalize, float center_scale, float noise_scale) {
  VectorDataset ds;
  ds.name = name;
  ds.dim = dim;
  ds.metric = Metric::kL2;
  ds.num_base = num_base;
  ds.num_queries = num_queries;
  ds.base.resize(num_base * dim);
  ds.queries.resize(num_queries * dim);

  Rng rng(seed);
  // Enough clusters (and noise comparable to inter-center distance) that
  // nearest neighbors are genuinely ambiguous; with too few clusters the
  // recall-vs-ef curve degenerates to a flat line.
  const size_t num_clusters = std::max<size_t>(64, num_base / 50);
  std::vector<float> centers(num_clusters * dim);
  for (float& c : centers) {
    c = non_negative ? rng.NextFloat() * center_scale
                     : (rng.NextFloat() - 0.5f) * center_scale;
  }
  auto emit = [&](float* out) {
    const size_t c = rng.NextBounded(num_clusters);
    const float* center = centers.data() + c * dim;
    for (size_t d = 0; d < dim; ++d) {
      float v = center[d] + rng.NextGaussian() * noise_scale;
      if (non_negative && v < 0) v = -v * 0.3f;
      out[d] = v;
    }
    if (normalize) NormalizeInPlace(out, dim);
  };
  for (size_t i = 0; i < num_base; ++i) emit(ds.base.data() + i * dim);
  for (size_t q = 0; q < num_queries; ++q) emit(ds.queries.data() + q * dim);
  return ds;
}

}  // namespace

VectorDataset MakeSiftLike(size_t num_base, size_t num_queries, uint64_t seed) {
  // SIFT descriptors are 128-d non-negative gradient histograms, values
  // roughly in [0, 218].
  return MakeClustered("sift-like", 128, num_base, num_queries, seed,
                       /*non_negative=*/true, /*normalize=*/false,
                       /*center_scale=*/80.0f, /*noise_scale=*/55.0f);
}

VectorDataset MakeDeepLike(size_t num_base, size_t num_queries, uint64_t seed) {
  // Deep1B descriptors are 96-d L2-normalized CNN activations.
  return MakeClustered("deep-like", 96, num_base, num_queries, seed,
                       /*non_negative=*/false, /*normalize=*/true,
                       /*center_scale=*/2.0f, /*noise_scale=*/0.9f);
}

VectorDataset MakeSiftLikeWithDim(size_t dim, size_t num_base, size_t num_queries,
                                  uint64_t seed) {
  return MakeClustered("sift-like-d" + std::to_string(dim), dim, num_base,
                       num_queries, seed, /*non_negative=*/true,
                       /*normalize=*/false, /*center_scale=*/80.0f,
                       /*noise_scale=*/55.0f);
}

void ComputeGroundTruth(VectorDataset* dataset, size_t k, ThreadPool* pool) {
  dataset->gt_k = k;
  dataset->ground_truth.assign(dataset->num_queries, {});
  auto compute_one = [&](size_t q) {
    const float* query = dataset->QueryVector(q);
    std::priority_queue<std::pair<float, uint64_t>> heap;
    for (size_t i = 0; i < dataset->num_base; ++i) {
      const float d = ComputeDistance(dataset->metric, query,
                                      dataset->BaseVector(i), dataset->dim);
      if (heap.size() < k) {
        heap.push({d, i});
      } else if (d < heap.top().first) {
        heap.pop();
        heap.push({d, i});
      }
    }
    std::vector<uint64_t> ids;
    ids.reserve(heap.size());
    while (!heap.empty()) {
      ids.push_back(heap.top().second);
      heap.pop();
    }
    std::reverse(ids.begin(), ids.end());
    dataset->ground_truth[q] = std::move(ids);
  };
  if (pool != nullptr) {
    pool->ParallelFor(dataset->num_queries, compute_one);
  } else {
    for (size_t q = 0; q < dataset->num_queries; ++q) compute_one(q);
  }
}

double RecallBetween(const std::vector<uint64_t>& result_ids,
                     const std::vector<uint64_t>& truth_ids, size_t k) {
  if (k == 0) return 0.0;
  const size_t truth_count = std::min(k, truth_ids.size());
  if (truth_count == 0) return 0.0;
  size_t hit = 0;
  for (size_t i = 0; i < truth_count; ++i) {
    const uint64_t want = truth_ids[i];
    for (size_t j = 0; j < std::min(k, result_ids.size()); ++j) {
      if (result_ids[j] == want) {
        ++hit;
        break;
      }
    }
  }
  return static_cast<double>(hit) / static_cast<double>(truth_count);
}

double RecallAtK(const VectorDataset& dataset, size_t q,
                 const std::vector<uint64_t>& result_ids, size_t k) {
  if (q >= dataset.ground_truth.size()) return 0.0;
  return RecallBetween(result_ids, dataset.ground_truth[q], k);
}

}  // namespace tigervector

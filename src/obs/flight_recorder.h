#ifndef TIGERVECTOR_OBS_FLIGHT_RECORDER_H_
#define TIGERVECTOR_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace tigervector::obs {

// One completed query as retained by the flight recorder: the full trace
// (spans with start offsets + thread slots, counters) plus query-level
// metadata. Everything needed to reconstruct the query after the fact.
struct QueryRecord {
  uint64_t id = 0;          // assigned by the recorder, monotonically increasing
  std::string query;        // script text (truncated to kMaxQueryBytes)
  std::string status;       // "OK" or the error's ToString()
  bool ok = true;
  bool slow = false;        // exceeded the slow-query threshold
  double total_micros = 0;  // end-to-end latency
  std::vector<QueryTrace::Span> spans;
  std::map<std::string, uint64_t> counters;
};

// Always-on query flight recorder: a fixed-capacity, lock-sharded ring
// buffer retaining the last N query records, plus a separate pinned ring
// for every query that exceeded the slow-query threshold (so a burst of
// fast queries cannot evict the interesting ones). Records are queryable
// from the shell (\flightrec) and exportable as Chrome trace_event JSON.
//
// Sharding: records land in shard (id % kShards); each shard is an
// independently-locked ring, so concurrent sessions recording queries do
// not serialize on one mutex. Readers snapshot all shards and sort by id.
class FlightRecorder {
 public:
  static constexpr size_t kShards = 8;
  static constexpr size_t kMaxQueryBytes = 2048;

  struct Options {
    size_t capacity = 128;                  // recent-ring capacity (total)
    size_t slow_capacity = 64;              // pinned slow-query ring capacity
    double slow_threshold_micros = 100e3;   // 100 ms default
  };

  // The process-wide recorder the GSQL session records into.
  static FlightRecorder& Global();

  FlightRecorder() : FlightRecorder(Options{}) {}
  explicit FlightRecorder(Options options);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Files a completed query; assigns and returns its record id. A record
  // whose total latency exceeds the slow threshold is additionally pinned
  // in the slow ring and rendered to the slow-query log sink (if set).
  uint64_t Record(QueryRecord record);

  // Replaces capacity/threshold knobs. Existing records are kept (up to the
  // new capacities).
  void Configure(const Options& options);
  Options options() const;

  // Recent records, oldest first (across all shards, sorted by id).
  std::vector<QueryRecord> Recent() const;
  // Pinned slow-query records, oldest first.
  std::vector<QueryRecord> Slow() const;
  // Looks up a record by id in both rings.
  bool Find(uint64_t id, QueryRecord* out) const;

  void Clear();

  // Installs the slow-query log sink: called with one rendered JSONL line
  // (no trailing newline) per slow query. The io::File-backed file sink
  // lives in util/slowlog.h (tv_obs cannot depend on io without a cycle).
  void SetSlowLogSink(std::function<void(const std::string&)> sink);

  // --- Renderers ---
  // One-line-per-query listing for the shell (\flightrec).
  std::string RenderList() const;
  // Full detail of one record: metadata, span table, counters.
  static std::string RenderDetail(const QueryRecord& record);
  // Chrome trace_event JSON ("ph":"X" complete events, ts/dur in micros,
  // tid = the recording thread's stable slot) loadable in chrome://tracing.
  static std::string ChromeTraceJson(const QueryRecord& record);
  // One structured slow-query log record (JSONL): query, status, latency,
  // per-stage micros breakdown, counters.
  static std::string SlowLogLine(const QueryRecord& record);

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<QueryRecord> ring;  // ring indexed by (seq / kShards) % cap
    uint64_t count = 0;             // records ever filed into this shard
  };

  mutable std::mutex options_mu_;
  Options options_;
  std::atomic<uint64_t> next_id_{1};
  Shard shards_[kShards];
  mutable std::mutex slow_mu_;
  std::vector<QueryRecord> slow_ring_;
  uint64_t slow_count_ = 0;
  std::function<void(const std::string&)> slow_sink_;
};

}  // namespace tigervector::obs

#endif  // TIGERVECTOR_OBS_FLIGHT_RECORDER_H_

file(REMOVE_RECURSE
  "CMakeFiles/tv_baselines.dir/competitors.cc.o"
  "CMakeFiles/tv_baselines.dir/competitors.cc.o.d"
  "libtv_baselines.a"
  "libtv_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#ifndef TIGERVECTOR_GRAPH_TRANSACTION_H_
#define TIGERVECTOR_GRAPH_TRANSACTION_H_

#include <string>
#include <vector>

#include "graph/graph_store.h"
#include "graph/mutation.h"
#include "util/result.h"

namespace tigervector {

// A write transaction buffering mutations against a GraphStore. All buffered
// writes — graph attributes, edges, and vector embeddings — become visible
// atomically at Commit() (paper Sec. 4.3). Schema validation happens at
// buffer time so misuse fails fast; existence checks happen at commit.
//
// Not thread-safe; each transaction belongs to one thread.
class Transaction {
 public:
  explicit Transaction(GraphStore* store) : store_(store) {}

  // Buffers a vertex insert and returns its pre-allocated id.
  Result<VertexId> InsertVertex(const std::string& type_name,
                                std::vector<Value> attrs);

  // Buffers an attribute update.
  Status SetAttr(VertexId vid, const std::string& type_name,
                 const std::string& attr_name, Value value);

  // Buffers a directed/undirected edge insert (direction comes from the
  // edge type definition).
  Status InsertEdge(const std::string& edge_type, VertexId src, VertexId dst);
  Status DeleteEdge(const std::string& edge_type, VertexId src, VertexId dst);

  // Buffers a vertex delete (embeddings of the vertex are deleted too).
  Status DeleteVertex(VertexId vid);

  // Buffers an embedding upsert; dimension is validated against the
  // attribute's embedding type metadata.
  Status SetEmbedding(VertexId vid, const std::string& type_name,
                      const std::string& attr_name, std::vector<float> value);
  Status DeleteEmbedding(VertexId vid, const std::string& attr_name);

  // Atomically commits all buffered mutations; returns the assigned tid.
  Result<Tid> Commit();

  // Drops all buffered mutations.
  void Rollback() { mutations_.clear(); }

  size_t num_buffered() const { return mutations_.size(); }

 private:
  GraphStore* store_;
  std::vector<Mutation> mutations_;
};

}  // namespace tigervector

#endif  // TIGERVECTOR_GRAPH_TRANSACTION_H_

# Empty compiler generated dependencies file for test_vector_index.
# This may be replaced when dependencies are built.

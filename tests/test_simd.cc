#include <gtest/gtest.h>

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "simd/distance.h"
#include "util/rng.h"

namespace tigervector {
namespace {

float NaiveL2(const std::vector<float>& a, const std::vector<float>& b) {
  float s = 0;
  for (size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return s;
}

float NaiveIp(const std::vector<float>& a, const std::vector<float>& b) {
  float s = 0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

std::vector<float> RandomVec(Rng* rng, size_t dim, float scale = 1.0f) {
  std::vector<float> v(dim);
  for (float& x : v) x = (rng->NextFloat() - 0.5f) * scale;
  return v;
}

// Parameterized over dimension, including non-multiples of the unroll
// factor, to exercise the tail loops.
class DistanceDimTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DistanceDimTest, L2MatchesNaive) {
  Rng rng(11);
  const size_t dim = GetParam();
  for (int it = 0; it < 10; ++it) {
    auto a = RandomVec(&rng, dim, 4.0f);
    auto b = RandomVec(&rng, dim, 4.0f);
    EXPECT_NEAR(L2SquaredDistance(a.data(), b.data(), dim), NaiveL2(a, b),
                1e-3 * (1 + NaiveL2(a, b)));
  }
}

TEST_P(DistanceDimTest, IpMatchesNaive) {
  Rng rng(12);
  const size_t dim = GetParam();
  for (int it = 0; it < 10; ++it) {
    auto a = RandomVec(&rng, dim, 2.0f);
    auto b = RandomVec(&rng, dim, 2.0f);
    EXPECT_NEAR(InnerProduct(a.data(), b.data(), dim), NaiveIp(a, b),
                1e-3 * (1 + std::fabs(NaiveIp(a, b))));
  }
}

TEST_P(DistanceDimTest, CosineSelfDistanceIsZero) {
  Rng rng(13);
  const size_t dim = GetParam();
  auto a = RandomVec(&rng, dim, 3.0f);
  EXPECT_NEAR(CosineDistance(a.data(), a.data(), dim), 0.0f, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Dims, DistanceDimTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 64,
                                           96, 128, 200, 1024));

TEST(DistanceTest, L2Identity) {
  std::vector<float> a = {1, 2, 3, 4, 5};
  EXPECT_FLOAT_EQ(L2SquaredDistance(a.data(), a.data(), 5), 0.0f);
}

TEST(DistanceTest, L2Symmetry) {
  Rng rng(14);
  auto a = RandomVec(&rng, 33);
  auto b = RandomVec(&rng, 33);
  EXPECT_FLOAT_EQ(L2SquaredDistance(a.data(), b.data(), 33),
                  L2SquaredDistance(b.data(), a.data(), 33));
}

TEST(DistanceTest, CosineOppositeVectorsIsTwo) {
  std::vector<float> a = {1, 0, 0, 0};
  std::vector<float> b = {-1, 0, 0, 0};
  EXPECT_NEAR(CosineDistance(a.data(), b.data(), 4), 2.0f, 1e-6);
}

TEST(DistanceTest, CosineOrthogonalIsOne) {
  std::vector<float> a = {1, 0};
  std::vector<float> b = {0, 1};
  EXPECT_NEAR(CosineDistance(a.data(), b.data(), 2), 1.0f, 1e-6);
}

TEST(DistanceTest, CosineZeroVectorIsMetricMax) {
  // A zero vector has no direction: "orthogonal" (1.0) would rank it ahead
  // of genuinely opposed vectors, so the kernels pin it to the metric
  // maximum instead.
  std::vector<float> a = {0, 0, 0};
  std::vector<float> b = {1, 2, 3};
  EXPECT_FLOAT_EQ(CosineDistance(a.data(), b.data(), 3), 2.0f);
  EXPECT_FLOAT_EQ(CosineDistance(b.data(), a.data(), 3), 2.0f);
  EXPECT_FLOAT_EQ(CosineDistance(a.data(), a.data(), 3), 2.0f);
}

TEST(DistanceTest, ComputeDistanceDispatch) {
  std::vector<float> a = {1, 2};
  std::vector<float> b = {3, 4};
  EXPECT_FLOAT_EQ(ComputeDistance(Metric::kL2, a.data(), b.data(), 2),
                  L2SquaredDistance(a.data(), b.data(), 2));
  EXPECT_FLOAT_EQ(ComputeDistance(Metric::kIp, a.data(), b.data(), 2),
                  1.0f - InnerProduct(a.data(), b.data(), 2));
  EXPECT_FLOAT_EQ(ComputeDistance(Metric::kCosine, a.data(), b.data(), 2),
                  CosineDistance(a.data(), b.data(), 2));
}

TEST(DistanceTest, NormalizeProducesUnitVector) {
  Rng rng(15);
  auto a = RandomVec(&rng, 40, 10.0f);
  NormalizeInPlace(a.data(), 40);
  EXPECT_NEAR(L2Norm(a.data(), 40), 1.0f, 1e-5);
}

TEST(DistanceTest, NormalizeZeroVectorIsNoop) {
  std::vector<float> a(8, 0.0f);
  NormalizeInPlace(a.data(), 8);
  for (float v : a) EXPECT_EQ(v, 0.0f);
}

TEST(DistanceTest, MetricNames) {
  EXPECT_STREQ(MetricName(Metric::kL2), "L2");
  EXPECT_STREQ(MetricName(Metric::kIp), "IP");
  EXPECT_STREQ(MetricName(Metric::kCosine), "COSINE");
}

TEST(DistanceTest, IpDistanceOrdersbyAlignment) {
  // For IP-as-distance (1 - dot), better-aligned vectors must be closer.
  std::vector<float> q = {1, 0};
  std::vector<float> near = {0.9f, 0.1f};
  std::vector<float> far = {0.1f, 0.9f};
  EXPECT_LT(ComputeDistance(Metric::kIp, q.data(), near.data(), 2),
            ComputeDistance(Metric::kIp, q.data(), far.data(), 2));
}

// ---------------------------------------------------------------------------
// ISA parity: every dispatchable kernel must agree with the scalar reference
// within a documented tolerance, on every metric, including dimensions that
// are not multiples of any SIMD width and unaligned base pointers.
// ---------------------------------------------------------------------------

// Tolerance model: a dot/L2 reduction over `dim` terms reassociated across
// k lanes accumulates O(dim) rounding steps of FLT_EPSILON relative error
// each; 8x slack covers the FMA-vs-separate-rounding difference between
// scalar and vector code. Scaled by (1 + |ref|) so it behaves as an
// absolute bound near zero and a relative one for large magnitudes.
float ParityTol(size_t dim, float ref) {
  return 8.0f * static_cast<float>(dim) * FLT_EPSILON * (1.0f + std::fabs(ref));
}

std::vector<simd::IsaLevel> SupportedLevels() {
  std::vector<simd::IsaLevel> levels = {simd::IsaLevel::kScalar};
  if (simd::IsaSupported(simd::IsaLevel::kAvx2)) {
    levels.push_back(simd::IsaLevel::kAvx2);
  }
  if (simd::IsaSupported(simd::IsaLevel::kAvx512)) {
    levels.push_back(simd::IsaLevel::kAvx512);
  }
  return levels;
}

class IsaParityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(IsaParityTest, AllLevelsMatchScalar) {
  const size_t dim = GetParam();
  const simd::KernelTable* scalar = simd::KernelsFor(simd::IsaLevel::kScalar);
  ASSERT_NE(scalar, nullptr);
  Rng rng(101);
  for (simd::IsaLevel level : SupportedLevels()) {
    SCOPED_TRACE(simd::IsaName(level));
    const simd::KernelTable* t = simd::KernelsFor(level);
    ASSERT_NE(t, nullptr);
    for (int it = 0; it < 8; ++it) {
      auto a = RandomVec(&rng, dim, 4.0f);
      auto b = RandomVec(&rng, dim, 4.0f);
      const float l2_ref = scalar->l2(a.data(), b.data(), dim);
      const float ip_ref = scalar->ip(a.data(), b.data(), dim);
      const float cos_ref = scalar->cosine(a.data(), b.data(), dim);
      EXPECT_NEAR(t->l2(a.data(), b.data(), dim), l2_ref, ParityTol(dim, l2_ref));
      EXPECT_NEAR(t->ip(a.data(), b.data(), dim), ip_ref, ParityTol(dim, ip_ref));
      EXPECT_NEAR(t->cosine(a.data(), b.data(), dim), cos_ref,
                  ParityTol(dim, cos_ref));
    }
  }
}

TEST_P(IsaParityTest, UnalignedBasePointers) {
  // Kernels must use unaligned loads: feed them pointers offset one float
  // (4 bytes) from the allocation so any aligned-load assumption faults or
  // mismatches.
  const size_t dim = GetParam();
  const simd::KernelTable* scalar = simd::KernelsFor(simd::IsaLevel::kScalar);
  Rng rng(102);
  std::vector<float> abuf = RandomVec(&rng, dim + 1, 3.0f);
  std::vector<float> bbuf = RandomVec(&rng, dim + 1, 3.0f);
  const float* a = abuf.data() + 1;
  const float* b = bbuf.data() + 1;
  const float l2_ref = scalar->l2(a, b, dim);
  const float ip_ref = scalar->ip(a, b, dim);
  const float cos_ref = scalar->cosine(a, b, dim);
  for (simd::IsaLevel level : SupportedLevels()) {
    SCOPED_TRACE(simd::IsaName(level));
    const simd::KernelTable* t = simd::KernelsFor(level);
    EXPECT_NEAR(t->l2(a, b, dim), l2_ref, ParityTol(dim, l2_ref));
    EXPECT_NEAR(t->ip(a, b, dim), ip_ref, ParityTol(dim, ip_ref));
    EXPECT_NEAR(t->cosine(a, b, dim), cos_ref, ParityTol(dim, cos_ref));
  }
}

TEST_P(IsaParityTest, DenormalAndNegativeZeroInputs) {
  // Denormals (~1e-40) and negative zeros must not diverge between scalar
  // and vector paths (the build does not enable flush-to-zero).
  const size_t dim = GetParam();
  const simd::KernelTable* scalar = simd::KernelsFor(simd::IsaLevel::kScalar);
  std::vector<float> a(dim), b(dim);
  for (size_t i = 0; i < dim; ++i) {
    a[i] = (i % 3 == 0) ? -0.0f : 1e-40f * static_cast<float>(i % 7);
    b[i] = (i % 2 == 0) ? 1e-40f : -0.0f;
  }
  const float l2_ref = scalar->l2(a.data(), b.data(), dim);
  const float ip_ref = scalar->ip(a.data(), b.data(), dim);
  const float cos_ref = scalar->cosine(a.data(), b.data(), dim);
  for (simd::IsaLevel level : SupportedLevels()) {
    SCOPED_TRACE(simd::IsaName(level));
    const simd::KernelTable* t = simd::KernelsFor(level);
    EXPECT_NEAR(t->l2(a.data(), b.data(), dim), l2_ref, ParityTol(dim, l2_ref));
    EXPECT_NEAR(t->ip(a.data(), b.data(), dim), ip_ref, ParityTol(dim, ip_ref));
    // All-denormal inputs underflow both norms to (near) zero, which every
    // level must map to the same sentinel or the same finite value.
    EXPECT_NEAR(t->cosine(a.data(), b.data(), dim), cos_ref,
                ParityTol(dim, cos_ref));
  }
}

TEST_P(IsaParityTest, CosineZeroVectorSentinelOnEveryLevel) {
  const size_t dim = GetParam();
  std::vector<float> zero(dim, 0.0f);
  Rng rng(103);
  auto b = RandomVec(&rng, dim, 2.0f);
  for (simd::IsaLevel level : SupportedLevels()) {
    SCOPED_TRACE(simd::IsaName(level));
    const simd::KernelTable* t = simd::KernelsFor(level);
    EXPECT_FLOAT_EQ(t->cosine(zero.data(), b.data(), dim), 2.0f);
    EXPECT_FLOAT_EQ(t->cosine(b.data(), zero.data(), dim), 2.0f);
    EXPECT_FLOAT_EQ(t->cosine(zero.data(), zero.data(), dim), 2.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(OddDims, IsaParityTest,
                         ::testing::Values(1, 3, 17, 100, 1031));

// ---------------------------------------------------------------------------
// Batched entry points must agree with the pairwise entry points (they run
// the same dispatched kernel, so agreement is exact) and honor the
// threshold-count contract.
// ---------------------------------------------------------------------------

class BatchAgreementTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BatchAgreementTest, ContiguousMatchesPairwise) {
  const size_t dim = GetParam();
  const size_t count = 37;  // not a multiple of any internal chunk
  Rng rng(104);
  auto query = RandomVec(&rng, dim, 2.0f);
  auto rows = RandomVec(&rng, dim * count, 2.0f);
  std::vector<float> dists(count);
  for (Metric m : {Metric::kL2, Metric::kIp, Metric::kCosine}) {
    SCOPED_TRACE(MetricName(m));
    ComputeDistanceBatch(m, query.data(), rows.data(), dim, count, dists.data());
    for (size_t i = 0; i < count; ++i) {
      EXPECT_FLOAT_EQ(dists[i],
                      ComputeDistance(m, query.data(), rows.data() + i * dim, dim));
    }
  }
}

TEST_P(BatchAgreementTest, GatherMatchesPairwise) {
  const size_t dim = GetParam();
  const size_t count = 29;
  Rng rng(105);
  auto query = RandomVec(&rng, dim, 2.0f);
  std::vector<std::vector<float>> storage;
  std::vector<const float*> rows;
  for (size_t i = 0; i < count; ++i) {
    storage.push_back(RandomVec(&rng, dim, 2.0f));
    rows.push_back(storage.back().data());
  }
  std::vector<float> dists(count);
  for (Metric m : {Metric::kL2, Metric::kIp, Metric::kCosine}) {
    SCOPED_TRACE(MetricName(m));
    ComputeDistanceBatchGather(m, query.data(), rows.data(), dim, count,
                               dists.data());
    for (size_t i = 0; i < count; ++i) {
      EXPECT_FLOAT_EQ(dists[i], ComputeDistance(m, query.data(), rows[i], dim));
    }
  }
}

TEST_P(BatchAgreementTest, ThresholdCountsStrictlyBelow) {
  const size_t dim = GetParam();
  const size_t count = 41;
  Rng rng(106);
  auto query = RandomVec(&rng, dim, 2.0f);
  auto rows = RandomVec(&rng, dim * count, 2.0f);
  std::vector<float> dists(count);
  // First pass without threshold to learn the distances, then verify the
  // fused count against a median threshold (and an exact-tie threshold:
  // ties must NOT count, the contract is strictly below).
  ComputeDistanceBatch(Metric::kL2, query.data(), rows.data(), dim, count,
                       dists.data());
  std::vector<float> sorted = dists;
  std::sort(sorted.begin(), sorted.end());
  for (float threshold : {sorted[count / 2], sorted[0], sorted[count - 1]}) {
    size_t expect = 0;
    for (float d : dists) {
      if (d < threshold) ++expect;
    }
    EXPECT_EQ(ComputeDistanceBatch(Metric::kL2, query.data(), rows.data(), dim,
                                   count, dists.data(), threshold),
              expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, BatchAgreementTest, ::testing::Values(3, 100, 768));

TEST(SimdDispatchTest, EnvOverrideIsRespected) {
  // The CI matrix runs this binary under TV_SIMD=scalar; assert the
  // override actually landed. With no override (or an unparseable one) the
  // active level can be anything the CPU supports.
  const char* env = std::getenv("TV_SIMD");
  if (env != nullptr && std::string(env) == "scalar") {
    EXPECT_EQ(simd::ActiveIsa(), simd::IsaLevel::kScalar);
    EXPECT_STREQ(simd::ActiveIsaName(), "scalar");
  }
  // Whatever was chosen must be a level this build+CPU can execute.
  EXPECT_TRUE(simd::IsaSupported(simd::ActiveIsa()));
  EXPECT_NE(simd::KernelsFor(simd::ActiveIsa()), nullptr);
}

TEST(SimdDispatchTest, ScalarTableAlwaysAvailable) {
  EXPECT_TRUE(simd::IsaSupported(simd::IsaLevel::kScalar));
  ASSERT_NE(simd::KernelsFor(simd::IsaLevel::kScalar), nullptr);
}

TEST(SimdDispatchTest, IsaNamesStable) {
  EXPECT_STREQ(simd::IsaName(simd::IsaLevel::kScalar), "scalar");
  EXPECT_STREQ(simd::IsaName(simd::IsaLevel::kAvx2), "avx2");
  EXPECT_STREQ(simd::IsaName(simd::IsaLevel::kAvx512), "avx512");
}

}  // namespace
}  // namespace tigervector

#include <gtest/gtest.h>

#include <set>

#include "query/lexer.h"
#include "query/parser.h"
#include "query/session.h"
#include "util/rng.h"

namespace tigervector {
namespace {

// ---------------- Lexer ----------------

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT s FROM (s:Post) LIMIT 10;");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE(IsKeyword((*tokens)[0], "SELECT"));
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdent);
  EXPECT_TRUE(IsKeyword((*tokens)[2], "FROM"));
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kLParen);
}

TEST(LexerTest, ArrowsAndComparisons) {
  auto tokens = Tokenize("-[:knows]-> <-[:x]- <= >= == != <>");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const auto& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds[0], TokenKind::kDash);
  EXPECT_EQ(kinds[1], TokenKind::kLBracket);
  EXPECT_EQ(kinds[2], TokenKind::kColon);
  EXPECT_EQ(kinds[4], TokenKind::kRBracket);
  EXPECT_EQ(kinds[5], TokenKind::kArrowRight);
  EXPECT_EQ(kinds[6], TokenKind::kArrowLeft);
}

TEST(LexerTest, StringsParamsNumbersComments) {
  auto tokens = Tokenize("-- a comment\n\"hello\" $vec 3.5 42 'single'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kStringLit);
  EXPECT_EQ((*tokens)[0].text, "hello");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kParam);
  EXPECT_EQ((*tokens)[1].text, "vec");
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kFloatLit);
  EXPECT_DOUBLE_EQ((*tokens)[2].float_value, 3.5);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kIntLit);
  EXPECT_EQ((*tokens)[3].int_value, 42);
  EXPECT_EQ((*tokens)[4].text, "single");
}

TEST(LexerTest, AccumulatorNames) {
  auto tokens = Tokenize("@@disMap");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[0].text, "@@disMap");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("\"oops").ok());
}

TEST(LexerTest, EmptyParamFails) { EXPECT_FALSE(Tokenize("$ x").ok()); }

// ---------------- Parser ----------------

TEST(ParserTest, CreateVertex) {
  auto stmts = ParseScript(
      "CREATE VERTEX Post (id INT PRIMARY KEY, author STRING, content STRING);");
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  ASSERT_EQ(stmts->size(), 1u);
  const auto& s = std::get<CreateVertexStmt>((*stmts)[0]);
  EXPECT_EQ(s.name, "Post");
  ASSERT_EQ(s.attrs.size(), 3u);
  EXPECT_EQ(s.attrs[0].type, AttrType::kInt);
  EXPECT_EQ(s.attrs[1].type, AttrType::kString);
}

TEST(ParserTest, CreateEdgeDirectedness) {
  auto stmts = ParseScript(
      "CREATE DIRECTED EDGE hasCreator (FROM Post, TO Person);"
      "CREATE UNDIRECTED EDGE knows (FROM Person, TO Person);");
  ASSERT_TRUE(stmts.ok());
  EXPECT_TRUE(std::get<CreateEdgeStmt>((*stmts)[0]).directed);
  EXPECT_FALSE(std::get<CreateEdgeStmt>((*stmts)[1]).directed);
}

TEST(ParserTest, EmbeddingSpaceAndAlter) {
  auto stmts = ParseScript(
      "CREATE EMBEDDING SPACE gpt4_space (DIMENSION = 64, MODEL = GPT4,"
      " INDEX = HNSW, DATATYPE = FLOAT, METRIC = COSINE);"
      "ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE content_emb"
      " IN EMBEDDING SPACE gpt4_space;"
      "ALTER VERTEX Comment ADD EMBEDDING ATTRIBUTE c_emb (DIMENSION = 32,"
      " MODEL = M, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);");
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  const auto& space = std::get<CreateEmbeddingSpaceStmt>((*stmts)[0]);
  EXPECT_EQ(space.info.dimension, 64u);
  EXPECT_EQ(space.info.metric, Metric::kCosine);
  const auto& alter1 = std::get<AlterAddEmbeddingStmt>((*stmts)[1]);
  EXPECT_TRUE(alter1.in_space);
  EXPECT_EQ(alter1.space, "gpt4_space");
  const auto& alter2 = std::get<AlterAddEmbeddingStmt>((*stmts)[2]);
  EXPECT_FALSE(alter2.in_space);
  EXPECT_EQ(alter2.info.dimension, 32u);
  EXPECT_EQ(alter2.info.metric, Metric::kL2);
}

TEST(ParserTest, TopKSelect) {
  auto stmts = ParseScript(
      "SELECT s FROM (s:Post)"
      " ORDER BY VECTOR_DIST(s.content_emb, $query_vector) LIMIT 5;");
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  const auto& s = std::get<SelectStmt>((*stmts)[0]);
  EXPECT_EQ(s.select_aliases, std::vector<std::string>{"s"});
  ASSERT_NE(s.order_dist, nullptr);
  EXPECT_EQ(s.order_dist->lhs->attr, "content_emb");
  EXPECT_EQ(s.order_dist->rhs->param, "query_vector");
  EXPECT_TRUE(s.has_limit);
  EXPECT_EQ(s.limit, 5);
}

TEST(ParserTest, MultiHopPatternWithDirections) {
  auto stmts = ParseScript(
      "SELECT t FROM (s:Person) -[:knows]-> (:Person) <-[:hasCreator]- (t:Post)"
      " WHERE s.firstName = \"Alice\" AND t.length > 1000"
      " ORDER BY VECTOR_DIST(t.content_emb, $qv) LIMIT 3;");
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  const auto& s = std::get<SelectStmt>((*stmts)[0]);
  ASSERT_EQ(s.pattern.nodes.size(), 3u);
  EXPECT_EQ(s.pattern.nodes[0].alias, "s");
  EXPECT_EQ(s.pattern.nodes[1].alias, "");
  EXPECT_EQ(s.pattern.nodes[2].source, "Post");
  ASSERT_EQ(s.pattern.edges.size(), 2u);
  EXPECT_EQ(s.pattern.edges[0].dir, Direction::kOut);
  EXPECT_EQ(s.pattern.edges[1].dir, Direction::kIn);
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.where->op, BinaryOp::kAnd);
}

TEST(ParserTest, RangeSearchWhere) {
  auto stmts = ParseScript(
      "SELECT s FROM (s:Post) WHERE VECTOR_DIST(s.content_emb, $qv) < 0.5;");
  ASSERT_TRUE(stmts.ok());
  const auto& s = std::get<SelectStmt>((*stmts)[0]);
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.where->op, BinaryOp::kLt);
  EXPECT_EQ(s.where->lhs->kind, Expr::Kind::kVectorDist);
}

TEST(ParserTest, SimilarityJoin) {
  auto stmts = ParseScript(
      "SELECT s, t FROM (s:Comment) -[:hasCreator]-> (u:Person)"
      " -[:knows]-> (v:Person) <-[:hasCreator]- (t:Comment)"
      " WHERE u.firstName = \"Alice\""
      " ORDER BY VECTOR_DIST(s.content_emb, t.content_emb) LIMIT 10;");
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  const auto& s = std::get<SelectStmt>((*stmts)[0]);
  EXPECT_EQ(s.select_aliases.size(), 2u);
  EXPECT_EQ(s.order_dist->lhs->alias, "s");
  EXPECT_EQ(s.order_dist->rhs->alias, "t");
}

TEST(ParserTest, AssignmentAndVectorSearchCall) {
  auto stmts = ParseScript(
      "TopK = VectorSearch({Comment.content_emb, Post.content_emb}, $topic, 10,"
      " {filter: USComments, ef: 200, distanceMap: @@disMap});"
      "PRINT TopK; PRINT @@disMap;");
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  const auto& vs = std::get<VectorSearchStmt>((*stmts)[0]);
  EXPECT_EQ(vs.out_var, "TopK");
  ASSERT_EQ(vs.attrs.size(), 2u);
  EXPECT_EQ(vs.attrs[0].first, "Comment");
  EXPECT_EQ(vs.query_param, "topic");
  EXPECT_EQ(vs.k, 10);
  EXPECT_EQ(vs.filter_var, "USComments");
  EXPECT_EQ(vs.ef, 200);
  EXPECT_EQ(vs.distance_map, "@@disMap");
  EXPECT_EQ(std::get<PrintStmt>((*stmts)[1]).name, "TopK");
  EXPECT_EQ(std::get<PrintStmt>((*stmts)[2]).name, "@@disMap");
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseScript("SELECT FROM;").ok());
  EXPECT_FALSE(ParseScript("CREATE VERTEX (x INT);").ok());
  EXPECT_FALSE(ParseScript("SELECT s FROM (s:Post) ORDER BY s.x;").ok());
  EXPECT_FALSE(ParseScript("VectorSearch({Post.e}, qv, 10);").ok());  // not $param
  EXPECT_FALSE(ParseScript("bogus statement;").ok());
}

// Fuzz: arbitrary byte soup and truncated statements must produce a parse
// error or a statement list — never crash.
TEST(ParserFuzzTest, RandomInputNeverCrashes) {
  Rng rng(31337);
  const std::string alphabet =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
      " (){}[],.;:=<>-$\"'@";
  for (int round = 0; round < 300; ++round) {
    std::string input;
    const size_t len = rng.NextBounded(80);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(alphabet[rng.NextBounded(alphabet.size())]);
    }
    (void)ParseScript(input);  // must not crash or hang
  }
  SUCCEED();
}

TEST(ParserFuzzTest, TruncationsOfValidScriptFailCleanly) {
  const std::string script =
      "CREATE VERTEX Post (id INT, author STRING);"
      "SELECT s FROM (s:Post) WHERE s.id > 3"
      " ORDER BY VECTOR_DIST(s.emb, $qv) LIMIT 5;";
  for (size_t cut = 0; cut < script.size(); cut += 3) {
    (void)ParseScript(script.substr(0, cut));  // error or partial, no crash
  }
  SUCCEED();
}

// ---------------- End-to-end session ----------------

class QuerySessionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Database::Options options;
    options.store.segment_capacity = 32;
    options.embeddings.index_params.m = 8;
    options.embeddings.index_params.ef_construction = 64;
    db_ = std::make_unique<Database>(options);
    session_ = std::make_unique<GsqlSession>(db_.get());
    // Schema via GSQL DDL.
    auto ddl = session_->Run(
        "CREATE VERTEX Person (firstName STRING, age INT);"
        "CREATE VERTEX Post (language STRING, length INT);"
        "CREATE UNDIRECTED EDGE knows (FROM Person, TO Person);"
        "CREATE DIRECTED EDGE hasCreator (FROM Post, TO Person);"
        "CREATE EMBEDDING SPACE space1 (DIMENSION = 4, MODEL = M, INDEX = HNSW,"
        " DATATYPE = FLOAT, METRIC = L2);"
        "ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE content_emb"
        " IN EMBEDDING SPACE space1;");
    ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();

    // Data: persons 0..3, Alice knows 1 and 2; posts by everyone.
    Transaction txn = db_->Begin();
    const char* names[] = {"Alice", "Bob", "Carol", "Dave"};
    for (int i = 0; i < 4; ++i) {
      auto vid = txn.InsertVertex("Person", {std::string(names[i]), int64_t{20 + i}});
      ASSERT_TRUE(vid.ok());
      persons_.push_back(*vid);
    }
    ASSERT_TRUE(txn.InsertEdge("knows", persons_[0], persons_[1]).ok());
    ASSERT_TRUE(txn.InsertEdge("knows", persons_[0], persons_[2]).ok());
    ASSERT_TRUE(txn.InsertEdge("knows", persons_[2], persons_[3]).ok());
    ASSERT_TRUE(txn.Commit().ok());
    // Posts: person i authors posts with embedding [10*i + j, ...].
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 3; ++j) {
        Transaction ptxn = db_->Begin();
        auto vid = ptxn.InsertVertex(
            "Post", {std::string(j == 0 ? "English" : "German"),
                     int64_t{500 + 300 * j}});
        ASSERT_TRUE(vid.ok());
        ASSERT_TRUE(ptxn.InsertEdge("hasCreator", *vid, persons_[i]).ok());
        ASSERT_TRUE(ptxn.SetEmbedding(*vid, "Post", "content_emb",
                                      {static_cast<float>(10 * i + j), 0, 0, 0})
                        .ok());
        ASSERT_TRUE(ptxn.Commit().ok());
        posts_.push_back(*vid);
      }
    }
    ASSERT_TRUE(db_->Vacuum().ok());
  }

  QueryParams Params(std::vector<float> qv) {
    QueryParams p;
    p["qv"] = std::move(qv);
    return p;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<GsqlSession> session_;
  std::vector<VertexId> persons_;
  std::vector<VertexId> posts_;
};

TEST_F(QuerySessionFixture, PureTopKSearch) {
  auto result = session_->Run(
      "R = SELECT s FROM (s:Post)"
      " ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT 2; PRINT R;",
      Params({21, 0, 0, 0}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->prints.size(), 1u);
  // Post with embedding 21 = person 2's post j=1.
  EXPECT_EQ(result->prints[0].vertices.size(), 2u);
  EXPECT_NE(result->last_plan.find("EmbeddingAction[Top 2"), std::string::npos);
}

TEST_F(QuerySessionFixture, FilteredSearchByAttribute) {
  auto result = session_->Run(
      "R = SELECT s FROM (s:Post) WHERE s.language = \"English\""
      " ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT 4; PRINT R;",
      Params({0, 0, 0, 0}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // English posts are j==0: embeddings 0, 10, 20, 30.
  std::set<VertexId> got(result->prints[0].vertices.begin(),
                         result->prints[0].vertices.end());
  std::set<VertexId> want = {posts_[0], posts_[3], posts_[6], posts_[9]};
  EXPECT_EQ(got, want);
  EXPECT_NE(result->last_plan.find("VertexAction[Post:s"), std::string::npos);
}

TEST_F(QuerySessionFixture, GraphPatternVectorSearch) {
  // Posts by people Alice knows (persons 1 and 2), closest to 10.
  auto result = session_->Run(
      "R = SELECT t FROM (s:Person) -[:knows]- (:Person) <-[:hasCreator]- (t:Post)"
      " WHERE s.firstName = \"Alice\""
      " ORDER BY VECTOR_DIST(t.content_emb, $qv) LIMIT 1; PRINT R;",
      Params({10, 0, 0, 0}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->prints[0].vertices.size(), 1u);
  EXPECT_EQ(result->prints[0].vertices[0], posts_[3]);  // person1, j=0 -> emb 10
}

TEST_F(QuerySessionFixture, GraphPatternExcludesNonMatching) {
  // Alice's own posts are NOT by someone Alice knows.
  auto result = session_->Run(
      "R = SELECT t FROM (s:Person) -[:knows]- (:Person) <-[:hasCreator]- (t:Post)"
      " WHERE s.firstName = \"Alice\""
      " ORDER BY VECTOR_DIST(t.content_emb, $qv) LIMIT 12; PRINT R;",
      Params({0, 0, 0, 0}));
  ASSERT_TRUE(result.ok());
  std::set<VertexId> got(result->prints[0].vertices.begin(),
                         result->prints[0].vertices.end());
  // Only posts of persons 1 and 2 qualify (6 posts).
  EXPECT_EQ(got.size(), 6u);
  EXPECT_EQ(got.count(posts_[0]), 0u);   // Alice's post
  EXPECT_EQ(got.count(posts_[10]), 0u);  // Dave's post (not a direct friend)
}

TEST_F(QuerySessionFixture, RangeSearch) {
  auto result = session_->Run(
      "R = SELECT s FROM (s:Post) WHERE VECTOR_DIST(s.content_emb, $qv) < 2.0;"
      "PRINT R;",
      Params({1, 0, 0, 0}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Embeddings 0, 1, 2 are within sqrt(2) -> squared distances 1, 0, 1.
  std::set<VertexId> got(result->prints[0].vertices.begin(),
                         result->prints[0].vertices.end());
  EXPECT_EQ(got, (std::set<VertexId>{posts_[0], posts_[1], posts_[2]}));
}

TEST_F(QuerySessionFixture, SimilarityJoinFindsClosestPair) {
  // Pairs (s, t): posts of Alice and posts of people Alice knows.
  auto result = session_->Run(
      "SELECT s, t FROM (s:Post) -[:hasCreator]-> (u:Person)"
      " -[:knows]- (v:Person) <-[:hasCreator]- (t:Post)"
      " WHERE u.firstName = \"Alice\""
      " ORDER BY VECTOR_DIST(s.content_emb, t.content_emb) LIMIT 2;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->last_join_pairs.size(), 2u);
  // Closest pair: Alice post emb=2 (j=2) and Bob post emb=10 -> d=64;
  // verify ordering is ascending and pairs connect Alice's posts.
  EXPECT_LE(result->last_join_pairs[0].distance,
            result->last_join_pairs[1].distance);
  std::set<VertexId> alice_posts = {posts_[0], posts_[1], posts_[2]};
  EXPECT_EQ(alice_posts.count(result->last_join_pairs[0].source), 1u);
}

TEST_F(QuerySessionFixture, QueryCompositionVectorSearchFilter) {
  // Q3 analog: graph block produces a variable consumed as a filter.
  auto result = session_->Run(
      "EnglishPosts = SELECT t FROM (t:Post) WHERE t.language = \"English\";"
      "TopK = VectorSearch({Post.content_emb}, $qv, 2,"
      " {filter: EnglishPosts, ef: 64, distanceMap: @@disMap});"
      "PRINT TopK; PRINT @@disMap;",
      Params({0, 0, 0, 0}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->prints.size(), 2u);
  EXPECT_EQ(result->prints[0].vertices.size(), 2u);
  for (VertexId v : result->prints[0].vertices) {
    EXPECT_TRUE(v == posts_[0] || v == posts_[3]);  // embeddings 0 and 10
  }
  EXPECT_TRUE(result->prints[1].is_distance_map);
  EXPECT_EQ(result->prints[1].distances.size(), 2u);
}

TEST_F(QuerySessionFixture, QueryCompositionVariableAsPatternSource) {
  // Q2 analog: vector search output feeds a graph block.
  auto result = session_->Run(
      "TopKPosts = SELECT s FROM (s:Post)"
      " ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT 1;"
      "Authors = SELECT p FROM (m:TopKPosts) -[:hasCreator]-> (p:Person);"
      "PRINT Authors;",
      Params({30, 0, 0, 0}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->prints[0].vertices.size(), 1u);
  EXPECT_EQ(result->prints[0].vertices[0], persons_[3]);  // emb 30 -> Dave
}

TEST_F(QuerySessionFixture, MultiTypeSearchRejectedWhenIncompatible) {
  ASSERT_TRUE(session_
                  ->Run("CREATE VERTEX Image (url STRING);"
                        "ALTER VERTEX Image ADD EMBEDDING ATTRIBUTE img_emb"
                        " (DIMENSION = 8, MODEL = CLIP, INDEX = HNSW,"
                        " DATATYPE = FLOAT, METRIC = L2);")
                  .ok());
  // Load one image embedding so the attribute state exists.
  Transaction txn = db_->Begin();
  auto vid = txn.InsertVertex("Image", {std::string("u")});
  ASSERT_TRUE(vid.ok());
  ASSERT_TRUE(
      txn.SetEmbedding(*vid, "Image", "img_emb", std::vector<float>(8, 0.f)).ok());
  ASSERT_TRUE(txn.Commit().ok());
  auto result = session_->Run(
      "R = VectorSearch({Post.content_emb, Image.img_emb}, $qv, 2); PRINT R;",
      Params({0, 0, 0, 0}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSemanticError);
}

TEST_F(QuerySessionFixture, MissingParamFails) {
  auto result = session_->Run(
      "R = SELECT s FROM (s:Post)"
      " ORDER BY VECTOR_DIST(s.content_emb, $missing) LIMIT 2;");
  ASSERT_FALSE(result.ok());
}

TEST_F(QuerySessionFixture, UnknownAliasFails) {
  auto result = session_->Run(
      "R = SELECT z FROM (s:Post) ORDER BY VECTOR_DIST(s.content_emb, $qv)"
      " LIMIT 2;",
      Params({0, 0, 0, 0}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSemanticError);
}

TEST_F(QuerySessionFixture, UnknownTypeOrVariableFails) {
  auto result = session_->Run("R = SELECT s FROM (s:Nope);");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSemanticError);
}

TEST_F(QuerySessionFixture, PrintUnknownNameFails) {
  auto result = session_->Run("PRINT NoSuchVar;");
  ASSERT_FALSE(result.ok());
}

TEST_F(QuerySessionFixture, PlainGraphSelect) {
  auto result = session_->Run(
      "Friends = SELECT p FROM (s:Person) -[:knows]- (p:Person)"
      " WHERE s.firstName = \"Alice\"; PRINT Friends;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::set<VertexId> got(result->prints[0].vertices.begin(),
                         result->prints[0].vertices.end());
  EXPECT_EQ(got, (std::set<VertexId>{persons_[1], persons_[2]}));
}

TEST_F(QuerySessionFixture, LimitParamAndKParam) {
  QueryParams params = Params({0, 0, 0, 0});
  params["k"] = int64_t{3};
  auto result = session_->Run(
      "R = SELECT s FROM (s:Post)"
      " ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT $k; PRINT R;",
      params);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->prints[0].vertices.size(), 3u);
  auto vs = session_->Run("R2 = VectorSearch({Post.content_emb}, $qv, $k); PRINT R2;",
                          params);
  ASSERT_TRUE(vs.ok()) << vs.status().ToString();
  EXPECT_EQ(vs->prints[0].vertices.size(), 3u);
}

TEST_F(QuerySessionFixture, SessionVariablePersistsAcrossRuns) {
  ASSERT_TRUE(session_
                  ->Run("English = SELECT t FROM (t:Post)"
                        " WHERE t.language = \"English\";")
                  .ok());
  auto result = session_->Run(
      "R = VectorSearch({Post.content_emb}, $qv, 1, {filter: English}); PRINT R;",
      Params({30, 0, 0, 0}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->prints[0].vertices[0], posts_[9]);
}

TEST_F(QuerySessionFixture, InjectedVariableFromCpp) {
  session_->SetVariable("Seeded", VertexSet{posts_[5]});
  auto result = session_->Run(
      "R = VectorSearch({Post.content_emb}, $qv, 5, {filter: Seeded}); PRINT R;",
      Params({0, 0, 0, 0}));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->prints[0].vertices.size(), 1u);
  EXPECT_EQ(result->prints[0].vertices[0], posts_[5]);
}

TEST_F(QuerySessionFixture, BooleanOperatorsInWhere) {
  auto result = session_->Run(
      "R = SELECT t FROM (t:Post)"
      " WHERE (t.language = \"English\" OR t.length > 1000)"
      " AND NOT t.language = \"French\"; PRINT R;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // English (4 posts, len 500) OR length>1000 (j==2 -> 4 posts, len 1100).
  EXPECT_EQ(result->prints[0].vertices.size(), 8u);
}

TEST_F(QuerySessionFixture, ComparisonOperatorsSpectrum) {
  auto le = session_->Run("R = SELECT t FROM (t:Post) WHERE t.length <= 500;"
                          "PRINT R;");
  ASSERT_TRUE(le.ok());
  EXPECT_EQ(le->prints[0].vertices.size(), 4u);
  auto ne = session_->Run("R = SELECT t FROM (t:Post) WHERE t.length != 500;"
                          "PRINT R;");
  ASSERT_TRUE(ne.ok());
  EXPECT_EQ(ne->prints[0].vertices.size(), 8u);
  auto ge = session_->Run("R = SELECT t FROM (t:Post) WHERE t.length >= 1100;"
                          "PRINT R;");
  ASSERT_TRUE(ge.ok());
  EXPECT_EQ(ge->prints[0].vertices.size(), 4u);
}

TEST_F(QuerySessionFixture, UnknownAttributeInPredicateFails) {
  auto result = session_->Run("R = SELECT t FROM (t:Post) WHERE t.nope = 1;");
  ASSERT_FALSE(result.ok());
}

TEST_F(QuerySessionFixture, MultiAliasPredicateRejected) {
  auto result = session_->Run(
      "R = SELECT t FROM (s:Person) -[:knows]- (t:Person) WHERE s.age > t.age;");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSemanticError);
}

TEST_F(QuerySessionFixture, SetOperatorsOnVertexSetVariables) {
  auto result = session_->Run(
      "English = SELECT t FROM (t:Post) WHERE t.language = \"English\";"
      "Long = SELECT t FROM (t:Post) WHERE t.length > 600;"
      "Both = English INTERSECT Long;"
      "Either = English UNION Long;"
      "OnlyEnglish = English MINUS Long;"
      "PRINT Both; PRINT Either; PRINT OnlyEnglish;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // English posts: j==0 (4 posts, length 500). Long posts: j>=1 (8 posts).
  const auto& both = result->prints[0].vertices;
  const auto& either = result->prints[1].vertices;
  const auto& only = result->prints[2].vertices;
  EXPECT_EQ(both.size(), 0u);     // English posts are all length 500
  EXPECT_EQ(either.size(), 12u);  // all posts
  EXPECT_EQ(only.size(), 4u);
}

TEST_F(QuerySessionFixture, SetOperatorUnknownVariableFails) {
  auto result = session_->Run("X = NoSuchA UNION NoSuchB;");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSemanticError);
}

TEST_F(QuerySessionFixture, SetOpResultComposesWithVectorSearch) {
  QueryParams params = Params({0, 0, 0, 0});
  auto result = session_->Run(
      "English = SELECT t FROM (t:Post) WHERE t.language = \"English\";"
      "German = SELECT t FROM (t:Post) WHERE t.language = \"German\";"
      "All = English UNION German;"
      "R = VectorSearch({Post.content_emb}, $qv, 12, {filter: All}); PRINT R;",
      params);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->prints[0].vertices.size(), 12u);
}

TEST_F(QuerySessionFixture, EmptyAttributeSearchReturnsEmpty) {
  // An embedding attribute that exists in the schema but holds no vectors
  // yields an empty result, not an error.
  ASSERT_TRUE(session_
                  ->Run("CREATE VERTEX Empty (t STRING);"
                        "ALTER VERTEX Empty ADD EMBEDDING ATTRIBUTE emb"
                        " IN EMBEDDING SPACE space1;")
                  .ok());
  auto result = session_->Run(
      "R = VectorSearch({Empty.emb}, $qv, 3); PRINT R;", Params({0, 0, 0, 0}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->prints[0].vertices.empty());
}

TEST_F(QuerySessionFixture, PlanTextShapeMatchesPaper) {
  auto result = session_->Run(
      "R = SELECT s FROM (s:Post) WHERE s.language = \"English\""
      " ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT 5;",
      Params({0, 0, 0, 0}));
  ASSERT_TRUE(result.ok());
  // Bottom-up plan: EmbeddingAction on top of VertexAction (Sec. 5.2).
  const std::string& plan = result->last_plan;
  const size_t emb = plan.find("EmbeddingAction[Top 5, {s.content_emb}, $qv]");
  const size_t vertex = plan.find("VertexAction[Post:s");
  ASSERT_NE(emb, std::string::npos) << plan;
  ASSERT_NE(vertex, std::string::npos) << plan;
  EXPECT_LT(emb, vertex);
}

// --- ExecuteVectorSearch error paths -----------------------------------

TEST_F(QuerySessionFixture, WrongQueryVectorDimensionFails) {
  // space1 is 4-dimensional; a 3-float query must be rejected up front on
  // both the VectorSearch() and the SELECT ... ORDER BY VECTOR_DIST paths,
  // not read past the buffer.
  auto fn = session_->Run("R = VectorSearch({Post.content_emb}, $qv, 2); PRINT R;",
                          Params({1, 2, 3}));
  ASSERT_FALSE(fn.ok());
  EXPECT_NE(fn.status().ToString().find("dimension"), std::string::npos)
      << fn.status().ToString();
  auto select = session_->Run(
      "R = SELECT s FROM (s:Post)"
      " ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT 2; PRINT R;",
      Params({1, 2, 3, 4, 5}));
  ASSERT_FALSE(select.ok());
  EXPECT_NE(select.status().ToString().find("dimension"), std::string::npos)
      << select.status().ToString();
}

TEST_F(QuerySessionFixture, VectorSearchUnknownVertexTypeFails) {
  auto result = session_->Run("R = VectorSearch({Nope.emb}, $qv, 2); PRINT R;",
                              Params({0, 0, 0, 0}));
  ASSERT_FALSE(result.ok());
}

TEST_F(QuerySessionFixture, VectorSearchUnknownEmbeddingAttrFails) {
  auto result = session_->Run("R = VectorSearch({Post.no_such_emb}, $qv, 2); PRINT R;",
                              Params({0, 0, 0, 0}));
  ASSERT_FALSE(result.ok());
}

TEST_F(QuerySessionFixture, ZeroKFails) {
  auto fn = session_->Run("R = VectorSearch({Post.content_emb}, $qv, 0); PRINT R;",
                          Params({0, 0, 0, 0}));
  ASSERT_FALSE(fn.ok());
  auto select = session_->Run(
      "R = SELECT s FROM (s:Post)"
      " ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT 0; PRINT R;",
      Params({0, 0, 0, 0}));
  ASSERT_FALSE(select.ok());
  QueryParams params = Params({0, 0, 0, 0});
  params["k"] = int64_t{0};
  auto param_k = session_->Run(
      "R = VectorSearch({Post.content_emb}, $qv, $k); PRINT R;", params);
  ASSERT_FALSE(param_k.ok());
}

TEST_F(QuerySessionFixture, EmptyVertexSetFilterReturnsEmpty) {
  // An empty candidate set is a valid (if useless) filter: the search
  // returns no hits rather than erroring or ignoring the filter.
  session_->SetVariable("None", VertexSet{});
  auto result = session_->Run(
      "R = VectorSearch({Post.content_emb}, $qv, 3, {filter: None}); PRINT R;",
      Params({0, 0, 0, 0}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->prints[0].vertices.empty());
}

}  // namespace
}  // namespace tigervector

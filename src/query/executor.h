#ifndef TIGERVECTOR_QUERY_EXECUTOR_H_
#define TIGERVECTOR_QUERY_EXECUTOR_H_

#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "core/database.h"
#include "query/ast.h"
#include "util/result.h"

namespace tigervector {

// Runtime query parameter ($name bindings): scalar or query vector.
using QueryParam = std::variant<int64_t, double, std::string, std::vector<float>>;
using QueryParams = std::unordered_map<std::string, QueryParam>;

// Vertex-set variables from prior query blocks (GSQL query composition).
using VarMap = std::unordered_map<std::string, VertexSet>;

// One operator of an EXPLAINed plan: the label mirrors the bottom-up plan
// text; `details` carry the static decisions (brute-force vs HNSW tier
// threshold math, pre-/post-filter strategy, fan-out degree); `actuals`
// are filled only under EXPLAIN ANALYZE (rows in/out, candidates scanned,
// distance evals, per-server timings).
struct PlanNode {
  std::string label;
  std::vector<std::string> details;
  std::vector<std::pair<std::string, std::string>> actuals;
};

struct PlanDescription {
  std::vector<PlanNode> nodes;
  bool analyzed = false;

  void Add(PlanNode node) { nodes.push_back(std::move(node)); }
  std::string Render() const;
};

// Result of one SELECT block.
struct SelectResult {
  // Single-alias selects fill `vertices` (+ `distances` when the block ran
  // a vector search).
  VertexSet vertices;
  std::unordered_map<VertexId, float> distances;
  // Similarity joins fill `pairs` sorted by ascending distance.
  struct Pair {
    VertexId source;
    VertexId target;
    float distance;
  };
  std::vector<Pair> pairs;
  bool is_join = false;
  // Bottom-up plan rendering (paper Sec. 5.1-5.4 style):
  //   EmbeddingAction[Top k, {t.content_emb}, query_vector]
  //   VertexAction[Post:t {...}]
  std::string plan;
};

// Executes parsed SELECT blocks and VectorSearch() calls against a
// Database. Pattern evaluation follows the pre-filter design of the paper:
// graph predicates and pattern connectivity produce a candidate bitmap
// first, then a single EmbeddingAction consumes it (Sec. 5.2-5.3).
class QueryExecutor {
 public:
  explicit QueryExecutor(Database* db) : db_(db) {}

  // Role all subsequent queries run under (empty = superuser). Scans of or
  // searches over vertex types the role cannot read are rejected/filtered.
  void SetRole(std::string role) { role_ = std::move(role); }
  const std::string& role() const { return role_; }

  // When set, this executor skips both tiers of the query cache (lookups
  // and inserts) without touching the database-wide toggle. Differential
  // tests run the same query through a cached and a bypassing executor and
  // compare bit-for-bit.
  void set_cache_bypass(bool bypass) { cache_bypass_ = bypass; }
  bool cache_bypass() const { return cache_bypass_; }

  // `explain` (optional) receives the plan description; with
  // `execute = false` (EXPLAIN without ANALYZE) the plan is built from the
  // statement alone and the block is not evaluated.
  Result<SelectResult> ExecuteSelect(const SelectStmt& stmt, const QueryParams& params,
                                     const VarMap& vars,
                                     PlanDescription* explain = nullptr,
                                     bool execute = true);

  // Executes a parsed VectorSearch() statement; returns the top-k vertex
  // set and optionally fills `distance_map`.
  Result<VertexSet> ExecuteVectorSearch(const VectorSearchStmt& stmt,
                                        const QueryParams& params, const VarMap& vars,
                                        std::unordered_map<VertexId, float>* distance_map,
                                        PlanDescription* explain = nullptr,
                                        bool execute = true);

 private:
  struct ResolvedNode {
    std::string alias;
    int type_id = -1;            // -1 = untyped
    const VertexSet* var = nullptr;  // non-null when bound to a variable
    std::vector<const Expr*> predicates;
  };

  Result<std::vector<ResolvedNode>> ResolveNodes(const SelectStmt& stmt,
                                                 const VarMap& vars) const;

  // Evaluates a scalar predicate for one vertex.
  Result<bool> EvalPredicate(const Expr& expr, VertexId vid, Tid read_tid,
                             const QueryParams& params) const;
  Result<Value> EvalValue(const Expr& expr, VertexId vid, Tid read_tid,
                          const QueryParams& params) const;

  // Per-BaseSet tally of predicate-bitmap cache outcomes, summarized as
  // the `cache:` actual of the VertexAction plan node.
  struct ScanCacheProbe {
    size_t hits = 0;
    size_t misses = 0;
    size_t bypasses = 0;
  };

  // Base candidate set of a node (type scan or variable), with predicates.
  // Type scans consult the per-segment predicate bitmap cache; `probe`
  // (optional) receives the per-segment outcome tally.
  Result<VertexSet> BaseSet(const ResolvedNode& node, Tid read_tid,
                            const QueryParams& params,
                            ScanCacheProbe* probe = nullptr) const;

  Database* db_;
  std::string role_;
  bool cache_bypass_ = false;
};

// Renders an expression back to text (used in plan output and errors).
std::string ExprToString(const Expr& expr);

}  // namespace tigervector

#endif  // TIGERVECTOR_QUERY_EXECUTOR_H_

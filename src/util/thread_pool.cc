#include "util/thread_pool.h"

#include <algorithm>

namespace tigervector {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t num_chunks = std::min(n, threads_.size() * 4);
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  const size_t total = (n + chunk - 1) / chunk;
  // `done` must be advanced under `done_mu`: if it were a bare atomic, the
  // waiter could observe the final count on a spurious wake and destroy
  // done_mu/done_cv while the last worker is still locking them.
  size_t done = 0;
  std::mutex done_mu;
  std::condition_variable done_cv;
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    Submit([&, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
      std::lock_guard<std::mutex> lock(done_mu);
      if (++done == total) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done == total; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace tigervector

// Micro-benchmarks (google-benchmark) of the networked serving layer:
// payload CRC throughput, frame + ScriptResult codec round-trips, loopback
// ping RTT, and the headline number — a top-k query via tv_client against
// the same query run in-process, which isolates the wire protocol's
// serialize/send/deserialize overhead from the search itself.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "query/session.h"
#include "server/tv_server.h"
#include "util/rng.h"

namespace tigervector {
namespace {

constexpr size_t kDim = 64;
constexpr size_t kDocs = 2000;

// One shared database + server for every benchmark in this binary; the
// fixtures below only differ in which side of the socket they exercise.
struct ServingHarness {
  ServingHarness() {
    Database::Options options;
    db = std::make_unique<Database>(options);
    GsqlSession boot(db.get());
    auto ddl = boot.Run(
        "CREATE VERTEX Doc (title STRING);"
        "CREATE EMBEDDING SPACE space1 (DIMENSION = " +
        std::to_string(kDim) +
        ", MODEL = M, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);"
        "ALTER VERTEX Doc ADD EMBEDDING ATTRIBUTE emb IN EMBEDDING SPACE "
        "space1;");
    if (!ddl.ok()) std::abort();
    Rng rng(7);
    Transaction txn = db->Begin();
    for (size_t i = 0; i < kDocs; ++i) {
      auto vid = txn.InsertVertex("Doc", {"d" + std::to_string(i)});
      if (!vid.ok()) std::abort();
      std::vector<float> v(kDim);
      for (float& x : v) x = rng.NextFloat();
      if (!txn.SetEmbedding(*vid, "Doc", "emb", v).ok()) std::abort();
    }
    if (!txn.Commit().ok()) std::abort();
    if (!db->Vacuum().ok()) std::abort();

    server::ServerOptions so;
    so.port = 0;  // ephemeral
    server = std::make_unique<server::TvServer>(db.get(), so);
    if (!server->Start().ok()) std::abort();

    net::ClientOptions co;
    co.port = server->port();
    client = std::make_unique<net::TvClient>(co);

    query.assign(kDim, 0.5f);
    topk_script =
        "R = SELECT s FROM (s:Doc) ORDER BY VECTOR_DIST(s.emb, $qv) "
        "LIMIT 10; PRINT R;";
  }
  ~ServingHarness() {
    client->Disconnect();
    server->Stop();
  }

  QueryParams Params() const {
    QueryParams p;
    p["qv"] = query;
    return p;
  }

  std::unique_ptr<Database> db;
  std::unique_ptr<server::TvServer> server;
  std::unique_ptr<net::TvClient> client;
  std::vector<float> query;
  std::string topk_script;
};

ServingHarness& Harness() {
  static ServingHarness harness;
  return harness;
}

void BM_Crc32(benchmark::State& state) {
  const size_t bytes = state.range(0);
  std::string data(bytes, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::Crc32(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_ScriptResultCodec(benchmark::State& state) {
  // A realistic top-k response: one print with a distance map of `n` hits.
  const size_t n = state.range(0);
  ScriptResult result;
  ScriptResult::Printed print;
  print.name = "R";
  print.is_distance_map = true;
  for (size_t i = 0; i < n; ++i) {
    print.vertices.push_back(i);
    print.distances[i] = 0.25f * static_cast<float>(i);
  }
  result.prints.push_back(print);
  for (auto _ : state) {
    const std::string payload = net::EncodeScriptResult(result);
    ScriptResult decoded;
    if (!net::DecodeScriptResult(payload, &decoded).ok()) std::abort();
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScriptResultCodec)->Arg(10)->Arg(100)->Arg(1000);

void BM_LoopbackPing(benchmark::State& state) {
  auto& h = Harness();
  for (auto _ : state) {
    if (!h.client->Ping().ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoopbackPing);

void BM_TopKInProcess(benchmark::State& state) {
  auto& h = Harness();
  // The query cache stays enabled on both sides: after the first iteration
  // each run is a warm hit, so the over-wire number minus this one is the
  // wire protocol's cost alone, not search-time noise.
  GsqlSession session(h.db.get());
  const QueryParams params = h.Params();
  for (auto _ : state) {
    auto result = session.Run(h.topk_script, params);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(*result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TopKInProcess);

void BM_TopKOverWire(benchmark::State& state) {
  auto& h = Harness();
  const QueryParams params = h.Params();
  net::RunOptions run;
  run.idempotent = true;
  for (auto _ : state) {
    auto result = h.client->Run(h.topk_script, params, run);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(*result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TopKOverWire);

}  // namespace
}  // namespace tigervector

BENCHMARK_MAIN();

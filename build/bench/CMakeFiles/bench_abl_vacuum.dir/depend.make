# Empty dependencies file for bench_abl_vacuum.
# This may be replaced when dependencies are built.

// Figure 9 reproduction: node scalability. Segments are sharded across
// {1, 2, 4, 8} simulated servers; for a mid-accuracy (ef=64) and a
// high-accuracy (ef=400) operating point we report measured wall-clock QPS
// on this single machine AND an analytic projection of QPS with N
// dedicated nodes (see DESIGN.md substitutions: the host has 1 vCPU, so
// wall-clock cannot show multi-node speedup).
//
// Projection method: each shard's isolated service time t_i is measured
// sequentially (no cross-shard CPU contention); a fleet of dedicated nodes
// scatter-gathers every query, so throughput is gated by the slowest
// shard: QPS ≈ threads_per_server / max_i(t_i).
#include "bench/bench_common.h"
#include "mpp/cluster.h"
#include "util/timer.h"
#include "workload/driver.h"

using namespace tigervector;
using namespace tigervector::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv);
  const size_t n = BaseN();
  const size_t nq = QueryN();
  const size_t k = 10;

  VectorDataset dataset = MakeSiftLike(n, nq);
  ComputeGroundTruth(&dataset, k, nullptr);
  // Small segments so 8 servers all own several.
  auto instance = LoadTigerVector(dataset, /*segment_capacity=*/
                                  static_cast<uint32_t>(std::max<size_t>(
                                      1024, n / 32)));

  PrintHeader("Figure 9: node scalability on " + dataset.name +
              " (k=" + std::to_string(k) + ")");
  PrintRow({"servers", "ef", "recall", "measured QPS", "projected QPS",
            "speedup vs 1"});

  const size_t threads_per_server = 2;
  for (size_t ef : {64u, 400u}) {
    const double recall = MeasureRecall(dataset, instance, k, ef);
    double projected_one = 0;
    for (size_t servers : {1u, 2u, 4u, 8u}) {
      Cluster cluster(instance.db->store(), instance.db->embeddings(),
                      {servers, threads_per_server});
      // Isolated per-shard service times: run each server's shard alone.
      const size_t probe = std::min<size_t>(16, dataset.num_queries);
      double slowest_shard = 0;
      for (size_t server = 0; server < servers; ++server) {
        std::vector<SegmentId> shard;
        for (const EmbeddingSegment* seg :
             instance.db->embeddings()->SegmentsOf("Item", "emb")) {
          if (cluster.ServerOf(seg->segment_id()) == server) {
            shard.push_back(seg->segment_id());
          }
        }
        if (shard.empty()) continue;
        auto run_probe = [&] {
          for (size_t q = 0; q < probe; ++q) {
            VectorSearchRequest request;
            request.attrs = {{"Item", "emb"}};
            request.query = dataset.QueryVector(q);
            request.k = k;
            request.ef = ef;
            request.segment_subset = &shard;
            if (!instance.db->embeddings()->TopKSearch(request).ok()) std::abort();
          }
        };
        run_probe();  // warm-up (caches, lazy allocations)
        // Best-of-3 to suppress single-core scheduling noise.
        double best = 1e30;
        for (int pass = 0; pass < 3; ++pass) {
          Timer t;
          run_probe();
          best = std::min(best, t.ElapsedSeconds() / probe);
        }
        slowest_shard = std::max(slowest_shard, best);
      }
      const double projected =
          slowest_shard > 0
              ? static_cast<double>(threads_per_server) / slowest_shard
              : 0;
      if (servers == 1) projected_one = projected;
      // Measured closed-loop throughput through the coordinator (bounded
      // by the single physical core, reported for transparency).
      auto run = RunClosedLoop(ClientThreads(), 4, [&](size_t t, size_t i) {
        VectorSearchRequest request;
        request.attrs = {{"Item", "emb"}};
        request.query = dataset.QueryVector((t * 131 + i) % dataset.num_queries);
        request.k = k;
        request.ef = ef;
        if (!cluster.DistributedTopK(request).ok()) std::abort();
      });
      PrintRow({std::to_string(servers), std::to_string(ef), Fmt(recall, 4),
                Fmt(run.qps, 1), Fmt(projected, 1),
                Fmt(projected_one > 0 ? projected / projected_one : 0, 2) + "x"});
    }
  }
  return 0;
}

#include "util/bitmap.h"

#include <bit>
#include <cassert>

namespace tigervector {

namespace {
constexpr size_t kBitsPerWord = 64;

size_t NumWords(size_t size) { return (size + kBitsPerWord - 1) / kBitsPerWord; }
}  // namespace

Bitmap::Bitmap(size_t size, bool initial) { Resize(size, initial); }

void Bitmap::Resize(size_t size, bool initial) {
  size_ = size;
  words_.assign(NumWords(size), initial ? ~uint64_t{0} : 0);
  if (initial && size % kBitsPerWord != 0 && !words_.empty()) {
    // Keep the tail bits clear so Count() stays exact.
    words_.back() &= (uint64_t{1} << (size % kBitsPerWord)) - 1;
  }
}

void Bitmap::Set(size_t i) {
  assert(i < size_);
  words_[i / kBitsPerWord] |= uint64_t{1} << (i % kBitsPerWord);
}

void Bitmap::Clear(size_t i) {
  assert(i < size_);
  words_[i / kBitsPerWord] &= ~(uint64_t{1} << (i % kBitsPerWord));
}

bool Bitmap::Test(size_t i) const {
  if (i >= size_) return false;
  return (words_[i / kBitsPerWord] >> (i % kBitsPerWord)) & 1;
}

size_t Bitmap::Count() const {
  size_t count = 0;
  for (uint64_t w : words_) count += static_cast<size_t>(std::popcount(w));
  return count;
}

size_t Bitmap::CountRange(size_t begin, size_t end) const {
  if (end > size_) end = size_;
  if (begin >= end) return 0;
  size_t count = 0;
  size_t i = begin;
  // Head bits up to a word boundary.
  while (i < end && i % kBitsPerWord != 0) {
    if (Test(i)) ++count;
    ++i;
  }
  // Whole words.
  while (i + kBitsPerWord <= end) {
    count += static_cast<size_t>(std::popcount(words_[i / kBitsPerWord]));
    i += kBitsPerWord;
  }
  // Tail bits.
  while (i < end) {
    if (Test(i)) ++count;
    ++i;
  }
  return count;
}

void Bitmap::And(const Bitmap& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void Bitmap::Or(const Bitmap& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void Bitmap::SetAll() {
  Resize(size_, true);
}

void Bitmap::ClearAll() {
  words_.assign(words_.size(), 0);
}

}  // namespace tigervector

#ifndef TIGERVECTOR_BASELINES_COMPETITORS_H_
#define TIGERVECTOR_BASELINES_COMPETITORS_H_

#include <memory>
#include <vector>

#include "baselines/baseline.h"
#include "util/thread_pool.h"

namespace tigervector {

// Neo4j model: one global HNSW over int8-quantized vectors (Lucene's
// default scalar quantization), no search-parameter tuning (ef is pinned to
// k, Lucene's default num_candidates), post-filtering only, single-threaded
// index build, JVM/Lucene per-query execution tax.
class Neo4jLikeBaseline : public VectorBaseline {
 public:
  Neo4jLikeBaseline(size_t dim, Metric metric, size_t m = 16,
                    size_t ef_construction = 100);

  std::string name() const override { return "neo4j-like"; }
  Status Load(const float* data, size_t n, size_t dim) override;
  Status BuildIndex(ThreadPool* pool) override;  // pool ignored: 1 thread
  std::vector<SearchHit> TopK(const float* query, size_t k, size_t ef) const override;
  bool supports_ef_tuning() const override { return false; }
  bool atomic_updates() const override { return true; }

 private:
  size_t dim_;
  Metric metric_;
  size_t m_;
  size_t efc_;
  BaselineOverheads overheads_ = Neo4jOverheads();
  std::vector<float> raw_;      // loaded CSV-equivalent staging area
  std::unique_ptr<HnswIndex> index_;
};

// Neptune Analytics model: one global, non-distributed HNSW; the managed
// service pins the search parameter high (targets ~99.9% recall) and does
// not expose tuning; vector index updates are not atomic (the paper calls
// this out explicitly).
class NeptuneLikeBaseline : public VectorBaseline {
 public:
  NeptuneLikeBaseline(size_t dim, Metric metric, size_t m = 16,
                      size_t ef_construction = 128);

  std::string name() const override { return "neptune-like"; }
  Status Load(const float* data, size_t n, size_t dim) override;
  Status BuildIndex(ThreadPool* pool) override;
  std::vector<SearchHit> TopK(const float* query, size_t k, size_t ef) const override;
  bool supports_ef_tuning() const override { return false; }
  bool atomic_updates() const override { return false; }

 private:
  size_t dim_;
  Metric metric_;
  size_t m_;
  size_t efc_;
  BaselineOverheads overheads_ = NeptuneOverheads();
  std::vector<float> raw_;
  std::unique_ptr<HnswIndex> index_;
};

// Milvus model: specialized vector store with segment-granular HNSW,
// tunable search parameters, parallel build, a heavyweight bulk-load path,
// and a modest Go-runtime/proxy per-query tax.
class MilvusLikeBaseline : public VectorBaseline {
 public:
  MilvusLikeBaseline(size_t dim, Metric metric, size_t segment_capacity = 8192,
                     size_t m = 16, size_t ef_construction = 128,
                     ThreadPool* pool = nullptr);

  std::string name() const override { return "milvus-like"; }
  Status Load(const float* data, size_t n, size_t dim) override;
  Status BuildIndex(ThreadPool* pool) override;
  std::vector<SearchHit> TopK(const float* query, size_t k, size_t ef) const override;
  bool supports_ef_tuning() const override { return true; }
  bool atomic_updates() const override { return true; }

  size_t num_segments() const { return segments_.size(); }

 private:
  size_t dim_;
  Metric metric_;
  size_t segment_capacity_;
  size_t m_;
  size_t efc_;
  ThreadPool* pool_;
  BaselineOverheads overheads_ = MilvusOverheads();
  std::vector<float> raw_;
  std::vector<std::unique_ptr<HnswIndex>> segments_;
};

// TigerVector's own flat comparator for recall ground truth on baseline
// datasets (exact scan; no overheads).
class ExactBaseline : public VectorBaseline {
 public:
  ExactBaseline(size_t dim, Metric metric) : dim_(dim), metric_(metric) {}

  std::string name() const override { return "exact"; }
  Status Load(const float* data, size_t n, size_t dim) override;
  Status BuildIndex(ThreadPool* pool) override;
  std::vector<SearchHit> TopK(const float* query, size_t k, size_t ef) const override;
  bool supports_ef_tuning() const override { return false; }
  bool atomic_updates() const override { return true; }

 private:
  size_t dim_;
  Metric metric_;
  std::vector<float> data_;
  size_t n_ = 0;
};

}  // namespace tigervector

#endif  // TIGERVECTOR_BASELINES_COMPETITORS_H_

#include "embedding/embedding_segment.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "hnsw/flat_index.h"
#include "hnsw/ivf_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/topk_heap.h"

namespace tigervector {

namespace {
constexpr uint64_t kDeltaFileMagic = 0x54475644'454c5431ULL;  // "TGVDELT1"

// Factory over the embedding metadata's INDEX choice (paper Sec. 4.4: the
// embedding type decides which native index backs each segment).
std::unique_ptr<VectorIndex> CreateVectorIndex(const EmbeddingTypeInfo& info,
                                               const HnswParams& params) {
  switch (info.index) {
    case VectorIndexType::kHnsw:
      return std::make_unique<HnswIndex>(params);
    case VectorIndexType::kFlat:
      return std::make_unique<FlatIndex>(params.dim, params.metric);
    case VectorIndexType::kIvfFlat: {
      IvfParams ivf;
      ivf.dim = params.dim;
      ivf.metric = params.metric;
      ivf.nlist = std::max<size_t>(8, params.max_elements / 128);
      ivf.seed = params.seed;
      return std::make_unique<IvfFlatIndex>(ivf);
    }
  }
  return std::make_unique<HnswIndex>(params);
}
}  // namespace

Status DeltaFile::Save(const std::string& file_path) {
  FILE* f = std::fopen(file_path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + file_path);
  bool ok = std::fwrite(&kDeltaFileMagic, sizeof(kDeltaFileMagic), 1, f) == 1;
  ok = ok && std::fwrite(&max_tid, sizeof(max_tid), 1, f) == 1;
  const uint64_t count = deltas.size();
  ok = ok && std::fwrite(&count, sizeof(count), 1, f) == 1;
  for (const VectorDelta& d : deltas) {
    if (!ok) break;
    const uint8_t action = static_cast<uint8_t>(d.action);
    const uint64_t dim = d.value.size();
    ok = std::fwrite(&action, 1, 1, f) == 1 &&
         std::fwrite(&d.id, sizeof(d.id), 1, f) == 1 &&
         std::fwrite(&d.tid, sizeof(d.tid), 1, f) == 1 &&
         std::fwrite(&dim, sizeof(dim), 1, f) == 1 &&
         (dim == 0 ||
          std::fwrite(d.value.data(), sizeof(float), dim, f) == dim);
  }
  std::fclose(f);
  if (!ok) return Status::IOError("short write to " + file_path);
  path = file_path;
  return Status::OK();
}

Result<DeltaFile> DeltaFile::Load(const std::string& file_path) {
  FILE* f = std::fopen(file_path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + file_path);
  DeltaFile out;
  uint64_t magic = 0, count = 0;
  bool ok = std::fread(&magic, sizeof(magic), 1, f) == 1 && magic == kDeltaFileMagic &&
            std::fread(&out.max_tid, sizeof(out.max_tid), 1, f) == 1 &&
            std::fread(&count, sizeof(count), 1, f) == 1;
  for (uint64_t i = 0; ok && i < count; ++i) {
    VectorDelta d;
    uint8_t action = 0;
    uint64_t dim = 0;
    ok = std::fread(&action, 1, 1, f) == 1 &&
         std::fread(&d.id, sizeof(d.id), 1, f) == 1 &&
         std::fread(&d.tid, sizeof(d.tid), 1, f) == 1 &&
         std::fread(&dim, sizeof(dim), 1, f) == 1;
    if (ok && dim > 0) {
      d.value.resize(dim);
      ok = std::fread(d.value.data(), sizeof(float), dim, f) == dim;
    }
    if (ok) {
      d.action = static_cast<VectorDelta::Action>(action);
      out.deltas.push_back(std::move(d));
    }
  }
  std::fclose(f);
  if (!ok) return Status::IOError("corrupt delta file " + file_path);
  out.path = file_path;
  return out;
}

EmbeddingSegment::EmbeddingSegment(SegmentId segment_id, VertexId base_vid,
                                   uint32_t capacity, const EmbeddingTypeInfo& info,
                                   const HnswParams& index_params)
    : segment_id_(segment_id),
      base_vid_(base_vid),
      capacity_(capacity),
      info_(info),
      index_params_(index_params) {
  index_params_.dim = info.dimension;
  index_params_.metric = info.metric;
  index_params_.max_elements = capacity;
  // Deterministic but distinct level draws per segment.
  index_params_.seed = index_params.seed + segment_id * 0x9e3779b9ULL;
  index_ = CreateVectorIndex(info_, index_params_);
}

Status EmbeddingSegment::ApplyDelta(VectorDelta delta) {
  if (delta.action == VectorDelta::Action::kUpsert &&
      delta.value.size() != info_.dimension) {
    return Status::InvalidArgument("vector delta dimension mismatch");
  }
  if (delta.id < base_vid_ || delta.id >= base_vid_ + capacity_) {
    return Status::InvalidArgument("vector delta id out of segment range");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  pending_.first_pending_tid.try_emplace(delta.id, delta.tid);
  pending_.in_memory.push_back(std::move(delta));
  TV_COUNTER_INC("tv.vacuum.delta_appends_total");
  return Status::OK();
}

Result<size_t> EmbeddingSegment::DeltaMerge(Tid up_to_tid, const std::string& dir) {
  TV_SPAN("vacuum.delta_merge");
  Timer timer;
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Deltas are appended in commit order, so the prefix with tid <= up_to_tid
  // is exactly what this pass seals.
  auto split = pending_.in_memory.begin();
  Tid max_tid = 0;
  while (split != pending_.in_memory.end() && split->tid <= up_to_tid) {
    max_tid = split->tid;
    ++split;
  }
  if (split == pending_.in_memory.begin()) return size_t{0};
  DeltaFile file;
  file.max_tid = max_tid;
  file.deltas.assign(std::make_move_iterator(pending_.in_memory.begin()),
                     std::make_move_iterator(split));
  pending_.in_memory.erase(pending_.in_memory.begin(), split);
  const size_t sealed = file.deltas.size();
  if (!dir.empty()) {
    const std::string path = dir + "/emb_seg" + std::to_string(segment_id_) +
                             "_tid" + std::to_string(max_tid) + ".delta";
    TV_RETURN_NOT_OK(file.Save(path));
  }
  pending_.sealed.push_back(std::move(file));
  TV_COUNTER_INC("tv.vacuum.delta_merges_total");
  TV_COUNTER_ADD("tv.vacuum.delta_merge_records_total", sealed);
  TV_HISTOGRAM_OBSERVE("tv.vacuum.delta_merge_seconds", timer.ElapsedSeconds());
  return sealed;
}

Result<size_t> EmbeddingSegment::IndexMerge(Tid up_to_tid, ThreadPool* pool) {
  TV_SPAN("vacuum.index_merge");
  Timer timer;
  // Copy the deltas to merge (sealed files are ordered by max_tid). A copy
  // (rather than pointers) keeps this safe against a concurrent DeltaMerge
  // reallocating the sealed list.
  size_t num_files = 0;
  size_t merged_records = 0;
  std::unordered_map<VertexId, VectorDelta> latest;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const DeltaFile& f : pending_.sealed) {
      if (f.max_tid > up_to_tid) break;
      ++num_files;
      // Latest-wins dedup per id across the merged batch: the whole batch
      // becomes visible in the index atomically from the reader's
      // perspective (readers keep using the delta overlay until the files
      // are retired).
      for (const VectorDelta& d : f.deltas) {
        latest[d.id] = d;
        ++merged_records;
      }
    }
  }
  if (num_files == 0) return size_t{0};

  std::vector<VectorIndexUpdate> items;
  items.reserve(latest.size());
  for (const auto& [id, d] : latest) {
    VectorIndexUpdate item;
    item.label = id;
    item.is_delete = d.action == VectorDelta::Action::kDelete;
    item.value = d.value;
    items.push_back(std::move(item));
  }
  TV_RETURN_NOT_OK(index_->UpdateItems(items, pool));

  // Retire the merged files and advance the merged horizon; this is the
  // snapshot switch point (paper Fig. 4).
  std::unique_lock<std::shared_mutex> lock(mu_);
  const size_t num_merged = num_files;
  Tid new_merged = merged_tid_;
  for (size_t i = 0; i < num_merged; ++i) {
    new_merged = std::max(new_merged, pending_.sealed[i].max_tid);
    if (!pending_.sealed[i].path.empty()) {
      std::remove(pending_.sealed[i].path.c_str());
    }
  }
  pending_.sealed.erase(pending_.sealed.begin(), pending_.sealed.begin() + num_merged);
  merged_tid_ = new_merged;
  RebuildFirstPendingLocked();
  TV_COUNTER_INC("tv.vacuum.index_merges_total");
  TV_COUNTER_ADD("tv.vacuum.index_merge_records_total", merged_records);
  TV_HISTOGRAM_OBSERVE("tv.vacuum.index_merge_seconds", timer.ElapsedSeconds());
  return merged_records;
}

Status EmbeddingSegment::RebuildIndex(ThreadPool* pool) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Collect live vectors = index live set overridden by pending deltas.
  std::unordered_map<VertexId, std::vector<float>> live;
  for (uint64_t label : index_->Labels()) {
    std::vector<float> vec(info_.dimension);
    if (index_->GetEmbedding(label, vec.data()).ok()) {
      live.emplace(label, std::move(vec));
    }
  }
  Tid max_tid = merged_tid_;
  auto apply = [&](const VectorDelta& d) {
    max_tid = std::max(max_tid, d.tid);
    if (d.action == VectorDelta::Action::kUpsert) {
      live[d.id] = d.value;
    } else {
      live.erase(d.id);
    }
  };
  for (const DeltaFile& f : pending_.sealed) {
    for (const VectorDelta& d : f.deltas) apply(d);
  }
  for (const VectorDelta& d : pending_.in_memory) apply(d);

  auto fresh = CreateVectorIndex(info_, index_params_);
  std::vector<std::pair<VertexId, const std::vector<float>*>> entries;
  entries.reserve(live.size());
  for (const auto& [id, vec] : live) entries.emplace_back(id, &vec);
  Status status = Status::OK();
  std::mutex status_mu;
  auto add_one = [&](size_t i) {
    Status st = fresh->AddPoint(entries[i].first, entries[i].second->data());
    if (!st.ok()) {
      std::lock_guard<std::mutex> g(status_mu);
      status = st;
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(entries.size(), add_one);
  } else {
    for (size_t i = 0; i < entries.size(); ++i) add_one(i);
  }
  TV_RETURN_NOT_OK(status);
  for (DeltaFile& f : pending_.sealed) {
    if (!f.path.empty()) std::remove(f.path.c_str());
  }
  pending_.sealed.clear();
  pending_.in_memory.clear();
  pending_.first_pending_tid.clear();
  merged_tid_ = max_tid;
  index_ = std::move(fresh);
  return Status::OK();
}

bool EmbeddingSegment::OverriddenLocked(VertexId id, Tid read_tid) const {
  auto it = pending_.first_pending_tid.find(id);
  return it != pending_.first_pending_tid.end() && it->second <= read_tid;
}

std::unordered_map<VertexId, const VectorDelta*> EmbeddingSegment::VisiblePendingLocked(
    Tid read_tid) const {
  std::unordered_map<VertexId, const VectorDelta*> latest;
  for (const DeltaFile& f : pending_.sealed) {
    for (const VectorDelta& d : f.deltas) {
      if (d.tid <= read_tid) latest[d.id] = &d;
    }
  }
  for (const VectorDelta& d : pending_.in_memory) {
    if (d.tid <= read_tid) latest[d.id] = &d;
  }
  return latest;
}

void EmbeddingSegment::RebuildFirstPendingLocked() {
  pending_.first_pending_tid.clear();
  for (const DeltaFile& f : pending_.sealed) {
    for (const VectorDelta& d : f.deltas) {
      pending_.first_pending_tid.try_emplace(d.id, d.tid);
    }
  }
  for (const VectorDelta& d : pending_.in_memory) {
    pending_.first_pending_tid.try_emplace(d.id, d.tid);
  }
}

namespace {

// Trampoline context combining the user filter with the pending-override
// check, handed to the HNSW index as its validity predicate.
struct CompositeFilterCtx {
  const EmbeddingSegment* segment;
  const FilterView* user_filter;
  Tid read_tid;
  // Set of overridden ids, precomputed under the segment lock so the
  // predicate itself is lock-free.
  const std::unordered_map<VertexId, const VectorDelta*>* overrides;
};

bool CompositeAccepts(const void* raw_ctx, uint64_t id) {
  const auto* ctx = static_cast<const CompositeFilterCtx*>(raw_ctx);
  if (!ctx->user_filter->Accepts(id)) return false;
  return ctx->overrides->find(id) == ctx->overrides->end();
}

}  // namespace

EmbeddingSegment::SearchOutput EmbeddingSegment::TopKSearch(
    const float* query, const SearchOptions& options) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  SearchOutput out;
  const auto overrides = VisiblePendingLocked(options.read_tid);
  CompositeFilterCtx ctx{this, &options.filter, options.read_tid, &overrides};
  FilterView composite(&CompositeAccepts, &ctx);

  // Brute-force fallback: when the predicate bitmap leaves too few valid
  // points in this segment's id range, a direct scan beats the index
  // (paper Sec. 5.1).
  bool bruteforce = false;
  if (options.bruteforce_threshold > 0 && options.filter.bitmap() != nullptr) {
    const size_t valid = options.filter.bitmap()->CountRange(
        base_vid_, base_vid_ + capacity_);
    bruteforce = valid < options.bruteforce_threshold;
  }
  std::vector<SearchHit> index_hits =
      bruteforce ? index_->BruteForceSearch(query, options.k, composite)
                 : index_->TopKSearch(query, options.k, options.ef, composite);
  out.used_bruteforce = bruteforce;

  TopKHeap<VertexId> heap(options.k);
  for (const SearchHit& h : index_hits) heap.Push(h.distance, h.label);
  for (const auto& [id, delta] : overrides) {
    if (delta->action != VectorDelta::Action::kUpsert) continue;
    if (!options.filter.Accepts(id)) continue;
    ++out.delta_candidates;
    const float d = ComputeDistance(info_.metric, query, delta->value.data(),
                                    info_.dimension);
    heap.Push(d, id);
  }
  for (const auto& e : heap.TakeSorted()) {
    out.hits.push_back(SearchHit{e.distance, e.id});
  }
  return out;
}

EmbeddingSegment::SearchOutput EmbeddingSegment::RangeSearch(
    const float* query, float threshold, const SearchOptions& options) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  SearchOutput out;
  const auto overrides = VisiblePendingLocked(options.read_tid);
  CompositeFilterCtx ctx{this, &options.filter, options.read_tid, &overrides};
  FilterView composite(&CompositeAccepts, &ctx);

  out.hits = index_->RangeSearch(query, threshold, std::max<size_t>(options.k, 16),
                                 options.ef, composite);
  for (const auto& [id, delta] : overrides) {
    if (delta->action != VectorDelta::Action::kUpsert) continue;
    if (!options.filter.Accepts(id)) continue;
    ++out.delta_candidates;
    const float d = ComputeDistance(info_.metric, query, delta->value.data(),
                                    info_.dimension);
    if (d < threshold) out.hits.push_back(SearchHit{d, id});
  }
  std::sort(out.hits.begin(), out.hits.end(),
            [](const SearchHit& a, const SearchHit& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.label < b.label;
            });
  return out;
}

Status EmbeddingSegment::GetEmbedding(VertexId vid, Tid read_tid, float* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (OverriddenLocked(vid, read_tid)) {
    const auto overrides = VisiblePendingLocked(read_tid);
    auto it = overrides.find(vid);
    if (it != overrides.end()) {
      if (it->second->action == VectorDelta::Action::kDelete) {
        return Status::NotFound("embedding for vertex " + std::to_string(vid) +
                                " was deleted");
      }
      std::memcpy(out, it->second->value.data(), info_.dimension * sizeof(float));
      return Status::OK();
    }
  }
  if (index_->Contains(vid) && !index_->IsDeleted(vid)) {
    return index_->GetEmbedding(vid, out);
  }
  return Status::NotFound("no embedding for vertex " + std::to_string(vid));
}

Status EmbeddingSegment::SaveIndexSnapshot(const std::string& path) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto* hnsw = dynamic_cast<const HnswIndex*>(index_.get());
  if (hnsw == nullptr) {
    return Status::Unimplemented("index snapshots are only supported for HNSW");
  }
  return hnsw->SaveToFile(path);
}

Status EmbeddingSegment::AdoptIndexSnapshot(std::unique_ptr<VectorIndex> index,
                                            Tid merged_tid) {
  if (index == nullptr) return Status::InvalidArgument("null index");
  if (index->dim() != info_.dimension) {
    return Status::InvalidArgument("snapshot dimension mismatch");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!pending_.in_memory.empty() || !pending_.sealed.empty()) {
    return Status::InvalidArgument(
        "cannot adopt an index snapshot with pending deltas");
  }
  index_ = std::move(index);
  merged_tid_ = merged_tid;
  return Status::OK();
}

Tid EmbeddingSegment::merged_tid() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return merged_tid_;
}

size_t EmbeddingSegment::pending_delta_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t count = pending_.in_memory.size();
  for (const DeltaFile& f : pending_.sealed) count += f.deltas.size();
  return count;
}

size_t EmbeddingSegment::in_memory_delta_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return pending_.in_memory.size();
}

size_t EmbeddingSegment::sealed_file_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return pending_.sealed.size();
}

}  // namespace tigervector

file(REMOVE_RECURSE
  "CMakeFiles/tv_workload.dir/datasets.cc.o"
  "CMakeFiles/tv_workload.dir/datasets.cc.o.d"
  "CMakeFiles/tv_workload.dir/driver.cc.o"
  "CMakeFiles/tv_workload.dir/driver.cc.o.d"
  "CMakeFiles/tv_workload.dir/ic_queries.cc.o"
  "CMakeFiles/tv_workload.dir/ic_queries.cc.o.d"
  "CMakeFiles/tv_workload.dir/snb.cc.o"
  "CMakeFiles/tv_workload.dir/snb.cc.o.d"
  "libtv_workload.a"
  "libtv_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

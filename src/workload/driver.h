#ifndef TIGERVECTOR_WORKLOAD_DRIVER_H_
#define TIGERVECTOR_WORKLOAD_DRIVER_H_

#include <cstddef>
#include <functional>

namespace tigervector {

// Closed-loop load generator (the in-process analog of the paper's wrk2
// setup, Sec. 6.3): each client thread issues queries back-to-back; the
// harness reports aggregate throughput and latency percentiles.
struct DriverResult {
  double seconds = 0;
  size_t queries = 0;
  double qps = 0;
  double mean_latency_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
};

// Runs `queries_per_thread` queries on each of `num_threads` client
// threads. query_fn(thread, i) executes one query; it must be thread-safe.
DriverResult RunClosedLoop(size_t num_threads, size_t queries_per_thread,
                           const std::function<void(size_t, size_t)>& query_fn);

// Open-loop driver in the style of wrk2: each thread issues queries on a
// fixed schedule of `rate_per_thread` queries/second and measures latency
// from the *intended* send time, so coordinated omission does not hide
// queueing delay. Stops after `queries_per_thread` queries per thread.
DriverResult RunOpenLoop(size_t num_threads, size_t queries_per_thread,
                         double rate_per_thread,
                         const std::function<void(size_t, size_t)>& query_fn);

}  // namespace tigervector

#endif  // TIGERVECTOR_WORKLOAD_DRIVER_H_

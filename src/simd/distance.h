#ifndef TIGERVECTOR_SIMD_DISTANCE_H_
#define TIGERVECTOR_SIMD_DISTANCE_H_

#include <cstddef>
#include <limits>

namespace tigervector {

// Distance metric for an embedding attribute (paper Sec. 4.1, METRIC=...).
// All metrics are expressed as distances (smaller is closer):
//   kL2      -> squared Euclidean distance
//   kIp      -> 1 - <a, b>            (assumes roughly normalized data)
//   kCosine  -> 1 - cos(a, b); 2 (the metric maximum) when either vector
//               has zero norm, so degenerate vectors sort last instead of
//               reading as "orthogonal".
enum class Metric { kL2 = 0, kIp = 1, kCosine = 2 };

const char* MetricName(Metric metric);

namespace simd {

// Instruction-set level of the distance kernels. Selected once per process
// by CPUID-based runtime dispatch (best level the CPU executes), and
// overridable with TV_SIMD=scalar|avx2|avx512 for A/B runs and CI parity
// legs. An override above what the CPU supports clamps down with a warning.
enum class IsaLevel { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

const char* IsaName(IsaLevel level);

// The level the process dispatches through. Resolution happens on first
// call (thread-safe); it also emits the startup log line and sets the
// "tv.simd.isa" gauge.
IsaLevel ActiveIsa();
const char* ActiveIsaName();

// True when kernels at `level` are compiled in and executable on this CPU.
bool IsaSupported(IsaLevel level);

// Raw one-pair kernels of one dispatch level. `cosine` is the cosine
// *distance* (1 - cos, with the zero-norm sentinel of 2). Used by the
// parity tests and the scalar-vs-dispatched benchmarks; normal callers go
// through the dispatched entry points below.
struct KernelTable {
  float (*l2)(const float* a, const float* b, size_t dim);
  float (*ip)(const float* a, const float* b, size_t dim);
  float (*cosine)(const float* a, const float* b, size_t dim);
};

// Kernel table for `level`, or nullptr when the level is not compiled in
// or not executable on this CPU (kScalar is always available).
const KernelTable* KernelsFor(IsaLevel level);

}  // namespace simd

// One-pair kernels, dispatched through the per-process kernel table.
float L2SquaredDistance(const float* a, const float* b, size_t dim);
float InnerProduct(const float* a, const float* b, size_t dim);
float CosineDistance(const float* a, const float* b, size_t dim);

// Dispatches on `metric`. This is the single-pair distance entry point used
// by the HNSW index, brute-force search, and delta scans.
float ComputeDistance(Metric metric, const float* a, const float* b, size_t dim);

// ---------------------------------------------------------------------------
// Batched one-query-vs-many entry points. Scans resolve the kernel pointer
// once per batch instead of per pair and software-prefetch upcoming rows,
// which is where most of the batching win comes from on large dims.
// ---------------------------------------------------------------------------

// `rows` is row-major contiguous (count rows, row stride = dim floats);
// writes out[i] for every row.
void L2SquaredDistanceBatch(const float* query, const float* rows, size_t dim,
                            size_t count, float* out);
void InnerProductBatch(const float* query, const float* rows, size_t dim,
                       size_t count, float* out);
void CosineDistanceBatch(const float* query, const float* rows, size_t dim,
                         size_t count, float* out);

// Fused batch: metric dispatch (kIp folds to 1 - dot), prefetch of upcoming
// rows, and a candidate top-k threshold folded in — every out[i] is written,
// and the return value is how many fell strictly below `threshold` (the
// caller's current k-th worst), so scans can skip their push loop when a
// whole batch is rejected.
size_t ComputeDistanceBatch(
    Metric metric, const float* query, const float* rows, size_t dim, size_t count,
    float* out, float threshold = std::numeric_limits<float>::infinity());

// Gather form for non-contiguous candidates (HNSW neighbor expansion, IVF
// posting lists, delta scans): rows[i] points at the i-th candidate vector.
size_t ComputeDistanceBatchGather(
    Metric metric, const float* query, const float* const* rows, size_t dim,
    size_t count, float* out,
    float threshold = std::numeric_limits<float>::infinity());

// L2 norm of a vector; used to pre-normalize cosine data.
float L2Norm(const float* a, size_t dim);

// In-place normalization to unit length (no-op for zero vectors).
void NormalizeInPlace(float* a, size_t dim);

}  // namespace tigervector

#endif  // TIGERVECTOR_SIMD_DISTANCE_H_

#include <gtest/gtest.h>

#include "core/access_control.h"
#include "query/session.h"

namespace tigervector {
namespace {

TEST(AccessControllerTest, RoleLifecycle) {
  AccessController ac;
  ASSERT_TRUE(ac.CreateRole("analyst").ok());
  EXPECT_EQ(ac.CreateRole("analyst").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(ac.CreateRole("").code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(ac.HasRole("analyst"));
  EXPECT_FALSE(ac.HasRole("nobody"));
}

TEST(AccessControllerTest, GrantRevoke) {
  AccessController ac;
  ASSERT_TRUE(ac.CreateRole("analyst").ok());
  EXPECT_FALSE(ac.CanRead("analyst", 0));
  ASSERT_TRUE(ac.GrantRead("analyst", 0).ok());
  EXPECT_TRUE(ac.CanRead("analyst", 0));
  EXPECT_FALSE(ac.CanRead("analyst", 1));
  ASSERT_TRUE(ac.RevokeRead("analyst", 0).ok());
  EXPECT_FALSE(ac.CanRead("analyst", 0));
  EXPECT_EQ(ac.GrantRead("nobody", 0).code(), StatusCode::kNotFound);
}

TEST(AccessControllerTest, EmptyRoleIsSuperuser) {
  AccessController ac;
  EXPECT_TRUE(ac.CanRead("", 0));
  EXPECT_TRUE(ac.CanRead("", 42));
}

class RbacFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    session_ = std::make_unique<GsqlSession>(db_.get());
    ASSERT_TRUE(session_
                    ->Run("CREATE VERTEX Pub (t STRING);"
                          "CREATE VERTEX Secret (t STRING);"
                          "CREATE EMBEDDING SPACE s (DIMENSION = 4, MODEL = M,"
                          " INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);"
                          "ALTER VERTEX Pub ADD EMBEDDING ATTRIBUTE emb"
                          " IN EMBEDDING SPACE s;"
                          "ALTER VERTEX Secret ADD EMBEDDING ATTRIBUTE emb"
                          " IN EMBEDDING SPACE s;")
                    .ok());
    Transaction txn = db_->Begin();
    auto pub = txn.InsertVertex("Pub", {std::string("p")});
    auto secret = txn.InsertVertex("Secret", {std::string("s")});
    ASSERT_TRUE(pub.ok() && secret.ok());
    pub_ = *pub;
    secret_ = *secret;
    ASSERT_TRUE(txn.SetEmbedding(pub_, "Pub", "emb", {1, 0, 0, 0}).ok());
    ASSERT_TRUE(txn.SetEmbedding(secret_, "Secret", "emb", {1.1f, 0, 0, 0}).ok());
    ASSERT_TRUE(txn.Commit().ok());

    ASSERT_TRUE(db_->access()->CreateRole("analyst").ok());
    auto pub_type = db_->schema()->GetVertexType("Pub");
    ASSERT_TRUE(db_->access()->GrantRead("analyst", (*pub_type)->id).ok());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<GsqlSession> session_;
  VertexId pub_, secret_;
};

TEST_F(RbacFixture, SuperuserSeesEverything) {
  auto hits = db_->VectorSearch({{"Pub", "emb"}, {"Secret", "emb"}}, {1, 0, 0, 0}, 2);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);
}

TEST_F(RbacFixture, UnauthorizedAttributeExcludedFromVectorSearch) {
  Database::VectorSearchFnOptions options;
  options.role = "analyst";
  auto hits = db_->VectorSearch({{"Pub", "emb"}, {"Secret", "emb"}}, {1, 0, 0, 0}, 2,
                                options);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  EXPECT_EQ(hits->size(), 1u);
  EXPECT_EQ(hits->count(pub_), 1u);
  EXPECT_EQ(hits->count(secret_), 0u);
}

TEST_F(RbacFixture, FullyUnauthorizedSearchFails) {
  Database::VectorSearchFnOptions options;
  options.role = "analyst";
  auto hits = db_->VectorSearch({{"Secret", "emb"}}, {1, 0, 0, 0}, 1, options);
  ASSERT_FALSE(hits.ok());
}

TEST_F(RbacFixture, GsqlScanOfUnauthorizedTypeRejected) {
  session_->SetRole("analyst");
  auto denied = session_->Run("R = SELECT s FROM (s:Secret);");
  ASSERT_FALSE(denied.ok());
  auto allowed = session_->Run("R = SELECT s FROM (s:Pub); PRINT R;");
  ASSERT_TRUE(allowed.ok()) << allowed.status().ToString();
  EXPECT_EQ(allowed->prints[0].vertices.size(), 1u);
}

TEST_F(RbacFixture, UnauthorizedVerticesDroppedFromVariableFilter) {
  // A variable containing a mix of authorized and unauthorized vertices is
  // silently reduced to the readable subset.
  session_->SetVariable("Mixed", VertexSet{pub_, secret_});
  session_->SetRole("analyst");
  QueryParams params;
  params["qv"] = std::vector<float>{1, 0, 0, 0};
  auto result = session_->Run(
      "R = SELECT s FROM (s:Mixed) ORDER BY VECTOR_DIST(s.emb, $qv) LIMIT 2;"
      "PRINT R;",
      params);
  // The searched alias needs a single vertex type for the EmbeddingAction,
  // so use a typed node bound to the variable-sourced set instead.
  if (!result.ok()) {
    auto via_fn = session_->Run(
        "R = VectorSearch({Pub.emb, Secret.emb}, $qv, 2, {filter: Mixed});"
        "PRINT R;",
        params);
    ASSERT_TRUE(via_fn.ok()) << via_fn.status().ToString();
    EXPECT_EQ(via_fn->prints[0].vertices.size(), 1u);
    EXPECT_EQ(via_fn->prints[0].vertices[0], pub_);
    return;
  }
  for (VertexId v : result->prints[0].vertices) EXPECT_NE(v, secret_);
}

TEST_F(RbacFixture, RoleSwitchRestoresAccess) {
  session_->SetRole("analyst");
  ASSERT_FALSE(session_->Run("R = SELECT s FROM (s:Secret);").ok());
  session_->SetRole("");  // back to superuser
  EXPECT_TRUE(session_->Run("R = SELECT s FROM (s:Secret);").ok());
}

}  // namespace
}  // namespace tigervector

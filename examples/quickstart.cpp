// Quickstart: define a schema with an embedding attribute, load a few
// documents inside atomic transactions, and run declarative top-k vector
// search through GSQL — the minimal TigerVector workflow.
#include <cstdio>

#include "query/session.h"

using namespace tigervector;

int main() {
  Database db;
  GsqlSession session(&db);

  // 1. Schema: a Post vertex with a 4-d embedding attribute (paper Sec 4.1).
  auto ddl = session.Run(
      "CREATE VERTEX Post (author STRING, content STRING);"
      "ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE content_emb"
      " (DIMENSION = 4, MODEL = MiniLM, INDEX = HNSW, DATATYPE = FLOAT,"
      "  METRIC = L2);");
  if (!ddl.ok()) {
    std::fprintf(stderr, "DDL failed: %s\n", ddl.status().ToString().c_str());
    return 1;
  }

  // 2. Data: each post and its embedding commit atomically.
  struct Doc {
    const char* author;
    const char* content;
    std::vector<float> emb;
  };
  const std::vector<Doc> docs = {
      {"alice", "Graph databases store relationships natively", {1, 0, 0, 0}},
      {"bob", "Vector search finds semantically similar items", {0, 1, 0, 0}},
      {"carol", "Hybrid RAG combines graphs and vectors", {0.6f, 0.6f, 0, 0}},
      {"dave", "SQL joins can be expensive at scale", {0, 0, 1, 0}},
  };
  for (const Doc& doc : docs) {
    Transaction txn = db.Begin();
    auto vid = txn.InsertVertex("Post", {std::string(doc.author),
                                         std::string(doc.content)});
    if (!vid.ok()) return 1;
    if (!txn.SetEmbedding(*vid, "Post", "content_emb", doc.emb).ok()) return 1;
    if (!txn.Commit().ok()) return 1;
  }
  // Fold the vector deltas into the per-segment HNSW indexes.
  if (!db.Vacuum().ok()) return 1;

  // 3. Declarative top-k search (paper Sec 5.1).
  QueryParams params;
  params["query_vector"] = std::vector<float>{0.5f, 0.5f, 0, 0};
  auto result = session.Run(
      "TopK = SELECT s FROM (s:Post)"
      " ORDER BY VECTOR_DIST(s.content_emb, $query_vector) LIMIT 2;"
      "PRINT TopK;",
      params);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("query plan:\n%s\n", result->last_plan.c_str());
  std::printf("top-2 posts for query [0.5, 0.5, 0, 0]:\n");
  const Tid tid = db.store()->visible_tid();
  for (VertexId vid : result->prints[0].vertices) {
    auto content = db.store()->GetAttr(vid, "content", tid);
    auto author = db.store()->GetAttr(vid, "author", tid);
    std::printf("  vid=%llu  %-8s %s\n", static_cast<unsigned long long>(vid),
                std::get<std::string>(*author).c_str(),
                std::get<std::string>(*content).c_str());
  }
  return 0;
}

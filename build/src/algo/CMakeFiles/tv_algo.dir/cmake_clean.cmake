file(REMOVE_RECURSE
  "CMakeFiles/tv_algo.dir/louvain.cc.o"
  "CMakeFiles/tv_algo.dir/louvain.cc.o.d"
  "CMakeFiles/tv_algo.dir/traversal.cc.o"
  "CMakeFiles/tv_algo.dir/traversal.cc.o.d"
  "libtv_algo.a"
  "libtv_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#ifndef TIGERVECTOR_UTIL_BITMAP_H_
#define TIGERVECTOR_UTIL_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tigervector {

// A dense bitset over local ids [0, size). Used to pass filter predicates
// from the graph engine into the vector index (the paper's pre-filter
// bitmap, Sec. 5.1/5.2).
class Bitmap {
 public:
  Bitmap() = default;
  // Creates a bitmap of `size` bits, all initialized to `initial`.
  explicit Bitmap(size_t size, bool initial = false);

  void Resize(size_t size, bool initial = false);

  void Set(size_t i);
  void Clear(size_t i);
  bool Test(size_t i) const;

  size_t size() const { return size_; }

  // Number of set bits.
  size_t Count() const;

  // Number of set bits in [begin, end) (clamped to size). Used by the
  // brute-force-threshold check on per-segment id ranges.
  size_t CountRange(size_t begin, size_t end) const;

  // In-place intersection; both bitmaps must have equal size.
  void And(const Bitmap& other);
  // In-place union; both bitmaps must have equal size.
  void Or(const Bitmap& other);

  void SetAll();
  void ClearAll();

 private:
  std::vector<uint64_t> words_;
  size_t size_ = 0;
};

// The vector index accepts any id-validity predicate through this view.
// It can wrap (a) a Bitmap produced by a query predicate, or (b) the graph
// engine's global vertex-status structure (paper Sec. 5.1: "reuses a global
// vertex status structure in TigerGraph and wraps it as a bitmap") without
// materializing a new bitmap.
class FilterView {
 public:
  // Accept-all filter.
  FilterView() = default;

  // Wraps an explicit bitmap (not owned; must outlive the view).
  explicit FilterView(const Bitmap* bitmap) : bitmap_(bitmap) {}

  // Wraps an arbitrary predicate (not owned; must outlive the view).
  using Predicate = bool (*)(const void* ctx, uint64_t id);
  FilterView(Predicate pred, const void* ctx) : pred_(pred), ctx_(ctx) {}

  bool Accepts(uint64_t id) const {
    if (bitmap_ != nullptr) return id < bitmap_->size() && bitmap_->Test(id);
    if (pred_ != nullptr) return pred_(ctx_, id);
    return true;
  }

  bool accepts_all() const { return bitmap_ == nullptr && pred_ == nullptr; }
  const Bitmap* bitmap() const { return bitmap_; }

 private:
  const Bitmap* bitmap_ = nullptr;
  Predicate pred_ = nullptr;
  const void* ctx_ = nullptr;
};

}  // namespace tigervector

#endif  // TIGERVECTOR_UTIL_BITMAP_H_

#ifndef TIGERVECTOR_UTIL_TOPK_HEAP_H_
#define TIGERVECTOR_UTIL_TOPK_HEAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

namespace tigervector {

// A fixed-capacity max-heap keeping the k smallest (distance, id) pairs.
// Used for local per-segment top-k, the coordinator's global merge, and the
// similarity-join global heap accumulator.
template <typename Id = uint64_t>
class TopKHeap {
 public:
  struct Entry {
    float distance;
    Id id;
    bool operator<(const Entry& other) const {
      // Max-heap by distance; tie-break on id for determinism.
      if (distance != other.distance) return distance < other.distance;
      return id < other.id;
    }
  };

  explicit TopKHeap(size_t k) : k_(k) {}

  // Offers a candidate; keeps it only if it beats the current worst.
  void Push(float distance, Id id) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push(Entry{distance, id});
    } else if (Entry{distance, id} < heap_.top()) {
      heap_.pop();
      heap_.push(Entry{distance, id});
    }
  }

  // True when the heap is full and `distance` cannot enter it regardless of
  // id. Deliberately strict (>): a candidate tying the current worst
  // distance may still be admitted by Push via the `id < other.id`
  // tie-break, so callers that pre-filter with WouldReject must see `false`
  // for it and fall through to Push — otherwise the same candidate stream
  // yields a different top-k depending on whether the caller pre-filters.
  bool WouldReject(float distance) const {
    return heap_.size() == k_ && k_ > 0 && distance > heap_.top().distance;
  }

  size_t size() const { return heap_.size(); }
  size_t capacity() const { return k_; }
  bool full() const { return heap_.size() == k_; }

  // Current worst distance retained (undefined when empty).
  float WorstDistance() const { return heap_.top().distance; }

  // Drains the heap into a vector sorted by ascending distance.
  std::vector<Entry> TakeSorted() {
    std::vector<Entry> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.push_back(heap_.top());
      heap_.pop();
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

 private:
  size_t k_;
  std::priority_queue<Entry> heap_;
};

}  // namespace tigervector

#endif  // TIGERVECTOR_UTIL_TOPK_HEAP_H_

#include "server/tv_server.h"

#include <algorithm>

#include "net/protocol.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "query/session.h"
#include "util/timer.h"

namespace tigervector::server {

namespace {

// Labeled counters resolved per call (TV_COUNTER_* caches the pointer per
// call site, which would pin the first label seen).
void CountRequest(const char* type) {
#if !defined(TIGERVECTOR_NO_METRICS)
  obs::MetricsRegistry::Global()
      .GetCounter(std::string("tv.server.requests_total{type=") + type + "}")
      ->Increment();
#else
  (void)type;
#endif
}

void CountRejected(const char* reason) {
#if !defined(TIGERVECTOR_NO_METRICS)
  obs::MetricsRegistry::Global()
      .GetCounter(std::string("tv.server.rejected_total{reason=") + reason +
                  "}")
      ->Increment();
#else
  (void)reason;
#endif
}

}  // namespace

Status TvServer::Start() {
  if (started_.exchange(true)) {
    return Status::AlreadyExists("server already started");
  }
  auto listener = net::Listener::Listen(options_.port,
                                        std::max(options_.max_connections, 8));
  TV_RETURN_NOT_OK(listener.status());
  listener_ = std::move(listener).value();
  port_ = listener_.port();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TvServer::Stop() {
  if (!started_.load() || stopping_.exchange(true)) return;
  listener_.Close();  // unblocks Accept
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      {
        std::lock_guard<std::mutex> conn_lock(conn->mu);
        if (conn->active != nullptr) {
          conn->active->Cancel("server shutting down");
        }
      }
      conn->socket.Shutdown();  // unblocks a pending RecvAll
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto& conn : conns_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  conns_.clear();
}

void TvServer::ReapFinished() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  auto it = conns_.begin();
  while (it != conns_.end()) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void TvServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load()) return;
      // Transient accept failure (e.g. EMFILE); keep serving.
      continue;
    }
    ReapFinished();
    TV_COUNTER_INC("tv.server.connections_total");
    net::Socket socket = std::move(accepted).value();
    if (options_.io_timeout_ms > 0) {
      (void)socket.SetRecvTimeout(options_.io_timeout_ms);
      (void)socket.SetSendTimeout(options_.io_timeout_ms);
    }
    socket.set_fault_site(options_.fault_site);
    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      // Connection-level fast-reject: one RETRY_LATER frame, then close.
      CountRejected("conn_limit");
      net::Frame reject;
      reject.type = net::MsgType::kRetryLater;
      (void)net::WriteFrame(socket, reject);
      socket.Close();
      continue;
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->socket = std::move(socket);
    Conn* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] {
      ServeConnection(raw);
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

void TvServer::ServeConnection(Conn* conn) {
  // One session per connection: vertex-set variables and distance maps
  // persist across requests, mirroring a local shell session.
  GsqlSession session(db_);
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto read = net::ReadFrame(conn->socket);
    if (!read.ok()) {
      // Peer closed, torn frame, or idle timeout: drop the connection. A
      // torn request never reaches the session, so nothing half-executes.
      return;
    }
    if (!HandleFrame(conn, session, read.value())) return;
  }
}

bool TvServer::HandleFrame(Conn* conn, GsqlSession& session,
                           const net::Frame& request) {
  net::Frame response;
  response.request_id = request.request_id;

  switch (request.type) {
    case net::MsgType::kPing:
      CountRequest("ping");
      response.type = net::MsgType::kPong;
      break;

    case net::MsgType::kMetrics:
      CountRequest("metrics");
      response.type = net::MsgType::kText;
      response.payload = obs::MetricsRegistry::Global().RenderText();
      break;

    case net::MsgType::kFlightRec: {
      CountRequest("flightrec");
      net::WireReader r(request.payload);
      uint64_t flight_id = 0;
      Status st = r.GetU64(&flight_id);
      if (!st.ok()) {
        response.type = net::MsgType::kError;
        response.payload = net::EncodeStatus(st);
        break;
      }
      if (flight_id == 0) {
        response.type = net::MsgType::kText;
        response.payload = obs::FlightRecorder::Global().RenderList();
        break;
      }
      obs::QueryRecord record;
      if (!obs::FlightRecorder::Global().Find(flight_id, &record)) {
        response.type = net::MsgType::kError;
        response.payload = net::EncodeStatus(Status::NotFound(
            "flight record " + std::to_string(flight_id) +
            " not found (evicted or never recorded)"));
        break;
      }
      response.type = net::MsgType::kText;
      response.payload = obs::FlightRecorder::RenderDetail(record);
      break;
    }

    case net::MsgType::kQuery: {
      CountRequest("query");
      // Admission control: claim an execution slot or fast-reject. A
      // rejected request never reaches the session, so the client may
      // always retry it.
      int slots = inflight_.load(std::memory_order_relaxed);
      bool admitted = false;
      while (slots < options_.max_inflight) {
        if (inflight_.compare_exchange_weak(slots, slots + 1,
                                            std::memory_order_relaxed)) {
          admitted = true;
          break;
        }
      }
      if (!admitted) {
        CountRejected("inflight");
        response.type = net::MsgType::kRetryLater;
        break;
      }
      TV_GAUGE_SET("tv.server.inflight", inflight_.load());

      net::QueryRequest query;
      Status decoded = net::DecodeQueryRequest(request.payload, &query);
      if (!decoded.ok()) {
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        response.type = net::MsgType::kError;
        response.payload = net::EncodeStatus(decoded);
        break;
      }

      // Deadline: the client's remaining budget (clamped), else the server
      // default. The token is installed thread-locally around Run and
      // propagated to pool workers by the fan-out sites.
      uint64_t budget = request.deadline_micros;
      if (budget == 0) budget = options_.default_deadline_micros;
      if (options_.max_deadline_micros > 0 &&
          (budget == 0 || budget > options_.max_deadline_micros)) {
        budget = options_.max_deadline_micros;
      }
      CancelToken token;
      if (budget > 0) token.SetDeadlineAfterMicros(budget);
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->active = &token;
      }
      Timer timer;
      Result<ScriptResult> result = [&] {
        ScopedCancel cancel_scope(&token);
        return session.Run(query.script, query.params);
      }();
      TV_HISTOGRAM_OBSERVE("tv.server.query_seconds", timer.ElapsedSeconds());
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->active = nullptr;
      }
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      TV_GAUGE_SET("tv.server.inflight", inflight_.load());

      if (result.ok()) {
        response.type = net::MsgType::kResult;
        response.payload = net::EncodeScriptResult(result.value());
      } else {
        if (result.status().code() == StatusCode::kDeadlineExceeded) {
          TV_COUNTER_INC("tv.server.deadline_exceeded_total");
        }
        response.type = net::MsgType::kError;
        response.payload = net::EncodeStatus(result.status());
      }
      break;
    }

    default:
      CountRequest("unknown");
      response.type = net::MsgType::kError;
      response.payload = net::EncodeStatus(Status::InvalidArgument(
          std::string("unsupported request frame type '") +
          net::MsgTypeName(request.type) + "'"));
      break;
  }

  return net::WriteFrame(conn->socket, response).ok();
}

}  // namespace tigervector::server

#ifndef TIGERVECTOR_UTIL_SLOWLOG_H_
#define TIGERVECTOR_UTIL_SLOWLOG_H_

#include <string>

#include "util/status.h"

namespace tigervector {

// Installs an io::File-backed JSONL sink on the global flight recorder's
// slow-query log: every query exceeding the recorder's slow threshold
// appends one structured record (see FlightRecorder::SlowLogLine) to
// `path`. The file is opened in append mode so restarts extend, not
// truncate, the log; each record is flushed on write (slow queries are rare
// by definition, so per-record flushing costs nothing on the hot path).
//
// Lives in util/ rather than obs/ because tv_util links tv_obs — the
// recorder itself cannot reach io:: without a dependency cycle, so it takes
// a pluggable sink and this is the standard file implementation.
// Fault site: "slowlog.append".
Status InstallSlowLogFile(const std::string& path);

// Detaches the sink and closes the file.
void CloseSlowLog();

}  // namespace tigervector

#endif  // TIGERVECTOR_UTIL_SLOWLOG_H_

#ifndef TIGERVECTOR_BASELINES_BASELINE_H_
#define TIGERVECTOR_BASELINES_BASELINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hnsw/hnsw_index.h"
#include "util/result.h"

namespace tigervector {

class ThreadPool;

// ---------------------------------------------------------------------------
// Competitor models. The paper compares TigerVector against Neo4j, Amazon
// Neptune, and Milvus — all closed systems or systems whose performance
// differences stem from engine properties we cannot rebuild here (JVM +
// Lucene, a managed cloud service, a Go runtime). Each baseline therefore
// couples a *faithful architectural model* (index layout, parameter-tuning
// capability, filtering strategy, update atomicity) with a *calibrated
// per-operation overhead* standing in for the engine tax. All constants
// live in this header, are derived from the paper's measured ratios, and
// are called out in DESIGN.md/EXPERIMENTS.md so nobody mistakes them for
// emergent results. What IS emergent: recall-vs-ef trade-offs, the effect
// of fixed (untunable) search parameters, single- vs multi-segment
// parallelism, build-path differences, and filtered-search behavior.
// ---------------------------------------------------------------------------

struct BaselineOverheads {
  // Extra work per query, expressed as a multiple of the real search work
  // (1.0 = no overhead). Derived from Fig. 7/8 QPS and latency ratios at
  // comparable recall.
  double query_work_factor = 1.0;
  // Extra work per vector insert during index build (Table 2 ratios).
  double build_work_factor = 1.0;
  // Extra work per vector during data load (Table 2 "Data Load" row).
  double load_work_factor = 1.0;
};

// Lucene-backed Neo4j vector index: no search-parameter tuning (fixed ef),
// single non-partitioned index, JVM/Lucene execution tax, post-filtering.
// The query tax is applied against a fixed reference amount of work
// (ef=128 beam) because Lucene's cost is dominated by its own execution
// machinery rather than the tiny k-candidate beam it runs.
inline BaselineOverheads Neo4jOverheads() {
  return BaselineOverheads{8.0, 13.0, 0.0};
}

// Neptune Analytics: one global, non-distributed index; ef fixed high (the
// service targets ~99.9% recall); managed-service execution tax;
// non-atomic index updates.
// The large query factor stands in for the managed-service request path
// (HTTP front door, routing, single non-partitioned index server).
inline BaselineOverheads NeptuneOverheads() {
  return BaselineOverheads{12.0, 1.5, 0.5};
}

// Milvus: segment-based specialized vector store; tunable parameters; Go
// runtime + proxy tax on queries and a heavyweight bulk-load path.
// Milvus's query tax applies per segment searched (proxy + Go runtime on
// the same segment-parallel architecture TigerVector uses).
inline BaselineOverheads MilvusOverheads() {
  return BaselineOverheads{0.3, 0.05, 120.0};
}

// Burns roughly `ops` floating point operations; the unit matches one
// element step of a distance kernel so overhead factors compose with real
// search work.
void SpinWork(uint64_t ops);

// Common baseline interface used by the benchmark harness.
class VectorBaseline {
 public:
  virtual ~VectorBaseline() = default;

  virtual std::string name() const = 0;

  // Bulk data ingestion (timed as "Data Load" in Table 2). The data is
  // copied into the baseline's internal layout.
  virtual Status Load(const float* data, size_t n, size_t dim) = 0;

  // Index construction (timed as "Index Build" in Table 2).
  virtual Status BuildIndex(ThreadPool* pool) = 0;

  // Top-k search. `ef` is ignored by systems without parameter tuning.
  virtual std::vector<SearchHit> TopK(const float* query, size_t k, size_t ef) const = 0;

  // Whether the search accuracy parameter is tunable (Neo4j/Neptune: no).
  virtual bool supports_ef_tuning() const = 0;

  // Whether vector updates are transactional/atomic (Neptune: no).
  virtual bool atomic_updates() const = 0;
};

}  // namespace tigervector

#endif  // TIGERVECTOR_BASELINES_BASELINE_H_

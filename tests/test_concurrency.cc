#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/database.h"
#include "workload/driver.h"

namespace tigervector {
namespace {

// Stress tests for the concurrency contract: searches may run concurrently
// with commits and with both vacuum stages; results must always be
// internally consistent (sorted, no tombstoned or invisible vertices).

class ConcurrencyFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Database::Options options;
    options.store.segment_capacity = 128;
    options.embeddings.index_params.m = 8;
    options.embeddings.index_params.ef_construction = 48;
    db_ = std::make_unique<Database>(options);
    EmbeddingTypeInfo info;
    info.dimension = 8;
    info.model = "M";
    info.metric = Metric::kL2;
    ASSERT_TRUE(db_->schema()->CreateVertexType("Item", {}).ok());
    ASSERT_TRUE(db_->schema()->AddEmbeddingAttr("Item", "emb", info).ok());
    // Seed data.
    for (int i = 0; i < 400; ++i) {
      Transaction txn = db_->Begin();
      auto vid = txn.InsertVertex("Item", {});
      ASSERT_TRUE(vid.ok());
      ASSERT_TRUE(txn.SetEmbedding(*vid, "Item", "emb", Vec(i)).ok());
      ASSERT_TRUE(txn.Commit().ok());
      vids_.push_back(*vid);
    }
    ASSERT_TRUE(db_->Vacuum().ok());
  }

  std::vector<float> Vec(int i) {
    std::vector<float> v(8, 0.f);
    v[0] = static_cast<float>(i);
    v[1] = static_cast<float>(i % 13);
    return v;
  }

  void SearchLoop(std::atomic<bool>* stop, std::atomic<int>* errors) {
    int i = 0;
    while (!stop->load()) {
      std::vector<float> q = Vec(i++ % 500);
      VectorSearchRequest request;
      request.attrs = {{"Item", "emb"}};
      request.query = q.data();
      request.k = 5;
      request.ef = 32;
      auto result = db_->embeddings()->TopKSearch(request);
      if (!result.ok()) {
        errors->fetch_add(1);
        continue;
      }
      // Sorted ascending and within k.
      for (size_t j = 1; j < result->hits.size(); ++j) {
        if (result->hits[j - 1].distance > result->hits[j].distance) {
          errors->fetch_add(1);
        }
      }
      if (result->hits.size() > 5) errors->fetch_add(1);
    }
  }

  std::unique_ptr<Database> db_;
  std::vector<VertexId> vids_;
};

TEST_F(ConcurrencyFixture, SearchesConcurrentWithCommits) {
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::thread reader1([&] { SearchLoop(&stop, &errors); });
  std::thread reader2([&] { SearchLoop(&stop, &errors); });
  // Writer: 200 update transactions.
  for (int round = 0; round < 200; ++round) {
    Transaction txn = db_->Begin();
    const VertexId target = vids_[round % vids_.size()];
    ASSERT_TRUE(txn.SetEmbedding(target, "Item", "emb", Vec(1000 + round)).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  stop.store(true);
  reader1.join();
  reader2.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST_F(ConcurrencyFixture, SearchesConcurrentWithVacuum) {
  // Build a delta backlog, then vacuum while searching.
  for (int round = 0; round < 100; ++round) {
    Transaction txn = db_->Begin();
    ASSERT_TRUE(txn.SetEmbedding(vids_[round % vids_.size()], "Item", "emb",
                                 Vec(2000 + round))
                    .ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::thread reader([&] { SearchLoop(&stop, &errors); });
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db_->Vacuum().ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(db_->embeddings()->TotalPendingDeltas(), 0u);
}

TEST_F(ConcurrencyFixture, ConcurrentWritersSerializeCleanly) {
  // Multiple threads committing transactions concurrently: every commit
  // must succeed and each gets a distinct tid.
  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 50; ++i) {
        Transaction txn = db_->Begin();
        auto vid = txn.InsertVertex("Item", {});
        if (!vid.ok() ||
            !txn.SetEmbedding(*vid, "Item", "emb", Vec(w * 1000 + i)).ok() ||
            !txn.Commit().ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(failures.load(), 0);
  // All 200 new vertices are visible.
  size_t count = 0;
  db_->store()->ForEachVertexOfType(0, db_->store()->visible_tid(), nullptr,
                                    [&](VertexId) { ++count; });
  EXPECT_EQ(count, 400u + 200u);
}

TEST_F(ConcurrencyFixture, DeleteDuringSearchNeverReturnsDeleted) {
  // Delete vertices one by one while verifying they never appear after
  // their deletion is visible.
  for (int i = 0; i < 50; ++i) {
    const VertexId victim = vids_[i];
    {
      Transaction txn = db_->Begin();
      ASSERT_TRUE(txn.DeleteVertex(victim).ok());
      ASSERT_TRUE(txn.Commit().ok());
    }
    std::vector<float> q = Vec(i);
    VectorSearchRequest request;
    request.attrs = {{"Item", "emb"}};
    request.query = q.data();
    request.k = 3;
    request.ef = 64;
    auto result = db_->embeddings()->TopKSearch(request);
    ASSERT_TRUE(result.ok());
    for (const auto& hit : result->hits) EXPECT_NE(hit.label, victim);
  }
}

TEST(OpenLoopDriverTest, MeasuresFromSchedule) {
  // A 1ms query at a 100/s schedule should show ~1ms latency, not more.
  auto result = RunOpenLoop(2, 20, 200.0, [](size_t, size_t) {
    volatile double x = 0;
    for (int i = 0; i < 10000; ++i) x = x + i;
    (void)x;
  });
  EXPECT_EQ(result.queries, 40u);
  EXPECT_GT(result.qps, 0.0);
  EXPECT_GE(result.p99_ms, result.p50_ms);
}

TEST(OpenLoopDriverTest, ZeroRateFallsBackToClosedLoop) {
  std::atomic<int> count{0};
  auto result = RunOpenLoop(2, 10, 0.0, [&](size_t, size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 20);
  EXPECT_EQ(result.queries, 20u);
}

TEST(OpenLoopDriverTest, OverloadShowsQueueingDelay) {
  // Each query takes ~2ms but the schedule demands 5000/s: latency from
  // the schedule must blow up well past the service time (coordinated
  // omission would hide this).
  auto result = RunOpenLoop(1, 30, 5000.0, [](size_t, size_t) {
    volatile double x = 0;
    for (int i = 0; i < 300000; ++i) x = x + i;
    (void)x;
  });
  EXPECT_GT(result.p99_ms, result.p50_ms);
  EXPECT_GT(result.p99_ms, 1.0);
}

}  // namespace
}  // namespace tigervector

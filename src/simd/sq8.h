#ifndef TIGERVECTOR_SIMD_SQ8_H_
#define TIGERVECTOR_SIMD_SQ8_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "simd/distance.h"

namespace tigervector::simd {

// ---------------------------------------------------------------------------
// SQ8 scalar quantization: per-segment symmetric 8-bit codes over the fp32
// embeddings. Per-dimension min/max are trained at segment seal/merge time;
// a single symmetric scale s = max_d max(|min_d|, |max_d|) / 127 maps every
// value to c = clamp(round(x / s), -127, 127), so distance arithmetic stays
// pure-integer (pmaddwd-friendly) and reconstructs as x ~= s * c with error
// at most s/2 per dimension. Quantized scans rank candidates on the codes
// and rerank the top rerank_factor*k with exact fp32 distances, so reported
// distances (and therefore soundness) are always exact — quantization can
// only affect recall.
// ---------------------------------------------------------------------------

// Process-wide quantization mode: TV_QUANT=off|sq8 (default off), resolved
// once per process like TV_SIMD. Per-attribute schema options (QUANT=SQ8 or
// QUANT=OFF) override this default for their attribute.
enum class QuantMode { kOff = 0, kSq8 = 1 };

const char* QuantModeName(QuantMode mode);

// The mode the process defaults to. Resolution happens on first call
// (thread-safe); it also emits the startup log line and sets the
// "tv.quant.mode" gauge (0=off, 1=sq8).
QuantMode ActiveQuantMode();
const char* ActiveQuantModeName();

// Default rerank multiple: quantized scans keep rerank_factor*k candidates
// and rescore them exactly. TV_RERANK_FACTOR overrides (clamped to >= 1).
size_t DefaultRerankFactor();

// Trained quantizer of one segment. `min`/`max` are the per-dimension
// training statistics (persisted in the segment artifact); `scale` is the
// symmetric scale derived from them. Empty min/max means "not trained".
struct Sq8Params {
  float scale = 0.f;
  std::vector<float> min;
  std::vector<float> max;

  bool valid() const { return !min.empty(); }
};

// Accumulates per-dimension min/max over training rows.
class Sq8Trainer {
 public:
  explicit Sq8Trainer(size_t dim);

  void Observe(const float* vec);

  // Derives the symmetric scale; invalid (empty) params when no rows were
  // observed. All-zero data yields scale 0 (codes all zero) — approximate
  // distances degenerate but the exact rerank still orders the result.
  Sq8Params Finish() const;

 private:
  size_t dim_;
  size_t rows_ = 0;
  std::vector<float> min_;
  std::vector<float> max_;
};

void Sq8Encode(const Sq8Params& params, const float* vec, size_t dim, int8_t* out);
void Sq8Decode(const Sq8Params& params, const int8_t* codes, size_t dim, float* out);

// Sum of squared code values; precomputed per row for the cosine kernel.
int64_t Sq8CodeNorm(const int8_t* codes, size_t dim);

// Raw integer kernels of one dispatch level: l2 returns sum((a-b)^2), dot
// returns sum(a*b), both exact int64. Exposed (like KernelsFor) so the
// parity suite can pin every compiled level against scalar; normal callers
// go through the batched entry points below, which follow ActiveIsa().
struct Sq8KernelTable {
  int64_t (*l2)(const int8_t* a, const int8_t* b, size_t dim);
  int64_t (*dot)(const int8_t* a, const int8_t* b, size_t dim);
};

// Kernel table for `level`, or nullptr when not compiled in / not
// executable on this CPU (kScalar is always available).
const Sq8KernelTable* Sq8KernelsFor(IsaLevel level);

// ---------------------------------------------------------------------------
// Batched approximate distances over codes, mirroring ComputeDistanceBatch /
// ComputeDistanceBatchGather: out[i] is an fp32-comparable approximation of
// the metric distance (kL2 -> scale^2 * sum((a-b)^2); kIp -> 1 - scale^2 *
// dot; kCosine -> 1 - dot / sqrt(|a|*|b|) with the zero-norm sentinel of 2).
// `query` is the query encoded with the same segment params; `query_norm` =
// Sq8CodeNorm(query); `row_norms` may be null for kL2/kIp. Returns how many
// fell strictly below `threshold`.
// ---------------------------------------------------------------------------

size_t Sq8DistanceBatch(Metric metric, const int8_t* query, int64_t query_norm,
                        float scale, const int8_t* rows, const int64_t* row_norms,
                        size_t dim, size_t count, float* out,
                        float threshold = std::numeric_limits<float>::infinity());

size_t Sq8DistanceBatchGather(
    Metric metric, const int8_t* query, int64_t query_norm, float scale,
    const int8_t* const* rows, const int64_t* row_norms, size_t dim, size_t count,
    float* out, float threshold = std::numeric_limits<float>::infinity());

// ---------------------------------------------------------------------------
// Per-query quantization policy + stats. Indexes consult the thread-local
// state instead of growing every TopKSearch signature: a segment search
// installs a ScopedQuantQuery around the index call, the index notes each
// quantized scan via NoteQuantScan, and the scope reports the deltas back.
// Default state (no scope active): enabled, DefaultRerankFactor().
// ---------------------------------------------------------------------------

class ScopedQuantQuery {
 public:
  // rerank_factor == 0 means DefaultRerankFactor().
  ScopedQuantQuery(bool enabled, size_t rerank_factor);
  ~ScopedQuantQuery();

  ScopedQuantQuery(const ScopedQuantQuery&) = delete;
  ScopedQuantQuery& operator=(const ScopedQuantQuery&) = delete;

  // Policy seen by index scans on this thread.
  static bool Enabled();
  static size_t RerankFactor();

  // Stats accumulated since this scope was entered.
  uint64_t quant_scans() const;
  uint64_t reranked() const;

 private:
  bool saved_enabled_;
  uint32_t saved_factor_;
  uint64_t scans0_;
  uint64_t reranked0_;
};

// Called by an index after a quantized scan: `reranked` is the number of
// candidates rescored with exact fp32 distances. Feeds the tv.quant.*
// counters and the active ScopedQuantQuery.
void NoteQuantScan(uint64_t reranked);

}  // namespace tigervector::simd

#endif  // TIGERVECTOR_SIMD_SQ8_H_

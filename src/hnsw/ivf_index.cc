#include "hnsw/ivf_index.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <mutex>

#include "obs/metrics.h"
#include "util/topk_heap.h"

namespace tigervector {

namespace {
// Scan batch size for the gathered distance kernel (see brute_force.cc).
constexpr size_t kScanBatch = 128;
}  // namespace

IvfFlatIndex::IvfFlatIndex(const IvfParams& params)
    : params_(params), rng_(params.seed) {
  lists_.resize(std::max<size_t>(1, params_.nlist));
}

size_t IvfFlatIndex::NearestCentroidLocked(const float* vec) const {
  // Centroids are contiguous: rank them with the fused batch kernel in
  // fixed-size chunks (no per-call allocation; this runs on every insert).
  size_t best = 0;
  float best_dist = std::numeric_limits<float>::infinity();
  float dists[kScanBatch];
  for (size_t c0 = 0; c0 < params_.nlist; c0 += kScanBatch) {
    const size_t n = std::min(kScanBatch, params_.nlist - c0);
    ComputeDistanceBatch(params_.metric, vec, centroids_.data() + c0 * params_.dim,
                         params_.dim, n, dists);
    for (size_t j = 0; j < n; ++j) {
      if (dists[j] < best_dist) {
        best_dist = dists[j];
        best = c0 + j;
      }
    }
  }
  return best;
}

void IvfFlatIndex::TrainLocked() {
  // Initialize centroids from random live records, then a few Lloyd
  // iterations.
  std::vector<size_t> live;
  for (size_t i = 0; i < records_.size(); ++i) {
    if (!records_[i].deleted) live.push_back(i);
  }
  if (live.size() < params_.nlist) return;
  centroids_.assign(params_.nlist * params_.dim, 0.f);
  for (size_t c = 0; c < params_.nlist; ++c) {
    const Record& rec = records_[live[rng_.NextBounded(live.size())]];
    std::memcpy(centroids_.data() + c * params_.dim, rec.value.data(),
                params_.dim * sizeof(float));
  }
  std::vector<size_t> assign(live.size(), 0);
  for (size_t iter = 0; iter < params_.kmeans_iters; ++iter) {
    for (size_t i = 0; i < live.size(); ++i) {
      assign[i] = NearestCentroidLocked(records_[live[i]].value.data());
    }
    std::vector<double> sums(params_.nlist * params_.dim, 0.0);
    std::vector<size_t> counts(params_.nlist, 0);
    for (size_t i = 0; i < live.size(); ++i) {
      const float* v = records_[live[i]].value.data();
      double* sum = sums.data() + assign[i] * params_.dim;
      for (size_t d = 0; d < params_.dim; ++d) sum[d] += v[d];
      ++counts[assign[i]];
    }
    for (size_t c = 0; c < params_.nlist; ++c) {
      if (counts[c] == 0) continue;  // keep the old centroid
      float* centroid = centroids_.data() + c * params_.dim;
      const double* sum = sums.data() + c * params_.dim;
      for (size_t d = 0; d < params_.dim; ++d) {
        centroid[d] = static_cast<float>(sum[d] / counts[c]);
      }
    }
  }
  // Rebuild the inverted lists with the final assignment.
  lists_.assign(params_.nlist, {});
  for (size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].deleted) continue;
    const size_t list = NearestCentroidLocked(records_[i].value.data());
    records_[i].list = list;
    lists_[list].push_back(i);
  }
  trained_ = true;
}

void IvfFlatIndex::EncodeRecordLocked(size_t idx) {
  if (qcodes_.size() < records_.size()) {
    qcodes_.resize(records_.size());
    qnorms_.resize(records_.size(), 0);
  }
  qcodes_[idx].resize(params_.dim);
  simd::Sq8Encode(qparams_, records_[idx].value.data(), params_.dim,
                  qcodes_[idx].data());
  qnorms_[idx] = simd::Sq8CodeNorm(qcodes_[idx].data(), params_.dim);
}

Status IvfFlatIndex::AddPoint(uint64_t label, const float* vec) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = by_label_.find(label);
  if (it != by_label_.end()) {
    Record& rec = records_[it->second];
    rec.value.assign(vec, vec + params_.dim);
    if (rec.deleted) {
      rec.deleted = false;
      ++live_;
    }
    if (quant_trained_) EncodeRecordLocked(it->second);
    if (trained_) {
      // Move to the (possibly different) nearest list.
      const size_t list = NearestCentroidLocked(vec);
      if (list != rec.list) {
        auto& old_list = lists_[rec.list];
        old_list.erase(std::remove(old_list.begin(), old_list.end(), it->second),
                       old_list.end());
        rec.list = list;
        lists_[list].push_back(it->second);
      }
    }
    return Status::OK();
  }
  Record rec;
  rec.label = label;
  rec.value.assign(vec, vec + params_.dim);
  const size_t idx = records_.size();
  if (trained_) {
    rec.list = NearestCentroidLocked(vec);
    lists_[rec.list].push_back(idx);
  }
  records_.push_back(std::move(rec));
  by_label_.emplace(label, idx);
  ++live_;
  if (quant_trained_) EncodeRecordLocked(idx);
  if (!trained_ && live_ >= std::max(params_.train_threshold, params_.nlist)) {
    TrainLocked();
  }
  return Status::OK();
}

Status IvfFlatIndex::TrainQuantization() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!params_.sq8 || records_.empty()) return Status::OK();
  simd::Sq8Trainer trainer(params_.dim);
  for (const Record& rec : records_) trainer.Observe(rec.value.data());
  qparams_ = trainer.Finish();
  if (!qparams_.valid()) return Status::OK();
  quant_trained_ = true;
  qcodes_.resize(records_.size());
  qnorms_.resize(records_.size(), 0);
  for (size_t i = 0; i < records_.size(); ++i) EncodeRecordLocked(i);
  TV_COUNTER_INC("tv.quant.trainings_total");
  return Status::OK();
}

bool IvfFlatIndex::quant_active() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return quant_trained_;
}

Status IvfFlatIndex::UpdateItems(const std::vector<VectorIndexUpdate>& items,
                                 ThreadPool* pool) {
  (void)pool;
  for (const VectorIndexUpdate& item : items) {
    if (item.is_delete) {
      Status st = MarkDeleted(item.label);
      if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
    } else {
      TV_RETURN_NOT_OK(AddPoint(item.label, item.value.data()));
    }
  }
  return Status::OK();
}

Status IvfFlatIndex::MarkDeleted(uint64_t label) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = by_label_.find(label);
  if (it == by_label_.end()) {
    return Status::NotFound("label " + std::to_string(label) + " not in index");
  }
  Record& rec = records_[it->second];
  if (!rec.deleted) {
    rec.deleted = true;
    --live_;
  }
  return Status::OK();
}

bool IvfFlatIndex::Contains(uint64_t label) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return by_label_.count(label) > 0;
}

bool IvfFlatIndex::IsDeleted(uint64_t label) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_label_.find(label);
  return it == by_label_.end() || records_[it->second].deleted;
}

Status IvfFlatIndex::GetEmbedding(uint64_t label, float* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_label_.find(label);
  if (it == by_label_.end()) {
    return Status::NotFound("label " + std::to_string(label) + " not in index");
  }
  std::memcpy(out, records_[it->second].value.data(), params_.dim * sizeof(float));
  return Status::OK();
}

size_t IvfFlatIndex::NProbeFor(size_t ef) const {
  // ef ~ 8 points per probed list is a reasonable default mapping.
  const size_t nprobe = std::max<size_t>(1, ef / 8);
  return std::min(nprobe, std::max<size_t>(1, params_.nlist));
}

std::vector<SearchHit> IvfFlatIndex::TopKSearch(const float* query, size_t k,
                                                size_t ef,
                                                const FilterView& filter) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (!trained_) {
    // Fall back to a scan until trained (small index).
    lock.unlock();
    return BruteForceSearch(query, k, filter);
  }
  // Rank centroids with one contiguous batch call, probe the closest
  // nprobe lists.
  std::vector<float> centroid_dists(params_.nlist);
  ComputeDistanceBatch(params_.metric, query, centroids_.data(), params_.dim,
                       params_.nlist, centroid_dists.data());
  std::vector<std::pair<float, size_t>> ranked;
  ranked.reserve(params_.nlist);
  for (size_t c = 0; c < params_.nlist; ++c) {
    ranked.push_back({centroid_dists[c], c});
  }
  std::sort(ranked.begin(), ranked.end());
  const size_t nprobe = NProbeFor(ef);

  const bool use_quant =
      quant_trained_ && simd::ScopedQuantQuery::Enabled() && k > 0;
  // Quantized probe: rank the probed lists' rows on int8 codes into a
  // rerank_factor*k heap, rescore the survivors exactly below.
  const size_t heap_k =
      use_quant ? std::max<size_t>(1, simd::ScopedQuantQuery::RerankFactor()) * k
                : k;
  std::vector<int8_t> qcode;
  int64_t qnorm = 0;
  if (use_quant) {
    qcode.resize(params_.dim);
    simd::Sq8Encode(qparams_, query, params_.dim, qcode.data());
    qnorm = simd::Sq8CodeNorm(qcode.data(), params_.dim);
  }
  TopKHeap<uint64_t> heap(heap_k);
  const float* rows[kScanBatch];
  const int8_t* crows[kScanBatch];
  int64_t cnorms[kScanBatch];
  uint64_t row_labels[kScanBatch];
  float dists[kScanBatch];
  size_t n = 0;
  auto flush = [&] {
    const float threshold = heap.full() ? heap.WorstDistance()
                                        : std::numeric_limits<float>::infinity();
    if (use_quant) {
      simd::Sq8DistanceBatchGather(params_.metric, qcode.data(), qnorm,
                                   qparams_.scale, crows, cnorms, params_.dim, n,
                                   dists, threshold);
    } else {
      ComputeDistanceBatchGather(params_.metric, query, rows, params_.dim, n,
                                 dists, threshold);
    }
    for (size_t j = 0; j < n; ++j) {
      if (!heap.WouldReject(dists[j])) heap.Push(dists[j], row_labels[j]);
    }
    n = 0;
  };
  for (size_t p = 0; p < nprobe; ++p) {
    for (size_t idx : lists_[ranked[p].second]) {
      const Record& rec = records_[idx];
      if (rec.deleted || !filter.Accepts(rec.label)) continue;
      if (use_quant) {
        crows[n] = qcodes_[idx].data();
        cnorms[n] = qnorms_[idx];
      } else {
        rows[n] = rec.value.data();
      }
      row_labels[n] = rec.label;
      if (++n == kScanBatch) flush();
    }
  }
  if (n > 0) flush();
  if (!use_quant) {
    std::vector<SearchHit> out;
    for (const auto& e : heap.TakeSorted()) out.push_back(SearchHit{e.distance, e.id});
    return out;
  }
  return RerankLocked(query, k, heap.TakeSorted());
}

std::vector<SearchHit> IvfFlatIndex::RerankLocked(
    const float* query, size_t k,
    const std::vector<TopKHeap<uint64_t>::Entry>& approx) const {
  const float* rows[kScanBatch];
  float dists[kScanBatch];
  std::vector<SearchHit> reranked;
  reranked.reserve(approx.size());
  for (size_t j0 = 0; j0 < approx.size(); j0 += kScanBatch) {
    const size_t bn = std::min(kScanBatch, approx.size() - j0);
    for (size_t j = 0; j < bn; ++j) {
      rows[j] = records_[by_label_.find(approx[j0 + j].id)->second].value.data();
    }
    ComputeDistanceBatchGather(params_.metric, query, rows, params_.dim, bn, dists);
    for (size_t j = 0; j < bn; ++j) {
      reranked.push_back(SearchHit{dists[j], approx[j0 + j].id});
    }
  }
  simd::NoteQuantScan(approx.size());
  std::sort(reranked.begin(), reranked.end(),
            [](const SearchHit& a, const SearchHit& b) {
              return a.distance != b.distance ? a.distance < b.distance
                                              : a.label < b.label;
            });
  if (reranked.size() > k) reranked.resize(k);
  return reranked;
}

std::vector<SearchHit> IvfFlatIndex::RangeSearch(const float* query, float threshold,
                                                 size_t initial_k, size_t ef,
                                                 const FilterView& filter) const {
  // Same expanding-k adaptation used for HNSW (paper Sec. 4.4). Range
  // answers stay exact fp32 regardless of the quant tier (the differential
  // harness and the median stop test both depend on true distances).
  simd::ScopedQuantQuery exact_scope(false, 0);
  size_t k = std::max<size_t>(1, initial_k);
  std::vector<SearchHit> hits;
  size_t total;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    total = records_.size();
  }
  for (;;) {
    hits = TopKSearch(query, k, std::max(ef, k), filter);
    if (hits.size() < k) break;
    const float median = hits[hits.size() / 2].distance;
    if (threshold < median) break;
    if (k >= total) break;
    k = std::min(total, k * 2);
  }
  std::vector<SearchHit> out;
  for (const SearchHit& h : hits) {
    if (h.distance < threshold) out.push_back(h);
  }
  return out;
}

std::vector<SearchHit> IvfFlatIndex::BruteForceSearch(const float* query, size_t k,
                                                      const FilterView& filter) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const bool use_quant =
      quant_trained_ && simd::ScopedQuantQuery::Enabled() && k > 0;
  const size_t heap_k =
      use_quant ? std::max<size_t>(1, simd::ScopedQuantQuery::RerankFactor()) * k
                : k;
  std::vector<int8_t> qcode;
  int64_t qnorm = 0;
  if (use_quant) {
    qcode.resize(params_.dim);
    simd::Sq8Encode(qparams_, query, params_.dim, qcode.data());
    qnorm = simd::Sq8CodeNorm(qcode.data(), params_.dim);
  }
  TopKHeap<uint64_t> heap(heap_k);
  const float* rows[kScanBatch];
  const int8_t* crows[kScanBatch];
  int64_t cnorms[kScanBatch];
  uint64_t row_labels[kScanBatch];
  float dists[kScanBatch];
  size_t n = 0;
  auto flush = [&] {
    const float threshold = heap.full() ? heap.WorstDistance()
                                        : std::numeric_limits<float>::infinity();
    if (use_quant) {
      simd::Sq8DistanceBatchGather(params_.metric, qcode.data(), qnorm,
                                   qparams_.scale, crows, cnorms, params_.dim, n,
                                   dists, threshold);
    } else {
      ComputeDistanceBatchGather(params_.metric, query, rows, params_.dim, n,
                                 dists, threshold);
    }
    for (size_t j = 0; j < n; ++j) {
      if (!heap.WouldReject(dists[j])) heap.Push(dists[j], row_labels[j]);
    }
    n = 0;
  };
  for (size_t idx = 0; idx < records_.size(); ++idx) {
    const Record& rec = records_[idx];
    if (rec.deleted || !filter.Accepts(rec.label)) continue;
    if (use_quant) {
      crows[n] = qcodes_[idx].data();
      cnorms[n] = qnorms_[idx];
    } else {
      rows[n] = rec.value.data();
    }
    row_labels[n] = rec.label;
    if (++n == kScanBatch) flush();
  }
  if (n > 0) flush();
  if (!use_quant) {
    std::vector<SearchHit> out;
    for (const auto& e : heap.TakeSorted()) out.push_back(SearchHit{e.distance, e.id});
    return out;
  }
  return RerankLocked(query, k, heap.TakeSorted());
}

size_t IvfFlatIndex::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return live_;
}

std::vector<uint64_t> IvfFlatIndex::Labels() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<uint64_t> out;
  out.reserve(live_);
  for (const Record& rec : records_) {
    if (!rec.deleted) out.push_back(rec.label);
  }
  return out;
}

bool IvfFlatIndex::trained() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return trained_;
}

}  // namespace tigervector

file(REMOVE_RECURSE
  "CMakeFiles/updates_and_vacuum.dir/updates_and_vacuum.cpp.o"
  "CMakeFiles/updates_and_vacuum.dir/updates_and_vacuum.cpp.o.d"
  "updates_and_vacuum"
  "updates_and_vacuum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updates_and_vacuum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for community_search.
# This may be replaced when dependencies are built.

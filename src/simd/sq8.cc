// SQ8 scalar quantization: TV_QUANT mode resolution, per-segment training
// and encoding, the scalar int8 kernels, and the batched approximate-scan
// entry points. The per-ISA int8 kernels live in distance_avx2.cc /
// distance_avx512.cc next to their fp32 siblings; dispatch.cc owns the
// runtime kernel tables.

#include "simd/sq8.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "obs/metrics.h"
#include "simd/kernels.h"
#include "util/logging.h"

namespace tigervector::simd {

// ---------------------------------------------------------------------------
// TV_QUANT mode + TV_RERANK_FACTOR resolution (mirrors TV_SIMD in
// dispatch.cc: resolved once per process, logged, surfaced as a gauge).
// ---------------------------------------------------------------------------

namespace {

QuantMode ResolveQuantMode() {
  QuantMode mode = QuantMode::kOff;
  const char* env = std::getenv("TV_QUANT");
  if (env != nullptr && env[0] != '\0') {
    const std::string text = env;
    if (text == "off") {
      mode = QuantMode::kOff;
    } else if (text == "sq8") {
      mode = QuantMode::kSq8;
    } else {
      TV_LOG(Warn) << "quant: unrecognized TV_QUANT='" << env
                   << "' (want off|sq8), using off";
    }
  }
  TV_LOG(Info) << "quant: default embedding quantization mode is "
               << QuantModeName(mode);
  TV_GAUGE_SET("tv.quant.mode", static_cast<int64_t>(mode));
  return mode;
}

size_t ResolveRerankFactor() {
  size_t factor = 3;
  const char* env = std::getenv("TV_RERANK_FACTOR");
  if (env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end == nullptr || *end != '\0' || v == 0) {
      TV_LOG(Warn) << "quant: unrecognized TV_RERANK_FACTOR='" << env
                   << "' (want a positive integer), using " << factor;
    } else {
      factor = static_cast<size_t>(v);
    }
  }
  return factor;
}

}  // namespace

const char* QuantModeName(QuantMode mode) {
  switch (mode) {
    case QuantMode::kOff:
      return "off";
    case QuantMode::kSq8:
      return "sq8";
  }
  return "?";
}

QuantMode ActiveQuantMode() {
  static const QuantMode mode = ResolveQuantMode();
  return mode;
}

const char* ActiveQuantModeName() { return QuantModeName(ActiveQuantMode()); }

size_t DefaultRerankFactor() {
  static const size_t factor = ResolveRerankFactor();
  return factor;
}

// ---------------------------------------------------------------------------
// Training / encoding.
// ---------------------------------------------------------------------------

Sq8Trainer::Sq8Trainer(size_t dim) : dim_(dim) {}

void Sq8Trainer::Observe(const float* vec) {
  if (rows_ == 0) {
    min_.assign(vec, vec + dim_);
    max_.assign(vec, vec + dim_);
  } else {
    for (size_t d = 0; d < dim_; ++d) {
      min_[d] = std::min(min_[d], vec[d]);
      max_[d] = std::max(max_[d], vec[d]);
    }
  }
  ++rows_;
}

Sq8Params Sq8Trainer::Finish() const {
  Sq8Params params;
  if (rows_ == 0) return params;
  params.min = min_;
  params.max = max_;
  float max_abs = 0.f;
  for (size_t d = 0; d < dim_; ++d) {
    max_abs = std::max(max_abs, std::max(std::fabs(min_[d]), std::fabs(max_[d])));
  }
  params.scale = max_abs / 127.f;
  return params;
}

void Sq8Encode(const Sq8Params& params, const float* vec, size_t dim, int8_t* out) {
  if (params.scale == 0.f) {
    for (size_t d = 0; d < dim; ++d) out[d] = 0;
    return;
  }
  const float inv = 1.f / params.scale;
  for (size_t d = 0; d < dim; ++d) {
    const float scaled = std::nearbyintf(vec[d] * inv);
    out[d] = static_cast<int8_t>(std::max(-127.f, std::min(127.f, scaled)));
  }
}

void Sq8Decode(const Sq8Params& params, const int8_t* codes, size_t dim, float* out) {
  for (size_t d = 0; d < dim; ++d) {
    out[d] = params.scale * static_cast<float>(codes[d]);
  }
}

int64_t Sq8CodeNorm(const int8_t* codes, size_t dim) {
  return internal::ScalarSq8Dot(codes, codes, dim);
}

// ---------------------------------------------------------------------------
// Scalar int8 kernels (the reference every SIMD variant is pinned against).
// i32 accumulators with four-way unrolling: per-term magnitude is at most
// 254^2 = 64516, so a single i32 accumulator is safe up to dim ~33k; the
// four-way split plus the final i64 sum keeps headroom far beyond any
// embedding dimensionality in use.
// ---------------------------------------------------------------------------

namespace internal {

int64_t ScalarSq8L2(const int8_t* a, const int8_t* b, size_t dim) {
  int32_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const int32_t d0 = int32_t{a[i]} - int32_t{b[i]};
    const int32_t d1 = int32_t{a[i + 1]} - int32_t{b[i + 1]};
    const int32_t d2 = int32_t{a[i + 2]} - int32_t{b[i + 2]};
    const int32_t d3 = int32_t{a[i + 3]} - int32_t{b[i + 3]};
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < dim; ++i) {
    const int32_t d = int32_t{a[i]} - int32_t{b[i]};
    acc0 += d * d;
  }
  return int64_t{acc0} + acc1 + acc2 + acc3;
}

int64_t ScalarSq8Dot(const int8_t* a, const int8_t* b, size_t dim) {
  int32_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    acc0 += int32_t{a[i]} * int32_t{b[i]};
    acc1 += int32_t{a[i + 1]} * int32_t{b[i + 1]};
    acc2 += int32_t{a[i + 2]} * int32_t{b[i + 2]};
    acc3 += int32_t{a[i + 3]} * int32_t{b[i + 3]};
  }
  for (; i < dim; ++i) acc0 += int32_t{a[i]} * int32_t{b[i]};
  return int64_t{acc0} + acc1 + acc2 + acc3;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Batched approximate-scan entry points.
// ---------------------------------------------------------------------------

namespace {

constexpr size_t kLookahead = 2;

inline void PrefetchCodes(const int8_t* row, size_t dim) {
  const size_t lines = std::min<size_t>((dim + 63) / 64, 4);
  const char* p = reinterpret_cast<const char*>(row);
  for (size_t l = 0; l < lines; ++l) __builtin_prefetch(p + l * 64, 0, 1);
}

// Turns a raw integer kernel result into an fp32-comparable distance.
struct Sq8BatchKernel {
  const Sq8KernelTable* table;
  Metric metric;
  float scale_sq;
  double inv_sqrt_qnorm;  // cosine only; 0 when the query norm is zero

  inline float Distance(const int8_t* query, const int8_t* row, int64_t row_norm,
                        size_t dim) const {
    switch (metric) {
      case Metric::kL2:
        return scale_sq * static_cast<float>(table->l2(query, row, dim));
      case Metric::kIp:
        return 1.f - scale_sq * static_cast<float>(table->dot(query, row, dim));
      case Metric::kCosine: {
        if (inv_sqrt_qnorm == 0.0 || row_norm <= 0) return 2.f;
        const double dot = static_cast<double>(table->dot(query, row, dim));
        return static_cast<float>(
            1.0 - dot * inv_sqrt_qnorm / std::sqrt(static_cast<double>(row_norm)));
      }
    }
    return 0.f;
  }
};

inline Sq8BatchKernel ResolveSq8Batch(Metric metric, int64_t query_norm,
                                      float scale) {
  Sq8BatchKernel k;
  k.table = &internal::ActiveSq8Kernels();
  k.metric = metric;
  k.scale_sq = scale * scale;
  k.inv_sqrt_qnorm =
      query_norm > 0 ? 1.0 / std::sqrt(static_cast<double>(query_norm)) : 0.0;
  return k;
}

}  // namespace

size_t Sq8DistanceBatch(Metric metric, const int8_t* query, int64_t query_norm,
                        float scale, const int8_t* rows, const int64_t* row_norms,
                        size_t dim, size_t count, float* out, float threshold) {
  const Sq8BatchKernel k = ResolveSq8Batch(metric, query_norm, scale);
  size_t below = 0;
  for (size_t i = 0; i < count; ++i) {
    if (i + kLookahead < count) PrefetchCodes(rows + (i + kLookahead) * dim, dim);
    const int64_t norm = row_norms != nullptr ? row_norms[i] : 0;
    const float d = k.Distance(query, rows + i * dim, norm, dim);
    out[i] = d;
    if (d < threshold) ++below;
  }
  return below;
}

size_t Sq8DistanceBatchGather(Metric metric, const int8_t* query, int64_t query_norm,
                              float scale, const int8_t* const* rows,
                              const int64_t* row_norms, size_t dim, size_t count,
                              float* out, float threshold) {
  const Sq8BatchKernel k = ResolveSq8Batch(metric, query_norm, scale);
  size_t below = 0;
  for (size_t i = 0; i < count; ++i) {
    if (i + kLookahead < count) PrefetchCodes(rows[i + kLookahead], dim);
    const int64_t norm = row_norms != nullptr ? row_norms[i] : 0;
    const float d = k.Distance(query, rows[i], norm, dim);
    out[i] = d;
    if (d < threshold) ++below;
  }
  return below;
}

// ---------------------------------------------------------------------------
// Per-query policy + stats (thread-local, mirroring the tl_dist_evals
// idiom in hnsw_index.cc).
// ---------------------------------------------------------------------------

namespace {

struct QuantQueryState {
  bool enabled = true;
  uint32_t rerank_factor = 0;  // 0 = DefaultRerankFactor()
  uint64_t scans = 0;
  uint64_t reranked = 0;
};

thread_local QuantQueryState tl_quant_query;

}  // namespace

ScopedQuantQuery::ScopedQuantQuery(bool enabled, size_t rerank_factor)
    : saved_enabled_(tl_quant_query.enabled),
      saved_factor_(tl_quant_query.rerank_factor),
      scans0_(tl_quant_query.scans),
      reranked0_(tl_quant_query.reranked) {
  tl_quant_query.enabled = enabled;
  tl_quant_query.rerank_factor = static_cast<uint32_t>(rerank_factor);
}

ScopedQuantQuery::~ScopedQuantQuery() {
  tl_quant_query.enabled = saved_enabled_;
  tl_quant_query.rerank_factor = saved_factor_;
}

bool ScopedQuantQuery::Enabled() { return tl_quant_query.enabled; }

size_t ScopedQuantQuery::RerankFactor() {
  return tl_quant_query.rerank_factor != 0 ? tl_quant_query.rerank_factor
                                           : DefaultRerankFactor();
}

uint64_t ScopedQuantQuery::quant_scans() const {
  return tl_quant_query.scans - scans0_;
}

uint64_t ScopedQuantQuery::reranked() const {
  return tl_quant_query.reranked - reranked0_;
}

void NoteQuantScan(uint64_t reranked) {
  ++tl_quant_query.scans;
  tl_quant_query.reranked += reranked;
  TV_COUNTER_INC("tv.quant.scans_total");
  TV_COUNTER_ADD("tv.quant.reranked_total", reranked);
}

}  // namespace tigervector::simd

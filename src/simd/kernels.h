#ifndef TIGERVECTOR_SIMD_KERNELS_H_
#define TIGERVECTOR_SIMD_KERNELS_H_

#include <cstddef>

#include <cstdint>

#include "simd/distance.h"
#include "simd/sq8.h"

// Internal per-ISA kernel implementations behind the runtime dispatcher.
// Each translation unit is compiled with exactly the target flags its
// kernels need (see src/simd/CMakeLists.txt: distance_avx2.cc gets
// -mavx2 -mfma, distance_avx512.cc gets -mavx512f), so nothing outside
// src/simd may include this header — calling an AVX-512 symbol on a CPU
// without AVX-512 is an illegal instruction, and only dispatch.cc knows
// when that is safe.
//
// Every cosine kernel must implement the zero-norm sentinel: if either
// operand has zero norm the distance is 2.0f (the metric's maximum), so a
// degenerate vector can never masquerade as "orthogonal" (1.0f) and sneak
// into a top-k result.

namespace tigervector::simd::internal {

float ScalarL2(const float* a, const float* b, size_t dim);
float ScalarIp(const float* a, const float* b, size_t dim);
float ScalarCosine(const float* a, const float* b, size_t dim);

// int8 SQ8 kernels: exact integer sums, so cross-ISA parity is bit-exact.
int64_t ScalarSq8L2(const int8_t* a, const int8_t* b, size_t dim);
int64_t ScalarSq8Dot(const int8_t* a, const int8_t* b, size_t dim);

#if defined(TV_HAVE_AVX2_KERNELS)
float Avx2L2(const float* a, const float* b, size_t dim);
float Avx2Ip(const float* a, const float* b, size_t dim);
float Avx2Cosine(const float* a, const float* b, size_t dim);
int64_t Avx2Sq8L2(const int8_t* a, const int8_t* b, size_t dim);
int64_t Avx2Sq8Dot(const int8_t* a, const int8_t* b, size_t dim);
#endif

#if defined(TV_HAVE_AVX512_KERNELS)
float Avx512L2(const float* a, const float* b, size_t dim);
float Avx512Ip(const float* a, const float* b, size_t dim);
float Avx512Cosine(const float* a, const float* b, size_t dim);
int64_t Avx512Sq8L2(const int8_t* a, const int8_t* b, size_t dim);
int64_t Avx512Sq8Dot(const int8_t* a, const int8_t* b, size_t dim);
#endif

// 512-bit int8 kernels (distance_avx512bw.cc, -mavx512f -mavx512bw). The
// dispatcher gates these on avx512bw separately from the avx512f check: a
// CPU with F but not BW keeps the 256-bit Avx512Sq8* kernels above.
#if defined(TV_HAVE_AVX512BW_KERNELS)
int64_t Avx512BwSq8L2(const int8_t* a, const int8_t* b, size_t dim);
int64_t Avx512BwSq8Dot(const int8_t* a, const int8_t* b, size_t dim);
#endif

// The per-process kernel tables the dispatched entry points in distance.cc
// and sq8.cc call through (resolved once by dispatch.cc).
const KernelTable& ActiveKernels();
const Sq8KernelTable& ActiveSq8Kernels();

}  // namespace tigervector::simd::internal

#endif  // TIGERVECTOR_SIMD_KERNELS_H_

#include "net/client.h"

#include <chrono>
#include <thread>

#include "obs/metrics.h"

namespace tigervector::net {

Status TvClient::EnsureConnected() {
  if (socket_.is_open()) return Status::OK();
  auto connected =
      Socket::Connect(options_.host, options_.port, options_.connect_timeout_ms);
  TV_RETURN_NOT_OK(connected.status());
  socket_ = std::move(connected).value();
  socket_.set_fault_site(options_.fault_site);
  TV_RETURN_NOT_OK(socket_.SetRecvTimeout(options_.request_timeout_ms));
  TV_RETURN_NOT_OK(socket_.SetSendTimeout(options_.request_timeout_ms));
  return Status::OK();
}

Status TvClient::Exchange(const Frame& request, Frame* response) {
  TV_RETURN_NOT_OK(EnsureConnected());
  Status sent = WriteFrame(socket_, request);
  if (!sent.ok()) {
    socket_.Close();
    return sent;
  }
  for (;;) {
    auto read = ReadFrame(socket_);
    if (!read.ok()) {
      socket_.Close();
      return read.status();
    }
    // A stale response (older request id) can only follow a retried
    // request whose first reply was delayed, not lost; skip it. Connection-
    // level RETRY_LATER rejections carry no request id and always apply.
    if (read.value().type != MsgType::kRetryLater &&
        read.value().request_id < request.request_id) {
      continue;
    }
    *response = std::move(read).value();
    return Status::OK();
  }
}

void TvClient::Backoff(int attempt) {
  // Exponential backoff with full jitter: uniform in (0, base * 2^attempt].
  uint64_t ceiling = static_cast<uint64_t>(options_.backoff_base_ms) << attempt;
  if (ceiling > 2000) ceiling = 2000;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(1 + rng_.NextBounded(ceiling)));
}

Status TvClient::ExchangeWithRetry(const Frame& request, bool idempotent,
                                   Frame* response) {
  Status last = Status::OK();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      TV_COUNTER_INC("tv.net.client_retries_total");
      Backoff(attempt - 1);
    }
    last = Exchange(request, response);
    if (last.ok()) {
      if (response->type == MsgType::kRetryLater) {
        // Admission fast-reject: the request never executed, so it is
        // always safe to retry regardless of idempotence.
        ++rejected_;
        TV_COUNTER_INC("tv.net.client_rejected_total");
        last = Status::Unavailable("server saturated (RETRY_LATER)");
        continue;
      }
      return Status::OK();
    }
    const bool transport_error = last.code() == StatusCode::kIOError ||
                                 last.code() == StatusCode::kDeadlineExceeded;
    // Transport errors after the request left may mean it executed and
    // only the reply was lost — retrying a non-idempotent request could
    // run it twice, so surface the error instead.
    if (!transport_error || !idempotent) return last;
  }
  return last;
}

Result<ScriptResult> TvClient::Run(const std::string& script,
                                   const QueryParams& params,
                                   const RunOptions& run) {
  Frame request;
  request.type = MsgType::kQuery;
  request.request_id = next_request_id_++;
  request.deadline_micros = run.deadline_micros;
  request.payload = EncodeQueryRequest(QueryRequest{script, params});

  Frame response;
  TV_RETURN_NOT_OK(ExchangeWithRetry(request, run.idempotent, &response));
  switch (response.type) {
    case MsgType::kResult: {
      ScriptResult result;
      TV_RETURN_NOT_OK(DecodeScriptResult(response.payload, &result));
      return result;
    }
    case MsgType::kError: {
      Status remote = Status::OK();
      TV_RETURN_NOT_OK(DecodeStatus(response.payload, &remote));
      if (remote.ok()) {
        return Status::IOError("server sent an error frame with an OK status");
      }
      return remote;
    }
    default:
      return Status::IOError(std::string("unexpected response frame type '") +
                             MsgTypeName(response.type) + "' to a query");
  }
}

Status TvClient::Ping() {
  Frame request;
  request.type = MsgType::kPing;
  request.request_id = next_request_id_++;
  Frame response;
  TV_RETURN_NOT_OK(ExchangeWithRetry(request, /*idempotent=*/true, &response));
  if (response.type != MsgType::kPong) {
    return Status::IOError(std::string("unexpected response frame type '") +
                           MsgTypeName(response.type) + "' to a ping");
  }
  return Status::OK();
}

namespace {

Result<std::string> TextResponse(const Frame& response) {
  if (response.type == MsgType::kError) {
    Status remote = Status::OK();
    TV_RETURN_NOT_OK(DecodeStatus(response.payload, &remote));
    return remote.ok() ? Status::IOError("malformed error frame") : remote;
  }
  if (response.type != MsgType::kText) {
    return Status::IOError(std::string("unexpected response frame type '") +
                           MsgTypeName(response.type) + "'");
  }
  return response.payload;
}

}  // namespace

Result<std::string> TvClient::Metrics() {
  Frame request;
  request.type = MsgType::kMetrics;
  request.request_id = next_request_id_++;
  Frame response;
  TV_RETURN_NOT_OK(ExchangeWithRetry(request, /*idempotent=*/true, &response));
  return TextResponse(response);
}

Result<std::string> TvClient::FlightRec(uint64_t flight_id) {
  Frame request;
  request.type = MsgType::kFlightRec;
  request.request_id = next_request_id_++;
  WireWriter w;
  w.PutU64(flight_id);
  request.payload = w.Take();
  Frame response;
  TV_RETURN_NOT_OK(ExchangeWithRetry(request, /*idempotent=*/true, &response));
  return TextResponse(response);
}

}  // namespace tigervector::net

#ifndef TIGERVECTOR_OBS_TRACE_H_
#define TIGERVECTOR_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace tigervector::obs {

// Per-query trace buffer: the destination of TV_SPAN stage timings while a
// trace is active on the recording thread (the GSQL session activates one
// for the duration of every script). The buffer is thread-safe so spans
// recorded on thread-pool workers (segment fan-out, cluster scatter) can
// land in the same query's trace; activation is propagated explicitly by
// the fan-out sites via ScopedTraceActivation.
class QueryTrace {
 public:
  struct Span {
    std::string name;
    uint32_t depth = 0;        // nesting depth on the recording thread
    double micros = 0;         // duration
    double start_micros = 0;   // steady-clock offset from the trace origin
    uint32_t thread_id = 0;    // stable per-thread slot (see ThreadSlot())
  };

  QueryTrace() : origin_(std::chrono::steady_clock::now()) {}

  void RecordSpan(const char* name, uint32_t depth, double micros);
  // Full-fidelity variant carrying the span's start offset; the recording
  // thread's stable slot is captured automatically.
  void RecordSpanAt(const char* name, uint32_t depth, double start_micros,
                    double micros);
  // Accumulates a named per-query quantity (e.g. "hnsw.distance_evals").
  void AddCounter(const char* name, uint64_t delta);

  std::vector<Span> Spans() const;
  // Total time per span name, summed over all occurrences.
  std::map<std::string, double> StageMicros() const;
  std::map<std::string, uint64_t> Counters() const;

  // Human-readable stage breakdown (the PROFILE output).
  std::string Render() const;

  // Construction time of this trace; span start offsets are relative to it.
  std::chrono::steady_clock::time_point origin() const { return origin_; }

  void Clear();

 private:
  const std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::map<std::string, uint64_t> counters_;
};

// Trace active on the current thread, or null.
QueryTrace* CurrentTrace();

// Small, stable identifier of the calling thread (assigned sequentially on
// first use, starting at 1). Unlike std::thread::id it survives as a
// compact Chrome-trace "tid" and lets interleaved fan-out spans from
// different pool workers stay attributed to their own thread.
uint32_t ThreadSlot();

// Installs `trace` as the current thread's active trace for the scope (null
// is a no-op passthrough). Used at the top of a query and inside
// thread-pool tasks to carry the parent's trace across threads.
class ScopedTraceActivation {
 public:
  explicit ScopedTraceActivation(QueryTrace* trace);
  ~ScopedTraceActivation();

  ScopedTraceActivation(const ScopedTraceActivation&) = delete;
  ScopedTraceActivation& operator=(const ScopedTraceActivation&) = delete;

 private:
  QueryTrace* prev_;
  uint32_t prev_depth_;
};

// RAII stage timer behind TV_SPAN. When no trace is active the constructor
// is a thread-local load and a branch; no clock is read.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  QueryTrace* trace_;
  uint32_t depth_ = 0;
  std::chrono::steady_clock::time_point start_;
};

// Records a completed stage by duration (for sections where RAII scoping is
// awkward). No-op when no trace is active.
void RecordSpanMicros(const char* name, double micros);

}  // namespace tigervector::obs

#if defined(TIGERVECTOR_NO_METRICS)

#define TV_SPAN(name) ((void)0)

#else

#define TV_OBS_CONCAT2(a, b) a##b
#define TV_OBS_CONCAT(a, b) TV_OBS_CONCAT2(a, b)
// Times the enclosing scope as one span of the active query trace, e.g.
//   TV_SPAN("hnsw.search");
#define TV_SPAN(name) \
  ::tigervector::obs::ScopedSpan TV_OBS_CONCAT(_tv_span_, __LINE__)(name)

#endif  // TIGERVECTOR_NO_METRICS

#endif  // TIGERVECTOR_OBS_TRACE_H_

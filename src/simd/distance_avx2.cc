// AVX2+FMA one-pair kernels. This TU is compiled with -mavx2 -mfma and may
// only be entered through the runtime dispatcher (dispatch.cc), which has
// verified CPU support. Unaligned loads throughout: callers hand us rows of
// arbitrary alignment (std::vector buffers, row offsets into larger
// arrays). Two 8-lane FMA accumulators per stream keep both FMA ports busy;
// the scalar tail handles dims that are not a multiple of 8.

#if defined(TV_HAVE_AVX2_KERNELS)

#include <immintrin.h>

#include <cmath>
#include <cstddef>

#include "simd/kernels.h"

namespace tigervector::simd::internal {

namespace {

inline float Hsum256(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

}  // namespace

float Avx2L2(const float* a, const float* b, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 d0 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  if (i + 8 <= dim) {
    const __m256 d =
        _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
    i += 8;
  }
  float total = Hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

float Avx2Ip(const float* a, const float* b, size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8),
                           acc1);
  }
  if (i + 8 <= dim) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    i += 8;
  }
  float total = Hsum256(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) total += a[i] * b[i];
  return total;
}

float Avx2Cosine(const float* a, const float* b, size_t dim) {
  __m256 dot = _mm256_setzero_ps();
  __m256 na = _mm256_setzero_ps();
  __m256 nb = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    dot = _mm256_fmadd_ps(va, vb, dot);
    na = _mm256_fmadd_ps(va, va, na);
    nb = _mm256_fmadd_ps(vb, vb, nb);
  }
  float dot_s = Hsum256(dot), na_s = Hsum256(na), nb_s = Hsum256(nb);
  for (; i < dim; ++i) {
    dot_s += a[i] * b[i];
    na_s += a[i] * a[i];
    nb_s += b[i] * b[i];
  }
  const float denom = std::sqrt(na_s) * std::sqrt(nb_s);
  if (denom == 0.f) return 2.f;  // zero-norm sentinel: worst cosine distance
  return 1.f - dot_s / denom;
}

// ---------------------------------------------------------------------------
// int8 SQ8 kernels. 32 codes per iteration: sign-extend each 16-byte half
// to i16 (codes are clamped to ±127, so differences fit i16 at ±254), then
// pmaddwd folds pairs of i16 products into i32 lanes. A lane absorbs at
// most 2 * 254^2 per madd (two madds per iteration), so the i32 lanes are
// safe to dim ~260k; the horizontal sum widens to i64 before adding lanes.
// Exact integer arithmetic throughout — cross-ISA parity against the scalar
// kernel is bit-exact, not tolerance-based.
// ---------------------------------------------------------------------------

namespace {

inline int64_t HsumEpi32(__m256i v) {
  const __m256i lo64 = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v));
  const __m256i hi64 = _mm256_cvtepi32_epi64(_mm256_extracti128_si256(v, 1));
  const __m256i sum = _mm256_add_epi64(lo64, hi64);
  __m128i s = _mm_add_epi64(_mm256_castsi256_si128(sum),
                            _mm256_extracti128_si256(sum, 1));
  s = _mm_add_epi64(s, _mm_unpackhi_epi64(s, s));
  return _mm_cvtsi128_si64(s);
}

}  // namespace

int64_t Avx2Sq8L2(const int8_t* a, const int8_t* b, size_t dim) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i d_lo =
        _mm256_sub_epi16(_mm256_cvtepi8_epi16(_mm256_castsi256_si128(va)),
                         _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb)));
    const __m256i d_hi =
        _mm256_sub_epi16(_mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1)),
                         _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d_lo, d_lo));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d_hi, d_hi));
  }
  int64_t total = HsumEpi32(acc);
  for (; i < dim; ++i) {
    const int32_t d = int32_t{a[i]} - int32_t{b[i]};
    total += d * d;
  }
  return total;
}

int64_t Avx2Sq8Dot(const int8_t* a, const int8_t* b, size_t dim) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi32(
        acc, _mm256_madd_epi16(_mm256_cvtepi8_epi16(_mm256_castsi256_si128(va)),
                               _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb))));
    acc = _mm256_add_epi32(
        acc,
        _mm256_madd_epi16(_mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1)),
                          _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1))));
  }
  int64_t total = HsumEpi32(acc);
  for (; i < dim; ++i) total += int32_t{a[i]} * int32_t{b[i]};
  return total;
}

}  // namespace tigervector::simd::internal

#endif  // TV_HAVE_AVX2_KERNELS

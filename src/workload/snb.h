#ifndef TIGERVECTOR_WORKLOAD_SNB_H_
#define TIGERVECTOR_WORKLOAD_SNB_H_

#include <string>
#include <vector>

#include "core/database.h"
#include "workload/datasets.h"

namespace tigervector {

// LDBC-SNB-like social network generator (paper Sec. 6.5 builds its hybrid
// dataset by adding content embeddings to SNB Posts/Comments). Entities:
// Person, Post, Comment, Country; edges: knows (Person-Person, undirected),
// hasCreator (Message->Person), replyOf (Comment->Post), isLocatedIn
// (Person->Country and Message->Country). Persons form communities so the
// knows graph has Louvain-friendly structure; message embeddings are
// sampled from a SIFT-like distribution, matching the paper's setup.
struct SnbConfig {
  size_t num_persons = 1000;
  size_t num_countries = 20;
  size_t communities = 12;
  // Average knows-degree; ~90% of edges stay within a community.
  size_t avg_knows = 12;
  size_t posts_per_person = 4;
  size_t comments_per_post = 2;
  size_t embedding_dim = 64;
  size_t num_tags = 40;        // Posts/Comments carry a tag id (IC6 analog)
  uint64_t seed = 99;
  size_t batch_size = 512;     // vertices per commit
};

struct SnbStats {
  size_t num_persons = 0;
  size_t num_posts = 0;
  size_t num_comments = 0;
  size_t num_knows_edges = 0;
  std::vector<VertexId> persons;
  std::vector<VertexId> posts;
  std::vector<VertexId> comments;
  std::vector<VertexId> countries;
};

// Creates the SNB schema (vertex/edge types + a shared embedding space for
// Post.content_emb and Comment.content_emb) on an empty database.
Status CreateSnbSchema(Database* db, const SnbConfig& config);

// Generates and loads the dataset; fills `stats`.
Status LoadSnb(Database* db, const SnbConfig& config, SnbStats* stats);

}  // namespace tigervector

#endif  // TIGERVECTOR_WORKLOAD_SNB_H_

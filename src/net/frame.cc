#include "net/frame.h"

#include <cstring>

#include "obs/metrics.h"

namespace tigervector::net {

namespace {

void PutLE(std::string* buf, uint64_t v, size_t bytes) {
  for (size_t i = 0; i < bytes; ++i) {
    buf->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint64_t GetLE(const unsigned char* p, size_t bytes) {
  uint64_t v = 0;
  for (size_t i = 0; i < bytes; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kPing:
      return "ping";
    case MsgType::kPong:
      return "pong";
    case MsgType::kQuery:
      return "query";
    case MsgType::kResult:
      return "result";
    case MsgType::kError:
      return "error";
    case MsgType::kRetryLater:
      return "retry_later";
    case MsgType::kMetrics:
      return "metrics";
    case MsgType::kFlightRec:
      return "flightrec";
    case MsgType::kText:
      return "text";
  }
  return "unknown";
}

uint32_t Crc32(const void* data, size_t len) {
  // Table-driven CRC-32 (IEEE), table built once on first use.
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

Status WriteFrame(Socket& socket, const Frame& frame) {
  if (frame.payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("frame payload exceeds " +
                                   std::to_string(kMaxPayloadBytes) + " bytes");
  }
  std::string wire;
  wire.reserve(kFrameHeaderBytes + frame.payload.size());
  PutLE(&wire, kWireMagic, 4);
  PutLE(&wire, kWireVersion, 2);
  PutLE(&wire, static_cast<uint64_t>(frame.type), 1);
  PutLE(&wire, 0, 1);  // flags
  PutLE(&wire, frame.request_id, 8);
  PutLE(&wire, frame.deadline_micros, 8);
  PutLE(&wire, frame.payload.size(), 4);
  PutLE(&wire, Crc32(frame.payload.data(), frame.payload.size()), 4);
  wire.append(frame.payload);
  // Header + payload leave in one send so a torn-write fault can land
  // anywhere inside the frame, exactly like a process dying mid-send.
  TV_COUNTER_INC("tv.net.frames_sent_total");
  return socket.SendAll(wire.data(), wire.size());
}

Result<Frame> ReadFrame(Socket& socket) {
  unsigned char header[kFrameHeaderBytes];
  TV_RETURN_NOT_OK(socket.RecvAll(header, sizeof(header)));
  const uint32_t magic = static_cast<uint32_t>(GetLE(header, 4));
  if (magic != kWireMagic) {
    return Status::IOError("bad frame magic 0x" + std::to_string(magic) +
                           " (not a TigerVector wire-protocol peer)");
  }
  const uint16_t version = static_cast<uint16_t>(GetLE(header + 4, 2));
  if (version != kWireVersion) {
    return Status::IOError("unsupported wire protocol version " +
                           std::to_string(version) + " (this build speaks " +
                           std::to_string(kWireVersion) + ")");
  }
  Frame frame;
  frame.type = static_cast<MsgType>(header[6]);
  frame.request_id = GetLE(header + 8, 8);
  frame.deadline_micros = GetLE(header + 16, 8);
  const uint32_t payload_len = static_cast<uint32_t>(GetLE(header + 24, 4));
  const uint32_t payload_crc = static_cast<uint32_t>(GetLE(header + 28, 4));
  if (payload_len > kMaxPayloadBytes) {
    return Status::IOError("frame payload length " + std::to_string(payload_len) +
                           " exceeds the protocol bound (corrupt header?)");
  }
  frame.payload.resize(payload_len);
  if (payload_len > 0) {
    TV_RETURN_NOT_OK(socket.RecvAll(frame.payload.data(), payload_len));
  }
  const uint32_t crc = Crc32(frame.payload.data(), frame.payload.size());
  if (crc != payload_crc) {
    return Status::IOError("frame payload checksum mismatch (torn or corrupt "
                           "frame)");
  }
  TV_COUNTER_INC("tv.net.frames_recv_total");
  return frame;
}

void WireWriter::PutU32(uint32_t v) { PutLE(&buf_, v, 4); }
void WireWriter::PutU64(uint64_t v) { PutLE(&buf_, v, 8); }

void WireWriter::PutF32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, 4);
  PutU32(bits);
}

void WireWriter::PutF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(bits);
}

void WireWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

void WireWriter::PutFloatVec(const std::vector<float>& v) {
  PutU32(static_cast<uint32_t>(v.size()));
  for (float f : v) PutF32(f);
}

Status WireReader::Need(size_t n) {
  if (buf_.size() - pos_ < n) {
    return Status::IOError("wire payload underrun (decoder wants " +
                           std::to_string(n) + " bytes, " +
                           std::to_string(buf_.size() - pos_) + " left)");
  }
  return Status::OK();
}

Status WireReader::GetU8(uint8_t* v) {
  TV_RETURN_NOT_OK(Need(1));
  *v = static_cast<uint8_t>(buf_[pos_++]);
  return Status::OK();
}

Status WireReader::GetU32(uint32_t* v) {
  TV_RETURN_NOT_OK(Need(4));
  *v = static_cast<uint32_t>(
      GetLE(reinterpret_cast<const unsigned char*>(buf_.data()) + pos_, 4));
  pos_ += 4;
  return Status::OK();
}

Status WireReader::GetU64(uint64_t* v) {
  TV_RETURN_NOT_OK(Need(8));
  *v = GetLE(reinterpret_cast<const unsigned char*>(buf_.data()) + pos_, 8);
  pos_ += 8;
  return Status::OK();
}

Status WireReader::GetI64(int64_t* v) {
  uint64_t u;
  TV_RETURN_NOT_OK(GetU64(&u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status WireReader::GetF32(float* v) {
  uint32_t bits;
  TV_RETURN_NOT_OK(GetU32(&bits));
  std::memcpy(v, &bits, 4);
  return Status::OK();
}

Status WireReader::GetF64(double* v) {
  uint64_t bits;
  TV_RETURN_NOT_OK(GetU64(&bits));
  std::memcpy(v, &bits, 8);
  return Status::OK();
}

Status WireReader::GetString(std::string* s) {
  uint32_t len;
  TV_RETURN_NOT_OK(GetU32(&len));
  TV_RETURN_NOT_OK(Need(len));
  s->assign(buf_, pos_, len);
  pos_ += len;
  return Status::OK();
}

Status WireReader::GetFloatVec(std::vector<float>* v) {
  uint32_t len;
  TV_RETURN_NOT_OK(GetU32(&len));
  TV_RETURN_NOT_OK(Need(static_cast<size_t>(len) * 4));
  v->resize(len);
  for (uint32_t i = 0; i < len; ++i) TV_RETURN_NOT_OK(GetF32(&(*v)[i]));
  return Status::OK();
}

}  // namespace tigervector::net

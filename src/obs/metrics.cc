#include "obs/metrics.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <mutex>
#include <shared_mutex>
#include <sstream>
#include <thread>
#include <vector>

namespace tigervector::obs {

namespace {

// Renders a seconds value compactly ("0.000256", "4.2", "+Inf").
std::string FmtSeconds(double v) {
  if (std::isinf(v)) return "+Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
// convention maps onto that by replacing every other character with '_'.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

// Registry names may carry labels in braces ("tv.query.errors_total" with
// "{kind=parse}" appended, or several comma-separated pairs:
// "{site=accept,kind=io}"). Splits such a name into its Prometheus base
// name and a rendered label suffix ({kind="parse"} /
// {site="accept",kind="io"}); label-less names pass through with an empty
// suffix, and malformed label blocks degrade to a literal (sanitized) name
// rather than corrupt exposition.
void SplitPromName(const std::string& name, std::string* base, std::string* labels) {
  labels->clear();
  const size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    *base = PromName(name);
    return;
  }
  const std::string inner = name.substr(brace + 1, name.size() - brace - 2);
  std::string rendered = "{";
  size_t start = 0;
  while (start <= inner.size()) {
    size_t comma = inner.find(',', start);
    if (comma == std::string::npos) comma = inner.size();
    const std::string pair = inner.substr(start, comma - start);
    const size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) {
      *base = PromName(name);
      return;
    }
    if (rendered.size() > 1) rendered += ",";
    rendered += PromName(pair.substr(0, eq)) + "=\"" + pair.substr(eq + 1) + "\"";
    start = comma + 1;
    if (comma == inner.size()) break;
  }
  *base = PromName(name.substr(0, brace));
  *labels = rendered + "}";
}

// Merges an `le` bucket label into an already-rendered label suffix:
// "" + 0.001 -> {le="0.001"}, {kind="x"} + 0.001 -> {kind="x",le="0.001"}.
std::string WithLe(const std::string& labels, const std::string& le) {
  if (labels.empty()) return "{le=\"" + le + "\"}";
  return labels.substr(0, labels.size() - 1) + ",le=\"" + le + "\"}";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void Histogram::Observe(double seconds) {
  if (seconds < 0) seconds = 0;
  const uint64_t nanos = static_cast<uint64_t>(seconds * 1e9);
  const uint64_t micros = nanos / 1000;
  // Smallest i with micros <= 2^i; values above the last finite bound land
  // in the +Inf bucket.
  size_t bucket = micros <= 1 ? 0 : std::bit_width(micros - 1);
  if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
}

double Histogram::BucketUpperBound(size_t i) {
  if (i >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return static_cast<double>(uint64_t{1} << i) * 1e-6;
}

double Histogram::Quantile(double q) const {
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    const uint64_t prev = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    const double lower = i == 0 ? 0 : BucketUpperBound(i - 1);
    double upper = BucketUpperBound(i);
    if (std::isinf(upper)) return BucketUpperBound(i - 1);
    const double fraction =
        (rank - static_cast<double>(prev)) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * fraction;
  }
  return BucketUpperBound(kNumBuckets - 2);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: metric pointers cached at call sites must outlive
  // every static destructor.
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

MetricsRegistry::Shard& MetricsRegistry::ShardOf(const std::string& name) {
  return shards_[std::hash<std::string>()(name) % kNumShards];
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  Shard& shard = ShardOf(name);
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.counters.find(name);
    if (it != shard.counters.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto [it, inserted] = shard.counters.try_emplace(name);
  if (inserted) it->second = std::make_unique<Counter>();
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  Shard& shard = ShardOf(name);
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.gauges.find(name);
    if (it != shard.gauges.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto [it, inserted] = shard.gauges.try_emplace(name);
  if (inserted) it->second = std::make_unique<Gauge>();
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  Shard& shard = ShardOf(name);
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.histograms.find(name);
    if (it != shard.histograms.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto [it, inserted] = shard.histograms.try_emplace(name);
  if (inserted) it->second = std::make_unique<Histogram>();
  return it->second.get();
}

std::string MetricsRegistry::RenderText() const {
  // Collect a sorted snapshot so the exposition is deterministic for a
  // given set of values (tests pin the format).
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, const Histogram*> histograms;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [name, c] : shard.counters) counters[name] = c->Value();
    for (const auto& [name, g] : shard.gauges) gauges[name] = g->Value();
    for (const auto& [name, h] : shard.histograms) histograms[name] = h.get();
  }
  std::ostringstream out;
  std::string prev_family;
  for (const auto& [name, value] : counters) {
    std::string base, labels;
    SplitPromName(name, &base, &labels);
    // Labeled series of one family share a single TYPE header; the sorted
    // snapshot keeps them adjacent.
    if (base != prev_family) {
      out << "# TYPE " << base << " counter\n";
      prev_family = base;
    }
    out << base << labels << " " << value << "\n";
  }
  prev_family.clear();
  for (const auto& [name, value] : gauges) {
    std::string base, labels;
    SplitPromName(name, &base, &labels);
    if (base != prev_family) {
      out << "# TYPE " << base << " gauge\n";
      prev_family = base;
    }
    out << base << labels << " " << value << "\n";
  }
  prev_family.clear();
  for (const auto& [name, h] : histograms) {
    std::string base, labels;
    SplitPromName(name, &base, &labels);
    if (base != prev_family) {
      out << "# TYPE " << base << " histogram\n";
      prev_family = base;
    }
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      const uint64_t bucket = h->BucketCount(i);
      cumulative += bucket;
      // Elide empty leading/intermediate buckets except the mandatory +Inf;
      // cumulative counts stay correct because `le` buckets are cumulative.
      if (bucket == 0 && i + 1 < Histogram::kNumBuckets) continue;
      out << base << "_bucket"
          << WithLe(labels, FmtSeconds(Histogram::BucketUpperBound(i))) << " "
          << cumulative << "\n";
    }
    char sum_buf[64];
    std::snprintf(sum_buf, sizeof(sum_buf), "%.9f", h->Sum());
    out << base << "_sum" << labels << " " << sum_buf << "\n";
    out << base << "_count" << labels << " " << h->Count() << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::RenderJson() const {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, const Histogram*> histograms;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [name, c] : shard.counters) counters[name] = c->Value();
    for (const auto& [name, g] : shard.gauges) gauges[name] = g->Value();
    for (const auto& [name, h] : shard.histograms) histograms[name] = h.get();
  }
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\": %llu, \"sum\": %.9f, \"p50\": %.9f, "
                  "\"p95\": %.9f, \"p99\": %.9f}",
                  static_cast<unsigned long long>(h->Count()), h->Sum(), h->P50(),
                  h->P95(), h->P99());
    out << (first ? "\n" : ",\n") << "    \"" << JsonEscape(name) << "\": " << buf;
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

void MetricsRegistry::ResetValues() {
  for (Shard& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    for (auto& [name, c] : shard.counters) c->Reset();
    for (auto& [name, g] : shard.gauges) g->Reset();
    for (auto& [name, h] : shard.histograms) h->Reset();
  }
}

}  // namespace tigervector::obs

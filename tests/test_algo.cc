#include <gtest/gtest.h>

#include <map>

#include "algo/louvain.h"
#include "algo/traversal.h"
#include "core/database.h"
#include "workload/snb.h"

namespace tigervector {
namespace {

class AlgoFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    ASSERT_TRUE(db_->schema()->CreateVertexType("Node", {{"x", AttrType::kInt}}).ok());
    ASSERT_TRUE(
        db_->schema()->CreateEdgeType("link", "Node", "Node", /*directed=*/false)
            .ok());
  }

  VertexId Add(int64_t x) {
    Transaction txn = db_->Begin();
    auto vid = txn.InsertVertex("Node", {x});
    EXPECT_TRUE(vid.ok());
    EXPECT_TRUE(txn.Commit().ok());
    return *vid;
  }

  void Link(VertexId a, VertexId b) {
    Transaction txn = db_->Begin();
    ASSERT_TRUE(txn.InsertEdge("link", a, b).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }

  std::unique_ptr<Database> db_;
};

TEST_F(AlgoFixture, KHopNeighborhoodGrowsWithDepth) {
  // Chain: 0-1-2-3-4
  std::vector<VertexId> v;
  for (int i = 0; i < 5; ++i) v.push_back(Add(i));
  for (int i = 0; i + 1 < 5; ++i) Link(v[i], v[i + 1]);
  const Tid tid = db_->store()->visible_tid();
  auto h1 = KHopNeighborhood(*db_->store(), {v[0]}, "link", Direction::kAny, 1, tid);
  auto h2 = KHopNeighborhood(*db_->store(), {v[0]}, "link", Direction::kAny, 2, tid);
  auto h4 = KHopNeighborhood(*db_->store(), {v[0]}, "link", Direction::kAny, 4, tid);
  EXPECT_EQ(h1.size(), 2u);  // {0,1}
  EXPECT_EQ(h2.size(), 3u);
  EXPECT_EQ(h4.size(), 5u);
}

TEST_F(AlgoFixture, ExpandPatternFollowsHops) {
  // star: center connected to 3 leaves
  VertexId center = Add(0);
  VertexSet leaves;
  for (int i = 1; i <= 3; ++i) {
    VertexId leaf = Add(i);
    Link(center, leaf);
    leaves.insert(leaf);
  }
  const Tid tid = db_->store()->visible_tid();
  auto out = ExpandPattern(*db_->store(), {center},
                           {{"link", Direction::kAny, "Node"}}, tid);
  EXPECT_EQ(out, leaves);
  // Two hops from a leaf: back to leaves (through center).
  auto two = ExpandPattern(*db_->store(), {*leaves.begin()},
                           {{"link", Direction::kAny, ""},
                            {"link", Direction::kAny, ""}},
                           tid);
  EXPECT_EQ(two.size(), 3u);  // all leaves reachable via center
}

TEST_F(AlgoFixture, ExpandPatternUnknownEdgeTypeEmpty) {
  VertexId a = Add(0);
  auto out = ExpandPattern(*db_->store(), {a}, {{"nope", Direction::kAny, ""}},
                           db_->store()->visible_tid());
  EXPECT_TRUE(out.empty());
}

TEST_F(AlgoFixture, VertexSetToBitmapRoundTrip) {
  VertexSet set = {1, 5, 9};
  Bitmap bm = VertexSetToBitmap(set, 10);
  EXPECT_EQ(bm.Count(), 3u);
  EXPECT_TRUE(bm.Test(5));
  EXPECT_FALSE(bm.Test(2));
  // Out-of-bound ids are dropped.
  Bitmap bm2 = VertexSetToBitmap({3, 100}, 10);
  EXPECT_EQ(bm2.Count(), 1u);
}

TEST_F(AlgoFixture, CollectVerticesOfType) {
  for (int i = 0; i < 7; ++i) Add(i);
  auto all = CollectVerticesOfType(*db_->store(), "Node",
                                   db_->store()->visible_tid());
  EXPECT_EQ(all.size(), 7u);
  EXPECT_TRUE(
      CollectVerticesOfType(*db_->store(), "Nope", db_->store()->visible_tid())
          .empty());
}

TEST_F(AlgoFixture, LouvainFindsPlantedCommunities) {
  // Two dense cliques joined by a single bridge edge.
  std::vector<VertexId> a, b;
  for (int i = 0; i < 8; ++i) a.push_back(Add(i));
  for (int i = 0; i < 8; ++i) b.push_back(Add(100 + i));
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = i + 1; j < a.size(); ++j) {
      Link(a[i], a[j]);
      Link(b[i], b[j]);
    }
  }
  Link(a[0], b[0]);  // bridge
  auto result = RunLouvain(*db_->store(), "Node", "link");
  EXPECT_GE(result.num_communities, 2);
  // All of clique A in one community, all of clique B in another.
  const int ca = result.community[a[0]];
  const int cb = result.community[b[0]];
  EXPECT_NE(ca, cb);
  for (VertexId v : a) EXPECT_EQ(result.community[v], ca);
  for (VertexId v : b) EXPECT_EQ(result.community[v], cb);
  EXPECT_GT(result.modularity, 0.3);
}

TEST_F(AlgoFixture, LouvainSingletonGraph) {
  Add(1);
  auto result = RunLouvain(*db_->store(), "Node", "link");
  EXPECT_EQ(result.num_communities, 1);
}

TEST(AlgoSnbTest, LouvainRecoversSnbCommunityStructure) {
  Database db;
  SnbConfig config;
  config.num_persons = 200;
  config.communities = 4;
  config.posts_per_person = 1;
  config.comments_per_post = 0;
  config.embedding_dim = 8;
  ASSERT_TRUE(CreateSnbSchema(&db, config).ok());
  SnbStats stats;
  ASSERT_TRUE(LoadSnb(&db, config, &stats).ok());
  auto result = RunLouvain(*db.store(), "Person", "knows");
  // The generator plants 4 community blocks with 90% intra-community
  // edges; Louvain should find a clearly modular partition.
  EXPECT_GE(result.num_communities, 3);
  EXPECT_LE(result.num_communities, 12);
  EXPECT_GT(result.modularity, 0.4);
}

}  // namespace
}  // namespace tigervector

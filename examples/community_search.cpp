// Figure 6 / query Q4 demo: Louvain community detection over the Person
// knows-graph, then a per-community top-k vector search on Posts — the
// paper's showcase for combining graph analytics with vector search.
#include <cstdio>

#include "algo/louvain.h"
#include "query/session.h"
#include "workload/snb.h"

using namespace tigervector;

int main() {
  Database db;
  GsqlSession session(&db);

  SnbConfig config;
  config.num_persons = 300;
  config.communities = 6;
  config.posts_per_person = 3;
  config.comments_per_post = 0;
  config.embedding_dim = 16;
  if (!CreateSnbSchema(&db, config).ok()) return 1;
  SnbStats stats;
  if (!LoadSnb(&db, config, &stats).ok()) return 1;

  // Q4 step 1: tg_louvain analog — detect communities and write the
  // community id into Person.cid.
  LouvainResult louvain = RunLouvain(*db.store(), "Person", "knows");
  std::printf("louvain: %d communities, modularity %.3f\n", louvain.num_communities,
              louvain.modularity);
  {
    Transaction txn = db.Begin();
    for (const auto& [vid, cid] : louvain.community) {
      if (!txn.SetAttr(vid, "Person", "cid", int64_t{cid}).ok()) return 1;
    }
    if (!txn.Commit().ok()) return 1;
  }

  // Q4 step 2: FOREACH community, select its posts and run a top-2 search.
  QueryParams params;
  params["topic_emb"] = std::vector<float>(16, 100.0f);
  const Tid tid = db.store()->visible_tid();
  for (int cid = 0; cid < louvain.num_communities; ++cid) {
    QueryParams p = params;
    p["cid"] = int64_t{cid};
    auto result = session.Run(
        "CommunityPosts = SELECT t FROM (s:Person) <-[:hasCreator]- (t:Post)"
        " WHERE s.cid = $cid;"
        "TopKPosts = VectorSearch({Post.content_emb}, $topic_emb, 2,"
        " {filter: CommunityPosts});"
        "PRINT TopKPosts;",
        p);
    if (!result.ok()) {
      std::fprintf(stderr, "community %d failed: %s\n", cid,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("community %d: top posts =", cid);
    for (VertexId vid : result->prints[0].vertices) {
      auto content = db.store()->GetAttr(vid, "content", tid);
      std::printf(" [%s]",
                  content.ok() ? std::get<std::string>(*content).c_str() : "?");
    }
    std::printf("\n");
  }
  return 0;
}

file(REMOVE_RECURSE
  "libtv_simd.a"
)

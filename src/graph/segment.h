#ifndef TIGERVECTOR_GRAPH_SEGMENT_H_
#define TIGERVECTOR_GRAPH_SEGMENT_H_

#include <atomic>
#include <functional>
#include <shared_mutex>
#include <vector>

#include "graph/mutation.h"
#include "graph/types.h"
#include "util/status.h"

namespace tigervector {

// A vertex segment: the unit of storage, parallelism, and (in the paper)
// distribution. Holds a fixed-capacity slab of vertex records, outgoing and
// incoming adjacency (outgoing edges live in the source vertex's segment,
// paper Sec. 2.1), and an MVCC attribute-delta list that a vacuum folds
// into the record snapshot.
class GraphSegment {
 public:
  GraphSegment(SegmentId id, VertexId base_vid, uint32_t capacity);

  GraphSegment(const GraphSegment&) = delete;
  GraphSegment& operator=(const GraphSegment&) = delete;

  struct EdgeRec {
    EdgeTypeId etype;
    VertexId peer;
    Tid created_tid;
    Tid deleted_tid;  // kMaxTid while alive
  };

  // --- Committed-write application (called under the engine commit lock,
  // with `tid` already assigned). ---
  Status ApplyInsertVertex(VertexId vid, VertexTypeId vtype, std::vector<Value> attrs,
                           Tid tid);
  Status ApplySetAttr(VertexId vid, uint16_t attr_idx, Value value, Tid tid);
  Status ApplyDeleteVertex(VertexId vid, Tid tid);
  // Adds an adjacency entry on this (source-side) segment. `out` selects
  // the outgoing vs incoming list.
  Status ApplyAddEdge(VertexId src_vid, EdgeTypeId etype, VertexId peer, bool out,
                      Tid tid);
  Status ApplyDeleteEdge(VertexId src_vid, EdgeTypeId etype, VertexId peer, bool out,
                         Tid tid);

  // --- Reads (take a shared lock; safe concurrently with commits). ---
  bool IsVisible(VertexId vid, Tid read_tid) const;
  // Vertex type, or -1 if the slot was never filled.
  int VertexType(VertexId vid) const;
  Status GetAttr(VertexId vid, uint16_t attr_idx, Tid read_tid, Value* out) const;

  // Invokes fn(peer_vid) for each visible edge of `etype` in direction
  // `out` from `vid`.
  void ForEachEdge(VertexId vid, EdgeTypeId etype, bool out, Tid read_tid,
                   const std::function<void(VertexId)>& fn) const;

  // Invokes fn(vid) for every visible vertex of `vtype` (or all types when
  // vtype < 0).
  void ForEachVertex(int vtype, Tid read_tid, const std::function<void(VertexId)>& fn) const;

  // Folds attribute deltas with tid <= up_to_tid into the record snapshot
  // and drops them; also physically removes edges whose deletion is at or
  // below up_to_tid. Returns the number of deltas applied.
  size_t Vacuum(Tid up_to_tid);

  size_t pending_attr_deltas() const;

  // --- MVCC visibility version (cache invalidation key) ---
  // Monotone counter bumped by every committed mutation applied to this
  // segment and by every vacuum fold. Cached artifacts derived from this
  // segment's contents (predicate bitmaps) embed the version in their key,
  // so any change makes stale entries unreachable without invalidation
  // walks.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }
  // Highest transaction id applied to this segment. A reader whose
  // read_tid is below this value must not share version-keyed cache
  // entries with readers at the latest horizon.
  Tid last_applied_tid() const {
    return last_applied_tid_.load(std::memory_order_acquire);
  }

  SegmentId id() const { return id_; }
  VertexId base_vid() const { return base_vid_; }
  uint32_t capacity() const { return capacity_; }
  // Number of slots ever filled (monotone; includes deleted vertices).
  uint32_t used_slots() const;

 private:
  struct VertexRecord {
    VertexTypeId type = 0;
    bool exists = false;
    Tid created_tid = kMaxTid;
    Tid deleted_tid = kMaxTid;
    std::vector<Value> attrs;
  };

  struct AttrDelta {
    Tid tid;
    uint32_t offset;
    uint16_t attr_idx;
    Value value;
  };

  // Called (under the write lock) after a successful mutation or vacuum.
  // The horizon is raised BEFORE the version: cache readers capture
  // version() first and then gate on last_applied_tid() <= read_tid, so a
  // version observed by a reader must never be newer than the horizon it
  // checks next. The reverse order would let a reader pinned below this
  // mutation's tid pair the old horizon with the new version and admit a
  // stale bitmap under the new version's key.
  void BumpVersion(Tid tid) {
    Tid prev = last_applied_tid_.load(std::memory_order_relaxed);
    while (tid > prev && !last_applied_tid_.compare_exchange_weak(
                             prev, tid, std::memory_order_acq_rel)) {
    }
    version_.fetch_add(1, std::memory_order_acq_rel);
  }

  uint32_t OffsetOf(VertexId vid) const { return static_cast<uint32_t>(vid - base_vid_); }
  bool InRange(VertexId vid) const {
    return vid >= base_vid_ && vid < base_vid_ + capacity_;
  }

  SegmentId id_;
  VertexId base_vid_;
  uint32_t capacity_;
  std::vector<VertexRecord> records_;
  std::vector<AttrDelta> attr_deltas_;
  std::vector<std::vector<EdgeRec>> out_edges_;
  std::vector<std::vector<EdgeRec>> in_edges_;
  uint32_t used_slots_ = 0;
  std::atomic<uint64_t> version_{0};
  std::atomic<Tid> last_applied_tid_{0};
  mutable std::shared_mutex mu_;
};

}  // namespace tigervector

#endif  // TIGERVECTOR_GRAPH_SEGMENT_H_

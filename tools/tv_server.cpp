// TigerVector network server: serves GSQL over the TVWP wire protocol.
//
//   $ tv_server --port=7431 --init=schema.gsql
//   listening on 127.0.0.1:7431
//
// Flags:
//   --port=N              TCP port (0 = ephemeral; the actual port is printed)
//   --max-connections=N   connection cap (beyond it: RETRY_LATER + close)
//   --max-inflight=N      concurrent query slots (beyond it: RETRY_LATER)
//   --default-deadline-ms=N  deadline for requests that ship none (0 = none)
//   --max-deadline-ms=N   clamp on client-requested deadlines (0 = no clamp)
//   --io-timeout-ms=N     per-socket send/recv timeout
//   --init=FILE           run a GSQL script (schema / load) before serving
//   --fault=SITE:KIND:N   arm a fault (KIND: fail_write|torn_write|stall),
//                         e.g. --fault=net.server.send:torn_write:16
//
// SIGINT/SIGTERM stop the server cleanly: in-flight requests are cancelled
// (their clients see a typed error), threads joined, then exit.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "query/session.h"
#include "server/tv_server.h"
#include "util/io.h"

using namespace tigervector;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

bool ArmFault(const std::string& spec_str) {
  // SITE:KIND:N
  const size_t c1 = spec_str.find(':');
  const size_t c2 = spec_str.rfind(':');
  if (c1 == std::string::npos || c2 == c1) return false;
  const std::string site = spec_str.substr(0, c1);
  const std::string kind = spec_str.substr(c1 + 1, c2 - c1 - 1);
  io::FaultSpec spec;
  spec.after_bytes = std::strtoull(spec_str.c_str() + c2 + 1, nullptr, 10);
  if (kind == "fail_write") {
    spec.kind = io::FaultKind::kFailWrite;
  } else if (kind == "torn_write") {
    spec.kind = io::FaultKind::kTornWrite;
  } else if (kind == "stall") {
    spec.kind = io::FaultKind::kStall;
  } else {
    return false;
  }
  io::FaultInjector::Instance().Arm(site, spec);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  server::ServerOptions options;
  std::string init_file;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--port", &value)) {
      options.port = static_cast<uint16_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--max-connections", &value)) {
      options.max_connections = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--max-inflight", &value)) {
      options.max_inflight = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--default-deadline-ms", &value)) {
      options.default_deadline_micros =
          std::strtoull(value.c_str(), nullptr, 10) * 1000;
    } else if (ParseFlag(argv[i], "--max-deadline-ms", &value)) {
      options.max_deadline_micros =
          std::strtoull(value.c_str(), nullptr, 10) * 1000;
    } else if (ParseFlag(argv[i], "--io-timeout-ms", &value)) {
      options.io_timeout_ms = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--init", &value)) {
      init_file = value;
    } else if (ParseFlag(argv[i], "--fault", &value)) {
      options.fault_site = value.substr(0, value.find(':'));
      if (!ArmFault(value)) {
        std::fprintf(stderr, "bad --fault spec '%s' (want SITE:KIND:N)\n",
                     value.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  Database db;
  if (!init_file.empty()) {
    std::ifstream in(init_file);
    if (!in) {
      std::fprintf(stderr, "cannot open init script %s\n", init_file.c_str());
      return 1;
    }
    std::ostringstream script;
    script << in.rdbuf();
    GsqlSession session(&db);
    auto result = session.Run(script.str());
    if (!result.ok()) {
      std::fprintf(stderr, "init script failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "init script %s ok\n", init_file.c_str());
  }

  server::TvServer server(&db, options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  // The smoke harness greps this exact line for the bound port.
  std::printf("listening on 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "shutting down\n");
  server.Stop();
  return 0;
}

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "util/bitmap.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/topk_heap.h"

namespace tigervector {
namespace {

// ---------------- Status / Result ----------------

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("thing x");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "thing x");
  EXPECT_EQ(st.ToString(), "NotFound: thing x");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes;
  codes.insert(Status::InvalidArgument("").code());
  codes.insert(Status::NotFound("").code());
  codes.insert(Status::AlreadyExists("").code());
  codes.insert(Status::OutOfRange("").code());
  codes.insert(Status::Unimplemented("").code());
  codes.insert(Status::Internal("").code());
  codes.insert(Status::Aborted("").code());
  codes.insert(Status::Incompatible("").code());
  codes.insert(Status::IOError("").code());
  codes.insert(Status::ParseError("").code());
  codes.insert(Status::SemanticError("").code());
  EXPECT_EQ(codes.size(), 11u);
}

Status FailsAtStep(int step, int fail_at) {
  for (int i = 0; i < step; ++i) {
    TV_RETURN_NOT_OK(i == fail_at ? Status::Internal("boom") : Status::OK());
  }
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(FailsAtStep(3, 5).ok());
  EXPECT_FALSE(FailsAtStep(3, 1).ok());
  EXPECT_EQ(FailsAtStep(3, 1).code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// ---------------- Bitmap ----------------

TEST(BitmapTest, SetTestClear) {
  Bitmap bm(130);
  EXPECT_FALSE(bm.Test(0));
  bm.Set(0);
  bm.Set(64);
  bm.Set(129);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(129));
  EXPECT_FALSE(bm.Test(1));
  EXPECT_EQ(bm.Count(), 3u);
  bm.Clear(64);
  EXPECT_FALSE(bm.Test(64));
  EXPECT_EQ(bm.Count(), 2u);
}

TEST(BitmapTest, TestOutOfRangeIsFalse) {
  Bitmap bm(10);
  bm.Set(9);
  EXPECT_FALSE(bm.Test(10));
  EXPECT_FALSE(bm.Test(1000));
}

TEST(BitmapTest, InitialAllSetRespectsTailBits) {
  Bitmap bm(70, /*initial=*/true);
  EXPECT_EQ(bm.Count(), 70u);
  EXPECT_TRUE(bm.Test(69));
  EXPECT_FALSE(bm.Test(70));
}

TEST(BitmapTest, AndOr) {
  Bitmap a(100), b(100);
  a.Set(1);
  a.Set(50);
  b.Set(50);
  b.Set(99);
  Bitmap both = a;
  both.And(b);
  EXPECT_EQ(both.Count(), 1u);
  EXPECT_TRUE(both.Test(50));
  Bitmap either = a;
  either.Or(b);
  EXPECT_EQ(either.Count(), 3u);
}

TEST(BitmapTest, CountRange) {
  Bitmap bm(256);
  for (size_t i = 0; i < 256; i += 3) bm.Set(i);
  // Verify against a straightforward loop.
  auto naive = [&](size_t begin, size_t end) {
    size_t c = 0;
    for (size_t i = begin; i < end && i < 256; ++i) {
      if (bm.Test(i)) ++c;
    }
    return c;
  };
  for (auto [b, e] : std::vector<std::pair<size_t, size_t>>{
           {0, 256}, {1, 255}, {63, 65}, {64, 128}, {100, 100}, {200, 300}}) {
    EXPECT_EQ(bm.CountRange(b, e), naive(b, e)) << b << ".." << e;
  }
}

TEST(BitmapTest, FilterViewAcceptAll) {
  FilterView fv;
  EXPECT_TRUE(fv.accepts_all());
  EXPECT_TRUE(fv.Accepts(0));
  EXPECT_TRUE(fv.Accepts(12345678));
}

TEST(BitmapTest, FilterViewWrapsBitmap) {
  Bitmap bm(10);
  bm.Set(3);
  FilterView fv(&bm);
  EXPECT_FALSE(fv.accepts_all());
  EXPECT_TRUE(fv.Accepts(3));
  EXPECT_FALSE(fv.Accepts(4));
  EXPECT_FALSE(fv.Accepts(100));  // beyond bitmap -> invalid
}

TEST(BitmapTest, FilterViewWrapsPredicate) {
  auto even = [](const void*, uint64_t id) { return id % 2 == 0; };
  FilterView fv(+even, nullptr);
  EXPECT_TRUE(fv.Accepts(4));
  EXPECT_FALSE(fv.Accepts(5));
}

// ---------------- TopKHeap ----------------

TEST(TopKHeapTest, KeepsKSmallest) {
  TopKHeap<uint64_t> heap(3);
  for (int i = 10; i >= 1; --i) heap.Push(static_cast<float>(i), i);
  auto sorted = heap.TakeSorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].id, 1u);
  EXPECT_EQ(sorted[1].id, 2u);
  EXPECT_EQ(sorted[2].id, 3u);
}

TEST(TopKHeapTest, MatchesSortOnRandomInput) {
  Rng rng(7);
  std::vector<std::pair<float, uint64_t>> items;
  for (uint64_t i = 0; i < 500; ++i) items.push_back({rng.NextFloat(), i});
  TopKHeap<uint64_t> heap(25);
  for (const auto& [d, id] : items) heap.Push(d, id);
  auto got = heap.TakeSorted();
  std::sort(items.begin(), items.end());
  ASSERT_EQ(got.size(), 25u);
  for (size_t i = 0; i < 25; ++i) {
    EXPECT_FLOAT_EQ(got[i].distance, items[i].first);
    EXPECT_EQ(got[i].id, items[i].second);
  }
}

TEST(TopKHeapTest, ZeroCapacity) {
  TopKHeap<uint64_t> heap(0);
  heap.Push(1.0f, 1);
  EXPECT_EQ(heap.TakeSorted().size(), 0u);
}

TEST(TopKHeapTest, WouldReject) {
  TopKHeap<uint64_t> heap(2);
  heap.Push(1.0f, 1);
  EXPECT_FALSE(heap.WouldReject(100.0f));  // not full yet
  heap.Push(2.0f, 2);
  EXPECT_TRUE(heap.WouldReject(2.5f));
  EXPECT_FALSE(heap.WouldReject(1.5f));
}

TEST(TopKHeapTest, WouldRejectIsStrictOnTies) {
  // Regression: WouldReject used to reject candidates equal to the current
  // worst distance, but Push admits such a candidate when its id wins the
  // tie-break — so callers pre-filtering with WouldReject silently dropped
  // results Push would have kept.
  TopKHeap<uint64_t> heap(2);
  heap.Push(1.0f, 10);
  heap.Push(2.0f, 20);
  ASSERT_TRUE(heap.full());
  EXPECT_FALSE(heap.WouldReject(2.0f));  // a tie may still enter via id
  heap.Push(2.0f, 5);                    // smaller id: displaces (2.0, 20)
  auto got = heap.TakeSorted();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1].id, 5u);
}

TEST(TopKHeapTest, PrefilterMatchesDirectPushOnDuplicateDistances) {
  // A candidate stream heavy with duplicated distances must produce the
  // same top-k whether or not the caller pre-filters with WouldReject.
  Rng rng(21);
  std::vector<std::pair<float, uint64_t>> items;
  for (uint64_t i = 0; i < 400; ++i) {
    items.push_back({static_cast<float>(rng.NextBounded(8)), i});
  }
  TopKHeap<uint64_t> direct(10), filtered(10);
  for (const auto& [d, id] : items) direct.Push(d, id);
  for (const auto& [d, id] : items) {
    if (!filtered.WouldReject(d)) filtered.Push(d, id);
  }
  auto a = direct.TakeSorted();
  auto b = filtered.TakeSorted();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a[i].distance, b[i].distance);
    EXPECT_EQ(a[i].id, b[i].id);
  }
}

TEST(TopKHeapTest, TieBreaksOnIdDeterministically) {
  TopKHeap<uint64_t> heap_a(2), heap_b(2);
  heap_a.Push(1.0f, 5);
  heap_a.Push(1.0f, 3);
  heap_a.Push(1.0f, 9);
  heap_b.Push(1.0f, 9);
  heap_b.Push(1.0f, 5);
  heap_b.Push(1.0f, 3);
  auto a = heap_a.TakeSorted();
  auto b = heap_b.TakeSorted();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
}

// ---------------- Rng ----------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, FloatInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const float f = rng.NextFloat();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(RngTest, BoundedRespectsBound) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(8);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

// ---------------- ThreadPool ----------------

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroItems) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, SubmitAndWaitIdle) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, NestedParallelForFromSubmitDoesNotDeadlockWithEnoughThreads) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  // A coarse work item summing in parallel on the same pool could deadlock
  // in naive designs; here inner work runs inline in the waiting thread's
  // ParallelFor wait via other workers.
  pool.Submit([&] { total.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(total.load(), 1);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> ran{0};
  pool.ParallelFor(10, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPoolTest, ParallelForStress) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<long> sum{0};
    pool.ParallelFor(257, [&](size_t i) { sum.fetch_add(static_cast<long>(i)); });
    EXPECT_EQ(sum.load(), 257L * 256 / 2);
  }
}

// ---------------- Timer & Logging ----------------

TEST(TimerTest, ElapsedIncreases) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  (void)x;
  EXPECT_GT(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds() * 1000 * 0.99);
}

TEST(LoggingTest, LevelFiltering) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  TV_LOG(Debug) << "suppressed";
  SetLogLevel(prev);
}

}  // namespace
}  // namespace tigervector

#include "query/parser.h"

#include "query/lexer.h"

namespace tigervector {

namespace {

// Like TV_RETURN_NOT_OK, but usable in functions returning Result<T>: the
// error Status converts implicitly into the Result.
#define TV_RETURN_NOT_OK_STMT(expr)      \
  do {                                   \
    ::tigervector::Status _st = (expr);  \
    if (!_st.ok()) return _st;           \
  } while (false)

// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<Statement>> Parse() {
    std::vector<Statement> out;
    while (!AtEnd()) {
      if (Peek().kind == TokenKind::kSemicolon) {
        Advance();
        continue;
      }
      auto stmt = ParseStatement();
      if (!stmt.ok()) return stmt.status();
      out.push_back(std::move(stmt).value());
    }
    return out;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(Peek().line) +
                              ", column " + std::to_string(Peek().column));
  }

  bool Match(TokenKind kind) {
    if (Peek().kind != kind) return false;
    Advance();
    return true;
  }
  bool MatchKeyword(const char* kw) {
    if (!IsKeyword(Peek(), kw)) return false;
    Advance();
    return true;
  }
  Status Expect(TokenKind kind, const char* what) {
    if (!Match(kind)) return Error(std::string("expected ") + what);
    return Status::OK();
  }
  Status ExpectKeyword(const char* kw) {
    if (!MatchKeyword(kw)) return Error(std::string("expected ") + kw);
    return Status::OK();
  }
  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().kind != TokenKind::kIdent && Peek().kind != TokenKind::kKeyword) {
      return Error(std::string("expected ") + what);
    }
    return Advance().text;
  }

  Result<Statement> ParseStatement() {
    if (IsKeyword(Peek(), "CREATE")) return ParseCreate();
    if (IsKeyword(Peek(), "ALTER")) return ParseAlter();
    if (IsKeyword(Peek(), "PRINT")) return ParsePrint();
    if (IsKeyword(Peek(), "SELECT")) {
      auto s = ParseSelect("");
      if (!s.ok()) return s.status();
      return Statement(std::move(s).value());
    }
    if (IsKeyword(Peek(), "VECTORSEARCH")) {
      auto s = ParseVectorSearch("");
      if (!s.ok()) return s.status();
      return Statement(std::move(s).value());
    }
    // Assignment: Var = SELECT ... | Var = VectorSearch(...)
    if (Peek().kind == TokenKind::kIdent && Peek(1).kind == TokenKind::kAssign) {
      std::string var = Advance().text;
      Advance();  // '='
      if (IsKeyword(Peek(), "SELECT")) {
        auto s = ParseSelect(var);
        if (!s.ok()) return s.status();
        return Statement(std::move(s).value());
      }
      if (IsKeyword(Peek(), "VECTORSEARCH")) {
        auto s = ParseVectorSearch(var);
        if (!s.ok()) return s.status();
        return Statement(std::move(s).value());
      }
      // Vertex-set algebra: Out = A UNION|INTERSECT|MINUS B;
      if (Peek().kind == TokenKind::kIdent &&
          (IsKeyword(Peek(1), "UNION") || IsKeyword(Peek(1), "INTERSECT") ||
           IsKeyword(Peek(1), "MINUS"))) {
        SetOpStmt stmt;
        stmt.out_var = std::move(var);
        stmt.lhs = Advance().text;
        if (MatchKeyword("UNION")) {
          stmt.op = SetOpStmt::Op::kUnion;
        } else if (MatchKeyword("INTERSECT")) {
          stmt.op = SetOpStmt::Op::kIntersect;
        } else {
          Advance();  // MINUS
          stmt.op = SetOpStmt::Op::kMinus;
        }
        auto rhs = ExpectIdent("vertex set variable");
        if (!rhs.ok()) return rhs.status();
        stmt.rhs = std::move(rhs).value();
        return Statement(std::move(stmt));
      }
      return Error("expected SELECT, VectorSearch or a set expression after '='");
    }
    return Error("unexpected token '" + Peek().text + "'");
  }

  Result<Statement> ParseCreate() {
    Advance();  // CREATE
    if (MatchKeyword("VERTEX")) return ParseCreateVertex();
    bool directed = true;
    bool has_dir = false;
    if (MatchKeyword("DIRECTED")) {
      has_dir = true;
    } else if (MatchKeyword("UNDIRECTED")) {
      directed = false;
      has_dir = true;
    }
    if (MatchKeyword("EDGE")) return ParseCreateEdge(directed);
    if (has_dir) return Error("expected EDGE");
    if (MatchKeyword("LOADING")) return ParseLoadingJob();
    if (MatchKeyword("EMBEDDING")) {
      TV_RETURN_NOT_OK_STMT(ExpectKeyword("SPACE"));
      CreateEmbeddingSpaceStmt stmt;
      auto name = ExpectIdent("embedding space name");
      if (!name.ok()) return name.status();
      stmt.name = std::move(name).value();
      TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kLParen, "'('"));
      TV_RETURN_NOT_OK_STMT(ParseEmbeddingParams(&stmt.info));
      TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kRParen, "')'"));
      return Statement(std::move(stmt));
    }
    return Error("expected VERTEX, EDGE or EMBEDDING SPACE");
  }

  // CREATE LOADING JOB name FOR GRAPH g { LOAD ...; LOAD ...; }
  // (the CREATE and LOADING tokens are already consumed).
  Result<Statement> ParseLoadingJob() {
    TV_RETURN_NOT_OK_STMT(ExpectKeyword("JOB"));
    LoadingJobStmt stmt;
    auto name = ExpectIdent("loading job name");
    if (!name.ok()) return name.status();
    stmt.name = std::move(name).value();
    TV_RETURN_NOT_OK_STMT(ExpectKeyword("FOR"));
    TV_RETURN_NOT_OK_STMT(ExpectKeyword("GRAPH"));
    auto graph = ExpectIdent("graph name");
    if (!graph.ok()) return graph.status();
    stmt.graph = std::move(graph).value();
    TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kLBrace, "'{'"));
    while (!Match(TokenKind::kRBrace)) {
      if (Match(TokenKind::kSemicolon)) continue;
      TV_RETURN_NOT_OK_STMT(ExpectKeyword("LOAD"));
      std::string file;
      if (Peek().kind == TokenKind::kStringLit ||
          Peek().kind == TokenKind::kIdent) {
        file = Advance().text;
      } else {
        return Error("expected file name");
      }
      TV_RETURN_NOT_OK_STMT(ExpectKeyword("TO"));
      if (MatchKeyword("VERTEX")) {
        VertexLoadStep step;
        step.file = std::move(file);
        auto vtype = ExpectIdent("vertex type");
        if (!vtype.ok()) return vtype.status();
        step.vertex_type = std::move(vtype).value();
        TV_RETURN_NOT_OK_STMT(ExpectKeyword("VALUES"));
        TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kLParen, "'('"));
        for (;;) {
          auto col = ExpectIdent("column name");
          if (!col.ok()) return col.status();
          step.columns.push_back(std::move(col).value());
          if (!Match(TokenKind::kComma)) break;
        }
        TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kRParen, "')'"));
        stmt.steps.push_back(std::move(step));
      } else {
        TV_RETURN_NOT_OK_STMT(ExpectKeyword("EMBEDDING"));
        TV_RETURN_NOT_OK_STMT(ExpectKeyword("ATTRIBUTE"));
        EmbeddingLoadStep step;
        step.file = std::move(file);
        auto attr = ExpectIdent("embedding attribute");
        if (!attr.ok()) return attr.status();
        step.attr = std::move(attr).value();
        TV_RETURN_NOT_OK_STMT(ExpectKeyword("ON"));
        TV_RETURN_NOT_OK_STMT(ExpectKeyword("VERTEX"));
        auto vtype = ExpectIdent("vertex type");
        if (!vtype.ok()) return vtype.status();
        step.vertex_type = std::move(vtype).value();
        TV_RETURN_NOT_OK_STMT(ExpectKeyword("VALUES"));
        TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kLParen, "'('"));
        auto id_col = ExpectIdent("id column");
        if (!id_col.ok()) return id_col.status();
        TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kComma, "','"));
        TV_RETURN_NOT_OK_STMT(ExpectKeyword("SPLIT"));
        TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kLParen, "'('"));
        auto vec_col = ExpectIdent("vector column");
        if (!vec_col.ok()) return vec_col.status();
        TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kComma, "','"));
        if (Peek().kind != TokenKind::kStringLit || Peek().text.size() != 1) {
          return Error("expected one-character separator string");
        }
        step.vector_separator = Advance().text[0];
        TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kRParen, "')'"));
        TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kRParen, "')'"));
        stmt.steps.push_back(std::move(step));
      }
      (void)Match(TokenKind::kSemicolon);
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseCreateVertex() {
    CreateVertexStmt stmt;
    auto name = ExpectIdent("vertex type name");
    if (!name.ok()) return name.status();
    stmt.name = std::move(name).value();
    TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kLParen, "'('"));
    for (;;) {
      auto attr_name = ExpectIdent("attribute name");
      if (!attr_name.ok()) return attr_name.status();
      AttrDef def;
      def.name = std::move(attr_name).value();
      if (MatchKeyword("INT") || MatchKeyword("UINT")) {
        def.type = AttrType::kInt;
      } else if (MatchKeyword("FLOAT") || MatchKeyword("DOUBLE")) {
        def.type = AttrType::kDouble;
      } else if (MatchKeyword("STRING")) {
        def.type = AttrType::kString;
      } else if (MatchKeyword("BOOL")) {
        def.type = AttrType::kBool;
      } else {
        return Error("expected attribute type");
      }
      if (MatchKeyword("PRIMARY")) {
        TV_RETURN_NOT_OK_STMT(ExpectKeyword("KEY"));
      }
      stmt.attrs.push_back(std::move(def));
      if (!Match(TokenKind::kComma)) break;
    }
    TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kRParen, "')'"));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseCreateEdge(bool directed) {
    CreateEdgeStmt stmt;
    stmt.directed = directed;
    auto name = ExpectIdent("edge type name");
    if (!name.ok()) return name.status();
    stmt.name = std::move(name).value();
    TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kLParen, "'('"));
    TV_RETURN_NOT_OK_STMT(ExpectKeyword("FROM"));
    auto from = ExpectIdent("source vertex type");
    if (!from.ok()) return from.status();
    stmt.from = std::move(from).value();
    TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kComma, "','"));
    TV_RETURN_NOT_OK_STMT(ExpectKeyword("TO"));
    auto to = ExpectIdent("target vertex type");
    if (!to.ok()) return to.status();
    stmt.to = std::move(to).value();
    TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kRParen, "')'"));
    return Statement(std::move(stmt));
  }

  Status ParseEmbeddingParams(EmbeddingTypeInfo* info) {
    for (;;) {
      if (MatchKeyword("DIMENSION")) {
        TV_RETURN_NOT_OK(Expect(TokenKind::kAssign, "'='"));
        if (Peek().kind != TokenKind::kIntLit) return Error("expected dimension");
        info->dimension = static_cast<size_t>(Advance().int_value);
      } else if (MatchKeyword("MODEL")) {
        TV_RETURN_NOT_OK(Expect(TokenKind::kAssign, "'='"));
        auto model = ExpectIdent("model name");
        if (!model.ok()) return model.status();
        info->model = std::move(model).value();
      } else if (MatchKeyword("INDEX")) {
        TV_RETURN_NOT_OK(Expect(TokenKind::kAssign, "'='"));
        if (MatchKeyword("HNSW")) {
          info->index = VectorIndexType::kHnsw;
        } else if (MatchKeyword("FLAT")) {
          info->index = VectorIndexType::kFlat;
        } else if (MatchKeyword("IVF_FLAT")) {
          info->index = VectorIndexType::kIvfFlat;
        } else {
          return Error("expected HNSW, FLAT or IVF_FLAT");
        }
      } else if (MatchKeyword("DATATYPE")) {
        TV_RETURN_NOT_OK(Expect(TokenKind::kAssign, "'='"));
        if (!MatchKeyword("FLOAT")) return Error("expected FLOAT");
        info->data_type = VectorDataType::kFloat32;
      } else if (MatchKeyword("METRIC")) {
        TV_RETURN_NOT_OK(Expect(TokenKind::kAssign, "'='"));
        if (MatchKeyword("COSINE")) {
          info->metric = Metric::kCosine;
        } else if (MatchKeyword("L2")) {
          info->metric = Metric::kL2;
        } else if (MatchKeyword("IP")) {
          info->metric = Metric::kIp;
        } else {
          return Error("expected COSINE, L2 or IP");
        }
      } else if (MatchKeyword("QUANT")) {
        TV_RETURN_NOT_OK(Expect(TokenKind::kAssign, "'='"));
        if (MatchKeyword("SQ8")) {
          info->quant = QuantOption::kSq8;
        } else if (MatchKeyword("OFF")) {
          info->quant = QuantOption::kOff;
        } else {
          return Error("expected SQ8 or OFF");
        }
      } else {
        return Error("expected embedding parameter");
      }
      if (!Match(TokenKind::kComma)) break;
    }
    return Status::OK();
  }

  Result<Statement> ParseAlter() {
    Advance();  // ALTER
    TV_RETURN_NOT_OK_STMT(ExpectKeyword("VERTEX"));
    AlterAddEmbeddingStmt stmt;
    auto vtype = ExpectIdent("vertex type name");
    if (!vtype.ok()) return vtype.status();
    stmt.vertex_type = std::move(vtype).value();
    TV_RETURN_NOT_OK_STMT(ExpectKeyword("ADD"));
    TV_RETURN_NOT_OK_STMT(ExpectKeyword("EMBEDDING"));
    TV_RETURN_NOT_OK_STMT(ExpectKeyword("ATTRIBUTE"));
    auto attr = ExpectIdent("embedding attribute name");
    if (!attr.ok()) return attr.status();
    stmt.attr = std::move(attr).value();
    if (MatchKeyword("IN")) {
      TV_RETURN_NOT_OK_STMT(ExpectKeyword("EMBEDDING"));
      TV_RETURN_NOT_OK_STMT(ExpectKeyword("SPACE"));
      auto space = ExpectIdent("embedding space name");
      if (!space.ok()) return space.status();
      stmt.in_space = true;
      stmt.space = std::move(space).value();
    } else {
      TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kLParen, "'('"));
      TV_RETURN_NOT_OK_STMT(ParseEmbeddingParams(&stmt.info));
      TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kRParen, "')'"));
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParsePrint() {
    Advance();  // PRINT
    PrintStmt stmt;
    auto name = ExpectIdent("variable name");
    if (!name.ok()) return name.status();
    stmt.name = std::move(name).value();
    return Statement(std::move(stmt));
  }

  Result<SelectStmt> ParseSelect(std::string out_var) {
    Advance();  // SELECT
    SelectStmt stmt;
    stmt.out_var = std::move(out_var);
    auto first = ExpectIdent("select alias");
    if (!first.ok()) return first.status();
    stmt.select_aliases.push_back(std::move(first).value());
    if (Match(TokenKind::kComma)) {
      auto second = ExpectIdent("select alias");
      if (!second.ok()) return second.status();
      stmt.select_aliases.push_back(std::move(second).value());
    }
    TV_RETURN_NOT_OK_STMT(ExpectKeyword("FROM"));
    TV_RETURN_NOT_OK_STMT(ParsePattern(&stmt.pattern));
    if (MatchKeyword("WHERE")) {
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      stmt.where = std::move(expr).value();
    }
    if (MatchKeyword("ORDER")) {
      TV_RETURN_NOT_OK_STMT(ExpectKeyword("BY"));
      if (!MatchKeyword("VECTOR_DIST")) {
        return Error("ORDER BY supports only VECTOR_DIST");
      }
      auto dist = ParseVectorDistCall();
      if (!dist.ok()) return dist.status();
      stmt.order_dist = std::move(dist).value();
    }
    if (MatchKeyword("LIMIT")) {
      stmt.has_limit = true;
      if (Peek().kind == TokenKind::kIntLit) {
        stmt.limit = Advance().int_value;
      } else if (Peek().kind == TokenKind::kParam) {
        stmt.limit_param = Advance().text;
      } else {
        return Error("expected LIMIT count");
      }
    }
    return stmt;
  }

  Status ParsePattern(PathPattern* pattern) {
    TV_RETURN_NOT_OK(ParseNode(pattern));
    while (Peek().kind == TokenKind::kDash || Peek().kind == TokenKind::kArrowLeft) {
      EdgePattern edge;
      if (Match(TokenKind::kDash)) {
        TV_RETURN_NOT_OK(Expect(TokenKind::kLBracket, "'['"));
        TV_RETURN_NOT_OK(Expect(TokenKind::kColon, "':'"));
        auto etype = ExpectIdent("edge type");
        if (!etype.ok()) return etype.status();
        edge.edge_type = std::move(etype).value();
        TV_RETURN_NOT_OK(Expect(TokenKind::kRBracket, "']'"));
        if (Match(TokenKind::kArrowRight)) {
          edge.dir = Direction::kOut;
        } else if (Match(TokenKind::kDash)) {
          edge.dir = Direction::kAny;
        } else {
          return Error("expected '->' or '-' after edge pattern");
        }
      } else {
        Advance();  // '<-'
        TV_RETURN_NOT_OK(Expect(TokenKind::kLBracket, "'['"));
        TV_RETURN_NOT_OK(Expect(TokenKind::kColon, "':'"));
        auto etype = ExpectIdent("edge type");
        if (!etype.ok()) return etype.status();
        edge.edge_type = std::move(etype).value();
        edge.dir = Direction::kIn;
        TV_RETURN_NOT_OK(Expect(TokenKind::kRBracket, "']'"));
        TV_RETURN_NOT_OK(Expect(TokenKind::kDash, "'-'"));
      }
      pattern->edges.push_back(std::move(edge));
      TV_RETURN_NOT_OK(ParseNode(pattern));
    }
    return Status::OK();
  }

  Status ParseNode(PathPattern* pattern) {
    TV_RETURN_NOT_OK(Expect(TokenKind::kLParen, "'('"));
    NodePattern node;
    if (Peek().kind == TokenKind::kIdent) {
      node.alias = Advance().text;
    }
    if (Match(TokenKind::kColon)) {
      auto source = ExpectIdent("vertex type or variable");
      if (!source.ok()) return source.status();
      node.source = std::move(source).value();
    }
    TV_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    pattern->nodes.push_back(std::move(node));
    return Status::OK();
  }

  // --- expressions ---

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    ExprPtr out = std::move(lhs).value();
    while (MatchKeyword("OR")) {
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      out = Expr::MakeBinary(BinaryOp::kOr, std::move(out), std::move(rhs).value());
    }
    return out;
  }

  Result<ExprPtr> ParseAnd() {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    ExprPtr out = std::move(lhs).value();
    while (MatchKeyword("AND")) {
      auto rhs = ParseUnary();
      if (!rhs.ok()) return rhs;
      out = Expr::MakeBinary(BinaryOp::kAnd, std::move(out), std::move(rhs).value());
    }
    return out;
  }

  Result<ExprPtr> ParseUnary() {
    if (MatchKeyword("NOT")) {
      auto child = ParseUnary();
      if (!child.ok()) return child;
      return Expr::MakeNot(std::move(child).value());
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    auto lhs = ParseOperand();
    if (!lhs.ok()) return lhs;
    ExprPtr out = std::move(lhs).value();
    BinaryOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
      case TokenKind::kAssign:  // GSQL allows single '=' in predicates
        op = BinaryOp::kEq;
        break;
      case TokenKind::kNe:
        op = BinaryOp::kNe;
        break;
      case TokenKind::kLt:
        op = BinaryOp::kLt;
        break;
      case TokenKind::kLe:
        op = BinaryOp::kLe;
        break;
      case TokenKind::kGt:
        op = BinaryOp::kGt;
        break;
      case TokenKind::kGe:
        op = BinaryOp::kGe;
        break;
      default:
        return out;  // bare operand (e.g. boolean attribute)
    }
    Advance();
    auto rhs = ParseOperand();
    if (!rhs.ok()) return rhs;
    return Expr::MakeBinary(op, std::move(out), std::move(rhs).value());
  }

  Result<ExprPtr> ParseOperand() {
    if (Match(TokenKind::kLParen)) {
      auto inner = ParseExpr();
      if (!inner.ok()) return inner;
      TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kRParen, "')'"));
      return inner;
    }
    if (MatchKeyword("VECTOR_DIST")) return ParseVectorDistCall();
    if (Peek().kind == TokenKind::kParam) {
      return Expr::MakeParam(Advance().text);
    }
    if (Peek().kind == TokenKind::kIntLit) {
      return Expr::MakeLiteral(Value{Advance().int_value});
    }
    if (Peek().kind == TokenKind::kFloatLit) {
      return Expr::MakeLiteral(Value{Advance().float_value});
    }
    if (Peek().kind == TokenKind::kStringLit) {
      return Expr::MakeLiteral(Value{Advance().text});
    }
    if (Match(TokenKind::kDash)) {
      // Unary minus on a numeric literal.
      if (Peek().kind == TokenKind::kIntLit) {
        return Expr::MakeLiteral(Value{-Advance().int_value});
      }
      if (Peek().kind == TokenKind::kFloatLit) {
        return Expr::MakeLiteral(Value{-Advance().float_value});
      }
      return Error("expected number after '-'");
    }
    if (MatchKeyword("TRUE")) return Expr::MakeLiteral(Value{true});
    if (MatchKeyword("FALSE")) return Expr::MakeLiteral(Value{false});
    if (Peek().kind == TokenKind::kIdent) {
      std::string alias = Advance().text;
      TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kDot, "'.' (attribute reference)"));
      auto attr = ExpectIdent("attribute name");
      if (!attr.ok()) return attr.status();
      return Expr::MakeAttrRef(std::move(alias), std::move(attr).value());
    }
    return Error("expected expression operand");
  }

  // Parses the parenthesized argument list of VECTOR_DIST.
  Result<ExprPtr> ParseVectorDistCall() {
    TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kLParen, "'('"));
    auto a = ParseOperand();
    if (!a.ok()) return a;
    TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kComma, "','"));
    auto b = ParseOperand();
    if (!b.ok()) return b;
    TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kRParen, "')'"));
    return Expr::MakeVectorDist(std::move(a).value(), std::move(b).value());
  }

  Result<VectorSearchStmt> ParseVectorSearch(std::string out_var) {
    Advance();  // VectorSearch
    VectorSearchStmt stmt;
    stmt.out_var = std::move(out_var);
    TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kLParen, "'('"));
    TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kLBrace, "'{'"));
    for (;;) {
      auto type = ExpectIdent("vertex type");
      if (!type.ok()) return type.status();
      TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kDot, "'.'"));
      auto attr = ExpectIdent("embedding attribute");
      if (!attr.ok()) return attr.status();
      stmt.attrs.emplace_back(std::move(type).value(), std::move(attr).value());
      if (!Match(TokenKind::kComma)) break;
    }
    TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kRBrace, "'}'"));
    TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kComma, "','"));
    if (Peek().kind != TokenKind::kParam) {
      return Error("expected $param query vector");
    }
    stmt.query_param = Advance().text;
    TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kComma, "','"));
    if (Peek().kind == TokenKind::kIntLit) {
      stmt.k = Advance().int_value;
    } else if (Peek().kind == TokenKind::kParam) {
      stmt.k_param = Advance().text;
    } else {
      return Error("expected k");
    }
    if (Match(TokenKind::kComma)) {
      TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kLBrace, "'{' (options)"));
      for (;;) {
        auto key = ExpectIdent("option name");
        if (!key.ok()) return key.status();
        TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kColon, "':'"));
        const std::string k = std::move(key).value();
        if (k == "filter") {
          auto var = ExpectIdent("vertex set variable");
          if (!var.ok()) return var.status();
          stmt.filter_var = std::move(var).value();
        } else if (k == "ef") {
          if (Peek().kind != TokenKind::kIntLit) return Error("expected ef value");
          stmt.ef = Advance().int_value;
        } else if (k == "distanceMap") {
          auto var = ExpectIdent("distance map name");
          if (!var.ok()) return var.status();
          stmt.distance_map = std::move(var).value();
        } else {
          return Error("unknown VectorSearch option '" + k + "'");
        }
        if (!Match(TokenKind::kComma)) break;
      }
      TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kRBrace, "'}'"));
    }
    TV_RETURN_NOT_OK_STMT(Expect(TokenKind::kRParen, "')'"));
    return stmt;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<Statement>> ParseScript(const std::string& script) {
  auto tokens = Tokenize(script);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

}  // namespace tigervector

#ifndef TIGERVECTOR_ALGO_LOUVAIN_H_
#define TIGERVECTOR_ALGO_LOUVAIN_H_

#include <unordered_map>
#include <vector>

#include "graph/graph_store.h"

namespace tigervector {

// Louvain community detection (Blondel et al. 2008) over one vertex type
// and one edge type, treating edges as undirected with unit weight. This is
// the tg_louvain analog used by the paper's query Q4 / Figure 6 demo, where
// vector search is run per community.
struct LouvainResult {
  // Community id per vertex (dense ids in [0, num_communities)).
  std::unordered_map<VertexId, int> community;
  int num_communities = 0;
  double modularity = 0.0;
};

struct LouvainOptions {
  int max_passes = 10;        // local-move sweeps per level
  int max_levels = 10;        // coarsening levels
  double min_gain = 1e-7;     // stop when a sweep improves less than this
  uint64_t seed = 7;          // traversal order shuffle
};

LouvainResult RunLouvain(const GraphStore& store, const std::string& vertex_type,
                         const std::string& edge_type,
                         LouvainOptions options = LouvainOptions());

}  // namespace tigervector

#endif  // TIGERVECTOR_ALGO_LOUVAIN_H_

# Empty dependencies file for tv_graph.
# This may be replaced when dependencies are built.

// Ablation (Sec. 4.2 design choice): per-segment indexes vs one global
// index. The same dataset is loaded with different segment capacities
// (from one giant segment down to many small ones) and we report build
// time, recall, and single-thread latency. The paper's design argument:
// segment-granular indexes give elasticity, bounded fault domains, and
// parallel build/search at a modest query-time merge cost.
#include "bench/bench_common.h"
#include "util/timer.h"

using namespace tigervector;
using namespace tigervector::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv);
  const size_t n = BaseN();
  const size_t nq = std::min<size_t>(QueryN(), 30);
  const size_t k = 10;
  VectorDataset dataset = MakeSiftLike(n, nq);
  ComputeGroundTruth(&dataset, k, nullptr);

  PrintHeader("Ablation: segment count sweep (" + std::to_string(n) +
              " vectors, k=" + std::to_string(k) + ", ef=128)");
  PrintRow({"segments", "seg capacity", "build s", "recall", "latency ms"});

  for (size_t num_segments : {1u, 4u, 16u, 64u}) {
    const uint32_t capacity =
        static_cast<uint32_t>((n + num_segments - 1) / num_segments);
    auto instance = LoadTigerVector(dataset, capacity);
    const double recall = MeasureRecall(dataset, instance, k, 128);
    Timer timer;
    for (size_t q = 0; q < nq; ++q) {
      VectorSearchRequest request;
      request.attrs = {{"Item", "emb"}};
      request.query = dataset.QueryVector(q);
      request.k = k;
      request.ef = 128;
      if (!instance.db->embeddings()->TopKSearch(request).ok()) std::abort();
    }
    const double ms = timer.ElapsedMillis() / nq;
    PrintRow({std::to_string(num_segments), std::to_string(capacity),
              Fmt(instance.build_seconds), Fmt(recall, 4), Fmt(ms, 3)});
  }

  // SQ8 quantization A/B (Sec. 3.2 storage/perf trade-off): the same
  // dataset with the embedding attribute pinned to fp32 vs QUANT=SQ8 at a
  // fixed 16-segment layout. SQ8 rows sweep the rerank budget: quantized
  // scans rank on int8 codes and rescore the top rerank_factor*k with exact
  // fp32, so rerank=1 is the cheapest (and lowest-recall) setting and
  // larger budgets buy recall back with more exact rescores.
  PrintHeader("Ablation: SQ8 quantization A/B (" + std::to_string(n) +
              " vectors, 16 segments, k=" + std::to_string(k) + ", ef=128)");
  PrintRow({"quant", "rerank", "build s", "recall", "latency ms", "reranked/q"});
  const uint32_t ab_capacity = static_cast<uint32_t>((n + 15) / 16);
  for (const bool sq8 : {false, true}) {
    auto instance = LoadTigerVector(dataset, ab_capacity, 16, 128,
                                    sq8 ? QuantOption::kSq8 : QuantOption::kOff);
    for (const size_t rerank : sq8 ? std::vector<size_t>{1, 2, 3}
                                   : std::vector<size_t>{0}) {
      RecallMeter meter;
      size_t reranked = 0;
      Timer timer;
      for (size_t q = 0; q < nq; ++q) {
        VectorSearchRequest request;
        request.attrs = {{"Item", "emb"}};
        request.query = dataset.QueryVector(q);
        request.k = k;
        request.ef = 128;
        request.rerank_factor = rerank;
        auto result = instance.db->embeddings()->TopKSearch(request);
        if (!result.ok()) std::abort();
        reranked += result->reranked;
        meter.Add(HitsRecall(dataset, q, result->hits, k));
      }
      const double ms = timer.ElapsedMillis() / nq;
      PrintRow({sq8 ? "sq8" : "off", sq8 ? std::to_string(rerank) + "x" : "-",
                Fmt(instance.build_seconds), Fmt(meter.Mean(), 4), Fmt(ms, 3),
                std::to_string(reranked / nq)});
    }
  }
  return 0;
}

#include "testing/fuzz_harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <unordered_map>

#include "core/database.h"
#include "graph/transaction.h"
#include "query/session.h"
#include "testing/oracle.h"
#include "util/io.h"
#include "util/rng.h"

namespace tigervector {
namespace testing {

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Op tape
// ---------------------------------------------------------------------------

enum class OpKind : uint8_t {
  kInsert = 0,
  kSetEmb,
  kSetAttr,
  kDelEmb,
  kDelVertex,
  kAddEdge,
  kDelEdge,
  kDeltaMerge,
  kIndexMerge,
  kQuery,
  kCrash,
};

const char* OpName(OpKind k) {
  switch (k) {
    case OpKind::kInsert: return "insert";
    case OpKind::kSetEmb: return "set-emb";
    case OpKind::kSetAttr: return "set-attr";
    case OpKind::kDelEmb: return "del-emb";
    case OpKind::kDelVertex: return "del-vertex";
    case OpKind::kAddEdge: return "add-edge";
    case OpKind::kDelEdge: return "del-edge";
    case OpKind::kDeltaMerge: return "delta-merge";
    case OpKind::kIndexMerge: return "index-merge";
    case OpKind::kQuery: return "query";
    case OpKind::kCrash: return "crash";
  }
  return "?";
}

// Each op carries its own sub-seed so skipping an op (during shrinking)
// leaves every other op's behavior byte-identical.
struct FuzzOp {
  OpKind kind;
  uint64_t seed;
};

// Scalar predicate subset the generator emits; evaluated both by the GSQL
// executor (from the rendered text) and by the harness over the golden model.
struct Pred {
  enum class Kind { kNone, kIntLt, kIntGe, kLangEq } kind = Kind::kNone;
  int64_t c = 0;
  std::string lang;

  bool Eval(const GoldenVertex& v) const {
    switch (kind) {
      case Kind::kNone: return true;
      case Kind::kIntLt: {
        auto it = v.attrs.find("a");
        return it != v.attrs.end() && std::get<int64_t>(it->second) < c;
      }
      case Kind::kIntGe: {
        auto it = v.attrs.find("a");
        return it != v.attrs.end() && std::get<int64_t>(it->second) >= c;
      }
      case Kind::kLangEq: {
        auto it = v.attrs.find("lang");
        return it != v.attrs.end() && std::get<std::string>(it->second) == lang;
      }
    }
    return true;
  }

  std::string ToGsql(const std::string& alias) const {
    switch (kind) {
      case Kind::kNone: return "";
      case Kind::kIntLt: return alias + ".a < " + std::to_string(c);
      case Kind::kIntGe: return alias + ".a >= " + std::to_string(c);
      case Kind::kLangEq: return alias + ".lang = \"" + lang + "\"";
    }
    return "";
  }
};

const char* kLangs[] = {"en", "fr", "de"};

std::string JoinIndices(const std::vector<size_t>& v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(v[i]);
  }
  return out;
}

// A vertex-scoped mutation attempted while a fault was armed. The commit
// failed, so after crash/recovery the vertex must be in exactly one of two
// states: `before` (the append never became durable) or `after` (the record
// was durable — e.g. a post-write fsync failure — and WAL replay applied it).
struct UncertainMutation {
  VertexId vid = 0;
  bool existed_before = false;
  GoldenVertex before;
  bool attempted_delete = false;
  GoldenVertex after;
};

// ---------------------------------------------------------------------------
// One fuzz case
// ---------------------------------------------------------------------------

class FuzzCase {
 public:
  explicit FuzzCase(const FuzzOptions& options) : opts_(options) {}

  FuzzCaseResult Run();

 private:
  // --- scenario / lifecycle ---
  void DeriveScenario();
  std::vector<FuzzOp> BuildTape();
  Database::Options MakeDbOptions() const;
  Status DefineSchema(Database* db) const;
  bool OpenDatabase();

  // --- op handlers (return false once a failure is recorded) ---
  bool Dispatch(const FuzzOp& op);
  bool DoInsert(Rng& r);
  bool DoSetEmb(Rng& r);
  bool DoSetAttr(Rng& r);
  bool DoDelEmb(Rng& r);
  bool DoDelVertex(Rng& r);
  bool DoAddEdge(Rng& r);
  bool DoDelEdge(Rng& r);
  bool DoDeltaMerge();
  bool DoIndexMerge(Rng& r);
  bool DoQuery(Rng& r);
  bool DoCrash(Rng& r);
  bool VerifySq8RecoveryStability(Rng& r);

  // --- query shapes ---
  bool QueryPlainGraph(Rng& r, const std::vector<float>& qv);
  bool QueryPureTopK(Rng& r, const std::vector<float>& qv);
  bool QueryRange(Rng& r, const std::vector<float>& qv);
  bool QueryFilteredTopK(Rng& r, const std::vector<float>& qv);
  bool QueryHybridPattern(Rng& r, const std::vector<float>& qv);
  bool QueryVectorSearchFn(Rng& r, const std::vector<float>& qv);
  bool QuerySimilarityJoin(Rng& r);

  // --- checks ---
  struct QueryRun {
    std::vector<VertexId> vids;  // sorted by the session's PRINT
    std::unordered_map<VertexId, float> distances;
  };
  bool RunSelect(const std::string& script, const QueryParams& params,
                 bool want_distances, QueryRun* out);
  // Cache differential for VectorSearch() scripts that PRINT the result set
  // and distance map: reruns with the cache bypassed and compares both
  // prints bit-for-bit against `run`.
  bool CacheDiffVectorSearch(const std::string& script, const QueryParams& params,
                             const QueryRun& run);
  bool CheckSoundness(const std::string& script, const QueryRun& run,
                      const std::string& type, const std::vector<float>& qv,
                      const VertexSet* candidates);
  bool CheckExactTopK(const std::string& script, const QueryRun& run,
                      const std::vector<OracleHit>& oracle_full, size_t k);
  bool CheckRecallTopK(const std::string& script, const QueryRun& run,
                       const std::vector<OracleHit>& oracle_full, size_t k);
  bool CheckRange(const std::string& script, const QueryRun& run,
                  const std::vector<OracleHit>& oracle_full, float threshold,
                  bool exact);
  bool CheckMpp(const std::string& label, const std::string& type,
                const std::vector<float>& qv, size_t k, const VertexSet* candidates,
                bool is_range, float threshold);
  bool VerifyModel(const char* context);

  // --- helpers ---
  bool Fail(const std::string& kind, const std::string& detail,
            const std::string& script = "");
  std::vector<float> RandVec(Rng& r) const;
  std::vector<float> RandStoredVec(Rng& r) const;
  VertexId PickLive(Rng& r, const std::string& type) const;
  std::string PickType(Rng& r) const { return r.NextBounded(2) == 0 ? "T0" : "T1"; }
  Pred RandPred(Rng& r) const;
  VertexSet CandOfType(const std::string& type, const Pred& pred) const;
  // Midpoint between consecutive oracle distances around `idx`, so float
  // noise at the boundary cannot flip membership.
  static float MidpointThreshold(const std::vector<OracleHit>& sorted, size_t idx);

  bool exact_filtered() const { return bruteforce_threshold_ > 32; }
  // Whether a filtered/brute-forced top-k must equal the oracle exactly.
  // Under --sq8 even the brute-force tier ranks its candidate pool on int8
  // codes before the exact rerank, so completeness is a recall bound there
  // too; soundness (type, filter, distance correctness) stays exact.
  bool exact_answers() const { return exact_filtered() && !opts_.sq8; }

  FuzzOptions opts_;
  std::string dir_;

  // Scenario constants derived from the seed.
  size_t dim_ = 4;
  Metric metric_ = Metric::kL2;
  size_t bruteforce_threshold_ = 1;
  bool wal_sync_ = false;

  std::unique_ptr<Database> db_;
  std::unique_ptr<GsqlSession> session_;
  GoldenModel model_;
  FuzzStats stats_;
  std::optional<FuzzFailure> failure_;
  size_t cur_op_ = 0;
  bool snapshot_saved_ = false;
};

// ---------------------------------------------------------------------------
// Scenario & lifecycle
// ---------------------------------------------------------------------------

void FuzzCase::DeriveScenario() {
  Rng r(opts_.seed ^ 0xa5c1e9d2b7f30461ULL);
  dim_ = r.NextBounded(2) == 0 ? 4 : 8;
  metric_ = r.NextBounded(2) == 0 ? Metric::kL2 : Metric::kCosine;
  // Two oracle tiers. 64 > segment capacity (32), so every *filtered*
  // search brute-forces and must match the oracle exactly; 1 keeps the
  // HNSW path hot, where soundness stays exact and completeness is a
  // recall bound.
  bruteforce_threshold_ = r.NextBounded(2) == 0 ? 64 : 1;
  wal_sync_ = r.NextBounded(2) == 0;
}

std::vector<FuzzOp> FuzzCase::BuildTape() {
  Rng r(opts_.seed);
  std::vector<FuzzOp> tape;
  tape.reserve(opts_.ops);
  const size_t warmup = std::min<size_t>(opts_.ops / 3, 48);
  struct Weighted {
    OpKind kind;
    uint32_t weight;
  };
  const Weighted weights[] = {
      {OpKind::kInsert, 14}, {OpKind::kSetEmb, 8},     {OpKind::kSetAttr, 8},
      {OpKind::kDelEmb, 3},  {OpKind::kDelVertex, 5},  {OpKind::kAddEdge, 10},
      {OpKind::kDelEdge, 3}, {OpKind::kDeltaMerge, 3}, {OpKind::kIndexMerge, 2},
      {OpKind::kQuery, 30},  {OpKind::kCrash, opts_.with_faults ? 3u : 0u},
  };
  uint32_t total = 0;
  for (const Weighted& w : weights) total += w.weight;
  for (size_t i = 0; i < opts_.ops; ++i) {
    OpKind kind = OpKind::kInsert;
    if (i >= warmup) {
      uint32_t pick = static_cast<uint32_t>(r.NextBounded(total));
      for (const Weighted& w : weights) {
        if (pick < w.weight) {
          kind = w.kind;
          break;
        }
        pick -= w.weight;
      }
    }
    tape.push_back(FuzzOp{kind, r.Next64()});
  }
  return tape;
}

Database::Options FuzzCase::MakeDbOptions() const {
  Database::Options options;
  options.store.segment_capacity = 32;  // several graph + embedding segments
  options.store.wal_path = dir_ + "/wal.log";
  options.store.wal_sync = wal_sync_;
  options.embeddings.delta_dir = dir_;
  options.embeddings.index_params.m = 8;
  options.embeddings.index_params.ef_construction = 48;
  options.embeddings.bruteforce_threshold = bruteforce_threshold_;
  options.num_threads = 2;
  if (opts_.with_mpp) {
    options.num_servers = 3;
    options.threads_per_server = 1;
  }
  return options;
}

Status FuzzCase::DefineSchema(Database* db) const {
  EmbeddingTypeInfo info;
  info.dimension = dim_;
  info.model = "M";
  info.metric = metric_;
  // Pin the quant choice in the schema (not TV_QUANT) so an --sq8 sweep is
  // reproducible regardless of the environment the fuzzer runs under.
  if (opts_.sq8) info.quant = QuantOption::kSq8;
  TV_RETURN_NOT_OK(db->schema()
                       ->CreateVertexType("T0", {{"a", AttrType::kInt},
                                                 {"lang", AttrType::kString}})
                       .status());
  TV_RETURN_NOT_OK(db->schema()
                       ->CreateVertexType("T1", {{"a", AttrType::kInt},
                                                 {"lang", AttrType::kString}})
                       .status());
  TV_RETURN_NOT_OK(db->schema()->CreateEmbeddingSpace("ES", info));
  TV_RETURN_NOT_OK(db->schema()->AddEmbeddingAttrInSpace("T0", "emb", "ES"));
  TV_RETURN_NOT_OK(db->schema()->AddEmbeddingAttrInSpace("T1", "emb", "ES"));
  TV_RETURN_NOT_OK(db->schema()->CreateEdgeType("e0", "T0", "T1", true).status());
  return Status::OK();
}

bool FuzzCase::OpenDatabase() {
  db_ = std::make_unique<Database>(MakeDbOptions());
  Status s = DefineSchema(db_.get());
  if (!s.ok()) return Fail("schema-error", s.ToString());
  session_ = std::make_unique<GsqlSession>(db_.get());
  return true;
}

FuzzCaseResult FuzzCase::Run() {
  FuzzCaseResult result;
  // The injector is process-global: never inherit an armed fault from a
  // previous (possibly failed) case.
  io::FaultInjector::Instance().Reset();

  dir_ = opts_.work_dir;
  if (dir_.empty()) {
    dir_ = (fs::temp_directory_path() /
            ("tv_fuzz_" + std::to_string(opts_.seed)))
               .string();
  }
  std::error_code ec;
  fs::remove_all(dir_, ec);
  fs::create_directories(dir_, ec);
  if (ec) {
    result.ok = false;
    result.failures.push_back(
        FuzzFailure{0, "io-error", "cannot create work dir " + dir_, ""});
    return result;
  }

  DeriveScenario();
  const std::vector<FuzzOp> tape = BuildTape();
  std::set<size_t> skip(opts_.skip.begin(), opts_.skip.end());

  if (OpenDatabase()) {
    for (cur_op_ = 0; cur_op_ < tape.size(); ++cur_op_) {
      if (skip.count(cur_op_) > 0) continue;
      if (opts_.verbose) {
        std::fprintf(stderr, "[tv_fuzz seed=%llu] op %zu: %s\n",
                     static_cast<unsigned long long>(opts_.seed), cur_op_,
                     OpName(tape[cur_op_].kind));
      }
      if (!Dispatch(tape[cur_op_])) break;
    }
    if (!failure_.has_value()) VerifyModel("final");
  }

  session_.reset();
  db_.reset();
  io::FaultInjector::Instance().Reset();

  result.stats = stats_;
  if (failure_.has_value()) {
    result.ok = false;
    result.failures.push_back(*failure_);
  } else {
    result.ok = true;
    fs::remove_all(dir_, ec);  // keep artifacts only for failing cases
  }
  return result;
}

bool FuzzCase::Dispatch(const FuzzOp& op) {
  Rng r(op.seed);
  switch (op.kind) {
    case OpKind::kInsert: return DoInsert(r);
    case OpKind::kSetEmb: return DoSetEmb(r);
    case OpKind::kSetAttr: return DoSetAttr(r);
    case OpKind::kDelEmb: return DoDelEmb(r);
    case OpKind::kDelVertex: return DoDelVertex(r);
    case OpKind::kAddEdge: return DoAddEdge(r);
    case OpKind::kDelEdge: return DoDelEdge(r);
    case OpKind::kDeltaMerge: return DoDeltaMerge();
    case OpKind::kIndexMerge: return DoIndexMerge(r);
    case OpKind::kQuery: return DoQuery(r);
    case OpKind::kCrash: return DoCrash(r);
  }
  return true;
}

bool FuzzCase::Fail(const std::string& kind, const std::string& detail,
                    const std::string& script) {
  if (!failure_.has_value()) {
    failure_ = FuzzFailure{cur_op_, kind, detail, script};
  }
  return false;
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

std::vector<float> FuzzCase::RandVec(Rng& r) const {
  std::vector<float> v(dim_);
  for (float& x : v) x = r.NextGaussian();
  return v;
}

std::vector<float> FuzzCase::RandStoredVec(Rng& r) const {
  // 1-in-16 stored embeddings are the all-zero vector: exercises the cosine
  // zero-norm sentinel (distance 2 = metric max) through the differential
  // oracle. Only stored vectors, never queries — a zero query under cosine
  // ties every distance at 2 and would make approximate-recall checks
  // meaningless.
  if (r.NextBounded(16) == 0) return std::vector<float>(dim_, 0.f);
  return RandVec(r);
}

VertexId FuzzCase::PickLive(Rng& r, const std::string& type) const {
  std::vector<VertexId> live = model_.LiveOfType(type);
  if (live.empty()) return kInvalidVertexId;
  return live[r.NextBounded(live.size())];
}

Pred FuzzCase::RandPred(Rng& r) const {
  Pred p;
  switch (r.NextBounded(3)) {
    case 0:
      p.kind = Pred::Kind::kIntLt;
      p.c = 1 + static_cast<int64_t>(r.NextBounded(50));
      break;
    case 1:
      p.kind = Pred::Kind::kIntGe;
      p.c = static_cast<int64_t>(r.NextBounded(40));
      break;
    default:
      p.kind = Pred::Kind::kLangEq;
      p.lang = kLangs[r.NextBounded(3)];
      break;
  }
  return p;
}

VertexSet FuzzCase::CandOfType(const std::string& type, const Pred& pred) const {
  VertexSet out;
  for (const auto& [vid, v] : model_.vertices()) {
    if (v.type == type && pred.Eval(v)) out.insert(vid);
  }
  return out;
}

float FuzzCase::MidpointThreshold(const std::vector<OracleHit>& sorted, size_t idx) {
  if (sorted.empty()) return 0.5f;
  if (idx + 1 < sorted.size()) {
    return 0.5f * (sorted[idx].distance + sorted[idx + 1].distance);
  }
  return sorted.back().distance + 0.1f;
}

// ---------------------------------------------------------------------------
// Mutations
// ---------------------------------------------------------------------------

bool FuzzCase::DoInsert(Rng& r) {
  const size_t n = 1 + r.NextBounded(3);
  Transaction txn = db_->Begin();
  struct Pending {
    VertexId vid;
    GoldenVertex v;
  };
  std::vector<Pending> pending;
  for (size_t i = 0; i < n; ++i) {
    GoldenVertex v;
    v.type = PickType(r);
    v.attrs["a"] = static_cast<int64_t>(r.NextBounded(50));
    v.attrs["lang"] = std::string(kLangs[r.NextBounded(3)]);
    auto vid = txn.InsertVertex(
        v.type, {v.attrs["a"], v.attrs["lang"]});
    if (!vid.ok()) return Fail("insert-error", vid.status().ToString());
    if (r.NextBounded(100) < 85) {
      std::vector<float> emb = RandStoredVec(r);
      Status s = txn.SetEmbedding(*vid, v.type, "emb", emb);
      if (!s.ok()) return Fail("insert-error", s.ToString());
      v.embeddings["emb"] = std::move(emb);
    }
    pending.push_back(Pending{*vid, std::move(v)});
  }
  auto tid = txn.Commit();
  if (!tid.ok()) return Fail("commit-failed", tid.status().ToString());
  for (Pending& p : pending) model_.InsertVertex(p.vid, std::move(p.v));
  ++stats_.committed_txns;
  return true;
}

bool FuzzCase::DoSetEmb(Rng& r) {
  const std::string type = PickType(r);
  const VertexId vid = PickLive(r, type);
  std::vector<float> emb = RandStoredVec(r);
  if (vid == kInvalidVertexId) return true;
  Transaction txn = db_->Begin();
  Status s = txn.SetEmbedding(vid, type, "emb", emb);
  if (!s.ok()) return Fail("set-emb-error", s.ToString());
  auto tid = txn.Commit();
  if (!tid.ok()) return Fail("commit-failed", tid.status().ToString());
  model_.SetEmbedding(vid, "emb", std::move(emb));
  ++stats_.committed_txns;
  return true;
}

bool FuzzCase::DoSetAttr(Rng& r) {
  const std::string type = PickType(r);
  const VertexId vid = PickLive(r, type);
  const bool int_attr = r.NextBounded(2) == 0;
  Value value = int_attr ? Value(static_cast<int64_t>(r.NextBounded(50)))
                         : Value(std::string(kLangs[r.NextBounded(3)]));
  if (vid == kInvalidVertexId) return true;
  Transaction txn = db_->Begin();
  Status s = txn.SetAttr(vid, type, int_attr ? "a" : "lang", value);
  if (!s.ok()) return Fail("set-attr-error", s.ToString());
  auto tid = txn.Commit();
  if (!tid.ok()) return Fail("commit-failed", tid.status().ToString());
  model_.SetAttr(vid, int_attr ? "a" : "lang", std::move(value));
  ++stats_.committed_txns;
  return true;
}

bool FuzzCase::DoDelEmb(Rng& r) {
  const std::string type = PickType(r);
  const VertexId vid = PickLive(r, type);
  if (vid == kInvalidVertexId) return true;
  Transaction txn = db_->Begin();
  Status s = txn.DeleteEmbedding(vid, "emb");
  if (!s.ok()) return Fail("del-emb-error", s.ToString());
  auto tid = txn.Commit();
  if (!tid.ok()) return Fail("commit-failed", tid.status().ToString());
  model_.DeleteEmbedding(vid, "emb");
  ++stats_.committed_txns;
  return true;
}

bool FuzzCase::DoDelVertex(Rng& r) {
  const std::string type = PickType(r);
  const VertexId vid = PickLive(r, type);
  if (vid == kInvalidVertexId) return true;
  Transaction txn = db_->Begin();
  Status s = txn.DeleteVertex(vid);
  if (!s.ok()) return Fail("del-vertex-error", s.ToString());
  auto tid = txn.Commit();
  if (!tid.ok()) return Fail("commit-failed", tid.status().ToString());
  model_.DeleteVertex(vid);
  ++stats_.committed_txns;
  return true;
}

bool FuzzCase::DoAddEdge(Rng& r) {
  const VertexId src = PickLive(r, "T0");
  const VertexId dst = PickLive(r, "T1");
  if (src == kInvalidVertexId || dst == kInvalidVertexId) return true;
  if (model_.HasEdge("e0", src, dst)) return true;
  Transaction txn = db_->Begin();
  Status s = txn.InsertEdge("e0", src, dst);
  if (!s.ok()) return Fail("add-edge-error", s.ToString());
  auto tid = txn.Commit();
  if (!tid.ok()) return Fail("commit-failed", tid.status().ToString());
  model_.InsertEdge("e0", src, dst);
  ++stats_.committed_txns;
  return true;
}

bool FuzzCase::DoDelEdge(Rng& r) {
  const auto& edges = model_.edges();
  if (edges.empty()) return true;
  auto it = edges.begin();
  std::advance(it, r.NextBounded(edges.size()));
  const GoldenEdge edge = *it;
  Transaction txn = db_->Begin();
  Status s = txn.DeleteEdge(edge.type, edge.src, edge.dst);
  if (!s.ok()) return Fail("del-edge-error", s.ToString());
  auto tid = txn.Commit();
  if (!tid.ok()) return Fail("commit-failed", tid.status().ToString());
  model_.DeleteEdge(edge.type, edge.src, edge.dst);
  ++stats_.committed_txns;
  return true;
}

bool FuzzCase::DoDeltaMerge() {
  auto sealed = db_->embeddings()->RunDeltaMerge();
  if (!sealed.ok()) return Fail("vacuum-error", sealed.status().ToString());
  ++stats_.delta_merges;
  return true;
}

bool FuzzCase::DoIndexMerge(Rng& r) {
  // Database::Vacuum() schedules index folds on the pool; segment insert
  // order into HNSW would then depend on thread timing. The fuzzer needs
  // the same bits every run, so it drives both vacuum stages sequentially.
  auto sealed = db_->embeddings()->RunDeltaMerge();
  if (!sealed.ok()) return Fail("vacuum-error", sealed.status().ToString());
  if (r.NextBounded(4) == 0) {
    Status s = db_->embeddings()->RebuildAllIndexes(nullptr);
    if (!s.ok()) return Fail("vacuum-error", s.ToString());
  } else {
    auto folded = db_->embeddings()->RunIndexMerge(nullptr);
    if (!folded.ok()) return Fail("vacuum-error", folded.status().ToString());
  }
  ++stats_.index_merges;
  return true;
}

// ---------------------------------------------------------------------------
// Query execution + checks
// ---------------------------------------------------------------------------

bool FuzzCase::RunSelect(const std::string& script, const QueryParams& params,
                         bool want_distances, QueryRun* out) {
  // Under --explain-analyze the same script runs with plan-node annotation;
  // EXPLAIN ANALYZE still executes, so PRINT output must be unchanged.
  const std::string run_script =
      opts_.explain_analyze ? "EXPLAIN ANALYZE " + script : script;
  auto result = session_->Run(run_script, params);
  if (!result.ok()) {
    return Fail("query-error", result.status().ToString(), run_script);
  }
  if (opts_.explain_analyze &&
      (!result->analyzed || result->explain.empty())) {
    return Fail("explain-analyze-missing",
                "EXPLAIN ANALYZE produced no analyzed plan", run_script);
  }
  if (result->prints.empty()) {
    return Fail("query-error", "no PRINT output", script);
  }
  out->vids = result->prints[0].vertices;
  out->distances.clear();
  if (want_distances && !out->vids.empty()) {
    // The session materializes "@@R_dist" only when the block produced
    // distances, which is guaranteed here because the result is non-empty.
    auto dist = session_->Run("PRINT @@R_dist;");
    if (!dist.ok()) {
      return Fail("query-error",
                  "distance map missing: " + dist.status().ToString(), script);
    }
    out->distances = dist->prints[0].distances;
  }
  if (opts_.cache_diff) {
    // Cache differential: the identical script, bypassing both cache tiers,
    // must produce bit-for-bit the same answer. The rerun rebinds the same
    // session variables to the same values (the tape is single-threaded),
    // so session state is unchanged afterwards.
    session_->SetCacheBypass(true);
    auto uncached = session_->Run(run_script, params);
    QueryRun raw;
    bool raw_ok = uncached.ok() && !uncached->prints.empty();
    if (raw_ok) {
      raw.vids = uncached->prints[0].vertices;
      if (want_distances && !raw.vids.empty()) {
        auto dist = session_->Run("PRINT @@R_dist;");
        raw_ok = dist.ok() && !dist->prints.empty();
        if (raw_ok) raw.distances = dist->prints[0].distances;
      }
    }
    session_->SetCacheBypass(false);
    if (!raw_ok) {
      return Fail("cache-divergence", "uncached rerun failed", run_script);
    }
    if (raw.vids != out->vids) {
      return Fail("cache-divergence",
                  "cached run returned " + std::to_string(out->vids.size()) +
                      " vids, uncached rerun " + std::to_string(raw.vids.size()) +
                      " (or different ids)",
                  run_script);
    }
    for (VertexId vid : out->vids) {
      auto a = out->distances.find(vid);
      auto b = raw.distances.find(vid);
      const bool has_a = a != out->distances.end();
      const bool has_b = b != raw.distances.end();
      if (has_a != has_b || (has_a && a->second != b->second)) {
        return Fail("cache-divergence",
                    "distance mismatch for vid " + std::to_string(vid),
                    run_script);
      }
    }
  }
  return true;
}

bool FuzzCase::CacheDiffVectorSearch(const std::string& script,
                                     const QueryParams& params,
                                     const QueryRun& run) {
  if (!opts_.cache_diff) return true;
  session_->SetCacheBypass(true);
  auto uncached = session_->Run(script, params);
  session_->SetCacheBypass(false);
  if (!uncached.ok() || uncached->prints.size() < 2) {
    return Fail("cache-divergence", "uncached VectorSearch rerun failed", script);
  }
  if (uncached->prints[0].vertices != run.vids) {
    return Fail("cache-divergence",
                "cached VectorSearch returned different vertex set", script);
  }
  const auto& raw_dist = uncached->prints[1].distances;
  for (VertexId vid : run.vids) {
    auto a = run.distances.find(vid);
    auto b = raw_dist.find(vid);
    const bool has_a = a != run.distances.end();
    const bool has_b = b != raw_dist.end();
    if (has_a != has_b || (has_a && a->second != b->second)) {
      return Fail("cache-divergence",
                  "VectorSearch distance mismatch for vid " + std::to_string(vid),
                  script);
    }
  }
  return true;
}

bool FuzzCase::CheckSoundness(const std::string& script, const QueryRun& run,
                              const std::string& type, const std::vector<float>& qv,
                              const VertexSet* candidates) {
  ++stats_.soundness_checks;
  for (VertexId vid : run.vids) {
    const GoldenVertex* v = model_.Get(vid);
    if (v == nullptr) {
      return Fail("soundness-dead-vertex",
                  "result contains deleted/unknown vid " + std::to_string(vid),
                  script);
    }
    if (v->type != type) {
      return Fail("soundness-wrong-type",
                  "vid " + std::to_string(vid) + " has type " + v->type +
                      ", searched " + type,
                  script);
    }
    auto emb = v->embeddings.find("emb");
    if (emb == v->embeddings.end()) {
      return Fail("soundness-no-embedding",
                  "vid " + std::to_string(vid) + " has no embedding", script);
    }
    if (candidates != nullptr && candidates->count(vid) == 0) {
      return Fail("soundness-filter-violation",
                  "vid " + std::to_string(vid) + " fails the query filter", script);
    }
    auto d = run.distances.find(vid);
    if (d != run.distances.end()) {
      const float expect =
          ComputeDistance(metric_, qv.data(), emb->second.data(), dim_);
      const float tol = 1e-4f + 1e-3f * std::fabs(expect);
      if (std::fabs(d->second - expect) > tol) {
        return Fail("soundness-distance",
                    "vid " + std::to_string(vid) + " reported distance " +
                        std::to_string(d->second) + ", oracle " +
                        std::to_string(expect),
                    script);
      }
    }
  }
  return true;
}

bool FuzzCase::CheckExactTopK(const std::string& script, const QueryRun& run,
                              const std::vector<OracleHit>& oracle_full, size_t k) {
  ++stats_.exact_checks;
  const size_t expected = std::min(k, oracle_full.size());
  if (run.vids.size() != expected) {
    return Fail("oracle-exact-mismatch",
                "result size " + std::to_string(run.vids.size()) +
                    ", oracle expects " + std::to_string(expected),
                script);
  }
  if (expected == 0) return true;
  std::unordered_map<VertexId, float> oracle_dist;
  for (const OracleHit& h : oracle_full) oracle_dist[h.vid] = h.distance;
  const float kth = oracle_full[expected - 1].distance;
  const float eps = 1e-5f + 1e-4f * std::fabs(kth);
  VertexSet returned(run.vids.begin(), run.vids.end());
  // Every returned vertex must be at least as close as the oracle's k-th
  // hit; every strictly-closer oracle hit must be returned. Distance ties
  // at the boundary may legitimately resolve either way.
  for (VertexId vid : run.vids) {
    auto it = oracle_dist.find(vid);
    if (it == oracle_dist.end() || it->second > kth + eps) {
      return Fail("oracle-exact-mismatch",
                  "vid " + std::to_string(vid) + " is not an exact top-" +
                      std::to_string(k) + " answer",
                  script);
    }
  }
  for (size_t i = 0; i < expected; ++i) {
    if (oracle_full[i].distance < kth - eps &&
        returned.count(oracle_full[i].vid) == 0) {
      return Fail("oracle-exact-mismatch",
                  "missing vid " + std::to_string(oracle_full[i].vid) +
                      " at oracle distance " +
                      std::to_string(oracle_full[i].distance),
                  script);
    }
  }
  return true;
}

bool FuzzCase::CheckRecallTopK(const std::string& script, const QueryRun& run,
                               const std::vector<OracleHit>& oracle_full, size_t k) {
  ++stats_.recall_checks;
  const size_t expected = std::min(k, oracle_full.size());
  if (expected == 0) {
    if (!run.vids.empty()) {
      return Fail("oracle-phantom-results",
                  "oracle expects an empty result, engine returned " +
                      std::to_string(run.vids.size()),
                  script);
    }
    return true;
  }
  VertexSet returned(run.vids.begin(), run.vids.end());
  // Tie-tolerant recall: with duplicated distances (e.g. several zero
  // stored vectors under cosine, all at the metric max of 2) the engine may
  // return a different-but-equidistant vid than the oracle's id-tie-broken
  // prefix. Any returned vid whose true distance ties the oracle's k-th
  // distance is a correct retrieval, so scan the whole tie group.
  const float kth = oracle_full[expected - 1].distance;
  size_t found = 0;
  for (const OracleHit& h : oracle_full) {
    if (h.distance > kth) break;
    if (returned.count(h.vid) > 0) ++found;
  }
  found = std::min(found, expected);
  const double recall = static_cast<double>(found) / static_cast<double>(expected);
  if (recall + 1e-12 < opts_.min_recall) {
    return Fail("oracle-low-recall",
                "recall " + std::to_string(recall) + " < " +
                    std::to_string(opts_.min_recall) + " (found " +
                    std::to_string(found) + "/" + std::to_string(expected) + ")",
                script);
  }
  return true;
}

bool FuzzCase::CheckRange(const std::string& script, const QueryRun& run,
                          const std::vector<OracleHit>& oracle_full, float threshold,
                          bool exact) {
  std::unordered_map<VertexId, float> oracle_dist;
  for (const OracleHit& h : oracle_full) oracle_dist[h.vid] = h.distance;
  const float eps = 1e-5f + 1e-4f * std::fabs(threshold);
  size_t required = 0;
  for (const OracleHit& h : oracle_full) {
    if (h.distance < threshold - eps) ++required;
  }
  // Soundness half is exact in both tiers: nothing at or beyond the
  // threshold may be returned.
  for (VertexId vid : run.vids) {
    auto it = oracle_dist.find(vid);
    if (it == oracle_dist.end() || it->second >= threshold + eps) {
      return Fail("oracle-range-unsound",
                  "vid " + std::to_string(vid) + " is outside the range", script);
    }
  }
  VertexSet returned(run.vids.begin(), run.vids.end());
  size_t found = 0;
  for (const OracleHit& h : oracle_full) {
    if (h.distance < threshold - eps && returned.count(h.vid) > 0) ++found;
  }
  if (exact) {
    ++stats_.exact_checks;
    if (found != required) {
      return Fail("oracle-range-incomplete",
                  "exact range returned " + std::to_string(found) + "/" +
                      std::to_string(required) + " answers",
                  script);
    }
  } else {
    ++stats_.recall_checks;
    if (required > 0) {
      const double recall =
          static_cast<double>(found) / static_cast<double>(required);
      if (recall + 1e-12 < opts_.min_recall) {
        return Fail("oracle-range-low-recall",
                    "range recall " + std::to_string(recall) + " < " +
                        std::to_string(opts_.min_recall),
                    script);
      }
    }
  }
  return true;
}

bool FuzzCase::CheckMpp(const std::string& label, const std::string& type,
                        const std::vector<float>& qv, size_t k,
                        const VertexSet* candidates, bool is_range,
                        float threshold) {
  if (db_->cluster() == nullptr) return true;
  ++stats_.mpp_checks;
  VectorSearchRequest request;
  request.attrs = {{type, "emb"}};
  request.query = qv.data();
  request.k = k;
  request.pool = nullptr;  // identical sequential execution on both legs
  Bitmap bitmap;
  if (candidates != nullptr) {
    bitmap = VertexSetToBitmap(*candidates, db_->store()->vid_upper_bound());
    request.filter = FilterView(&bitmap);
  }
  Result<VectorSearchResult> single =
      is_range ? db_->embeddings()->RangeSearch(request, threshold)
               : db_->embeddings()->TopKSearch(request);
  Result<VectorSearchResult> distributed =
      is_range ? db_->cluster()->DistributedRange(request, threshold, nullptr)
               : db_->cluster()->DistributedTopK(request, nullptr);
  if (!single.ok() || !distributed.ok()) {
    return Fail("mpp-error",
                "single: " + single.status().ToString() +
                    "; distributed: " + distributed.status().ToString(),
                label);
  }
  auto by_dist_label = [](const SearchHit& a, const SearchHit& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.label < b.label;
  };
  std::vector<SearchHit> lhs = single->hits;
  std::vector<SearchHit> rhs = distributed->hits;
  std::sort(lhs.begin(), lhs.end(), by_dist_label);
  std::sort(rhs.begin(), rhs.end(), by_dist_label);
  if (lhs.size() != rhs.size()) {
    return Fail("mpp-divergence",
                "single-node returned " + std::to_string(lhs.size()) +
                    " hits, cluster " + std::to_string(rhs.size()),
                label);
  }
  for (size_t i = 0; i < lhs.size(); ++i) {
    // Bit-for-bit: the cluster merge re-ranks the same per-segment floats,
    // it must not perturb them.
    if (lhs[i].label != rhs[i].label || lhs[i].distance != rhs[i].distance) {
      return Fail("mpp-divergence",
                  "hit " + std::to_string(i) + ": single (" +
                      std::to_string(lhs[i].label) + ", " +
                      std::to_string(lhs[i].distance) + ") vs cluster (" +
                      std::to_string(rhs[i].label) + ", " +
                      std::to_string(rhs[i].distance) + ")",
                  label);
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Query shapes
// ---------------------------------------------------------------------------

bool FuzzCase::DoQuery(Rng& r) {
  ++stats_.queries;
  const std::vector<float> qv = RandVec(r);
  switch (r.NextBounded(7)) {
    case 0: return QueryPlainGraph(r, qv);
    case 1: return QueryPureTopK(r, qv);
    case 2: return QueryRange(r, qv);
    case 3: return QueryFilteredTopK(r, qv);
    case 4: return QueryHybridPattern(r, qv);
    case 5: return QueryVectorSearchFn(r, qv);
    default: return QuerySimilarityJoin(r);
  }
}

bool FuzzCase::QueryPlainGraph(Rng& r, const std::vector<float>& qv) {
  (void)qv;
  const bool two_nodes = r.NextBounded(2) == 1;
  const Pred pred = r.NextBounded(2) == 0 ? Pred{} : RandPred(r);
  std::ostringstream script;
  VertexSet expect;
  if (!two_nodes) {
    const std::string type = PickType(r);
    script << "R = SELECT s FROM (s:" << type << ")";
    if (pred.kind != Pred::Kind::kNone) script << " WHERE " << pred.ToGsql("s");
    expect = CandOfType(type, pred);
  } else {
    // (s:T0) and (t:T1) joined over e0, with every direction token.
    const int dir_pick = static_cast<int>(r.NextBounded(3));
    const char* token = dir_pick == 0 ? "-[:e0]->" : dir_pick == 1 ? "<-[:e0]-" : "-[:e0]-";
    const Direction dir =
        dir_pick == 0 ? Direction::kOut : dir_pick == 1 ? Direction::kIn : Direction::kAny;
    const bool select_s = r.NextBounded(2) == 0;
    script << "R = SELECT " << (select_s ? "s" : "t") << " FROM (s:T0) " << token
           << " (t:T1)";
    if (pred.kind != Pred::Kind::kNone) script << " WHERE " << pred.ToGsql("s");
    expect = EvalChainPattern(model_, {CandOfType("T0", pred), CandOfType("T1", Pred{})},
                              {"e0"}, {dir}, select_s ? 0 : 1);
  }
  std::optional<size_t> limit;
  if (r.NextBounded(3) == 0) limit = 1 + r.NextBounded(10);
  if (limit.has_value()) script << " LIMIT " << *limit;
  script << "; PRINT R;";

  QueryRun run;
  if (!RunSelect(script.str(), {}, /*want_distances=*/false, &run)) return false;
  std::vector<VertexId> want(expect.begin(), expect.end());
  std::sort(want.begin(), want.end());
  if (limit.has_value() && want.size() > *limit) want.resize(*limit);
  ++stats_.exact_checks;
  if (run.vids != want) {
    return Fail("oracle-exact-mismatch",
                "graph pattern returned " + std::to_string(run.vids.size()) +
                    " vids, oracle expects " + std::to_string(want.size()),
                script.str());
  }
  return true;
}

bool FuzzCase::QueryPureTopK(Rng& r, const std::vector<float>& qv) {
  const std::string type = PickType(r);
  const size_t k = 1 + r.NextBounded(8);
  // The prefix metamorphic does not hold under SQ8: the rerank budget
  // scales with the LIMIT (rerank_factor * k), so LIMIT k+10 rescores a
  // deeper code-ranked pool and may legitimately surface an exact-closer
  // hit the LIMIT-k budget never rescored.
  const bool check_prefix = !opts_.sq8 && r.NextBounded(2) == 0;
  const bool check_tautology = !exact_filtered() && r.NextBounded(2) == 0;
  QueryParams params{{"qv", qv}};

  auto script_for = [&](size_t limit) {
    return "R = SELECT s FROM (s:" + type + ") ORDER BY VECTOR_DIST(s.emb, $qv) LIMIT " +
           std::to_string(limit) + "; PRINT R;";
  };
  const std::string script = script_for(k);
  QueryRun run;
  if (!RunSelect(script, params, /*want_distances=*/true, &run)) return false;

  const std::vector<OracleHit> oracle =
      model_.ExactTopK({{type, "emb"}}, metric_, qv,
                       model_.vertices().size() + 1, nullptr);
  if (!CheckSoundness(script, run, type, qv, nullptr)) return false;
  if (!CheckRecallTopK(script, run, oracle, k)) return false;

  if (check_prefix) {
    // Metamorphic: under a fixed ef, LIMIT k must be a prefix of
    // LIMIT k+10 when both are ordered by (distance, vid).
    QueryRun wider;
    if (!RunSelect(script_for(k + 10), params, /*want_distances=*/true, &wider)) {
      return false;
    }
    ++stats_.metamorphic_checks;
    auto ranked = [](const QueryRun& q) {
      std::vector<std::pair<float, VertexId>> out;
      for (VertexId vid : q.vids) {
        auto it = q.distances.find(vid);
        out.push_back({it == q.distances.end() ? 0.f : it->second, vid});
      }
      std::sort(out.begin(), out.end());
      return out;
    };
    const auto narrow_seq = ranked(run);
    const auto wide_seq = ranked(wider);
    if (narrow_seq.size() > wide_seq.size()) {
      return Fail("metamorphic-prefix",
                  "LIMIT " + std::to_string(k) + " returned more hits than LIMIT " +
                      std::to_string(k + 10),
                  script);
    }
    for (size_t i = 0; i < narrow_seq.size(); ++i) {
      if (narrow_seq[i].second != wide_seq[i].second) {
        return Fail("metamorphic-prefix",
                    "rank " + std::to_string(i) + " differs: " +
                        std::to_string(narrow_seq[i].second) + " vs " +
                        std::to_string(wide_seq[i].second),
                    script);
      }
    }
  }

  if (check_tautology) {
    // Metamorphic: a filter every vertex passes must not change the answer
    // (only meaningful on the ANN tier, where both legs take the HNSW path;
    // on the exact tier the filter deliberately switches to brute force).
    const std::string taut = "R2 = SELECT s FROM (s:" + type +
                             ") WHERE s.a >= 0 ORDER BY VECTOR_DIST(s.emb, $qv) LIMIT " +
                             std::to_string(k) + "; PRINT R2;";
    auto taut_result = session_->Run(taut, params);
    if (!taut_result.ok()) {
      return Fail("query-error", taut_result.status().ToString(), taut);
    }
    ++stats_.metamorphic_checks;
    if (taut_result->prints[0].vertices != run.vids) {
      return Fail("metamorphic-tautology",
                  "tautological filter changed the result set", taut);
    }
  }

  if (opts_.with_mpp && r.NextBounded(2) == 0) {
    if (!CheckMpp(script, type, qv, k, nullptr, /*is_range=*/false, 0)) return false;
  }
  return true;
}

bool FuzzCase::QueryRange(Rng& r, const std::vector<float>& qv) {
  const std::string type = PickType(r);
  const bool filtered = r.NextBounded(2) == 0;
  const Pred pred = filtered ? RandPred(r) : Pred{};
  VertexSet candidates = CandOfType(type, pred);
  const std::vector<OracleHit> oracle = model_.ExactRange(
      {{type, "emb"}}, metric_, qv, std::numeric_limits<float>::max(), &candidates);
  const size_t idx = oracle.empty() ? 0 : r.NextBounded(std::min<size_t>(oracle.size(), 20));
  const float threshold = MidpointThreshold(oracle, idx);

  std::ostringstream script;
  script << "R = SELECT s FROM (s:" << type << ") WHERE ";
  if (filtered) script << pred.ToGsql("s") << " AND ";
  script << "VECTOR_DIST(s.emb, $qv) < $thr; PRINT R;";
  QueryParams params{{"qv", qv}, {"thr", static_cast<double>(threshold)}};

  QueryRun run;
  if (!RunSelect(script.str(), params, /*want_distances=*/true, &run)) return false;
  if (!CheckSoundness(script.str(), run, type, qv, &candidates)) return false;
  // Tier rule: a filtered range search carries a candidate bitmap, and with
  // bruteforce_threshold > segment capacity every segment takes the exact
  // scan, so the answer must equal the oracle's. Pure range scans stay on
  // the HNSW path in both tiers. This holds under --sq8 too: range search
  // pins the fp32 path (quantized threshold tests would be unsound), so it
  // deliberately keeps the exact gate — a quant leak here fails loudly.
  const bool exact = filtered && exact_filtered();
  if (!CheckRange(script.str(), run, oracle, threshold, exact)) return false;

  if (opts_.with_mpp && r.NextBounded(2) == 0) {
    if (!CheckMpp(script.str(), type, qv, 16, filtered ? &candidates : nullptr,
                  /*is_range=*/true, threshold)) {
      return false;
    }
  }
  return true;
}

bool FuzzCase::QueryFilteredTopK(Rng& r, const std::vector<float>& qv) {
  const std::string type = PickType(r);
  const size_t k = 1 + r.NextBounded(8);
  const Pred pred = RandPred(r);
  VertexSet candidates = CandOfType(type, pred);
  const std::string script = "R = SELECT s FROM (s:" + type + ") WHERE " +
                             pred.ToGsql("s") +
                             " ORDER BY VECTOR_DIST(s.emb, $qv) LIMIT " +
                             std::to_string(k) + "; PRINT R;";
  QueryParams params{{"qv", qv}};
  QueryRun run;
  if (!RunSelect(script, params, /*want_distances=*/true, &run)) return false;
  if (!CheckSoundness(script, run, type, qv, &candidates)) return false;
  const std::vector<OracleHit> oracle = model_.ExactTopK(
      {{type, "emb"}}, metric_, qv, model_.vertices().size() + 1, &candidates);
  if (exact_answers()) {
    if (!CheckExactTopK(script, run, oracle, k)) return false;
  } else {
    if (!CheckRecallTopK(script, run, oracle, k)) return false;
  }
  if (opts_.with_mpp && r.NextBounded(2) == 0) {
    if (!CheckMpp(script, type, qv, k, &candidates, /*is_range=*/false, 0)) {
      return false;
    }
  }
  return true;
}

bool FuzzCase::QueryHybridPattern(Rng& r, const std::vector<float>& qv) {
  const size_t k = 1 + r.NextBounded(8);
  const Pred pred = r.NextBounded(2) == 0 ? Pred{} : RandPred(r);
  // Search the pattern node `t`, constrained through the edge from `s`.
  const bool forward = r.NextBounded(2) == 0;
  std::ostringstream script;
  VertexSet candidates;
  if (forward) {
    script << "R = SELECT t FROM (s:T0) -[:e0]-> (t:T1)";
    if (pred.kind != Pred::Kind::kNone) script << " WHERE " << pred.ToGsql("s");
    candidates = EvalChainPattern(model_,
                                  {CandOfType("T0", pred), CandOfType("T1", Pred{})},
                                  {"e0"}, {Direction::kOut}, 1);
  } else {
    script << "R = SELECT t FROM (t:T1) <-[:e0]- (s:T0)";
    if (pred.kind != Pred::Kind::kNone) script << " WHERE " << pred.ToGsql("s");
    candidates = EvalChainPattern(model_,
                                  {CandOfType("T1", Pred{}), CandOfType("T0", pred)},
                                  {"e0"}, {Direction::kIn}, 0);
  }
  script << " ORDER BY VECTOR_DIST(t.emb, $qv) LIMIT " << k << "; PRINT R;";
  QueryParams params{{"qv", qv}};
  QueryRun run;
  if (!RunSelect(script.str(), params, /*want_distances=*/true, &run)) return false;
  if (!CheckSoundness(script.str(), run, "T1", qv, &candidates)) return false;
  const std::vector<OracleHit> oracle = model_.ExactTopK(
      {{"T1", "emb"}}, metric_, qv, model_.vertices().size() + 1, &candidates);
  if (exact_answers()) {
    return CheckExactTopK(script.str(), run, oracle, k);
  }
  return CheckRecallTopK(script.str(), run, oracle, k);
}

bool FuzzCase::QueryVectorSearchFn(Rng& r, const std::vector<float>& qv) {
  const size_t k = 1 + r.NextBounded(8);
  QueryParams params{{"qv", qv}};
  QueryRun run;
  if (r.NextBounded(2) == 0) {
    // Variant A: filter by a vertex-set variable from a prior block.
    const std::string type = PickType(r);
    const Pred pred = RandPred(r);
    VertexSet candidates = CandOfType(type, pred);
    const std::string script =
        "Cand = SELECT s FROM (s:" + type + ") WHERE " + pred.ToGsql("s") +
        "; R = VectorSearch({" + type + ".emb}, $qv, " + std::to_string(k) +
        ", {filter: Cand, ef: 80, distanceMap: @@dm}); PRINT R; PRINT @@dm;";
    auto result = session_->Run(script, params);
    if (!result.ok()) return Fail("query-error", result.status().ToString(), script);
    if (result->prints.size() != 2) {
      return Fail("query-error", "expected two PRINT outputs", script);
    }
    run.vids = result->prints[0].vertices;
    run.distances = result->prints[1].distances;
    if (!CacheDiffVectorSearch(script, params, run)) return false;
    // VectorSearch's vertex-set-variable filter must behave as a hard
    // pre-filter: nothing outside Cand may appear.
    const VertexSet* cand_var = session_->GetVariable("Cand");
    if (cand_var == nullptr) return Fail("query-error", "Cand variable missing", script);
    for (VertexId vid : run.vids) {
      if (cand_var->count(vid) == 0) {
        return Fail("soundness-filter-violation",
                    "VectorSearch returned vid " + std::to_string(vid) +
                        " outside its filter variable",
                    script);
      }
    }
    if (!CheckSoundness(script, run, type, qv, &candidates)) return false;
    const std::vector<OracleHit> oracle = model_.ExactTopK(
        {{type, "emb"}}, metric_, qv, model_.vertices().size() + 1, &candidates);
    if (exact_answers()) return CheckExactTopK(script, run, oracle, k);
    return CheckRecallTopK(script, run, oracle, k);
  }
  // Variant B: multi-attribute search across both vertex types sharing the
  // embedding space (always the ANN path: no filter, no bitmap).
  const std::string script = "R = VectorSearch({T0.emb, T1.emb}, $qv, " +
                             std::to_string(k) +
                             ", {distanceMap: @@dm}); PRINT R; PRINT @@dm;";
  auto result = session_->Run(script, params);
  if (!result.ok()) return Fail("query-error", result.status().ToString(), script);
  if (result->prints.size() != 2) {
    return Fail("query-error", "expected two PRINT outputs", script);
  }
  run.vids = result->prints[0].vertices;
  run.distances = result->prints[1].distances;
  if (!CacheDiffVectorSearch(script, params, run)) return false;
  ++stats_.soundness_checks;
  for (VertexId vid : run.vids) {
    const GoldenVertex* v = model_.Get(vid);
    if (v == nullptr || v->embeddings.count("emb") == 0) {
      return Fail("soundness-dead-vertex",
                  "multi-attr VectorSearch returned dead/embedding-less vid " +
                      std::to_string(vid),
                  script);
    }
  }
  const std::vector<OracleHit> oracle =
      model_.ExactTopK({{"T0", "emb"}, {"T1", "emb"}}, metric_, qv,
                       model_.vertices().size() + 1, nullptr);
  return CheckRecallTopK(script, run, oracle, k);
}

bool FuzzCase::QuerySimilarityJoin(Rng& r) {
  const size_t k = 1 + r.NextBounded(8);
  const std::string script =
      "R = SELECT s, t FROM (s:T0) -[:e0]-> (t:T1)"
      " ORDER BY VECTOR_DIST(s.emb, t.emb) LIMIT " +
      std::to_string(k) + ";";
  auto result = session_->Run(script);
  if (!result.ok()) return Fail("query-error", result.status().ToString(), script);

  // Oracle: enumerate every live edge whose endpoints both carry the
  // embedding; the join is brute-force in the engine, so it must be exact.
  struct OraclePair {
    float d;
    VertexId s, t;
    bool operator<(const OraclePair& o) const {
      if (d != o.d) return d < o.d;
      if (s != o.s) return s < o.s;
      return t < o.t;
    }
  };
  std::vector<OraclePair> oracle;
  for (const GoldenEdge& e : model_.edges()) {
    const GoldenVertex* sv = model_.Get(e.src);
    const GoldenVertex* tv = model_.Get(e.dst);
    if (sv == nullptr || tv == nullptr) continue;
    auto se = sv->embeddings.find("emb");
    auto te = tv->embeddings.find("emb");
    if (se == sv->embeddings.end() || te == tv->embeddings.end()) continue;
    oracle.push_back(OraclePair{
        ComputeDistance(metric_, se->second.data(), te->second.data(), dim_),
        e.src, e.dst});
  }
  std::sort(oracle.begin(), oracle.end());
  if (oracle.size() > k) oracle.resize(k);

  std::vector<SelectResult::Pair> pairs = result->last_join_pairs;
  std::sort(pairs.begin(), pairs.end(),
            [](const SelectResult::Pair& a, const SelectResult::Pair& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              if (a.source != b.source) return a.source < b.source;
              return a.target < b.target;
            });
  ++stats_.exact_checks;
  if (pairs.size() != oracle.size()) {
    return Fail("oracle-join-mismatch",
                "join returned " + std::to_string(pairs.size()) +
                    " pairs, oracle expects " + std::to_string(oracle.size()),
                script);
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    const float tol = 1e-4f + 1e-3f * std::fabs(oracle[i].d);
    if (pairs[i].source != oracle[i].s || pairs[i].target != oracle[i].t ||
        std::fabs(pairs[i].distance - oracle[i].d) > tol) {
      return Fail("oracle-join-mismatch",
                  "pair " + std::to_string(i) + ": (" +
                      std::to_string(pairs[i].source) + ", " +
                      std::to_string(pairs[i].target) + ") vs oracle (" +
                      std::to_string(oracle[i].s) + ", " +
                      std::to_string(oracle[i].t) + ")",
                  script);
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Crash / recover
// ---------------------------------------------------------------------------

bool FuzzCase::DoCrash(Rng& r) {
  auto& injector = io::FaultInjector::Instance();
  const std::string snap_dir = dir_ + "/snap";

  // Sometimes leave a clean snapshot set behind, so recovery exercises
  // snapshot adoption + shorter WAL replay instead of full replay.
  if (r.NextBounded(3) == 0) {
    std::error_code ec;
    fs::create_directories(snap_dir, ec);
    Status s = db_->embeddings()->SaveIndexSnapshots(snap_dir, nullptr);
    if (!s.ok()) return Fail("snapshot-error", s.ToString());
    snapshot_saved_ = true;
  }

  // Arm one durability fault from the compiled-in catalog, then attempt a
  // few vertex-scoped mutations through it. A commit that fails inside the
  // fault window leaves its vertex in an *uncertain* state: either nothing
  // became durable (committed state survives) or the WAL record did (the
  // attempted state replays). Both are legal; anything else is a bug.
  const auto& catalog = io::FaultInjector::RegisteredFaults();
  const bool armed = r.NextBounded(10) < 7 && !catalog.empty();
  if (armed) {
    const io::RegisteredFault& fault = catalog[r.NextBounded(catalog.size())];
    io::FaultSpec spec;
    spec.kind = fault.kind;
    spec.after_bytes = std::string(fault.site) == "wal.append"
                           ? db_->store()->wal().appended_bytes() + r.NextBounded(64)
                           : r.NextBounded(48);
    injector.Arm(fault.site, spec);
    ++stats_.faults_armed;
  }

  std::vector<UncertainMutation> uncertain;
  std::set<VertexId> touched;
  const size_t attempts = 1 + r.NextBounded(3);
  for (size_t i = 0; i < attempts; ++i) {
    UncertainMutation u;
    const uint32_t kind = static_cast<uint32_t>(r.NextBounded(4));
    Transaction txn = db_->Begin();
    if (kind == 0) {
      // Fresh insert (with embedding).
      GoldenVertex v;
      v.type = PickType(r);
      v.attrs["a"] = static_cast<int64_t>(r.NextBounded(50));
      v.attrs["lang"] = std::string(kLangs[r.NextBounded(3)]);
      std::vector<float> emb = RandStoredVec(r);
      auto vid = txn.InsertVertex(v.type, {v.attrs["a"], v.attrs["lang"]});
      if (!vid.ok()) return Fail("insert-error", vid.status().ToString());
      Status s = txn.SetEmbedding(*vid, v.type, "emb", emb);
      if (!s.ok()) return Fail("insert-error", s.ToString());
      v.embeddings["emb"] = std::move(emb);
      u.vid = *vid;
      u.existed_before = false;
      u.after = v;
    } else {
      const std::string type = PickType(r);
      const VertexId vid = PickLive(r, type);
      // One uncertain mutation per vid per crash cycle; otherwise the
      // post-recovery state space explodes beyond before/after.
      const std::vector<float> emb = RandStoredVec(r);
      const int64_t a = static_cast<int64_t>(r.NextBounded(50));
      if (vid == kInvalidVertexId || touched.count(vid) > 0) continue;
      u.vid = vid;
      u.existed_before = true;
      u.before = *model_.Get(vid);
      u.after = u.before;
      if (kind == 1) {
        Status s = txn.SetAttr(vid, type, "a", Value(a));
        if (!s.ok()) return Fail("set-attr-error", s.ToString());
        u.after.attrs["a"] = a;
      } else if (kind == 2) {
        Status s = txn.SetEmbedding(vid, type, "emb", emb);
        if (!s.ok()) return Fail("set-emb-error", s.ToString());
        u.after.embeddings["emb"] = emb;
      } else {
        Status s = txn.DeleteVertex(vid);
        if (!s.ok()) return Fail("del-vertex-error", s.ToString());
        u.attempted_delete = true;
      }
    }
    touched.insert(u.vid);
    auto tid = txn.Commit();
    if (tid.ok()) {
      // The fault didn't fire (or wasn't armed): a normal committed write.
      if (u.attempted_delete) {
        model_.DeleteVertex(u.vid);
      } else {
        model_.InsertVertex(u.vid, u.after);
      }
      ++stats_.committed_txns;
    } else {
      if (!armed) return Fail("commit-failed", tid.status().ToString());
      uncertain.push_back(std::move(u));
      ++stats_.failed_commits;
    }
  }

  // Give the delta-save fault site a chance to fire mid-vacuum too.
  if (armed && r.NextBounded(2) == 0) {
    db_->embeddings()->RunDeltaMerge().status();  // failure is the point
  }

  // --- Crash ---
  session_.reset();
  db_.reset();
  injector.Reset();

  // Optionally make recovery itself run through a failing .load site;
  // recovery is best-effort there (WAL replay covers the gap), so it must
  // still succeed.
  std::string load_site;
  if (r.NextBounded(10) < 3) {
    for (const io::RegisteredFault& f : catalog) {
      const std::string site = f.site;
      if (site == "delta.load" || site == "snapshot.load") {
        if (load_site.empty() || r.NextBounded(2) == 0) load_site = site;
      }
    }
    if (!load_site.empty()) {
      injector.Arm(load_site, io::FaultSpec{io::FaultKind::kFailOpen, 0});
      ++stats_.faults_armed;
    }
  }

  db_ = std::make_unique<Database>(MakeDbOptions());
  Status schema_status = DefineSchema(db_.get());
  if (!schema_status.ok()) return Fail("schema-error", schema_status.ToString());
  Database::RecoveryOptions ropts;
  if (snapshot_saved_) ropts.snapshot_dir = snap_dir;
  auto report = db_->Recover(ropts);
  injector.Reset();
  if (!report.ok()) {
    return Fail("recovery-failed", report.status().ToString());
  }
  session_ = std::make_unique<GsqlSession>(db_.get());
  ++stats_.crash_recoveries;

  // --- Reconcile uncertain vertices against what actually recovered ---
  const Tid read_tid = db_->store()->visible_tid();
  auto matches = [&](VertexId vid, bool exists, const GoldenVertex& v) -> bool {
    if (db_->store()->IsVisible(vid, read_tid) != exists) return false;
    if (!exists) return true;
    for (const auto& [name, value] : v.attrs) {
      auto actual = db_->store()->GetAttr(vid, name, read_tid);
      if (!actual.ok() || !ValueEquals(*actual, value)) return false;
    }
    std::vector<float> buf(dim_);
    auto emb = v.embeddings.find("emb");
    const bool has =
        db_->embeddings()->GetEmbedding(v.type, "emb", vid, buf.data()).ok();
    if (has != (emb != v.embeddings.end())) return false;
    if (has && buf != emb->second) return false;
    return true;
  };
  for (const UncertainMutation& u : uncertain) {
    const bool before_ok =
        matches(u.vid, u.existed_before, u.before);
    const bool after_ok = u.attempted_delete
                              ? matches(u.vid, false, u.after)
                              : matches(u.vid, true, u.after);
    if (before_ok) {
      continue;  // the failed commit never became durable
    }
    if (after_ok) {
      // The WAL record was durable after all; fold the attempt into the
      // model so later oracle checks agree with the engine.
      if (u.attempted_delete) {
        model_.DeleteVertex(u.vid);
      } else {
        model_.InsertVertex(u.vid, u.after);
      }
      continue;
    }
    return Fail("recovery-divergence",
                "vid " + std::to_string(u.vid) +
                    " recovered to neither its committed nor its attempted state");
  }

  if (opts_.sq8 && !VerifySq8RecoveryStability(r)) return false;

  return VerifyModel("post-recovery");
}

bool FuzzCase::VerifySq8RecoveryStability(Rng& r) {
  // The recovered quantizer must act as a pure function of the adopted
  // state: the same query, asked twice, must rank the same code-ordered
  // candidate pool and rerank to the same answer, bit for bit — any drift
  // means the trailer params or the load-time re-encode are nondeterministic.
  // (Pre-crash answers are not comparable: recovery re-derives segment and
  // index structure from the WAL, which legitimately changes the approximate
  // candidate pool, so stability is asserted on the recovered database.)
  const std::vector<float> qv = RandVec(r);
  VectorSearchRequest request;
  request.attrs = {{"T0", "emb"}, {"T1", "emb"}};
  request.query = qv.data();
  request.k = 8;
  request.pool = nullptr;  // identical sequential execution on both runs
  auto first = db_->embeddings()->TopKSearch(request);
  auto second = db_->embeddings()->TopKSearch(request);
  if (!first.ok() || !second.ok()) {
    return Fail("sq8-recovered-search-error",
                "first: " + first.status().ToString() +
                    "; second: " + second.status().ToString());
  }
  ++stats_.sq8_stability_checks;
  if (first->hits.size() != second->hits.size() ||
      first->quant_segments != second->quant_segments ||
      first->reranked != second->reranked) {
    return Fail("sq8-recovery-instability",
                "recovered quantizer returned different rerank sets: " +
                    std::to_string(first->hits.size()) + " hits/" +
                    std::to_string(first->reranked) + " reranked vs " +
                    std::to_string(second->hits.size()) + "/" +
                    std::to_string(second->reranked));
  }
  for (size_t i = 0; i < first->hits.size(); ++i) {
    if (first->hits[i].label != second->hits[i].label ||
        first->hits[i].distance != second->hits[i].distance) {
      return Fail("sq8-recovery-instability",
                  "hit " + std::to_string(i) + " differs across identical "
                  "post-recovery queries: (" +
                      std::to_string(first->hits[i].label) + ", " +
                      std::to_string(first->hits[i].distance) + ") vs (" +
                      std::to_string(second->hits[i].label) + ", " +
                      std::to_string(second->hits[i].distance) + ")");
    }
  }
  return true;
}

bool FuzzCase::VerifyModel(const char* context) {
  const Tid read_tid = db_->store()->visible_tid();
  auto e0 = db_->schema()->GetEdgeType("e0");
  if (!e0.ok()) return Fail("schema-error", e0.status().ToString());
  for (const auto& [vid, v] : model_.vertices()) {
    if (!db_->store()->IsVisible(vid, read_tid)) {
      return Fail("model-divergence", std::string(context) + ": live vid " +
                                          std::to_string(vid) + " is not visible");
    }
    auto type_id = db_->store()->GetVertexType(vid);
    if (!type_id.ok() || db_->schema()->vertex_type(*type_id).name != v.type) {
      return Fail("model-divergence", std::string(context) + ": vid " +
                                          std::to_string(vid) + " type mismatch");
    }
    for (const auto& [name, value] : v.attrs) {
      auto actual = db_->store()->GetAttr(vid, name, read_tid);
      if (!actual.ok() || !ValueEquals(*actual, value)) {
        return Fail("model-divergence",
                    std::string(context) + ": vid " + std::to_string(vid) +
                        " attr '" + name + "' diverged (model " +
                        ValueToString(value) + ")");
      }
    }
    std::vector<float> buf(dim_);
    const bool has_emb =
        db_->embeddings()->GetEmbedding(v.type, "emb", vid, buf.data()).ok();
    auto emb = v.embeddings.find("emb");
    if (has_emb != (emb != v.embeddings.end())) {
      return Fail("model-divergence",
                  std::string(context) + ": vid " + std::to_string(vid) +
                      " embedding presence diverged");
    }
    if (has_emb && buf != emb->second) {
      return Fail("model-divergence",
                  std::string(context) + ": vid " + std::to_string(vid) +
                      " embedding bytes diverged");
    }
    if (v.type == "T0") {
      std::set<VertexId> actual;
      db_->store()->ForEachNeighbor(vid, (*e0)->id, Direction::kOut, read_tid,
                                    [&](VertexId peer) {
                                      if (db_->store()->IsVisible(peer, read_tid)) {
                                        actual.insert(peer);
                                      }
                                    });
      const std::vector<VertexId> expect = model_.Neighbors(vid, "e0", Direction::kOut);
      if (std::vector<VertexId>(actual.begin(), actual.end()) != expect) {
        return Fail("model-divergence",
                    std::string(context) + ": vid " + std::to_string(vid) +
                        " out-edge set diverged (" + std::to_string(actual.size()) +
                        " vs " + std::to_string(expect.size()) + ")");
      }
    }
  }
  for (VertexId vid : model_.tombstones()) {
    if (db_->store()->IsVisible(vid, read_tid)) {
      return Fail("deleted-vertex-visible",
                  std::string(context) + ": deleted vid " + std::to_string(vid) +
                      " is visible again");
    }
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

FuzzCaseResult RunFuzzCase(const FuzzOptions& options) {
  FuzzCase c(options);
  return c.Run();
}

std::vector<size_t> ShrinkFailingCase(const FuzzOptions& options, size_t max_runs) {
  size_t runs = 0;
  auto still_fails = [&](const std::vector<size_t>& skip) {
    if (runs >= max_runs) return false;
    ++runs;
    FuzzOptions o = options;
    o.skip = skip;
    o.verbose = false;
    return !RunFuzzCase(o).ok;
  };

  std::set<size_t> skip(options.skip.begin(), options.skip.end());
  // ddmin-lite over op indices: try removing aligned chunks, halving the
  // chunk size until single ops. The per-op sub-seeds make any subset of
  // the tape replay identically, so every probe is meaningful.
  for (size_t chunk = options.ops; chunk >= 1; chunk /= 2) {
    bool progress = true;
    while (progress && runs < max_runs) {
      progress = false;
      for (size_t start = 0; start < options.ops && runs < max_runs; start += chunk) {
        std::set<size_t> candidate = skip;
        bool grew = false;
        for (size_t i = start; i < std::min(options.ops, start + chunk); ++i) {
          grew |= candidate.insert(i).second;
        }
        if (!grew) continue;
        std::vector<size_t> candidate_vec(candidate.begin(), candidate.end());
        if (still_fails(candidate_vec)) {
          skip = std::move(candidate);
          progress = chunk > 1;  // single-op sweep needs only one pass
        }
      }
    }
    if (chunk == 1) break;
  }
  return std::vector<size_t>(skip.begin(), skip.end());
}

std::string ReproCommand(const FuzzOptions& options, const std::vector<size_t>& skip) {
  std::string cmd = "tools/tv_fuzz --seed=" + std::to_string(options.seed) +
                    " --ops=" + std::to_string(options.ops);
  if (options.with_faults) cmd += " --faults";
  if (!options.with_mpp) cmd += " --no-mpp";
  if (options.cache_diff) cmd += " --cache";
  if (options.sq8) cmd += " --sq8";
  if (!skip.empty()) cmd += " --skip=" + JoinIndices(skip);
  return cmd;
}

}  // namespace testing
}  // namespace tigervector

file(REMOVE_RECURSE
  "CMakeFiles/community_search.dir/community_search.cpp.o"
  "CMakeFiles/community_search.dir/community_search.cpp.o.d"
  "community_search"
  "community_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

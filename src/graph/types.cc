#include "graph/types.h"

namespace tigervector {

std::string ValueToString(const Value& v) {
  switch (v.index()) {
    case 0:
      return std::to_string(std::get<int64_t>(v));
    case 1:
      return std::to_string(std::get<double>(v));
    case 2:
      return "\"" + std::get<std::string>(v) + "\"";
    case 3:
      return std::get<bool>(v) ? "true" : "false";
  }
  return "?";
}

namespace {

// Promotes int to double when comparing mixed numerics.
bool AsDouble(const Value& v, double* out) {
  if (std::holds_alternative<int64_t>(v)) {
    *out = static_cast<double>(std::get<int64_t>(v));
    return true;
  }
  if (std::holds_alternative<double>(v)) {
    *out = std::get<double>(v);
    return true;
  }
  return false;
}

}  // namespace

bool ValueEquals(const Value& a, const Value& b) {
  if (a.index() == b.index()) return a == b;
  double da, db;
  if (AsDouble(a, &da) && AsDouble(b, &db)) return da == db;
  return false;
}

bool ValueLess(const Value& a, const Value& b) {
  if (a.index() == b.index()) return a < b;
  double da, db;
  if (AsDouble(a, &da) && AsDouble(b, &db)) return da < db;
  return false;
}

}  // namespace tigervector

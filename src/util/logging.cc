#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <thread>

namespace tigervector {

namespace {

int InitialLevel() {
  const char* env = std::getenv("TV_LOG_LEVEL");
  LogLevel level;
  if (env != nullptr && ParseLogLevel(env, &level)) {
    return static_cast<int>(level);
  }
  return static_cast<int>(LogLevel::kWarn);
}

std::atomic<int> g_level{InitialLevel()};

std::mutex& SinkMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// ISO-8601 UTC with microseconds, e.g. "2025-03-14T09:26:53.589793Z".
void AppendTimestamp(std::ostream& out) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%06ldZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<long>(micros));
  out << buf;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *out = LogLevel::kWarn;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    AppendTimestamp(stream_);
    stream_ << " [" << LevelName(level) << " tid="
            << std::hash<std::thread::id>()(std::this_thread::get_id()) % 100000
            << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(SinkMutex());
    std::cerr << stream_.str() << "\n";
  }
}

}  // namespace internal

}  // namespace tigervector

# Empty dependencies file for bench_tab34_hybrid.
# This may be replaced when dependencies are built.

// Ablation (Sec. 4.3 design): delta-store backlog vs search cost. Vector
// search combines the index snapshot with a brute-force scan over pending
// deltas, so an unbounded backlog would slow every query; the two-stage
// vacuum bounds it. This sweep measures query latency at increasing
// pending-delta counts, then after vacuuming.
#include "bench/bench_common.h"
#include "util/timer.h"

using namespace tigervector;
using namespace tigervector::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv);
  const size_t n = BaseN() / 2;
  const size_t nq = std::min<size_t>(QueryN(), 30);
  const size_t k = 10;
  VectorDataset dataset = MakeSiftLike(n, nq);
  VectorDataset extra = MakeSiftLike(n, 1, /*seed=*/333);
  auto instance = LoadTigerVector(dataset);

  auto measure = [&]() {
    Timer timer;
    for (size_t q = 0; q < nq; ++q) {
      VectorSearchRequest request;
      request.attrs = {{"Item", "emb"}};
      request.query = dataset.QueryVector(q);
      request.k = k;
      request.ef = 128;
      if (!instance.db->embeddings()->TopKSearch(request).ok()) std::abort();
    }
    return timer.ElapsedMillis() / nq;
  };

  PrintHeader("Ablation: pending-delta backlog vs search latency (" +
              std::to_string(n) + " indexed vectors)");
  PrintRow({"pending deltas", "latency ms"});
  PrintRow({"0 (vacuumed)", Fmt(measure(), 3)});

  size_t updated = 0;
  for (size_t backlog : {n / 100, n / 20, n / 5, n / 2}) {
    // Grow the backlog to `backlog` by updating more vectors.
    Transaction txn = instance.db->Begin();
    while (updated < backlog) {
      const size_t i = updated % n;
      std::vector<float> v(extra.BaseVector(i), extra.BaseVector(i) + extra.dim);
      if (!txn.SetEmbedding(instance.vids[i], "Item", "emb", std::move(v)).ok()) {
        std::abort();
      }
      ++updated;
    }
    if (!txn.Commit().ok()) std::abort();
    PrintRow({std::to_string(instance.db->embeddings()->TotalPendingDeltas()),
              Fmt(measure(), 3)});
  }

  Timer vac;
  if (!instance.db->Vacuum().ok()) std::abort();
  std::printf("\nvacuum folded the backlog in %.2fs;", vac.ElapsedSeconds());
  std::printf(" latency after vacuum: %.3f ms\n", measure());
  return 0;
}

# Empty compiler generated dependencies file for tv_bench_common.
# This may be replaced when dependencies are built.

#ifndef TIGERVECTOR_OBS_METRICS_H_
#define TIGERVECTOR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>

namespace tigervector::obs {

// Process-wide metrics substrate (metric naming convention:
// tv.<subsystem>.<name>, e.g. "tv.hnsw.distance_evals_total"). Counters and
// histograms are safe for concurrent updates from any thread; hot-path
// counters stripe their cells across cache lines so writers on different
// cores do not contend. All instrumentation compiles out when
// TIGERVECTOR_NO_METRICS is defined (the overhead baseline used by
// bench_micro_kernels).

// Monotonic counter. Add() hashes the calling thread onto one of kCells
// cache-line-sized cells; Value() sums them.
class Counter {
 public:
  static constexpr size_t kCells = 8;

  void Add(uint64_t n) {
    cells_[CellIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  void Reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  // One hash per thread, cached; threads spread across cells so concurrent
  // writers rarely share a cache line. Kept inline: Add() is on the
  // distance-evaluation hot path.
  static size_t CellIndex() {
    static thread_local const size_t index =
        std::hash<std::thread::id>()(std::this_thread::get_id()) % kCells;
    return index;
  }

  Cell cells_[kCells];
};

// Last-write-wins signed gauge.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket latency histogram: bucket i holds observations with
// value <= 2^i microseconds (the last bucket is +Inf). Covers 1us..~17min,
// which spans every latency this engine produces, at a 2x resolution that
// percentile interpolation smooths out.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 32;  // bucket 31 = +Inf

  void Observe(double seconds);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  // Total observed time in seconds.
  double Sum() const {
    return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Upper bound of bucket i in seconds (+Inf for the last bucket).
  static double BucketUpperBound(size_t i);

  // Quantile estimate in seconds (q in [0,1]), linearly interpolated within
  // the containing bucket. Returns 0 when empty.
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_nanos_{0};
};

// Name-keyed registry of counters/gauges/histograms, sharded by name hash so
// metric registration from many threads does not serialize. Metric objects
// live for the lifetime of the registry and their addresses are stable, so
// call sites cache the pointer (see TV_COUNTER_ADD below) and pay only the
// atomic update per event. ResetValues() zeroes every metric in place
// without invalidating cached pointers.
class MetricsRegistry {
 public:
  // The process-wide registry every TV_* macro and exporter uses.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates the named metric. Never returns null.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Prometheus text exposition format (dots in names become underscores).
  std::string RenderText() const;
  // JSON snapshot: {"counters": {...}, "gauges": {...}, "histograms":
  // {name: {count, sum, p50, p95, p99}}}.
  std::string RenderJson() const;

  // Zeroes every registered metric (tests, benches). Cached pointers from
  // the TV_* macros stay valid.
  void ResetValues();

 private:
  static constexpr size_t kNumShards = 16;
  struct Shard {
    mutable std::shared_mutex mu;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  Shard& ShardOf(const std::string& name);

  Shard shards_[kNumShards];
};

}  // namespace tigervector::obs

// Instrumentation macros. `name` must be a string literal: the metric
// pointer is resolved once per call site and cached in a function-local
// static, leaving one relaxed atomic op on the hot path.
#if defined(TIGERVECTOR_NO_METRICS)

#define TV_COUNTER_ADD(name, n) ((void)0)
#define TV_COUNTER_INC(name) ((void)0)
#define TV_GAUGE_SET(name, v) ((void)0)
#define TV_HISTOGRAM_OBSERVE(name, seconds) ((void)0)

#else

#define TV_COUNTER_ADD(name, n)                                           \
  do {                                                                    \
    static ::tigervector::obs::Counter* _tv_counter =                     \
        ::tigervector::obs::MetricsRegistry::Global().GetCounter(name);   \
    _tv_counter->Add(n);                                                  \
  } while (0)

#define TV_COUNTER_INC(name) TV_COUNTER_ADD(name, 1)

#define TV_GAUGE_SET(name, v)                                             \
  do {                                                                    \
    static ::tigervector::obs::Gauge* _tv_gauge =                         \
        ::tigervector::obs::MetricsRegistry::Global().GetGauge(name);     \
    _tv_gauge->Set(v);                                                    \
  } while (0)

#define TV_HISTOGRAM_OBSERVE(name, seconds)                               \
  do {                                                                    \
    static ::tigervector::obs::Histogram* _tv_hist =                      \
        ::tigervector::obs::MetricsRegistry::Global().GetHistogram(name); \
    _tv_hist->Observe(seconds);                                           \
  } while (0)

#endif  // TIGERVECTOR_NO_METRICS

#endif  // TIGERVECTOR_OBS_METRICS_H_

#include "query/session.h"

#include <algorithm>
#include <cctype>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/parser.h"
#include "util/cancel.h"
#include "util/timer.h"

namespace tigervector {

namespace {

// Session-level statement prefixes (not part of the GSQL grammar):
//   PROFILE <script>          -- execute, return the stage breakdown
//   EXPLAIN <script>          -- plan only, nothing executes
//   EXPLAIN ANALYZE <script>  -- execute, annotate plan nodes with actuals
enum class QueryPrefix { kNone, kProfile, kExplain, kExplainAnalyze };

// Case-insensitive comparison of script[start, end) against a keyword.
bool WordIs(const std::string& script, size_t start, size_t end, const char* keyword) {
  const size_t len = std::char_traits<char>::length(keyword);
  if (end - start != len) return false;
  for (size_t i = 0; i < len; ++i) {
    if (std::toupper(static_cast<unsigned char>(script[start + i])) != keyword[i]) {
      return false;
    }
  }
  return true;
}

QueryPrefix StripQueryPrefix(const std::string& script, std::string* body) {
  *body = script;
  const size_t start = script.find_first_not_of(" \t\r\n");
  if (start == std::string::npos) return QueryPrefix::kNone;
  size_t end = start;
  while (end < script.size() &&
         std::isalpha(static_cast<unsigned char>(script[end]))) {
    ++end;
  }
  if (WordIs(script, start, end, "PROFILE")) {
    *body = script.substr(end);
    return QueryPrefix::kProfile;
  }
  if (WordIs(script, start, end, "EXPLAIN")) {
    const size_t start2 = script.find_first_not_of(" \t\r\n", end);
    if (start2 != std::string::npos) {
      size_t end2 = start2;
      while (end2 < script.size() &&
             std::isalpha(static_cast<unsigned char>(script[end2]))) {
        ++end2;
      }
      if (WordIs(script, start2, end2, "ANALYZE")) {
        *body = script.substr(end2);
        return QueryPrefix::kExplainAnalyze;
      }
    }
    *body = script.substr(end);
    return QueryPrefix::kExplain;
  }
  return QueryPrefix::kNone;
}

// Classifies a failed run for the tv.query.errors_total{kind} counter.
const char* ErrorKind(const Status& status) {
  if (status.code() == StatusCode::kParseError) return "parse";
  if (status.code() == StatusCode::kDeadlineExceeded) return "deadline";
  if (status.code() == StatusCode::kUnavailable) return "cancelled";
  // A dimension mismatch is its own class: the most common client bug
  // (wrong embedding model) and worth tracking separately.
  if (status.message().find("dimension") != std::string::npos) return "dimension";
  if (status.code() == StatusCode::kSemanticError) return "semantic";
  // Distributed-search failures: a logical server failed mid-query or a
  // segment lost every replica.
  if (status.message().find("injected fault: server") != std::string::npos ||
      status.message().find("no live replica") != std::string::npos) {
    return "mpp_partial";
  }
  return "execution";
}

}  // namespace

Status GsqlSession::ExecuteStatements(const std::vector<Statement>& statements,
                                      const QueryParams& params, bool execute,
                                      ScriptResult* result) {
  const bool explaining = result->explained;
  for (const Statement& statement : statements) {
    // Deadline gate between statements: a multi-statement script stops at
    // the first statement boundary after the request's token fires.
    TV_RETURN_NOT_OK(CancelCheckStatus());
    if (const auto* s = std::get_if<CreateVertexStmt>(&statement)) {
      if (!execute) continue;
      auto r = db_->schema()->CreateVertexType(s->name, s->attrs);
      if (!r.ok()) return r.status();
    } else if (const auto* s = std::get_if<CreateEdgeStmt>(&statement)) {
      if (!execute) continue;
      auto r = db_->schema()->CreateEdgeType(s->name, s->from, s->to, s->directed);
      if (!r.ok()) return r.status();
    } else if (const auto* s = std::get_if<CreateEmbeddingSpaceStmt>(&statement)) {
      if (!execute) continue;
      TV_RETURN_NOT_OK(db_->schema()->CreateEmbeddingSpace(s->name, s->info));
    } else if (const auto* s = std::get_if<AlterAddEmbeddingStmt>(&statement)) {
      if (!execute) continue;
      if (s->in_space) {
        TV_RETURN_NOT_OK(
            db_->schema()->AddEmbeddingAttrInSpace(s->vertex_type, s->attr, s->space));
      } else {
        TV_RETURN_NOT_OK(db_->schema()->AddEmbeddingAttr(s->vertex_type, s->attr,
                                                         s->info));
      }
    } else if (const auto* s = std::get_if<SelectStmt>(&statement)) {
      PlanDescription plan_desc;
      auto r = executor_.ExecuteSelect(*s, params, vars_,
                                       explaining ? &plan_desc : nullptr, execute);
      if (!r.ok()) return r.status();
      if (explaining) {
        if (!result->explain.empty()) result->explain += "\n";
        result->explain += plan_desc.Render();
      }
      result->last_plan = r->plan;
      if (!execute) continue;
      if (r->is_join) {
        result->last_join_pairs = r->pairs;
        // A join's pair list is not a vertex set; store the union of the
        // endpoints if an output variable was requested.
        if (!s->out_var.empty()) {
          VertexSet endpoints;
          for (const auto& p : r->pairs) {
            endpoints.insert(p.source);
            endpoints.insert(p.target);
          }
          vars_[s->out_var] = std::move(endpoints);
        }
      } else if (!s->out_var.empty()) {
        vars_[s->out_var] = r->vertices;
        if (!r->distances.empty()) {
          dist_maps_["@@" + s->out_var + "_dist"] = r->distances;
        }
      }
    } else if (const auto* s = std::get_if<VectorSearchStmt>(&statement)) {
      std::unordered_map<VertexId, float> dist_map;
      PlanDescription plan_desc;
      auto r = executor_.ExecuteVectorSearch(
          *s, params, vars_, s->distance_map.empty() ? nullptr : &dist_map,
          explaining ? &plan_desc : nullptr, execute);
      if (!r.ok()) return r.status();
      if (explaining) {
        if (!result->explain.empty()) result->explain += "\n";
        result->explain += plan_desc.Render();
      }
      if (!execute) continue;
      if (!s->out_var.empty()) vars_[s->out_var] = std::move(r).value();
      if (!s->distance_map.empty()) dist_maps_[s->distance_map] = std::move(dist_map);
    } else if (const auto* s = std::get_if<LoadingJobStmt>(&statement)) {
      if (!execute) continue;
      // Loading jobs run eagerly on creation in this reproduction.
      LoadingJob job(s->name, s->graph);
      for (const LoadStep& step : s->steps) job.AddStep(step);
      auto report = job.Run(db_);
      if (!report.ok()) return report.status();
      result->last_load_report = std::move(report).value();
    } else if (const auto* s = std::get_if<SetOpStmt>(&statement)) {
      if (!execute) continue;
      auto lhs = vars_.find(s->lhs);
      auto rhs = vars_.find(s->rhs);
      if (lhs == vars_.end() || rhs == vars_.end()) {
        return Status::SemanticError("set operation on unknown variable");
      }
      VertexSet out;
      switch (s->op) {
        case SetOpStmt::Op::kUnion:
          out = lhs->second;
          out.insert(rhs->second.begin(), rhs->second.end());
          break;
        case SetOpStmt::Op::kIntersect:
          for (VertexId v : lhs->second) {
            if (rhs->second.count(v) > 0) out.insert(v);
          }
          break;
        case SetOpStmt::Op::kMinus:
          for (VertexId v : lhs->second) {
            if (rhs->second.count(v) == 0) out.insert(v);
          }
          break;
      }
      vars_[s->out_var] = std::move(out);
    } else if (const auto* s = std::get_if<PrintStmt>(&statement)) {
      if (!execute) continue;
      ScriptResult::Printed printed;
      printed.name = s->name;
      auto var_it = vars_.find(s->name);
      if (var_it != vars_.end()) {
        printed.vertices.assign(var_it->second.begin(), var_it->second.end());
        std::sort(printed.vertices.begin(), printed.vertices.end());
      } else {
        auto map_it = dist_maps_.find(s->name);
        if (map_it == dist_maps_.end()) {
          return Status::SemanticError("PRINT: unknown name '" + s->name + "'");
        }
        printed.is_distance_map = true;
        printed.distances = map_it->second;
      }
      result->prints.push_back(std::move(printed));
    }
  }
  return Status::OK();
}

Result<ScriptResult> GsqlSession::Run(const std::string& script,
                                      const QueryParams& params) {
  // A session's variable map and executor are stateful and unsynchronized:
  // one script at a time. Concurrent callers (a misbehaving server client,
  // a test) are rejected with a typed error instead of racing.
  std::unique_lock<std::mutex> run_lock(run_mu_, std::try_to_lock);
  if (!run_lock.owns_lock()) {
    return Status::Aborted(
        "session busy: GsqlSession::Run is not reentrant and another "
        "statement is still executing on this session");
  }
  std::string body;
  const QueryPrefix prefix = StripQueryPrefix(script, &body);
  const bool profiled = prefix == QueryPrefix::kProfile;
  const bool execute = prefix != QueryPrefix::kExplain;

  // The trace is always on: every TV_SPAN hit during the run (on this
  // thread and, via fan-out propagation, on pool workers) lands here, and
  // the completed trace is filed with the flight recorder whether the run
  // succeeded or failed.
  Timer total_timer;
  obs::QueryTrace trace;
  obs::ScopedTraceActivation activation(&trace);

  ScriptResult result;
  result.explained = prefix == QueryPrefix::kExplain ||
                     prefix == QueryPrefix::kExplainAnalyze;
  result.analyzed = prefix == QueryPrefix::kExplainAnalyze;

  Timer parse_timer;
  auto statements = ParseScript(body);
  obs::RecordSpanMicros("query.parse", parse_timer.ElapsedMicros());
  // PROFILE measures the work a query actually does; serving it from the
  // query cache would profile a lookup instead of the search. Force a
  // bypass for the profiled run and restore the session setting after.
  const bool saved_bypass = executor_.cache_bypass();
  if (profiled) executor_.set_cache_bypass(true);
  Status status = statements.ok()
                      ? ExecuteStatements(*statements, params, execute, &result)
                      : statements.status();
  if (profiled) executor_.set_cache_bypass(saved_bypass);

#if !defined(TIGERVECTOR_NO_METRICS)
  if (!status.ok()) {
    obs::MetricsRegistry::Global()
        .GetCounter(std::string("tv.query.errors_total{kind=") + ErrorKind(status) +
                    "}")
        ->Increment();
  }
  {
    obs::QueryRecord record;
    record.query = script;
    record.ok = status.ok();
    record.status = status.ok() ? "OK" : status.ToString();
    record.total_micros = total_timer.ElapsedMicros();
    record.spans = trace.Spans();
    record.counters = trace.Counters();
    result.flight_id = obs::FlightRecorder::Global().Record(std::move(record));
  }
#endif  // TIGERVECTOR_NO_METRICS

  if (!status.ok()) return status;
  if (profiled) {
    result.profiled = true;
    result.profile_stage_micros = trace.StageMicros();
    result.profile_counters = trace.Counters();
    result.profile = trace.Render();
  }
  return result;
}

}  // namespace tigervector

file(REMOVE_RECURSE
  "CMakeFiles/bench_tab34_hybrid.dir/bench_tab34_hybrid.cc.o"
  "CMakeFiles/bench_tab34_hybrid.dir/bench_tab34_hybrid.cc.o.d"
  "bench_tab34_hybrid"
  "bench_tab34_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab34_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

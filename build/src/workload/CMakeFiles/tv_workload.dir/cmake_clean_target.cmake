file(REMOVE_RECURSE
  "libtv_workload.a"
)

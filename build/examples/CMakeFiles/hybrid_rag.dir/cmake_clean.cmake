file(REMOVE_RECURSE
  "CMakeFiles/hybrid_rag.dir/hybrid_rag.cpp.o"
  "CMakeFiles/hybrid_rag.dir/hybrid_rag.cpp.o.d"
  "hybrid_rag"
  "hybrid_rag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_rag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#ifndef TIGERVECTOR_HNSW_FLAT_INDEX_H_
#define TIGERVECTOR_HNSW_FLAT_INDEX_H_

#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "hnsw/vector_index.h"
#include "simd/sq8.h"

namespace tigervector {

// Exact (linear-scan) vector index implementing the VectorIndex contract.
// Selected with INDEX = FLAT in the embedding metadata; useful for small
// segments, as a correctness oracle, and as the simplest demonstration
// that additional index types slot into TigerVector (paper Sec. 4.4).
class FlatIndex : public VectorIndex {
 public:
  FlatIndex(size_t dim, Metric metric, bool sq8 = false)
      : dim_(dim), metric_(metric), sq8_(sq8) {}

  Status AddPoint(uint64_t label, const float* vec) override;
  Status UpdateItems(const std::vector<VectorIndexUpdate>& items,
                     ThreadPool* pool) override;
  Status MarkDeleted(uint64_t label) override;
  bool Contains(uint64_t label) const override;
  bool IsDeleted(uint64_t label) const override;
  Status GetEmbedding(uint64_t label, float* out) const override;

  using VectorIndex::BruteForceSearch;
  using VectorIndex::RangeSearch;
  using VectorIndex::TopKSearch;

  std::vector<SearchHit> TopKSearch(const float* query, size_t k, size_t ef,
                                    const FilterView& filter) const override;
  std::vector<SearchHit> RangeSearch(const float* query, float threshold,
                                     size_t initial_k, size_t ef,
                                     const FilterView& filter) const override;
  std::vector<SearchHit> BruteForceSearch(const float* query, size_t k,
                                          const FilterView& filter) const override;

  size_t size() const override;
  size_t dim() const override { return dim_; }
  Metric metric() const override { return metric_; }
  std::vector<uint64_t> Labels() const override;
  std::string index_type() const override { return "FLAT"; }

  // (Re)trains the SQ8 tier from the stored rows; everything happens under
  // the index's exclusive lock, so unlike HNSW there are no racy encodes.
  Status TrainQuantization() override;
  bool quant_active() const override;

 private:
  struct Slot {
    bool deleted = false;
    size_t offset = 0;  // into data_
  };

  size_t dim_;
  Metric metric_;
  bool sq8_;
  mutable std::shared_mutex mu_;
  std::unordered_map<uint64_t, Slot> slots_;
  std::vector<float> data_;
  std::vector<uint64_t> order_;  // label per stored row
  size_t live_ = 0;

  // SQ8 tier (maintained only once trained): codes_ parallels data_ byte
  // for float, norms_ holds one code self-dot per stored row.
  bool quant_trained_ = false;
  simd::Sq8Params qparams_;
  std::vector<int8_t> codes_;
  std::vector<int64_t> norms_;
};

}  // namespace tigervector

#endif  // TIGERVECTOR_HNSW_FLAT_INDEX_H_

#include "algo/louvain.h"

#include <algorithm>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace tigervector {

namespace {

// Dense undirected weighted graph used across coarsening levels.
struct DenseGraph {
  size_t n = 0;
  std::vector<std::vector<std::pair<int, double>>> adj;  // (neighbor, weight)
  std::vector<double> self_loops;
  double total_weight = 0;  // sum of edge weights (each edge once)
};

// One level of Louvain local moves. Returns the community assignment and
// whether anything improved.
bool LocalMove(const DenseGraph& g, std::vector<int>* community,
               const LouvainOptions& options, Rng* rng) {
  const size_t n = g.n;
  std::vector<double> degree(n, 0);
  for (size_t u = 0; u < n; ++u) {
    degree[u] = 2 * g.self_loops[u];
    for (const auto& [v, w] : g.adj[u]) degree[u] += w;
  }
  const double m2 = std::max(1e-12, 2 * g.total_weight);

  std::vector<double> community_degree(n, 0);
  for (size_t u = 0; u < n; ++u) community_degree[(*community)[u]] += degree[u];

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng->NextBounded(i)]);
  }

  bool improved_any = false;
  for (int pass = 0; pass < options.max_passes; ++pass) {
    bool improved = false;
    for (size_t idx = 0; idx < n; ++idx) {
      const size_t u = order[idx];
      const int old_c = (*community)[u];
      // Weight from u into each neighboring community.
      std::unordered_map<int, double> links;
      for (const auto& [v, w] : g.adj[u]) links[(*community)[v]] += w;
      community_degree[old_c] -= degree[u];
      double best_gain = 0;
      int best_c = old_c;
      const double base = links.count(old_c) ? links[old_c] : 0;
      for (const auto& [c, w] : links) {
        // Standard modularity gain relative to staying isolated.
        const double gain =
            (w - base) - degree[u] * (community_degree[c] -
                                      community_degree[old_c]) / m2;
        if (gain > best_gain + options.min_gain) {
          best_gain = gain;
          best_c = c;
        }
      }
      (*community)[u] = best_c;
      community_degree[best_c] += degree[u];
      if (best_c != old_c) improved = true;
    }
    if (!improved) break;
    improved_any = true;
  }
  return improved_any;
}

// Collapses communities into super-nodes.
DenseGraph Aggregate(const DenseGraph& g, const std::vector<int>& community,
                     std::vector<int>* renumber) {
  renumber->assign(g.n, -1);
  int next = 0;
  for (size_t u = 0; u < g.n; ++u) {
    int& r = (*renumber)[community[u]];
    if (r < 0) r = next++;
  }
  DenseGraph out;
  out.n = next;
  out.adj.resize(next);
  out.self_loops.assign(next, 0);
  std::vector<std::unordered_map<int, double>> agg(next);
  for (size_t u = 0; u < g.n; ++u) {
    const int cu = (*renumber)[community[u]];
    out.self_loops[cu] += g.self_loops[u];
    for (const auto& [v, w] : g.adj[u]) {
      const int cv = (*renumber)[community[v]];
      if (cu == cv) {
        out.self_loops[cu] += w / 2;  // each undirected edge appears twice
      } else {
        agg[cu][cv] += w;
      }
    }
  }
  for (int c = 0; c < next; ++c) {
    out.adj[c].assign(agg[c].begin(), agg[c].end());
  }
  out.total_weight = g.total_weight;
  return out;
}

double Modularity(const DenseGraph& g, const std::vector<int>& community) {
  const double m2 = std::max(1e-12, 2 * g.total_weight);
  std::vector<double> degree(g.n, 0), internal(g.n, 0);
  for (size_t u = 0; u < g.n; ++u) {
    degree[u] = 2 * g.self_loops[u];
    for (const auto& [v, w] : g.adj[u]) degree[u] += w;
  }
  std::unordered_map<int, double> comm_degree, comm_internal;
  for (size_t u = 0; u < g.n; ++u) {
    comm_degree[community[u]] += degree[u];
    comm_internal[community[u]] += 2 * g.self_loops[u];
    for (const auto& [v, w] : g.adj[u]) {
      if (community[v] == community[u]) comm_internal[community[u]] += w;
    }
  }
  double q = 0;
  for (const auto& [c, din] : comm_internal) {
    const double dtot = comm_degree[c];
    q += din / m2 - (dtot / m2) * (dtot / m2);
  }
  return q;
}

}  // namespace

LouvainResult RunLouvain(const GraphStore& store, const std::string& vertex_type,
                         const std::string& edge_type, LouvainOptions options) {
  TV_SPAN("algo.louvain");
  TV_COUNTER_INC("tv.algo.louvain_runs_total");
  LouvainResult result;
  auto vt = store.schema()->GetVertexType(vertex_type);
  auto et = store.schema()->GetEdgeType(edge_type);
  if (!vt.ok() || !et.ok()) return result;
  const Tid read_tid = store.visible_tid();

  // Build the dense induced subgraph.
  std::vector<VertexId> vids;
  store.ForEachVertexOfType((*vt)->id, read_tid, nullptr,
                            [&](VertexId vid) { vids.push_back(vid); });
  std::unordered_map<VertexId, int> dense;
  dense.reserve(vids.size());
  for (size_t i = 0; i < vids.size(); ++i) dense[vids[i]] = static_cast<int>(i);

  DenseGraph g;
  g.n = vids.size();
  g.adj.resize(g.n);
  g.self_loops.assign(g.n, 0);
  for (size_t u = 0; u < vids.size(); ++u) {
    store.ForEachNeighbor(vids[u], (*et)->id, Direction::kAny, read_tid,
                          [&](VertexId peer) {
                            auto it = dense.find(peer);
                            if (it == dense.end()) return;
                            g.adj[u].push_back({it->second, 1.0});
                          });
  }
  // Symmetrize (directed edges become undirected) and count weight.
  for (size_t u = 0; u < g.n; ++u) {
    for (const auto& [v, w] : g.adj[u]) {
      (void)w;
      auto& back = g.adj[v];
      if (std::none_of(back.begin(), back.end(),
                       [u](const auto& p) { return p.first == static_cast<int>(u); })) {
        back.push_back({static_cast<int>(u), 1.0});
      }
    }
  }
  for (size_t u = 0; u < g.n; ++u) g.total_weight += g.adj[u].size();
  g.total_weight /= 2;

  // Multi-level Louvain.
  Rng rng(options.seed);
  std::vector<int> mapping(g.n);
  std::iota(mapping.begin(), mapping.end(), 0);  // vertex -> current community
  DenseGraph level = g;
  size_t levels_run = 0;
  for (int l = 0; l < options.max_levels; ++l) {
    ++levels_run;
    std::vector<int> community(level.n);
    std::iota(community.begin(), community.end(), 0);
    const bool improved = LocalMove(level, &community, options, &rng);
    std::vector<int> renumber;
    DenseGraph coarse = Aggregate(level, community, &renumber);
    for (int& m : mapping) m = renumber[community[m]];
    if (!improved || coarse.n == level.n) break;
    level = std::move(coarse);
  }

  result.num_communities = 0;
  std::unordered_map<int, int> final_ids;
  for (size_t u = 0; u < vids.size(); ++u) {
    auto [it, inserted] = final_ids.try_emplace(mapping[u], result.num_communities);
    if (inserted) ++result.num_communities;
    result.community[vids[u]] = it->second;
  }
  // Modularity of the final assignment on the original graph.
  std::vector<int> flat(g.n);
  for (size_t u = 0; u < g.n; ++u) flat[u] = result.community[vids[u]];
  result.modularity = Modularity(g, flat);
  TV_COUNTER_ADD("tv.algo.louvain_levels_total", levels_run);
  TV_COUNTER_ADD("tv.algo.louvain_communities_total",
                 static_cast<uint64_t>(result.num_communities));
  return result;
}

}  // namespace tigervector

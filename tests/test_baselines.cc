#include <gtest/gtest.h>

#include <set>

#include "baselines/competitors.h"
#include "util/thread_pool.h"
#include "workload/datasets.h"

namespace tigervector {
namespace {

class BaselineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new VectorDataset(MakeSiftLike(3000, 20, /*seed=*/71));
    ComputeGroundTruth(dataset_, 10, nullptr);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  double MeasureRecall(const VectorBaseline& baseline, size_t k, size_t ef) {
    double total = 0;
    for (size_t q = 0; q < dataset_->num_queries; ++q) {
      auto hits = baseline.TopK(dataset_->QueryVector(q), k, ef);
      std::vector<uint64_t> ids;
      for (const auto& h : hits) ids.push_back(h.label);
      total += RecallAtK(*dataset_, q, ids, k);
    }
    return total / dataset_->num_queries;
  }

  static VectorDataset* dataset_;
};

VectorDataset* BaselineFixture::dataset_ = nullptr;

TEST_F(BaselineFixture, ExactBaselineMatchesGroundTruth) {
  ExactBaseline exact(dataset_->dim, dataset_->metric);
  ASSERT_TRUE(exact.Load(dataset_->base.data(), dataset_->num_base,
                         dataset_->dim).ok());
  ASSERT_TRUE(exact.BuildIndex(nullptr).ok());
  EXPECT_DOUBLE_EQ(MeasureRecall(exact, 10, 0), 1.0);
}

TEST_F(BaselineFixture, MilvusLikeReachesHighRecallWithTuning) {
  ThreadPool pool(2);
  MilvusLikeBaseline milvus(dataset_->dim, dataset_->metric, /*segment_capacity=*/1024,
                            16, 128, &pool);
  ASSERT_TRUE(
      milvus.Load(dataset_->base.data(), dataset_->num_base, dataset_->dim).ok());
  ASSERT_TRUE(milvus.BuildIndex(&pool).ok());
  EXPECT_EQ(milvus.num_segments(), 3u);
  EXPECT_TRUE(milvus.supports_ef_tuning());
  const double low = MeasureRecall(milvus, 10, 16);
  const double high = MeasureRecall(milvus, 10, 200);
  EXPECT_GT(high, 0.95);
  EXPECT_GE(high, low);
}

TEST_F(BaselineFixture, Neo4jLikeHasFixedOperatingPoint) {
  Neo4jLikeBaseline neo4j(dataset_->dim, dataset_->metric);
  ASSERT_TRUE(
      neo4j.Load(dataset_->base.data(), dataset_->num_base, dataset_->dim).ok());
  ASSERT_TRUE(neo4j.BuildIndex(nullptr).ok());
  EXPECT_FALSE(neo4j.supports_ef_tuning());
  // ef is pinned: requesting a huge ef must not change the result.
  auto a = neo4j.TopK(dataset_->QueryVector(0), 10, 10);
  auto b = neo4j.TopK(dataset_->QueryVector(0), 10, 500);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].label, b[i].label);
}

TEST_F(BaselineFixture, Neo4jRecallBelowTunedMilvus) {
  ThreadPool pool(2);
  Neo4jLikeBaseline neo4j(dataset_->dim, dataset_->metric);
  ASSERT_TRUE(
      neo4j.Load(dataset_->base.data(), dataset_->num_base, dataset_->dim).ok());
  ASSERT_TRUE(neo4j.BuildIndex(nullptr).ok());
  MilvusLikeBaseline milvus(dataset_->dim, dataset_->metric, 1024, 16, 128, &pool);
  ASSERT_TRUE(
      milvus.Load(dataset_->base.data(), dataset_->num_base, dataset_->dim).ok());
  ASSERT_TRUE(milvus.BuildIndex(&pool).ok());
  EXPECT_LT(MeasureRecall(neo4j, 10, 0), MeasureRecall(milvus, 10, 200));
}

TEST_F(BaselineFixture, NeptuneLikeHighRecallNoTuning) {
  ThreadPool pool(2);
  NeptuneLikeBaseline neptune(dataset_->dim, dataset_->metric);
  ASSERT_TRUE(
      neptune.Load(dataset_->base.data(), dataset_->num_base, dataset_->dim).ok());
  ASSERT_TRUE(neptune.BuildIndex(&pool).ok());
  EXPECT_FALSE(neptune.supports_ef_tuning());
  EXPECT_FALSE(neptune.atomic_updates());  // paper Sec. 2.3
  EXPECT_GT(MeasureRecall(neptune, 10, 0), 0.95);
}

TEST_F(BaselineFixture, SpinWorkBurnsMeasurableTime) {
  // Not timing-sensitive: just verify it is callable with large counts.
  SpinWork(0);
  SpinWork(1000);
  SUCCEED();
}

TEST_F(BaselineFixture, LoadRejectsWrongDim) {
  Neo4jLikeBaseline neo4j(dataset_->dim, dataset_->metric);
  EXPECT_FALSE(neo4j.Load(dataset_->base.data(), 10, dataset_->dim + 1).ok());
}

}  // namespace
}  // namespace tigervector

# Empty dependencies file for test_access_control.
# This may be replaced when dependencies are built.

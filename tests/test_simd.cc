#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "simd/distance.h"
#include "util/rng.h"

namespace tigervector {
namespace {

float NaiveL2(const std::vector<float>& a, const std::vector<float>& b) {
  float s = 0;
  for (size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return s;
}

float NaiveIp(const std::vector<float>& a, const std::vector<float>& b) {
  float s = 0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

std::vector<float> RandomVec(Rng* rng, size_t dim, float scale = 1.0f) {
  std::vector<float> v(dim);
  for (float& x : v) x = (rng->NextFloat() - 0.5f) * scale;
  return v;
}

// Parameterized over dimension, including non-multiples of the unroll
// factor, to exercise the tail loops.
class DistanceDimTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DistanceDimTest, L2MatchesNaive) {
  Rng rng(11);
  const size_t dim = GetParam();
  for (int it = 0; it < 10; ++it) {
    auto a = RandomVec(&rng, dim, 4.0f);
    auto b = RandomVec(&rng, dim, 4.0f);
    EXPECT_NEAR(L2SquaredDistance(a.data(), b.data(), dim), NaiveL2(a, b),
                1e-3 * (1 + NaiveL2(a, b)));
  }
}

TEST_P(DistanceDimTest, IpMatchesNaive) {
  Rng rng(12);
  const size_t dim = GetParam();
  for (int it = 0; it < 10; ++it) {
    auto a = RandomVec(&rng, dim, 2.0f);
    auto b = RandomVec(&rng, dim, 2.0f);
    EXPECT_NEAR(InnerProduct(a.data(), b.data(), dim), NaiveIp(a, b),
                1e-3 * (1 + std::fabs(NaiveIp(a, b))));
  }
}

TEST_P(DistanceDimTest, CosineSelfDistanceIsZero) {
  Rng rng(13);
  const size_t dim = GetParam();
  auto a = RandomVec(&rng, dim, 3.0f);
  EXPECT_NEAR(CosineDistance(a.data(), a.data(), dim), 0.0f, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Dims, DistanceDimTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 64,
                                           96, 128, 200, 1024));

TEST(DistanceTest, L2Identity) {
  std::vector<float> a = {1, 2, 3, 4, 5};
  EXPECT_FLOAT_EQ(L2SquaredDistance(a.data(), a.data(), 5), 0.0f);
}

TEST(DistanceTest, L2Symmetry) {
  Rng rng(14);
  auto a = RandomVec(&rng, 33);
  auto b = RandomVec(&rng, 33);
  EXPECT_FLOAT_EQ(L2SquaredDistance(a.data(), b.data(), 33),
                  L2SquaredDistance(b.data(), a.data(), 33));
}

TEST(DistanceTest, CosineOppositeVectorsIsTwo) {
  std::vector<float> a = {1, 0, 0, 0};
  std::vector<float> b = {-1, 0, 0, 0};
  EXPECT_NEAR(CosineDistance(a.data(), b.data(), 4), 2.0f, 1e-6);
}

TEST(DistanceTest, CosineOrthogonalIsOne) {
  std::vector<float> a = {1, 0};
  std::vector<float> b = {0, 1};
  EXPECT_NEAR(CosineDistance(a.data(), b.data(), 2), 1.0f, 1e-6);
}

TEST(DistanceTest, CosineZeroVectorIsOne) {
  std::vector<float> a = {0, 0, 0};
  std::vector<float> b = {1, 2, 3};
  EXPECT_FLOAT_EQ(CosineDistance(a.data(), b.data(), 3), 1.0f);
}

TEST(DistanceTest, ComputeDistanceDispatch) {
  std::vector<float> a = {1, 2};
  std::vector<float> b = {3, 4};
  EXPECT_FLOAT_EQ(ComputeDistance(Metric::kL2, a.data(), b.data(), 2),
                  L2SquaredDistance(a.data(), b.data(), 2));
  EXPECT_FLOAT_EQ(ComputeDistance(Metric::kIp, a.data(), b.data(), 2),
                  1.0f - InnerProduct(a.data(), b.data(), 2));
  EXPECT_FLOAT_EQ(ComputeDistance(Metric::kCosine, a.data(), b.data(), 2),
                  CosineDistance(a.data(), b.data(), 2));
}

TEST(DistanceTest, NormalizeProducesUnitVector) {
  Rng rng(15);
  auto a = RandomVec(&rng, 40, 10.0f);
  NormalizeInPlace(a.data(), 40);
  EXPECT_NEAR(L2Norm(a.data(), 40), 1.0f, 1e-5);
}

TEST(DistanceTest, NormalizeZeroVectorIsNoop) {
  std::vector<float> a(8, 0.0f);
  NormalizeInPlace(a.data(), 8);
  for (float v : a) EXPECT_EQ(v, 0.0f);
}

TEST(DistanceTest, MetricNames) {
  EXPECT_STREQ(MetricName(Metric::kL2), "L2");
  EXPECT_STREQ(MetricName(Metric::kIp), "IP");
  EXPECT_STREQ(MetricName(Metric::kCosine), "COSINE");
}

TEST(DistanceTest, IpDistanceOrdersbyAlignment) {
  // For IP-as-distance (1 - dot), better-aligned vectors must be closer.
  std::vector<float> q = {1, 0};
  std::vector<float> near = {0.9f, 0.1f};
  std::vector<float> far = {0.1f, 0.9f};
  EXPECT_LT(ComputeDistance(Metric::kIp, q.data(), near.data(), 2),
            ComputeDistance(Metric::kIp, q.data(), far.data(), 2));
}

}  // namespace
}  // namespace tigervector

#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>

namespace tigervector::obs {

namespace {
thread_local QueryTrace* g_current_trace = nullptr;
thread_local uint32_t g_span_depth = 0;
}  // namespace

uint32_t ThreadSlot() {
  static std::atomic<uint32_t> next_slot{0};
  thread_local const uint32_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) + 1;
  return slot;
}

void QueryTrace::RecordSpan(const char* name, uint32_t depth, double micros) {
  // Legacy duration-only entry point: place the span as ending "now".
  const double end_micros =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                origin_)
          .count();
  RecordSpanAt(name, depth, std::max(0.0, end_micros - micros), micros);
}

void QueryTrace::RecordSpanAt(const char* name, uint32_t depth, double start_micros,
                              double micros) {
  const uint32_t tid = ThreadSlot();
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(Span{name, depth, micros, start_micros, tid});
}

void QueryTrace::AddCounter(const char* name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

std::vector<QueryTrace::Span> QueryTrace::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::map<std::string, double> QueryTrace::StageMicros() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const Span& s : spans_) out[s.name] += s.micros;
  return out;
}

std::map<std::string, uint64_t> QueryTrace::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::string QueryTrace::Render() const {
  std::map<std::string, double> micros;
  std::map<std::string, size_t> calls;
  std::map<std::string, uint64_t> counters;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Span& s : spans_) {
      micros[s.name] += s.micros;
      ++calls[s.name];
    }
    counters = counters_;
  }
  std::ostringstream out;
  out << "stage                              total_ms     calls\n";
  for (const auto& [name, us] : micros) {
    char line[128];
    std::snprintf(line, sizeof(line), "%-34s %9.3f %9zu\n", name.c_str(), us / 1e3,
                  calls[name]);
    out << line;
  }
  for (const auto& [name, value] : counters) {
    char line[128];
    std::snprintf(line, sizeof(line), "%-34s %9llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out << line;
  }
  return out.str();
}

void QueryTrace::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  counters_.clear();
}

QueryTrace* CurrentTrace() { return g_current_trace; }

ScopedTraceActivation::ScopedTraceActivation(QueryTrace* trace)
    : prev_(g_current_trace), prev_depth_(g_span_depth) {
  if (trace != nullptr) {
    g_current_trace = trace;
    // Spans recorded on a worker thread start a fresh depth chain; the
    // per-span thread slot keeps concurrent workers' chains attributable.
    if (trace != prev_) g_span_depth = 0;
  }
}

ScopedTraceActivation::~ScopedTraceActivation() {
  g_current_trace = prev_;
  g_span_depth = prev_depth_;
}

ScopedSpan::ScopedSpan(const char* name) : name_(name), trace_(g_current_trace) {
  if (trace_ != nullptr) {
    depth_ = g_span_depth++;
    start_ = std::chrono::steady_clock::now();
  }
}

ScopedSpan::~ScopedSpan() {
  if (trace_ == nullptr) return;
  --g_span_depth;
  const auto end = std::chrono::steady_clock::now();
  const double micros =
      std::chrono::duration<double, std::micro>(end - start_).count();
  const double start_micros =
      std::chrono::duration<double, std::micro>(start_ - trace_->origin()).count();
  trace_->RecordSpanAt(name_, depth_, std::max(0.0, start_micros), micros);
}

void RecordSpanMicros(const char* name, double micros) {
  QueryTrace* trace = g_current_trace;
  if (trace == nullptr) return;
  trace->RecordSpan(name, g_span_depth, micros);
}

}  // namespace tigervector::obs

// Figure 7 reproduction: throughput (QPS) vs recall@100 on SIFT-like and
// Deep-like datasets, 16 client threads. TigerVector and the Milvus model
// sweep ef; Neo4j and Neptune models have no tuning knob and contribute a
// single operating point each (as in the paper).
#include "baselines/competitors.h"
#include "bench/bench_common.h"
#include "util/thread_pool.h"

using namespace tigervector;
using namespace tigervector::bench;

namespace {

struct BaselinePoint {
  double recall;
  double qps;
};

BaselinePoint MeasureBaseline(const VectorBaseline& baseline,
                              const VectorDataset& dataset, size_t k, size_t ef,
                              size_t threads, size_t queries_per_thread) {
  RecallMeter meter;
  for (size_t q = 0; q < dataset.num_queries; ++q) {
    meter.Add(HitsRecall(dataset, q, baseline.TopK(dataset.QueryVector(q), k, ef), k));
  }
  auto run = RunClosedLoop(threads, queries_per_thread, [&](size_t t, size_t i) {
    baseline.TopK(dataset.QueryVector((t * 131 + i) % dataset.num_queries), k, ef);
  });
  return {meter.Mean(), run.qps};
}

void RunDataset(const VectorDataset& dataset, size_t k) {
  PrintHeader("Figure 7: throughput vs recall on " + dataset.name + " (k=" +
              std::to_string(k) + ", " + std::to_string(ClientThreads()) +
              " client threads)");
  PrintRow({"system", "ef", "recall", "QPS"});

  const size_t threads = ClientThreads();
  const size_t qpt = std::max<size_t>(2, 128 / threads);

  // TigerVector: ef sweep.
  auto instance = LoadTigerVector(dataset);
  for (size_t ef : {16u, 32u, 64u, 128u, 256u, 400u}) {
    auto p = MeasureTigerVector(dataset, instance, k, ef, threads, qpt);
    PrintRow({"TigerVector", std::to_string(ef), Fmt(p.recall, 4), Fmt(p.qps, 1)});
  }

  ThreadPool pool(4);
  // Milvus model: ef sweep.
  MilvusLikeBaseline milvus(dataset.dim, dataset.metric, 8192, 16, 128, nullptr);
  if (!milvus.Load(dataset.base.data(), dataset.num_base, dataset.dim).ok() ||
      !milvus.BuildIndex(&pool).ok()) {
    std::abort();
  }
  for (size_t ef : {16u, 32u, 64u, 128u, 256u, 400u}) {
    auto p = MeasureBaseline(milvus, dataset, k, ef, threads, qpt);
    PrintRow({"Milvus-like", std::to_string(ef), Fmt(p.recall, 4), Fmt(p.qps, 1)});
  }

  // Neo4j model: single point, no tuning.
  Neo4jLikeBaseline neo4j(dataset.dim, dataset.metric);
  if (!neo4j.Load(dataset.base.data(), dataset.num_base, dataset.dim).ok() ||
      !neo4j.BuildIndex(nullptr).ok()) {
    std::abort();
  }
  auto np = MeasureBaseline(neo4j, dataset, k, /*ef=*/0, threads, qpt);
  PrintRow({"Neo4j-like", "fixed", Fmt(np.recall, 4), Fmt(np.qps, 1)});

  // Neptune model: single point, pinned high accuracy.
  NeptuneLikeBaseline neptune(dataset.dim, dataset.metric);
  if (!neptune.Load(dataset.base.data(), dataset.num_base, dataset.dim).ok() ||
      !neptune.BuildIndex(&pool).ok()) {
    std::abort();
  }
  auto ap = MeasureBaseline(neptune, dataset, k, /*ef=*/0, threads, qpt);
  PrintRow({"Neptune-like", "fixed", Fmt(ap.recall, 4), Fmt(ap.qps, 1)});
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(argc, argv);
  const size_t n = BaseN();
  const size_t nq = QueryN();
  const size_t k = 10;

  VectorDataset sift = MakeSiftLike(n, nq);
  ComputeGroundTruth(&sift, k, nullptr);
  RunDataset(sift, k);

  VectorDataset deep = MakeDeepLike(n, nq);
  ComputeGroundTruth(&deep, k, nullptr);
  RunDataset(deep, k);
  return 0;
}

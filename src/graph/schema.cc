#include "graph/schema.h"

namespace tigervector {

int VertexTypeDef::AttrIndex(const std::string& attr_name) const {
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i].name == attr_name) return static_cast<int>(i);
  }
  return -1;
}

const EmbeddingAttrDef* VertexTypeDef::FindEmbeddingAttr(
    const std::string& attr_name) const {
  for (const auto& e : embedding_attrs) {
    if (e.name == attr_name) return &e;
  }
  return nullptr;
}

Result<VertexTypeId> Schema::CreateVertexType(const std::string& name,
                                              std::vector<AttrDef> attrs) {
  if (vertex_type_by_name_.count(name) > 0) {
    return Status::AlreadyExists("vertex type " + name);
  }
  for (size_t i = 0; i < attrs.size(); ++i) {
    for (size_t j = i + 1; j < attrs.size(); ++j) {
      if (attrs[i].name == attrs[j].name) {
        return Status::InvalidArgument("duplicate attribute " + attrs[i].name +
                                       " on vertex type " + name);
      }
    }
  }
  VertexTypeDef def;
  def.id = static_cast<VertexTypeId>(vertex_types_.size());
  def.name = name;
  def.attrs = std::move(attrs);
  vertex_types_.push_back(std::move(def));
  vertex_type_by_name_[name] = vertex_types_.back().id;
  return vertex_types_.back().id;
}

Result<EdgeTypeId> Schema::CreateEdgeType(const std::string& name,
                                          const std::string& from_type,
                                          const std::string& to_type, bool directed) {
  if (edge_type_by_name_.count(name) > 0) {
    return Status::AlreadyExists("edge type " + name);
  }
  auto from = GetVertexType(from_type);
  if (!from.ok()) return from.status();
  auto to = GetVertexType(to_type);
  if (!to.ok()) return to.status();
  EdgeTypeDef def;
  def.id = static_cast<EdgeTypeId>(edge_types_.size());
  def.name = name;
  def.from_type = (*from)->id;
  def.to_type = (*to)->id;
  def.directed = directed;
  edge_types_.push_back(def);
  edge_type_by_name_[name] = def.id;
  return def.id;
}

Status Schema::CreateEmbeddingSpace(const std::string& name,
                                    const EmbeddingTypeInfo& info) {
  if (embedding_spaces_.count(name) > 0) {
    return Status::AlreadyExists("embedding space " + name);
  }
  if (info.dimension == 0) {
    return Status::InvalidArgument("embedding space " + name + " has dimension 0");
  }
  embedding_spaces_[name] = info;
  return Status::OK();
}

Status Schema::AddEmbeddingAttr(const std::string& vertex_type,
                                const std::string& attr_name,
                                const EmbeddingTypeInfo& info) {
  auto vt = GetVertexType(vertex_type);
  if (!vt.ok()) return vt.status();
  if (info.dimension == 0) {
    return Status::InvalidArgument("embedding attribute " + attr_name +
                                   " has dimension 0");
  }
  VertexTypeDef& def = vertex_types_[(*vt)->id];
  if (def.FindEmbeddingAttr(attr_name) != nullptr || def.AttrIndex(attr_name) >= 0) {
    return Status::AlreadyExists("attribute " + attr_name + " on " + vertex_type);
  }
  def.embedding_attrs.push_back(EmbeddingAttrDef{attr_name, info, ""});
  return Status::OK();
}

Status Schema::AddEmbeddingAttrInSpace(const std::string& vertex_type,
                                       const std::string& attr_name,
                                       const std::string& space_name) {
  auto space = GetEmbeddingSpace(space_name);
  if (!space.ok()) return space.status();
  auto vt = GetVertexType(vertex_type);
  if (!vt.ok()) return vt.status();
  VertexTypeDef& def = vertex_types_[(*vt)->id];
  if (def.FindEmbeddingAttr(attr_name) != nullptr || def.AttrIndex(attr_name) >= 0) {
    return Status::AlreadyExists("attribute " + attr_name + " on " + vertex_type);
  }
  def.embedding_attrs.push_back(EmbeddingAttrDef{attr_name, **space, space_name});
  return Status::OK();
}

Result<const VertexTypeDef*> Schema::GetVertexType(const std::string& name) const {
  auto it = vertex_type_by_name_.find(name);
  if (it == vertex_type_by_name_.end()) {
    return Status::NotFound("vertex type " + name);
  }
  return &vertex_types_[it->second];
}

Result<const EdgeTypeDef*> Schema::GetEdgeType(const std::string& name) const {
  auto it = edge_type_by_name_.find(name);
  if (it == edge_type_by_name_.end()) {
    return Status::NotFound("edge type " + name);
  }
  return &edge_types_[it->second];
}

Result<const EmbeddingTypeInfo*> Schema::GetEmbeddingSpace(
    const std::string& name) const {
  auto it = embedding_spaces_.find(name);
  if (it == embedding_spaces_.end()) {
    return Status::NotFound("embedding space " + name);
  }
  return &it->second;
}

}  // namespace tigervector

file(REMOVE_RECURSE
  "libtv_bench_common.a"
)

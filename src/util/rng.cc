#include "util/rng.h"

#include <cmath>

namespace tigervector {

float Rng::NextGaussian() {
  // Box-Muller; discard the second value to keep the generator stateless
  // beyond its 64-bit counter.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-12) u1 = 1e-12;
  return static_cast<float>(std::sqrt(-2.0 * std::log(u1)) *
                            std::cos(2.0 * 3.14159265358979323846 * u2));
}

}  // namespace tigervector

#ifndef TIGERVECTOR_CACHE_QUERY_CACHE_H_
#define TIGERVECTOR_CACHE_QUERY_CACHE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/bitmap.h"

namespace tigervector {
namespace cache {

// --- 128-bit fingerprints -------------------------------------------------
//
// Cache keys are built from fingerprints of query structure (predicate
// text, parameter values, query vectors, candidate sets). 128 bits keeps
// the accidental-collision probability negligible across any realistic
// workload; the MVCC version components of each key are stored exactly, so
// staleness can never hide behind a hash collision.

struct Fingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const Fingerprint& o) const { return hi == o.hi && lo == o.lo; }
  bool operator!=(const Fingerprint& o) const { return !(*this == o); }
};

// splitmix64 finalizer: a cheap full-avalanche 64-bit mixer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Fingerprints an arbitrary byte string (length-salted, order-dependent).
Fingerprint FingerprintBytes(const void* data, size_t len);

inline Fingerprint FingerprintString(const std::string& s) {
  return FingerprintBytes(s.data(), s.size());
}

// Folds one more 64-bit component into a fingerprint (order-dependent).
inline Fingerprint CombineFingerprint(Fingerprint a, uint64_t v) {
  const uint64_t m = Mix64(v);
  return Fingerprint{Mix64(a.hi ^ m), Mix64(a.lo + (m ^ 0xc2b2ae3d27d4eb4fULL))};
}

inline Fingerprint CombineFingerprints(Fingerprint a, const Fingerprint& b) {
  a = CombineFingerprint(a, b.hi);
  return CombineFingerprint(a, b.lo);
}

// Order-independent fingerprint of an unordered id container (e.g. a
// VertexSet candidate filter): per-id mixes are folded with commutative
// accumulators so iteration order cannot change the key. Sum/xor alone
// would make the fold a linear map over the per-id mixes (collisions
// reduce to solving a small linear system rather than inverting the
// mixer), so a fourth accumulator rotates each mix by an amount derived
// from the id itself — the data-dependent rotation breaks linearity while
// staying commutative.
template <typename Container>
Fingerprint FingerprintIdSetUnordered(const Container& ids) {
  uint64_t sum1 = 0, xor1 = 0, sum2 = 0, rot = 0;
  uint64_t n = 0;
  for (const auto& id : ids) {
    const uint64_t v = static_cast<uint64_t>(id);
    const uint64_t a = Mix64(v + 0x9e3779b97f4a7c15ULL);
    const uint64_t b = Mix64(v ^ 0xc2b2ae3d27d4eb4fULL);
    const unsigned r = static_cast<unsigned>(b & 63);
    sum1 += a;
    xor1 ^= a;
    sum2 += b;
    rot += (a << r) | (a >> ((64 - r) & 63));
    ++n;
  }
  Fingerprint fp;
  fp.hi = Mix64(sum1 + Mix64(xor1 ^ n)) ^ Mix64(rot);
  fp.lo = Mix64(sum2 ^ Mix64(n + 0xa0761d6478bd642fULL)) + Mix64(rot ^ n);
  return fp;
}

// --- cache keys -----------------------------------------------------------

// 256-bit key: a 128-bit content fingerprint plus two exact 64-bit MVCC
// components. The version words are compared exactly (not hashed), so a
// stale entry can only be returned if the fingerprint itself collides.
struct CacheKey {
  uint64_t w[4] = {0, 0, 0, 0};

  bool operator==(const CacheKey& o) const {
    return w[0] == o.w[0] && w[1] == o.w[1] && w[2] == o.w[2] && w[3] == o.w[3];
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& k) const {
    uint64_t h = Mix64(k.w[0]);
    h = Mix64(h ^ k.w[1]);
    h = Mix64(h + k.w[2]);
    h = Mix64(h ^ k.w[3]);
    return static_cast<size_t>(h);
  }
};

// Bitmap tier: (predicate fingerprint, graph segment id, segment version).
inline CacheKey BitmapKey(const Fingerprint& predicate_fp, uint64_t segment_id,
                          uint64_t segment_version) {
  return CacheKey{{predicate_fp.hi, predicate_fp.lo, segment_id, segment_version}};
}

// Top-k tier: (request fingerprint = attrs/query/k/ef, filter fingerprint,
// commit horizon read_tid, embedding structure version).
inline CacheKey TopKKey(const Fingerprint& request_fp, const Fingerprint& filter_fp,
                        uint64_t read_tid, uint64_t structure_version) {
  const Fingerprint f = CombineFingerprints(request_fp, filter_fp);
  return CacheKey{{f.hi, f.lo, read_tid, structure_version}};
}

// Per-lookup outcome, surfaced as `cache: hit|miss|bypass` in EXPLAIN
// ANALYZE node actuals.
enum class Outcome { kHit, kMiss, kBypass };

inline const char* OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kHit:
      return "hit";
    case Outcome::kMiss:
      return "miss";
    case Outcome::kBypass:
      return "bypass";
  }
  return "bypass";
}

// --- lock-sharded LRU -----------------------------------------------------

// A capacity-bounded (in bytes) LRU map sharded by key hash. Each shard has
// its own mutex, intrusive LRU list, and byte budget of capacity/shards;
// eviction is per shard from the LRU tail. Values are cheap to copy
// (shared_ptr in both tiers).
template <typename Value>
class ShardedLruCache {
 public:
  ShardedLruCache(size_t capacity_bytes, size_t num_shards)
      : num_shards_(num_shards == 0 ? 1 : num_shards),
        shards_(new Shard[num_shards == 0 ? 1 : num_shards]),
        per_shard_capacity_(
            std::max<size_t>(1, capacity_bytes / (num_shards == 0 ? 1 : num_shards))) {}

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  // Copies the value out on hit (refreshing LRU recency) and returns true.
  bool Lookup(const CacheKey& key, Value* out) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.map.find(key);
    if (it == s.map.end()) return false;
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    *out = it->second->value;
    return true;
  }

  // Inserts (or replaces) an entry charged `bytes` against the shard
  // budget, evicting LRU entries as needed. Returns the number of entries
  // evicted. An entry larger than a whole shard is not admitted.
  size_t Insert(const CacheKey& key, Value value, size_t bytes) {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    // Reject an oversized entry before touching any existing entry for the
    // key: a replacement that cannot be admitted must not silently drop
    // the (still valid — keys are content-addressed) value it would have
    // replaced.
    if (bytes > per_shard_capacity_) return 0;
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      s.bytes -= it->second->bytes;
      s.lru.erase(it->second);
      s.map.erase(it);
    }
    size_t evicted = 0;
    while (s.bytes + bytes > per_shard_capacity_ && !s.lru.empty()) {
      const Entry& tail = s.lru.back();
      s.bytes -= tail.bytes;
      s.map.erase(tail.key);
      s.lru.pop_back();
      ++evicted;
    }
    s.lru.push_front(Entry{key, std::move(value), bytes});
    s.map[key] = s.lru.begin();
    s.bytes += bytes;
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    return evicted;
  }

  void Clear() {
    for (size_t i = 0; i < num_shards_; ++i) {
      Shard& s = shards_[i];
      std::lock_guard<std::mutex> lock(s.mu);
      s.lru.clear();
      s.map.clear();
      s.bytes = 0;
    }
  }

  size_t entries() const {
    size_t n = 0;
    for (size_t i = 0; i < num_shards_; ++i) {
      std::lock_guard<std::mutex> lock(shards_[i].mu);
      n += shards_[i].map.size();
    }
    return n;
  }

  size_t bytes() const {
    size_t n = 0;
    for (size_t i = 0; i < num_shards_; ++i) {
      std::lock_guard<std::mutex> lock(shards_[i].mu);
      n += shards_[i].bytes;
    }
    return n;
  }

  uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }
  size_t capacity_bytes() const { return per_shard_capacity_ * num_shards_; }

 private:
  struct Entry {
    CacheKey key;
    Value value;
    size_t bytes;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<CacheKey, typename std::list<Entry>::iterator, CacheKeyHash> map;
    size_t bytes = 0;
  };

  Shard& ShardFor(const CacheKey& key) {
    return shards_[CacheKeyHash{}(key) % num_shards_];
  }

  size_t num_shards_;
  std::unique_ptr<Shard[]> shards_;
  size_t per_shard_capacity_;
  std::atomic<uint64_t> evictions_{0};
};

// --- the two-tier query cache ---------------------------------------------

// Owned by a Database instance. Tier 1 memoizes per-segment predicate
// bitmaps produced while building pre-filter candidate sets; tier 2
// memoizes whole top-k answers for repeated RAG queries. Invalidation is
// implicit: every key embeds the MVCC version of the state it was computed
// from (segment version / commit horizon / index structure version), so a
// mutation simply makes old entries unreachable and LRU pressure reclaims
// them — there are no invalidation walks.
class QueryCache {
 public:
  struct Options {
    size_t bitmap_capacity_bytes = 16u << 20;
    size_t topk_capacity_bytes = 16u << 20;
    size_t shards = 8;
    // Initial state; the TV_CACHE environment variable (off/0/false or
    // on/1/true) overrides it at construction.
    bool enabled = true;
  };

  // A cached top-k answer plus the result statistics EXPLAIN ANALYZE
  // reports. Hits are (distance, global vid) in ascending merge order.
  struct TopKEntry {
    std::vector<std::pair<float, uint64_t>> hits;
    size_t segments_searched = 0;
    size_t bruteforce_segments = 0;
    size_t delta_candidates = 0;
    size_t quant_segments = 0;  // so hit-path EXPLAIN ANALYZE stays faithful
    size_t reranked = 0;
  };

  using BitmapPtr = std::shared_ptr<const Bitmap>;
  using TopKPtr = std::shared_ptr<const TopKEntry>;

  QueryCache() : QueryCache(Options{}) {}
  explicit QueryCache(Options options);

  // Runtime toggle (shell \cache on|off, fuzz differential legs). Disabling
  // retains entries; lookups and inserts become no-ops counted as bypasses.
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_release); }

  // Tier 1 — predicate bitmaps (nullptr = miss or bypass).
  BitmapPtr LookupBitmap(const CacheKey& key);
  void InsertBitmap(const CacheKey& key, BitmapPtr bitmap);

  // Tier 2 — top-k results (nullptr = miss or bypass).
  TopKPtr LookupTopK(const CacheKey& key);
  void InsertTopK(const CacheKey& key, TopKPtr entry);

  void Clear();

  struct TierStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t bypasses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
    size_t capacity_bytes = 0;
  };
  TierStats bitmap_stats() const;
  TierStats topk_stats() const;

  // Human-readable stats block for the shell's \cache command.
  std::string RenderStats() const;

 private:
  Options options_;
  std::atomic<bool> enabled_{true};
  ShardedLruCache<BitmapPtr> bitmaps_;
  ShardedLruCache<TopKPtr> topk_;
  std::atomic<uint64_t> bitmap_hits_{0}, bitmap_misses_{0}, bitmap_bypasses_{0};
  std::atomic<uint64_t> topk_hits_{0}, topk_misses_{0}, topk_bypasses_{0};
};

}  // namespace cache
}  // namespace tigervector

#endif  // TIGERVECTOR_CACHE_QUERY_CACHE_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "graph/transaction.h"
#include "query/session.h"
#include "hnsw/flat_index.h"
#include "hnsw/hnsw_index.h"
#include "hnsw/ivf_index.h"
#include "simd/sq8.h"
#include "util/rng.h"
#include "workload/datasets.h"

namespace tigervector {
namespace {

std::vector<int8_t> RandomCodes(Rng* rng, size_t dim) {
  std::vector<int8_t> v(dim);
  for (int8_t& c : v) {
    c = static_cast<int8_t>(static_cast<int64_t>(rng->NextBounded(255)) - 127);
  }
  return v;
}

std::vector<float> RandomVec(Rng* rng, size_t dim, float scale = 1.0f) {
  std::vector<float> v(dim);
  for (float& x : v) x = (rng->NextFloat() - 0.5f) * scale;
  return v;
}

std::vector<simd::IsaLevel> SupportedLevels() {
  std::vector<simd::IsaLevel> levels = {simd::IsaLevel::kScalar};
  if (simd::IsaSupported(simd::IsaLevel::kAvx2)) {
    levels.push_back(simd::IsaLevel::kAvx2);
  }
  if (simd::IsaSupported(simd::IsaLevel::kAvx512)) {
    levels.push_back(simd::IsaLevel::kAvx512);
  }
  return levels;
}

// ---------------------------------------------------------------------------
// Kernel ISA parity. The SQ8 kernels are pure integer arithmetic, so every
// dispatch level must agree with scalar BIT-EXACTLY — no tolerance model.
// ---------------------------------------------------------------------------

class Sq8ParityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(Sq8ParityTest, AllLevelsMatchScalarExactly) {
  const size_t dim = GetParam();
  const simd::Sq8KernelTable* scalar = simd::Sq8KernelsFor(simd::IsaLevel::kScalar);
  ASSERT_NE(scalar, nullptr);
  Rng rng(201);
  for (simd::IsaLevel level : SupportedLevels()) {
    SCOPED_TRACE(simd::IsaName(level));
    const simd::Sq8KernelTable* t = simd::Sq8KernelsFor(level);
    ASSERT_NE(t, nullptr);
    for (int it = 0; it < 8; ++it) {
      auto a = RandomCodes(&rng, dim);
      auto b = RandomCodes(&rng, dim);
      EXPECT_EQ(t->l2(a.data(), b.data(), dim), scalar->l2(a.data(), b.data(), dim));
      EXPECT_EQ(t->dot(a.data(), b.data(), dim),
                scalar->dot(a.data(), b.data(), dim));
    }
  }
}

TEST_P(Sq8ParityTest, SaturatedCodesDoNotOverflow) {
  // Worst-case magnitude inputs: every element at +/-127. The per-element
  // products (16129) and squared deltas (64516) must accumulate exactly in
  // the widened integer paths of every level.
  const size_t dim = GetParam();
  std::vector<int8_t> pos(dim, 127);
  std::vector<int8_t> neg(dim, -127);
  const int64_t d = static_cast<int64_t>(dim);
  for (simd::IsaLevel level : SupportedLevels()) {
    SCOPED_TRACE(simd::IsaName(level));
    const simd::Sq8KernelTable* t = simd::Sq8KernelsFor(level);
    EXPECT_EQ(t->l2(pos.data(), neg.data(), dim), d * 254 * 254);
    EXPECT_EQ(t->l2(pos.data(), pos.data(), dim), 0);
    EXPECT_EQ(t->dot(pos.data(), pos.data(), dim), d * 127 * 127);
    EXPECT_EQ(t->dot(pos.data(), neg.data(), dim), -d * 127 * 127);
  }
}

TEST_P(Sq8ParityTest, AllZeroCodes) {
  const size_t dim = GetParam();
  std::vector<int8_t> zero(dim, 0);
  Rng rng(202);
  auto b = RandomCodes(&rng, dim);
  const simd::Sq8KernelTable* scalar = simd::Sq8KernelsFor(simd::IsaLevel::kScalar);
  for (simd::IsaLevel level : SupportedLevels()) {
    SCOPED_TRACE(simd::IsaName(level));
    const simd::Sq8KernelTable* t = simd::Sq8KernelsFor(level);
    EXPECT_EQ(t->dot(zero.data(), b.data(), dim), 0);
    EXPECT_EQ(t->l2(zero.data(), b.data(), dim),
              scalar->l2(zero.data(), b.data(), dim));
  }
}

TEST_P(Sq8ParityTest, UnalignedBasePointers) {
  // int8 loads are 1-byte aligned by nature, but the vector paths load 32
  // bytes at a time: offset both operands one byte into the buffer.
  const size_t dim = GetParam();
  Rng rng(203);
  auto abuf = RandomCodes(&rng, dim + 1);
  auto bbuf = RandomCodes(&rng, dim + 1);
  const int8_t* a = abuf.data() + 1;
  const int8_t* b = bbuf.data() + 1;
  const simd::Sq8KernelTable* scalar = simd::Sq8KernelsFor(simd::IsaLevel::kScalar);
  const int64_t l2_ref = scalar->l2(a, b, dim);
  const int64_t dot_ref = scalar->dot(a, b, dim);
  for (simd::IsaLevel level : SupportedLevels()) {
    SCOPED_TRACE(simd::IsaName(level));
    const simd::Sq8KernelTable* t = simd::Sq8KernelsFor(level);
    EXPECT_EQ(t->l2(a, b, dim), l2_ref);
    EXPECT_EQ(t->dot(a, b, dim), dot_ref);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, Sq8ParityTest,
                         ::testing::Values(1, 3, 17, 100, 768, 1031));

// ---------------------------------------------------------------------------
// Quantizer training / encode / decode.
// ---------------------------------------------------------------------------

TEST(Sq8TrainerTest, NoRowsYieldsInvalidParams) {
  simd::Sq8Trainer trainer(8);
  EXPECT_FALSE(trainer.Finish().valid());
}

TEST(Sq8TrainerTest, AllZeroDataYieldsZeroScaleAndZeroCodes) {
  const size_t dim = 5;
  simd::Sq8Trainer trainer(dim);
  std::vector<float> zero(dim, 0.0f);
  trainer.Observe(zero.data());
  trainer.Observe(zero.data());
  simd::Sq8Params params = trainer.Finish();
  ASSERT_TRUE(params.valid());
  EXPECT_EQ(params.scale, 0.0f);
  std::vector<int8_t> codes(dim, 99);
  simd::Sq8Encode(params, zero.data(), dim, codes.data());
  for (int8_t c : codes) EXPECT_EQ(c, 0);
}

TEST(Sq8TrainerTest, ConstantRowsMinEqualsMax) {
  // Every dimension has min == max; the symmetric scale still resolves to
  // |v|_max / 127 and the constant row round-trips to itself exactly at the
  // extreme code.
  const size_t dim = 4;
  std::vector<float> row = {2.0f, -1.0f, 0.5f, 0.0f};
  simd::Sq8Trainer trainer(dim);
  trainer.Observe(row.data());
  trainer.Observe(row.data());
  simd::Sq8Params params = trainer.Finish();
  ASSERT_TRUE(params.valid());
  EXPECT_FLOAT_EQ(params.scale, 2.0f / 127.0f);
  std::vector<int8_t> codes(dim);
  simd::Sq8Encode(params, row.data(), dim, codes.data());
  EXPECT_EQ(codes[0], 127);
  EXPECT_EQ(codes[3], 0);
  std::vector<float> back(dim);
  simd::Sq8Decode(params, codes.data(), dim, back.data());
  for (size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(back[i], row[i], params.scale / 2.0f + 1e-7f);
  }
}

TEST(Sq8TrainerTest, EncodeClampsOutOfRangeValues) {
  // A query far outside the trained range must saturate at +/-127, never
  // wrap or overflow.
  const size_t dim = 3;
  simd::Sq8Trainer trainer(dim);
  std::vector<float> row = {1.0f, -1.0f, 0.5f};
  trainer.Observe(row.data());
  simd::Sq8Params params = trainer.Finish();
  std::vector<float> wild = {1e6f, -1e6f, 0.0f};
  std::vector<int8_t> codes(dim);
  simd::Sq8Encode(params, wild.data(), dim, codes.data());
  EXPECT_EQ(codes[0], 127);
  EXPECT_EQ(codes[1], -127);
  EXPECT_EQ(codes[2], 0);
}

TEST(Sq8TrainerTest, DequantErrorBoundedByHalfScale) {
  // Symmetric rounding quantization: |x - s*c| <= s/2 for any x inside the
  // representable range [-127s, 127s].
  const size_t dim = 64;
  Rng rng(204);
  simd::Sq8Trainer trainer(dim);
  std::vector<std::vector<float>> rows;
  for (int i = 0; i < 50; ++i) {
    rows.push_back(RandomVec(&rng, dim, 8.0f));
    trainer.Observe(rows.back().data());
  }
  simd::Sq8Params params = trainer.Finish();
  ASSERT_TRUE(params.valid());
  ASSERT_GT(params.scale, 0.0f);
  std::vector<int8_t> codes(dim);
  std::vector<float> back(dim);
  for (const auto& row : rows) {
    simd::Sq8Encode(params, row.data(), dim, codes.data());
    simd::Sq8Decode(params, codes.data(), dim, back.data());
    for (size_t d = 0; d < dim; ++d) {
      EXPECT_LE(std::fabs(back[d] - row[d]), params.scale / 2.0f + 1e-6f)
          << "dim " << d;
    }
  }
}

// ---------------------------------------------------------------------------
// Batched entry points agree with the raw kernels and honor the threshold
// contract (strictly below), for every metric.
// ---------------------------------------------------------------------------

class Sq8BatchTest : public ::testing::TestWithParam<size_t> {};

TEST_P(Sq8BatchTest, BatchMatchesKernelFormula) {
  const size_t dim = GetParam();
  const size_t count = 37;
  Rng rng(205);
  auto query = RandomCodes(&rng, dim);
  std::vector<int8_t> rows(dim * count);
  for (int8_t& c : rows) {
    c = static_cast<int8_t>(static_cast<int64_t>(rng.NextBounded(255)) - 127);
  }
  std::vector<int64_t> row_norms(count);
  for (size_t i = 0; i < count; ++i) {
    row_norms[i] = simd::Sq8CodeNorm(rows.data() + i * dim, dim);
  }
  const int64_t qnorm = simd::Sq8CodeNorm(query.data(), dim);
  const float scale = 0.0625f;
  const simd::Sq8KernelTable* k = simd::Sq8KernelsFor(simd::ActiveIsa());
  ASSERT_NE(k, nullptr);
  std::vector<float> dists(count);
  for (Metric m : {Metric::kL2, Metric::kIp, Metric::kCosine}) {
    SCOPED_TRACE(MetricName(m));
    simd::Sq8DistanceBatch(m, query.data(), qnorm, scale, rows.data(),
                           row_norms.data(), dim, count, dists.data());
    for (size_t i = 0; i < count; ++i) {
      const int8_t* row = rows.data() + i * dim;
      float expect = 0.0f;
      if (m == Metric::kL2) {
        expect = scale * scale *
                 static_cast<float>(k->l2(query.data(), row, dim));
      } else if (m == Metric::kIp) {
        expect = 1.0f - scale * scale *
                            static_cast<float>(k->dot(query.data(), row, dim));
      } else {
        const double nq = static_cast<double>(qnorm);
        const double nr = static_cast<double>(row_norms[i]);
        expect = (nq == 0.0 || nr == 0.0)
                     ? 2.0f
                     : static_cast<float>(
                           1.0 - static_cast<double>(k->dot(query.data(), row, dim)) /
                                     std::sqrt(nq * nr));
      }
      EXPECT_FLOAT_EQ(dists[i], expect) << "row " << i;
    }
  }
}

TEST_P(Sq8BatchTest, GatherMatchesContiguous) {
  const size_t dim = GetParam();
  const size_t count = 29;
  Rng rng(206);
  auto query = RandomCodes(&rng, dim);
  std::vector<std::vector<int8_t>> storage;
  std::vector<const int8_t*> rows;
  std::vector<int8_t> contiguous;
  std::vector<int64_t> norms;
  for (size_t i = 0; i < count; ++i) {
    storage.push_back(RandomCodes(&rng, dim));
    rows.push_back(storage.back().data());
    contiguous.insert(contiguous.end(), storage.back().begin(),
                      storage.back().end());
    norms.push_back(simd::Sq8CodeNorm(storage.back().data(), dim));
  }
  const int64_t qnorm = simd::Sq8CodeNorm(query.data(), dim);
  std::vector<float> a(count), b(count);
  for (Metric m : {Metric::kL2, Metric::kIp, Metric::kCosine}) {
    SCOPED_TRACE(MetricName(m));
    simd::Sq8DistanceBatch(m, query.data(), qnorm, 0.125f, contiguous.data(),
                           norms.data(), dim, count, a.data());
    simd::Sq8DistanceBatchGather(m, query.data(), qnorm, 0.125f, rows.data(),
                                 norms.data(), dim, count, b.data());
    for (size_t i = 0; i < count; ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
  }
}

TEST_P(Sq8BatchTest, ThresholdCountsStrictlyBelow) {
  const size_t dim = GetParam();
  const size_t count = 41;
  Rng rng(207);
  auto query = RandomCodes(&rng, dim);
  std::vector<int8_t> rows(dim * count);
  for (int8_t& c : rows) {
    c = static_cast<int8_t>(static_cast<int64_t>(rng.NextBounded(255)) - 127);
  }
  const int64_t qnorm = simd::Sq8CodeNorm(query.data(), dim);
  std::vector<float> dists(count);
  simd::Sq8DistanceBatch(Metric::kL2, query.data(), qnorm, 0.03125f, rows.data(),
                         nullptr, dim, count, dists.data());
  std::vector<float> sorted = dists;
  std::sort(sorted.begin(), sorted.end());
  for (float threshold : {sorted[count / 2], sorted[0], sorted[count - 1]}) {
    size_t expect = 0;
    for (float d : dists) {
      if (d < threshold) ++expect;
    }
    EXPECT_EQ(simd::Sq8DistanceBatch(Metric::kL2, query.data(), qnorm, 0.03125f,
                                     rows.data(), nullptr, dim, count,
                                     dists.data(), threshold),
              expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, Sq8BatchTest, ::testing::Values(3, 100, 768));

// ---------------------------------------------------------------------------
// Dispatch / env plumbing.
// ---------------------------------------------------------------------------

TEST(Sq8DispatchTest, ScalarTableAlwaysAvailable) {
  ASSERT_NE(simd::Sq8KernelsFor(simd::IsaLevel::kScalar), nullptr);
  EXPECT_NE(simd::Sq8KernelsFor(simd::ActiveIsa()), nullptr);
}

TEST(Sq8DispatchTest, EnvOverrideIsRespected) {
  // The CI matrix runs this binary under TV_QUANT=sq8 (and TV_SIMD=scalar);
  // assert the overrides actually landed.
  const char* env = std::getenv("TV_QUANT");
  if (env != nullptr && std::string(env) == "sq8") {
    EXPECT_EQ(simd::ActiveQuantMode(), simd::QuantMode::kSq8);
    EXPECT_STREQ(simd::ActiveQuantModeName(), "sq8");
  } else if (env != nullptr && std::string(env) == "off") {
    EXPECT_EQ(simd::ActiveQuantMode(), simd::QuantMode::kOff);
  }
  EXPECT_GE(simd::DefaultRerankFactor(), 1u);
}

TEST(Sq8DispatchTest, ScopedQuantQueryNestsAndRestores) {
  EXPECT_TRUE(simd::ScopedQuantQuery::Enabled());  // default state
  {
    simd::ScopedQuantQuery off(false, 0);
    EXPECT_FALSE(simd::ScopedQuantQuery::Enabled());
    {
      simd::ScopedQuantQuery on(true, 7);
      EXPECT_TRUE(simd::ScopedQuantQuery::Enabled());
      EXPECT_EQ(simd::ScopedQuantQuery::RerankFactor(), 7u);
    }
    EXPECT_FALSE(simd::ScopedQuantQuery::Enabled());
  }
  EXPECT_TRUE(simd::ScopedQuantQuery::Enabled());
  EXPECT_EQ(simd::ScopedQuantQuery::RerankFactor(), simd::DefaultRerankFactor());
}

// ---------------------------------------------------------------------------
// Recall gate: SQ8 + rerank top-k vs the exact fp32 oracle, on the paper's
// query shapes. The gate is tie-tolerant: a result id counts as correct when
// its EXACT distance is within the oracle's k-th distance (ties at the
// boundary may legitimately swap).
// ---------------------------------------------------------------------------

double TieTolerantRecall(const VectorIndex& index, const float* query,
                         const std::vector<SearchHit>& result,
                         const std::vector<SearchHit>& oracle, size_t k) {
  if (oracle.empty()) return 1.0;
  const size_t n = std::min(k, oracle.size());
  const float kth = oracle[n - 1].distance;
  const float tol = 1e-5f * (1.0f + std::fabs(kth));
  size_t good = 0;
  for (size_t i = 0; i < std::min(k, result.size()); ++i) {
    // Reranked distances are exact fp32, so comparing against the oracle's
    // k-th distance needs only a rounding-level tolerance.
    if (result[i].distance <= kth + tol) ++good;
  }
  (void)index;
  (void)query;
  return static_cast<double>(good) / static_cast<double>(n);
}

class QuantRecallTest : public ::testing::Test {
 protected:
  // Builds an sq8-enabled HNSW over `dataset` and returns mean tie-tolerant
  // recall@k over all queries with the given rerank factor.
  static double HnswRecall(const VectorDataset& dataset, size_t k, size_t ef,
                           size_t rerank_factor) {
    HnswParams params;
    params.dim = dataset.dim;
    params.metric = dataset.metric;
    params.max_elements = dataset.num_base;
    params.m = 8;
    params.ef_construction = 64;
    params.sq8 = true;
    HnswIndex index(params);
    for (size_t i = 0; i < dataset.num_base; ++i) {
      EXPECT_TRUE(index.AddPoint(i, dataset.BaseVector(i)).ok());
    }
    EXPECT_TRUE(index.TrainQuantization().ok());
    EXPECT_TRUE(index.quant_active());
    double total = 0;
    for (size_t q = 0; q < dataset.num_queries; ++q) {
      std::vector<SearchHit> oracle;
      {
        simd::ScopedQuantQuery exact(false, 0);
        oracle = index.BruteForceSearch(dataset.QueryVector(q), k, FilterView());
      }
      std::vector<SearchHit> got;
      {
        simd::ScopedQuantQuery quant(true, rerank_factor);
        got = index.TopKSearch(dataset.QueryVector(q), k, ef, FilterView());
      }
      total += TieTolerantRecall(index, dataset.QueryVector(q), got, oracle, k);
    }
    return total / static_cast<double>(dataset.num_queries);
  }
};

// Shape 1: pure top-k over SIFT-like L2 data (the paper's SIFT runs).
// ef=128 matches the paper's efb; at ef=96 plain fp32 HNSW already dips
// below 0.95 on this dataset, so the gate would measure the graph, not SQ8.
TEST_F(QuantRecallTest, PureTopKSiftLikeL2) {
  VectorDataset ds = MakeSiftLike(1500, 20, /*seed=*/31);
  EXPECT_GE(HnswRecall(ds, /*k=*/10, /*ef=*/128, /*rerank_factor=*/3), 0.95);
}

// Shape 2: normalized Deep-like data (the paper's Deep runs).
TEST_F(QuantRecallTest, PureTopKDeepLike) {
  VectorDataset ds = MakeDeepLike(1500, 20, /*seed=*/32);
  EXPECT_GE(HnswRecall(ds, 10, 96, 3), 0.95);
}

// Shape 3: cosine metric (the advanced-RAG default in the paper's examples).
TEST_F(QuantRecallTest, CosineMetric) {
  VectorDataset ds = MakeDeepLike(1200, 20, 33);
  ds.metric = Metric::kCosine;
  EXPECT_GE(HnswRecall(ds, 10, 96, 3), 0.95);
}

// Shape 4: filtered search (pre-filter bitmap, paper Sec. 5.2) through the
// quantized beam, and the brute-force tier under high selectivity.
TEST_F(QuantRecallTest, FilteredSearchAndBruteForceTier) {
  VectorDataset ds = MakeSiftLike(800, 15, 34);
  HnswParams params;
  params.dim = ds.dim;
  params.metric = ds.metric;
  params.max_elements = ds.num_base;
  params.sq8 = true;
  HnswIndex index(params);
  for (size_t i = 0; i < ds.num_base; ++i) {
    ASSERT_TRUE(index.AddPoint(i, ds.BaseVector(i)).ok());
  }
  ASSERT_TRUE(index.TrainQuantization().ok());
  Bitmap bitmap(ds.num_base);
  for (size_t i = 0; i < ds.num_base; i += 2) bitmap.Set(i);  // 50% filter
  FilterView filter(&bitmap);
  const size_t k = 10;
  double beam_total = 0, bf_total = 0;
  for (size_t q = 0; q < ds.num_queries; ++q) {
    std::vector<SearchHit> oracle;
    {
      simd::ScopedQuantQuery exact(false, 0);
      oracle = index.BruteForceSearch(ds.QueryVector(q), k, filter);
    }
    std::vector<SearchHit> beam, bf;
    {
      simd::ScopedQuantQuery quant(true, 3);
      beam = index.TopKSearch(ds.QueryVector(q), k, 96, filter);
      bf = index.BruteForceSearch(ds.QueryVector(q), k, filter);
    }
    beam_total += TieTolerantRecall(index, ds.QueryVector(q), beam, oracle, k);
    bf_total += TieTolerantRecall(index, ds.QueryVector(q), bf, oracle, k);
    for (const SearchHit& h : beam) EXPECT_EQ(h.label % 2, 0u);  // filter honored
  }
  EXPECT_GE(beam_total / ds.num_queries, 0.95);
  EXPECT_GE(bf_total / ds.num_queries, 0.95);
}

// Shape 5: the alternative index families (FLAT exact-scan tier and
// IVF_FLAT probes) under quantized ranking.
TEST_F(QuantRecallTest, FlatAndIvfIndexes) {
  VectorDataset ds = MakeSiftLike(900, 15, 35);
  const size_t k = 10;

  FlatIndex flat(ds.dim, ds.metric, /*sq8=*/true);
  IvfParams iparams;
  iparams.dim = ds.dim;
  iparams.metric = ds.metric;
  iparams.nlist = 16;
  iparams.sq8 = true;
  IvfFlatIndex ivf(iparams);
  for (size_t i = 0; i < ds.num_base; ++i) {
    ASSERT_TRUE(flat.AddPoint(i, ds.BaseVector(i)).ok());
    ASSERT_TRUE(ivf.AddPoint(i, ds.BaseVector(i)).ok());
  }
  ASSERT_TRUE(flat.TrainQuantization().ok());
  ASSERT_TRUE(ivf.TrainQuantization().ok());
  EXPECT_TRUE(flat.quant_active());
  EXPECT_TRUE(ivf.quant_active());

  double flat_total = 0, ivf_total = 0;
  for (size_t q = 0; q < ds.num_queries; ++q) {
    std::vector<SearchHit> oracle;
    {
      simd::ScopedQuantQuery exact(false, 0);
      oracle = flat.BruteForceSearch(ds.QueryVector(q), k, FilterView());
    }
    std::vector<SearchHit> flat_hits, ivf_hits;
    {
      simd::ScopedQuantQuery quant(true, 3);
      flat_hits = flat.TopKSearch(ds.QueryVector(q), k, 64, FilterView());
      ivf_hits = ivf.TopKSearch(ds.QueryVector(q), k, 64, FilterView());
    }
    flat_total += TieTolerantRecall(flat, ds.QueryVector(q), flat_hits, oracle, k);
    ivf_total += TieTolerantRecall(ivf, ds.QueryVector(q), ivf_hits, oracle, k);
  }
  // FLAT scans everything, so SQ8+rerank recall stays near-exact; IVF adds
  // its own probe approximation on top.
  EXPECT_GE(flat_total / ds.num_queries, 0.95);
  EXPECT_GE(ivf_total / ds.num_queries, 0.90);
}

// Canary: rerank_factor=1 (no extra candidates, rescoring only) must not
// beat the default budget — if it does, the rerank stage is not actually
// widening the candidate set and the knob is dead.
TEST_F(QuantRecallTest, RerankFactorOneDegradesMonotonically) {
  VectorDataset ds = MakeSiftLike(1500, 25, 36);
  const double rf1 = HnswRecall(ds, 10, 32, 1);
  const double rf3 = HnswRecall(ds, 10, 32, 3);
  EXPECT_LE(rf1, rf3 + 1e-9);
  EXPECT_GT(rf3, 0.0);
}

// Reported distances must be exact fp32 even when ranking ran on codes —
// the soundness half of the rerank contract.
TEST_F(QuantRecallTest, RerankedDistancesAreExact) {
  VectorDataset ds = MakeSiftLike(400, 10, 37);
  HnswParams params;
  params.dim = ds.dim;
  params.metric = ds.metric;
  params.max_elements = ds.num_base;
  params.sq8 = true;
  HnswIndex index(params);
  for (size_t i = 0; i < ds.num_base; ++i) {
    ASSERT_TRUE(index.AddPoint(i, ds.BaseVector(i)).ok());
  }
  ASSERT_TRUE(index.TrainQuantization().ok());
  for (size_t q = 0; q < ds.num_queries; ++q) {
    simd::ScopedQuantQuery quant(true, 3);
    auto hits = index.TopKSearch(ds.QueryVector(q), 5, 64, FilterView());
    for (const SearchHit& h : hits) {
      EXPECT_FLOAT_EQ(h.distance,
                      ComputeDistance(ds.metric, ds.QueryVector(q),
                                      ds.BaseVector(h.label), ds.dim));
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: schema QUANT option, EXPLAIN actuals, and cache isolation.
// ---------------------------------------------------------------------------

class QuantDatabaseFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Database::Options options;
    options.store.segment_capacity = 16;
    options.embeddings.index_params.m = 8;
    options.embeddings.index_params.ef_construction = 64;
    db_ = std::make_unique<Database>(options);
    ASSERT_TRUE(db_->schema()->CreateVertexType("Doc", {}).ok());
    EmbeddingTypeInfo info;
    info.dimension = 8;
    info.model = "M";
    info.metric = Metric::kL2;
    info.quant = QuantOption::kSq8;  // pinned on, regardless of TV_QUANT
    ASSERT_TRUE(db_->schema()->AddEmbeddingAttr("Doc", "emb", info).ok());
    Rng rng(41);
    for (int i = 0; i < 48; ++i) {
      Transaction txn = db_->Begin();
      auto vid = txn.InsertVertex("Doc", {});
      ASSERT_TRUE(vid.ok());
      ASSERT_TRUE(txn.SetEmbedding(*vid, "Doc", "emb", RandomVec(&rng, 8, 6.0f)).ok());
      ASSERT_TRUE(txn.Commit().ok());
      vids_.push_back(*vid);
    }
    // Fold deltas so the (trained) index serves the searches.
    ASSERT_TRUE(db_->Vacuum().ok());
  }

  std::unique_ptr<Database> db_;
  std::vector<VertexId> vids_;
};

TEST_F(QuantDatabaseFixture, SchemaPinSurvivesToStringRoundTripIntent) {
  EmbeddingTypeInfo info;
  info.dimension = 8;
  info.quant = QuantOption::kSq8;
  EXPECT_NE(info.ToString().find("QUANT=SQ8"), std::string::npos);
  info.quant = QuantOption::kOff;
  EXPECT_NE(info.ToString().find("QUANT=OFF"), std::string::npos);
  info.quant = QuantOption::kDefault;
  // Pre-option schemas round-trip byte-identical: no QUANT text at all.
  EXPECT_EQ(info.ToString().find("QUANT"), std::string::npos);
}

// The QUANT option must parse through real GSQL, not just the C++ schema
// API — this was once broken because QUANT/SQ8/OFF were missing from the
// lexer's keyword set, so the parser branch was unreachable from the shell.
TEST(QuantGsql, QuantOptionParsesThroughGsql) {
  for (const auto& [text, want] :
       {std::pair<const char*, QuantOption>{"QUANT = SQ8", QuantOption::kSq8},
        {"QUANT = OFF", QuantOption::kOff}}) {
    Database db;
    GsqlSession session(&db);
    auto r = session.Run(
        std::string("CREATE VERTEX Doc (id INT);"
                    "ALTER VERTEX Doc ADD EMBEDDING ATTRIBUTE emb"
                    " (DIMENSION = 8, MODEL = M, METRIC = L2, ") +
        text + ");");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto vt = db.schema()->GetVertexType("Doc");
    ASSERT_TRUE(vt.ok());
    const EmbeddingAttrDef* def = (*vt)->FindEmbeddingAttr("emb");
    ASSERT_NE(def, nullptr);
    EXPECT_EQ(def->info.quant, want);
  }
  Database db;
  GsqlSession session(&db);
  auto bad = session.Run(
      "CREATE VERTEX Doc (id INT);"
      "ALTER VERTEX Doc ADD EMBEDDING ATTRIBUTE emb"
      " (DIMENSION = 8, QUANT = PQ);");
  EXPECT_FALSE(bad.ok());
}

TEST_F(QuantDatabaseFixture, SearchUsesQuantAndReranks) {
  std::vector<float> q(8, 0.5f);
  VectorSearchResult stats;
  Database::VectorSearchFnOptions opts;
  opts.result_stats = &stats;
  opts.bypass_cache = true;
  auto out = db_->VectorSearch({{"Doc", "emb"}}, q, 5, opts);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->size(), 5u);
  EXPECT_GT(stats.quant_segments, 0u);
  EXPECT_GE(stats.reranked, 5u);  // at least k candidates rescored
}

TEST_F(QuantDatabaseFixture, QuantSearchMatchesExactTopKHere) {
  // With rerank_factor 3 on a small segment the quantized path should agree
  // with the exact answer on this dataset (it scans essentially everything).
  std::vector<float> q(8, -0.25f);
  Database::VectorSearchFnOptions opts;
  opts.bypass_cache = true;
  std::unordered_map<VertexId, float> dists;
  opts.distance_map = &dists;
  auto quant_out = db_->VectorSearch({{"Doc", "emb"}}, q, 3, opts);
  ASSERT_TRUE(quant_out.ok());
  // Reported distances are exact fp32 regardless of ranking tier.
  for (const auto& [vid, d] : dists) {
    std::vector<float> stored(8);
    ASSERT_TRUE(db_->embeddings()->GetEmbedding("Doc", "emb", vid, stored.data()).ok());
    EXPECT_FLOAT_EQ(d, ComputeDistance(Metric::kL2, q.data(), stored.data(), 8));
  }
}

TEST_F(QuantDatabaseFixture, CacheMissThenHitPreservesQuantActuals) {
  std::vector<float> q(8, 1.5f);
  Database::VectorSearchFnOptions opts;
  VectorSearchResult miss_stats, hit_stats;
  cache::Outcome outcome = cache::Outcome::kBypass;
  opts.cache_outcome = &outcome;

  opts.result_stats = &miss_stats;
  auto first = db_->VectorSearch({{"Doc", "emb"}}, q, 4, opts);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(outcome, cache::Outcome::kMiss);

  opts.result_stats = &hit_stats;
  auto second = db_->VectorSearch({{"Doc", "emb"}}, q, 4, opts);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(outcome, cache::Outcome::kHit);
  EXPECT_EQ(*first, *second);
  // The hit path reports the quant stats of the run that populated the
  // entry — EXPLAIN ANALYZE on a warm cache stays faithful.
  EXPECT_EQ(hit_stats.quant_segments, miss_stats.quant_segments);
  EXPECT_EQ(hit_stats.reranked, miss_stats.reranked);
  EXPECT_GT(hit_stats.quant_segments, 0u);
}

TEST_F(QuantDatabaseFixture, RerankFactorIsolatesCacheEntries) {
  // Different rerank budgets can produce different (both sound) answers, so
  // they must never share a cache entry: same query again with a different
  // factor is a MISS, and each factor then hits its own entry.
  std::vector<float> q(8, -2.0f);
  Database::VectorSearchFnOptions opts;
  cache::Outcome outcome = cache::Outcome::kBypass;
  opts.cache_outcome = &outcome;

  opts.rerank_factor = 2;
  ASSERT_TRUE(db_->VectorSearch({{"Doc", "emb"}}, q, 4, opts).ok());
  EXPECT_EQ(outcome, cache::Outcome::kMiss);
  opts.rerank_factor = 5;
  ASSERT_TRUE(db_->VectorSearch({{"Doc", "emb"}}, q, 4, opts).ok());
  EXPECT_EQ(outcome, cache::Outcome::kMiss);
  opts.rerank_factor = 2;
  ASSERT_TRUE(db_->VectorSearch({{"Doc", "emb"}}, q, 4, opts).ok());
  EXPECT_EQ(outcome, cache::Outcome::kHit);
  opts.rerank_factor = 5;
  ASSERT_TRUE(db_->VectorSearch({{"Doc", "emb"}}, q, 4, opts).ok());
  EXPECT_EQ(outcome, cache::Outcome::kHit);
}

TEST_F(QuantDatabaseFixture, RangeSearchStaysExact) {
  // Range oracles depend on exact distances against the threshold; the
  // segment pins quantization off for ranges even on an SQ8 attribute.
  std::vector<float> q(8, 0.0f);
  VectorSearchRequest request;
  request.attrs = {{"Doc", "emb"}};
  request.query = q.data();
  request.k = 8;
  auto result = db_->embeddings()->RangeSearch(request, /*threshold=*/50.0f);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->quant_segments, 0u);
  for (const SearchHit& h : result->hits) {
    std::vector<float> stored(8);
    ASSERT_TRUE(
        db_->embeddings()->GetEmbedding("Doc", "emb", h.label, stored.data()).ok());
    EXPECT_FLOAT_EQ(h.distance,
                    ComputeDistance(Metric::kL2, q.data(), stored.data(), 8));
    EXPECT_LT(h.distance, 50.0f);
  }
}

// ---------------------------------------------------------------------------
// Concurrency: searches racing merge-triggered requantization. Run under
// TSan in CI; the assertions here are soundness (exact reported distances)
// and termination, not recall.
// ---------------------------------------------------------------------------

TEST(QuantConcurrencyTest, SearchesRaceRequantization) {
  const size_t dim = 16;
  HnswParams params;
  params.dim = dim;
  params.metric = Metric::kL2;
  params.max_elements = 4096;
  params.sq8 = true;
  HnswIndex index(params);
  Rng seed_rng(51);
  std::vector<std::vector<float>> rows;
  for (int i = 0; i < 256; ++i) {
    rows.push_back(RandomVec(&seed_rng, dim, 4.0f));
    ASSERT_TRUE(index.AddPoint(i, rows.back().data()).ok());
  }
  ASSERT_TRUE(index.TrainQuantization().ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> searches{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(100 + t);
      while (!stop.load(std::memory_order_acquire)) {
        auto q = RandomVec(&rng, dim, 4.0f);
        simd::ScopedQuantQuery quant(true, 3);
        auto hits = index.TopKSearch(q.data(), 5, 32, FilterView());
        EXPECT_LE(hits.size(), 5u);
        for (const SearchHit& h : hits) {
          EXPECT_TRUE(std::isfinite(h.distance));
        }
        searches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Interleave inserts (growing the un-encoded suffix) with retraining
  // (swapping in a fresh tier), as the vacuum's IndexMerge does.
  Rng ins_rng(52);
  for (int round = 0; round < 20; ++round) {
    for (int j = 0; j < 32; ++j) {
      auto v = RandomVec(&ins_rng, dim, 4.0f);
      ASSERT_TRUE(index.AddPoint(256 + round * 32 + j, v.data()).ok());
    }
    ASSERT_TRUE(index.TrainQuantization().ok());
  }
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  EXPECT_GT(searches.load(), 0u);
  EXPECT_TRUE(index.quant_active());
}

}  // namespace
}  // namespace tigervector

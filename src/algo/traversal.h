#ifndef TIGERVECTOR_ALGO_TRAVERSAL_H_
#define TIGERVECTOR_ALGO_TRAVERSAL_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "graph/graph_store.h"

namespace tigervector {

// One hop of a traversal pattern: follow `edge_type` in `dir`, landing on
// vertices of `target_type` (empty string = any type).
struct HopSpec {
  std::string edge_type;
  Direction dir = Direction::kOut;
  std::string target_type;
};

// A set of vertices, the unit of composition between query blocks (the
// GSQL vertex-set-variable analog used throughout Sec. 5.5).
using VertexSet = std::unordered_set<VertexId>;

// Expands `seeds` through the hop sequence, returning the final frontier
// (distinct vertices). Intermediate frontiers are deduplicated, which is
// what a SELECT over a multi-hop pattern binds to the last alias.
VertexSet ExpandPattern(const GraphStore& store, const VertexSet& seeds,
                        const std::vector<HopSpec>& hops, Tid read_tid);

// BFS up to `max_depth` hops over one edge type; returns every reached
// vertex including seeds (the "person knows*1..N" style expansion of the
// LDBC IC queries).
VertexSet KHopNeighborhood(const GraphStore& store, const VertexSet& seeds,
                           const std::string& edge_type, Direction dir,
                           int max_depth, Tid read_tid);

// All visible vertices of a type as a set.
VertexSet CollectVerticesOfType(const GraphStore& store, const std::string& type,
                                Tid read_tid);

// Converts a vertex set into a global-vid bitmap usable as a vector search
// filter.
Bitmap VertexSetToBitmap(const VertexSet& set, VertexId vid_upper_bound);

}  // namespace tigervector

#endif  // TIGERVECTOR_ALGO_TRAVERSAL_H_

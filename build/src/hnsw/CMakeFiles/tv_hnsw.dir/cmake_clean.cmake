file(REMOVE_RECURSE
  "CMakeFiles/tv_hnsw.dir/brute_force.cc.o"
  "CMakeFiles/tv_hnsw.dir/brute_force.cc.o.d"
  "CMakeFiles/tv_hnsw.dir/flat_index.cc.o"
  "CMakeFiles/tv_hnsw.dir/flat_index.cc.o.d"
  "CMakeFiles/tv_hnsw.dir/hnsw_index.cc.o"
  "CMakeFiles/tv_hnsw.dir/hnsw_index.cc.o.d"
  "CMakeFiles/tv_hnsw.dir/ivf_index.cc.o"
  "CMakeFiles/tv_hnsw.dir/ivf_index.cc.o.d"
  "libtv_hnsw.a"
  "libtv_hnsw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_hnsw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

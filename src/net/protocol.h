#ifndef TIGERVECTOR_NET_PROTOCOL_H_
#define TIGERVECTOR_NET_PROTOCOL_H_

#include <string>

#include "net/frame.h"
#include "query/session.h"

namespace tigervector::net {

// Application-level payload codecs for the frame protocol: a query request
// (script + $parameter bindings) and its result (the ScriptResult subset a
// remote client can consume), plus a typed Status. Status codes travel as
// explicit stable wire ids — never as raw enum integers — so the two ends
// can disagree about enum layout without corrupting error classes.

// --- Status ---
uint32_t StatusCodeToWire(StatusCode code);
StatusCode StatusCodeFromWire(uint32_t wire);
std::string EncodeStatus(const Status& status);
Status DecodeStatus(const std::string& payload, Status* out);

// --- Query request ---
struct QueryRequest {
  std::string script;
  QueryParams params;
};
std::string EncodeQueryRequest(const QueryRequest& request);
Status DecodeQueryRequest(const std::string& payload, QueryRequest* out);

// --- Query result ---
std::string EncodeScriptResult(const ScriptResult& result);
Status DecodeScriptResult(const std::string& payload, ScriptResult* out);

}  // namespace tigervector::net

#endif  // TIGERVECTOR_NET_PROTOCOL_H_

#include "query/ast.h"

namespace tigervector {

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::MakeAttrRef(std::string alias, std::string attr) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAttrRef;
  e->alias = std::move(alias);
  e->attr = std::move(attr);
  return e;
}

ExprPtr Expr::MakeParam(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kParam;
  e->param = std::move(name);
  return e;
}

ExprPtr Expr::MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr Expr::MakeNot(ExprPtr child) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kNot;
  e->lhs = std::move(child);
  return e;
}

ExprPtr Expr::MakeVectorDist(ExprPtr a, ExprPtr b) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kVectorDist;
  e->lhs = std::move(a);
  e->rhs = std::move(b);
  return e;
}

}  // namespace tigervector

#ifndef TIGERVECTOR_WORKLOAD_DATASETS_H_
#define TIGERVECTOR_WORKLOAD_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "simd/distance.h"

namespace tigervector {

class ThreadPool;

// A synthetic ANN benchmark dataset. Stands in for SIFT100M/1B and
// Deep100M/1B (Table 1), which cannot be downloaded here; the generators
// below produce clustered data whose recall-vs-ef curves have the same
// qualitative shape as the real corpora.
struct VectorDataset {
  std::string name;
  size_t dim = 0;
  Metric metric = Metric::kL2;
  size_t num_base = 0;
  size_t num_queries = 0;
  std::vector<float> base;     // num_base x dim
  std::vector<float> queries;  // num_queries x dim
  // ground_truth[q] holds the exact top-gt_k base indices for query q.
  size_t gt_k = 0;
  std::vector<std::vector<uint64_t>> ground_truth;

  const float* BaseVector(size_t i) const { return base.data() + i * dim; }
  const float* QueryVector(size_t q) const { return queries.data() + q * dim; }
};

// SIFT-like: dim=128, non-negative clustered histogram-style values in
// [0, 218], L2 metric. Deterministic in `seed`.
VectorDataset MakeSiftLike(size_t num_base, size_t num_queries, uint64_t seed = 1);

// Deep-like: dim=96, unit-normalized Gaussian cluster mixtures, L2 metric
// (Deep1B vectors are produced L2-normalized).
VectorDataset MakeDeepLike(size_t num_base, size_t num_queries, uint64_t seed = 2);

// SIFT-like generator with a custom dimensionality (used by the SNB-like
// hybrid dataset, which samples message embeddings from a SIFT-shaped
// distribution at a laptop-scale dimension).
VectorDataset MakeSiftLikeWithDim(size_t dim, size_t num_base, size_t num_queries,
                                  uint64_t seed = 3);

// Fills dataset.ground_truth with the exact top-k for every query
// (parallel over queries when pool != nullptr).
void ComputeGroundTruth(VectorDataset* dataset, size_t k, ThreadPool* pool);

// Core recall computation shared by the benches and the fuzz harness:
// fraction of the first min(k, truth_ids.size()) exact ids found anywhere
// in the first min(k, result_ids.size()) result ids. Returns 0 when the
// truth list is empty.
double RecallBetween(const std::vector<uint64_t>& result_ids,
                     const std::vector<uint64_t>& truth_ids, size_t k);

// recall@k of one result list against the ground truth of query q.
// Delegates to RecallBetween.
double RecallAtK(const VectorDataset& dataset, size_t q,
                 const std::vector<uint64_t>& result_ids, size_t k);

}  // namespace tigervector

#endif  // TIGERVECTOR_WORKLOAD_DATASETS_H_

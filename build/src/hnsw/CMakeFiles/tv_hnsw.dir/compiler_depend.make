# Empty compiler generated dependencies file for tv_hnsw.
# This may be replaced when dependencies are built.

// Runtime ISA dispatch for the distance kernels: pick the widest level the
// CPU executes once per process, let TV_SIMD=scalar|avx2|avx512 override it
// for A/B runs and CI parity legs, and surface the decision as a startup
// log line plus the "tv.simd.isa" gauge (0=scalar, 1=avx2, 2=avx512).

#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "simd/kernels.h"
#include "util/logging.h"

namespace tigervector::simd {

namespace {

#if defined(__x86_64__) || defined(__i386__)
#define TV_SIMD_X86 1
#else
#define TV_SIMD_X86 0
#endif

// Best level this CPU (and build) can execute. __builtin_cpu_supports
// includes the OS XSAVE checks, so "supports avx2" really means the ymm
// state is usable, not just that CPUID advertises it.
IsaLevel DetectBestIsa() {
#if TV_SIMD_X86 && defined(TV_HAVE_AVX512_KERNELS)
  if (__builtin_cpu_supports("avx512f")) return IsaLevel::kAvx512;
#endif
#if TV_SIMD_X86 && defined(TV_HAVE_AVX2_KERNELS)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return IsaLevel::kAvx2;
  }
#endif
  return IsaLevel::kScalar;
}

const KernelTable kScalarTable = {&internal::ScalarL2, &internal::ScalarIp,
                                  &internal::ScalarCosine};
const Sq8KernelTable kScalarSq8Table = {&internal::ScalarSq8L2,
                                        &internal::ScalarSq8Dot};

#if defined(TV_HAVE_AVX2_KERNELS)
const KernelTable kAvx2Table = {&internal::Avx2L2, &internal::Avx2Ip,
                                &internal::Avx2Cosine};
const Sq8KernelTable kAvx2Sq8Table = {&internal::Avx2Sq8L2,
                                      &internal::Avx2Sq8Dot};
#endif

#if defined(TV_HAVE_AVX512_KERNELS)
const KernelTable kAvx512Table = {&internal::Avx512L2, &internal::Avx512Ip,
                                  &internal::Avx512Cosine};
const Sq8KernelTable kAvx512Sq8Table = {&internal::Avx512Sq8L2,
                                        &internal::Avx512Sq8Dot};
#endif

#if defined(TV_HAVE_AVX512BW_KERNELS)
const Sq8KernelTable kAvx512BwSq8Table = {&internal::Avx512BwSq8L2,
                                          &internal::Avx512BwSq8Dot};
#endif

const KernelTable* TableFor(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return &kScalarTable;
    case IsaLevel::kAvx2:
#if defined(TV_HAVE_AVX2_KERNELS)
      return &kAvx2Table;
#else
      return nullptr;
#endif
    case IsaLevel::kAvx512:
#if defined(TV_HAVE_AVX512_KERNELS)
      return &kAvx512Table;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const Sq8KernelTable* Sq8TableFor(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return &kScalarSq8Table;
    case IsaLevel::kAvx2:
#if defined(TV_HAVE_AVX2_KERNELS)
      return &kAvx2Sq8Table;
#else
      return nullptr;
#endif
    case IsaLevel::kAvx512:
      // The int8 table at this level upgrades to true 512-bit kernels when
      // the CPU also has AVX512BW (vpmaddwd on zmm); F-without-BW parts keep
      // the 256-bit kernels. Both are exact-integer, so the choice is
      // invisible to results — only to throughput.
#if TV_SIMD_X86 && defined(TV_HAVE_AVX512BW_KERNELS)
      if (__builtin_cpu_supports("avx512bw")) return &kAvx512BwSq8Table;
#endif
#if defined(TV_HAVE_AVX512_KERNELS)
      return &kAvx512Sq8Table;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

bool ParseIsaName(const std::string& text, IsaLevel* out) {
  if (text == "scalar") {
    *out = IsaLevel::kScalar;
  } else if (text == "avx2") {
    *out = IsaLevel::kAvx2;
  } else if (text == "avx512") {
    *out = IsaLevel::kAvx512;
  } else {
    return false;
  }
  return true;
}

struct ResolvedDispatch {
  IsaLevel level;
  const KernelTable* table;
};

ResolvedDispatch ResolveDispatch() {
  const IsaLevel best = DetectBestIsa();
  IsaLevel chosen = best;
  const char* env = std::getenv("TV_SIMD");
  if (env != nullptr && env[0] != '\0') {
    IsaLevel requested;
    if (!ParseIsaName(env, &requested)) {
      TV_LOG(Warn) << "simd: unrecognized TV_SIMD='" << env
                   << "' (want scalar|avx2|avx512), using " << IsaName(best);
    } else if (requested > best) {
      TV_LOG(Warn) << "simd: TV_SIMD=" << env
                   << " not executable on this CPU/build, clamping to "
                   << IsaName(best);
    } else {
      chosen = requested;
    }
  }
  TV_LOG(Info) << "simd: dispatching distance kernels via " << IsaName(chosen)
               << " (cpu best: " << IsaName(best) << ")";
  TV_GAUGE_SET("tv.simd.isa", static_cast<int64_t>(chosen));
  return ResolvedDispatch{chosen, TableFor(chosen)};
}

const ResolvedDispatch& GetDispatch() {
  static const ResolvedDispatch dispatch = ResolveDispatch();
  return dispatch;
}

}  // namespace

const char* IsaName(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kAvx2:
      return "avx2";
    case IsaLevel::kAvx512:
      return "avx512";
  }
  return "?";
}

IsaLevel ActiveIsa() { return GetDispatch().level; }

const char* ActiveIsaName() { return IsaName(ActiveIsa()); }

bool IsaSupported(IsaLevel level) {
  return level <= DetectBestIsa() && TableFor(level) != nullptr;
}

const KernelTable* KernelsFor(IsaLevel level) {
  return IsaSupported(level) ? TableFor(level) : nullptr;
}

const Sq8KernelTable* Sq8KernelsFor(IsaLevel level) {
  return IsaSupported(level) ? Sq8TableFor(level) : nullptr;
}

namespace internal {

const KernelTable& ActiveKernels() { return *GetDispatch().table; }

const Sq8KernelTable& ActiveSq8Kernels() {
  // Same dispatch decision as the fp32 kernels (every compiled level has
  // both tables), so TV_SIMD A/B runs flip the int8 path too.
  return *Sq8TableFor(GetDispatch().level);
}

}  // namespace internal

}  // namespace tigervector::simd

#include "mpp/cluster.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/cancel.h"
#include "util/io.h"
#include "util/timer.h"
#include "util/topk_heap.h"

namespace tigervector {

Cluster::Cluster(GraphStore* store, EmbeddingService* service, Options options)
    : store_(store), service_(service), options_(options) {
  if (options_.num_servers == 0) options_.num_servers = 1;
  if (options_.replication_factor == 0) options_.replication_factor = 1;
  options_.replication_factor =
      std::min(options_.replication_factor, options_.num_servers);
  pools_.reserve(options_.num_servers);
  for (size_t i = 0; i < options_.num_servers; ++i) {
    pools_.push_back(std::make_unique<ThreadPool>(options_.threads_per_server));
  }
  up_ = std::vector<std::atomic<bool>>(options_.num_servers);
  for (auto& flag : up_) flag.store(true);
}

void Cluster::SetServerUp(size_t server, bool up) {
  if (server < up_.size()) up_[server].store(up);
}

bool Cluster::server_up(size_t server) const {
  return server < up_.size() && up_[server].load();
}

std::vector<size_t> Cluster::ReplicaSetOf(SegmentId seg) const {
  std::vector<size_t> out;
  for (size_t r = 0; r < options_.replication_factor; ++r) {
    out.push_back((seg + r) % options_.num_servers);
  }
  return out;
}

Result<std::vector<std::vector<SegmentId>>> Cluster::ShardSegments(
    const VectorSearchRequest& request) const {
  std::vector<std::vector<SegmentId>> shards(options_.num_servers);
  std::vector<SegmentId> seen;
  for (const auto& [vertex_type, attr] : request.attrs) {
    for (const EmbeddingSegment* seg : service_->SegmentsOf(vertex_type, attr)) {
      const SegmentId id = seg->segment_id();
      if (std::find(seen.begin(), seen.end(), id) != seen.end()) continue;
      seen.push_back(id);
      // Route to the first live replica.
      size_t target = options_.num_servers;
      for (size_t server : ReplicaSetOf(id)) {
        if (server_up(server)) {
          target = server;
          break;
        }
      }
      if (target == options_.num_servers) {
        return Status::Internal("segment " + std::to_string(id) +
                                " has no live replica");
      }
      shards[target].push_back(id);
    }
  }
  return shards;
}

template <typename Fn>
Result<VectorSearchResult> Cluster::ScatterGather(const VectorSearchRequest& request,
                                                  DistributedStats* stats,
                                                  Fn local_search,
                                                  bool merge_topk) const {
  TV_SPAN("cluster.scatter_gather");
  TV_COUNTER_INC("tv.cluster.fanouts_total");
  Timer total_timer;
  auto shards_result = ShardSegments(request);
  if (!shards_result.ok()) return shards_result.status();
  const auto shards = std::move(shards_result).value();

  struct ServerResponse {
    Result<VectorSearchResult> result = Status::Internal("not run");
    double seconds = 0;
    bool participated = false;
  };
  // The response pool: workers deposit local results, the coordinator
  // collects them once all servers reported (paper Fig. 5).
  std::vector<ServerResponse> responses(options_.num_servers);
  std::mutex mu;
  std::condition_variable cv;
  size_t outstanding = 0;

  for (size_t server = 0; server < options_.num_servers; ++server) {
    if (shards[server].empty()) continue;
    ++outstanding;
  }
  size_t remaining = outstanding;
  // Server workers run on their own pools; hand them the coordinator's
  // active trace so per-server spans join the profiled query, and the
  // request's cancel token so a deadline stops every shard's local search.
  obs::QueryTrace* parent_trace = obs::CurrentTrace();
  CancelToken* cancel_token = CurrentCancelToken();
  for (size_t server = 0; server < options_.num_servers; ++server) {
    if (shards[server].empty()) continue;
    pools_[server]->Submit([&, server, parent_trace, cancel_token] {
      ServerResponse resp;
      // Everything touching the coordinator's trace — the activation, the
      // span, the search itself — lives in this inner scope so its
      // destructors run BEFORE the notify below. The coordinator is only
      // released once `remaining` hits zero; after that the trace (a stack
      // object in the caller) may be destroyed at any moment.
      {
        obs::ScopedTraceActivation trace_scope(parent_trace);
        ScopedCancel cancel_scope(cancel_token);
        TV_SPAN("cluster.server_search");
        Timer t;
        // Each worker searches only its own shard, using its own pool for
        // intra-server segment parallelism.
        VectorSearchRequest local = request;
        local.segment_subset = &shards[server];
        local.pool = nullptr;  // segments run sequentially on this worker
        // Partial-failure hook: arming "mpp.server<i>.search" (kFailOpen)
        // makes exactly this server's shard fail mid fan-out, so tests can
        // assert the coordinator surfaces the error instead of silently
        // merging a short top-k.
        auto& injector = io::FaultInjector::Instance();
        if (injector.any_armed() &&
            injector.ShouldFail("mpp.server" + std::to_string(server) + ".search",
                                io::FaultKind::kFailOpen)) {
          resp.result = Status::IOError("injected fault: server " +
                                        std::to_string(server) +
                                        " shard search failed");
        } else {
          resp.result = local_search(local);
        }
        resp.seconds = t.ElapsedSeconds();
        resp.participated = true;
      }
      std::lock_guard<std::mutex> lock(mu);
      responses[server] = std::move(resp);
      if (--remaining == 0) cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return remaining == 0; });
  }

  Timer merge_timer;
  VectorSearchResult merged;
  TopKHeap<VertexId> heap(request.k);
  for (ServerResponse& resp : responses) {
    if (!resp.participated) continue;
    if (!resp.result.ok()) return resp.result.status();
    const VectorSearchResult& r = *resp.result;
    merged.segments_searched += r.segments_searched;
    merged.bruteforce_segments += r.bruteforce_segments;
    merged.delta_candidates += r.delta_candidates;
    merged.quant_segments += r.quant_segments;
    merged.reranked += r.reranked;
    if (merge_topk) {
      for (const SearchHit& h : r.hits) heap.Push(h.distance, h.label);
    } else {
      merged.hits.insert(merged.hits.end(), r.hits.begin(), r.hits.end());
    }
  }
  if (merge_topk) {
    for (const auto& e : heap.TakeSorted()) {
      merged.hits.push_back(SearchHit{e.distance, e.id});
    }
  } else {
    std::sort(merged.hits.begin(), merged.hits.end(),
              [](const SearchHit& a, const SearchHit& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.label < b.label;
              });
  }

  const double merge_seconds = merge_timer.ElapsedSeconds();
  obs::RecordSpanMicros("cluster.merge", merge_seconds * 1e6);
  TV_HISTOGRAM_OBSERVE("tv.cluster.merge_seconds", merge_seconds);
  for (const ServerResponse& resp : responses) {
    if (resp.participated) {
      TV_HISTOGRAM_OBSERVE("tv.cluster.server_seconds", resp.seconds);
    }
  }
  TV_HISTOGRAM_OBSERVE("tv.cluster.fanout_seconds", total_timer.ElapsedSeconds());
  if (stats != nullptr) {
    stats->server_seconds.clear();
    for (const ServerResponse& resp : responses) {
      stats->server_seconds.push_back(resp.participated ? resp.seconds : 0.0);
    }
    stats->merge_seconds = merge_seconds;
    stats->total_seconds = total_timer.ElapsedSeconds();
  }
  return merged;
}

Result<VectorSearchResult> Cluster::DistributedTopK(const VectorSearchRequest& request,
                                                    DistributedStats* stats) const {
  return ScatterGather(
      request, stats,
      [this](const VectorSearchRequest& local) { return service_->TopKSearch(local); },
      /*merge_topk=*/true);
}

Result<VectorSearchResult> Cluster::DistributedRange(const VectorSearchRequest& request,
                                                     float threshold,
                                                     DistributedStats* stats) const {
  return ScatterGather(
      request, stats,
      [this, threshold](const VectorSearchRequest& local) {
        return service_->RangeSearch(local, threshold);
      },
      /*merge_topk=*/false);
}

double Cluster::ProjectedQps(const DistributedStats& stats) const {
  // Every query is scattered to every server, so with dedicated hardware
  // per server the pipeline is gated by the slowest shard: QPS ≈
  // threads_per_server / max_i(t_i). As servers are added each shard
  // shrinks, so max_i(t_i) drops roughly linearly — the paper's 1.84-1.91x
  // per doubling at high recall.
  double slowest = 0;
  for (double sec : stats.server_seconds) slowest = std::max(slowest, sec);
  if (slowest <= 0) return 0;
  return static_cast<double>(options_.threads_per_server) / slowest;
}

}  // namespace tigervector

file(REMOVE_RECURSE
  "libtv_embedding_types.a"
)

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/query_cache.h"
#include "obs/metrics.h"
#include "query/session.h"

namespace tigervector {
namespace {

using cache::CacheKey;
using cache::Fingerprint;
using cache::QueryCache;
using cache::ShardedLruCache;

CacheKey Key(uint64_t a, uint64_t b = 0, uint64_t c = 0, uint64_t d = 0) {
  return CacheKey{{a, b, c, d}};
}

// ---------------- Fingerprints ----------------

// Pins of the exact fingerprint values. The bitmap/top-k cache keys embed
// these; an accidental change to the mixing scheme would silently invalidate
// (or worse, alias) every persisted assumption tests make about keys, so the
// constants are asserted verbatim.
TEST(FingerprintTest, ExactValuePins) {
  EXPECT_EQ(cache::Mix64(1), 0x910a2dec89025cc1ULL);
  const Fingerprint s = cache::FingerprintString("Post.content_emb");
  EXPECT_EQ(s.hi, 0xab2461bb35df23e6ULL);
  EXPECT_EQ(s.lo, 0x192eb386ccd63e44ULL);
  const std::vector<uint64_t> ids = {3, 7, 11};
  const Fingerprint u = cache::FingerprintIdSetUnordered(ids);
  EXPECT_EQ(u.hi, 0xd051c81a8bcb1e00ULL);
  EXPECT_EQ(u.lo, 0xe12c4545c37feb44ULL);
  const float q[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  const Fingerprint b = cache::FingerprintBytes(q, sizeof(q));
  EXPECT_EQ(b.hi, 0x0db431570f940fb2ULL);
  EXPECT_EQ(b.lo, 0x03448609f58baa74ULL);
}

TEST(FingerprintTest, DistinctInputsDistinctFingerprints) {
  // Near-miss byte strings must not collide: shared prefix, single-bit
  // flips, and length-extension pairs.
  EXPECT_NE(cache::FingerprintString("a"), cache::FingerprintString("b"));
  EXPECT_NE(cache::FingerprintString("abc"), cache::FingerprintString("abd"));
  EXPECT_NE(cache::FingerprintString("abc"), cache::FingerprintString("abcd"));
  EXPECT_NE(cache::FingerprintString(""), cache::FingerprintString(std::string(1, '\0')));
  EXPECT_NE(cache::FingerprintString(std::string(1, '\0')),
            cache::FingerprintString(std::string(2, '\0')));
  // Concatenation boundaries must matter when combining fingerprints
  // ("ab"+"c" vs "a"+"bc").
  Fingerprint ab_c = cache::CombineFingerprints(cache::FingerprintString("ab"),
                                                cache::FingerprintString("c"));
  Fingerprint a_bc = cache::CombineFingerprints(cache::FingerprintString("a"),
                                                cache::FingerprintString("bc"));
  EXPECT_NE(ab_c, a_bc);
  // Query vectors differing in one float must not collide.
  const float q1[4] = {1, 2, 3, 4};
  const float q2[4] = {1, 2, 3, 5};
  EXPECT_NE(cache::FingerprintBytes(q1, sizeof(q1)),
            cache::FingerprintBytes(q2, sizeof(q2)));
}

TEST(FingerprintTest, IdSetFingerprintIsOrderIndependent) {
  const std::vector<uint64_t> a = {5, 900, 17, 3};
  const std::vector<uint64_t> b = {3, 17, 900, 5};
  EXPECT_EQ(cache::FingerprintIdSetUnordered(a), cache::FingerprintIdSetUnordered(b));
  // ...but content-sensitive: one extra, one missing, and a swapped element
  // all change it.
  const std::vector<uint64_t> c = {5, 900, 17};
  const std::vector<uint64_t> d = {5, 900, 17, 4};
  EXPECT_NE(cache::FingerprintIdSetUnordered(a), cache::FingerprintIdSetUnordered(c));
  EXPECT_NE(cache::FingerprintIdSetUnordered(a), cache::FingerprintIdSetUnordered(d));
  // Empty set is distinct from {0}.
  const std::vector<uint64_t> empty;
  const std::vector<uint64_t> zero = {0};
  EXPECT_NE(cache::FingerprintIdSetUnordered(empty),
            cache::FingerprintIdSetUnordered(zero));
}

TEST(FingerprintTest, VersionWordsAreExactNotHashed) {
  // Same fingerprint, different segment version => different key, compared
  // word-for-word (staleness cannot hide behind a hash collision).
  const Fingerprint fp = cache::FingerprintString("pred");
  const CacheKey k1 = cache::BitmapKey(fp, /*segment_id=*/2, /*version=*/7);
  const CacheKey k2 = cache::BitmapKey(fp, 2, 8);
  const CacheKey k3 = cache::BitmapKey(fp, 3, 7);
  EXPECT_FALSE(k1 == k2);
  EXPECT_FALSE(k1 == k3);
  EXPECT_EQ(k1.w[2], 2u);
  EXPECT_EQ(k1.w[3], 7u);
  const CacheKey t1 = cache::TopKKey(fp, fp, /*read_tid=*/10, /*structure_version=*/4);
  const CacheKey t2 = cache::TopKKey(fp, fp, 11, 4);
  const CacheKey t3 = cache::TopKKey(fp, fp, 10, 5);
  EXPECT_FALSE(t1 == t2);
  EXPECT_FALSE(t1 == t3);
}

// ---------------- Sharded LRU ----------------

TEST(ShardedLruTest, LruEvictionOrder) {
  // One shard so recency order is globally observable; room for two
  // 40-byte entries.
  ShardedLruCache<int> lru(/*capacity_bytes=*/100, /*num_shards=*/1);
  EXPECT_EQ(lru.Insert(Key(1), 101, 40), 0u);
  EXPECT_EQ(lru.Insert(Key(2), 102, 40), 0u);
  int out = 0;
  ASSERT_TRUE(lru.Lookup(Key(1), &out));  // refresh 1: now 2 is LRU
  EXPECT_EQ(out, 101);
  EXPECT_EQ(lru.Insert(Key(3), 103, 40), 1u);  // evicts 2, not 1
  EXPECT_TRUE(lru.Lookup(Key(1), &out));
  EXPECT_FALSE(lru.Lookup(Key(2), &out));
  EXPECT_TRUE(lru.Lookup(Key(3), &out));
  EXPECT_EQ(lru.entries(), 2u);
  EXPECT_EQ(lru.bytes(), 80u);
  EXPECT_EQ(lru.evictions(), 1u);
}

TEST(ShardedLruTest, OversizedEntryNotAdmitted) {
  ShardedLruCache<int> lru(100, 1);
  lru.Insert(Key(1), 101, 40);
  EXPECT_EQ(lru.Insert(Key(9), 999, 500), 0u);  // larger than the shard
  int out = 0;
  EXPECT_FALSE(lru.Lookup(Key(9), &out));
  EXPECT_TRUE(lru.Lookup(Key(1), &out));  // nothing was evicted for it
  EXPECT_EQ(lru.entries(), 1u);
}

TEST(ShardedLruTest, OversizedReplacementKeepsExistingEntry) {
  // A replacement that cannot be admitted must leave the previously cached
  // entry intact (keys are content-addressed, so the old value is still
  // valid) and count no eviction for it.
  ShardedLruCache<int> lru(100, 1);
  lru.Insert(Key(1), 101, 40);
  EXPECT_EQ(lru.Insert(Key(1), 999, 500), 0u);  // larger than the shard
  int out = 0;
  ASSERT_TRUE(lru.Lookup(Key(1), &out));
  EXPECT_EQ(out, 101);
  EXPECT_EQ(lru.entries(), 1u);
  EXPECT_EQ(lru.bytes(), 40u);
  EXPECT_EQ(lru.evictions(), 0u);
}

TEST(ShardedLruTest, ReplaceUpdatesBytes) {
  ShardedLruCache<int> lru(100, 1);
  lru.Insert(Key(1), 101, 40);
  lru.Insert(Key(1), 201, 60);  // replace: old 40 bytes released
  EXPECT_EQ(lru.entries(), 1u);
  EXPECT_EQ(lru.bytes(), 60u);
  int out = 0;
  ASSERT_TRUE(lru.Lookup(Key(1), &out));
  EXPECT_EQ(out, 201);
  lru.Clear();
  EXPECT_EQ(lru.entries(), 0u);
  EXPECT_EQ(lru.bytes(), 0u);
  EXPECT_FALSE(lru.Lookup(Key(1), &out));
}

TEST(ShardedLruTest, CapacityIsBoundedUnderPressure) {
  ShardedLruCache<int> lru(/*capacity_bytes=*/1 << 12, /*num_shards=*/4);
  for (uint64_t i = 0; i < 4096; ++i) {
    lru.Insert(Key(i, i * 31), static_cast<int>(i), 64);
  }
  EXPECT_LE(lru.bytes(), lru.capacity_bytes());
  EXPECT_GT(lru.evictions(), 0u);
}

// Exercised under TSan in CI: concurrent writers and readers across shards
// must be race-free and keep byte accounting consistent.
TEST(ShardedLruTest, ConcurrentShardedWriters) {
  ShardedLruCache<std::shared_ptr<int>> lru(1 << 16, 8);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)lru.entries();
      (void)lru.bytes();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&lru, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const CacheKey key = Key(static_cast<uint64_t>(i % 257), t % 3);
        lru.Insert(key, std::make_shared<int>(i), 48);
        std::shared_ptr<int> out;
        (void)lru.Lookup(key, &out);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_LE(lru.bytes(), lru.capacity_bytes());
  EXPECT_GT(lru.entries(), 0u);
}

// ---------------- QueryCache env + toggle ----------------

TEST(QueryCacheTest, TvCacheOffDisablesAtConstruction) {
  ::setenv("TV_CACHE", "off", 1);
  QueryCache off_cache;
  ::unsetenv("TV_CACHE");
  EXPECT_FALSE(off_cache.enabled());
  // Disabled lookups are counted as bypasses and stay misses-free.
  EXPECT_EQ(off_cache.LookupTopK(Key(1)), nullptr);
  EXPECT_EQ(off_cache.topk_stats().bypasses, 1u);
  EXPECT_EQ(off_cache.topk_stats().misses, 0u);

  // TV_CACHE=on overrides a disabled-by-options cache.
  ::setenv("TV_CACHE", "on", 1);
  QueryCache::Options disabled;
  disabled.enabled = false;
  QueryCache on_cache(disabled);
  ::unsetenv("TV_CACHE");
  EXPECT_TRUE(on_cache.enabled());
}

TEST(QueryCacheTest, RuntimeToggleRetainsEntries) {
  QueryCache qc;
  auto entry = std::make_shared<QueryCache::TopKEntry>();
  entry->hits.emplace_back(1.0f, 42u);
  qc.InsertTopK(Key(5), entry);
  ASSERT_NE(qc.LookupTopK(Key(5)), nullptr);
  qc.set_enabled(false);
  EXPECT_EQ(qc.LookupTopK(Key(5)), nullptr);  // bypass while off
  qc.set_enabled(true);
  auto back = qc.LookupTopK(Key(5));  // entry survived the off window
  ASSERT_NE(back, nullptr);
  ASSERT_EQ(back->hits.size(), 1u);
  EXPECT_EQ(back->hits[0].second, 42u);
}

// ---------------- End-to-end fixture ----------------

class CacheFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Database::Options options;
    options.store.segment_capacity = 8;  // several segments
    options.embeddings.index_params.m = 8;
    options.embeddings.index_params.ef_construction = 64;
    db_ = std::make_unique<Database>(options);
    session_ = std::make_unique<GsqlSession>(db_.get());
    auto ddl = session_->Run(
        "CREATE VERTEX Person (firstName STRING, age INT);"
        "CREATE VERTEX Post (language STRING, length INT);"
        "CREATE UNDIRECTED EDGE knows (FROM Person, TO Person);"
        "CREATE DIRECTED EDGE hasCreator (FROM Post, TO Person);"
        "CREATE EMBEDDING SPACE space1 (DIMENSION = 4, MODEL = M, INDEX = HNSW,"
        " DATATYPE = FLOAT, METRIC = L2);"
        "ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE content_emb"
        " IN EMBEDDING SPACE space1;"
        "ALTER VERTEX Person ADD EMBEDDING ATTRIBUTE profile_emb"
        " IN EMBEDDING SPACE space1;");
    ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();
    Transaction txn = db_->Begin();
    const char* names[] = {"Alice", "Bob", "Carol", "Dave"};
    for (int i = 0; i < 4; ++i) {
      auto vid = txn.InsertVertex("Person", {std::string(names[i]), int64_t{20 + i}});
      ASSERT_TRUE(vid.ok());
      ASSERT_TRUE(txn.SetEmbedding(*vid, "Person", "profile_emb",
                                   {static_cast<float>(100 + i), 0, 0, 0})
                      .ok());
      persons_.push_back(*vid);
    }
    ASSERT_TRUE(txn.InsertEdge("knows", persons_[0], persons_[1]).ok());
    ASSERT_TRUE(txn.Commit().ok());
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 3; ++j) {
        Transaction ptxn = db_->Begin();
        auto vid = ptxn.InsertVertex(
            "Post",
            {std::string(j == 0 ? "English" : "German"), int64_t{500 + 300 * j}});
        ASSERT_TRUE(vid.ok());
        ASSERT_TRUE(ptxn.InsertEdge("hasCreator", *vid, persons_[i]).ok());
        ASSERT_TRUE(ptxn.SetEmbedding(*vid, "Post", "content_emb",
                                      {static_cast<float>(10 * i + j), 0, 0, 0})
                        .ok());
        ASSERT_TRUE(ptxn.Commit().ok());
        posts_.push_back(*vid);
      }
    }
    ASSERT_TRUE(db_->Vacuum().ok());
  }

  QueryParams Params(std::vector<float> qv) {
    QueryParams p;
    p["qv"] = std::move(qv);
    return p;
  }

  static bool Has(const std::string& text, const std::string& needle) {
    return text.find(needle) != std::string::npos;
  }

  // Runs `q` under EXPLAIN ANALYZE and returns the annotated plan.
  std::string Analyze(const std::string& q, const QueryParams& params) {
    auto result = session_->Run("EXPLAIN ANALYZE " + q, params);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result->explain : std::string();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<GsqlSession> session_;
  std::vector<VertexId> persons_;
  std::vector<VertexId> posts_;
};

// ---------------- Version bumps on commit / vacuum / merge ----------------

TEST_F(CacheFixture, SegmentVersionBumpsOnCommit) {
  const GraphSegment* seg = db_->store()->SegmentAt(0);
  const uint64_t v0 = seg->version();
  const uint64_t g0 = db_->store()->graph_version();
  const Tid tid_before = seg->last_applied_tid();
  Transaction txn = db_->Begin();
  ASSERT_TRUE(
      txn.SetAttr(persons_[0], "Person", "firstName", std::string("Alicia")).ok());
  auto tid = txn.Commit();
  ASSERT_TRUE(tid.ok());
  EXPECT_GT(seg->version(), v0);
  EXPECT_GT(db_->store()->graph_version(), g0);
  EXPECT_GT(seg->last_applied_tid(), tid_before);
  EXPECT_EQ(seg->last_applied_tid(), *tid);
}

TEST_F(CacheFixture, SegmentAndGraphVersionBumpOnVacuum) {
  // Leave a pending delta so the vacuum folds something.
  Transaction txn = db_->Begin();
  ASSERT_TRUE(txn.SetAttr(persons_[1], "Person", "age", int64_t{99}).ok());
  ASSERT_TRUE(txn.Commit().ok());
  const GraphSegment* seg = db_->store()->SegmentAt(0);
  const uint64_t v0 = seg->version();
  const uint64_t g0 = db_->store()->graph_version();
  (void)db_->store()->VacuumGraph();
  EXPECT_GT(seg->version(), v0);
  EXPECT_GT(db_->store()->graph_version(), g0);
}

TEST_F(CacheFixture, StructureVersionBumpsOnMergeAndStaysStable) {
  EXPECT_TRUE(db_->embeddings()->structure_stable());
  const uint64_t s0 = db_->embeddings()->structure_version();
  Transaction txn = db_->Begin();
  ASSERT_TRUE(txn.SetEmbedding(posts_[0], "Post", "content_emb", {77, 0, 0, 0}).ok());
  ASSERT_TRUE(txn.Commit().ok());
  ASSERT_TRUE(db_->Vacuum().ok());  // delta merge + index merge
  EXPECT_GT(db_->embeddings()->structure_version(), s0);
  EXPECT_TRUE(db_->embeddings()->structure_stable());
}

// ---------------- EXPLAIN ANALYZE cache annotations, all five shapes -------

constexpr char kPureTopK[] =
    "R = SELECT s FROM (s:Post)"
    " ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT 2; PRINT R;";

TEST_F(CacheFixture, PureTopKMissThenHit) {
  const std::string first = Analyze(kPureTopK, Params({21, 0, 0, 0}));
  EXPECT_TRUE(Has(first, "* cache: miss")) << first;
  const std::string second = Analyze(kPureTopK, Params({21, 0, 0, 0}));
  EXPECT_TRUE(Has(second, "* cache: hit")) << second;
  // A hit does no index work at all.
  EXPECT_TRUE(Has(second, "* hnsw_distance_evals: 0")) << second;
  // A different query vector is a different key.
  const std::string other = Analyze(kPureTopK, Params({5, 0, 0, 0}));
  EXPECT_TRUE(Has(other, "* cache: miss")) << other;
}

TEST_F(CacheFixture, FilteredTopKScanAndResultTiers) {
  const std::string q =
      "R = SELECT s FROM (s:Post) WHERE s.language = \"English\""
      " ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT 4; PRINT R;";
  const std::string first = Analyze(q, Params({0, 0, 0, 0}));
  // Cold: the VertexAction scan misses the bitmap tier, the top-k misses
  // the result tier.
  EXPECT_TRUE(Has(first, "* cache: miss")) << first;
  const std::string second = Analyze(q, Params({0, 0, 0, 0}));
  EXPECT_TRUE(Has(second, "* cache: hit")) << second;
  EXPECT_FALSE(Has(second, "* cache: miss")) << second;
  // Results must be identical either way.
  auto plain = session_->Run(q, Params({0, 0, 0, 0}));
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->prints[0].vertices.size(), 4u);
}

TEST_F(CacheFixture, PatternShapeScanCacheAnnotations) {
  const std::string q =
      "R = SELECT t FROM (s:Person) <-[:hasCreator]- (t:Post)"
      " WHERE s.firstName = \"Alice\""
      " ORDER BY VECTOR_DIST(t.content_emb, $qv) LIMIT 2; PRINT R;";
  const std::string first = Analyze(q, Params({0, 0, 0, 0}));
  EXPECT_TRUE(Has(first, "* cache: miss")) << first;
  const std::string second = Analyze(q, Params({0, 0, 0, 0}));
  // Both VertexAction scans hit their per-segment bitmaps; the top-k result
  // hits too (the pattern filter set is unchanged).
  EXPECT_TRUE(Has(second, "* cache: hit")) << second;
  EXPECT_FALSE(Has(second, "* cache: miss")) << second;
  auto an = session_->Run("EXPLAIN ANALYZE " + q, Params({0, 0, 0, 0}));
  ASSERT_TRUE(an.ok());
  ASSERT_EQ(an->prints.size(), 1u);
  EXPECT_EQ(an->prints[0].vertices.size(), 2u);
}

TEST_F(CacheFixture, ComposedVectorSearchShape) {
  const std::string q =
      "EnglishPosts = SELECT t FROM (t:Post) WHERE t.language = \"English\";"
      "TopK = VectorSearch({Post.content_emb}, $qv, 2, {filter: EnglishPosts});"
      "PRINT TopK;";
  const std::string first = Analyze(q, Params({0, 0, 0, 0}));
  EXPECT_TRUE(Has(first, "* cache: miss")) << first;
  const std::string second = Analyze(q, Params({0, 0, 0, 0}));
  EXPECT_TRUE(Has(second, "* cache: hit")) << second;
  EXPECT_FALSE(Has(second, "* cache: miss")) << second;
}

TEST_F(CacheFixture, RangeShapeIsAlwaysBypass) {
  const std::string q =
      "R = SELECT s FROM (s:Post)"
      " WHERE VECTOR_DIST(s.content_emb, $qv) < 5.0; PRINT R;";
  const std::string first = Analyze(q, Params({0, 0, 0, 0}));
  EXPECT_TRUE(Has(first, "* cache: bypass")) << first;
  const std::string second = Analyze(q, Params({0, 0, 0, 0}));
  EXPECT_TRUE(Has(second, "* cache: bypass")) << second;
}

TEST_F(CacheFixture, ExplainWithoutAnalyzeCarriesNoCacheActuals) {
  auto ex = session_->Run(std::string("EXPLAIN ") + kPureTopK, Params({21, 0, 0, 0}));
  ASSERT_TRUE(ex.ok()) << ex.status().ToString();
  EXPECT_FALSE(Has(ex->explain, "    * ")) << ex->explain;
}

TEST_F(CacheFixture, SessionBypassAnnotatesAndSkipsCache) {
  (void)Analyze(kPureTopK, Params({21, 0, 0, 0}));  // warm
  GsqlSession bypass(db_.get());
  bypass.SetCacheBypass(true);
  auto result = bypass.Run(std::string("EXPLAIN ANALYZE ") + kPureTopK,
                           Params({21, 0, 0, 0}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(Has(result->explain, "* cache: bypass")) << result->explain;
  EXPECT_FALSE(Has(result->explain, "* cache: hit")) << result->explain;
  // And the answer matches the cached session's bit-for-bit.
  auto cached = session_->Run(kPureTopK, Params({21, 0, 0, 0}));
  auto raw = bypass.Run(kPureTopK, Params({21, 0, 0, 0}));
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(cached->prints[0].vertices, raw->prints[0].vertices);
}

// PROFILE measures what a query actually does, so it must never be served
// from the cache: even with a warm top-k entry, the profiled run redoes the
// search and reports real HNSW work, and afterwards the session still caches.
TEST_F(CacheFixture, ProfileAlwaysBypassesCache) {
  (void)session_->Run(kPureTopK, Params({21, 0, 0, 0}));  // warm
  auto prof =
      session_->Run(std::string("PROFILE ") + kPureTopK, Params({21, 0, 0, 0}));
  ASSERT_TRUE(prof.ok()) << prof.status().ToString();
  ASSERT_TRUE(prof->profiled);
  auto it = prof->profile_counters.find("hnsw.distance_evals");
  ASSERT_NE(it, prof->profile_counters.end()) << prof->profile;
  EXPECT_GT(it->second, 0u);
  // The forced bypass is scoped to the PROFILE run: the next plain query on
  // the same session is served from the still-warm cache.
  EXPECT_TRUE(Has(Analyze(kPureTopK, Params({21, 0, 0, 0})), "* cache: hit"));
}

// ---------------- Invalidation by key mismatch ----------------

TEST_F(CacheFixture, CommitInvalidatesScanAndResultTiers) {
  const std::string q =
      "R = SELECT s FROM (s:Post) WHERE s.language = \"English\""
      " ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT 4; PRINT R;";
  (void)Analyze(q, Params({0, 0, 0, 0}));
  EXPECT_TRUE(Has(Analyze(q, Params({0, 0, 0, 0})), "* cache: hit"));
  // A commit bumps the touched segment's version and the visible tid: both
  // tiers must go stale by key mismatch, not return the old answer.
  Transaction txn = db_->Begin();
  auto vid = txn.InsertVertex("Post", {std::string("English"), int64_t{100}});
  ASSERT_TRUE(vid.ok());
  ASSERT_TRUE(
      txn.SetEmbedding(*vid, "Post", "content_emb", {0.1f, 0, 0, 0}).ok());
  ASSERT_TRUE(txn.Commit().ok());
  const std::string after = Analyze(q, Params({0, 0, 0, 0}));
  EXPECT_FALSE(Has(after, "* cache: hit")) << after;
  auto fresh = session_->Run(q, Params({0, 0, 0, 0}));
  ASSERT_TRUE(fresh.ok());
  // The new nearby post must appear (the old cached answer would lack it).
  bool found = false;
  for (VertexId v : fresh->prints[0].vertices) found |= (v == *vid);
  EXPECT_TRUE(found);
}

TEST_F(CacheFixture, VacuumInvalidatesResultTier) {
  (void)Analyze(kPureTopK, Params({21, 0, 0, 0}));
  EXPECT_TRUE(Has(Analyze(kPureTopK, Params({21, 0, 0, 0})), "* cache: hit"));
  // An index merge changes the structure version: the warm entry must not
  // be served even though the visible tid is unchanged.
  ASSERT_TRUE(db_->Vacuum().ok());
  const std::string after = Analyze(kPureTopK, Params({21, 0, 0, 0}));
  EXPECT_TRUE(Has(after, "* cache: miss")) << after;
  // And the re-computed answer matches what was cached before.
  auto again = session_->Run(kPureTopK, Params({21, 0, 0, 0}));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->prints[0].vertices.size(), 2u);
}

// ---------------- TV_CACHE=off end to end ----------------

TEST(CacheEnvTest, TvCacheOffBypassesEndToEnd) {
  ::setenv("TV_CACHE", "off", 1);
  Database db;
  ::unsetenv("TV_CACHE");
  ASSERT_FALSE(db.cache()->enabled());
  GsqlSession session(&db);
  auto ddl = session.Run(
      "CREATE VERTEX Doc (title STRING);"
      "ALTER VERTEX Doc ADD EMBEDDING ATTRIBUTE emb (DIMENSION = 4, MODEL = M,"
      " INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);");
  ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();
  Transaction txn = db.Begin();
  for (int i = 0; i < 6; ++i) {
    auto vid = txn.InsertVertex("Doc", {std::string("d") + std::to_string(i)});
    ASSERT_TRUE(vid.ok());
    ASSERT_TRUE(
        txn.SetEmbedding(*vid, "Doc", "emb", {static_cast<float>(i), 0, 0, 0}).ok());
  }
  ASSERT_TRUE(txn.Commit().ok());
  QueryParams params;
  params["qv"] = std::vector<float>{2, 0, 0, 0};
  const std::string q =
      "R = SELECT s FROM (s:Doc) ORDER BY VECTOR_DIST(s.emb, $qv) LIMIT 2;"
      " PRINT R;";
  for (int i = 0; i < 2; ++i) {
    auto result = session.Run("EXPLAIN ANALYZE " + q, params);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_NE(result->explain.find("* cache: bypass"), std::string::npos)
        << result->explain;
    EXPECT_EQ(result->explain.find("* cache: hit"), std::string::npos)
        << result->explain;
  }
  const QueryCache::TierStats topk = db.cache()->topk_stats();
  EXPECT_EQ(topk.hits, 0u);
  EXPECT_EQ(topk.misses, 0u);
  EXPECT_EQ(topk.entries, 0u);
}

#if !defined(TIGERVECTOR_NO_METRICS)

// ---------------- tv.cache.* metrics reconcile with annotations ----------

TEST_F(CacheFixture, MetricsReconcileWithExplainOutcomes) {
  auto* topk_hits = obs::MetricsRegistry::Global().GetCounter("tv.cache.topk.hits_total");
  auto* topk_misses =
      obs::MetricsRegistry::Global().GetCounter("tv.cache.topk.misses_total");
  auto* bm_hits =
      obs::MetricsRegistry::Global().GetCounter("tv.cache.bitmap.hits_total");
  auto* bm_misses =
      obs::MetricsRegistry::Global().GetCounter("tv.cache.bitmap.misses_total");
  const uint64_t th0 = topk_hits->Value(), tm0 = topk_misses->Value();
  const uint64_t bh0 = bm_hits->Value(), bm0 = bm_misses->Value();
  const QueryCache::TierStats inst_t0 = db_->cache()->topk_stats();
  const QueryCache::TierStats inst_b0 = db_->cache()->bitmap_stats();

  const std::string q =
      "R = SELECT s FROM (s:Post) WHERE s.language = \"English\""
      " ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT 4; PRINT R;";
  const std::string first = Analyze(q, Params({3, 0, 0, 0}));
  const std::string second = Analyze(q, Params({3, 0, 0, 0}));
  EXPECT_TRUE(Has(first, "* cache: miss")) << first;
  EXPECT_TRUE(Has(second, "* cache: hit")) << second;

  // One top-k miss then one top-k hit.
  EXPECT_EQ(topk_misses->Value() - tm0, 1u);
  EXPECT_EQ(topk_hits->Value() - th0, 1u);
  // The scan missed every Post segment once, then hit every one.
  const uint64_t scan_misses = bm_misses->Value() - bm0;
  const uint64_t scan_hits = bm_hits->Value() - bh0;
  EXPECT_GT(scan_misses, 0u);
  EXPECT_EQ(scan_hits, scan_misses);
  // Instance-local stats moved in lockstep with the process-wide counters.
  const QueryCache::TierStats inst_t1 = db_->cache()->topk_stats();
  const QueryCache::TierStats inst_b1 = db_->cache()->bitmap_stats();
  EXPECT_EQ(inst_t1.hits - inst_t0.hits, 1u);
  EXPECT_EQ(inst_t1.misses - inst_t0.misses, 1u);
  EXPECT_EQ(inst_b1.hits - inst_b0.hits, scan_hits);
  EXPECT_EQ(inst_b1.misses - inst_b0.misses, scan_misses);
  EXPECT_GT(inst_t1.entries, 0u);
  EXPECT_GT(inst_b1.bytes, 0u);
  // RenderStats (the shell's \cache output) reflects the same state.
  const std::string stats = db_->cache()->RenderStats();
  EXPECT_TRUE(Has(stats, "bitmap tier:")) << stats;
  EXPECT_TRUE(Has(stats, "top-k tier")) << stats;
  EXPECT_TRUE(Has(stats, "enabled")) << stats;
}

// ---------------- Satellite: predicate evaluations are hoisted ----------

// The filter pipeline must evaluate each predicate once per scanned vertex —
// never once per searched attribute — and a warm bitmap cache must skip
// predicate evaluation entirely.
TEST_F(CacheFixture, PredicateEvalsCountedOncePerVertexAndZeroWhenWarm) {
  auto* evals =
      obs::MetricsRegistry::Global().GetCounter("tv.query.predicate_evals_total");
  const std::string single =
      "Cand = SELECT t FROM (t:Post) WHERE t.language = \"English\";"
      "R = VectorSearch({Post.content_emb}, $qv, 2, {filter: Cand}); PRINT R;";
  const std::string multi =
      "Cand = SELECT t FROM (t:Post) WHERE t.language = \"English\";"
      "R = VectorSearch({Post.content_emb, Person.profile_emb}, $qv, 2,"
      " {filter: Cand}); PRINT R;";
  const uint64_t e0 = evals->Value();
  auto r1 = session_->Run(single, Params({0, 0, 0, 0}));
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  const uint64_t cold_single = evals->Value() - e0;
  // Cold scan: one evaluation per visible Post (12 of them).
  EXPECT_EQ(cold_single, 12u);
  // Doubling the searched attributes must not re-run the predicate scan:
  // the candidate set is computed once and only fingerprinted per search,
  // and the second scan hits the bitmap cache (0 evaluations).
  const uint64_t e1 = evals->Value();
  auto r2 = session_->Run(multi, Params({0, 0, 0, 0}));
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(evals->Value() - e1, 0u);
  // An uncached rerun of the same multi-attribute search still evaluates
  // once per vertex, not once per attribute.
  GsqlSession bypass(db_.get());
  bypass.SetCacheBypass(true);
  const uint64_t e2 = evals->Value();
  auto r3 = bypass.Run(multi, Params({0, 0, 0, 0}));
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();
  EXPECT_EQ(evals->Value() - e2, cold_single);
}

#endif  // !TIGERVECTOR_NO_METRICS

}  // namespace
}  // namespace tigervector

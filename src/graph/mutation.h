#ifndef TIGERVECTOR_GRAPH_MUTATION_H_
#define TIGERVECTOR_GRAPH_MUTATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"

namespace tigervector {

// A single buffered write. Transactions accumulate mutations and apply them
// atomically at commit; the WAL serializes the same representation for
// durability/recovery.
struct Mutation {
  enum class Kind : uint8_t {
    kInsertVertex = 0,
    kSetAttr = 1,
    kInsertEdge = 2,
    kDeleteEdge = 3,
    kDeleteVertex = 4,
    kUpsertEmbedding = 5,
    kDeleteEmbedding = 6,
  };

  Kind kind;
  VertexId vid = kInvalidVertexId;

  // kInsertVertex
  VertexTypeId vtype = 0;
  std::vector<Value> attrs;

  // kSetAttr
  uint16_t attr_idx = 0;
  Value value;

  // kInsertEdge / kDeleteEdge
  EdgeTypeId etype = 0;
  VertexId dst = kInvalidVertexId;

  // kUpsertEmbedding / kDeleteEmbedding
  std::string emb_attr;
  std::vector<float> embedding;
};

}  // namespace tigervector

#endif  // TIGERVECTOR_GRAPH_MUTATION_H_

#include "hnsw/flat_index.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <mutex>

#include "obs/metrics.h"
#include "util/cancel.h"
#include "util/topk_heap.h"

namespace tigervector {

namespace {
// Scan batch size for the gathered distance kernel (see brute_force.cc).
constexpr size_t kScanBatch = 128;
}  // namespace

Status FlatIndex::AddPoint(uint64_t label, const float* vec) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = slots_.find(label);
  if (it != slots_.end()) {
    std::memcpy(data_.data() + it->second.offset, vec, dim_ * sizeof(float));
    if (it->second.deleted) {
      it->second.deleted = false;
      ++live_;
    }
    if (quant_trained_) {
      int8_t* codes = codes_.data() + it->second.offset;
      simd::Sq8Encode(qparams_, vec, dim_, codes);
      norms_[it->second.offset / dim_] = simd::Sq8CodeNorm(codes, dim_);
    }
    return Status::OK();
  }
  Slot slot;
  slot.offset = data_.size();
  data_.insert(data_.end(), vec, vec + dim_);
  order_.push_back(label);
  slots_.emplace(label, slot);
  ++live_;
  if (quant_trained_) {
    codes_.resize(data_.size());
    int8_t* codes = codes_.data() + slot.offset;
    simd::Sq8Encode(qparams_, vec, dim_, codes);
    norms_.push_back(simd::Sq8CodeNorm(codes, dim_));
  }
  return Status::OK();
}

Status FlatIndex::TrainQuantization() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!sq8_ || order_.empty()) return Status::OK();
  simd::Sq8Trainer trainer(dim_);
  for (size_t row = 0; row < order_.size(); ++row) {
    trainer.Observe(data_.data() + row * dim_);
  }
  qparams_ = trainer.Finish();
  if (!qparams_.valid()) return Status::OK();
  codes_.resize(data_.size());
  norms_.resize(order_.size());
  for (size_t row = 0; row < order_.size(); ++row) {
    int8_t* codes = codes_.data() + row * dim_;
    simd::Sq8Encode(qparams_, data_.data() + row * dim_, dim_, codes);
    norms_[row] = simd::Sq8CodeNorm(codes, dim_);
  }
  quant_trained_ = true;
  TV_COUNTER_INC("tv.quant.trainings_total");
  return Status::OK();
}

bool FlatIndex::quant_active() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return quant_trained_;
}

Status FlatIndex::UpdateItems(const std::vector<VectorIndexUpdate>& items,
                              ThreadPool* pool) {
  (void)pool;  // linear structure; batch applies sequentially
  for (const VectorIndexUpdate& item : items) {
    if (item.is_delete) {
      Status st = MarkDeleted(item.label);
      if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
    } else {
      TV_RETURN_NOT_OK(AddPoint(item.label, item.value.data()));
    }
  }
  return Status::OK();
}

Status FlatIndex::MarkDeleted(uint64_t label) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = slots_.find(label);
  if (it == slots_.end()) {
    return Status::NotFound("label " + std::to_string(label) + " not in index");
  }
  if (!it->second.deleted) {
    it->second.deleted = true;
    --live_;
  }
  return Status::OK();
}

bool FlatIndex::Contains(uint64_t label) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return slots_.count(label) > 0;
}

bool FlatIndex::IsDeleted(uint64_t label) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = slots_.find(label);
  return it == slots_.end() || it->second.deleted;
}

Status FlatIndex::GetEmbedding(uint64_t label, float* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = slots_.find(label);
  if (it == slots_.end()) {
    return Status::NotFound("label " + std::to_string(label) + " not in index");
  }
  std::memcpy(out, data_.data() + it->second.offset, dim_ * sizeof(float));
  return Status::OK();
}

std::vector<SearchHit> FlatIndex::TopKSearch(const float* query, size_t k, size_t ef,
                                             const FilterView& filter) const {
  (void)ef;  // exact index: no accuracy knob
  return BruteForceSearch(query, k, filter);
}

std::vector<SearchHit> FlatIndex::RangeSearch(const float* query, float threshold,
                                              size_t initial_k, size_t ef,
                                              const FilterView& filter) const {
  (void)initial_k;
  (void)ef;
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<SearchHit> out;
  const float* rows[kScanBatch];
  uint64_t row_labels[kScanBatch];
  float dists[kScanBatch];
  size_t n = 0;
  auto flush = [&] {
    if (ComputeDistanceBatchGather(metric_, query, rows, dim_, n, dists,
                                   threshold) > 0) {
      for (size_t j = 0; j < n; ++j) {
        if (dists[j] < threshold) out.push_back(SearchHit{dists[j], row_labels[j]});
      }
    }
    n = 0;
  };
  for (size_t row = 0; row < order_.size(); ++row) {
    const uint64_t label = order_[row];
    auto it = slots_.find(label);
    if (it->second.deleted || !filter.Accepts(label)) continue;
    rows[n] = data_.data() + it->second.offset;
    row_labels[n] = label;
    if (++n == kScanBatch) flush();
  }
  if (n > 0) flush();
  std::sort(out.begin(), out.end(), [](const SearchHit& a, const SearchHit& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.label < b.label;
  });
  return out;
}

std::vector<SearchHit> FlatIndex::BruteForceSearch(const float* query, size_t k,
                                                   const FilterView& filter) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const bool use_quant =
      quant_trained_ && simd::ScopedQuantQuery::Enabled() && k > 0;
  // Quantized scan: rank every row on int8 codes into a rerank_factor*k
  // heap, then rescore the survivors with exact fp32 below.
  const size_t heap_k =
      use_quant ? std::max<size_t>(1, simd::ScopedQuantQuery::RerankFactor()) * k
                : k;
  std::vector<int8_t> qcode;
  int64_t qnorm = 0;
  if (use_quant) {
    qcode.resize(dim_);
    simd::Sq8Encode(qparams_, query, dim_, qcode.data());
    qnorm = simd::Sq8CodeNorm(qcode.data(), dim_);
  }
  TopKHeap<uint64_t> heap(heap_k);
  const float* rows[kScanBatch];
  const int8_t* crows[kScanBatch];
  int64_t cnorms[kScanBatch];
  uint64_t row_labels[kScanBatch];
  float dists[kScanBatch];
  size_t n = 0;
  auto flush = [&] {
    const float threshold = heap.full() ? heap.WorstDistance()
                                        : std::numeric_limits<float>::infinity();
    if (use_quant) {
      simd::Sq8DistanceBatchGather(metric_, qcode.data(), qnorm, qparams_.scale,
                                   crows, cnorms, dim_, n, dists, threshold);
    } else {
      ComputeDistanceBatchGather(metric_, query, rows, dim_, n, dists, threshold);
    }
    for (size_t j = 0; j < n; ++j) {
      if (!heap.WouldReject(dists[j])) heap.Push(dists[j], row_labels[j]);
    }
    n = 0;
  };
  for (size_t row = 0; row < order_.size(); ++row) {
    // Request deadline check; the partial heap is discarded by the caller.
    if ((row & (kCancelCheckInterval - 1)) == 0 && CancelCheckExpired()) break;
    const uint64_t label = order_[row];
    auto it = slots_.find(label);
    if (it->second.deleted || !filter.Accepts(label)) continue;
    if (use_quant) {
      crows[n] = codes_.data() + it->second.offset;
      cnorms[n] = norms_[it->second.offset / dim_];
    } else {
      rows[n] = data_.data() + it->second.offset;
    }
    row_labels[n] = label;
    if (++n == kScanBatch) flush();
  }
  if (n > 0) flush();
  if (!use_quant) {
    std::vector<SearchHit> out;
    for (const auto& e : heap.TakeSorted()) out.push_back(SearchHit{e.distance, e.id});
    return out;
  }
  // Rerank the approx-ranked survivors with exact fp32 distances.
  const auto approx = heap.TakeSorted();
  std::vector<SearchHit> reranked;
  reranked.reserve(approx.size());
  for (size_t j0 = 0; j0 < approx.size(); j0 += kScanBatch) {
    const size_t bn = std::min(kScanBatch, approx.size() - j0);
    for (size_t j = 0; j < bn; ++j) {
      rows[j] = data_.data() + slots_.find(approx[j0 + j].id)->second.offset;
    }
    ComputeDistanceBatchGather(metric_, query, rows, dim_, bn, dists);
    for (size_t j = 0; j < bn; ++j) {
      reranked.push_back(SearchHit{dists[j], approx[j0 + j].id});
    }
  }
  simd::NoteQuantScan(approx.size());
  std::sort(reranked.begin(), reranked.end(),
            [](const SearchHit& a, const SearchHit& b) {
              return a.distance != b.distance ? a.distance < b.distance
                                              : a.label < b.label;
            });
  if (reranked.size() > k) reranked.resize(k);
  return reranked;
}

size_t FlatIndex::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return live_;
}

std::vector<uint64_t> FlatIndex::Labels() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<uint64_t> out;
  out.reserve(live_);
  for (const auto& [label, slot] : slots_) {
    if (!slot.deleted) out.push_back(label);
  }
  return out;
}

}  // namespace tigervector

#ifndef TIGERVECTOR_LOADER_LOADING_JOB_H_
#define TIGERVECTOR_LOADER_LOADING_JOB_H_

#include <map>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "core/database.h"
#include "loader/csv.h"

namespace tigervector {

// One `LOAD file TO VERTEX Type VALUES (col0, col1, ...)` step. The first
// column is the external primary key; every column whose name matches a
// declared attribute of the vertex type is stored into that attribute.
struct VertexLoadStep {
  std::string file;
  std::string vertex_type;
  std::vector<std::string> columns;
};

// One `LOAD file TO EMBEDDING ATTRIBUTE attr ON VERTEX Type VALUES
// (id, split(attr, "sep"))` step (paper Sec. 4.1: vectors typically arrive
// in a separate file produced by the ML pipeline).
struct EmbeddingLoadStep {
  std::string file;
  std::string vertex_type;
  std::string attr;
  char vector_separator = ':';
};

using LoadStep = std::variant<VertexLoadStep, EmbeddingLoadStep>;

struct LoadReport {
  size_t vertices_loaded = 0;
  size_t embeddings_loaded = 0;
  size_t rows_skipped = 0;  // malformed rows / unknown external ids
  std::vector<std::string> warnings;
};

// A declarative loading job (paper Sec. 4.1's `CREATE LOADING JOB`): a
// named sequence of CSV load steps executed in order against a Database,
// committing in batches. Graph attributes and embeddings can come from
// different files and are stitched together through the external primary
// key, which is exactly what the embedding data type makes easy.
class LoadingJob {
 public:
  LoadingJob(std::string name, std::string graph)
      : name_(std::move(name)), graph_(std::move(graph)) {}

  void AddStep(LoadStep step) { steps_.push_back(std::move(step)); }
  const std::string& name() const { return name_; }
  const std::string& graph() const { return graph_; }
  size_t num_steps() const { return steps_.size(); }

  // Runs every step. Unknown external ids in embedding steps are skipped
  // (reported as warnings); malformed rows are skipped likewise.
  Result<LoadReport> Run(Database* db, size_t batch_size = 1024,
                         const CsvOptions& csv = CsvOptions());

  // External-id mapping built up by vertex steps (per vertex type), usable
  // by callers that need to resolve keys after the load.
  const std::unordered_map<std::string, VertexId>* IdMap(
      const std::string& vertex_type) const;

 private:
  Status RunVertexStep(Database* db, const VertexLoadStep& step, size_t batch_size,
                       const CsvOptions& csv, LoadReport* report);
  Status RunEmbeddingStep(Database* db, const EmbeddingLoadStep& step,
                          size_t batch_size, const CsvOptions& csv,
                          LoadReport* report);

  std::string name_;
  std::string graph_;
  std::vector<LoadStep> steps_;
  std::map<std::string, std::unordered_map<std::string, VertexId>> id_maps_;
};

}  // namespace tigervector

#endif  // TIGERVECTOR_LOADER_LOADING_JOB_H_

#include "query/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

namespace tigervector {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "CREATE",  "VERTEX",   "EDGE",     "DIRECTED", "UNDIRECTED", "FROM",
      "TO",      "EMBEDDING", "SPACE",   "ATTRIBUTE", "ALTER",     "ADD",
      "IN",      "SELECT",   "WHERE",    "ORDER",    "BY",         "LIMIT",
      "AND",     "OR",       "NOT",      "PRINT",    "TRUE",       "FALSE",
      "INT",     "UINT",     "FLOAT",    "DOUBLE",   "STRING",     "BOOL",
      "PRIMARY", "KEY",      "VECTOR_DIST", "DIMENSION", "MODEL",  "INDEX",
      "DATATYPE", "METRIC",  "HNSW",     "FLAT",     "IVF_FLAT",   "COSINE",     "L2",
      "IP",      "VECTORSEARCH", "UNION", "INTERSECT", "MINUS",
      "QUANT",   "SQ8",      "OFF",
      "LOADING", "JOB",      "GRAPH",    "LOAD",     "VALUES",     "ON",
      "SPLIT",   "FOR",
  };
  return *kKeywords;
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

bool IsKeyword(const Token& token, const char* keyword) {
  return token.kind == TokenKind::kKeyword && token.text == keyword;
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  size_t line = 1, column = 1;
  const size_t n = input.size();

  auto advance = [&](size_t count) {
    for (size_t j = 0; j < count && i < n; ++j) {
      if (input[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };
  auto make = [&](TokenKind kind, std::string text = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.column = column;
    return t;
  };

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Comments: -- to end of line.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') advance(1);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '@') {
      // @/@@ accumulator names are lexed as part of identifiers.
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_' || input[j] == '@')) {
        ++j;
      }
      std::string word = input.substr(i, j - i);
      const std::string upper = ToUpper(word);
      Token t = Keywords().count(upper) ? make(TokenKind::kKeyword, upper)
                                        : make(TokenKind::kIdent, std::move(word));
      tokens.push_back(std::move(t));
      advance(j - i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       input[j] == '.' || input[j] == 'e' || input[j] == 'E' ||
                       ((input[j] == '+' || input[j] == '-') && j > i &&
                        (input[j - 1] == 'e' || input[j - 1] == 'E')))) {
        if (input[j] == '.' || input[j] == 'e' || input[j] == 'E') is_float = true;
        ++j;
      }
      const std::string num = input.substr(i, j - i);
      Token t = make(is_float ? TokenKind::kFloatLit : TokenKind::kIntLit, num);
      if (is_float) {
        t.float_value = std::strtod(num.c_str(), nullptr);
      } else {
        t.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      tokens.push_back(std::move(t));
      advance(j - i);
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      std::string text;
      while (j < n && input[j] != quote) {
        if (input[j] == '\\' && j + 1 < n) ++j;  // simple escape
        text.push_back(input[j]);
        ++j;
      }
      if (j >= n) {
        return Status::ParseError("unterminated string literal at line " +
                                  std::to_string(line));
      }
      tokens.push_back(make(TokenKind::kStringLit, std::move(text)));
      advance(j + 1 - i);
      continue;
    }
    if (c == '$') {
      size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      if (j == i + 1) {
        return Status::ParseError("empty parameter name at line " +
                                  std::to_string(line));
      }
      tokens.push_back(make(TokenKind::kParam, input.substr(i + 1, j - i - 1)));
      advance(j - i);
      continue;
    }
    // Two-character operators first.
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && input[i + 1] == b;
    };
    if (two('-', '>')) {
      tokens.push_back(make(TokenKind::kArrowRight));
      advance(2);
      continue;
    }
    if (two('<', '-')) {
      tokens.push_back(make(TokenKind::kArrowLeft));
      advance(2);
      continue;
    }
    if (two('=', '=')) {
      tokens.push_back(make(TokenKind::kEq));
      advance(2);
      continue;
    }
    if (two('!', '=') || two('<', '>')) {
      tokens.push_back(make(TokenKind::kNe));
      advance(2);
      continue;
    }
    if (two('<', '=')) {
      tokens.push_back(make(TokenKind::kLe));
      advance(2);
      continue;
    }
    if (two('>', '=')) {
      tokens.push_back(make(TokenKind::kGe));
      advance(2);
      continue;
    }
    TokenKind kind;
    switch (c) {
      case '(': kind = TokenKind::kLParen; break;
      case ')': kind = TokenKind::kRParen; break;
      case '{': kind = TokenKind::kLBrace; break;
      case '}': kind = TokenKind::kRBrace; break;
      case '[': kind = TokenKind::kLBracket; break;
      case ']': kind = TokenKind::kRBracket; break;
      case ',': kind = TokenKind::kComma; break;
      case ';': kind = TokenKind::kSemicolon; break;
      case ':': kind = TokenKind::kColon; break;
      case '.': kind = TokenKind::kDot; break;
      case '=': kind = TokenKind::kAssign; break;
      case '<': kind = TokenKind::kLt; break;
      case '>': kind = TokenKind::kGt; break;
      case '-': kind = TokenKind::kDash; break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at line " + std::to_string(line));
    }
    tokens.push_back(make(kind));
    advance(1);
  }
  tokens.push_back(make(TokenKind::kEnd));
  return tokens;
}

}  // namespace tigervector

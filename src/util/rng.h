#ifndef TIGERVECTOR_UTIL_RNG_H_
#define TIGERVECTOR_UTIL_RNG_H_

#include <cstdint>

namespace tigervector {

// Deterministic splitmix64/xoshiro-style PRNG so datasets, HNSW level
// draws, and workloads are reproducible across runs and platforms
// (std::mt19937 distributions are not portable across standard libraries).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {
    // Avoid the all-zero state.
    if (state_ == 0) state_ = 0x9e3779b97f4a7c15ULL;
    Next64();
  }

  uint64_t Next64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound).
  uint64_t NextBounded(uint64_t bound) { return bound == 0 ? 0 : Next64() % bound; }

  // Uniform float in [0, 1).
  float NextFloat() {
    return static_cast<float>(Next64() >> 40) * (1.0f / 16777216.0f);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Standard normal via Box-Muller (one value per call; cheap enough here).
  float NextGaussian();

 private:
  uint64_t state_;
};

}  // namespace tigervector

#endif  // TIGERVECTOR_UTIL_RNG_H_

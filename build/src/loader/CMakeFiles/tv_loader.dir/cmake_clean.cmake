file(REMOVE_RECURSE
  "CMakeFiles/tv_loader.dir/csv.cc.o"
  "CMakeFiles/tv_loader.dir/csv.cc.o.d"
  "CMakeFiles/tv_loader.dir/loading_job.cc.o"
  "CMakeFiles/tv_loader.dir/loading_job.cc.o.d"
  "libtv_loader.a"
  "libtv_loader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#ifndef TIGERVECTOR_NET_CLIENT_H_
#define TIGERVECTOR_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "util/rng.h"

namespace tigervector::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connect_timeout_ms = 2000;
  // Socket-level cap on waiting for a response; the last line of defense
  // when the server stalls without honoring the in-band deadline.
  int request_timeout_ms = 30000;
  // Bounded retries for RETRY_LATER rejections and (idempotent requests
  // only) transport errors. 0 disables retrying entirely.
  int max_retries = 3;
  int backoff_base_ms = 10;
  uint64_t jitter_seed = 0x7ea5;
  // Fault site consulted by this client's sends (tests).
  std::string fault_site;
};

struct RunOptions {
  // Remaining request budget shipped in the frame header; the server turns
  // it into a CancelToken deadline. 0 = use the server default.
  uint64_t deadline_micros = 0;
  // Marks the request safe to retry on a transport error (the reply may
  // have been lost after execution). Read-only queries are idempotent;
  // loads/DDL are not. RETRY_LATER is always retryable: the server
  // guarantees a rejected request was never executed.
  bool idempotent = false;
};

// Blocking client for tv_server. Reconnects lazily; every error surfaces
// as a typed Status:
//   kDeadlineExceeded -- the server reported deadline expiry, or a local
//                        connect/request timeout fired
//   kUnavailable      -- the server fast-rejected (saturated) and retries
//                        were exhausted
//   kIOError          -- transport failure (torn frame, peer died, ...)
//   anything else     -- the query's own error, decoded from the wire
class TvClient {
 public:
  explicit TvClient(ClientOptions options)
      : options_(std::move(options)), rng_(options_.jitter_seed) {}

  // Runs a GSQL script remotely; mirrors GsqlSession::Run.
  Result<ScriptResult> Run(const std::string& script,
                           const QueryParams& params = QueryParams(),
                           const RunOptions& run = RunOptions());

  // Round-trips a ping (connectivity check).
  Status Ping();

  // Fetches the server's Prometheus metrics rendering / flight-recorder
  // dump for the given id (0 = ring summary).
  Result<std::string> Metrics();
  Result<std::string> FlightRec(uint64_t flight_id);

  // Drops the cached connection; the next request reconnects.
  void Disconnect() { socket_.Close(); }

  // Cumulative retry attempts and RETRY_LATER rejections observed.
  uint64_t retries() const { return retries_; }
  uint64_t rejected() const { return rejected_; }

 private:
  Status EnsureConnected();
  // One send+recv exchange; on any transport error the connection is
  // dropped so the next attempt starts clean.
  Status Exchange(const Frame& request, Frame* response);
  // Exchange with the retry/backoff policy applied.
  Status ExchangeWithRetry(const Frame& request, bool idempotent,
                           Frame* response);
  void Backoff(int attempt);

  ClientOptions options_;
  Socket socket_;
  Rng rng_;
  uint64_t next_request_id_ = 1;
  uint64_t retries_ = 0;
  uint64_t rejected_ = 0;
};

}  // namespace tigervector::net

#endif  // TIGERVECTOR_NET_CLIENT_H_

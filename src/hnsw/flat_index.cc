#include "hnsw/flat_index.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <mutex>

#include "util/topk_heap.h"

namespace tigervector {

namespace {
// Scan batch size for the gathered distance kernel (see brute_force.cc).
constexpr size_t kScanBatch = 128;
}  // namespace

Status FlatIndex::AddPoint(uint64_t label, const float* vec) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = slots_.find(label);
  if (it != slots_.end()) {
    std::memcpy(data_.data() + it->second.offset, vec, dim_ * sizeof(float));
    if (it->second.deleted) {
      it->second.deleted = false;
      ++live_;
    }
    return Status::OK();
  }
  Slot slot;
  slot.offset = data_.size();
  data_.insert(data_.end(), vec, vec + dim_);
  order_.push_back(label);
  slots_.emplace(label, slot);
  ++live_;
  return Status::OK();
}

Status FlatIndex::UpdateItems(const std::vector<VectorIndexUpdate>& items,
                              ThreadPool* pool) {
  (void)pool;  // linear structure; batch applies sequentially
  for (const VectorIndexUpdate& item : items) {
    if (item.is_delete) {
      Status st = MarkDeleted(item.label);
      if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
    } else {
      TV_RETURN_NOT_OK(AddPoint(item.label, item.value.data()));
    }
  }
  return Status::OK();
}

Status FlatIndex::MarkDeleted(uint64_t label) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = slots_.find(label);
  if (it == slots_.end()) {
    return Status::NotFound("label " + std::to_string(label) + " not in index");
  }
  if (!it->second.deleted) {
    it->second.deleted = true;
    --live_;
  }
  return Status::OK();
}

bool FlatIndex::Contains(uint64_t label) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return slots_.count(label) > 0;
}

bool FlatIndex::IsDeleted(uint64_t label) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = slots_.find(label);
  return it == slots_.end() || it->second.deleted;
}

Status FlatIndex::GetEmbedding(uint64_t label, float* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = slots_.find(label);
  if (it == slots_.end()) {
    return Status::NotFound("label " + std::to_string(label) + " not in index");
  }
  std::memcpy(out, data_.data() + it->second.offset, dim_ * sizeof(float));
  return Status::OK();
}

std::vector<SearchHit> FlatIndex::TopKSearch(const float* query, size_t k, size_t ef,
                                             const FilterView& filter) const {
  (void)ef;  // exact index: no accuracy knob
  return BruteForceSearch(query, k, filter);
}

std::vector<SearchHit> FlatIndex::RangeSearch(const float* query, float threshold,
                                              size_t initial_k, size_t ef,
                                              const FilterView& filter) const {
  (void)initial_k;
  (void)ef;
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<SearchHit> out;
  const float* rows[kScanBatch];
  uint64_t row_labels[kScanBatch];
  float dists[kScanBatch];
  size_t n = 0;
  auto flush = [&] {
    if (ComputeDistanceBatchGather(metric_, query, rows, dim_, n, dists,
                                   threshold) > 0) {
      for (size_t j = 0; j < n; ++j) {
        if (dists[j] < threshold) out.push_back(SearchHit{dists[j], row_labels[j]});
      }
    }
    n = 0;
  };
  for (size_t row = 0; row < order_.size(); ++row) {
    const uint64_t label = order_[row];
    auto it = slots_.find(label);
    if (it->second.deleted || !filter.Accepts(label)) continue;
    rows[n] = data_.data() + it->second.offset;
    row_labels[n] = label;
    if (++n == kScanBatch) flush();
  }
  if (n > 0) flush();
  std::sort(out.begin(), out.end(), [](const SearchHit& a, const SearchHit& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.label < b.label;
  });
  return out;
}

std::vector<SearchHit> FlatIndex::BruteForceSearch(const float* query, size_t k,
                                                   const FilterView& filter) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  TopKHeap<uint64_t> heap(k);
  const float* rows[kScanBatch];
  uint64_t row_labels[kScanBatch];
  float dists[kScanBatch];
  size_t n = 0;
  auto flush = [&] {
    const float threshold = heap.full() ? heap.WorstDistance()
                                        : std::numeric_limits<float>::infinity();
    ComputeDistanceBatchGather(metric_, query, rows, dim_, n, dists, threshold);
    for (size_t j = 0; j < n; ++j) {
      if (!heap.WouldReject(dists[j])) heap.Push(dists[j], row_labels[j]);
    }
    n = 0;
  };
  for (size_t row = 0; row < order_.size(); ++row) {
    const uint64_t label = order_[row];
    auto it = slots_.find(label);
    if (it->second.deleted || !filter.Accepts(label)) continue;
    rows[n] = data_.data() + it->second.offset;
    row_labels[n] = label;
    if (++n == kScanBatch) flush();
  }
  if (n > 0) flush();
  std::vector<SearchHit> out;
  for (const auto& e : heap.TakeSorted()) out.push_back(SearchHit{e.distance, e.id});
  return out;
}

size_t FlatIndex::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return live_;
}

std::vector<uint64_t> FlatIndex::Labels() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<uint64_t> out;
  out.reserve(live_);
  for (const auto& [label, slot] : slots_) {
    if (!slot.deleted) out.push_back(label);
  }
  return out;
}

}  // namespace tigervector

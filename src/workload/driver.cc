#include "workload/driver.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "util/timer.h"

namespace tigervector {

DriverResult RunClosedLoop(size_t num_threads, size_t queries_per_thread,
                           const std::function<void(size_t, size_t)>& query_fn) {
  std::vector<std::vector<double>> latencies(num_threads);
  std::vector<std::thread> threads;
  Timer total;
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      latencies[t].reserve(queries_per_thread);
      for (size_t i = 0; i < queries_per_thread; ++i) {
        Timer timer;
        query_fn(t, i);
        latencies[t].push_back(timer.ElapsedMillis());
      }
    });
  }
  for (auto& th : threads) th.join();

  DriverResult result;
  result.seconds = total.ElapsedSeconds();
  std::vector<double> all;
  for (const auto& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  result.queries = all.size();
  result.qps = result.seconds > 0 ? result.queries / result.seconds : 0;
  if (!all.empty()) {
    double sum = 0;
    for (double v : all) sum += v;
    result.mean_latency_ms = sum / all.size();
    std::sort(all.begin(), all.end());
    auto pct = [&](double p) {
      const size_t idx = std::min(all.size() - 1,
                                  static_cast<size_t>(p * (all.size() - 1)));
      return all[idx];
    };
    result.p50_ms = pct(0.50);
    result.p95_ms = pct(0.95);
    result.p99_ms = pct(0.99);
  }
  return result;
}

DriverResult RunOpenLoop(size_t num_threads, size_t queries_per_thread,
                         double rate_per_thread,
                         const std::function<void(size_t, size_t)>& query_fn) {
  if (rate_per_thread <= 0) {
    return RunClosedLoop(num_threads, queries_per_thread, query_fn);
  }
  std::vector<std::vector<double>> latencies(num_threads);
  std::vector<std::thread> threads;
  Timer total;
  const double interval_s = 1.0 / rate_per_thread;
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      latencies[t].reserve(queries_per_thread);
      Timer clock;
      for (size_t i = 0; i < queries_per_thread; ++i) {
        // The i-th query is *scheduled* at i * interval; latency counts
        // from the schedule, not from when the thread got around to it.
        const double scheduled = i * interval_s;
        while (clock.ElapsedSeconds() < scheduled) {
          std::this_thread::yield();
        }
        query_fn(t, i);
        latencies[t].push_back((clock.ElapsedSeconds() - scheduled) * 1e3);
      }
    });
  }
  for (auto& th : threads) th.join();

  DriverResult result;
  result.seconds = total.ElapsedSeconds();
  std::vector<double> all;
  for (const auto& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  result.queries = all.size();
  result.qps = result.seconds > 0 ? result.queries / result.seconds : 0;
  if (!all.empty()) {
    double sum = 0;
    for (double v : all) sum += v;
    result.mean_latency_ms = sum / all.size();
    std::sort(all.begin(), all.end());
    auto pct = [&](double p) {
      const size_t idx = std::min(all.size() - 1,
                                  static_cast<size_t>(p * (all.size() - 1)));
      return all[idx];
    };
    result.p50_ms = pct(0.50);
    result.p95_ms = pct(0.95);
    result.p99_ms = pct(0.99);
  }
  return result;
}

}  // namespace tigervector

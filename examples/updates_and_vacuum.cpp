// The update lifecycle of Sec. 4.3, end to end: transactional vector
// updates accumulate as MVCC deltas (immediately searchable), the
// delta-merge vacuum seals them into delta files, the index-merge vacuum
// folds them into the per-segment HNSW indexes, and heavy update ratios
// favor a full rebuild (Fig. 11's advice).
#include <cstdio>

#include "core/database.h"
#include "util/timer.h"
#include "workload/datasets.h"

using namespace tigervector;

namespace {

size_t PendingDeltas(Database& db) { return db.embeddings()->TotalPendingDeltas(); }

}  // namespace

int main() {
  Database::Options options;
  options.store.segment_capacity = 2048;
  Database db(options);
  EmbeddingTypeInfo info;
  info.dimension = 32;
  info.model = "demo";
  info.metric = Metric::kL2;
  if (!db.schema()->CreateVertexType("Doc", {}).ok()) return 1;
  if (!db.schema()->AddEmbeddingAttr("Doc", "emb", info).ok()) return 1;

  // 1. Initial load: 6000 documents.
  VectorDataset data = MakeSiftLikeWithDim(32, 6000, 0);
  std::vector<VertexId> vids;
  {
    Timer t;
    Transaction txn = db.Begin();
    for (size_t i = 0; i < data.num_base; ++i) {
      auto vid = txn.InsertVertex("Doc", {});
      if (!vid.ok()) return 1;
      std::vector<float> v(data.BaseVector(i), data.BaseVector(i) + 32);
      if (!txn.SetEmbedding(*vid, "Doc", "emb", std::move(v)).ok()) return 1;
      vids.push_back(*vid);
      if (vids.size() % 1000 == 0) {
        if (!txn.Commit().ok()) return 1;
        txn = db.Begin();
      }
    }
    if (!txn.Commit().ok()) return 1;
    std::printf("loaded %zu docs in %.2fs -> %zu pending deltas\n", vids.size(),
                t.ElapsedSeconds(), PendingDeltas(db));
  }

  // 2. Search BEFORE any vacuum: served from the delta overlay.
  std::vector<float> q(data.BaseVector(17), data.BaseVector(17) + 32);
  auto hits = db.VectorSearch({{"Doc", "emb"}}, q, 1);
  if (!hits.ok()) return 1;
  std::printf("pre-vacuum search finds doc %llu (served from deltas)\n",
              static_cast<unsigned long long>(*hits->begin()));

  // 3. Two-stage vacuum: delta merge (fast) then index merge (slow).
  {
    Timer t1;
    auto sealed = db.embeddings()->RunDeltaMerge();
    if (!sealed.ok()) return 1;
    std::printf("stage 1 (delta merge): sealed %zu records in %.3fs\n", *sealed,
                t1.ElapsedSeconds());
    Timer t2;
    auto merged = db.embeddings()->RunIndexMerge(db.pool());
    if (!merged.ok()) return 1;
    std::printf("stage 2 (index merge): folded %zu records in %.2fs"
                " (the expensive stage, as the paper measures)\n",
                *merged, t2.ElapsedSeconds());
  }
  std::printf("pending deltas after vacuum: %zu\n", PendingDeltas(db));

  // 4. Update 10% of the corpus transactionally; still instantly visible.
  VectorDataset updates = MakeSiftLikeWithDim(32, 600, 42);
  {
    Transaction txn = db.Begin();
    for (size_t i = 0; i < 600; ++i) {
      std::vector<float> v(updates.BaseVector(i), updates.BaseVector(i) + 32);
      if (!txn.SetEmbedding(vids[i * 10], "Doc", "emb", std::move(v)).ok()) return 1;
    }
    if (!txn.Commit().ok()) return 1;
  }
  std::vector<float> moved(updates.BaseVector(0), updates.BaseVector(0) + 32);
  hits = db.VectorSearch({{"Doc", "emb"}}, moved, 1);
  if (!hits.ok()) return 1;
  std::printf("updated doc found at its NEW location before vacuum: %s\n",
              hits->count(vids[0]) ? "yes" : "no");

  // 5. Incremental merge vs full rebuild timing at this update ratio.
  Timer inc;
  if (!db.Vacuum().ok()) return 1;
  const double inc_s = inc.ElapsedSeconds();
  Timer rebuild;
  if (!db.embeddings()->RebuildAllIndexes(db.pool()).ok()) return 1;
  const double rebuild_s = rebuild.ElapsedSeconds();
  std::printf("incremental merge of 10%% updates: %.2fs; full rebuild: %.2fs\n",
              inc_s, rebuild_s);
  std::printf("(the paper's Fig. 11: beyond ~20%% updated, rebuild wins)\n");
  return 0;
}

#ifndef TIGERVECTOR_GRAPH_SCHEMA_H_
#define TIGERVECTOR_GRAPH_SCHEMA_H_

#include <map>
#include <string>
#include <vector>

#include "embedding/embedding_type.h"
#include "graph/types.h"
#include "util/result.h"

namespace tigervector {

// Definition of an embedding attribute attached to a vertex type, either
// inline (ALTER VERTEX ... ADD EMBEDDING ATTRIBUTE attr (...)) or through an
// embedding space (... IN EMBEDDING SPACE name).
struct EmbeddingAttrDef {
  std::string name;
  EmbeddingTypeInfo info;
  std::string space;  // empty when defined inline
};

struct VertexTypeDef {
  VertexTypeId id = 0;
  std::string name;
  std::vector<AttrDef> attrs;
  std::vector<EmbeddingAttrDef> embedding_attrs;

  // Index of a scalar attribute by name, or -1.
  int AttrIndex(const std::string& attr_name) const;
  const EmbeddingAttrDef* FindEmbeddingAttr(const std::string& attr_name) const;
};

struct EdgeTypeDef {
  EdgeTypeId id = 0;
  std::string name;
  VertexTypeId from_type = 0;
  VertexTypeId to_type = 0;
  bool directed = true;
};

// The graph schema: vertex/edge type registry plus embedding spaces.
// Mutations are not thread-safe; define the schema before serving queries
// (DDL-then-DML, as in the paper's experiments).
class Schema {
 public:
  // Registers a vertex type; fails with kAlreadyExists on duplicate names.
  Result<VertexTypeId> CreateVertexType(const std::string& name,
                                        std::vector<AttrDef> attrs);

  // Registers an edge type between two existing vertex types.
  Result<EdgeTypeId> CreateEdgeType(const std::string& name,
                                    const std::string& from_type,
                                    const std::string& to_type, bool directed = true);

  // CREATE EMBEDDING SPACE name (...): a reusable embedding type shared by
  // multiple vertex types (paper Sec. 4.1, Figure 2).
  Status CreateEmbeddingSpace(const std::string& name, const EmbeddingTypeInfo& info);

  // ALTER VERTEX type ADD EMBEDDING ATTRIBUTE attr (...).
  Status AddEmbeddingAttr(const std::string& vertex_type, const std::string& attr_name,
                          const EmbeddingTypeInfo& info);

  // ALTER VERTEX type ADD EMBEDDING ATTRIBUTE attr IN EMBEDDING SPACE space.
  Status AddEmbeddingAttrInSpace(const std::string& vertex_type,
                                 const std::string& attr_name,
                                 const std::string& space_name);

  Result<const VertexTypeDef*> GetVertexType(const std::string& name) const;
  Result<const EdgeTypeDef*> GetEdgeType(const std::string& name) const;
  Result<const EmbeddingTypeInfo*> GetEmbeddingSpace(const std::string& name) const;

  const VertexTypeDef& vertex_type(VertexTypeId id) const { return vertex_types_[id]; }
  const EdgeTypeDef& edge_type(EdgeTypeId id) const { return edge_types_[id]; }
  size_t num_vertex_types() const { return vertex_types_.size(); }
  size_t num_edge_types() const { return edge_types_.size(); }

 private:
  std::vector<VertexTypeDef> vertex_types_;
  std::vector<EdgeTypeDef> edge_types_;
  std::map<std::string, VertexTypeId> vertex_type_by_name_;
  std::map<std::string, EdgeTypeId> edge_type_by_name_;
  std::map<std::string, EmbeddingTypeInfo> embedding_spaces_;
};

}  // namespace tigervector

#endif  // TIGERVECTOR_GRAPH_SCHEMA_H_

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "util/thread_pool.h"
#include "workload/datasets.h"
#include "workload/driver.h"
#include "workload/ic_queries.h"
#include "workload/snb.h"

namespace tigervector {
namespace {

// ---------------- Datasets ----------------

TEST(DatasetTest, SiftLikeShape) {
  auto ds = MakeSiftLike(500, 10);
  EXPECT_EQ(ds.dim, 128u);
  EXPECT_EQ(ds.num_base, 500u);
  EXPECT_EQ(ds.num_queries, 10u);
  EXPECT_EQ(ds.base.size(), 500u * 128);
  // SIFT-like values are non-negative.
  for (float v : ds.base) EXPECT_GE(v, 0.0f);
}

TEST(DatasetTest, DeepLikeNormalized) {
  auto ds = MakeDeepLike(200, 5);
  EXPECT_EQ(ds.dim, 96u);
  for (size_t i = 0; i < ds.num_base; ++i) {
    EXPECT_NEAR(L2Norm(ds.BaseVector(i), ds.dim), 1.0f, 1e-4);
  }
}

TEST(DatasetTest, DeterministicInSeed) {
  auto a = MakeSiftLike(100, 5, 9);
  auto b = MakeSiftLike(100, 5, 9);
  auto c = MakeSiftLike(100, 5, 10);
  EXPECT_EQ(a.base, b.base);
  EXPECT_NE(a.base, c.base);
}

TEST(DatasetTest, CustomDimGenerator) {
  auto ds = MakeSiftLikeWithDim(32, 50, 2);
  EXPECT_EQ(ds.dim, 32u);
  EXPECT_EQ(ds.base.size(), 50u * 32);
}

TEST(DatasetTest, GroundTruthIsExactTopK) {
  auto ds = MakeSiftLike(300, 4);
  ComputeGroundTruth(&ds, 5, nullptr);
  ASSERT_EQ(ds.ground_truth.size(), 4u);
  for (size_t q = 0; q < ds.num_queries; ++q) {
    ASSERT_EQ(ds.ground_truth[q].size(), 5u);
    // Verify the first entry is the global minimum by brute force.
    float best = 1e30f;
    uint64_t best_id = 0;
    for (size_t i = 0; i < ds.num_base; ++i) {
      const float d =
          ComputeDistance(ds.metric, ds.QueryVector(q), ds.BaseVector(i), ds.dim);
      if (d < best) {
        best = d;
        best_id = i;
      }
    }
    EXPECT_EQ(ds.ground_truth[q][0], best_id);
  }
}

TEST(DatasetTest, GroundTruthParallelMatchesSequential) {
  auto a = MakeSiftLike(300, 6);
  auto b = MakeSiftLike(300, 6);
  ThreadPool pool(3);
  ComputeGroundTruth(&a, 4, nullptr);
  ComputeGroundTruth(&b, 4, &pool);
  EXPECT_EQ(a.ground_truth, b.ground_truth);
}

TEST(DatasetTest, RecallComputation) {
  VectorDataset ds;
  ds.gt_k = 4;
  ds.ground_truth = {{1, 2, 3, 4}};
  EXPECT_DOUBLE_EQ(RecallAtK(ds, 0, {1, 2, 3, 4}, 4), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ds, 0, {1, 2, 9, 8}, 4), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(ds, 0, {}, 4), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK(ds, 5, {1}, 4), 0.0);  // bad query index
}

// ---------------- SNB generator ----------------

class SnbFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    config_ = new SnbConfig();
    config_->num_persons = 120;
    config_->posts_per_person = 2;
    config_->comments_per_post = 1;
    config_->embedding_dim = 8;
    config_->num_countries = 5;
    stats_ = new SnbStats();
    ASSERT_TRUE(CreateSnbSchema(db_, *config_).ok());
    ASSERT_TRUE(LoadSnb(db_, *config_, stats_).ok());
  }
  static void TearDownTestSuite() {
    delete stats_;
    delete config_;
    delete db_;
  }

  static Database* db_;
  static SnbConfig* config_;
  static SnbStats* stats_;
};

Database* SnbFixture::db_ = nullptr;
SnbConfig* SnbFixture::config_ = nullptr;
SnbStats* SnbFixture::stats_ = nullptr;

TEST_F(SnbFixture, CountsMatchConfig) {
  EXPECT_EQ(stats_->num_persons, 120u);
  EXPECT_EQ(stats_->num_posts, 240u);
  EXPECT_EQ(stats_->num_comments, 240u);
  EXPECT_GT(stats_->num_knows_edges, 120u);
  EXPECT_EQ(stats_->countries.size(), 5u);
}

TEST_F(SnbFixture, AliceExists) {
  const Tid tid = db_->store()->visible_tid();
  auto name = db_->store()->GetAttr(stats_->persons[0], "firstName", tid);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(std::get<std::string>(*name), "Alice");
}

TEST_F(SnbFixture, EveryPostHasEmbedding) {
  float buf[8];
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(db_->embeddings()
                    ->GetEmbedding("Post", "content_emb", stats_->posts[i], buf)
                    .ok());
  }
}

TEST_F(SnbFixture, VacuumLeftNoPendingDeltas) {
  EXPECT_EQ(db_->embeddings()->TotalPendingDeltas(), 0u);
}

TEST_F(SnbFixture, MessagesSearchableAcrossBothTypes) {
  std::vector<float> q(8, 50.0f);
  auto result = db_->VectorSearch(
      {{"Post", "content_emb"}, {"Comment", "content_emb"}}, q, 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 5u);
}

// ---------------- IC queries ----------------

TEST_F(SnbFixture, IcCandidateProfilesMatchPaperShape) {
  IcQueryRunner runner(db_, stats_);
  std::vector<float> q(8, 30.0f);
  auto ic5 = runner.Run("IC5", 2, q, 10);
  auto ic6 = runner.Run("IC6", 2, q, 10);
  auto ic3 = runner.Run("IC3", 2, q, 10);
  auto ic9 = runner.Run("IC9", 2, q, 10);
  auto ic11 = runner.Run("IC11", 2, q, 10);
  ASSERT_TRUE(ic5.ok() && ic6.ok() && ic3.ok() && ic9.ok() && ic11.ok());
  // IC5 collects the largest candidate set; IC9 caps at 20; IC3 and IC6
  // are (much) more selective than IC5 (paper Tables 3/4 shape). The
  // IC3-vs-IC6 ordering is only meaningful at bench scale, not here.
  EXPECT_GT(ic5->num_candidates, ic6->num_candidates);
  EXPECT_GT(ic5->num_candidates, ic3->num_candidates);
  EXPECT_GT(ic5->num_candidates, ic11->num_candidates);
  EXPECT_LE(ic9->num_candidates, 20u);
  EXPECT_GE(ic5->end_to_end_seconds, 0.0);
  EXPECT_LE(ic5->vector_search_seconds, ic5->end_to_end_seconds);
}

TEST_F(SnbFixture, IcCandidatesGrowWithHops) {
  IcQueryRunner runner(db_, stats_);
  std::vector<float> q(8, 30.0f);
  auto h2 = runner.Run("IC5", 2, q, 10);
  auto h4 = runner.Run("IC5", 4, q, 10);
  ASSERT_TRUE(h2.ok() && h4.ok());
  EXPECT_GE(h4->num_candidates, h2->num_candidates);
}

TEST_F(SnbFixture, UnknownIcQueryRejected) {
  IcQueryRunner runner(db_, stats_);
  std::vector<float> q(8, 0.0f);
  EXPECT_FALSE(runner.Run("IC99", 2, q, 10).ok());
}

// ---------------- Closed-loop driver ----------------

TEST(DriverTest, RunsAllQueries) {
  std::atomic<size_t> count{0};
  auto result = RunClosedLoop(4, 25, [&](size_t, size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100u);
  EXPECT_EQ(result.queries, 100u);
  EXPECT_GT(result.qps, 0.0);
  EXPECT_GE(result.p99_ms, result.p50_ms);
}

TEST(DriverTest, SingleThread) {
  auto result = RunClosedLoop(1, 10, [&](size_t, size_t) {});
  EXPECT_EQ(result.queries, 10u);
  EXPECT_GE(result.mean_latency_ms, 0.0);
}

}  // namespace
}  // namespace tigervector

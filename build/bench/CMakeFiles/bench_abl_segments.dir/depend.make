# Empty dependencies file for bench_abl_segments.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_embedding.dir/test_embedding.cc.o"
  "CMakeFiles/test_embedding.dir/test_embedding.cc.o.d"
  "test_embedding"
  "test_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#!/usr/bin/env bash
# End-to-end smoke test of the networked serving layer, driven exactly the
# way an operator would drive it: a real tv_server process, a real
# gsql_shell --connect client, real TCP.
#
#   1. happy path   — boot with --init, load vectors through a loading job,
#                     run a top-k over the wire, fetch \metrics, and check
#                     the server-side request counters reconcile.
#   2. torn frame   — server armed to tear every response mid-write; the
#                     client must surface a typed error, never a silently
#                     truncated result.
#   3. kill -9      — server killed while a request is blocked inside
#                     execution; the client must report the dead peer as a
#                     typed error.
#
# Usage: tests/server_smoke.sh [BUILD_DIR]   (default: build)
set -u

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/tools/tv_server"
SHELL_BIN="$BUILD_DIR/tools/gsql_shell"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/tv_smoke.XXXXXX")"
SERVER_PID=""
FAILURES=0

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  if [ "${TV_SMOKE_KEEP:-0}" = 1 ]; then echo "workdir: $WORK"; else rm -rf "$WORK"; fi
}
trap cleanup EXIT

fail() {
  echo "FAIL: $1" >&2
  FAILURES=$((FAILURES + 1))
}

for bin in "$SERVER" "$SHELL_BIN"; do
  [ -x "$bin" ] || { echo "missing binary $bin (build first)" >&2; exit 2; }
done

# Starts tv_server with the given extra flags, parses the ephemeral port
# from its banner, and exports SERVER_PID / PORT.
start_server() {
  "$SERVER" --port=0 "$@" > "$WORK/server.log" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$WORK/server.log")"
    [ -n "$PORT" ] && return 0
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
  done
  echo "server did not come up; log:" >&2
  cat "$WORK/server.log" >&2
  exit 2
}

stop_server() {
  [ -n "$SERVER_PID" ] && { kill "$SERVER_PID" 2>/dev/null; wait "$SERVER_PID" 2>/dev/null; }
  SERVER_PID=""
}

# ---------------------------------------------------------------------------
# Scenario 1: happy path.
# ---------------------------------------------------------------------------
printf '1,alpha\n2,beta\n3,gamma\n4,delta\n' > "$WORK/docs.csv"
printf '1,1:0:0:0\n2,2:0:0:0\n3,3:0:0:0\n4,4:0:0:0\n' > "$WORK/embs.csv"
cat > "$WORK/init.gsql" <<EOF
CREATE VERTEX Doc (title STRING);
CREATE EMBEDDING SPACE space1 (DIMENSION = 4, MODEL = M, INDEX = HNSW,
  DATATYPE = FLOAT, METRIC = L2);
ALTER VERTEX Doc ADD EMBEDDING ATTRIBUTE emb IN EMBEDDING SPACE space1;
CREATE LOADING JOB j FOR GRAPH g {
  LOAD "$WORK/docs.csv" TO VERTEX Doc VALUES (id, title);
  LOAD "$WORK/embs.csv" TO EMBEDDING ATTRIBUTE emb
    ON VERTEX Doc VALUES (id, split(emb, ":"));
}
EOF

start_server --init="$WORK/init.gsql"

"$SHELL_BIN" --connect "127.0.0.1:$PORT" > "$WORK/happy.out" 2>&1 <<'EOF'
\set qv 1,0,0,0
R = SELECT s FROM (s:Doc) ORDER BY VECTOR_DIST(s.emb, $qv) LIMIT 2; PRINT R;
\metrics
\quit
EOF
grep -q "connected to 127.0.0.1:$PORT" "$WORK/happy.out" \
  || fail "shell did not connect (happy path)"
grep -q 'R (2 vertices):' "$WORK/happy.out" \
  || fail "top-k over the wire did not return 2 vertices"
# The shell issued exactly one query, one ping, one metrics fetch; each
# per-type counter must reconcile with those driven counts exactly.
for kind in query ping metrics; do
  grep -q "^tv_server_requests_total{type=\"$kind\"} 1\$" "$WORK/happy.out" \
    || fail "tv_server_requests_total{type=\"$kind\"} does not reconcile to 1"
done
grep -q '^tv_net_frames_recv_total' "$WORK/happy.out" \
  || fail "\\metrics did not include tv_net_frames_recv_total"

stop_server

# ---------------------------------------------------------------------------
# Scenario 2: every server response torn mid-write -> typed client error.
# The first exchange is the shell's ping, whose 32-byte response is cut at
# byte 20; the client must classify it, not accept a short frame.
# ---------------------------------------------------------------------------
start_server --fault=net.server.conn:torn_write:20

"$SHELL_BIN" --connect "127.0.0.1:$PORT" > "$WORK/torn.out" 2>&1 <<'EOF'
\quit
EOF
grep -q "cannot reach 127.0.0.1:$PORT" "$WORK/torn.out" \
  || fail "torn response did not surface as a connect-time error"
grep -Eq 'torn frame|closed' "$WORK/torn.out" \
  || fail "torn response error is not typed (want 'torn frame'/'closed'): $(cat "$WORK/torn.out")"
grep -q 'R (' "$WORK/torn.out" \
  && fail "torn response still produced a result (silent truncation)"

stop_server

# ---------------------------------------------------------------------------
# Scenario 3: kill -9 while a request is blocked inside execution.
# The request is a loading job reading from a FIFO with no writer, so the
# server is deterministically wedged mid-request when the KILL lands.
# ---------------------------------------------------------------------------
start_server --init="$WORK/init.gsql"
mkfifo "$WORK/block.fifo"

# One line: the shell dispatches on a trailing ';' even inside braces.
"$SHELL_BIN" --connect "127.0.0.1:$PORT" > "$WORK/kill.out" 2>&1 <<EOF &
CREATE LOADING JOB jk FOR GRAPH g { LOAD "$WORK/block.fifo" TO VERTEX Doc VALUES (id, title); }
\quit
EOF
SHELL_PID=$!
sleep 1  # let the request reach the server and block on the FIFO
kill -9 "$SERVER_PID" 2>/dev/null
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=""
wait "$SHELL_PID"
# The prompt shares the line with the error ("gsql> error: ..."), so no
# line anchor here.
grep -q 'error: IOError' "$WORK/kill.out" \
  || fail "killed server did not surface a typed IOError: $(grep 'error' "$WORK/kill.out")"
grep -Eq 'closed|reset' "$WORK/kill.out" \
  || fail "killed-server error does not name the dead peer: $(cat "$WORK/kill.out")"

if [ "$FAILURES" -ne 0 ]; then
  echo "server smoke: $FAILURES failure(s)" >&2
  exit 1
fi
echo "server smoke: all scenarios passed"

// AVX-512BW int8 SQ8 kernels: true 512-bit integer multiply-adds. The
// AVX-512F TU (distance_avx512.cc) cannot use vpmaddwd on zmm — that needs
// AVX512BW — so its int8 path runs 256-bit ops and is shuffle-port bound on
// the sign-extends. Here one vpmovsxbw widens 32 codes straight into a zmm
// i16 vector (no 128-bit extract first), which cuts the shuffle ops per code
// by 3x versus the AVX2 path and 2x versus the 512F fallback.
//
// This TU is compiled with -mavx512f -mavx512bw and may only be entered
// through the runtime dispatcher, which gates it on
// __builtin_cpu_supports("avx512bw") separately from the fp32 avx512f gate:
// a CPU with F but not BW keeps the 256-bit int8 kernels. Same exact-integer
// contract as every other level: parity against scalar is bit-exact.

#if defined(TV_HAVE_AVX512BW_KERNELS)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "simd/kernels.h"

namespace tigervector::simd::internal {

namespace {

// 32 int8 codes -> 32 sign-extended i16 lanes in one shuffle-port op.
inline __m512i WidenCodes32(const int8_t* p) {
  return _mm512_cvtepi8_epi16(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
}

// Widen the sixteen i32 lanes to i64 before reducing, so the accumulator
// bound is per-lane only: each madd contributes at most 2*254^2 per lane,
// i.e. dims beyond 500k would be needed to overflow an i32 lane.
inline int64_t HsumEpi32I64(__m512i v) {
  const __m512i lo = _mm512_cvtepi32_epi64(_mm512_castsi512_si256(v));
  const __m512i hi = _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64(v, 1));
  return _mm512_reduce_add_epi64(_mm512_add_epi64(lo, hi));
}

}  // namespace

int64_t Avx512BwSq8L2(const int8_t* a, const int8_t* b, size_t dim) {
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 64 <= dim; i += 64) {
    const __m512i d0 = _mm512_sub_epi16(WidenCodes32(a + i), WidenCodes32(b + i));
    const __m512i d1 =
        _mm512_sub_epi16(WidenCodes32(a + i + 32), WidenCodes32(b + i + 32));
    acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(d0, d0));
    acc1 = _mm512_add_epi32(acc1, _mm512_madd_epi16(d1, d1));
  }
  if (i + 32 <= dim) {
    const __m512i d = _mm512_sub_epi16(WidenCodes32(a + i), WidenCodes32(b + i));
    acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(d, d));
    i += 32;
  }
  int64_t total = HsumEpi32I64(acc0) + HsumEpi32I64(acc1);
  for (; i < dim; ++i) {
    const int32_t d = int32_t{a[i]} - int32_t{b[i]};
    total += d * d;
  }
  return total;
}

int64_t Avx512BwSq8Dot(const int8_t* a, const int8_t* b, size_t dim) {
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 64 <= dim; i += 64) {
    acc0 = _mm512_add_epi32(
        acc0, _mm512_madd_epi16(WidenCodes32(a + i), WidenCodes32(b + i)));
    acc1 = _mm512_add_epi32(
        acc1,
        _mm512_madd_epi16(WidenCodes32(a + i + 32), WidenCodes32(b + i + 32)));
  }
  if (i + 32 <= dim) {
    acc0 = _mm512_add_epi32(
        acc0, _mm512_madd_epi16(WidenCodes32(a + i), WidenCodes32(b + i)));
    i += 32;
  }
  int64_t total = HsumEpi32I64(acc0) + HsumEpi32I64(acc1);
  for (; i < dim; ++i) total += int32_t{a[i]} * int32_t{b[i]};
  return total;
}

}  // namespace tigervector::simd::internal

#endif  // TV_HAVE_AVX512BW_KERNELS

# Empty dependencies file for bench_abl_prefilter.
# This may be replaced when dependencies are built.

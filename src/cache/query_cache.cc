#include "cache/query_cache.h"

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/metrics.h"

namespace tigervector {
namespace cache {

Fingerprint FingerprintBytes(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h1 = 0x9368e53c2f6af274ULL ^ len;
  uint64_t h2 = 0xca792adeb5d5f8a6ULL ^ (len * 0x9e3779b97f4a7c15ULL);
  size_t remaining = len;
  while (remaining >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    h1 = Mix64(h1 ^ w);
    h2 = Mix64(h2 + w);
    p += 8;
    remaining -= 8;
  }
  if (remaining > 0) {
    uint64_t w = 0;
    std::memcpy(&w, p, remaining);
    h1 = Mix64(h1 ^ w);
    h2 = Mix64(h2 + w);
  }
  return Fingerprint{Mix64(h1 ^ (h2 >> 32)), Mix64(h2 ^ (h1 >> 32))};
}

namespace {

bool EnvEnabled(bool fallback) {
  const char* env = std::getenv("TV_CACHE");
  if (env == nullptr) return fallback;
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "OFF") == 0 ||
      std::strcmp(env, "0") == 0 || std::strcmp(env, "false") == 0) {
    return false;
  }
  if (std::strcmp(env, "on") == 0 || std::strcmp(env, "ON") == 0 ||
      std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0) {
    return true;
  }
  return fallback;
}

size_t BitmapCost(const Bitmap& bitmap) {
  // Word storage plus container/list/map bookkeeping overhead.
  return (bitmap.size() + 63) / 64 * 8 + 96;
}

size_t TopKCost(const QueryCache::TopKEntry& entry) {
  return entry.hits.size() * sizeof(std::pair<float, uint64_t>) +
         sizeof(QueryCache::TopKEntry) + 96;
}

}  // namespace

QueryCache::QueryCache(Options options)
    : options_(options),
      bitmaps_(options.bitmap_capacity_bytes, options.shards),
      topk_(options.topk_capacity_bytes, options.shards) {
  enabled_.store(EnvEnabled(options.enabled), std::memory_order_release);
}

QueryCache::BitmapPtr QueryCache::LookupBitmap(const CacheKey& key) {
  if (!enabled()) {
    bitmap_bypasses_.fetch_add(1, std::memory_order_relaxed);
    TV_COUNTER_INC("tv.cache.bitmap.bypass_total");
    return nullptr;
  }
  BitmapPtr out;
  if (bitmaps_.Lookup(key, &out)) {
    bitmap_hits_.fetch_add(1, std::memory_order_relaxed);
    TV_COUNTER_INC("tv.cache.bitmap.hits_total");
    return out;
  }
  bitmap_misses_.fetch_add(1, std::memory_order_relaxed);
  TV_COUNTER_INC("tv.cache.bitmap.misses_total");
  return nullptr;
}

void QueryCache::InsertBitmap(const CacheKey& key, BitmapPtr bitmap) {
  if (!enabled() || bitmap == nullptr) return;
  const size_t cost = BitmapCost(*bitmap);
  const size_t evicted = bitmaps_.Insert(key, std::move(bitmap), cost);
  TV_COUNTER_ADD("tv.cache.bitmap.evictions_total", evicted);
  TV_GAUGE_SET("tv.cache.bitmap.bytes", static_cast<int64_t>(bitmaps_.bytes()));
}

QueryCache::TopKPtr QueryCache::LookupTopK(const CacheKey& key) {
  if (!enabled()) {
    topk_bypasses_.fetch_add(1, std::memory_order_relaxed);
    TV_COUNTER_INC("tv.cache.topk.bypass_total");
    return nullptr;
  }
  TopKPtr out;
  if (topk_.Lookup(key, &out)) {
    topk_hits_.fetch_add(1, std::memory_order_relaxed);
    TV_COUNTER_INC("tv.cache.topk.hits_total");
    return out;
  }
  topk_misses_.fetch_add(1, std::memory_order_relaxed);
  TV_COUNTER_INC("tv.cache.topk.misses_total");
  return nullptr;
}

void QueryCache::InsertTopK(const CacheKey& key, TopKPtr entry) {
  if (!enabled() || entry == nullptr) return;
  const size_t cost = TopKCost(*entry);
  const size_t evicted = topk_.Insert(key, std::move(entry), cost);
  TV_COUNTER_ADD("tv.cache.topk.evictions_total", evicted);
  TV_GAUGE_SET("tv.cache.topk.bytes", static_cast<int64_t>(topk_.bytes()));
}

void QueryCache::Clear() {
  bitmaps_.Clear();
  topk_.Clear();
  TV_GAUGE_SET("tv.cache.bitmap.bytes", 0);
  TV_GAUGE_SET("tv.cache.topk.bytes", 0);
}

QueryCache::TierStats QueryCache::bitmap_stats() const {
  TierStats s;
  s.hits = bitmap_hits_.load(std::memory_order_relaxed);
  s.misses = bitmap_misses_.load(std::memory_order_relaxed);
  s.bypasses = bitmap_bypasses_.load(std::memory_order_relaxed);
  s.evictions = bitmaps_.evictions();
  s.entries = bitmaps_.entries();
  s.bytes = bitmaps_.bytes();
  s.capacity_bytes = bitmaps_.capacity_bytes();
  return s;
}

QueryCache::TierStats QueryCache::topk_stats() const {
  TierStats s;
  s.hits = topk_hits_.load(std::memory_order_relaxed);
  s.misses = topk_misses_.load(std::memory_order_relaxed);
  s.bypasses = topk_bypasses_.load(std::memory_order_relaxed);
  s.evictions = topk_.evictions();
  s.entries = topk_.entries();
  s.bytes = topk_.bytes();
  s.capacity_bytes = topk_.capacity_bytes();
  return s;
}

namespace {

void RenderTier(std::ostringstream& out, const char* name,
                const QueryCache::TierStats& s) {
  const uint64_t lookups = s.hits + s.misses;
  const double rate = lookups == 0 ? 0.0 : 100.0 * static_cast<double>(s.hits) /
                                               static_cast<double>(lookups);
  out << "  " << name << ": entries=" << s.entries << " bytes=" << s.bytes << "/"
      << s.capacity_bytes << " hits=" << s.hits << " misses=" << s.misses
      << " hit_rate=" << static_cast<int>(rate) << "% evictions=" << s.evictions
      << " bypasses=" << s.bypasses << "\n";
}

}  // namespace

std::string QueryCache::RenderStats() const {
  std::ostringstream out;
  out << "query cache: " << (enabled() ? "enabled" : "disabled") << "\n";
  RenderTier(out, "bitmap tier", bitmap_stats());
  RenderTier(out, "top-k tier ", topk_stats());
  return out.str();
}

}  // namespace cache
}  // namespace tigervector

// tv_fuzz: deterministic differential fuzzer for the GSQL query surface.
//
// Each seed derives a full scenario (schema parameters, mutation/query/vacuum
// op tape, optional fault-injected crash cycles) and checks every generated
// query against an exact brute-force oracle, metamorphic invariants, and the
// simulated MPP cluster. Same seed + flags => same op stream, same verdict.
//
// Usage:
//   tv_fuzz --seed=7 --ops=400                # one case
//   tv_fuzz --seeds=1:32 --ops=400 --faults   # seed sweep with crash cycles
//   tv_fuzz --seeds=1:100000 --duration=120   # wall-clock-budgeted sweep
//   tv_fuzz --seed=7 --ops=400 --shrink       # minimize a failing case
//   tv_fuzz --seed=7 --ops=400 --skip=3,17    # replay a shrunk repro

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "testing/fuzz_harness.h"

namespace {

using tigervector::testing::FuzzCaseResult;
using tigervector::testing::FuzzOptions;
using tigervector::testing::FuzzStats;

void PrintUsage() {
  std::fprintf(stderr,
               "usage: tv_fuzz [--seed=N | --seeds=A:B] [--ops=N] [--faults]\n"
               "               [--no-mpp] [--duration=SECS] [--min-recall=R]\n"
               "               [--skip=i,j,k] [--shrink] [--work-dir=DIR]\n"
               "               [--explain-analyze] [--cache] [--sq8] [--verbose]\n"
               "  --cache reruns every query with the query cache bypassed\n"
               "  and fails on any cached-vs-uncached divergence\n"
               "  --sq8 pins QUANT=SQ8 on the embedding space: searches rank\n"
               "  on int8 codes and rerank with exact fp32, checked for\n"
               "  soundness + recall against the golden model and for\n"
               "  bit-for-bit rerank-set stability across crash/recover\n");
}

bool ParseSizeList(const std::string& text, std::vector<size_t>* out) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = text.substr(pos, comma - pos);
    if (token.empty()) return false;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return false;
    out->push_back(static_cast<size_t>(v));
    pos = comma + 1;
  }
  return true;
}

std::string StatsLine(const FuzzStats& s) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "txns=%zu failed_commits=%zu queries=%zu exact=%zu recall=%zu "
                "soundness=%zu mpp=%zu metamorphic=%zu delta_merges=%zu "
                "index_merges=%zu recoveries=%zu faults=%zu sq8_stability=%zu",
                s.committed_txns, s.failed_commits, s.queries, s.exact_checks,
                s.recall_checks, s.soundness_checks, s.mpp_checks,
                s.metamorphic_checks, s.delta_merges, s.index_merges,
                s.crash_recoveries, s.faults_armed, s.sq8_stability_checks);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions options;
  uint64_t seed_begin = 0, seed_end = 0;  // inclusive range; 0:0 = single seed
  bool have_range = false;
  bool shrink = false;
  long duration_secs = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value_of("--seed=")) {
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--seeds=")) {
      const char* colon = std::strchr(v, ':');
      if (colon == nullptr) {
        PrintUsage();
        return 2;
      }
      seed_begin = std::strtoull(v, nullptr, 10);
      seed_end = std::strtoull(colon + 1, nullptr, 10);
      have_range = true;
    } else if (const char* v = value_of("--ops=")) {
      options.ops = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (const char* v = value_of("--duration=")) {
      duration_secs = std::strtol(v, nullptr, 10);
    } else if (const char* v = value_of("--min-recall=")) {
      options.min_recall = std::strtod(v, nullptr);
    } else if (const char* v = value_of("--skip=")) {
      if (!ParseSizeList(v, &options.skip)) {
        PrintUsage();
        return 2;
      }
    } else if (const char* v = value_of("--work-dir=")) {
      options.work_dir = v;
    } else if (arg == "--faults") {
      options.with_faults = true;
    } else if (arg == "--no-mpp") {
      options.with_mpp = false;
    } else if (arg == "--explain-analyze") {
      options.explain_analyze = true;
    } else if (arg == "--cache") {
      options.cache_diff = true;
    } else if (arg == "--sq8") {
      options.sq8 = true;
    } else if (arg == "--shrink") {
      shrink = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::fprintf(stderr, "tv_fuzz: unknown argument '%s'\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }

  if (!have_range) {
    seed_begin = seed_end = options.seed;
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(duration_secs);
  size_t passed = 0, failed = 0;
  int exit_code = 0;
  for (uint64_t seed = seed_begin; seed <= seed_end; ++seed) {
    if (duration_secs > 0 && std::chrono::steady_clock::now() >= deadline) {
      std::printf("tv_fuzz: duration budget reached after %zu seeds\n",
                  passed + failed);
      break;
    }
    FuzzOptions case_options = options;
    case_options.seed = seed;
    FuzzCaseResult result = tigervector::testing::RunFuzzCase(case_options);
    if (result.ok) {
      ++passed;
      std::printf("seed=%llu PASS %s\n", static_cast<unsigned long long>(seed),
                  StatsLine(result.stats).c_str());
      continue;
    }
    ++failed;
    exit_code = 1;
    const auto& f = result.failures.front();
    std::printf("seed=%llu FAIL op=%zu kind=%s\n",
                static_cast<unsigned long long>(seed), f.op_index, f.kind.c_str());
    std::printf("  detail: %s\n", f.detail.c_str());
    if (!f.script.empty()) std::printf("  script: %s\n", f.script.c_str());
    std::vector<size_t> skip = case_options.skip;
    if (shrink) {
      std::printf("  shrinking...\n");
      skip = tigervector::testing::ShrinkFailingCase(case_options);
      FuzzOptions replay = case_options;
      replay.skip = skip;
      FuzzCaseResult shrunk = tigervector::testing::RunFuzzCase(replay);
      if (!shrunk.ok) {
        const auto& sf = shrunk.failures.front();
        std::printf("  shrunk to %zu live ops, fails at op=%zu kind=%s\n",
                    case_options.ops - skip.size(), sf.op_index, sf.kind.c_str());
      }
    }
    std::printf("  repro: %s\n",
                tigervector::testing::ReproCommand(case_options, skip).c_str());
  }
  if (have_range || duration_secs > 0) {
    std::printf("tv_fuzz: %zu passed, %zu failed\n", passed, failed);
  }
  return exit_code;
}

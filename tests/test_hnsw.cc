#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "hnsw/brute_force.h"
#include "hnsw/hnsw_index.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tigervector {
namespace {

std::vector<float> RandomPoint(Rng* rng, size_t dim) {
  std::vector<float> v(dim);
  for (float& x : v) x = rng->NextFloat() * 100.0f;
  return v;
}

HnswParams SmallParams(size_t dim, size_t cap, Metric metric = Metric::kL2) {
  HnswParams p;
  p.dim = dim;
  p.metric = metric;
  p.m = 8;
  p.ef_construction = 64;
  p.max_elements = cap;
  return p;
}

class HnswFixture : public ::testing::Test {
 protected:
  void Build(size_t n, size_t dim, Metric metric = Metric::kL2) {
    dim_ = dim;
    index_ = std::make_unique<HnswIndex>(SmallParams(dim, n + 16, metric));
    brute_ = std::make_unique<BruteForceSearcher>(dim, metric);
    Rng rng(21);
    for (size_t i = 0; i < n; ++i) {
      auto v = RandomPoint(&rng, dim);
      ASSERT_TRUE(index_->AddPoint(i, v.data()).ok());
      brute_->Add(i, v.data());
      data_.push_back(std::move(v));
    }
  }

  double AvgRecall(size_t num_queries, size_t k, size_t ef) {
    Rng rng(22);
    double total = 0;
    for (size_t q = 0; q < num_queries; ++q) {
      auto query = RandomPoint(&rng, dim_);
      auto got = index_->TopKSearch(query.data(), k, ef);
      auto want = brute_->TopKSearch(query.data(), k);
      std::set<uint64_t> want_ids;
      for (const auto& h : want) want_ids.insert(h.label);
      size_t hit = 0;
      for (const auto& h : got) hit += want_ids.count(h.label);
      total += static_cast<double>(hit) / std::max<size_t>(1, want.size());
    }
    return total / num_queries;
  }

  size_t dim_ = 0;
  std::unique_ptr<HnswIndex> index_;
  std::unique_ptr<BruteForceSearcher> brute_;
  std::vector<std::vector<float>> data_;
};

TEST_F(HnswFixture, EmptyIndexReturnsNothing) {
  Build(0, 8);
  std::vector<float> q(8, 0.0f);
  EXPECT_TRUE(index_->TopKSearch(q.data(), 5, 32).empty());
  EXPECT_TRUE(index_->RangeSearch(q.data(), 10.0f, 4, 32).empty());
}

TEST_F(HnswFixture, SingleElement) {
  Build(1, 8);
  auto hits = index_->TopKSearch(data_[0].data(), 3, 16);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].label, 0u);
  EXPECT_FLOAT_EQ(hits[0].distance, 0.0f);
}

TEST_F(HnswFixture, ExactMatchFoundFirst) {
  Build(500, 16);
  for (size_t i : {0u, 123u, 499u}) {
    auto hits = index_->TopKSearch(data_[i].data(), 1, 64);
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits[0].label, i);
    EXPECT_NEAR(hits[0].distance, 0.0f, 1e-4);
  }
}

TEST_F(HnswFixture, HighRecallAtLargeEf) {
  Build(2000, 16);
  EXPECT_GT(AvgRecall(20, 10, 200), 0.95);
}

TEST_F(HnswFixture, RecallImprovesWithEf) {
  Build(2000, 16);
  const double low = AvgRecall(20, 10, 10);
  const double high = AvgRecall(20, 10, 150);
  EXPECT_GE(high, low);
  EXPECT_GT(high, 0.9);
}

TEST_F(HnswFixture, ResultsSortedAscending) {
  Build(500, 8);
  Rng rng(31);
  auto q = RandomPoint(&rng, 8);
  auto hits = index_->TopKSearch(q.data(), 20, 64);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i - 1].distance, hits[i].distance);
  }
}

TEST_F(HnswFixture, FilteredSearchOnlyReturnsAccepted) {
  Build(1000, 8);
  Bitmap bm(1000);
  for (size_t i = 0; i < 1000; i += 2) bm.Set(i);  // only even labels
  FilterView fv(&bm);
  Rng rng(32);
  auto q = RandomPoint(&rng, 8);
  auto hits = index_->TopKSearch(q.data(), 10, 128, fv);
  EXPECT_FALSE(hits.empty());
  for (const auto& h : hits) EXPECT_EQ(h.label % 2, 0u);
}

TEST_F(HnswFixture, FilteredSearchMatchesFilteredBruteForce) {
  Build(1000, 8);
  Bitmap bm(1000);
  for (size_t i = 0; i < 100; ++i) bm.Set(i * 7 % 1000);
  FilterView fv(&bm);
  Rng rng(33);
  auto q = RandomPoint(&rng, 8);
  auto got = index_->TopKSearch(q.data(), 5, 400, fv);
  auto want = brute_->TopKSearch(q.data(), 5, fv);
  ASSERT_FALSE(want.empty());
  // With a huge ef relative to index size, filtered recall should be high.
  std::set<uint64_t> want_ids;
  for (const auto& h : want) want_ids.insert(h.label);
  size_t hit = 0;
  for (const auto& h : got) hit += want_ids.count(h.label);
  EXPECT_GE(hit, want.size() - 1);
}

TEST_F(HnswFixture, DeletedItemsExcluded) {
  Build(300, 8);
  auto q = data_[42];
  ASSERT_EQ(index_->TopKSearch(q.data(), 1, 64)[0].label, 42u);
  ASSERT_TRUE(index_->MarkDeleted(42).ok());
  auto hits = index_->TopKSearch(q.data(), 10, 64);
  for (const auto& h : hits) EXPECT_NE(h.label, 42u);
  EXPECT_EQ(index_->size(), 299u);
  EXPECT_TRUE(index_->IsDeleted(42));
}

TEST_F(HnswFixture, DeleteUnknownLabelFails) {
  Build(10, 8);
  EXPECT_EQ(index_->MarkDeleted(999).code(), StatusCode::kNotFound);
}

TEST_F(HnswFixture, ReinsertAfterDeleteRevives) {
  Build(100, 8);
  ASSERT_TRUE(index_->MarkDeleted(7).ok());
  EXPECT_TRUE(index_->IsDeleted(7));
  ASSERT_TRUE(index_->AddPoint(7, data_[7].data()).ok());
  EXPECT_FALSE(index_->IsDeleted(7));
  auto hits = index_->TopKSearch(data_[7].data(), 1, 64);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].label, 7u);
}

TEST_F(HnswFixture, UpdateMovesPoint) {
  Build(400, 8);
  // Move point 5 exactly onto point 300's location.
  ASSERT_TRUE(index_->AddPoint(5, data_[300].data()).ok());
  auto hits = index_->TopKSearch(data_[300].data(), 2, 128);
  ASSERT_GE(hits.size(), 2u);
  std::set<uint64_t> top = {hits[0].label, hits[1].label};
  EXPECT_TRUE(top.count(5) == 1 && top.count(300) == 1)
      << hits[0].label << "," << hits[1].label;
  EXPECT_NEAR(hits[0].distance, 0.0f, 1e-4);
}

TEST_F(HnswFixture, GetEmbeddingRoundTrip) {
  Build(50, 12);
  std::vector<float> out(12);
  ASSERT_TRUE(index_->GetEmbedding(17, out.data()).ok());
  EXPECT_EQ(out, data_[17]);
  EXPECT_EQ(index_->GetEmbedding(9999, out.data()).code(), StatusCode::kNotFound);
}

TEST_F(HnswFixture, RangeSearchMatchesBruteForce) {
  Build(800, 8);
  Rng rng(34);
  auto q = RandomPoint(&rng, 8);
  // Pick a threshold that captures a moderate number of points.
  auto nearest = brute_->TopKSearch(q.data(), 30);
  const float threshold = nearest[20].distance;
  auto got = index_->RangeSearch(q.data(), threshold, 8, 256);
  auto want = brute_->RangeSearch(q.data(), threshold);
  // Approximate: allow missing at most a couple of boundary points.
  EXPECT_GE(got.size() + 2, want.size());
  for (const auto& h : got) EXPECT_LT(h.distance, threshold);
}

TEST_F(HnswFixture, CapacityExceededFails) {
  HnswParams p = SmallParams(4, 2);
  HnswIndex index(p);
  std::vector<float> v = {1, 2, 3, 4};
  EXPECT_TRUE(index.AddPoint(0, v.data()).ok());
  EXPECT_TRUE(index.AddPoint(1, v.data()).ok());
  EXPECT_EQ(index.AddPoint(2, v.data()).code(), StatusCode::kOutOfRange);
}

TEST_F(HnswFixture, StatsAccumulate) {
  Build(200, 8);
  index_->ResetStats();
  Rng rng(35);
  auto q = RandomPoint(&rng, 8);
  index_->TopKSearch(q.data(), 5, 32);
  HnswStats stats = index_->stats();
  EXPECT_EQ(stats.searches, 1u);
  EXPECT_GT(stats.distance_computations, 0u);
  EXPECT_GT(stats.hops, 0u);
  index_->ResetStats();
  EXPECT_EQ(index_->stats().searches, 0u);
}

TEST_F(HnswFixture, SaveLoadRoundTrip) {
  Build(300, 8);
  ASSERT_TRUE(index_->MarkDeleted(10).ok());
  const std::string path = ::testing::TempDir() + "/hnsw_roundtrip.bin";
  ASSERT_TRUE(index_->SaveToFile(path).ok());
  auto loaded = HnswIndex::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->size(), index_->size());
  Rng rng(36);
  auto q = RandomPoint(&rng, 8);
  auto a = index_->TopKSearch(q.data(), 10, 64);
  auto b = (*loaded)->TopKSearch(q.data(), 10, 64);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_FLOAT_EQ(a[i].distance, b[i].distance);
  }
  std::remove(path.c_str());
}

TEST_F(HnswFixture, LoadMissingFileFails) {
  auto loaded = HnswIndex::LoadFromFile("/nonexistent/path/x.bin");
  EXPECT_FALSE(loaded.ok());
}

TEST_F(HnswFixture, UpdateItemsAppliesUpsertsAndDeletes) {
  Build(200, 8);
  ThreadPool pool(3);
  std::vector<HnswIndex::UpdateItem> items;
  // Delete 0..9, move 10 to 50's position, insert fresh label 1000.
  for (uint64_t i = 0; i < 10; ++i) {
    items.push_back({i, true, {}});
  }
  items.push_back({10, false, data_[50]});
  items.push_back({1000, false, data_[60]});
  ASSERT_TRUE(index_->UpdateItems(items, &pool).ok());
  for (uint64_t i = 0; i < 10; ++i) EXPECT_TRUE(index_->IsDeleted(i));
  EXPECT_TRUE(index_->Contains(1000));
  std::vector<float> out(8);
  ASSERT_TRUE(index_->GetEmbedding(10, out.data()).ok());
  EXPECT_EQ(out, data_[50]);
}

TEST_F(HnswFixture, UpdateItemsDeleteOfUnknownLabelIsNoop) {
  Build(20, 8);
  std::vector<HnswIndex::UpdateItem> items;
  items.push_back({555, true, {}});
  EXPECT_TRUE(index_->UpdateItems(items, nullptr).ok());
}

TEST_F(HnswFixture, UpdateItemsPerLabelOrderPreserved) {
  Build(50, 8);
  ThreadPool pool(4);
  std::vector<HnswIndex::UpdateItem> items;
  // Two updates to the same label in one batch: the later one must win.
  items.push_back({7, false, data_[20]});
  items.push_back({7, false, data_[30]});
  ASSERT_TRUE(index_->UpdateItems(items, &pool).ok());
  std::vector<float> out(8);
  ASSERT_TRUE(index_->GetEmbedding(7, out.data()).ok());
  EXPECT_EQ(out, data_[30]);
}

TEST_F(HnswFixture, ParallelBuildProducesSearchableIndex) {
  const size_t n = 1000, dim = 16;
  HnswIndex index(SmallParams(dim, n));
  BruteForceSearcher brute(dim, Metric::kL2);
  Rng rng(41);
  std::vector<std::vector<float>> data;
  for (size_t i = 0; i < n; ++i) data.push_back(RandomPoint(&rng, dim));
  for (size_t i = 0; i < n; ++i) brute.Add(i, data[i].data());
  ThreadPool pool(4);
  std::atomic<int> failures{0};
  pool.ParallelFor(n, [&](size_t i) {
    if (!index.AddPoint(i, data[i].data()).ok()) failures.fetch_add(1);
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(index.size(), n);
  // Recall sanity on the concurrently built graph.
  double total = 0;
  for (int q = 0; q < 10; ++q) {
    auto query = RandomPoint(&rng, dim);
    auto got = index.TopKSearch(query.data(), 10, 150);
    auto want = brute.TopKSearch(query.data(), 10);
    std::set<uint64_t> want_ids;
    for (const auto& h : want) want_ids.insert(h.label);
    size_t hit = 0;
    for (const auto& h : got) hit += want_ids.count(h.label);
    total += static_cast<double>(hit) / want.size();
  }
  EXPECT_GT(total / 10, 0.85);
}

TEST_F(HnswFixture, LabelsListsLivePoints) {
  Build(30, 8);
  ASSERT_TRUE(index_->MarkDeleted(3).ok());
  auto labels = index_->Labels();
  EXPECT_EQ(labels.size(), 29u);
  EXPECT_EQ(std::count(labels.begin(), labels.end(), 3u), 0);
}

// Parameterized over metric: the index must behave for all three.
class HnswMetricTest : public ::testing::TestWithParam<Metric> {};

TEST_P(HnswMetricTest, SelfQueryReturnsSelf) {
  const Metric metric = GetParam();
  HnswIndex index(SmallParams(16, 300, metric));
  Rng rng(51);
  std::vector<std::vector<float>> data;
  for (size_t i = 0; i < 200; ++i) {
    auto v = RandomPoint(&rng, 16);
    if (metric != Metric::kL2) NormalizeInPlace(v.data(), 16);
    ASSERT_TRUE(index.AddPoint(i, v.data()).ok());
    data.push_back(std::move(v));
  }
  for (size_t i : {0u, 57u, 199u}) {
    auto hits = index.TopKSearch(data[i].data(), 1, 64);
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits[0].label, i) << MetricName(metric);
  }
}

INSTANTIATE_TEST_SUITE_P(Metrics, HnswMetricTest,
                         ::testing::Values(Metric::kL2, Metric::kIp,
                                           Metric::kCosine));

// Property-style sweep: recall@10 must be monotone-ish and reach a high
// plateau as ef grows.
class HnswEfSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(HnswEfSweep, RecallFloorPerEf) {
  static HnswIndex* index = nullptr;
  static BruteForceSearcher* brute = nullptr;
  static std::vector<std::vector<float>>* queries = nullptr;
  if (index == nullptr) {
    index = new HnswIndex(SmallParams(16, 3000));
    brute = new BruteForceSearcher(16, Metric::kL2);
    queries = new std::vector<std::vector<float>>();
    Rng rng(61);
    for (size_t i = 0; i < 3000; ++i) {
      auto v = RandomPoint(&rng, 16);
      ASSERT_TRUE(index->AddPoint(i, v.data()).ok());
      brute->Add(i, v.data());
    }
    for (int q = 0; q < 15; ++q) queries->push_back(RandomPoint(&rng, 16));
  }
  const size_t ef = GetParam();
  double total = 0;
  for (const auto& q : *queries) {
    auto got = index->TopKSearch(q.data(), 10, ef);
    auto want = brute->TopKSearch(q.data(), 10);
    std::set<uint64_t> want_ids;
    for (const auto& h : want) want_ids.insert(h.label);
    size_t hit = 0;
    for (const auto& h : got) hit += want_ids.count(h.label);
    total += static_cast<double>(hit) / want.size();
  }
  const double recall = total / queries->size();
  // Loose floors: recall grows with ef.
  if (ef >= 200) EXPECT_GT(recall, 0.95);
  else if (ef >= 64) EXPECT_GT(recall, 0.8);
  else EXPECT_GT(recall, 0.3);
}

INSTANTIATE_TEST_SUITE_P(EfValues, HnswEfSweep,
                         ::testing::Values(16, 32, 64, 128, 200, 400));

// ---------------- BruteForceSearcher ----------------

TEST(BruteForceTest, ExactTopK) {
  BruteForceSearcher brute(2, Metric::kL2);
  float points[][2] = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  for (uint64_t i = 0; i < 4; ++i) brute.Add(i, points[i]);
  float q[2] = {0.1f, 0};
  auto hits = brute.TopKSearch(q, 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].label, 0u);
  EXPECT_EQ(hits[1].label, 1u);
}

TEST(BruteForceTest, RangeSearchThresholdStrict) {
  BruteForceSearcher brute(1, Metric::kL2);
  float v0 = 0, v1 = 1, v2 = 2;
  brute.Add(0, &v0);
  brute.Add(1, &v1);
  brute.Add(2, &v2);
  float q = 0;
  auto hits = brute.RangeSearch(&q, 1.0f);  // squared-L2 < 1
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].label, 0u);
}

TEST(BruteForceTest, FilterApplied) {
  BruteForceSearcher brute(1, Metric::kL2);
  float vals[] = {0, 1, 2, 3};
  for (uint64_t i = 0; i < 4; ++i) brute.Add(i, &vals[i]);
  Bitmap bm(4);
  bm.Set(2);
  bm.Set(3);
  FilterView fv(&bm);
  float q = 0;
  auto hits = brute.TopKSearch(&q, 1, fv);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].label, 2u);
}

TEST(BruteForceTest, KLargerThanData) {
  BruteForceSearcher brute(1, Metric::kL2);
  float v = 5;
  brute.Add(0, &v);
  float q = 0;
  EXPECT_EQ(brute.TopKSearch(&q, 10).size(), 1u);
}

}  // namespace
}  // namespace tigervector

#ifndef TIGERVECTOR_UTIL_THREAD_POOL_H_
#define TIGERVECTOR_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tigervector {

// A fixed-size worker pool used for parallel segment searches and parallel
// index builds. Tasks are plain std::function<void()>; completion is tracked
// with WaitIdle() or by the caller's own latch.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task for execution on some worker thread.
  void Submit(std::function<void()> task);

  // Blocks until the queue is empty and all workers are idle.
  void WaitIdle();

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  // Work is chunked so that each task covers a contiguous range.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace tigervector

#endif  // TIGERVECTOR_UTIL_THREAD_POOL_H_

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "graph/graph_store.h"
#include "graph/schema.h"
#include "graph/transaction.h"
#include "graph/wal.h"
#include "util/thread_pool.h"

namespace tigervector {
namespace {

// ---------------- Schema ----------------

TEST(SchemaTest, CreateVertexType) {
  Schema schema;
  auto id = schema.CreateVertexType("Post", {{"author", AttrType::kString},
                                             {"length", AttrType::kInt}});
  ASSERT_TRUE(id.ok());
  auto def = schema.GetVertexType("Post");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ((*def)->name, "Post");
  EXPECT_EQ((*def)->attrs.size(), 2u);
  EXPECT_EQ((*def)->AttrIndex("length"), 1);
  EXPECT_EQ((*def)->AttrIndex("nope"), -1);
}

TEST(SchemaTest, DuplicateVertexTypeRejected) {
  Schema schema;
  ASSERT_TRUE(schema.CreateVertexType("A", {}).ok());
  EXPECT_EQ(schema.CreateVertexType("A", {}).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, DuplicateAttrRejected) {
  Schema schema;
  EXPECT_EQ(schema
                .CreateVertexType("A", {{"x", AttrType::kInt},
                                        {"x", AttrType::kString}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, EdgeTypeRequiresEndpoints) {
  Schema schema;
  ASSERT_TRUE(schema.CreateVertexType("A", {}).ok());
  EXPECT_EQ(schema.CreateEdgeType("e", "A", "Missing").status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(schema.CreateVertexType("B", {}).ok());
  auto et = schema.CreateEdgeType("e", "A", "B", /*directed=*/true);
  ASSERT_TRUE(et.ok());
  EXPECT_TRUE(schema.edge_type(*et).directed);
}

TEST(SchemaTest, EmbeddingSpaceAndAttr) {
  Schema schema;
  ASSERT_TRUE(schema.CreateVertexType("Post", {}).ok());
  ASSERT_TRUE(schema.CreateVertexType("Comment", {}).ok());
  EmbeddingTypeInfo info;
  info.dimension = 8;
  info.model = "GPT4";
  ASSERT_TRUE(schema.CreateEmbeddingSpace("gpt4_space", info).ok());
  EXPECT_EQ(schema.CreateEmbeddingSpace("gpt4_space", info).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(schema.AddEmbeddingAttrInSpace("Post", "emb", "gpt4_space").ok());
  ASSERT_TRUE(schema.AddEmbeddingAttrInSpace("Comment", "emb", "gpt4_space").ok());
  auto post = schema.GetVertexType("Post");
  const EmbeddingAttrDef* def = (*post)->FindEmbeddingAttr("emb");
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->info.dimension, 8u);
  EXPECT_EQ(def->space, "gpt4_space");
}

TEST(SchemaTest, InlineEmbeddingAttr) {
  Schema schema;
  ASSERT_TRUE(schema.CreateVertexType("Post", {}).ok());
  EmbeddingTypeInfo info;
  info.dimension = 16;
  info.model = "M";
  ASSERT_TRUE(schema.AddEmbeddingAttr("Post", "emb", info).ok());
  EXPECT_EQ(schema.AddEmbeddingAttr("Post", "emb", info).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(schema.AddEmbeddingAttr("Nope", "emb", info).code(),
            StatusCode::kNotFound);
}

TEST(SchemaTest, ZeroDimensionRejected) {
  Schema schema;
  ASSERT_TRUE(schema.CreateVertexType("Post", {}).ok());
  EmbeddingTypeInfo info;  // dimension 0
  EXPECT_EQ(schema.AddEmbeddingAttr("Post", "emb", info).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(schema.CreateEmbeddingSpace("s", info).code(),
            StatusCode::kInvalidArgument);
}

// ---------------- Values ----------------

TEST(ValueTest, EqualsAndLess) {
  EXPECT_TRUE(ValueEquals(Value{int64_t{3}}, Value{int64_t{3}}));
  EXPECT_TRUE(ValueEquals(Value{int64_t{3}}, Value{3.0}));  // promotion
  EXPECT_FALSE(ValueEquals(Value{int64_t{3}}, Value{std::string("3")}));
  EXPECT_TRUE(ValueLess(Value{int64_t{2}}, Value{2.5}));
  EXPECT_TRUE(ValueLess(Value{std::string("a")}, Value{std::string("b")}));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(ValueToString(Value{int64_t{7}}), "7");
  EXPECT_EQ(ValueToString(Value{std::string("x")}), "\"x\"");
  EXPECT_EQ(ValueToString(Value{true}), "true");
}

// ---------------- Store fixture ----------------

class GraphStoreFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_
                    .CreateVertexType("Person", {{"name", AttrType::kString},
                                                 {"age", AttrType::kInt}})
                    .ok());
    ASSERT_TRUE(schema_.CreateVertexType("Post", {{"length", AttrType::kInt}}).ok());
    ASSERT_TRUE(
        schema_.CreateEdgeType("knows", "Person", "Person", /*directed=*/false).ok());
    ASSERT_TRUE(
        schema_.CreateEdgeType("hasCreator", "Post", "Person", /*directed=*/true)
            .ok());
    GraphStore::Options options;
    options.segment_capacity = 64;  // small to force multiple segments
    store_ = std::make_unique<GraphStore>(&schema_, options);
  }

  VertexId AddPerson(const std::string& name, int64_t age) {
    Transaction txn(store_.get());
    auto vid = txn.InsertVertex("Person", {name, age});
    EXPECT_TRUE(vid.ok());
    EXPECT_TRUE(txn.Commit().ok());
    return *vid;
  }

  Schema schema_;
  std::unique_ptr<GraphStore> store_;
};

TEST_F(GraphStoreFixture, InsertAndReadAttrs) {
  const VertexId v = AddPerson("Alice", 30);
  const Tid tid = store_->visible_tid();
  EXPECT_TRUE(store_->IsVisible(v, tid));
  auto name = store_->GetAttr(v, "name", tid);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(std::get<std::string>(*name), "Alice");
  auto age = store_->GetAttr(v, "age", tid);
  ASSERT_TRUE(age.ok());
  EXPECT_EQ(std::get<int64_t>(*age), 30);
}

TEST_F(GraphStoreFixture, UncommittedInvisible) {
  Transaction txn(store_.get());
  auto vid = txn.InsertVertex("Person", {std::string("Bob"), int64_t{20}});
  ASSERT_TRUE(vid.ok());
  EXPECT_FALSE(store_->IsVisible(*vid, store_->visible_tid()));
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_TRUE(store_->IsVisible(*vid, store_->visible_tid()));
}

TEST_F(GraphStoreFixture, RollbackDiscardsWrites) {
  Transaction txn(store_.get());
  auto vid = txn.InsertVertex("Person", {std::string("Bob"), int64_t{20}});
  ASSERT_TRUE(vid.ok());
  txn.Rollback();
  EXPECT_EQ(txn.num_buffered(), 0u);
  ASSERT_TRUE(txn.Commit().ok());  // empty commit
  EXPECT_FALSE(store_->IsVisible(*vid, store_->visible_tid()));
}

TEST_F(GraphStoreFixture, AttrTypeValidationAtBufferTime) {
  Transaction txn(store_.get());
  EXPECT_EQ(txn.InsertVertex("Person", {int64_t{5}, int64_t{5}}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(txn.InsertVertex("Person", {std::string("x")}).status().code(),
            StatusCode::kInvalidArgument);  // wrong arity
  EXPECT_EQ(txn.InsertVertex("Nope", {}).status().code(), StatusCode::kNotFound);
}

TEST_F(GraphStoreFixture, SetAttrCreatesDeltaThenVacuumFolds) {
  const VertexId v = AddPerson("Carol", 25);
  {
    Transaction txn(store_.get());
    ASSERT_TRUE(txn.SetAttr(v, "Person", "age", int64_t{26}).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  const Tid tid = store_->visible_tid();
  auto age = store_->GetAttr(v, "age", tid);
  ASSERT_TRUE(age.ok());
  EXPECT_EQ(std::get<int64_t>(*age), 26);
  // Old snapshot still visible at the older tid.
  auto old_age = store_->GetAttr(v, "age", tid - 1);
  ASSERT_TRUE(old_age.ok());
  EXPECT_EQ(std::get<int64_t>(*old_age), 25);
  // Vacuum folds the delta; latest value must survive.
  EXPECT_EQ(store_->VacuumGraph(), 1u);
  auto after = store_->GetAttr(v, "age", store_->visible_tid());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(std::get<int64_t>(*after), 26);
  EXPECT_EQ(store_->SegmentAt(0)->pending_attr_deltas(), 0u);
}

TEST_F(GraphStoreFixture, MultipleSetAttrsLatestWins) {
  const VertexId v = AddPerson("D", 1);
  for (int64_t age = 2; age <= 5; ++age) {
    Transaction txn(store_.get());
    ASSERT_TRUE(txn.SetAttr(v, "Person", "age", age).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  auto age = store_->GetAttr(v, "age", store_->visible_tid());
  EXPECT_EQ(std::get<int64_t>(*age), 5);
  store_->VacuumGraph();
  age = store_->GetAttr(v, "age", store_->visible_tid());
  EXPECT_EQ(std::get<int64_t>(*age), 5);
}

TEST_F(GraphStoreFixture, DirectedEdgesTraverseBothWays) {
  const VertexId alice = AddPerson("Alice", 30);
  VertexId post;
  {
    Transaction txn(store_.get());
    auto p = txn.InsertVertex("Post", {int64_t{100}});
    ASSERT_TRUE(p.ok());
    post = *p;
    ASSERT_TRUE(txn.InsertEdge("hasCreator", post, alice).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  const Tid tid = store_->visible_tid();
  auto et = schema_.GetEdgeType("hasCreator");
  std::set<VertexId> out, in;
  store_->ForEachNeighbor(post, (*et)->id, Direction::kOut, tid,
                          [&](VertexId p) { out.insert(p); });
  store_->ForEachNeighbor(alice, (*et)->id, Direction::kIn, tid,
                          [&](VertexId p) { in.insert(p); });
  EXPECT_EQ(out, std::set<VertexId>{alice});
  EXPECT_EQ(in, std::set<VertexId>{post});
  // Wrong directions yield nothing.
  std::set<VertexId> wrong;
  store_->ForEachNeighbor(post, (*et)->id, Direction::kIn, tid,
                          [&](VertexId p) { wrong.insert(p); });
  EXPECT_TRUE(wrong.empty());
}

TEST_F(GraphStoreFixture, UndirectedEdgesSymmetric) {
  const VertexId a = AddPerson("A", 1);
  const VertexId b = AddPerson("B", 2);
  {
    Transaction txn(store_.get());
    ASSERT_TRUE(txn.InsertEdge("knows", a, b).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  const Tid tid = store_->visible_tid();
  auto et = schema_.GetEdgeType("knows");
  std::set<VertexId> from_a, from_b;
  store_->ForEachNeighbor(a, (*et)->id, Direction::kAny, tid,
                          [&](VertexId p) { from_a.insert(p); });
  store_->ForEachNeighbor(b, (*et)->id, Direction::kAny, tid,
                          [&](VertexId p) { from_b.insert(p); });
  EXPECT_EQ(from_a, std::set<VertexId>{b});
  EXPECT_EQ(from_b, std::set<VertexId>{a});
}

TEST_F(GraphStoreFixture, EdgeDeleteHidesEdge) {
  const VertexId a = AddPerson("A", 1);
  const VertexId b = AddPerson("B", 2);
  {
    Transaction txn(store_.get());
    ASSERT_TRUE(txn.InsertEdge("knows", a, b).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  {
    Transaction txn(store_.get());
    ASSERT_TRUE(txn.DeleteEdge("knows", a, b).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  const Tid tid = store_->visible_tid();
  auto et = schema_.GetEdgeType("knows");
  int count = 0;
  store_->ForEachNeighbor(a, (*et)->id, Direction::kAny, tid,
                          [&](VertexId) { ++count; });
  EXPECT_EQ(count, 0);
  // But the edge is still visible at the pre-delete tid.
  count = 0;
  store_->ForEachNeighbor(a, (*et)->id, Direction::kAny, tid - 1,
                          [&](VertexId) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST_F(GraphStoreFixture, DeleteVertexHidesIt) {
  const VertexId v = AddPerson("Gone", 9);
  {
    Transaction txn(store_.get());
    ASSERT_TRUE(txn.DeleteVertex(v).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  const Tid tid = store_->visible_tid();
  EXPECT_FALSE(store_->IsVisible(v, tid));
  EXPECT_TRUE(store_->IsVisible(v, tid - 1));
  EXPECT_EQ(store_->GetAttr(v, "age", tid).status().code(), StatusCode::kNotFound);
}

TEST_F(GraphStoreFixture, EdgeToMissingVertexRejected) {
  const VertexId a = AddPerson("A", 1);
  Transaction txn(store_.get());
  ASSERT_TRUE(txn.InsertEdge("knows", a, 424242).ok());  // buffered fine
  EXPECT_EQ(txn.Commit().status().code(), StatusCode::kNotFound);
}

TEST_F(GraphStoreFixture, IntraTransactionEdgeBetweenNewVertices) {
  Transaction txn(store_.get());
  auto a = txn.InsertVertex("Person", {std::string("X"), int64_t{1}});
  auto b = txn.InsertVertex("Person", {std::string("Y"), int64_t{2}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(txn.InsertEdge("knows", *a, *b).ok());
  EXPECT_TRUE(txn.Commit().ok());
}

TEST_F(GraphStoreFixture, SegmentsGrowAcrossCapacity) {
  for (int i = 0; i < 200; ++i) AddPerson("P" + std::to_string(i), i);
  EXPECT_GE(store_->NumSegments(), 200u / 64);
  // All vertices visible via type scan.
  auto vt = schema_.GetVertexType("Person");
  size_t count = 0;
  store_->ForEachVertexOfType((*vt)->id, store_->visible_tid(), nullptr,
                              [&](VertexId) { ++count; });
  EXPECT_EQ(count, 200u);
}

TEST_F(GraphStoreFixture, VertexActionParallelMatchesSequential) {
  for (int i = 0; i < 300; ++i) AddPerson("P" + std::to_string(i), i);
  auto vt = schema_.GetVertexType("Person");
  ThreadPool pool(4);
  std::atomic<size_t> parallel_count{0};
  store_->ForEachVertexOfType((*vt)->id, store_->visible_tid(), &pool,
                              [&](VertexId) { parallel_count.fetch_add(1); });
  EXPECT_EQ(parallel_count.load(), 300u);
}

TEST_F(GraphStoreFixture, TypeBitmapTracksInsertAndDelete) {
  const VertexId a = AddPerson("A", 1);
  const VertexId b = AddPerson("B", 2);
  {
    auto guard = store_->LatestTypeBitmap(0);
    EXPECT_TRUE(guard.get().Test(a));
    EXPECT_TRUE(guard.get().Test(b));
  }
  {
    Transaction txn(store_.get());
    ASSERT_TRUE(txn.DeleteVertex(a).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  auto guard = store_->LatestTypeBitmap(0);
  EXPECT_FALSE(guard.get().Test(a));
  EXPECT_TRUE(guard.get().Test(b));
}

TEST_F(GraphStoreFixture, CommitsAreAtomicAllOrNothing) {
  const VertexId a = AddPerson("A", 1);
  Transaction txn(store_.get());
  ASSERT_TRUE(txn.SetAttr(a, "Person", "age", int64_t{50}).ok());
  ASSERT_TRUE(txn.InsertEdge("knows", a, 999999).ok());  // will fail validation
  ASSERT_FALSE(txn.Commit().ok());
  // The SetAttr in the failed transaction must not be visible.
  auto age = store_->GetAttr(a, "age", store_->visible_tid());
  EXPECT_EQ(std::get<int64_t>(*age), 1);
}

TEST_F(GraphStoreFixture, UndirectedEdgeDeleteRemovesBothDirections) {
  const VertexId a = AddPerson("A", 1);
  const VertexId b = AddPerson("B", 2);
  {
    Transaction txn(store_.get());
    ASSERT_TRUE(txn.InsertEdge("knows", a, b).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  {
    Transaction txn(store_.get());
    ASSERT_TRUE(txn.DeleteEdge("knows", a, b).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  const Tid tid = store_->visible_tid();
  auto et = schema_.GetEdgeType("knows");
  int count = 0;
  store_->ForEachNeighbor(a, (*et)->id, Direction::kAny, tid,
                          [&](VertexId) { ++count; });
  store_->ForEachNeighbor(b, (*et)->id, Direction::kAny, tid,
                          [&](VertexId) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST_F(GraphStoreFixture, VacuumPhysicallyRemovesDeletedEdges) {
  const VertexId a = AddPerson("A", 1);
  const VertexId b = AddPerson("B", 2);
  {
    Transaction txn(store_.get());
    ASSERT_TRUE(txn.InsertEdge("knows", a, b).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  {
    Transaction txn(store_.get());
    ASSERT_TRUE(txn.DeleteEdge("knows", a, b).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  store_->VacuumGraph();
  // After vacuum the tombstoned edge is gone even for historical reads
  // at-or-after the vacuum horizon; the re-inserted edge works.
  Transaction txn(store_.get());
  ASSERT_TRUE(txn.InsertEdge("knows", a, b).ok());
  ASSERT_TRUE(txn.Commit().ok());
  int count = 0;
  auto et = schema_.GetEdgeType("knows");
  store_->ForEachNeighbor(a, (*et)->id, Direction::kAny, store_->visible_tid(),
                          [&](VertexId) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST_F(GraphStoreFixture, DuplicateEdgesAllowed) {
  // The property graph model allows multiple edges between two nodes
  // (paper Sec. 2.1).
  const VertexId a = AddPerson("A", 1);
  const VertexId b = AddPerson("B", 2);
  Transaction txn(store_.get());
  ASSERT_TRUE(txn.InsertEdge("knows", a, b).ok());
  ASSERT_TRUE(txn.InsertEdge("knows", a, b).ok());
  ASSERT_TRUE(txn.Commit().ok());
  int count = 0;
  auto et = schema_.GetEdgeType("knows");
  store_->ForEachNeighbor(a, (*et)->id, Direction::kAny, store_->visible_tid(),
                          [&](VertexId) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST_F(GraphStoreFixture, GetAttrErrors) {
  const VertexId a = AddPerson("A", 1);
  const Tid tid = store_->visible_tid();
  EXPECT_EQ(store_->GetAttr(a, "nope", tid).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store_->GetAttrByIndex(a, 99, tid).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_FALSE(store_->GetAttr(999999, "name", tid).ok());
}

TEST_F(GraphStoreFixture, EmptyCommitIsVisibleNoop) {
  const Tid before = store_->visible_tid();
  Transaction txn(store_.get());
  auto tid = txn.Commit();
  ASSERT_TRUE(tid.ok());
  EXPECT_GT(*tid, before);
  EXPECT_EQ(store_->visible_tid(), *tid);
}

TEST_F(GraphStoreFixture, ReinsertVertexAfterDeleteReusesSlot) {
  const VertexId v = AddPerson("Gone", 9);
  {
    Transaction txn(store_.get());
    ASSERT_TRUE(txn.DeleteVertex(v).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  // A brand-new vertex gets a fresh vid; the old slot stays dead.
  const VertexId w = AddPerson("New", 10);
  EXPECT_NE(v, w);
  EXPECT_FALSE(store_->IsVisible(v, store_->visible_tid()));
  EXPECT_TRUE(store_->IsVisible(w, store_->visible_tid()));
}

// ---------------- WAL ----------------

TEST(WalTest, EncodeDecodeRoundTripAllKinds) {
  std::vector<Mutation> in;
  {
    Mutation m;
    m.kind = Mutation::Kind::kInsertVertex;
    m.vid = 7;
    m.vtype = 1;
    m.attrs = {Value{int64_t{42}}, Value{std::string("hi")}, Value{true},
               Value{2.75}};
    in.push_back(m);
  }
  {
    Mutation m;
    m.kind = Mutation::Kind::kSetAttr;
    m.vid = 7;
    m.attr_idx = 2;
    m.value = Value{std::string("updated")};
    in.push_back(m);
  }
  {
    Mutation m;
    m.kind = Mutation::Kind::kInsertEdge;
    m.vid = 7;
    m.dst = 9;
    m.etype = 3;
    in.push_back(m);
  }
  {
    Mutation m;
    m.kind = Mutation::Kind::kDeleteEdge;
    m.vid = 7;
    m.dst = 9;
    m.etype = 3;
    in.push_back(m);
  }
  {
    Mutation m;
    m.kind = Mutation::Kind::kDeleteVertex;
    m.vid = 7;
    in.push_back(m);
  }
  {
    Mutation m;
    m.kind = Mutation::Kind::kUpsertEmbedding;
    m.vid = 7;
    m.emb_attr = "emb";
    m.embedding = {1.5f, -2.5f, 3.5f};
    in.push_back(m);
  }
  {
    Mutation m;
    m.kind = Mutation::Kind::kDeleteEmbedding;
    m.vid = 7;
    m.emb_attr = "emb";
    in.push_back(m);
  }
  auto bytes = WriteAheadLog::EncodeMutations(in);
  auto decoded = WriteAheadLog::DecodeMutations(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), in.size());
  EXPECT_EQ((*decoded)[0].attrs.size(), 4u);
  EXPECT_EQ(std::get<std::string>((*decoded)[0].attrs[1]), "hi");
  EXPECT_EQ(std::get<double>((*decoded)[0].attrs[3]), 2.75);
  EXPECT_EQ((*decoded)[1].attr_idx, 2);
  EXPECT_EQ((*decoded)[2].dst, 9u);
  EXPECT_EQ((*decoded)[5].embedding.size(), 3u);
  EXPECT_EQ((*decoded)[5].embedding[1], -2.5f);
  EXPECT_EQ((*decoded)[6].emb_attr, "emb");
}

TEST(WalTest, TruncatedPayloadFails) {
  Mutation m;
  m.kind = Mutation::Kind::kUpsertEmbedding;
  m.vid = 1;
  m.emb_attr = "e";
  m.embedding = {1, 2, 3};
  auto bytes = WriteAheadLog::EncodeMutations({m});
  auto bad = WriteAheadLog::DecodeMutations(bytes.data(), bytes.size() - 4);
  EXPECT_FALSE(bad.ok());
}

TEST(WalTest, FileAppendAndReadAll) {
  const std::string path = ::testing::TempDir() + "/wal_test.log";
  std::remove(path.c_str());
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path).ok());
    Mutation m;
    m.kind = Mutation::Kind::kInsertVertex;
    m.vid = 1;
    m.vtype = 0;
    ASSERT_TRUE(wal.Append(1, {m}).ok());
    m.vid = 2;
    ASSERT_TRUE(wal.Append(2, {m}).ok());
    EXPECT_EQ(wal.appended_records(), 2u);
  }
  auto records = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].tid, 1u);
  EXPECT_EQ((*records)[1].mutations[0].vid, 2u);
  std::remove(path.c_str());
}

TEST(WalTest, RecoveryRestoresGraph) {
  const std::string path = ::testing::TempDir() + "/wal_recovery.log";
  std::remove(path.c_str());
  Schema schema;
  ASSERT_TRUE(schema.CreateVertexType("P", {{"x", AttrType::kInt}}).ok());
  ASSERT_TRUE(schema.CreateEdgeType("e", "P", "P").ok());
  VertexId a, b;
  {
    GraphStore::Options options;
    options.segment_capacity = 16;
    options.wal_path = path;
    GraphStore store(&schema, options);
    Transaction txn(&store);
    a = *txn.InsertVertex("P", {int64_t{1}});
    b = *txn.InsertVertex("P", {int64_t{2}});
    ASSERT_TRUE(txn.InsertEdge("e", a, b).ok());
    ASSERT_TRUE(txn.Commit().ok());
    Transaction txn2(&store);
    ASSERT_TRUE(txn2.SetAttr(a, "P", "x", int64_t{7}).ok());
    ASSERT_TRUE(txn2.Commit().ok());
  }
  // Fresh store, recover from the log.
  GraphStore::Options options;
  options.segment_capacity = 16;
  GraphStore recovered(&schema, options);
  ASSERT_TRUE(recovered.Recover(path).ok());
  const Tid tid = recovered.visible_tid();
  EXPECT_TRUE(recovered.IsVisible(a, tid));
  EXPECT_TRUE(recovered.IsVisible(b, tid));
  auto x = recovered.GetAttr(a, "x", tid);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(std::get<int64_t>(*x), 7);
  auto et = schema.GetEdgeType("e");
  int edges = 0;
  recovered.ForEachNeighbor(a, (*et)->id, Direction::kOut, tid,
                            [&](VertexId) { ++edges; });
  EXPECT_EQ(edges, 1);
  // New writes continue from the recovered tid/vid counters.
  Transaction txn(&recovered);
  auto c = txn.InsertVertex("P", {int64_t{3}});
  ASSERT_TRUE(c.ok());
  EXPECT_GT(*c, b);
  ASSERT_TRUE(txn.Commit().ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tigervector

#include "testing/oracle.h"

#include <algorithm>

namespace tigervector {
namespace testing {

void GoldenModel::SetAttr(VertexId vid, const std::string& attr, Value value) {
  auto it = vertices_.find(vid);
  if (it != vertices_.end()) it->second.attrs[attr] = std::move(value);
}

void GoldenModel::SetEmbedding(VertexId vid, const std::string& attr,
                               std::vector<float> value) {
  auto it = vertices_.find(vid);
  if (it != vertices_.end()) it->second.embeddings[attr] = std::move(value);
}

void GoldenModel::DeleteEmbedding(VertexId vid, const std::string& attr) {
  auto it = vertices_.find(vid);
  if (it != vertices_.end()) it->second.embeddings.erase(attr);
}

void GoldenModel::DeleteVertex(VertexId vid) {
  vertices_.erase(vid);
  tombstones_.insert(vid);
  for (auto it = edges_.begin(); it != edges_.end();) {
    if (it->src == vid || it->dst == vid) {
      it = edges_.erase(it);
    } else {
      ++it;
    }
  }
}

void GoldenModel::InsertEdge(const std::string& type, VertexId src, VertexId dst) {
  edges_.insert(GoldenEdge{type, src, dst});
}

void GoldenModel::DeleteEdge(const std::string& type, VertexId src, VertexId dst) {
  edges_.erase(GoldenEdge{type, src, dst});
}

const GoldenVertex* GoldenModel::Get(VertexId vid) const {
  auto it = vertices_.find(vid);
  return it == vertices_.end() ? nullptr : &it->second;
}

std::vector<VertexId> GoldenModel::LiveOfType(const std::string& type) const {
  std::vector<VertexId> out;
  for (const auto& [vid, v] : vertices_) {
    if (v.type == type) out.push_back(vid);
  }
  return out;  // map iteration is already vid-sorted
}

std::vector<VertexId> GoldenModel::Neighbors(VertexId vid,
                                             const std::string& edge_type,
                                             Direction dir) const {
  std::vector<VertexId> out;
  for (const GoldenEdge& e : edges_) {
    if (e.type != edge_type) continue;
    if ((dir == Direction::kOut || dir == Direction::kAny) && e.src == vid) {
      out.push_back(e.dst);
    }
    if ((dir == Direction::kIn || dir == Direction::kAny) && e.dst == vid) {
      out.push_back(e.src);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<OracleHit> GoldenModel::Scan(
    const std::vector<std::pair<std::string, std::string>>& attrs, Metric metric,
    const std::vector<float>& query, const VertexSet* candidates) const {
  std::vector<OracleHit> hits;
  for (const auto& [vid, v] : vertices_) {
    if (candidates != nullptr && candidates->count(vid) == 0) continue;
    for (const auto& [type, attr] : attrs) {
      if (v.type != type) continue;
      auto emb = v.embeddings.find(attr);
      if (emb == v.embeddings.end()) continue;
      if (emb->second.size() != query.size()) continue;
      hits.push_back(OracleHit{
          ComputeDistance(metric, query.data(), emb->second.data(), query.size()),
          vid});
      break;  // a vertex has exactly one type; no double counting
    }
  }
  std::sort(hits.begin(), hits.end(), [](const OracleHit& a, const OracleHit& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.vid < b.vid;
  });
  return hits;
}

std::vector<OracleHit> GoldenModel::ExactTopK(
    const std::vector<std::pair<std::string, std::string>>& attrs, Metric metric,
    const std::vector<float>& query, size_t k, const VertexSet* candidates) const {
  std::vector<OracleHit> hits = Scan(attrs, metric, query, candidates);
  if (hits.size() > k) hits.resize(k);
  return hits;
}

std::vector<OracleHit> GoldenModel::ExactRange(
    const std::vector<std::pair<std::string, std::string>>& attrs, Metric metric,
    const std::vector<float>& query, float threshold,
    const VertexSet* candidates) const {
  std::vector<OracleHit> hits = Scan(attrs, metric, query, candidates);
  std::vector<OracleHit> out;
  for (const OracleHit& h : hits) {
    if (h.distance < threshold) out.push_back(h);
  }
  return out;
}

VertexSet EvalChainPattern(const GoldenModel& model,
                           const std::vector<VertexSet>& bases,
                           const std::vector<std::string>& edge_types,
                           const std::vector<Direction>& dirs, size_t out_idx) {
  std::vector<VertexSet> cand(bases.size());
  cand[0] = bases[0];
  for (size_t i = 0; i + 1 < bases.size(); ++i) {
    VertexSet next;
    for (VertexId vid : cand[i]) {
      for (VertexId peer : model.Neighbors(vid, edge_types[i], dirs[i])) {
        if (bases[i + 1].count(peer) > 0) next.insert(peer);
      }
    }
    cand[i + 1] = std::move(next);
  }
  for (size_t ri = bases.size(); ri-- > 1;) {
    VertexSet kept;
    for (VertexId vid : cand[ri - 1]) {
      for (VertexId peer : model.Neighbors(vid, edge_types[ri - 1], dirs[ri - 1])) {
        if (cand[ri].count(peer) > 0) {
          kept.insert(vid);
          break;
        }
      }
    }
    cand[ri - 1] = std::move(kept);
  }
  return cand[out_idx];
}

}  // namespace testing
}  // namespace tigervector

file(REMOVE_RECURSE
  "CMakeFiles/case_law_join.dir/case_law_join.cpp.o"
  "CMakeFiles/case_law_join.dir/case_law_join.cpp.o.d"
  "case_law_join"
  "case_law_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_law_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

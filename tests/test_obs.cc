#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/session.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace tigervector {
namespace {

// ---------------- Counter ----------------

TEST(ObsCounterTest, AddAndReset) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("tv.test.counter");
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
  c->Reset();
  EXPECT_EQ(c->Value(), 0u);
}

TEST(ObsCounterTest, SameNameSamePointer) {
  obs::MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("tv.test.same"), registry.GetCounter("tv.test.same"));
  EXPECT_NE(registry.GetCounter("tv.test.same"), registry.GetCounter("tv.test.other"));
}

TEST(ObsCounterTest, ConcurrentAddsAreExact) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("tv.test.hammer");
  constexpr size_t kTasks = 64;
  constexpr size_t kPerTask = 10000;
  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](size_t) {
    for (size_t i = 0; i < kPerTask; ++i) c->Increment();
  });
  EXPECT_EQ(c->Value(), kTasks * kPerTask);
}

// ---------------- Gauge ----------------

TEST(ObsGaugeTest, SetAndAdd) {
  obs::MetricsRegistry registry;
  obs::Gauge* g = registry.GetGauge("tv.test.gauge");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 7);
}

// ---------------- Histogram ----------------

TEST(ObsHistogramTest, PercentilesOfKnownDistribution) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("tv.test.hist");
  // Uniform 1..1000 microseconds.
  for (int i = 1; i <= 1000; ++i) h->Observe(i * 1e-6);
  EXPECT_EQ(h->Count(), 1000u);
  EXPECT_NEAR(h->Sum(), 500.5e-3, 1e-4);
  // Power-of-two buckets with linear interpolation: within 20% of truth.
  EXPECT_NEAR(h->P50(), 500e-6, 100e-6);
  EXPECT_NEAR(h->P95(), 950e-6, 190e-6);
  EXPECT_NEAR(h->Quantile(0.99), 990e-6, 198e-6);
}

TEST(ObsHistogramTest, ConcurrentObservesKeepCount) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("tv.test.hammer_hist");
  constexpr size_t kTasks = 32;
  constexpr size_t kPerTask = 5000;
  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](size_t t) {
    for (size_t i = 0; i < kPerTask; ++i) h->Observe((t + 1) * 1e-6);
  });
  EXPECT_EQ(h->Count(), kTasks * kPerTask);
}

TEST(ObsHistogramTest, BucketBoundsArePowersOfTwoMicros) {
  EXPECT_DOUBLE_EQ(obs::Histogram::BucketUpperBound(0), 1e-6);
  EXPECT_DOUBLE_EQ(obs::Histogram::BucketUpperBound(10), 1024e-6);
  EXPECT_TRUE(std::isinf(
      obs::Histogram::BucketUpperBound(obs::Histogram::kNumBuckets - 1)));
}

// ---------------- Trace spans ----------------

TEST(ObsTraceTest, SpanNestingDepthsAndNames) {
  obs::QueryTrace trace;
  {
    obs::ScopedTraceActivation activation(&trace);
    TV_SPAN("outer");
    {
      TV_SPAN("inner");
    }
  }
  auto spans = trace.Spans();
  ASSERT_EQ(spans.size(), 2u);
  // Inner closes (and records) first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_GE(spans[1].micros, spans[0].micros);
}

TEST(ObsTraceTest, NoTraceNoRecording) {
  {
    TV_SPAN("dropped");
  }
  obs::QueryTrace trace;
  {
    obs::ScopedTraceActivation activation(&trace);
  }
  EXPECT_TRUE(trace.Spans().empty());
}

TEST(ObsTraceTest, CrossThreadActivationJoinsSameTrace) {
  obs::QueryTrace trace;
  ThreadPool pool(4);
  {
    obs::ScopedTraceActivation activation(&trace);
    obs::QueryTrace* parent = obs::CurrentTrace();
    pool.ParallelFor(8, [&, parent](size_t) {
      obs::ScopedTraceActivation worker_activation(parent);
      TV_SPAN("worker.stage");
    });
  }
  EXPECT_EQ(trace.Spans().size(), 8u);
  EXPECT_GT(trace.StageMicros()["worker.stage"], 0.0);
}

// ---------------- Exposition formats ----------------

TEST(ObsRenderTest, PrometheusTextFormat) {
  obs::MetricsRegistry registry;
  registry.GetCounter("tv.test.requests_total")->Add(5);
  registry.GetGauge("tv.test.depth")->Set(-2);
  registry.GetHistogram("tv.test.latency_seconds")->Observe(3e-6);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("# TYPE tv_test_requests_total counter\n"
                      "tv_test_requests_total 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tv_test_depth gauge\ntv_test_depth -2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tv_test_latency_seconds histogram\n"),
            std::string::npos);
  // 3 microseconds lands in the (2us, 4us] bucket; +Inf is mandatory.
  EXPECT_NE(text.find("tv_test_latency_seconds_bucket{le=\"4e-06\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("tv_test_latency_seconds_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("tv_test_latency_seconds_sum 0.000003000\n"),
            std::string::npos);
  EXPECT_NE(text.find("tv_test_latency_seconds_count 1\n"), std::string::npos);
}

TEST(ObsRenderTest, LabeledCountersShareOneFamilyHeader) {
  obs::MetricsRegistry registry;
  registry.GetCounter("tv.server.rejected_total{reason=inflight}")->Add(3);
  registry.GetCounter("tv.server.rejected_total{reason=conn_limit}")->Add(1);
  const std::string text = registry.RenderText();
  // Two label values, one family: the TYPE header must appear exactly once.
  const std::string header = "# TYPE tv_server_rejected_total counter\n";
  const size_t first = text.find(header);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(header, first + 1), std::string::npos);
  EXPECT_NE(text.find("tv_server_rejected_total{reason=\"conn_limit\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("tv_server_rejected_total{reason=\"inflight\"} 3\n"),
            std::string::npos);
}

TEST(ObsRenderTest, MultiLabelNamesRenderAllPairsQuoted) {
  obs::MetricsRegistry registry;
  registry.GetCounter("tv.net.errors_total{site=accept,kind=io}")->Add(2);
  const std::string text = registry.RenderText();
  EXPECT_NE(
      text.find("tv_net_errors_total{site=\"accept\",kind=\"io\"} 2\n"),
      std::string::npos);
}

TEST(ObsRenderTest, LabeledGaugeRendersLabelBlock) {
  obs::MetricsRegistry registry;
  registry.GetGauge("tv.server.inflight{port=7001}")->Set(4);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("# TYPE tv_server_inflight gauge\n"), std::string::npos);
  EXPECT_NE(text.find("tv_server_inflight{port=\"7001\"} 4\n"),
            std::string::npos);
}

TEST(ObsRenderTest, LabeledHistogramMergesLeIntoLabelBlock) {
  obs::MetricsRegistry registry;
  registry.GetHistogram("tv.server.latency_seconds{op=query}")->Observe(3e-6);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("# TYPE tv_server_latency_seconds histogram\n"),
            std::string::npos);
  // `le` joins the existing label block instead of forming a second one.
  EXPECT_NE(text.find("tv_server_latency_seconds_bucket{op=\"query\","
                      "le=\"4e-06\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("tv_server_latency_seconds_bucket{op=\"query\","
                      "le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("tv_server_latency_seconds_sum{op=\"query\"} "
                      "0.000003000\n"),
            std::string::npos);
  EXPECT_NE(text.find("tv_server_latency_seconds_count{op=\"query\"} 1\n"),
            std::string::npos);
}

TEST(ObsRenderTest, MalformedLabelBlockDegradesToSanitizedName) {
  obs::MetricsRegistry registry;
  registry.GetCounter("tv.test.oddball{no-equals-sign}")->Add(1);
  const std::string text = registry.RenderText();
  // An unparseable label block must not produce invalid exposition output;
  // the whole name is sanitized into a plain literal instead.
  EXPECT_EQ(text.find("{no-equals-sign}"), std::string::npos);
  EXPECT_NE(text.find("tv_test_oddball_no_equals_sign_ 1\n"),
            std::string::npos);
}

TEST(ObsRenderTest, JsonSnapshot) {
  obs::MetricsRegistry registry;
  registry.GetCounter("tv.test.a")->Add(7);
  registry.GetHistogram("tv.test.b")->Observe(0.5);
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"tv.test.a\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"tv.test.b\": {\"count\": 1"), std::string::npos);
}

TEST(ObsRenderTest, ResetValuesZeroesInPlace) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("tv.test.reset");
  c->Add(9);
  registry.ResetValues();
  EXPECT_EQ(c->Value(), 0u);
  // The pointer must stay valid (call sites cache it).
  c->Increment();
  EXPECT_EQ(c->Value(), 1u);
}

// ---------------- Logging satellites ----------------

TEST(ObsLoggingTest, ParseLogLevel) {
  LogLevel level = LogLevel::kWarn;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("ERROR", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_FALSE(ParseLogLevel("chatty", &level));
}

// ---------------- PROFILE integration ----------------

class ObsProfileFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Database::Options options;
    options.store.segment_capacity = 32;
    options.embeddings.index_params.m = 8;
    options.embeddings.index_params.ef_construction = 64;
    db_ = std::make_unique<Database>(options);
    session_ = std::make_unique<GsqlSession>(db_.get());
    auto ddl = session_->Run(
        "CREATE VERTEX Item (kind STRING);"
        "ALTER VERTEX Item ADD EMBEDDING ATTRIBUTE emb (DIMENSION = 4,"
        " MODEL = M, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);");
    ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();
    Transaction txn = db_->Begin();
    for (int i = 0; i < 64; ++i) {
      auto vid = txn.InsertVertex("Item", {std::string("k")});
      ASSERT_TRUE(vid.ok());
      ASSERT_TRUE(txn.SetEmbedding(*vid, "Item", "emb",
                                   {static_cast<float>(i), 0, 0, 0})
                      .ok());
    }
    ASSERT_TRUE(txn.Commit().ok());
    ASSERT_TRUE(db_->Vacuum().ok());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<GsqlSession> session_;
};

TEST_F(ObsProfileFixture, ProfileTopKReportsHnswSearchTime) {
  QueryParams params;
  params["qv"] = std::vector<float>{7, 0, 0, 0};
  auto result = session_->Run(
      "PROFILE R = SELECT s FROM (s:Item)"
      " ORDER BY VECTOR_DIST(s.emb, $qv) LIMIT 5; PRINT R;",
      params);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->prints.size(), 1u);
  EXPECT_EQ(result->prints[0].vertices.size(), 5u);
  EXPECT_TRUE(result->profiled);
  EXPECT_GT(result->profile_stage_micros["hnsw.search"], 0.0);
  EXPECT_GT(result->profile_stage_micros["query.execute"], 0.0);
  EXPECT_GT(result->profile_stage_micros["query.parse"], 0.0);
  EXPECT_GT(result->profile_counters["hnsw.distance_evals"], 0u);
  EXPECT_NE(result->profile.find("hnsw.search"), std::string::npos);
}

TEST_F(ObsProfileFixture, ProfileKeywordIsCaseInsensitiveAndOptional) {
  QueryParams params;
  params["qv"] = std::vector<float>{1, 0, 0, 0};
  auto lowered = session_->Run(
      "profile R = SELECT s FROM (s:Item)"
      " ORDER BY VECTOR_DIST(s.emb, $qv) LIMIT 2; PRINT R;",
      params);
  ASSERT_TRUE(lowered.ok()) << lowered.status().ToString();
  EXPECT_TRUE(lowered->profiled);
  auto plain = session_->Run(
      "R = SELECT s FROM (s:Item)"
      " ORDER BY VECTOR_DIST(s.emb, $qv) LIMIT 2; PRINT R;",
      params);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_FALSE(plain->profiled);
  EXPECT_TRUE(plain->profile.empty());
}

TEST_F(ObsProfileFixture, GlobalRegistryCoversSubsystems) {
  QueryParams params;
  params["qv"] = std::vector<float>{3, 0, 0, 0};
  auto result = session_->Run(
      "R = SELECT s FROM (s:Item)"
      " ORDER BY VECTOR_DIST(s.emb, $qv) LIMIT 3; PRINT R;",
      params);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string text = obs::MetricsRegistry::Global().RenderText();
  // Query, HNSW, vacuum, WAL, and graph metrics all flowed through the
  // fixture's load + vacuum + search.
  EXPECT_NE(text.find("tv_query_selects_total"), std::string::npos);
  EXPECT_NE(text.find("tv_query_vector_search_seconds"), std::string::npos);
  EXPECT_NE(text.find("tv_hnsw_distance_evals_total"), std::string::npos);
  EXPECT_NE(text.find("tv_hnsw_searches_total"), std::string::npos);
  EXPECT_NE(text.find("tv_vacuum_delta_merges_total"), std::string::npos);
  EXPECT_NE(text.find("tv_vacuum_index_merges_total"), std::string::npos);
  EXPECT_NE(text.find("tv_wal_appends_total"), std::string::npos);
  EXPECT_NE(text.find("tv_graph_commits_total"), std::string::npos);
}

}  // namespace
}  // namespace tigervector

file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_prefilter.dir/bench_abl_prefilter.cc.o"
  "CMakeFiles/bench_abl_prefilter.dir/bench_abl_prefilter.cc.o.d"
  "bench_abl_prefilter"
  "bench_abl_prefilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_prefilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "core/database.h"
#include "util/io.h"

namespace tigervector {
namespace {

// Crash-recovery tests. The core harness loops over every registered fault
// point: arm the fault, run a workload against a golden in-memory model,
// "crash" (drop the database without clean shutdown), recover a fresh
// instance from the on-disk artifacts, and verify the recovered state
// against the model. Commits that *failed* under an armed fault are
// uncertain — the record may or may not have reached stable storage (e.g. an
// fsync fault after the record was fully written) — so the model tracks both
// the pre-state and the attempted state and accepts either after recovery.

constexpr size_t kDim = 8;

std::vector<float> Vec(int i) {
  std::vector<float> v(kDim, 0.f);
  v[0] = static_cast<float>(i);
  v[1] = static_cast<float>((i * 7) % 23);
  v[2] = static_cast<float>(i % 5);
  return v;
}

struct GoldenEntry {
  std::vector<float> emb;  // empty = embedding absent/deleted
  int64_t version = 0;     // the "v" attribute
};

struct GoldenModel {
  // Last state acknowledged as committed, keyed by vid; absent = vertex
  // does not exist.
  std::map<VertexId, GoldenEntry> committed;
  // Attempted state of commits that returned an error while a fault was
  // armed; the recovered state must equal this or the committed entry.
  std::map<VertexId, GoldenEntry> attempted;
  std::set<VertexId> uncertain;
};

class RecoveryFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { io::FaultInjector::Instance().Reset(); }
  void TearDown() override { io::FaultInjector::Instance().Reset(); }

  Database::Options MakeOptions() const {
    Database::Options options;
    options.store.segment_capacity = 32;  // force several embedding segments
    options.store.wal_path = dir_ + "/wal.log";
    options.store.wal_sync = true;  // exercise fsync-on-commit
    options.embeddings.delta_dir = dir_;
    options.embeddings.index_params.m = 8;
    options.embeddings.index_params.ef_construction = 48;
    return options;
  }

  static void DefineSchema(Database* db) { DefineSchemaWithQuant(db, false); }

  static void DefineSchemaWithQuant(Database* db, bool sq8) {
    EmbeddingTypeInfo info;
    info.dimension = kDim;
    info.model = "M";
    info.metric = Metric::kL2;
    // Pinned in the schema (not TV_QUANT) so the test is environment-proof.
    if (sq8) info.quant = QuantOption::kSq8;
    ASSERT_TRUE(db->schema()->CreateVertexType("Item", {{"v", AttrType::kInt}}).ok());
    ASSERT_TRUE(db->schema()->AddEmbeddingAttr("Item", "emb", info).ok());
  }

  VertexId InsertItem(Database* db, GoldenModel* m, int value) {
    Transaction txn = db->Begin();
    auto vid = txn.InsertVertex("Item", {Value{int64_t{value}}});
    EXPECT_TRUE(vid.ok());
    EXPECT_TRUE(txn.SetEmbedding(*vid, "Item", "emb", Vec(value)).ok());
    GoldenEntry e{Vec(value), value};
    if (txn.Commit().ok()) {
      m->committed[*vid] = std::move(e);
    } else {
      m->attempted[*vid] = std::move(e);
      m->uncertain.insert(*vid);
    }
    return *vid;
  }

  void UpdateItem(Database* db, GoldenModel* m, VertexId vid, int value,
                  bool delete_emb) {
    Transaction txn = db->Begin();
    EXPECT_TRUE(txn.SetAttr(vid, "Item", "v", Value{int64_t{value}}).ok());
    if (delete_emb) {
      EXPECT_TRUE(txn.DeleteEmbedding(vid, "emb").ok());
    } else {
      EXPECT_TRUE(txn.SetEmbedding(vid, "Item", "emb", Vec(value)).ok());
    }
    GoldenEntry e{delete_emb ? std::vector<float>{} : Vec(value), value};
    if (txn.Commit().ok()) {
      m->committed[vid] = std::move(e);
      m->attempted.erase(vid);
      m->uncertain.erase(vid);
    } else {
      m->attempted[vid] = std::move(e);
      m->uncertain.insert(vid);
    }
  }

  static bool EntryMatches(Database* db, VertexId vid, const GoldenEntry* entry) {
    const Tid tid = db->store()->visible_tid();
    const bool exists = db->store()->IsVisible(vid, tid);
    if (entry == nullptr) return !exists;
    if (!exists) return false;
    auto v = db->store()->GetAttr(vid, "v", tid);
    if (!v.ok() || std::get<int64_t>(*v) != entry->version) return false;
    float buf[kDim];
    const Status st = db->embeddings()->GetEmbedding("Item", "emb", vid, buf);
    if (entry->emb.empty()) return !st.ok();
    if (!st.ok()) return false;
    for (size_t d = 0; d < kDim; ++d) {
      if (buf[d] != entry->emb[d]) return false;
    }
    return true;
  }

  // Resolves every uncertain vid against the recovered database: recovery
  // must land on either the committed or the attempted state. The model
  // ends fully determined.
  void ResolveUncertain(Database* db, GoldenModel* m) {
    for (VertexId vid : m->uncertain) {
      auto pre_it = m->committed.find(vid);
      const GoldenEntry* pre =
          pre_it == m->committed.end() ? nullptr : &pre_it->second;
      const GoldenEntry& att = m->attempted.at(vid);
      if (EntryMatches(db, vid, &att)) {
        m->committed[vid] = att;
      } else {
        EXPECT_TRUE(EntryMatches(db, vid, pre))
            << "vid " << vid
            << " matches neither the committed nor the attempted state";
      }
    }
    m->uncertain.clear();
    m->attempted.clear();
  }

  void VerifyCommitted(Database* db, const GoldenModel& m) {
    for (const auto& [vid, entry] : m.committed) {
      if (m.uncertain.count(vid) != 0) continue;
      EXPECT_TRUE(EntryMatches(db, vid, &entry)) << "vid " << vid;
    }
  }

  // Exact top-k over the golden model vs the recovered index (after a
  // vacuum, so the index path — not just the delta overlay — is checked).
  void VerifyTopK(Database* db, const GoldenModel& m) {
    ASSERT_TRUE(db->Vacuum().ok());
    const std::vector<float> q = Vec(42);
    std::vector<std::pair<float, VertexId>> exact;
    for (const auto& [vid, entry] : m.committed) {
      if (entry.emb.empty()) continue;
      exact.push_back({L2SquaredDistance(q.data(), entry.emb.data(), kDim), vid});
    }
    std::sort(exact.begin(), exact.end());
    const size_t k = std::min<size_t>(5, exact.size());
    VectorSearchRequest request;
    request.attrs = {{"Item", "emb"}};
    request.query = q.data();
    request.k = k;
    request.ef = 128;
    auto result = db->embeddings()->TopKSearch(request);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::set<VertexId> got;
    for (const SearchHit& h : result->hits) got.insert(h.label);
    size_t overlap = 0;
    for (size_t i = 0; i < k; ++i) overlap += got.count(exact[i].second);
    EXPECT_GE(overlap + 1, k) << "top-k diverged from the golden model";
  }

  std::string dir_;
};

std::string SanitizedName(const io::RegisteredFault& fault) {
  std::string name = std::string(fault.site) + "_" + io::FaultKindName(fault.kind);
  for (char& c : name) {
    if (c == '.') c = '_';
  }
  return name;
}

TEST_F(RecoveryFaultTest, EveryRegisteredFaultRecoversToGoldenModel) {
  for (const io::RegisteredFault& fault : io::FaultInjector::RegisteredFaults()) {
    SCOPED_TRACE(std::string(fault.site) + "/" + io::FaultKindName(fault.kind));
    io::FaultInjector::Instance().Reset();
    dir_ = ::testing::TempDir() + "tv_recovery_" + SanitizedName(fault);
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    const std::string snap_dir = dir_ + "/snap";
    std::filesystem::create_directories(snap_dir);
    // Faults at load sites fire during recovery itself; everything else
    // fires during the pre-crash workload.
    const bool load_fault = std::string(fault.site).find("load") != std::string::npos;

    GoldenModel model;
    std::vector<VertexId> vids;
    {
      // --- Phase A: victim process ---
      Database db(MakeOptions());
      DefineSchema(&db);
      for (int i = 0; i < 40; ++i) vids.push_back(InsertItem(&db, &model, i));
      ASSERT_TRUE(db.Vacuum().ok());
      // A clean snapshot set exists before any fault is armed.
      ASSERT_TRUE(db.embeddings()->SaveIndexSnapshots(snap_dir, db.pool()).ok());
      for (int i = 0; i < 10; ++i) {
        UpdateItem(&db, &model, vids[i], 100 + i, /*delete_emb=*/false);
      }
      // Seal the updates into on-disk delta files without index-merging
      // them, so recovery has sealed files to re-attach.
      ASSERT_TRUE(db.embeddings()->RunDeltaMerge().ok());

      if (!load_fault) {
        io::FaultSpec spec;
        spec.kind = fault.kind;
        // Byte thresholds land the failure mid-artifact: a little past the
        // WAL's current end, or a few bytes into a fresh file.
        spec.after_bytes = std::string(fault.site) == "wal.append"
                               ? db.store()->wal().appended_bytes() + 20
                               : 24;
        io::FaultInjector::Instance().Arm(fault.site, spec);
      }

      // Armed workload: updates, deletes, and inserts whose commits may
      // fail; plus both vacuum stages and a snapshot save, whose I/O may
      // fail. Failures are recorded as uncertain, never fatal here.
      for (int i = 0; i < 12; ++i) {
        UpdateItem(&db, &model, vids[10 + i], 200 + i, /*delete_emb=*/(i % 4 == 3));
      }
      for (int i = 0; i < 3; ++i) vids.push_back(InsertItem(&db, &model, 300 + i));
      (void)db.embeddings()->SaveIndexSnapshots(snap_dir, db.pool());
      for (int i = 0; i < 4; ++i) {
        UpdateItem(&db, &model, vids[25 + i], 400 + i, /*delete_emb=*/false);
      }
      // Leave sealed-but-unmerged delta files on disk for recovery to
      // re-attach (or to fault on, for the delta.load case).
      (void)db.embeddings()->RunDeltaMerge();
      // --- "Crash": the Database is dropped with no clean shutdown. ---
    }
    if (!load_fault) {
      EXPECT_GE(io::FaultInjector::Instance().triggered(fault.site), 1u)
          << "the armed fault never fired; the workload misses its site";
      io::FaultInjector::Instance().Disarm(fault.site);
    }

    // --- Phase B: recovery ---
    Database db(MakeOptions());
    DefineSchema(&db);
    if (load_fault) {
      io::FaultInjector::Instance().Arm(fault.site, io::FaultSpec{fault.kind, 0});
    }
    Database::RecoveryOptions ropts;
    ropts.snapshot_dir = snap_dir;
    auto report = db.Recover(ropts);
    if (load_fault) {
      EXPECT_GE(io::FaultInjector::Instance().triggered(fault.site), 1u);
      io::FaultInjector::Instance().Disarm(fault.site);
    }
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    ResolveUncertain(&db, &model);
    VerifyCommitted(&db, model);

    // The recovered database must accept new writes (the fault is gone).
    for (int i = 0; i < 3; ++i) {
      UpdateItem(&db, &model, vids[i], 500 + i, /*delete_emb=*/false);
    }
    vids.push_back(InsertItem(&db, &model, 600));
    EXPECT_TRUE(model.uncertain.empty()) << "post-recovery commits failed";
    VerifyCommitted(&db, model);
    VerifyTopK(&db, model);
  }
}

// Without any fault, recovery adopts the snapshot set and re-attaches the
// sealed delta files instead of replaying everything into the indexes.
TEST_F(RecoveryFaultTest, CleanRecoveryAdoptsSnapshotsAndDeltaFiles) {
  dir_ = ::testing::TempDir() + "tv_recovery_clean";
  std::filesystem::remove_all(dir_);
  std::filesystem::create_directories(dir_);
  const std::string snap_dir = dir_ + "/snap";
  std::filesystem::create_directories(snap_dir);
  GoldenModel model;
  std::vector<VertexId> vids;
  {
    Database db(MakeOptions());
    DefineSchema(&db);
    for (int i = 0; i < 40; ++i) vids.push_back(InsertItem(&db, &model, i));
    ASSERT_TRUE(db.Vacuum().ok());
    ASSERT_TRUE(db.embeddings()->SaveIndexSnapshots(snap_dir, db.pool()).ok());
    for (int i = 0; i < 10; ++i) {
      UpdateItem(&db, &model, vids[i], 100 + i, /*delete_emb=*/(i % 3 == 2));
    }
    ASSERT_TRUE(db.embeddings()->RunDeltaMerge().ok());
    for (int i = 10; i < 14; ++i) {
      UpdateItem(&db, &model, vids[i], 100 + i, /*delete_emb=*/false);
    }
  }
  Database db(MakeOptions());
  DefineSchema(&db);
  Database::RecoveryOptions ropts;
  ropts.snapshot_dir = snap_dir;
  auto report = db.Recover(ropts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->embeddings.snapshots_adopted, 2u);  // >= 2 segments
  EXPECT_EQ(report->embeddings.snapshots_rejected, 0u);
  EXPECT_GE(report->embeddings.delta_files_adopted, 1u);
  EXPECT_EQ(report->embeddings.delta_files_quarantined, 0u);
  EXPECT_FALSE(report->wal_truncated);
  ASSERT_TRUE(model.uncertain.empty());
  VerifyCommitted(&db, model);
  VerifyTopK(&db, model);
}

// SQ8 quantizer parameters ride in a checksummed trailer of each segment's
// index snapshot. A fault-injected crash followed by snapshot adoption must
// bring the quantized tier back: searches rank on codes again (quant_segments
// reported), reranked distances are exact, and the rerank set is bit-for-bit
// stable because codes are re-encoded deterministically at load.
TEST_F(RecoveryFaultTest, QuantizerParamsSurviveFaultedCrashAndAdopt) {
  dir_ = ::testing::TempDir() + "tv_recovery_quant_adopt";
  std::filesystem::remove_all(dir_);
  std::filesystem::create_directories(dir_);
  const std::string snap_dir = dir_ + "/snap";
  std::filesystem::create_directories(snap_dir);
  GoldenModel model;
  std::vector<VertexId> vids;
  {
    Database db(MakeOptions());
    DefineSchemaWithQuant(&db, /*sq8=*/true);
    for (int i = 0; i < 40; ++i) vids.push_back(InsertItem(&db, &model, i));
    ASSERT_TRUE(db.Vacuum().ok());  // builds the quantized HNSW indexes
    ASSERT_TRUE(db.embeddings()->SaveIndexSnapshots(snap_dir, db.pool()).ok());

    // Sanity: the victim already serves quantized, exactly-reranked answers.
    VectorSearchRequest request;
    const std::vector<float> q = Vec(42);
    request.attrs = {{"Item", "emb"}};
    request.query = q.data();
    request.k = 5;
    auto before = db.embeddings()->TopKSearch(request);
    ASSERT_TRUE(before.ok());
    ASSERT_GE(before->quant_segments, 1u);

    // Crash mid-workload through a WAL fault: some commits fail uncertain.
    io::FaultSpec spec;
    spec.kind = io::FaultKind::kFailWrite;
    spec.after_bytes = db.store()->wal().appended_bytes() + 20;
    io::FaultInjector::Instance().Arm("wal.append", spec);
    for (int i = 0; i < 8; ++i) {
      UpdateItem(&db, &model, vids[i], 100 + i, /*delete_emb=*/false);
    }
    // --- "Crash": dropped without clean shutdown. ---
  }
  EXPECT_GE(io::FaultInjector::Instance().triggered("wal.append"), 1u);
  io::FaultInjector::Instance().Disarm("wal.append");

  Database db(MakeOptions());
  DefineSchemaWithQuant(&db, /*sq8=*/true);
  Database::RecoveryOptions ropts;
  ropts.snapshot_dir = snap_dir;
  auto report = db.Recover(ropts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->embeddings.snapshots_adopted, 1u);
  ResolveUncertain(&db, &model);
  VerifyCommitted(&db, model);

  // The adopted indexes must carry the trained quantizer: the search ranks
  // on codes, and every returned distance is an exact fp32 rescore.
  VectorSearchRequest request;
  const std::vector<float> q = Vec(42);
  request.attrs = {{"Item", "emb"}};
  request.query = q.data();
  request.k = 5;
  auto after = db.embeddings()->TopKSearch(request);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_GE(after->quant_segments, 1u)
      << "adopted snapshots lost their quantizer trailer";
  EXPECT_GE(after->reranked, after->hits.size());
  for (const SearchHit& h : after->hits) {
    auto it = model.committed.find(h.label);
    ASSERT_NE(it, model.committed.end());
    ASSERT_FALSE(it->second.emb.empty());
    EXPECT_FLOAT_EQ(
        h.distance, L2SquaredDistance(q.data(), it->second.emb.data(), kDim));
  }
  // Deterministic re-encode at load => bit-for-bit stable rerank sets.
  auto again = db.embeddings()->TopKSearch(request);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->hits.size(), after->hits.size());
  for (size_t i = 0; i < after->hits.size(); ++i) {
    EXPECT_EQ(again->hits[i].label, after->hits[i].label);
    EXPECT_EQ(again->hits[i].distance, after->hits[i].distance);
  }
  std::filesystem::remove_all(dir_);
}

// A torn quantizer trailer (e.g. bit rot in the checksummed parameter block)
// must demote the adopted index to fp32-only instead of rejecting the intact
// graph or installing garbage statistics: recovery succeeds, answers stay
// correct, and no segment reports a quantized scan.
TEST_F(RecoveryFaultTest, TornQuantTrailerFallsBackToFp32) {
  dir_ = ::testing::TempDir() + "tv_recovery_quant_torn";
  std::filesystem::remove_all(dir_);
  std::filesystem::create_directories(dir_);
  const std::string snap_dir = dir_ + "/snap";
  std::filesystem::create_directories(snap_dir);
  GoldenModel model;
  {
    Database db(MakeOptions());
    DefineSchemaWithQuant(&db, /*sq8=*/true);
    for (int i = 0; i < 40; ++i) InsertItem(&db, &model, i);
    ASSERT_TRUE(db.Vacuum().ok());
    ASSERT_TRUE(db.embeddings()->SaveIndexSnapshots(snap_dir, db.pool()).ok());
  }
  // Corrupt the trailer checksum (the last 8 bytes) of every snapshot; the
  // HNSW body and its own framing stay intact.
  size_t corrupted = 0;
  for (const auto& entry : std::filesystem::directory_iterator(snap_dir)) {
    if (entry.path().extension() != ".hnsw") continue;
    std::fstream f(entry.path(), std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(-8, std::ios::end);
    const char garbage[8] = {'X', 'X', 'X', 'X', 'X', 'X', 'X', 'X'};
    f.write(garbage, sizeof(garbage));
    ASSERT_TRUE(f.good());
    ++corrupted;
  }
  ASSERT_GE(corrupted, 1u);

  Database db(MakeOptions());
  DefineSchemaWithQuant(&db, /*sq8=*/true);
  Database::RecoveryOptions ropts;
  ropts.snapshot_dir = snap_dir;
  auto report = db.Recover(ropts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->embeddings.snapshots_adopted, 1u)
      << "a torn quant trailer must not reject the intact graph";
  ASSERT_TRUE(model.uncertain.empty());
  VerifyCommitted(&db, model);

  // Quantization is off on every adopted segment, and answers are exact.
  VectorSearchRequest request;
  const std::vector<float> q = Vec(42);
  request.attrs = {{"Item", "emb"}};
  request.query = q.data();
  request.k = 5;
  request.ef = 128;
  auto result = db.embeddings()->TopKSearch(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->quant_segments, 0u)
      << "segment served quantized scans from a corrupt trailer";
  EXPECT_EQ(result->reranked, 0u);
  for (const SearchHit& h : result->hits) {
    auto it = model.committed.find(h.label);
    ASSERT_NE(it, model.committed.end());
    EXPECT_FLOAT_EQ(
        h.distance, L2SquaredDistance(q.data(), it->second.emb.data(), kDim));
  }
  std::filesystem::remove_all(dir_);
}

// A torn WAL tail must read back as the complete prefix plus a truncation
// point — never as an error — and truncating there yields a clean log.
TEST(WalTornTail, ReadLogStopsAtLastCompleteRecord) {
  const std::string path = ::testing::TempDir() + "tv_torn.wal";
  std::remove(path.c_str());
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path).ok());
    for (Tid tid = 1; tid <= 3; ++tid) {
      Mutation m;
      m.kind = Mutation::Kind::kInsertVertex;
      m.vid = tid;
      m.vtype = 0;
      ASSERT_TRUE(wal.Append(tid, {m}).ok());
    }
  }
  auto clean_size = io::FileSize(path);
  ASSERT_TRUE(clean_size.ok());
  {
    // Simulate a crash mid-append: a record header promising more payload
    // than was written.
    FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const uint32_t len = 1000;
    const uint64_t tid = 4;
    ASSERT_EQ(std::fwrite(&len, sizeof(len), 1, f), 1u);
    ASSERT_EQ(std::fwrite(&tid, sizeof(tid), 1, f), 1u);
    const char junk[3] = {1, 2, 3};
    ASSERT_EQ(std::fwrite(junk, 1, sizeof(junk), f), sizeof(junk));
    std::fclose(f);
  }
  auto outcome = WriteAheadLog::ReadLog(path);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->records.size(), 3u);
  EXPECT_TRUE(outcome->truncated);
  EXPECT_EQ(outcome->valid_bytes, *clean_size);

  ASSERT_TRUE(io::TruncateFile(path, outcome->valid_bytes).ok());
  auto again = WriteAheadLog::ReadLog(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->records.size(), 3u);
  EXPECT_FALSE(again->truncated);
}

TEST(WalSync, SyncOnCommitFsyncsEveryAppend) {
  const std::string path = ::testing::TempDir() + "tv_sync.wal";
  std::remove(path.c_str());
  Mutation m;
  m.kind = Mutation::Kind::kInsertVertex;
  m.vid = 1;
  m.vtype = 0;
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, /*sync_on_commit=*/true).ok());
    for (Tid tid = 1; tid <= 5; ++tid) ASSERT_TRUE(wal.Append(tid, {m}).ok());
    EXPECT_EQ(wal.fsyncs(), 5u);
  }
  std::remove(path.c_str());
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, /*sync_on_commit=*/false).ok());
    for (Tid tid = 1; tid <= 5; ++tid) ASSERT_TRUE(wal.Append(tid, {m}).ok());
    EXPECT_EQ(wal.fsyncs(), 0u);
  }
}

// A failing delta-file save must leave every committed delta in memory so a
// later pass can retry; nothing is lost.
TEST(DeltaMergeFault, FailedSaveKeepsDeltasInMemory) {
  io::FaultInjector::Instance().Reset();
  const std::string dir = ::testing::TempDir() + "tv_delta_fault";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  EmbeddingTypeInfo info;
  info.dimension = kDim;
  info.model = "M";
  info.metric = Metric::kL2;
  HnswParams params;
  EmbeddingSegment seg(0, 0, 256, info, params);
  for (int i = 0; i < 10; ++i) {
    VectorDelta d;
    d.action = VectorDelta::Action::kUpsert;
    d.id = static_cast<VertexId>(i);
    d.tid = static_cast<Tid>(i + 1);
    d.value = Vec(i);
    ASSERT_TRUE(seg.ApplyDelta(std::move(d)).ok());
  }
  io::FaultInjector::Instance().Arm("delta.save",
                                    io::FaultSpec{io::FaultKind::kFailWrite, 0});
  auto sealed = seg.DeltaMerge(10, dir);
  EXPECT_FALSE(sealed.ok());
  EXPECT_EQ(seg.in_memory_delta_count(), 10u);
  EXPECT_EQ(seg.sealed_file_count(), 0u);
  io::FaultInjector::Instance().Disarm("delta.save");
  auto retry = seg.DeltaMerge(10, dir);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(*retry, 10u);
  EXPECT_EQ(seg.in_memory_delta_count(), 0u);
  EXPECT_EQ(seg.sealed_file_count(), 1u);
  io::FaultInjector::Instance().Reset();
}

// A delta file corrupted on disk (bit rot / torn by a non-atomic writer) is
// quarantined during recovery, not fatal, and WAL replay fills the gap.
TEST(DeltaCorruption, CorruptDeltaFileIsQuarantinedAndReplayed) {
  io::FaultInjector::Instance().Reset();
  const std::string dir = ::testing::TempDir() + "tv_delta_corrupt";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  Database::Options options;
  options.store.segment_capacity = 64;
  options.store.wal_path = dir + "/wal.log";
  options.embeddings.delta_dir = dir;
  EmbeddingTypeInfo info;
  info.dimension = kDim;
  info.model = "M";
  info.metric = Metric::kL2;

  std::vector<VertexId> vids;
  {
    Database db(options);
    ASSERT_TRUE(db.schema()->CreateVertexType("Item", {{"v", AttrType::kInt}}).ok());
    ASSERT_TRUE(db.schema()->AddEmbeddingAttr("Item", "emb", info).ok());
    for (int i = 0; i < 8; ++i) {
      Transaction txn = db.Begin();
      auto vid = txn.InsertVertex("Item", {Value{int64_t{i}}});
      ASSERT_TRUE(vid.ok());
      ASSERT_TRUE(txn.SetEmbedding(*vid, "Item", "emb", Vec(i)).ok());
      ASSERT_TRUE(txn.Commit().ok());
      vids.push_back(*vid);
    }
    ASSERT_TRUE(db.embeddings()->RunDeltaMerge().ok());
  }
  // Corrupt the sealed delta file: truncate it mid-body.
  std::string delta_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".delta") delta_path = entry.path().string();
  }
  ASSERT_FALSE(delta_path.empty());
  auto size = io::FileSize(delta_path);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(io::TruncateFile(delta_path, *size / 2).ok());

  Database db(options);
  ASSERT_TRUE(db.schema()->CreateVertexType("Item", {{"v", AttrType::kInt}}).ok());
  ASSERT_TRUE(db.schema()->AddEmbeddingAttr("Item", "emb", info).ok());
  auto report = db.Recover();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->embeddings.delta_files_quarantined, 1u);
  EXPECT_EQ(report->embeddings.delta_files_adopted, 0u);
  EXPECT_FALSE(io::Exists(delta_path));
  EXPECT_TRUE(io::Exists(delta_path + io::kQuarantineSuffix));
  // Every vector is back, courtesy of the WAL.
  for (int i = 0; i < 8; ++i) {
    float buf[kDim];
    ASSERT_TRUE(db.embeddings()->GetEmbedding("Item", "emb", vids[i], buf).ok());
    EXPECT_EQ(buf[0], Vec(i)[0]);
  }
}

// IndexMerge racing RebuildIndex, readers, and a writer: exercised under
// TSan in CI. The merge keeps the old index alive via shared ownership and
// revalidates the retired sealed prefix under the lock, so no delta may be
// lost and no use-after-free may occur.
TEST(RecoveryConcurrency, IndexMergeVsRebuildVsReaders) {
  EmbeddingTypeInfo info;
  info.dimension = kDim;
  info.model = "M";
  info.metric = Metric::kL2;
  HnswParams params;
  params.m = 8;
  params.ef_construction = 48;
  EmbeddingSegment seg(0, 0, 512, info, params);
  constexpr int kIds = 64;
  auto upsert = [&](int id, Tid tid) {
    VectorDelta d;
    d.action = VectorDelta::Action::kUpsert;
    d.id = static_cast<VertexId>(id);
    d.tid = tid;
    d.value = Vec(id + static_cast<int>(tid));
    ASSERT_TRUE(seg.ApplyDelta(std::move(d)).ok());
  };
  Tid tid = 0;
  for (int i = 0; i < kIds; ++i) upsert(i, ++tid);
  ASSERT_TRUE(seg.DeltaMerge(tid, "").ok());

  std::atomic<bool> stop{false};
  std::atomic<Tid> sealed_tid{tid};
  std::atomic<int> errors{0};

  std::thread merger([&] {
    while (!stop.load()) {
      if (!seg.IndexMerge(sealed_tid.load(), nullptr).ok()) errors.fetch_add(1);
    }
  });
  std::thread rebuilder([&] {
    while (!stop.load()) {
      if (!seg.RebuildIndex(nullptr).ok()) errors.fetch_add(1);
    }
  });
  std::thread reader([&] {
    float buf[kDim];
    int i = 0;
    while (!stop.load()) {
      EmbeddingSegment::SearchOptions opts;
      opts.k = 5;
      opts.ef = 32;
      const std::vector<float> q = Vec(i++ % kIds);
      auto out = seg.TopKSearch(q.data(), opts);
      for (size_t j = 1; j < out.hits.size(); ++j) {
        if (out.hits[j - 1].distance > out.hits[j].distance) errors.fetch_add(1);
      }
      (void)seg.GetEmbedding(static_cast<VertexId>(i % kIds), kMaxTid, buf);
    }
  });
  // Writer: keep appending and sealing deltas on the main thread.
  for (int round = 0; round < 2000; ++round) {
    upsert(round % kIds, ++tid);
    if (round % 16 == 15) {
      ASSERT_TRUE(seg.DeltaMerge(tid, "").ok());
      sealed_tid.store(tid);
    }
  }
  stop.store(true);
  merger.join();
  rebuilder.join();
  reader.join();
  EXPECT_EQ(errors.load(), 0);

  // Quiesced: fold everything and check the final value of every id.
  ASSERT_TRUE(seg.DeltaMerge(tid, "").ok());
  ASSERT_TRUE(seg.IndexMerge(tid, nullptr).ok());
  EXPECT_EQ(seg.pending_delta_count(), 0u);
  std::map<int, Tid> last_tid;
  Tid t = 0;
  for (int i = 0; i < kIds; ++i) last_tid[i] = ++t;
  for (int round = 0; round < 2000; ++round) last_tid[round % kIds] = ++t;
  for (int i = 0; i < kIds; ++i) {
    float buf[kDim];
    ASSERT_TRUE(seg.GetEmbedding(static_cast<VertexId>(i), kMaxTid, buf).ok());
    const std::vector<float> expect = Vec(i + static_cast<int>(last_tid[i]));
    for (size_t d = 0; d < kDim; ++d) EXPECT_EQ(buf[d], expect[d]) << "id " << i;
  }
}

}  // namespace
}  // namespace tigervector

file(REMOVE_RECURSE
  "libtv_loader.a"
)

#include "simd/distance.h"

#include <algorithm>
#include <cmath>

#include "simd/kernels.h"

namespace tigervector {

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return "L2";
    case Metric::kIp:
      return "IP";
    case Metric::kCosine:
      return "COSINE";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Scalar reference kernels: the portable fallback every SIMD variant is
// tested against. Four accumulators break the dependency chain so the
// compiler can vectorize and pipeline the loops.
// ---------------------------------------------------------------------------

namespace simd::internal {

float ScalarL2(const float* a, const float* b, size_t dim) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    acc0 += d * d;
  }
  return acc0 + acc1 + acc2 + acc3;
}

float ScalarIp(const float* a, const float* b, size_t dim) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < dim; ++i) acc0 += a[i] * b[i];
  return acc0 + acc1 + acc2 + acc3;
}

float ScalarCosine(const float* a, const float* b, size_t dim) {
  float dot = 0.f, na = 0.f, nb = 0.f;
  for (size_t i = 0; i < dim; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  const float denom = std::sqrt(na) * std::sqrt(nb);
  if (denom == 0.f) return 2.f;  // zero-norm sentinel: worst cosine distance
  return 1.f - dot / denom;
}

}  // namespace simd::internal

// ---------------------------------------------------------------------------
// Dispatched one-pair entry points.
// ---------------------------------------------------------------------------

float L2SquaredDistance(const float* a, const float* b, size_t dim) {
  return simd::internal::ActiveKernels().l2(a, b, dim);
}

float InnerProduct(const float* a, const float* b, size_t dim) {
  return simd::internal::ActiveKernels().ip(a, b, dim);
}

float CosineDistance(const float* a, const float* b, size_t dim) {
  return simd::internal::ActiveKernels().cosine(a, b, dim);
}

float ComputeDistance(Metric metric, const float* a, const float* b, size_t dim) {
  const simd::KernelTable& k = simd::internal::ActiveKernels();
  switch (metric) {
    case Metric::kL2:
      return k.l2(a, b, dim);
    case Metric::kIp:
      return 1.f - k.ip(a, b, dim);
    case Metric::kCosine:
      return k.cosine(a, b, dim);
  }
  return 0.f;
}

// ---------------------------------------------------------------------------
// Batched one-vs-many entry points.
// ---------------------------------------------------------------------------

namespace {

// Prefetch distance in rows: by the time the scan reaches row i, rows
// i+1..i+kLookahead have had their leading cache lines requested. Only the
// first few lines of a row are touched explicitly — the hardware stride
// prefetcher follows on within the row.
constexpr size_t kLookahead = 2;

inline void PrefetchRow(const float* row, size_t dim) {
  const size_t lines = std::min<size_t>((dim * sizeof(float) + 63) / 64, 4);
  const char* p = reinterpret_cast<const char*>(row);
  for (size_t l = 0; l < lines; ++l) __builtin_prefetch(p + l * 64, 0, 1);
}

using PairFn = float (*)(const float*, const float*, size_t);

// Resolves the metric to a (kernel, post-transform) pair once per batch.
struct BatchKernel {
  PairFn fn;
  bool one_minus;  // kIp reports 1 - dot as the distance
};

inline BatchKernel ResolveBatchKernel(Metric metric) {
  const simd::KernelTable& k = simd::internal::ActiveKernels();
  switch (metric) {
    case Metric::kL2:
      return {k.l2, false};
    case Metric::kIp:
      return {k.ip, true};
    case Metric::kCosine:
      return {k.cosine, false};
  }
  return {k.l2, false};
}

}  // namespace

void L2SquaredDistanceBatch(const float* query, const float* rows, size_t dim,
                            size_t count, float* out) {
  const PairFn fn = simd::internal::ActiveKernels().l2;
  for (size_t i = 0; i < count; ++i) {
    if (i + kLookahead < count) PrefetchRow(rows + (i + kLookahead) * dim, dim);
    out[i] = fn(query, rows + i * dim, dim);
  }
}

void InnerProductBatch(const float* query, const float* rows, size_t dim,
                       size_t count, float* out) {
  const PairFn fn = simd::internal::ActiveKernels().ip;
  for (size_t i = 0; i < count; ++i) {
    if (i + kLookahead < count) PrefetchRow(rows + (i + kLookahead) * dim, dim);
    out[i] = fn(query, rows + i * dim, dim);
  }
}

void CosineDistanceBatch(const float* query, const float* rows, size_t dim,
                         size_t count, float* out) {
  const PairFn fn = simd::internal::ActiveKernels().cosine;
  for (size_t i = 0; i < count; ++i) {
    if (i + kLookahead < count) PrefetchRow(rows + (i + kLookahead) * dim, dim);
    out[i] = fn(query, rows + i * dim, dim);
  }
}

size_t ComputeDistanceBatch(Metric metric, const float* query, const float* rows,
                            size_t dim, size_t count, float* out, float threshold) {
  const BatchKernel k = ResolveBatchKernel(metric);
  size_t below = 0;
  for (size_t i = 0; i < count; ++i) {
    if (i + kLookahead < count) PrefetchRow(rows + (i + kLookahead) * dim, dim);
    const float raw = k.fn(query, rows + i * dim, dim);
    const float d = k.one_minus ? 1.f - raw : raw;
    out[i] = d;
    if (d < threshold) ++below;
  }
  return below;
}

size_t ComputeDistanceBatchGather(Metric metric, const float* query,
                                  const float* const* rows, size_t dim, size_t count,
                                  float* out, float threshold) {
  const BatchKernel k = ResolveBatchKernel(metric);
  size_t below = 0;
  for (size_t i = 0; i < count; ++i) {
    if (i + kLookahead < count) PrefetchRow(rows[i + kLookahead], dim);
    const float raw = k.fn(query, rows[i], dim);
    const float d = k.one_minus ? 1.f - raw : raw;
    out[i] = d;
    if (d < threshold) ++below;
  }
  return below;
}

float L2Norm(const float* a, size_t dim) {
  return std::sqrt(simd::internal::ActiveKernels().ip(a, a, dim));
}

void NormalizeInPlace(float* a, size_t dim) {
  const float norm = L2Norm(a, dim);
  if (norm == 0.f) return;
  const float inv = 1.f / norm;
  for (size_t i = 0; i < dim; ++i) a[i] *= inv;
}

}  // namespace tigervector

#ifndef TIGERVECTOR_UTIL_LOGGING_H_
#define TIGERVECTOR_UTIL_LOGGING_H_

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace tigervector {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped. Defaults to
// kWarn so library users are not spammed; tests and benches may lower it.
// The TV_LOG_LEVEL environment variable ("debug"/"info"/"warn"/"error",
// case-insensitive) overrides the default once at startup.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses a TV_LOG_LEVEL-style string; returns false if unrecognized.
bool ParseLogLevel(const std::string& text, LogLevel* out);

namespace internal {

// Stream-style single-line logger; the full line is emitted atomically in
// the destructor.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal

#define TV_LOG(level)                                                     \
  ::tigervector::internal::LogMessage(::tigervector::LogLevel::k##level, \
                                      __FILE__, __LINE__)

}  // namespace tigervector

#endif  // TIGERVECTOR_UTIL_LOGGING_H_

#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "obs/metrics.h"
#include "util/io.h"

namespace tigervector::net {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

bool IsTimeout(int err) { return err == EAGAIN || err == EWOULDBLOCK; }

// Labeled counter: resolved per call (the TV_COUNTER_* macros cache their
// pointer per call site, which would pin the first label seen).
void CountNetError(const char* kind) {
#if !defined(TIGERVECTOR_NO_METRICS)
  obs::MetricsRegistry::Global()
      .GetCounter(std::string("tv.net.errors_total{kind=") + kind + "}")
      ->Increment();
#else
  (void)kind;
#endif
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_.exchange(-1, std::memory_order_relaxed)),
      fault_site_(std::move(other.fault_site_)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1, std::memory_order_relaxed),
              std::memory_order_relaxed);
    fault_site_ = std::move(other.fault_site_);
  }
  return *this;
}

Socket Socket::FromFd(int fd) {
  Socket s;
  s.fd_ = fd;
  return s;
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port,
                               int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock = FromFd(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("invalid IPv4 address '" + host + "'");
  }

  // Bounded connect: non-blocking connect + poll for writability.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    CountNetError("connect");
    return Errno("connect to " + host + ":" + std::to_string(port));
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, timeout_ms <= 0 ? -1 : timeout_ms);
    if (rc == 0) {
      CountNetError("connect_timeout");
      return Status::DeadlineExceeded("connect to " + host + ":" +
                                      std::to_string(port) + " timed out after " +
                                      std::to_string(timeout_ms) + "ms");
    }
    if (rc < 0) return Errno("poll(connect)");
    int err = 0;
    socklen_t err_len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
    if (err != 0) {
      errno = err;
      CountNetError("connect");
      return Errno("connect to " + host + ":" + std::to_string(port));
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Status Socket::SetRecvTimeout(int ms) {
  timeval tv{ms / 1000, static_cast<suseconds_t>((ms % 1000) * 1000)};
  if (::setsockopt(fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

Status Socket::SetSendTimeout(int ms) {
  timeval tv{ms / 1000, static_cast<suseconds_t>((ms % 1000) * 1000)};
  if (::setsockopt(fd(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_SNDTIMEO)");
  }
  return Status::OK();
}

Status Socket::SendAll(const void* data, size_t len) {
  const int send_fd = fd();
  if (send_fd < 0) return Status::IOError("send on closed socket");
  size_t to_send = len;

  // Fault hooks (mirrors io::File::Write): a kTornWrite truncates this
  // transfer to `after_bytes` and hard-closes the socket — the on-wire
  // artifact of a process dying mid-send (after_bytes = 0 is a close
  // before any byte). kStall sleeps `after_bytes` milliseconds first so
  // the peer's receive timeout fires.
  auto& injector = io::FaultInjector::Instance();
  bool tear_after = false;
  if (!fault_site_.empty() && injector.any_armed()) {
    io::FaultSpec spec;
    if (injector.GetSpec(fault_site_, &spec)) {
      if (spec.kind == io::FaultKind::kStall) {
        injector.RecordTrigger(fault_site_);
        std::this_thread::sleep_for(std::chrono::milliseconds(spec.after_bytes));
      } else if (spec.kind == io::FaultKind::kTornWrite) {
        injector.RecordTrigger(fault_site_);
        tear_after = true;
        to_send = std::min<size_t>(len, spec.after_bytes);
      } else if (spec.kind == io::FaultKind::kFailWrite) {
        injector.RecordTrigger(fault_site_);
        CountNetError("injected_send");
        return Status::IOError("injected fault: send failed at " + fault_site_);
      }
    }
  }

  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < to_send) {
    const ssize_t n = ::send(send_fd, p + sent, to_send - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (IsTimeout(errno)) {
        CountNetError("send_timeout");
        return Status::DeadlineExceeded("send timed out");
      }
      CountNetError("send");
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  TV_COUNTER_ADD("tv.net.bytes_sent_total", sent);
  if (tear_after) {
    // Hard close (RST-ish): the peer observes a torn frame.
    Shutdown();
    Close();
    CountNetError("injected_torn_send");
    return Status::IOError("injected fault: connection torn mid-send at " +
                           fault_site_);
  }
  return Status::OK();
}

Status Socket::RecvAll(void* data, size_t len) {
  const int recv_fd = fd();
  if (recv_fd < 0) return Status::IOError("recv on closed socket");
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(recv_fd, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (IsTimeout(errno)) {
        CountNetError("recv_timeout");
        return Status::DeadlineExceeded("recv timed out (peer stalled?)");
      }
      CountNetError("recv");
      return Errno("recv");
    }
    if (n == 0) {
      CountNetError("peer_closed");
      if (got == 0) return Status::IOError("connection closed by peer");
      return Status::IOError("connection closed mid-transfer (torn frame: got " +
                             std::to_string(got) + " of " + std::to_string(len) +
                             " bytes)");
    }
    got += static_cast<size_t>(n);
  }
  TV_COUNTER_ADD("tv.net.bytes_recv_total", got);
  return Status::OK();
}

void Socket::Shutdown() {
  const int shutdown_fd = fd();
  if (shutdown_fd >= 0) ::shutdown(shutdown_fd, SHUT_RDWR);
}

void Socket::Close() {
  // exchange() makes a racing Close (owner thread vs. fault path) close
  // the descriptor exactly once.
  const int close_fd = fd_.exchange(-1, std::memory_order_relaxed);
  if (close_fd >= 0) ::close(close_fd);
}

Listener::~Listener() { Close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_.exchange(-1, std::memory_order_relaxed)), port_(other.port_) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1, std::memory_order_relaxed),
              std::memory_order_relaxed);
    port_ = other.port_;
  }
  return *this;
}

Result<Listener> Listener::Listen(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Listener listener;
  listener.fd_.store(fd, std::memory_order_relaxed);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind port " + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) return Errno("listen");
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    return Errno("getsockname");
  }
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<Socket> Listener::Accept() {
  for (;;) {
    const int listen_fd = fd_.load(std::memory_order_relaxed);
    if (listen_fd < 0) return Status::Aborted("listener closed");
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket::FromFd(fd);
    }
    if (errno == EINTR) continue;
    // EBADF/EINVAL after Close() from the server's Stop path.
    if (errno == EBADF || errno == EINVAL) {
      return Status::Aborted("listener closed");
    }
    return Errno("accept");
  }
}

void Listener::Close() {
  const int close_fd = fd_.exchange(-1, std::memory_order_relaxed);
  if (close_fd >= 0) {
    // shutdown() unblocks a concurrent accept() reliably across platforms;
    // close() alone may leave it sleeping.
    ::shutdown(close_fd, SHUT_RDWR);
    ::close(close_fd);
  }
}

}  // namespace tigervector::net

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "embedding/embedding_segment.h"
#include "embedding/embedding_service.h"
#include "graph/transaction.h"
#include "util/thread_pool.h"

namespace tigervector {
namespace {

EmbeddingTypeInfo Info(size_t dim, const std::string& model = "M",
                       Metric metric = Metric::kL2) {
  EmbeddingTypeInfo info;
  info.dimension = dim;
  info.model = model;
  info.metric = metric;
  return info;
}

// ---------------- Embedding type compatibility ----------------

TEST(EmbeddingTypeTest, CompatibleWhenOnlyIndexDiffers) {
  EmbeddingTypeInfo a = Info(8);
  EmbeddingTypeInfo b = Info(8);
  b.index = VectorIndexType::kFlat;
  EXPECT_TRUE(CheckCompatible(a, b).ok());
}

TEST(EmbeddingTypeTest, DimensionMismatchRejected) {
  EXPECT_EQ(CheckCompatible(Info(8), Info(16)).code(), StatusCode::kIncompatible);
}

TEST(EmbeddingTypeTest, ModelMismatchRejected) {
  EXPECT_EQ(CheckCompatible(Info(8, "A"), Info(8, "B")).code(),
            StatusCode::kIncompatible);
}

TEST(EmbeddingTypeTest, MetricMismatchRejected) {
  EXPECT_EQ(CheckCompatible(Info(8, "M", Metric::kL2), Info(8, "M", Metric::kCosine))
                .code(),
            StatusCode::kIncompatible);
}

TEST(EmbeddingTypeTest, ToStringMentionsEverything) {
  EmbeddingTypeInfo info = Info(1024, "GPT4", Metric::kCosine);
  const std::string s = info.ToString();
  EXPECT_NE(s.find("1024"), std::string::npos);
  EXPECT_NE(s.find("GPT4"), std::string::npos);
  EXPECT_NE(s.find("HNSW"), std::string::npos);
  EXPECT_NE(s.find("COSINE"), std::string::npos);
}

// ---------------- EmbeddingSegment ----------------

class EmbeddingSegmentFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    HnswParams params;
    params.m = 8;
    params.ef_construction = 64;
    segment_ = std::make_unique<EmbeddingSegment>(0, 0, 256, Info(4), params);
  }

  std::vector<float> Vec(float a, float b = 0, float c = 0, float d = 0) {
    return {a, b, c, d};
  }

  Status Upsert(VertexId id, Tid tid, std::vector<float> v) {
    VectorDelta delta;
    delta.action = VectorDelta::Action::kUpsert;
    delta.id = id;
    delta.tid = tid;
    delta.value = std::move(v);
    return segment_->ApplyDelta(std::move(delta));
  }

  Status Delete(VertexId id, Tid tid) {
    VectorDelta delta;
    delta.action = VectorDelta::Action::kDelete;
    delta.id = id;
    delta.tid = tid;
    return segment_->ApplyDelta(std::move(delta));
  }

  EmbeddingSegment::SearchOptions Options(size_t k, Tid read_tid) {
    EmbeddingSegment::SearchOptions o;
    o.k = k;
    o.ef = 64;
    o.read_tid = read_tid;
    return o;
  }

  std::unique_ptr<EmbeddingSegment> segment_;
};

TEST_F(EmbeddingSegmentFixture, SearchServedFromDeltasBeforeMerge) {
  ASSERT_TRUE(Upsert(1, 1, Vec(1)).ok());
  ASSERT_TRUE(Upsert(2, 2, Vec(2)).ok());
  EXPECT_EQ(segment_->pending_delta_count(), 2u);
  EXPECT_EQ(segment_->index_size(), 0u);  // nothing merged yet
  float q[4] = {1, 0, 0, 0};
  auto out = segment_->TopKSearch(q, Options(1, /*read_tid=*/10));
  ASSERT_EQ(out.hits.size(), 1u);
  EXPECT_EQ(out.hits[0].label, 1u);
  EXPECT_GT(out.delta_candidates, 0u);
}

TEST_F(EmbeddingSegmentFixture, MvccVisibilityByTid) {
  ASSERT_TRUE(Upsert(1, 5, Vec(1)).ok());
  float q[4] = {1, 0, 0, 0};
  EXPECT_TRUE(segment_->TopKSearch(q, Options(1, /*read_tid=*/4)).hits.empty());
  EXPECT_EQ(segment_->TopKSearch(q, Options(1, /*read_tid=*/5)).hits.size(), 1u);
}

TEST_F(EmbeddingSegmentFixture, DeltaDimensionValidated) {
  VectorDelta d;
  d.action = VectorDelta::Action::kUpsert;
  d.id = 1;
  d.tid = 1;
  d.value = {1, 2};  // wrong dim
  EXPECT_EQ(segment_->ApplyDelta(std::move(d)).code(), StatusCode::kInvalidArgument);
}

TEST_F(EmbeddingSegmentFixture, OutOfRangeIdRejected) {
  EXPECT_EQ(Upsert(9999, 1, Vec(1)).code(), StatusCode::kInvalidArgument);
}

TEST_F(EmbeddingSegmentFixture, TwoStageVacuumMovesDeltasIntoIndex) {
  for (VertexId i = 0; i < 20; ++i) {
    ASSERT_TRUE(Upsert(i, i + 1, Vec(static_cast<float>(i))).ok());
  }
  // Stage 1: seal in-memory deltas into a delta file.
  auto sealed = segment_->DeltaMerge(/*up_to_tid=*/20, /*dir=*/"");
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(*sealed, 20u);
  EXPECT_EQ(segment_->in_memory_delta_count(), 0u);
  EXPECT_EQ(segment_->sealed_file_count(), 1u);
  EXPECT_EQ(segment_->pending_delta_count(), 20u);  // still pending for search
  // Stage 2: fold the delta file into the index.
  ThreadPool pool(2);
  auto merged = segment_->IndexMerge(/*up_to_tid=*/20, &pool);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, 20u);
  EXPECT_EQ(segment_->pending_delta_count(), 0u);
  EXPECT_EQ(segment_->index_size(), 20u);
  EXPECT_EQ(segment_->merged_tid(), 20u);
  // Search now served from the index.
  float q[4] = {7, 0, 0, 0};
  auto out = segment_->TopKSearch(q, Options(1, 100));
  ASSERT_EQ(out.hits.size(), 1u);
  EXPECT_EQ(out.hits[0].label, 7u);
  EXPECT_EQ(out.delta_candidates, 0u);
}

TEST_F(EmbeddingSegmentFixture, PartialVacuumRespectsTidHorizon) {
  ASSERT_TRUE(Upsert(1, 1, Vec(1)).ok());
  ASSERT_TRUE(Upsert(2, 5, Vec(2)).ok());
  auto sealed = segment_->DeltaMerge(/*up_to_tid=*/3, "");
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(*sealed, 1u);  // only tid 1 sealed
  EXPECT_EQ(segment_->in_memory_delta_count(), 1u);
}

TEST_F(EmbeddingSegmentFixture, UpdateOverridesIndexValue) {
  ASSERT_TRUE(Upsert(1, 1, Vec(1)).ok());
  ThreadPool pool(2);
  ASSERT_TRUE(segment_->DeltaMerge(1, "").ok());
  ASSERT_TRUE(segment_->IndexMerge(1, &pool).ok());
  // Now update id 1 to a far location; before merge the delta must win.
  ASSERT_TRUE(Upsert(1, 2, Vec(100)).ok());
  float q[4] = {1, 0, 0, 0};
  auto out = segment_->TopKSearch(q, Options(1, 10));
  ASSERT_EQ(out.hits.size(), 1u);
  EXPECT_EQ(out.hits[0].label, 1u);
  // Distance reflects the NEW value (99^2), not the stale index value (0).
  EXPECT_GT(out.hits[0].distance, 9000.0f);
  // GetEmbedding also sees the new value.
  float buf[4];
  ASSERT_TRUE(segment_->GetEmbedding(1, 10, buf).ok());
  EXPECT_EQ(buf[0], 100.0f);
}

TEST_F(EmbeddingSegmentFixture, DeleteHidesFromSearchBeforeAndAfterMerge) {
  ASSERT_TRUE(Upsert(1, 1, Vec(1)).ok());
  ASSERT_TRUE(Upsert(2, 2, Vec(1.1f)).ok());
  ThreadPool pool(2);
  ASSERT_TRUE(segment_->DeltaMerge(2, "").ok());
  ASSERT_TRUE(segment_->IndexMerge(2, &pool).ok());
  ASSERT_TRUE(Delete(1, 3).ok());
  float q[4] = {1, 0, 0, 0};
  // Before merge: pending delete overrides the index entry.
  auto out = segment_->TopKSearch(q, Options(2, 10));
  ASSERT_EQ(out.hits.size(), 1u);
  EXPECT_EQ(out.hits[0].label, 2u);
  // After merge: tombstone in the index.
  ASSERT_TRUE(segment_->DeltaMerge(3, "").ok());
  ASSERT_TRUE(segment_->IndexMerge(3, &pool).ok());
  out = segment_->TopKSearch(q, Options(2, 10));
  ASSERT_EQ(out.hits.size(), 1u);
  EXPECT_EQ(out.hits[0].label, 2u);
  float buf[4];
  EXPECT_EQ(segment_->GetEmbedding(1, 10, buf).code(), StatusCode::kNotFound);
}

TEST_F(EmbeddingSegmentFixture, RebuildIndexFoldsEverything) {
  for (VertexId i = 0; i < 10; ++i) {
    ASSERT_TRUE(Upsert(i, i + 1, Vec(static_cast<float>(i))).ok());
  }
  ASSERT_TRUE(Delete(3, 11).ok());
  ThreadPool pool(2);
  ASSERT_TRUE(segment_->RebuildIndex(&pool).ok());
  EXPECT_EQ(segment_->pending_delta_count(), 0u);
  EXPECT_EQ(segment_->index_size(), 9u);
  float q[4] = {3, 0, 0, 0};
  auto out = segment_->TopKSearch(q, Options(1, 100));
  ASSERT_EQ(out.hits.size(), 1u);
  EXPECT_NE(out.hits[0].label, 3u);
}

TEST_F(EmbeddingSegmentFixture, FilterBitmapAppliesAcrossIndexAndDeltas) {
  ThreadPool pool(2);
  for (VertexId i = 0; i < 10; ++i) {
    ASSERT_TRUE(Upsert(i, i + 1, Vec(static_cast<float>(i))).ok());
  }
  ASSERT_TRUE(segment_->DeltaMerge(5, "").ok());
  ASSERT_TRUE(segment_->IndexMerge(5, &pool).ok());  // ids 0..4 in index
  Bitmap bm(256);
  bm.Set(2);
  bm.Set(7);  // one from index, one from deltas
  auto options = Options(10, 100);
  options.filter = FilterView(&bm);
  float q[4] = {0, 0, 0, 0};
  auto out = segment_->TopKSearch(q, options);
  std::set<uint64_t> labels;
  for (const auto& h : out.hits) labels.insert(h.label);
  EXPECT_EQ(labels, (std::set<uint64_t>{2, 7}));
}

TEST_F(EmbeddingSegmentFixture, BruteForceThresholdPath) {
  ThreadPool pool(2);
  for (VertexId i = 0; i < 50; ++i) {
    ASSERT_TRUE(Upsert(i, i + 1, Vec(static_cast<float>(i))).ok());
  }
  ASSERT_TRUE(segment_->DeltaMerge(100, "").ok());
  ASSERT_TRUE(segment_->IndexMerge(100, &pool).ok());
  Bitmap bm(256);
  bm.Set(30);
  bm.Set(31);
  auto options = Options(2, 200);
  options.filter = FilterView(&bm);
  options.bruteforce_threshold = 10;  // 2 valid < 10 -> exact scan
  float q[4] = {30, 0, 0, 0};
  auto out = segment_->TopKSearch(q, options);
  EXPECT_TRUE(out.used_bruteforce);
  ASSERT_EQ(out.hits.size(), 2u);
  EXPECT_EQ(out.hits[0].label, 30u);
  // With threshold disabled the index path is used.
  options.bruteforce_threshold = 1;
  out = segment_->TopKSearch(q, options);
  EXPECT_FALSE(out.used_bruteforce);
}

TEST_F(EmbeddingSegmentFixture, RangeSearchCombinesIndexAndDeltas) {
  ThreadPool pool(2);
  ASSERT_TRUE(Upsert(1, 1, Vec(1)).ok());
  ASSERT_TRUE(Upsert(2, 2, Vec(2)).ok());
  ASSERT_TRUE(segment_->DeltaMerge(2, "").ok());
  ASSERT_TRUE(segment_->IndexMerge(2, &pool).ok());
  ASSERT_TRUE(Upsert(3, 3, Vec(1.5f)).ok());  // still a delta
  float q[4] = {1, 0, 0, 0};
  auto out = segment_->RangeSearch(q, /*threshold=*/0.5f, Options(10, 10));
  std::set<uint64_t> labels;
  for (const auto& h : out.hits) labels.insert(h.label);
  EXPECT_EQ(labels, (std::set<uint64_t>{1, 3}));
}

TEST_F(EmbeddingSegmentFixture, DeltaFileSaveLoadRoundTrip) {
  DeltaFile file;
  file.max_tid = 9;
  VectorDelta d1;
  d1.action = VectorDelta::Action::kUpsert;
  d1.id = 4;
  d1.tid = 8;
  d1.value = {1, 2, 3, 4};
  VectorDelta d2;
  d2.action = VectorDelta::Action::kDelete;
  d2.id = 5;
  d2.tid = 9;
  file.deltas = {d1, d2};
  const std::string path = ::testing::TempDir() + "/delta_roundtrip.bin";
  ASSERT_TRUE(file.Save(path).ok());
  auto loaded = DeltaFile::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->max_tid, 9u);
  ASSERT_EQ(loaded->deltas.size(), 2u);
  EXPECT_EQ(loaded->deltas[0].value, (std::vector<float>{1, 2, 3, 4}));
  EXPECT_EQ(loaded->deltas[1].action, VectorDelta::Action::kDelete);
  std::remove(path.c_str());
}

TEST_F(EmbeddingSegmentFixture, DeltaMergePersistsFileWhenDirGiven) {
  ASSERT_TRUE(Upsert(1, 1, Vec(1)).ok());
  auto sealed = segment_->DeltaMerge(1, ::testing::TempDir());
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(*sealed, 1u);
  // The file should exist and be loadable.
  const std::string path = ::testing::TempDir() + "/emb_seg0_tid1.delta";
  auto loaded = DeltaFile::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->deltas.size(), 1u);
  // IndexMerge retires (deletes) the file.
  ThreadPool pool(1);
  ASSERT_TRUE(segment_->IndexMerge(1, &pool).ok());
  EXPECT_FALSE(DeltaFile::Load(path).ok());
}

// ---------------- EmbeddingService on a GraphStore ----------------

class EmbeddingServiceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(schema_.CreateVertexType("Post", {{"lang", AttrType::kString}}).ok());
    ASSERT_TRUE(
        schema_.CreateVertexType("Comment", {{"lang", AttrType::kString}}).ok());
    ASSERT_TRUE(schema_.AddEmbeddingAttr("Post", "emb", Info(4)).ok());
    ASSERT_TRUE(schema_.AddEmbeddingAttr("Comment", "emb", Info(4)).ok());
    ASSERT_TRUE(schema_.AddEmbeddingAttr("Post", "other", Info(8, "OTHER")).ok());
    GraphStore::Options options;
    options.segment_capacity = 32;
    store_ = std::make_unique<GraphStore>(&schema_, options);
    EmbeddingService::Options eopts;
    eopts.index_params.m = 8;
    eopts.index_params.ef_construction = 64;
    service_ = std::make_unique<EmbeddingService>(store_.get(), eopts);
    store_->SetEmbeddingSink(service_.get());
    pool_ = std::make_unique<ThreadPool>(2);
  }

  VertexId AddPost(const std::string& lang, std::vector<float> emb) {
    Transaction txn(store_.get());
    auto vid = txn.InsertVertex("Post", {lang});
    EXPECT_TRUE(vid.ok());
    EXPECT_TRUE(txn.SetEmbedding(*vid, "Post", "emb", std::move(emb)).ok());
    EXPECT_TRUE(txn.Commit().ok());
    return *vid;
  }

  Schema schema_;
  std::unique_ptr<GraphStore> store_;
  std::unique_ptr<EmbeddingService> service_;
  std::unique_ptr<ThreadPool> pool_;
};

TEST_F(EmbeddingServiceFixture, SearchAcrossSegmentsAndDeltas) {
  std::vector<VertexId> posts;
  for (int i = 0; i < 100; ++i) {
    posts.push_back(AddPost("en", {static_cast<float>(i), 0, 0, 0}));
  }
  EXPECT_GT(service_->NumEmbeddingSegments(), 1u);  // capacity 32 -> several
  std::vector<float> q = {42, 0, 0, 0};
  VectorSearchRequest request;
  request.attrs = {{"Post", "emb"}};
  request.query = q.data();
  request.k = 3;
  request.ef = 64;
  request.pool = pool_.get();
  auto result = service_->TopKSearch(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->hits.size(), 3u);
  EXPECT_EQ(result->hits[0].label, posts[42]);
}

TEST_F(EmbeddingServiceFixture, IncompatibleAttrsRejected) {
  AddPost("en", {1, 0, 0, 0});
  {
    // Populate 'other' so the attr state exists.
    Transaction txn(store_.get());
    auto vid = txn.InsertVertex("Post", {std::string("en")});
    ASSERT_TRUE(vid.ok());
    ASSERT_TRUE(
        txn.SetEmbedding(*vid, "Post", "other", std::vector<float>(8, 1.0f)).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  std::vector<float> q = {1, 0, 0, 0};
  VectorSearchRequest request;
  request.attrs = {{"Post", "emb"}, {"Post", "other"}};
  request.query = q.data();
  request.k = 1;
  auto result = service_->TopKSearch(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSemanticError);
}

TEST_F(EmbeddingServiceFixture, MultiTypeSearchWithSharedMetadata) {
  AddPost("en", {1, 0, 0, 0});
  {
    Transaction txn(store_.get());
    auto vid = txn.InsertVertex("Comment", {std::string("en")});
    ASSERT_TRUE(vid.ok());
    ASSERT_TRUE(txn.SetEmbedding(*vid, "Comment", "emb",
                                 std::vector<float>{1.1f, 0, 0, 0})
                    .ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  std::vector<float> q = {1, 0, 0, 0};
  VectorSearchRequest request;
  request.attrs = {{"Post", "emb"}, {"Comment", "emb"}};
  request.query = q.data();
  request.k = 2;
  auto result = service_->TopKSearch(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->hits.size(), 2u);
}

TEST_F(EmbeddingServiceFixture, UnknownAttrFails) {
  std::vector<float> q = {1, 0, 0, 0};
  VectorSearchRequest request;
  request.attrs = {{"Post", "missing"}};
  request.query = q.data();
  request.k = 1;
  EXPECT_FALSE(service_->TopKSearch(request).ok());
}

TEST_F(EmbeddingServiceFixture, WrongDimensionRejectedAtBufferTime) {
  Transaction txn(store_.get());
  auto vid = txn.InsertVertex("Post", {std::string("en")});
  ASSERT_TRUE(vid.ok());
  EXPECT_EQ(
      txn.SetEmbedding(*vid, "Post", "emb", std::vector<float>{1, 2}).code(),
      StatusCode::kInvalidArgument);
}

TEST_F(EmbeddingServiceFixture, VacuumPipelineEndToEnd) {
  for (int i = 0; i < 50; ++i) {
    AddPost("en", {static_cast<float>(i), 0, 0, 0});
  }
  EXPECT_EQ(service_->TotalPendingDeltas(), 50u);
  auto sealed = service_->RunDeltaMerge();
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(*sealed, 50u);
  auto merged = service_->RunIndexMerge(pool_.get());
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, 50u);
  EXPECT_EQ(service_->TotalPendingDeltas(), 0u);
}

TEST_F(EmbeddingServiceFixture, DeleteVertexRemovesFromVectorSearch) {
  const VertexId a = AddPost("en", {1, 0, 0, 0});
  const VertexId b = AddPost("en", {1.1f, 0, 0, 0});
  (void)b;
  {
    Transaction txn(store_.get());
    ASSERT_TRUE(txn.DeleteVertex(a).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  std::vector<float> q = {1, 0, 0, 0};
  VectorSearchRequest request;
  request.attrs = {{"Post", "emb"}};
  request.query = q.data();
  request.k = 5;
  auto result = service_->TopKSearch(request);
  ASSERT_TRUE(result.ok());
  for (const auto& h : result->hits) EXPECT_NE(h.label, a);
}

TEST_F(EmbeddingServiceFixture, GetEmbeddingLatestValue) {
  const VertexId a = AddPost("en", {1, 2, 3, 4});
  float buf[4];
  ASSERT_TRUE(service_->GetEmbedding("Post", "emb", a, buf).ok());
  EXPECT_EQ(buf[0], 1.0f);
  {
    Transaction txn(store_.get());
    ASSERT_TRUE(txn.SetEmbedding(a, "Post", "emb", {9, 9, 9, 9}).ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  ASSERT_TRUE(service_->GetEmbedding("Post", "emb", a, buf).ok());
  EXPECT_EQ(buf[0], 9.0f);
}

TEST_F(EmbeddingServiceFixture, AtomicGraphPlusVectorCommit) {
  // A transaction touching both a scalar attribute and an embedding becomes
  // visible atomically: before commit neither is observable.
  Transaction txn(store_.get());
  auto vid = txn.InsertVertex("Post", {std::string("de")});
  ASSERT_TRUE(vid.ok());
  ASSERT_TRUE(txn.SetEmbedding(*vid, "Post", "emb", {5, 0, 0, 0}).ok());
  float buf[4];
  EXPECT_FALSE(service_->GetEmbedding("Post", "emb", *vid, buf).ok());
  EXPECT_FALSE(store_->IsVisible(*vid, store_->visible_tid()));
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_TRUE(store_->IsVisible(*vid, store_->visible_tid()));
  EXPECT_TRUE(service_->GetEmbedding("Post", "emb", *vid, buf).ok());
}

TEST_F(EmbeddingServiceFixture, SuggestVacuumThreadsBacksOffUnderLoad) {
  EXPECT_EQ(service_->SuggestVacuumThreads(), service_->options().max_vacuum_threads);
  // No active searches -> full parallelism. (Active-search backoff is
  // covered implicitly; the counter is exercised by every search.)
  std::vector<float> q = {1, 0, 0, 0};
  AddPost("en", {1, 0, 0, 0});
  VectorSearchRequest request;
  request.attrs = {{"Post", "emb"}};
  request.query = q.data();
  request.k = 1;
  ASSERT_TRUE(service_->TopKSearch(request).ok());
  EXPECT_EQ(service_->active_searches(), 0u);
}

TEST_F(EmbeddingServiceFixture, AggregateStatsReportIndexActivity) {
  for (int i = 0; i < 20; ++i) {
    AddPost("en", {static_cast<float>(i), 0, 0, 0});
  }
  ASSERT_TRUE(service_->RunDeltaMerge().ok());
  ASSERT_TRUE(service_->RunIndexMerge(pool_.get()).ok());
  auto before = service_->AggregateStats();
  EXPECT_EQ(before.live_vectors, 20u);
  EXPECT_GT(before.inserts, 0u);
  std::vector<float> q = {3, 0, 0, 0};
  VectorSearchRequest request;
  request.attrs = {{"Post", "emb"}};
  request.query = q.data();
  request.k = 3;
  request.ef = 32;
  ASSERT_TRUE(service_->TopKSearch(request).ok());
  auto after = service_->AggregateStats();
  EXPECT_GT(after.searches, before.searches);
  EXPECT_GT(after.distance_computations, before.distance_computations);
}

TEST_F(EmbeddingServiceFixture, DiskBackedDeltaFilesRoundTripThroughVacuum) {
  // Re-create the service with a delta directory: stage 1 persists files,
  // stage 2 retires them from disk.
  EmbeddingService::Options eopts;
  eopts.index_params.m = 8;
  eopts.delta_dir = ::testing::TempDir();
  EmbeddingService service(store_.get(), eopts);
  store_->SetEmbeddingSink(&service);
  for (int i = 0; i < 10; ++i) {
    AddPost("en", {static_cast<float>(i), 0, 0, 0});
  }
  auto sealed = service.RunDeltaMerge();
  ASSERT_TRUE(sealed.ok()) << sealed.status().ToString();
  EXPECT_EQ(*sealed, 10u);
  // Files exist on disk for each touched segment.
  auto segments = service.SegmentsOf("Post", "emb");
  size_t files = 0;
  for (const auto* seg : segments) files += seg->sealed_file_count();
  EXPECT_GT(files, 0u);
  // Searches during the sealed-file window still see everything.
  std::vector<float> q = {7, 0, 0, 0};
  VectorSearchRequest request;
  request.attrs = {{"Post", "emb"}};
  request.query = q.data();
  request.k = 1;
  auto result = service.TopKSearch(request);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->hits.size(), 1u);
  auto merged = service.RunIndexMerge(pool_.get());
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, 10u);
  EXPECT_EQ(service.TotalPendingDeltas(), 0u);
  // Restore the fixture's sink for other tests.
  store_->SetEmbeddingSink(service_.get());
}

TEST_F(EmbeddingServiceFixture, IndexMergeWithoutDeltaMergeIsNoop) {
  AddPost("en", {1, 0, 0, 0});
  // Stage 2 without stage 1 has nothing sealed to fold.
  auto merged = service_->RunIndexMerge(pool_.get());
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, 0u);
  EXPECT_EQ(service_->TotalPendingDeltas(), 1u);
  ASSERT_TRUE(service_->RunDeltaMerge().ok());
  merged = service_->RunIndexMerge(pool_.get());
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, 1u);
}

TEST_F(EmbeddingServiceFixture, RangeSearchThroughService) {
  for (int i = 0; i < 20; ++i) {
    AddPost("en", {static_cast<float>(i), 0, 0, 0});
  }
  std::vector<float> q = {10, 0, 0, 0};
  VectorSearchRequest request;
  request.attrs = {{"Post", "emb"}};
  request.query = q.data();
  request.k = 8;
  request.ef = 64;
  // Squared-L2 < 4.5 captures 9, 10, 11, 12 and 8 (distances 1,0,1,4,4).
  auto result = service_->RangeSearch(request, 4.5f);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->hits.size(), 5u);
  for (const auto& hit : result->hits) EXPECT_LT(hit.distance, 4.5f);
}

TEST_F(EmbeddingServiceFixture, SegmentSubsetRestrictsSearch) {
  std::vector<VertexId> posts;
  for (int i = 0; i < 100; ++i) {
    posts.push_back(AddPost("en", {static_cast<float>(i), 0, 0, 0}));
  }
  // Restrict to segment 0 (vids 0..31): searching for 42 must return
  // something from segment 0 instead.
  std::vector<SegmentId> subset = {0};
  std::vector<float> q = {42, 0, 0, 0};
  VectorSearchRequest request;
  request.attrs = {{"Post", "emb"}};
  request.query = q.data();
  request.k = 1;
  request.segment_subset = &subset;
  auto result = service_->TopKSearch(request);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->hits.size(), 1u);
  EXPECT_LT(result->hits[0].label, 32u);
  EXPECT_EQ(result->segments_searched, 1u);
}

}  // namespace
}  // namespace tigervector

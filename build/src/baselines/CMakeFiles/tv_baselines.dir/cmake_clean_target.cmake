file(REMOVE_RECURSE
  "libtv_baselines.a"
)

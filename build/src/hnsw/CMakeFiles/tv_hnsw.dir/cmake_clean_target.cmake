file(REMOVE_RECURSE
  "libtv_hnsw.a"
)

#ifndef TIGERVECTOR_HNSW_VECTOR_INDEX_H_
#define TIGERVECTOR_HNSW_VECTOR_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "simd/distance.h"
#include "util/bitmap.h"
#include "util/status.h"

namespace tigervector {

class ThreadPool;

// A single search hit: label of the stored item plus its distance to the
// query under the index metric.
struct SearchHit {
  float distance;
  uint64_t label;
};

// One record of a batched index maintenance pass (paper Sec. 4.4:
// UpdateItems applies delta-file records in parallel).
struct VectorIndexUpdate {
  uint64_t label;
  bool is_delete;
  std::vector<float> value;
};

// The index abstraction behind an embedding segment. The paper names four
// generic functions — GetEmbedding, TopKSearch, RangeSearch, UpdateItems —
// and argues that once they exist, "integrating additional vector indexes
// into TigerVector becomes straightforward" (Sec. 4.4). HnswIndex is the
// production implementation; FlatIndex and IvfFlatIndex demonstrate the
// extension point (quantization/clustering-based indexes).
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  // Inserts a new point or updates an existing label.
  virtual Status AddPoint(uint64_t label, const float* vec) = 0;

  // Batch upsert/tombstone; parallelized across `pool` when non-null with
  // per-label ordering preserved.
  virtual Status UpdateItems(const std::vector<VectorIndexUpdate>& items,
                             ThreadPool* pool) = 0;

  // Tombstones a label. NotFound if never inserted.
  virtual Status MarkDeleted(uint64_t label) = 0;

  virtual bool Contains(uint64_t label) const = 0;
  virtual bool IsDeleted(uint64_t label) const = 0;

  // Copies the stored vector for `label` into `out` (dim() floats).
  virtual Status GetEmbedding(uint64_t label, float* out) const = 0;

  // Approximate (or exact, per implementation) k-nearest search. `ef` is
  // the accuracy knob; exact indexes ignore it. Sorted ascending.
  virtual std::vector<SearchHit> TopKSearch(const float* query, size_t k, size_t ef,
                                            const FilterView& filter) const = 0;

  // All points with distance < threshold.
  virtual std::vector<SearchHit> RangeSearch(const float* query, float threshold,
                                             size_t initial_k, size_t ef,
                                             const FilterView& filter) const = 0;

  // Exact scan over live, filter-accepted points.
  virtual std::vector<SearchHit> BruteForceSearch(const float* query, size_t k,
                                                  const FilterView& filter) const = 0;

  virtual size_t size() const = 0;       // live points
  virtual size_t dim() const = 0;
  virtual Metric metric() const = 0;
  virtual std::vector<uint64_t> Labels() const = 0;
  virtual std::string index_type() const = 0;

  // (Re)trains the quantized tier from the currently stored vectors, if the
  // index was built with quantization enabled. Called by the segment after
  // bulk maintenance (index merge, rebuild) so freshly merged rows get
  // codes under up-to-date per-segment statistics. No-op by default.
  virtual Status TrainQuantization() { return Status::OK(); }

  // True when a trained quantized tier is currently serving approximate
  // scans (i.e. searches on this index rank on codes and rerank on fp32).
  virtual bool quant_active() const { return false; }

  // Convenience overloads with an accept-all filter.
  std::vector<SearchHit> TopKSearch(const float* query, size_t k, size_t ef) const {
    return TopKSearch(query, k, ef, FilterView());
  }
  std::vector<SearchHit> RangeSearch(const float* query, float threshold,
                                     size_t initial_k, size_t ef) const {
    return RangeSearch(query, threshold, initial_k, ef, FilterView());
  }
  std::vector<SearchHit> BruteForceSearch(const float* query, size_t k) const {
    return BruteForceSearch(query, k, FilterView());
  }
};

}  // namespace tigervector

#endif  // TIGERVECTOR_HNSW_VECTOR_INDEX_H_

#ifndef TIGERVECTOR_OBS_TRACE_H_
#define TIGERVECTOR_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace tigervector::obs {

// Per-query trace buffer: the destination of TV_SPAN stage timings while a
// trace is active on the recording thread (PROFILE in the GSQL session
// activates one for the duration of a script). The buffer is thread-safe so
// spans recorded on thread-pool workers (segment fan-out, cluster scatter)
// can land in the same query's trace; activation is propagated explicitly
// by the fan-out sites via ScopedTraceActivation.
class QueryTrace {
 public:
  struct Span {
    std::string name;
    uint32_t depth = 0;   // nesting depth on the recording thread
    double micros = 0;
  };

  void RecordSpan(const char* name, uint32_t depth, double micros);
  // Accumulates a named per-query quantity (e.g. "hnsw.distance_evals").
  void AddCounter(const char* name, uint64_t delta);

  std::vector<Span> Spans() const;
  // Total time per span name, summed over all occurrences.
  std::map<std::string, double> StageMicros() const;
  std::map<std::string, uint64_t> Counters() const;

  // Human-readable stage breakdown (the PROFILE output).
  std::string Render() const;

  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::map<std::string, uint64_t> counters_;
};

// Trace active on the current thread, or null.
QueryTrace* CurrentTrace();

// Installs `trace` as the current thread's active trace for the scope (null
// is a no-op passthrough). Used at the top of a profiled query and inside
// thread-pool tasks to carry the parent's trace across threads.
class ScopedTraceActivation {
 public:
  explicit ScopedTraceActivation(QueryTrace* trace);
  ~ScopedTraceActivation();

  ScopedTraceActivation(const ScopedTraceActivation&) = delete;
  ScopedTraceActivation& operator=(const ScopedTraceActivation&) = delete;

 private:
  QueryTrace* prev_;
  uint32_t prev_depth_;
};

// RAII stage timer behind TV_SPAN. When no trace is active the constructor
// is a thread-local load and a branch; no clock is read.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  QueryTrace* trace_;
  uint32_t depth_ = 0;
  std::chrono::steady_clock::time_point start_;
};

// Records a completed stage by duration (for sections where RAII scoping is
// awkward). No-op when no trace is active.
void RecordSpanMicros(const char* name, double micros);

}  // namespace tigervector::obs

#if defined(TIGERVECTOR_NO_METRICS)

#define TV_SPAN(name) ((void)0)

#else

#define TV_OBS_CONCAT2(a, b) a##b
#define TV_OBS_CONCAT(a, b) TV_OBS_CONCAT2(a, b)
// Times the enclosing scope as one span of the active query trace, e.g.
//   TV_SPAN("hnsw.search");
#define TV_SPAN(name) \
  ::tigervector::obs::ScopedSpan TV_OBS_CONCAT(_tv_span_, __LINE__)(name)

#endif  // TIGERVECTOR_NO_METRICS

#endif  // TIGERVECTOR_OBS_TRACE_H_

#ifndef TIGERVECTOR_WORKLOAD_IC_QUERIES_H_
#define TIGERVECTOR_WORKLOAD_IC_QUERIES_H_

#include <string>
#include <vector>

#include "core/database.h"
#include "workload/snb.h"

namespace tigervector {

// Hybrid-search analogs of the LDBC SNB Interactive Complex queries the
// paper modifies in Sec. 6.5 (IC3, IC5, IC6, IC9, IC11): each query walks
// KNOWS up to `hops`, collects a Message (Post/Comment) candidate set whose
// size profile mirrors the paper's (IC5 huge, IC9 tiny top-20, IC3 highly
// selective, IC6/IC11 moderate), then runs a top-k vector search over the
// candidates. Timings are split so Tables 3/4 can be regenerated.
struct IcRunResult {
  std::string query;
  int hops = 0;
  double end_to_end_seconds = 0;
  size_t num_candidates = 0;
  double vector_search_seconds = 0;
};

class IcQueryRunner {
 public:
  IcQueryRunner(Database* db, const SnbStats* stats, uint64_t seed = 5);

  // query_name in {"IC3","IC5","IC6","IC9","IC11"}.
  Result<IcRunResult> Run(const std::string& query_name, int hops,
                          const std::vector<float>& query_vec, size_t k);

 private:
  // Messages (posts + comments) created by any person in `persons`.
  VertexSet MessagesOf(const VertexSet& persons, Tid read_tid) const;

  Database* db_;
  const SnbStats* stats_;
  uint64_t seed_;
};

}  // namespace tigervector

#endif  // TIGERVECTOR_WORKLOAD_IC_QUERIES_H_

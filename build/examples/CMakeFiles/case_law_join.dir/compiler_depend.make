# Empty compiler generated dependencies file for case_law_join.
# This may be replaced when dependencies are built.

#ifndef TIGERVECTOR_UTIL_IO_H_
#define TIGERVECTOR_UTIL_IO_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace tigervector {
namespace io {

// ---------------------------------------------------------------------------
// Fault injection
//
// Every durability-critical I/O call site (WAL append, delta-file save, index
// snapshot save/load, manifest save) routes through this layer and names its
// fault *site*. Tests arm a site with a FaultSpec; the armed fault then fires
// deterministically, simulating a crash or I/O error at that exact point. The
// hot path costs a single relaxed atomic load when nothing is armed, so the
// hooks are compiled into release builds.
// ---------------------------------------------------------------------------

enum class FaultKind : uint8_t {
  // Write() fails cleanly once `after_bytes` have been written through this
  // handle; no bytes of the failing call reach the file.
  kFailWrite = 0,
  // Write() persists only up to `after_bytes` total, drops the rest of the
  // current call, and reports an error: the on-disk artifact of a process
  // dying mid-write (a torn record / half-written file).
  kTornWrite = 1,
  // Sync() (fflush + fsync) fails.
  kFailFsync = 2,
  // The rename step of an atomic write (or io::Rename) fails, leaving the
  // temporary file behind and the destination untouched.
  kFailRename = 3,
  // Opening the file fails (read or write).
  kFailOpen = 4,
  // Socket-layer only: the operation stalls for `after_bytes` milliseconds
  // before proceeding, simulating a peer that stops sending mid-exchange
  // (the reading side's receive timeout is what should fire).
  kStall = 5,
};

const char* FaultKindName(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kFailWrite;
  // Byte threshold for kFailWrite / kTornWrite; ignored otherwise.
  uint64_t after_bytes = 0;
};

// A (site, kind) pair that the shipped code actually exercises; the recovery
// test harness loops over all of them.
struct RegisteredFault {
  const char* site;
  FaultKind kind;
};

class FaultInjector {
 public:
  static FaultInjector& Instance();

  // Arms `site` with `spec`. One spec per site; re-arming replaces it.
  void Arm(const std::string& site, FaultSpec spec);
  void Disarm(const std::string& site);
  // Disarms everything and zeroes trigger counters.
  void Reset();

  // Number of times an armed fault at `site` actually fired.
  uint64_t triggered(const std::string& site) const;
  bool any_armed() const { return any_armed_.load(std::memory_order_relaxed); }

  // Compiled-in catalog of every fault point the io call sites expose.
  static const std::vector<RegisteredFault>& RegisteredFaults();

  // --- used by the io primitives ---
  // Returns true (and records a trigger) when `site` is armed with `kind`.
  // For byte-threshold kinds use GetSpec + RecordTrigger instead.
  bool ShouldFail(const std::string& site, FaultKind kind);
  // Returns true and fills `spec` when `site` is armed (any kind).
  bool GetSpec(const std::string& site, FaultSpec* spec) const;
  void RecordTrigger(const std::string& site);

 private:
  FaultInjector() = default;

  mutable std::mutex mu_;
  std::unordered_map<std::string, FaultSpec> armed_;
  std::unordered_map<std::string, uint64_t> triggered_;
  std::atomic<bool> any_armed_{false};
};

// ---------------------------------------------------------------------------
// File primitives
// ---------------------------------------------------------------------------

// A buffered file handle whose writes/reads/syncs consult the fault
// injector. Move-only; the destructor closes (ignoring errors).
class File {
 public:
  File() = default;
  ~File();
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  // `mode` is a stdio mode string ("wb", "ab", "rb"). `fault_site` names the
  // fault point this handle reports to; empty disables injection.
  static Result<File> Open(const std::string& path, const char* mode,
                           std::string fault_site = {});

  Status Write(const void* data, size_t len);
  // Exact-length read; a short read (EOF included) is an IOError.
  Status Read(void* data, size_t len);
  // Short-read-tolerant read; returns bytes actually read.
  Result<size_t> ReadSome(void* data, size_t len);

  Status Flush();  // flush stdio buffer to the OS
  Status Sync();   // Flush + fsync to stable storage
  Status Close();  // flush + close; the handle becomes empty

  bool is_open() const { return f_ != nullptr; }
  const std::string& path() const { return path_; }
  uint64_t bytes_written() const { return written_; }

 private:
  FILE* f_ = nullptr;
  std::string path_;
  std::string fault_site_;
  uint64_t written_ = 0;
};

// Atomic whole-file writer: stages content in `<path>.tmp`, then Commit()
// syncs, closes, and renames it into place. Without Commit() the destructor
// removes the temporary, so a crash (or injected fault) anywhere before the
// rename leaves the destination untouched.
class AtomicFile {
 public:
  AtomicFile() = default;
  ~AtomicFile();
  AtomicFile(AtomicFile&&) noexcept;
  AtomicFile& operator=(AtomicFile&&) noexcept;
  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  static Result<AtomicFile> Create(const std::string& path,
                                   std::string fault_site = {});

  Status Write(const void* data, size_t len);
  // Sync + close + rename into the final path.
  Status Commit();
  // Close and remove the temporary without publishing.
  void Abandon();

  const std::string& tmp_path() const { return tmp_path_; }

 private:
  File file_;
  std::string final_path_;
  std::string tmp_path_;
  std::string fault_site_;
  bool committed_ = false;
};

// Suffix appended to the destination path to build the staging file of an
// AtomicFile, and recognized by recovery as a crash leftover to sweep.
inline constexpr const char* kTmpSuffix = ".tmp";
// Suffix recovery appends when setting aside a corrupt file.
inline constexpr const char* kQuarantineSuffix = ".quarantined";

// Free functions (all POSIX-backed, fault-injectable where noted).
Status Rename(const std::string& from, const std::string& to,
              const std::string& fault_site = {});
Status RemoveFile(const std::string& path);
Status TruncateFile(const std::string& path, uint64_t size);
Result<uint64_t> FileSize(const std::string& path);
bool Exists(const std::string& path);
// Plain file names (not paths) in `dir`, sorted; missing dir is an error.
Result<std::vector<std::string>> ListDir(const std::string& dir);

}  // namespace io
}  // namespace tigervector

#endif  // TIGERVECTOR_UTIL_IO_H_

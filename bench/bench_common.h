#ifndef TIGERVECTOR_BENCH_BENCH_COMMON_H_
#define TIGERVECTOR_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "workload/datasets.h"
#include "workload/driver.h"

namespace tigervector::bench {

// Scale knobs. The paper runs SIFT100M/Deep100M on 32-vCPU cloud boxes;
// this harness defaults to laptop-scale sizes so every bench finishes in
// minutes on one core, and scales up via environment variables:
//   TV_BENCH_N        base vectors per dataset      (default 20000)
//   TV_BENCH_Q        query count                   (default 50)
//   TV_BENCH_THREADS  client threads for throughput (default 16, as paper)
size_t BaseN();
size_t QueryN();
size_t ClientThreads();

// Parses common bench flags; call first in every bench main. Currently
// understands --metrics-out=<file>.json, which registers an atexit hook
// writing a JSON snapshot of the metrics registry when the bench finishes.
// Unrecognized arguments are left in place for the bench to consume.
void InitBench(int argc, char** argv);

// A TigerVector database holding one vector dataset as `Item.emb`
// vertices, fully vacuumed (all vectors folded into per-segment HNSW
// indexes). vids[i] is the vertex of base vector i.
struct TigerVectorInstance {
  std::unique_ptr<Database> db;
  std::vector<VertexId> vids;
  double load_seconds = 0;   // transactions committed (deltas written)
  double build_seconds = 0;  // two-stage vacuum (index build)
};

// Loads `dataset` into a fresh database. segment_capacity controls the
// per-segment index size (paper Sec. 4.2); quant pins the embedding
// attribute's quantization in the schema so A/B sweeps don't depend on the
// TV_QUANT environment (which is resolved once per process).
TigerVectorInstance LoadTigerVector(const VectorDataset& dataset,
                                    uint32_t segment_capacity = 8192,
                                    size_t m = 16, size_t ef_construction = 128,
                                    QuantOption quant = QuantOption::kDefault);

// recall@k of one hit list (labels in base-index space) against the ground
// truth of query q. Thin adapter over the shared RecallBetween so every
// bench accounts recall identically.
double HitsRecall(const VectorDataset& dataset, size_t q,
                  const std::vector<SearchHit>& hits, size_t k);

// Streaming mean-recall accumulator used by the ef sweeps.
class RecallMeter {
 public:
  void Add(double recall) {
    total_ += recall;
    ++count_;
  }
  double Mean() const { return count_ == 0 ? 0.0 : total_ / count_; }
  size_t count() const { return count_; }

 private:
  double total_ = 0;
  size_t count_ = 0;
};

// recall@k of a result against dataset ground truth, averaged over queries
// run through `search` (query index -> hit labels in vid space).
// vid_to_base maps a vid back to the base-vector index.
double MeasureRecall(const VectorDataset& dataset,
                     const TigerVectorInstance& instance, size_t k, size_t ef);

// One (recall, qps) point measured with a closed-loop driver.
struct ThroughputPoint {
  size_t ef = 0;
  double recall = 0;
  double qps = 0;
  double mean_latency_ms = 0;
  double p99_latency_ms = 0;
};

ThroughputPoint MeasureTigerVector(const VectorDataset& dataset,
                                   const TigerVectorInstance& instance, size_t k,
                                   size_t ef, size_t threads,
                                   size_t queries_per_thread);

// Pretty printing helpers for paper-style tables.
void PrintHeader(const std::string& title);
void PrintRow(const std::vector<std::string>& cells);

std::string Fmt(double v, int precision = 2);

}  // namespace tigervector::bench

#endif  // TIGERVECTOR_BENCH_BENCH_COMMON_H_

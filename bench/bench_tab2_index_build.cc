// Table 2 reproduction: end-to-end index building time split into Data
// Load and Index Build, for TigerVector, the Milvus model, and the Neo4j
// model, on SIFT-like and Deep-like datasets.
#include "baselines/competitors.h"
#include "bench/bench_common.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace tigervector;
using namespace tigervector::bench;

namespace {

void RunDataset(const VectorDataset& dataset) {
  PrintHeader("Table 2: index building time on " + dataset.name + " (" +
              std::to_string(dataset.num_base) + " vectors)");
  PrintRow({"system", "data load s", "index build s", "end to end s"});

  {
    auto instance = LoadTigerVector(dataset);
    PrintRow({"TigerVector", Fmt(instance.load_seconds),
              Fmt(instance.build_seconds),
              Fmt(instance.load_seconds + instance.build_seconds)});
  }
  ThreadPool pool(4);
  {
    MilvusLikeBaseline milvus(dataset.dim, dataset.metric, 8192, 16, 128, nullptr);
    Timer load;
    if (!milvus.Load(dataset.base.data(), dataset.num_base, dataset.dim).ok()) {
      std::abort();
    }
    const double load_s = load.ElapsedSeconds();
    Timer build;
    if (!milvus.BuildIndex(&pool).ok()) std::abort();
    const double build_s = build.ElapsedSeconds();
    PrintRow({"Milvus-like", Fmt(load_s), Fmt(build_s), Fmt(load_s + build_s)});
  }
  {
    Neo4jLikeBaseline neo4j(dataset.dim, dataset.metric);
    Timer load;
    if (!neo4j.Load(dataset.base.data(), dataset.num_base, dataset.dim).ok()) {
      std::abort();
    }
    const double load_s = load.ElapsedSeconds();
    Timer build;
    if (!neo4j.BuildIndex(nullptr).ok()) std::abort();
    const double build_s = build.ElapsedSeconds();
    PrintRow({"Neo4j-like", Fmt(load_s), Fmt(build_s), Fmt(load_s + build_s)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(argc, argv);
  const size_t n = BaseN();
  VectorDataset sift = MakeSiftLike(n, 1);
  RunDataset(sift);
  VectorDataset deep = MakeDeepLike(n, 1);
  RunDataset(deep);
  return 0;
}

# Empty dependencies file for tv_embedding.
# This may be replaced when dependencies are built.

// Networked serving layer tests: wire protocol (frames, CRC, codecs),
// socket fault injection (torn frame, mid-write close, stalled read),
// end-to-end parity of the paper query shapes over real TCP vs in-process,
// deadline/cancellation semantics, and admission-control fast-reject.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "query/session.h"
#include "server/tv_server.h"
#include "util/cancel.h"
#include "util/io.h"

namespace tigervector {
namespace {

uint64_t CounterValue(const std::string& name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

// ---------------- CRC and payload primitives ----------------

TEST(NetFrameTest, Crc32KnownVector) {
  // The canonical CRC-32 (IEEE) check value.
  EXPECT_EQ(net::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(net::Crc32("", 0), 0u);
}

TEST(NetFrameTest, WireWriterReaderRoundTrip) {
  net::WireWriter w;
  w.PutU8(7);
  w.PutU32(0xDEADBEEF);
  w.PutU64(uint64_t{1} << 60);
  w.PutI64(-42);
  w.PutF32(1.5f);
  w.PutF64(-0.25);
  w.PutString("hello");
  w.PutFloatVec({1, 2, 3});
  const std::string buf = w.Take();

  net::WireReader r(buf);
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  float f32;
  double f64;
  std::string s;
  std::vector<float> vec;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetI64(&i64).ok());
  ASSERT_TRUE(r.GetF32(&f32).ok());
  ASSERT_TRUE(r.GetF64(&f64).ok());
  ASSERT_TRUE(r.GetString(&s).ok());
  ASSERT_TRUE(r.GetFloatVec(&vec).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, uint64_t{1} << 60);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(f32, 1.5f);
  EXPECT_EQ(f64, -0.25);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(vec, (std::vector<float>{1, 2, 3}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(NetFrameTest, WireReaderUnderrunIsTypedError) {
  const std::string two_bytes("\x01\x02", 2);
  net::WireReader r(two_bytes);
  uint32_t v;
  Status st = r.GetU32(&v);
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.message().find("underrun"), std::string::npos);
}

TEST(NetFrameTest, WireReaderStringLengthBeyondBufferFails) {
  net::WireWriter w;
  w.PutU32(1000);  // claims 1000 bytes follow; none do
  const std::string buf = w.Take();
  net::WireReader r(buf);
  std::string s;
  EXPECT_EQ(r.GetString(&s).code(), StatusCode::kIOError);
}

// ---------------- Status wire codec ----------------

TEST(NetProtocolTest, StatusWireIdsAreStable) {
  // Pinned: these ids are the wire contract, independent of enum order.
  EXPECT_EQ(net::StatusCodeToWire(StatusCode::kOk), 0u);
  EXPECT_EQ(net::StatusCodeToWire(StatusCode::kAborted), 7u);
  EXPECT_EQ(net::StatusCodeToWire(StatusCode::kIOError), 9u);
  EXPECT_EQ(net::StatusCodeToWire(StatusCode::kDeadlineExceeded), 12u);
  EXPECT_EQ(net::StatusCodeToWire(StatusCode::kUnavailable), 13u);
}

TEST(NetProtocolTest, StatusRoundTripAllCodes) {
  for (uint32_t wire = 0; wire <= 13; ++wire) {
    const StatusCode code = net::StatusCodeFromWire(wire);
    EXPECT_EQ(net::StatusCodeToWire(code), wire);
    Status original(code, "m" + std::to_string(wire));
    Status decoded = Status::OK();
    ASSERT_TRUE(net::DecodeStatus(net::EncodeStatus(original), &decoded).ok());
    EXPECT_EQ(decoded.code(), original.code());
    EXPECT_EQ(decoded.message(), original.message());
  }
  // Unknown future ids degrade to kInternal, not garbage.
  EXPECT_EQ(net::StatusCodeFromWire(999), StatusCode::kInternal);
}

TEST(NetProtocolTest, QueryRequestRoundTripAllParamKinds) {
  net::QueryRequest request;
  request.script = "R = SELECT s FROM (s:Post); PRINT R;";
  request.params["k"] = int64_t{-5};
  request.params["threshold"] = 0.75;
  request.params["lang"] = std::string("English");
  request.params["qv"] = std::vector<float>{1.5f, -2.25f, 0.0f};

  net::QueryRequest decoded;
  ASSERT_TRUE(
      net::DecodeQueryRequest(net::EncodeQueryRequest(request), &decoded).ok());
  EXPECT_EQ(decoded.script, request.script);
  EXPECT_EQ(decoded.params, request.params);
}

TEST(NetProtocolTest, ScriptResultRoundTripAllFields) {
  ScriptResult result;
  ScriptResult::Printed printed;
  printed.name = "R";
  printed.vertices = {3, 5, 9};
  printed.distances = {{3, 0.5f}, {5, 1.25f}};
  printed.is_distance_map = true;
  result.prints.push_back(printed);
  result.last_plan = "EmbeddingAction[Top 2]";
  result.last_join_pairs.push_back({1, 2, 0.125f});
  result.last_load_report.vertices_loaded = 7;
  result.last_load_report.embeddings_loaded = 6;
  result.last_load_report.rows_skipped = 1;
  result.last_load_report.warnings = {"w1", "w2"};
  result.profiled = true;
  result.profile_stage_micros = {{"execute", 12.5}};
  result.profile_counters = {{"hnsw.hops", 42}};
  result.profile = "table";
  result.explained = true;
  result.analyzed = true;
  result.explain = "plan text";
  result.flight_id = 77;

  ScriptResult decoded;
  ASSERT_TRUE(
      net::DecodeScriptResult(net::EncodeScriptResult(result), &decoded).ok());
  ASSERT_EQ(decoded.prints.size(), 1u);
  EXPECT_EQ(decoded.prints[0].name, "R");
  EXPECT_EQ(decoded.prints[0].vertices, printed.vertices);
  EXPECT_EQ(decoded.prints[0].distances, printed.distances);
  EXPECT_TRUE(decoded.prints[0].is_distance_map);
  EXPECT_EQ(decoded.last_plan, result.last_plan);
  ASSERT_EQ(decoded.last_join_pairs.size(), 1u);
  EXPECT_EQ(decoded.last_join_pairs[0].source, 1u);
  EXPECT_EQ(decoded.last_join_pairs[0].target, 2u);
  EXPECT_EQ(decoded.last_join_pairs[0].distance, 0.125f);
  EXPECT_EQ(decoded.last_load_report.vertices_loaded, 7u);
  EXPECT_EQ(decoded.last_load_report.warnings, result.last_load_report.warnings);
  EXPECT_TRUE(decoded.profiled);
  EXPECT_EQ(decoded.profile_stage_micros, result.profile_stage_micros);
  EXPECT_EQ(decoded.profile_counters, result.profile_counters);
  EXPECT_EQ(decoded.profile, "table");
  EXPECT_TRUE(decoded.explained);
  EXPECT_TRUE(decoded.analyzed);
  EXPECT_EQ(decoded.explain, "plan text");
  EXPECT_EQ(decoded.flight_id, 77u);
}

// ---------------- Frames over real TCP ----------------

// A connected (client, server) socket pair through a loopback listener.
struct SocketPair {
  net::Socket client;
  net::Socket server;
};

SocketPair MakePair() {
  auto listener = net::Listener::Listen(0, 4);
  EXPECT_TRUE(listener.ok());
  SocketPair pair;
  std::thread accepter([&] {
    auto accepted = listener->Accept();
    if (accepted.ok()) pair.server = std::move(accepted).value();
  });
  auto connected = net::Socket::Connect("127.0.0.1", listener->port(), 2000);
  EXPECT_TRUE(connected.ok()) << connected.status().ToString();
  pair.client = std::move(connected).value();
  accepter.join();
  return pair;
}

TEST(NetFrameTest, FrameRoundTripOverTcp) {
  SocketPair pair = MakePair();
  net::Frame frame;
  frame.type = net::MsgType::kQuery;
  frame.request_id = 0x1122334455667788ull;
  frame.deadline_micros = 250000;
  frame.payload = std::string("payload \x00 with binary", 21);
  ASSERT_TRUE(net::WriteFrame(pair.client, frame).ok());
  auto read = net::ReadFrame(pair.server);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->type, frame.type);
  EXPECT_EQ(read->request_id, frame.request_id);
  EXPECT_EQ(read->deadline_micros, frame.deadline_micros);
  EXPECT_EQ(read->payload, frame.payload);
}

TEST(NetFrameTest, BadMagicIsTypedError) {
  SocketPair pair = MakePair();
  const std::string junk(net::kFrameHeaderBytes, 'X');
  ASSERT_TRUE(pair.client.SendAll(junk.data(), junk.size()).ok());
  auto read = net::ReadFrame(pair.server);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
  EXPECT_NE(read.status().message().find("magic"), std::string::npos);
}

TEST(NetFrameTest, CorruptPayloadFailsChecksum) {
  SocketPair pair = MakePair();
  net::Frame frame;
  frame.type = net::MsgType::kText;
  frame.payload = "the payload bytes";
  // Serialize by hand so one payload byte can be flipped after the CRC was
  // computed (line corruption the length prefix alone cannot catch).
  std::string wire;
  {
    net::WireWriter w;
    w.PutU32(net::kWireMagic);
    wire = w.Take();
    wire.push_back(static_cast<char>(net::kWireVersion & 0xff));
    wire.push_back(static_cast<char>(net::kWireVersion >> 8));
    wire.push_back(static_cast<char>(frame.type));
    wire.push_back(0);  // flags
    for (int i = 0; i < 16; ++i) wire.push_back(0);  // request id + deadline
    const uint32_t len = static_cast<uint32_t>(frame.payload.size());
    const uint32_t crc = net::Crc32(frame.payload.data(), frame.payload.size());
    for (int i = 0; i < 4; ++i) wire.push_back(static_cast<char>(len >> (8 * i)));
    for (int i = 0; i < 4; ++i) wire.push_back(static_cast<char>(crc >> (8 * i)));
    wire += frame.payload;
  }
  wire[net::kFrameHeaderBytes + 3] ^= 0x40;  // flip a payload bit
  ASSERT_TRUE(pair.client.SendAll(wire.data(), wire.size()).ok());
  auto read = net::ReadFrame(pair.server);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
  EXPECT_NE(read.status().message().find("checksum"), std::string::npos);
}

TEST(NetFrameTest, TornWriteYieldsTypedErrorBothEnds) {
  SocketPair pair = MakePair();
  pair.client.set_fault_site("net.test.torn");
  io::FaultInjector::Instance().Arm("net.test.torn",
                                    {io::FaultKind::kTornWrite, 16});
  net::Frame frame;
  frame.type = net::MsgType::kQuery;
  frame.payload = std::string(100, 'q');
  // Sender: typed error, connection gone.
  Status sent = net::WriteFrame(pair.client, frame);
  EXPECT_EQ(sent.code(), StatusCode::kIOError);
  EXPECT_NE(sent.message().find("torn"), std::string::npos);
  EXPECT_FALSE(pair.client.is_open());
  // Receiver: typed torn-frame error, never a truncated payload.
  auto read = net::ReadFrame(pair.server);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
  io::FaultInjector::Instance().Reset();
}

TEST(NetFrameTest, MidWriteCloseBeforeAnyByteIsCleanPeerClose) {
  SocketPair pair = MakePair();
  pair.client.set_fault_site("net.test.close");
  io::FaultInjector::Instance().Arm("net.test.close",
                                    {io::FaultKind::kTornWrite, 0});
  net::Frame frame;
  frame.type = net::MsgType::kPing;
  EXPECT_FALSE(net::WriteFrame(pair.client, frame).ok());
  auto read = net::ReadFrame(pair.server);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
  EXPECT_NE(read.status().message().find("closed"), std::string::npos);
  io::FaultInjector::Instance().Reset();
}

TEST(NetFrameTest, StalledPeerTripsReceiveTimeout) {
  SocketPair pair = MakePair();
  ASSERT_TRUE(pair.server.SetRecvTimeout(100).ok());
  pair.client.set_fault_site("net.test.stall");
  io::FaultInjector::Instance().Arm("net.test.stall",
                                    {io::FaultKind::kStall, 400});
  std::thread sender([&] {
    net::Frame frame;
    frame.type = net::MsgType::kPing;
    (void)net::WriteFrame(pair.client, frame);
  });
  auto read = net::ReadFrame(pair.server);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDeadlineExceeded);
  sender.join();
  io::FaultInjector::Instance().Reset();
}

// ---------------- End-to-end: server + client ----------------

// Same dataset as the query-session fixture: persons 0..3 with knows
// edges, 3 posts each, post embeddings [10*i + j, 0, 0, 0].
class NetServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Database::Options options;
    options.store.segment_capacity = 32;
    options.embeddings.index_params.m = 8;
    options.embeddings.index_params.ef_construction = 64;
    db_ = std::make_unique<Database>(options);
    GsqlSession ddl_session(db_.get());
    auto ddl = ddl_session.Run(
        "CREATE VERTEX Person (firstName STRING, age INT);"
        "CREATE VERTEX Post (language STRING, length INT);"
        "CREATE UNDIRECTED EDGE knows (FROM Person, TO Person);"
        "CREATE DIRECTED EDGE hasCreator (FROM Post, TO Person);"
        "CREATE EMBEDDING SPACE space1 (DIMENSION = 4, MODEL = M, INDEX = HNSW,"
        " DATATYPE = FLOAT, METRIC = L2);"
        "ALTER VERTEX Post ADD EMBEDDING ATTRIBUTE content_emb"
        " IN EMBEDDING SPACE space1;");
    ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();

    Transaction txn = db_->Begin();
    const char* names[] = {"Alice", "Bob", "Carol", "Dave"};
    for (int i = 0; i < 4; ++i) {
      auto vid = txn.InsertVertex("Person", {std::string(names[i]), int64_t{20 + i}});
      ASSERT_TRUE(vid.ok());
      persons_.push_back(*vid);
    }
    ASSERT_TRUE(txn.InsertEdge("knows", persons_[0], persons_[1]).ok());
    ASSERT_TRUE(txn.InsertEdge("knows", persons_[0], persons_[2]).ok());
    ASSERT_TRUE(txn.InsertEdge("knows", persons_[2], persons_[3]).ok());
    ASSERT_TRUE(txn.Commit().ok());
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 3; ++j) {
        Transaction ptxn = db_->Begin();
        auto vid = ptxn.InsertVertex(
            "Post", {std::string(j == 0 ? "English" : "German"),
                     int64_t{500 + 300 * j}});
        ASSERT_TRUE(vid.ok());
        ASSERT_TRUE(ptxn.InsertEdge("hasCreator", *vid, persons_[i]).ok());
        ASSERT_TRUE(ptxn.SetEmbedding(*vid, "Post", "content_emb",
                                      {static_cast<float>(10 * i + j), 0, 0, 0})
                        .ok());
        ASSERT_TRUE(ptxn.Commit().ok());
        posts_.push_back(*vid);
      }
    }
    ASSERT_TRUE(db_->Vacuum().ok());
  }

  void TearDown() override {
    if (server_) server_->Stop();
    io::FaultInjector::Instance().Reset();
  }

  void StartServer(server::ServerOptions options = server::ServerOptions()) {
    server_ = std::make_unique<server::TvServer>(db_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  net::TvClient MakeClient(int max_retries = 0) {
    net::ClientOptions options;
    options.port = server_->port();
    options.max_retries = max_retries;
    return net::TvClient(options);
  }

  QueryParams Params(std::vector<float> qv) {
    QueryParams p;
    p["qv"] = std::move(qv);
    return p;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<server::TvServer> server_;
  std::vector<VertexId> persons_;
  std::vector<VertexId> posts_;
};

TEST_F(NetServerFixture, PingPong) {
  StartServer();
  net::TvClient client = MakeClient();
  EXPECT_TRUE(client.Ping().ok());
}

// The acceptance bar: the five paper query shapes (pure top-k, filtered
// search, graph-pattern search, range search, similarity join — plus the
// Q2/Q3 composition forms) return bit-for-bit identical results via
// tv_client as via the in-process session.
TEST_F(NetServerFixture, FiveQueryShapesBitForBitParity) {
  StartServer();
  net::TvClient client = MakeClient();
  GsqlSession local(db_.get());

  struct Shape {
    const char* name;
    const char* script;
    std::vector<float> qv;
  };
  const Shape shapes[] = {
      {"topk",
       "R = SELECT s FROM (s:Post)"
       " ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT 2; PRINT R;",
       {21, 0, 0, 0}},
      {"filtered",
       "R = SELECT s FROM (s:Post) WHERE s.language = \"English\""
       " ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT 4; PRINT R;",
       {0, 0, 0, 0}},
      {"graph_pattern",
       "R = SELECT t FROM (s:Person) -[:knows]- (:Person) <-[:hasCreator]-"
       " (t:Post) WHERE s.firstName = \"Alice\""
       " ORDER BY VECTOR_DIST(t.content_emb, $qv) LIMIT 3; PRINT R;",
       {10, 0, 0, 0}},
      {"range",
       "R = SELECT s FROM (s:Post) WHERE VECTOR_DIST(s.content_emb, $qv) < 2.0;"
       " PRINT R;",
       {1, 0, 0, 0}},
      {"similarity_join",
       "SELECT s, t FROM (s:Post) -[:hasCreator]-> (u:Person)"
       " -[:knows]- (v:Person) <-[:hasCreator]- (t:Post)"
       " WHERE u.firstName = \"Alice\""
       " ORDER BY VECTOR_DIST(s.content_emb, t.content_emb) LIMIT 2;",
       {0, 0, 0, 0}},
      {"composition_filter",
       "EnglishPosts = SELECT t FROM (t:Post) WHERE t.language = \"English\";"
       "TopK = VectorSearch({Post.content_emb}, $qv, 2,"
       " {filter: EnglishPosts, ef: 64, distanceMap: @@disMap});"
       "PRINT TopK; PRINT @@disMap;",
       {0, 0, 0, 0}},
  };

  for (const Shape& shape : shapes) {
    SCOPED_TRACE(shape.name);
    auto local_result = local.Run(shape.script, Params(shape.qv));
    ASSERT_TRUE(local_result.ok()) << local_result.status().ToString();
    auto remote_result = client.Run(shape.script, Params(shape.qv));
    ASSERT_TRUE(remote_result.ok()) << remote_result.status().ToString();

    ASSERT_EQ(remote_result->prints.size(), local_result->prints.size());
    for (size_t i = 0; i < local_result->prints.size(); ++i) {
      EXPECT_EQ(remote_result->prints[i].name, local_result->prints[i].name);
      EXPECT_EQ(remote_result->prints[i].vertices,
                local_result->prints[i].vertices);
      // Bit-for-bit: distances are compared with exact float equality.
      EXPECT_EQ(remote_result->prints[i].distances,
                local_result->prints[i].distances);
      EXPECT_EQ(remote_result->prints[i].is_distance_map,
                local_result->prints[i].is_distance_map);
    }
    EXPECT_EQ(remote_result->last_plan, local_result->last_plan);
    ASSERT_EQ(remote_result->last_join_pairs.size(),
              local_result->last_join_pairs.size());
    for (size_t i = 0; i < local_result->last_join_pairs.size(); ++i) {
      EXPECT_EQ(remote_result->last_join_pairs[i].source,
                local_result->last_join_pairs[i].source);
      EXPECT_EQ(remote_result->last_join_pairs[i].target,
                local_result->last_join_pairs[i].target);
      EXPECT_EQ(remote_result->last_join_pairs[i].distance,
                local_result->last_join_pairs[i].distance);
    }
  }
}

TEST_F(NetServerFixture, ExplainAndQueryErrorsTravelTyped) {
  StartServer();
  net::TvClient client = MakeClient();
  // EXPLAIN works remotely (shared shell surface).
  auto explained = client.Run(
      "EXPLAIN SELECT s FROM (s:Post)"
      " ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT 2;",
      Params({0, 0, 0, 0}));
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  EXPECT_TRUE(explained->explained);
  EXPECT_NE(explained->explain.find("EmbeddingAction"), std::string::npos);
  // A parse error comes back as kParseError, not a transport failure.
  auto bad = client.Run("SELECT FROM;");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
  // Sessions are per-connection: an unknown variable is a semantic error.
  auto missing = client.Run("PRINT NoSuchVar;");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kSemanticError);
}

TEST_F(NetServerFixture, SessionStatePersistsAcrossRequestsOnOneConnection) {
  StartServer();
  net::TvClient client = MakeClient();
  auto first = client.Run(
      "TopKPosts = SELECT s FROM (s:Post)"
      " ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT 1;",
      Params({30, 0, 0, 0}));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // Second request on the same connection sees the variable.
  auto second = client.Run(
      "Authors = SELECT p FROM (m:TopKPosts) -[:hasCreator]-> (p:Person);"
      "PRINT Authors;");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(second->prints.size(), 1u);
  ASSERT_EQ(second->prints[0].vertices.size(), 1u);
  EXPECT_EQ(second->prints[0].vertices[0], persons_[3]);
}

TEST_F(NetServerFixture, MetricsAndFlightRecOverTheWire) {
  StartServer();
  net::TvClient client = MakeClient();
  auto run = client.Run(
      "R = SELECT s FROM (s:Post)"
      " ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT 1; PRINT R;",
      Params({0, 0, 0, 0}));
  ASSERT_TRUE(run.ok());
  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->find("tv_server_requests_total"), std::string::npos);
  EXPECT_NE(metrics->find("tv_net_frames_recv_total"), std::string::npos);
  auto list = client.FlightRec(0);
  ASSERT_TRUE(list.ok()) << list.status().ToString();
#if !defined(TIGERVECTOR_NO_METRICS)
  ASSERT_NE(run->flight_id, 0u);
  auto detail = client.FlightRec(run->flight_id);
  ASSERT_TRUE(detail.ok()) << detail.status().ToString();
  EXPECT_NE(detail->find("VECTOR_DIST"), std::string::npos);
#endif
  auto missing = client.FlightRec(~uint64_t{0});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

// ---------------- Faults against a live server ----------------

TEST_F(NetServerFixture, ClientTornSendIsTypedErrorNeverWrongResult) {
  StartServer();
  net::ClientOptions options;
  options.port = server_->port();
  options.max_retries = 0;
  options.fault_site = "net.test.client_torn";
  net::TvClient client(options);
  ASSERT_TRUE(client.Ping().ok());
  io::FaultInjector::Instance().Arm("net.test.client_torn",
                                    {io::FaultKind::kTornWrite, 20});
  auto result = client.Run(
      "R = SELECT s FROM (s:Post)"
      " ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT 2; PRINT R;",
      Params({0, 0, 0, 0}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  io::FaultInjector::Instance().Reset();
  // The torn request never reached the session; the connection heals on
  // the next request and results are correct.
  auto retry = client.Run(
      "R = SELECT s FROM (s:Post)"
      " ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT 2; PRINT R;",
      Params({0, 0, 0, 0}));
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->prints[0].vertices.size(), 2u);
}

TEST_F(NetServerFixture, ServerTornResponseIsTypedErrorNeverTruncated) {
  server::ServerOptions options;
  options.fault_site = "net.test.server_torn";
  StartServer(options);
  net::TvClient client = MakeClient();
  // Tear the response mid-frame: the client must see a typed transport
  // error, never a silently truncated result payload.
  io::FaultInjector::Instance().Arm("net.test.server_torn",
                                    {io::FaultKind::kTornWrite, 24});
  auto result = client.Run(
      "R = SELECT s FROM (s:Post)"
      " ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT 2; PRINT R;",
      Params({0, 0, 0, 0}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  io::FaultInjector::Instance().Reset();
}

TEST_F(NetServerFixture, StalledServerTripsClientRequestTimeout) {
  server::ServerOptions options;
  options.fault_site = "net.test.server_stall";
  StartServer(options);
  net::ClientOptions copts;
  copts.port = server_->port();
  copts.max_retries = 0;
  copts.request_timeout_ms = 150;
  net::TvClient client(copts);
  ASSERT_TRUE(client.Ping().ok());
  io::FaultInjector::Instance().Arm("net.test.server_stall",
                                    {io::FaultKind::kStall, 600});
  Status st = client.Ping();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  io::FaultInjector::Instance().Reset();
}

TEST_F(NetServerFixture, ServerStopSurfacesTypedErrorToIdleClient) {
  StartServer();
  net::TvClient client = MakeClient();
  ASSERT_TRUE(client.Ping().ok());
  server_->Stop();
  Status st = client.Ping();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.code() == StatusCode::kIOError ||
              st.code() == StatusCode::kDeadlineExceeded)
      << st.ToString();
}

// ---------------- Deadlines and cancellation ----------------

TEST_F(NetServerFixture, ExpiredDeadlineOverWireIsDeadlineExceeded) {
  StartServer();
  net::TvClient client = MakeClient();
  const uint64_t before = CounterValue("tv.server.deadline_exceeded_total");
  net::RunOptions run;
  run.deadline_micros = 1;  // expired by the first cooperative check
  auto result = client.Run(
      "R = SELECT s FROM (s:Post)"
      " ORDER BY VECTOR_DIST(s.content_emb, $qv) LIMIT 2; PRINT R;",
      Params({0, 0, 0, 0}), run);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
#if !defined(TIGERVECTOR_NO_METRICS)
  EXPECT_EQ(CounterValue("tv.server.deadline_exceeded_total"), before + 1);
#else
  (void)before;
#endif
  // The connection survives; the next request is fine.
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(NetServerFixture, ServerDefaultDeadlineAppliesWhenClientShipsNone) {
  server::ServerOptions options;
  options.default_deadline_micros = 1;
  StartServer(options);
  net::TvClient client = MakeClient();
  auto result = client.Run("R = SELECT s FROM (s:Post); PRINT R;");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(NetServerFixture, MaxDeadlineClampsClientBudget) {
  server::ServerOptions options;
  options.max_deadline_micros = 1;
  StartServer(options);
  net::TvClient client = MakeClient();
  net::RunOptions run;
  run.deadline_micros = 60'000'000;  // client asks for a minute; clamped
  auto result = client.Run("R = SELECT s FROM (s:Post); PRINT R;", QueryParams(),
                           run);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

// Deterministic mid-scan expiry: the token trips on its n-th cooperative
// check, firing inside the executor/HNSW scan loops — the query returns
// DEADLINE_EXCEEDED and no partial top-k ever surfaces.
TEST(NetCancelTest, DeadlineFiringMidScanNeverYieldsPartialTopK) {
  Database::Options options;
  options.store.segment_capacity = 32;
  Database db(options);
  GsqlSession session(&db);
  // Bypass the query cache: a cached top-k legitimately completes before
  // any scan poll, which would desynchronize the poll schedule below.
  session.SetCacheBypass(true);
  ASSERT_TRUE(session
                  .Run("CREATE VERTEX Doc (title STRING);"
                       "ALTER VERTEX Doc ADD EMBEDDING ATTRIBUTE emb"
                       " (DIMENSION = 4, MODEL = M, INDEX = HNSW,"
                       " DATATYPE = FLOAT, METRIC = L2);")
                  .ok());
  for (int i = 0; i < 200; ++i) {
    Transaction txn = db.Begin();
    auto vid = txn.InsertVertex("Doc", {std::string("d")});
    ASSERT_TRUE(vid.ok());
    ASSERT_TRUE(txn.SetEmbedding(*vid, "Doc", "emb",
                                 {static_cast<float>(i), 1, 2, 3})
                    .ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  ASSERT_TRUE(db.Vacuum().ok());
  QueryParams params;
  params["qv"] = std::vector<float>{100, 1, 2, 3};
  const std::string script =
      "R = SELECT s FROM (s:Doc)"
      " ORDER BY VECTOR_DIST(s.emb, $qv) LIMIT 5; PRINT R;";

  // Measure how many cooperative checks a full run performs with a passive
  // token (never fires): N is the complete poll schedule of this query.
  uint64_t total_checks = 0;
  {
    CancelToken passive;
    ScopedCancel scope(&passive);
    auto baseline = session.Run(script, params);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    ASSERT_EQ(baseline->prints[0].vertices.size(), 5u);
    total_checks = passive.checks();
  }
  ASSERT_GE(total_checks, 3u) << "query too small to poll mid-scan";

  // Trip the deadline at every point of that schedule — statement gate,
  // mid-scan polls, the authoritative post-fan-out gate. Each run must
  // fail typed, never returning a partial top-k.
  for (uint64_t trip_at = 1; trip_at <= total_checks; ++trip_at) {
    CancelToken token;
    token.TripAfterChecks(trip_at);
    ScopedCancel scope(&token);
    auto result = session.Run(script, params);
    ASSERT_FALSE(result.ok()) << "trip_at=" << trip_at << " of " << total_checks;
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
        << result.status().ToString();
    EXPECT_TRUE(token.fired());
  }
}

// Promptness: once the token fires, the scan abandons work within one
// check interval — the token is never polled unboundedly many more times.
TEST(NetCancelTest, CancellationIsPromptlyObserved) {
  CancelToken token;
  token.TripAfterChecks(1);
  ScopedCancel scope(&token);
  EXPECT_TRUE(CancelCheckExpired());
  const uint64_t checks_at_fire = token.checks();
  // Subsequent checks stay cheap and sticky-expired.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(CancelCheckExpired());
  EXPECT_EQ(token.checks(), checks_at_fire + 10);
  EXPECT_EQ(CancelCheckStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(NetCancelTest, ExplicitCancelIsUnavailable) {
  CancelToken token;
  token.Cancel("server shutting down");
  ScopedCancel scope(&token);
  EXPECT_TRUE(CancelCheckExpired());
  Status st = CancelCheckStatus();
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_NE(st.message().find("server shutting down"), std::string::npos);
}

// ---------------- Sessions under concurrency ----------------

// A loading job reading from a FIFO blocks inside GsqlSession::Run until
// the test writes the other end — a deterministic long-running statement.
class FifoFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    fifo_path_ = "/tmp/tv_net_fifo_" + std::to_string(::getpid()) + "_" +
                 std::to_string(counter_++);
    ASSERT_EQ(::mkfifo(fifo_path_.c_str(), 0600), 0);
  }
  void TearDown() override { ::unlink(fifo_path_.c_str()); }

  std::string LoadScript() const {
    return "CREATE LOADING JOB j FOR GRAPH g {"
           "  LOAD \"" + fifo_path_ + "\" TO VERTEX Doc VALUES (id, title);"
           "}";
  }
  void ReleaseFifo(const std::string& contents) {
    std::ofstream out(fifo_path_);
    out << contents;
  }

  static int counter_;
  std::string fifo_path_;
};

int FifoFixture::counter_ = 0;

TEST_F(FifoFixture, ConcurrentRunOnOneSessionIsRejectedNotRaced) {
  Database db;
  GsqlSession session(&db);
  ASSERT_TRUE(session.Run("CREATE VERTEX Doc (id INT, title STRING);").ok());
  std::atomic<bool> blocked{false};
  std::thread runner([&] {
    blocked.store(true);
    auto result = session.Run(LoadScript());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->last_load_report.vertices_loaded, 1u);
  });
  while (!blocked.load()) std::this_thread::yield();
  // Give the runner time to actually enter Run and block on the FIFO.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto second = session.Run("PRINT NoSuchVar;");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAborted);
  EXPECT_NE(second.status().message().find("session busy"), std::string::npos);
  ReleaseFifo("7,hello\n");
  runner.join();
  // The session is usable again afterwards.
  EXPECT_TRUE(session.Run("R = SELECT d FROM (d:Doc); PRINT R;").ok());
}

// ---------------- Admission control ----------------

TEST_F(NetServerFixture, SaturationFastRejectsWithRetryLater) {
  server::ServerOptions options;
  options.max_inflight = 0;  // every query rejected: deterministic saturation
  StartServer(options);
  const uint64_t rejected_before =
      CounterValue("tv.server.rejected_total{reason=inflight}");
  net::TvClient client = MakeClient(/*max_retries=*/2);
  auto result = client.Run("R = SELECT s FROM (s:Post); PRINT R;");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  // Driver counts reconcile with the server metrics: initial attempt plus
  // two retries, each fast-rejected.
  EXPECT_EQ(client.rejected(), 3u);
  EXPECT_EQ(client.retries(), 2u);
#if !defined(TIGERVECTOR_NO_METRICS)
  EXPECT_EQ(CounterValue("tv.server.rejected_total{reason=inflight}"),
            rejected_before + 3);
#else
  (void)rejected_before;
#endif
  // Pings are not admission-controlled; the server is alive, just full.
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(FifoFixture, BusyServerRejectsOverflowQueryDeterministically) {
  Database db;
  {
    GsqlSession ddl(&db);
    ASSERT_TRUE(ddl.Run("CREATE VERTEX Doc (id INT, title STRING);").ok());
  }
  server::ServerOptions options;
  options.max_inflight = 1;
  server::TvServer server(&db, options);
  ASSERT_TRUE(server.Start().ok());

  net::ClientOptions copts;
  copts.port = server.port();
  copts.max_retries = 0;
  net::TvClient blocker(copts);
  std::thread blocked_runner([&] {
    // Occupies the only execution slot until the FIFO is released.
    auto result = blocker.Run(LoadScript());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  });
  while (server.inflight() < 1) std::this_thread::yield();

  net::TvClient overflow(copts);
  auto rejected = overflow.Run("R = SELECT d FROM (d:Doc); PRINT R;");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(overflow.rejected(), 1u);

  ReleaseFifo("1,x\n");
  blocked_runner.join();
  // Slot released: the same query now succeeds (with retries for the
  // small window between FIFO release and slot release).
  net::TvClient retry_client(
      [&] { net::ClientOptions o = copts; o.max_retries = 20; return o; }());
  auto ok = retry_client.Run("R = SELECT d FROM (d:Doc); PRINT R;",
                             QueryParams(), net::RunOptions{0, true});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  server.Stop();
}

TEST_F(NetServerFixture, ConnectionLimitFastRejects) {
  server::ServerOptions options;
  options.max_connections = 0;
  StartServer(options);
  net::TvClient client = MakeClient();
  Status st = client.Ping();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace tigervector

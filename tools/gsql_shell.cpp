// Interactive GSQL shell over an in-process TigerVector database.
//
//   $ gsql_shell
//   gsql> CREATE VERTEX Doc (title STRING);
//   gsql> ALTER VERTEX Doc ADD EMBEDDING ATTRIBUTE emb (DIMENSION = 4,
//         MODEL = M, INDEX = HNSW, DATATYPE = FLOAT, METRIC = L2);
//   gsql> \set qv 1,0,0,0
//   gsql> R = SELECT s FROM (s:Doc) ORDER BY VECTOR_DIST(s.emb, $qv) LIMIT 5;
//   gsql> PRINT R;
//
// Shell commands: \set NAME v1,v2,...   bind a vector parameter $NAME
//                 \seti NAME 42         bind an integer parameter
//                 \sets NAME text       bind a string parameter
//                 \role NAME            run as role NAME ("" = superuser)
//                 \vacuum               run both vacuum stages
//                 \metrics              dump the metrics registry (Prometheus text)
//                 \flightrec            list the flight recorder's retained queries
//                 \flightrec ID         full span/counter detail of one record
//                 \flightrec ID FILE    dump record as Chrome trace JSON
//                                       (load FILE in chrome://tracing)
//                 \slowlog FILE         append slow queries to FILE as JSONL
//                 \cache                query-cache stats (both tiers)
//                 \cache on|off         enable/disable at runtime (TV_CACHE=off
//                                       disables at startup)
//                 \cache clear          drop all cached entries
//                 \quit
//
// Prefixing a statement with PROFILE prints a per-stage timing breakdown
// (parse/plan/execute, hnsw.search, distance evals) after the result.
// Prefixing with EXPLAIN prints the chosen plan without executing;
// EXPLAIN ANALYZE executes and annotates each plan node with actuals.
//
// Remote mode: `gsql_shell --connect host:port` speaks to a running
// tv_server instead of an in-process database. The statement surface is
// identical (including EXPLAIN / PROFILE); \metrics and \flightrec fetch
// the server's registry and flight recorder over the wire, and
// \deadline MS ships a per-request deadline with every statement.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "net/client.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "query/session.h"
#include "util/slowlog.h"

using namespace tigervector;

namespace {

// Parameter-binding commands shared by the local and remote shells.
// Returns true when `cmd` was one of them.
bool HandleParamCommand(const std::string& cmd, std::istringstream& in,
                        QueryParams* params) {
  if (cmd == "\\set") {
    std::string name, values;
    in >> name >> values;
    std::vector<float> vec;
    std::istringstream vs(values);
    std::string tok;
    while (std::getline(vs, tok, ',')) vec.push_back(std::strtof(tok.c_str(), nullptr));
    (*params)[name] = std::move(vec);
    std::printf("$%s = vector of %zu floats\n", name.c_str(),
                std::get<std::vector<float>>((*params)[name]).size());
    return true;
  }
  if (cmd == "\\seti") {
    std::string name;
    long long v;
    in >> name >> v;
    (*params)[name] = static_cast<int64_t>(v);
    std::printf("$%s = %lld\n", name.c_str(), v);
    return true;
  }
  if (cmd == "\\sets") {
    std::string name, v;
    in >> name;
    std::getline(in, v);
    if (!v.empty() && v[0] == ' ') v.erase(0, 1);
    (*params)[name] = v;
    std::printf("$%s = \"%s\"\n", name.c_str(), v.c_str());
    return true;
  }
  return false;
}

bool HandleShellCommand(const std::string& line, Database* db, GsqlSession* session,
                        QueryParams* params) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd == "\\quit" || cmd == "\\q") {
    std::exit(0);
  }
  if (HandleParamCommand(cmd, in, params)) return true;
  if (cmd == "\\role") {
    std::string role;
    in >> role;
    session->SetRole(role);
    std::printf("role = '%s'\n", role.c_str());
    return true;
  }
  if (cmd == "\\metrics") {
    std::fputs(obs::MetricsRegistry::Global().RenderText().c_str(), stdout);
    return true;
  }
  if (cmd == "\\flightrec") {
    std::string id_str, file;
    in >> id_str >> file;
    if (id_str.empty()) {
      std::fputs(obs::FlightRecorder::Global().RenderList().c_str(), stdout);
      return true;
    }
    const uint64_t id = std::strtoull(id_str.c_str(), nullptr, 10);
    obs::QueryRecord record;
    if (!obs::FlightRecorder::Global().Find(id, &record)) {
      std::printf("flight record %llu not found (evicted or never recorded)\n",
                  static_cast<unsigned long long>(id));
      return true;
    }
    if (file.empty()) {
      std::fputs(obs::FlightRecorder::RenderDetail(record).c_str(), stdout);
      return true;
    }
    std::FILE* f = std::fopen(file.c_str(), "w");
    if (f == nullptr) {
      std::printf("cannot open %s\n", file.c_str());
      return true;
    }
    const std::string json = obs::FlightRecorder::ChromeTraceJson(record);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %zu bytes to %s (open chrome://tracing and load it)\n",
                json.size(), file.c_str());
    return true;
  }
  if (cmd == "\\slowlog") {
    std::string file;
    in >> file;
    if (file.empty()) {
      CloseSlowLog();
      std::printf("slow-query log closed\n");
      return true;
    }
    Status st = InstallSlowLogFile(file);
    if (st.ok()) {
      std::printf("slow queries (>%.0f ms) appended to %s\n",
                  obs::FlightRecorder::Global().options().slow_threshold_micros / 1e3,
                  file.c_str());
    } else {
      std::printf("slowlog failed: %s\n", st.ToString().c_str());
    }
    return true;
  }
  if (cmd == "\\cache") {
    std::string arg;
    in >> arg;
    if (arg.empty()) {
      std::fputs(db->cache()->RenderStats().c_str(), stdout);
    } else if (arg == "on") {
      db->cache()->set_enabled(true);
      std::printf("query cache enabled\n");
    } else if (arg == "off") {
      db->cache()->set_enabled(false);
      std::printf("query cache disabled (entries retained)\n");
    } else if (arg == "clear") {
      db->cache()->Clear();
      std::printf("query cache cleared\n");
    } else {
      std::printf("usage: \\cache [on|off|clear]\n");
    }
    return true;
  }
  if (cmd == "\\vacuum") {
    auto merged = db->Vacuum();
    if (merged.ok()) {
      std::printf("vacuum folded %zu delta records\n", *merged);
    } else {
      std::printf("vacuum failed: %s\n", merged.status().ToString().c_str());
    }
    return true;
  }
  std::printf("unknown shell command %s\n", cmd.c_str());
  return true;
}

void PrintResult(const ScriptResult& result) {
  for (const auto& printed : result.prints) {
    if (printed.is_distance_map) {
      std::printf("%s: {", printed.name.c_str());
      size_t shown = 0;
      for (const auto& [vid, d] : printed.distances) {
        if (shown++ > 0) std::printf(", ");
        if (shown > 10) {
          std::printf("...");
          break;
        }
        std::printf("%llu: %.4f", static_cast<unsigned long long>(vid), d);
      }
      std::printf("}\n");
    } else {
      std::printf("%s (%zu vertices):", printed.name.c_str(),
                  printed.vertices.size());
      size_t shown = 0;
      for (VertexId vid : printed.vertices) {
        if (shown++ >= 20) {
          std::printf(" ...");
          break;
        }
        std::printf(" %llu", static_cast<unsigned long long>(vid));
      }
      std::printf("\n");
    }
  }
  for (const auto& pair : result.last_join_pairs) {
    std::printf("pair (%llu, %llu) distance %.4f\n",
                static_cast<unsigned long long>(pair.source),
                static_cast<unsigned long long>(pair.target), pair.distance);
  }
  if (result.last_load_report.vertices_loaded > 0 ||
      result.last_load_report.embeddings_loaded > 0) {
    std::printf("loaded %zu vertices, %zu embeddings (%zu rows skipped)\n",
                result.last_load_report.vertices_loaded,
                result.last_load_report.embeddings_loaded,
                result.last_load_report.rows_skipped);
  }
  if (result.explained) {
    std::printf("--- plan%s ---\n%s", result.analyzed ? " (analyzed)" : "",
                result.explain.c_str());
  }
  if (result.profiled) {
    std::printf("--- profile ---\n%s", result.profile.c_str());
  }
}

// Remote shell loop: statements and observability commands travel over the
// wire to a tv_server; parameter bindings stay client-side and are shipped
// with each query.
int RunRemote(const std::string& host, uint16_t port) {
  net::ClientOptions copts;
  copts.host = host;
  copts.port = port;
  net::TvClient client(copts);
  Status up = client.Ping();
  if (!up.ok()) {
    std::printf("cannot reach %s:%u: %s\n", host.c_str(), port,
                up.ToString().c_str());
    return 1;
  }
  QueryParams params;
  net::RunOptions run;
  std::printf("TigerVector GSQL shell, connected to %s:%u. \\quit to exit, "
              "\\deadline MS for per-request deadlines.\n", host.c_str(), port);
  std::string buffer;
  std::string line;
  for (;;) {
    std::printf(buffer.empty() ? "gsql> " : "  ... ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (!line.empty() && line[0] == '\\') {
      std::istringstream in(line);
      std::string cmd;
      in >> cmd;
      if (cmd == "\\quit" || cmd == "\\q") return 0;
      if (HandleParamCommand(cmd, in, &params)) continue;
      if (cmd == "\\deadline") {
        long long ms = 0;
        in >> ms;
        run.deadline_micros = ms <= 0 ? 0 : static_cast<uint64_t>(ms) * 1000;
        std::printf("deadline = %lld ms%s\n", ms, ms <= 0 ? " (disabled)" : "");
        continue;
      }
      if (cmd == "\\metrics") {
        auto text = client.Metrics();
        if (text.ok()) {
          std::fputs(text->c_str(), stdout);
        } else {
          std::printf("error: %s\n", text.status().ToString().c_str());
        }
        continue;
      }
      if (cmd == "\\flightrec") {
        std::string id_str;
        in >> id_str;
        const uint64_t id =
            id_str.empty() ? 0 : std::strtoull(id_str.c_str(), nullptr, 10);
        auto text = client.FlightRec(id);
        if (text.ok()) {
          std::fputs(text->c_str(), stdout);
        } else {
          std::printf("error: %s\n", text.status().ToString().c_str());
        }
        continue;
      }
      std::printf("unknown or local-only shell command %s\n", cmd.c_str());
      continue;
    }
    buffer += line + "\n";
    std::string trimmed = buffer;
    while (!trimmed.empty() && std::isspace(static_cast<unsigned char>(
                                   trimmed.back()))) {
      trimmed.pop_back();
    }
    if (trimmed.empty()) {
      buffer.clear();
      continue;
    }
    if (trimmed.back() != ';' && trimmed.back() != '}') continue;
    auto result = client.Run(buffer, params, run);
    buffer.clear();
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintResult(*result);
    if (result->flight_id != 0) {
      std::printf("(flight record %llu; \\flightrec %llu for spans)\n",
                  static_cast<unsigned long long>(result->flight_id),
                  static_cast<unsigned long long>(result->flight_id));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string target;
    if (arg == "--connect" && i + 1 < argc) {
      target = argv[i + 1];
    } else if (arg.rfind("--connect=", 0) == 0) {
      target = arg.substr(10);
    } else {
      std::fprintf(stderr, "usage: %s [--connect host:port]\n", argv[0]);
      return 2;
    }
    const size_t colon = target.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--connect wants host:port, got '%s'\n",
                   target.c_str());
      return 2;
    }
    return RunRemote(target.substr(0, colon),
                     static_cast<uint16_t>(
                         std::strtoul(target.c_str() + colon + 1, nullptr, 10)));
  }
  Database db;
  GsqlSession session(&db);
  QueryParams params;
  std::printf("TigerVector GSQL shell. \\quit to exit, \\set NAME v1,v2,... for "
              "vector parameters.\n");
  std::string buffer;
  std::string line;
  for (;;) {
    std::printf(buffer.empty() ? "gsql> " : "  ... ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (!line.empty() && line[0] == '\\') {
      HandleShellCommand(line, &db, &session, &params);
      continue;
    }
    buffer += line + "\n";
    // Execute once the statement buffer ends with ';' (or '}' for jobs).
    std::string trimmed = buffer;
    while (!trimmed.empty() && std::isspace(static_cast<unsigned char>(
                                   trimmed.back()))) {
      trimmed.pop_back();
    }
    if (trimmed.empty()) {
      buffer.clear();
      continue;
    }
    if (trimmed.back() != ';' && trimmed.back() != '}') continue;
    auto result = session.Run(buffer, params);
    buffer.clear();
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintResult(*result);
  }
  return 0;
}

#include "embedding/embedding_service.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/cancel.h"
#include "util/io.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/topk_heap.h"

namespace tigervector {

namespace {

// RAII counter of in-flight searches, feeding SuggestVacuumThreads().
class ActiveSearchScope {
 public:
  explicit ActiveSearchScope(std::atomic<size_t>* counter) : counter_(counter) {
    counter_->fetch_add(1, std::memory_order_relaxed);
  }
  ~ActiveSearchScope() { counter_->fetch_sub(1, std::memory_order_relaxed); }

 private:
  std::atomic<size_t>* counter_;
};

}  // namespace

EmbeddingService::EmbeddingService(GraphStore* store, Options options)
    : store_(store), options_(std::move(options)) {}

Result<EmbeddingService::AttrState*> EmbeddingService::GetOrCreateAttrState(
    VertexTypeId vtype, const std::string& attr) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = attr_states_.find(AttrKey{vtype, attr});
    if (it != attr_states_.end()) return &it->second;
  }
  // Validate against the schema before creating.
  if (vtype >= store_->schema()->num_vertex_types()) {
    return Status::InvalidArgument("unknown vertex type id");
  }
  const VertexTypeDef& def = store_->schema()->vertex_type(vtype);
  const EmbeddingAttrDef* attr_def = def.FindEmbeddingAttr(attr);
  if (attr_def == nullptr) {
    return Status::NotFound("embedding attribute " + attr + " on " + def.name);
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = attr_states_.try_emplace(AttrKey{vtype, attr});
  if (inserted) it->second.info = attr_def->info;
  return &it->second;
}

Result<const EmbeddingService::AttrState*> EmbeddingService::FindAttrState(
    const std::string& vertex_type, const std::string& attr) const {
  auto vt = store_->schema()->GetVertexType(vertex_type);
  if (!vt.ok()) return vt.status();
  const EmbeddingAttrDef* attr_def = (*vt)->FindEmbeddingAttr(attr);
  if (attr_def == nullptr) {
    return Status::NotFound("embedding attribute " + attr + " on " + vertex_type);
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = attr_states_.find(AttrKey{(*vt)->id, attr});
  // A schema-valid attribute that never received a vector is represented
  // as a null state: searches over it are empty, not errors.
  if (it == attr_states_.end()) return static_cast<const AttrState*>(nullptr);
  return &it->second;
}

EmbeddingSegment* EmbeddingService::GetOrCreateSegment(AttrState* state,
                                                       const EmbeddingTypeInfo& info,
                                                       SegmentId seg_id) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (seg_id < state->segments.size() && state->segments[seg_id] != nullptr) {
      return state->segments[seg_id].get();
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (state->segments.size() <= seg_id) state->segments.resize(seg_id + 1);
  if (state->segments[seg_id] == nullptr) {
    const uint32_t cap = store_->segment_capacity();
    state->segments[seg_id] = std::make_unique<EmbeddingSegment>(
        seg_id, VertexId{seg_id} * cap, cap, info, options_.index_params);
  }
  return state->segments[seg_id].get();
}

Status EmbeddingService::ApplyUpsert(VertexTypeId vtype, const std::string& attr,
                                     VertexId vid, const std::vector<float>& value,
                                     Tid tid) {
  auto state = GetOrCreateAttrState(vtype, attr);
  if (!state.ok()) return state.status();
  if (value.size() != (*state)->info.dimension) {
    return Status::InvalidArgument("embedding dimension mismatch for " + attr);
  }
  const SegmentId seg_id =
      static_cast<SegmentId>(vid / store_->segment_capacity());
  EmbeddingSegment* segment = GetOrCreateSegment(*state, (*state)->info, seg_id);
  VectorDelta delta;
  delta.action = VectorDelta::Action::kUpsert;
  delta.id = vid;
  delta.tid = tid;
  delta.value = value;
  return segment->ApplyDelta(std::move(delta));
}

Status EmbeddingService::ApplyDelete(VertexTypeId vtype, const std::string& attr,
                                     VertexId vid, Tid tid) {
  auto state = GetOrCreateAttrState(vtype, attr);
  if (!state.ok()) return state.status();
  const SegmentId seg_id =
      static_cast<SegmentId>(vid / store_->segment_capacity());
  EmbeddingSegment* segment = GetOrCreateSegment(*state, (*state)->info, seg_id);
  VectorDelta delta;
  delta.action = VectorDelta::Action::kDelete;
  delta.id = vid;
  delta.tid = tid;
  return segment->ApplyDelta(std::move(delta));
}

template <typename SegmentFn>
Result<VectorSearchResult> EmbeddingService::FanOut(const VectorSearchRequest& request,
                                                    SegmentFn segment_fn) const {
  if (request.query == nullptr) {
    return Status::InvalidArgument("vector search requires a query vector");
  }
  if (request.attrs.empty()) {
    return Status::InvalidArgument("vector search requires at least one attribute");
  }
  ActiveSearchScope scope(&active_searches_);

  // Static compatibility analysis across the requested attributes
  // (paper Sec. 4.1): dimension/model/datatype/metric must match; the index
  // type may differ. Incompatible combinations are semantic errors.
  std::vector<const AttrState*> states;
  for (const auto& [vertex_type, attr] : request.attrs) {
    auto state = FindAttrState(vertex_type, attr);
    if (!state.ok()) return state.status();
    if (*state == nullptr) continue;  // schema-valid but empty attribute
    for (const AttrState* prev : states) {
      Status st = CheckCompatible(prev->info, (*state)->info);
      if (!st.ok()) {
        return Status::SemanticError("attributes " + request.attrs.front().second +
                                     " and " + attr + " are not compatible: " +
                                     st.message());
      }
      break;  // comparing against the first is enough (transitivity)
    }
    states.push_back(*state);
  }

  // Collect the target embedding segments.
  std::vector<const EmbeddingSegment*> segments;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const AttrState* state : states) {
      for (const auto& seg : state->segments) {
        if (seg == nullptr) continue;
        if (request.segment_subset != nullptr) {
          const auto& subset = *request.segment_subset;
          if (std::find(subset.begin(), subset.end(), seg->segment_id()) ==
              subset.end()) {
            continue;
          }
        }
        segments.push_back(seg.get());
      }
    }
  }

  VectorSearchResult result;
  result.segments_searched = segments.size();
  std::mutex merge_mu;
  // ParallelFor runs chunks on worker threads only; carry the dispatching
  // thread's active trace into them so segment-level spans (hnsw.search)
  // land in the profiled query's breakdown, and the request's cancel token
  // so a deadline expiring mid-fan-out stops every segment scan.
  obs::QueryTrace* parent_trace = obs::CurrentTrace();
  CancelToken* cancel_token = CurrentCancelToken();
  auto run_one = [&, parent_trace, cancel_token](size_t i) {
    obs::ScopedTraceActivation trace_scope(parent_trace);
    ScopedCancel cancel_scope(cancel_token);
    if (cancel_token != nullptr && cancel_token->fired()) return;
    EmbeddingSegment::SearchOutput out = segment_fn(*segments[i]);
    std::lock_guard<std::mutex> lock(merge_mu);
    if (out.used_bruteforce) ++result.bruteforce_segments;
    if (out.used_quant) ++result.quant_segments;
    result.reranked += out.reranked;
    result.delta_candidates += out.delta_candidates;
    result.hits.insert(result.hits.end(), out.hits.begin(), out.hits.end());
  };
  if (request.pool != nullptr && segments.size() > 1) {
    request.pool->ParallelFor(segments.size(), run_one);
  } else {
    for (size_t i = 0; i < segments.size(); ++i) run_one(i);
  }
  return result;
}

Result<VectorSearchResult> EmbeddingService::TopKSearch(
    const VectorSearchRequest& request) const {
  TV_SPAN("embedding.topk");
  Timer timer;
  TV_COUNTER_INC("tv.query.vector_searches_total");
  EmbeddingSegment::SearchOptions seg_options;
  seg_options.k = request.k;
  seg_options.ef = request.ef;
  seg_options.filter = request.filter;
  seg_options.read_tid =
      request.read_tid == kMaxTid ? store_->visible_tid() : request.read_tid;
  seg_options.bruteforce_threshold = request.bruteforce_threshold != 0
                                         ? request.bruteforce_threshold
                                         : options_.bruteforce_threshold;
  seg_options.rerank_factor = request.rerank_factor;
  auto result = FanOut(request, [&](const EmbeddingSegment& segment) {
    return segment.TopKSearch(request.query, seg_options);
  });
  if (!result.ok()) return result;
  // Authoritative cancellation gate: if the request's deadline fired at any
  // point during the fan-out, the merged hits may be missing candidates
  // from aborted scans — discard them and surface the typed error instead
  // of a silently short top-k.
  TV_RETURN_NOT_OK(CancelCheckStatus());
  // Global merge of per-segment top-k lists (paper Fig. 5).
  TopKHeap<VertexId> heap(request.k);
  for (const SearchHit& h : result->hits) heap.Push(h.distance, h.label);
  result->hits.clear();
  for (const auto& e : heap.TakeSorted()) {
    result->hits.push_back(SearchHit{e.distance, e.id});
  }
  TV_HISTOGRAM_OBSERVE("tv.query.vector_search_seconds", timer.ElapsedSeconds());
  return result;
}

Result<VectorSearchResult> EmbeddingService::RangeSearch(
    const VectorSearchRequest& request, float threshold) const {
  TV_SPAN("embedding.range");
  Timer timer;
  TV_COUNTER_INC("tv.query.vector_searches_total");
  EmbeddingSegment::SearchOptions seg_options;
  seg_options.k = std::max<size_t>(request.k, 16);
  seg_options.ef = request.ef;
  seg_options.filter = request.filter;
  seg_options.read_tid =
      request.read_tid == kMaxTid ? store_->visible_tid() : request.read_tid;
  seg_options.bruteforce_threshold = request.bruteforce_threshold != 0
                                         ? request.bruteforce_threshold
                                         : options_.bruteforce_threshold;
  auto result = FanOut(request, [&](const EmbeddingSegment& segment) {
    return segment.RangeSearch(request.query, threshold, seg_options);
  });
  if (!result.ok()) return result;
  // See TopKSearch: an expired deadline discards partial range results.
  TV_RETURN_NOT_OK(CancelCheckStatus());
  std::sort(result->hits.begin(), result->hits.end(),
            [](const SearchHit& a, const SearchHit& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.label < b.label;
            });
  TV_HISTOGRAM_OBSERVE("tv.query.vector_search_seconds", timer.ElapsedSeconds());
  return result;
}

Status EmbeddingService::GetEmbedding(const std::string& vertex_type,
                                      const std::string& attr, VertexId vid,
                                      float* out) const {
  auto state = FindAttrState(vertex_type, attr);
  if (!state.ok()) return state.status();
  if (*state == nullptr) {
    return Status::NotFound("no embedding for vertex " + std::to_string(vid));
  }
  const SegmentId seg_id =
      static_cast<SegmentId>(vid / store_->segment_capacity());
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (seg_id >= (*state)->segments.size() ||
      (*state)->segments[seg_id] == nullptr) {
    return Status::NotFound("no embedding for vertex " + std::to_string(vid));
  }
  const EmbeddingSegment* segment = (*state)->segments[seg_id].get();
  lock.unlock();
  return segment->GetEmbedding(vid, store_->visible_tid(), out);
}

Result<size_t> EmbeddingService::RunDeltaMerge() {
  ScopedStructureChange structure_change(this);
  const Tid up_to = store_->visible_tid();
  size_t sealed = 0;
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (auto& [key, state] : attr_states_) {
    // Per-attribute stem keeps delta file names unique across attributes
    // sharing a segment id, and recovery parses them back to the attribute.
    const std::string stem = "emb_" + std::to_string(key.vtype) + "_" + key.attr;
    for (auto& seg : state.segments) {
      if (seg == nullptr) continue;
      auto n = seg->DeltaMerge(up_to, options_.delta_dir, stem);
      if (!n.ok()) return n.status();
      sealed += *n;
    }
  }
  return sealed;
}

Result<size_t> EmbeddingService::RunIndexMerge(ThreadPool* pool) {
  ScopedStructureChange structure_change(this);
  const Tid up_to = store_->visible_tid();
  size_t merged = 0;
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (auto& [key, state] : attr_states_) {
    for (auto& seg : state.segments) {
      if (seg == nullptr) continue;
      auto n = seg->IndexMerge(up_to, pool);
      if (!n.ok()) return n.status();
      merged += *n;
    }
  }
  return merged;
}

Status EmbeddingService::RebuildAllIndexes(ThreadPool* pool) {
  ScopedStructureChange structure_change(this);
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (auto& [key, state] : attr_states_) {
    for (auto& seg : state.segments) {
      if (seg == nullptr) continue;
      TV_RETURN_NOT_OK(seg->RebuildIndex(pool));
    }
  }
  return Status::OK();
}

Status EmbeddingService::SaveIndexSnapshots(const std::string& dir,
                                            ThreadPool* pool) {
  // Fold everything first so the snapshot is self-contained.
  TV_RETURN_NOT_OK(RunDeltaMerge().status());
  TV_RETURN_NOT_OK(RunIndexMerge(pool).status());
  // Snapshot files first, manifest last: each snapshot is written atomically
  // (tmp + rename), and the manifest rename is the commit point for the set.
  // A crash anywhere mid-save leaves the previous manifest naming the
  // previous, still-intact snapshot files.
  std::string manifest_body;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& [key, state] : attr_states_) {
      for (const auto& seg : state.segments) {
        if (seg == nullptr) continue;
        const std::string file = "emb_" + std::to_string(key.vtype) + "_" +
                                 key.attr + "_seg" +
                                 std::to_string(seg->segment_id()) + ".hnsw";
        TV_RETURN_NOT_OK(seg->SaveIndexSnapshot(dir + "/" + file));
        manifest_body += std::to_string(key.vtype) + " " + key.attr + " " +
                         std::to_string(seg->segment_id()) + " " +
                         std::to_string(seg->merged_tid()) + " " + file + "\n";
      }
    }
  }
  auto create = io::AtomicFile::Create(dir + "/embedding_snapshots.manifest",
                                       "manifest.save");
  if (!create.ok()) return create.status();
  io::AtomicFile manifest = std::move(create).value();
  TV_RETURN_NOT_OK(manifest.Write(manifest_body.data(), manifest_body.size()));
  return manifest.Commit();
}

Status EmbeddingService::LoadIndexSnapshots(const std::string& dir) {
  ScopedStructureChange structure_change(this);
  FILE* manifest = std::fopen((dir + "/embedding_snapshots.manifest").c_str(), "r");
  if (manifest == nullptr) {
    return Status::IOError("cannot open manifest in " + dir);
  }
  char attr_buf[256];
  char file_buf[512];
  unsigned vtype = 0, seg_id = 0;
  unsigned long long merged_tid = 0;
  Status status = Status::OK();
  while (std::fscanf(manifest, "%u %255s %u %llu %511s", &vtype, attr_buf, &seg_id,
                     &merged_tid, file_buf) == 5) {
    auto state = GetOrCreateAttrState(static_cast<VertexTypeId>(vtype), attr_buf);
    if (!state.ok()) {
      status = state.status();
      break;
    }
    EmbeddingSegment* segment = GetOrCreateSegment(*state, (*state)->info,
                                                   static_cast<SegmentId>(seg_id));
    auto index = HnswIndex::LoadFromFile(dir + "/" + file_buf);
    if (!index.ok()) {
      status = index.status();
      break;
    }
    status = segment->AdoptIndexSnapshot(std::move(index).value(),
                                         static_cast<Tid>(merged_tid));
    if (!status.ok()) break;
  }
  std::fclose(manifest);
  return status;
}

Status EmbeddingService::RecoverSnapshots(const std::string& dir,
                                          RecoveryStats* stats) {
  ScopedStructureChange structure_change(this);
  FILE* manifest = std::fopen((dir + "/embedding_snapshots.manifest").c_str(), "r");
  if (manifest == nullptr) return Status::OK();  // no snapshot set to adopt
  char attr_buf[256];
  char file_buf[512];
  unsigned vtype = 0, seg_id = 0;
  unsigned long long merged_tid = 0;
  while (std::fscanf(manifest, "%u %255s %u %llu %511s", &vtype, attr_buf, &seg_id,
                     &merged_tid, file_buf) == 5) {
    // Each snapshot is best-effort: snapshots only shorten WAL replay, so a
    // file that fails to load or adopt is skipped, never fatal.
    auto state = GetOrCreateAttrState(static_cast<VertexTypeId>(vtype), attr_buf);
    if (!state.ok()) {
      ++stats->snapshots_rejected;
      continue;
    }
    EmbeddingSegment* segment = GetOrCreateSegment(*state, (*state)->info,
                                                   static_cast<SegmentId>(seg_id));
    auto index = HnswIndex::LoadFromFile(dir + "/" + file_buf);
    if (!index.ok() ||
        !segment
             ->AdoptIndexSnapshot(std::move(index).value(),
                                  static_cast<Tid>(merged_tid))
             .ok()) {
      ++stats->snapshots_rejected;
      TV_COUNTER_INC("tv.recovery.snapshots_rejected_total");
      continue;
    }
    ++stats->snapshots_adopted;
    TV_COUNTER_INC("tv.recovery.snapshots_adopted_total");
  }
  std::fclose(manifest);
  return Status::OK();
}

namespace {

// A RunDeltaMerge artifact name: `emb_<vtype>_<attr>_seg<id>_tid<max>.delta`.
struct DeltaFileName {
  VertexTypeId vtype = 0;
  std::string attr;
  SegmentId seg_id = 0;
  Tid max_tid = 0;
};

bool ParseUnsigned(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Parsed from the right, since the attribute name may contain underscores.
bool ParseDeltaFileName(const std::string& name, DeltaFileName* out) {
  if (!EndsWith(name, ".delta")) return false;
  const std::string base = name.substr(0, name.size() - 6);
  const size_t tid_pos = base.rfind("_tid");
  if (tid_pos == std::string::npos || tid_pos == 0) return false;
  const size_t seg_pos = base.rfind("_seg", tid_pos - 1);
  if (seg_pos == std::string::npos) return false;
  const std::string stem = base.substr(0, seg_pos);
  if (stem.rfind("emb_", 0) != 0) return false;
  const std::string rest = stem.substr(4);
  const size_t us = rest.find('_');
  if (us == std::string::npos || us + 1 >= rest.size()) return false;
  uint64_t vtype = 0, seg_id = 0, max_tid = 0;
  if (!ParseUnsigned(rest.substr(0, us), &vtype) ||
      !ParseUnsigned(base.substr(seg_pos + 4, tid_pos - seg_pos - 4), &seg_id) ||
      !ParseUnsigned(base.substr(tid_pos + 4), &max_tid)) {
    return false;
  }
  out->vtype = static_cast<VertexTypeId>(vtype);
  out->attr = rest.substr(us + 1);
  out->seg_id = static_cast<SegmentId>(seg_id);
  out->max_tid = static_cast<Tid>(max_tid);
  return true;
}

}  // namespace

Status EmbeddingService::RecoverDeltaFiles(const std::string& dir,
                                           RecoveryStats* stats) {
  ScopedStructureChange structure_change(this);
  if (dir.empty()) return Status::OK();
  auto listing = io::ListDir(dir);
  if (!listing.ok()) return Status::OK();  // no delta directory yet
  struct Entry {
    DeltaFileName meta;
    std::string path;
  };
  std::vector<Entry> entries;
  for (const std::string& name : *listing) {
    const std::string path = dir + "/" + name;
    if (EndsWith(name, io::kTmpSuffix)) {
      // Staging leftover from an interrupted atomic write; never committed.
      (void)io::RemoveFile(path);
      ++stats->tmp_files_removed;
      continue;
    }
    Entry e;
    if (ParseDeltaFileName(name, &e.meta)) {
      e.path = path;
      entries.push_back(std::move(e));
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.meta.vtype != b.meta.vtype) return a.meta.vtype < b.meta.vtype;
    if (a.meta.attr != b.meta.attr) return a.meta.attr < b.meta.attr;
    if (a.meta.seg_id != b.meta.seg_id) return a.meta.seg_id < b.meta.seg_id;
    return a.meta.max_tid < b.meta.max_tid;
  });

  size_t i = 0;
  while (i < entries.size()) {
    // One (attribute, segment) group at a time, files in ascending max_tid.
    const DeltaFileName& head = entries[i].meta;
    size_t end = i;
    while (end < entries.size() && entries[end].meta.vtype == head.vtype &&
           entries[end].meta.attr == head.attr &&
           entries[end].meta.seg_id == head.seg_id) {
      ++end;
    }
    auto state = GetOrCreateAttrState(head.vtype, head.attr);
    if (!state.ok()) {
      i = end;  // not in the current schema; leave the files alone
      continue;
    }
    EmbeddingSegment* segment =
        GetOrCreateSegment(*state, (*state)->info, head.seg_id);
    bool chain_broken = false;
    for (; i < end; ++i) {
      const Entry& entry = entries[i];
      if (chain_broken) {
        // Past a quarantined file the chain has a tid gap, so adopting later
        // files would shadow WAL replay of the gap. They are redundant with
        // the WAL (which is never pruned past them) — drop and replay.
        (void)io::RemoveFile(entry.path);
        ++stats->stale_files_removed;
        continue;
      }
      if (entry.meta.max_tid <= segment->durable_horizon()) {
        // Fully captured by the adopted index snapshot (or an earlier file).
        (void)io::RemoveFile(entry.path);
        ++stats->stale_files_removed;
        continue;
      }
      auto file = DeltaFile::Load(entry.path);
      if (!file.ok()) {
        (void)io::Rename(entry.path, entry.path + io::kQuarantineSuffix);
        ++stats->delta_files_quarantined;
        TV_COUNTER_INC("tv.recovery.delta_files_quarantined_total");
        chain_broken = true;
        continue;
      }
      if (!segment->AdoptSealedFile(std::move(file).value()).ok()) {
        chain_broken = true;
        continue;
      }
      ++stats->delta_files_adopted;
    }
  }
  return Status::OK();
}

size_t EmbeddingService::SuggestVacuumThreads() const {
  const size_t active = active_searches_.load(std::memory_order_relaxed);
  const size_t max_threads = std::max<size_t>(1, options_.max_vacuum_threads);
  if (active >= max_threads) return 1;
  return max_threads - active;
}

EmbeddingService::ServiceStats EmbeddingService::AggregateStats() const {
  ServiceStats out;
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [key, state] : attr_states_) {
    for (const auto& seg : state.segments) {
      if (seg == nullptr) continue;
      ++out.segments;
      out.live_vectors += seg->index_size();
      if (const auto* hnsw = dynamic_cast<const HnswIndex*>(seg->index().get())) {
        const HnswStats stats = hnsw->stats();
        out.distance_computations += stats.distance_computations;
        out.hops += stats.hops;
        out.searches += stats.searches;
        out.inserts += stats.inserts;
        out.updates += stats.updates;
      }
    }
  }
  return out;
}

size_t EmbeddingService::TotalPendingDeltas() const {
  size_t total = 0;
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [key, state] : attr_states_) {
    for (const auto& seg : state.segments) {
      if (seg != nullptr) total += seg->pending_delta_count();
    }
  }
  return total;
}

size_t EmbeddingService::NumEmbeddingSegments() const {
  size_t total = 0;
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [key, state] : attr_states_) {
    for (const auto& seg : state.segments) {
      if (seg != nullptr) ++total;
    }
  }
  return total;
}

std::vector<const EmbeddingSegment*> EmbeddingService::SegmentsOf(
    const std::string& vertex_type, const std::string& attr) const {
  std::vector<const EmbeddingSegment*> out;
  auto state = FindAttrState(vertex_type, attr);
  if (!state.ok() || *state == nullptr) return out;
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& seg : (*state)->segments) {
    if (seg != nullptr) out.push_back(seg.get());
  }
  return out;
}

}  // namespace tigervector

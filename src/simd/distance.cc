#include "simd/distance.h"

#include <cmath>

namespace tigervector {

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return "L2";
    case Metric::kIp:
      return "IP";
    case Metric::kCosine:
      return "COSINE";
  }
  return "?";
}

float L2SquaredDistance(const float* a, const float* b, size_t dim) {
  // Four accumulators break the dependency chain so the compiler can
  // vectorize and pipeline the loop.
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    acc0 += d * d;
  }
  return acc0 + acc1 + acc2 + acc3;
}

float InnerProduct(const float* a, const float* b, size_t dim) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < dim; ++i) acc0 += a[i] * b[i];
  return acc0 + acc1 + acc2 + acc3;
}

float CosineDistance(const float* a, const float* b, size_t dim) {
  float dot = 0.f, na = 0.f, nb = 0.f;
  for (size_t i = 0; i < dim; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  const float denom = std::sqrt(na) * std::sqrt(nb);
  if (denom == 0.f) return 1.f;
  return 1.f - dot / denom;
}

float ComputeDistance(Metric metric, const float* a, const float* b, size_t dim) {
  switch (metric) {
    case Metric::kL2:
      return L2SquaredDistance(a, b, dim);
    case Metric::kIp:
      return 1.f - InnerProduct(a, b, dim);
    case Metric::kCosine:
      return CosineDistance(a, b, dim);
  }
  return 0.f;
}

float L2Norm(const float* a, size_t dim) {
  float acc = 0.f;
  for (size_t i = 0; i < dim; ++i) acc += a[i] * a[i];
  return std::sqrt(acc);
}

void NormalizeInPlace(float* a, size_t dim) {
  const float norm = L2Norm(a, dim);
  if (norm == 0.f) return;
  const float inv = 1.f / norm;
  for (size_t i = 0; i < dim; ++i) a[i] *= inv;
}

}  // namespace tigervector

#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tigervector::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

// First line of the query, compressed for one-line listings.
std::string Headline(const std::string& query, size_t max_len) {
  std::string out;
  for (char c : query) {
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
    if (!out.empty() || c != ' ') out.push_back(c);
    if (out.size() >= max_len) {
      out += "...";
      break;
    }
  }
  return out;
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  // Leaked on purpose, like the metrics registry: sessions may record
  // during static destruction of other objects.
  static FlightRecorder* recorder = new FlightRecorder;
  return *recorder;
}

FlightRecorder::FlightRecorder(Options options) : options_(options) {}

uint64_t FlightRecorder::Record(QueryRecord record) {
  Options opts = this->options();
  record.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (record.query.size() > kMaxQueryBytes) {
    record.query.resize(kMaxQueryBytes - 3);
    record.query += "...";
  }
  record.slow = record.total_micros >= opts.slow_threshold_micros;

  if (record.slow) {
    std::function<void(const std::string&)> sink;
    {
      std::lock_guard<std::mutex> lock(slow_mu_);
      if (opts.slow_capacity > 0) {
        if (slow_ring_.size() < opts.slow_capacity) {
          slow_ring_.push_back(record);
        } else {
          slow_ring_[slow_count_ % opts.slow_capacity] = record;
        }
        ++slow_count_;
      }
      sink = slow_sink_;
    }
    // Render outside the lock; slow queries are rare so the extra copy is
    // immaterial next to the query itself.
    if (sink) sink(SlowLogLine(record));
  }

  const uint64_t id = record.id;
  const size_t per_shard = std::max<size_t>(1, (opts.capacity + kShards - 1) / kShards);
  Shard& shard = shards_[id % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.ring.size() < per_shard) {
    shard.ring.push_back(std::move(record));
  } else {
    shard.ring[shard.count % per_shard] = std::move(record);
  }
  ++shard.count;
  return id;
}

void FlightRecorder::Configure(const Options& options) {
  // Snapshot, swap knobs, re-file the most recent records under the new
  // capacities (ids are preserved; only excess history is dropped).
  std::vector<QueryRecord> recent = Recent();
  std::vector<QueryRecord> slow = Slow();
  {
    std::lock_guard<std::mutex> lock(options_mu_);
    options_ = options;
  }
  for (size_t i = 0; i < kShards; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    shards_[i].ring.clear();
    shards_[i].count = 0;
  }
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    slow_ring_.clear();
    slow_count_ = 0;
  }
  const size_t per_shard =
      std::max<size_t>(1, (options.capacity + kShards - 1) / kShards);
  if (recent.size() > options.capacity) {
    recent.erase(recent.begin(), recent.end() - options.capacity);
  }
  for (QueryRecord& r : recent) {
    Shard& shard = shards_[r.id % kShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.ring.size() < per_shard) {
      shard.ring.push_back(std::move(r));
    } else {
      shard.ring[shard.count % per_shard] = std::move(r);
    }
    ++shard.count;
  }
  if (slow.size() > options.slow_capacity) {
    slow.erase(slow.begin(), slow.end() - options.slow_capacity);
  }
  std::lock_guard<std::mutex> lock(slow_mu_);
  for (QueryRecord& r : slow) slow_ring_.push_back(std::move(r));
  slow_count_ = slow_ring_.size();
}

FlightRecorder::Options FlightRecorder::options() const {
  std::lock_guard<std::mutex> lock(options_mu_);
  return options_;
}

std::vector<QueryRecord> FlightRecorder::Recent() const {
  std::vector<QueryRecord> out;
  for (size_t i = 0; i < kShards; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    out.insert(out.end(), shards_[i].ring.begin(), shards_[i].ring.end());
  }
  std::sort(out.begin(), out.end(),
            [](const QueryRecord& a, const QueryRecord& b) { return a.id < b.id; });
  return out;
}

std::vector<QueryRecord> FlightRecorder::Slow() const {
  std::vector<QueryRecord> out;
  {
    std::lock_guard<std::mutex> lock(slow_mu_);
    out = slow_ring_;
  }
  std::sort(out.begin(), out.end(),
            [](const QueryRecord& a, const QueryRecord& b) { return a.id < b.id; });
  return out;
}

bool FlightRecorder::Find(uint64_t id, QueryRecord* out) const {
  {
    const Shard& shard = shards_[id % kShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const QueryRecord& r : shard.ring) {
      if (r.id == id) {
        *out = r;
        return true;
      }
    }
  }
  std::lock_guard<std::mutex> lock(slow_mu_);
  for (const QueryRecord& r : slow_ring_) {
    if (r.id == id) {
      *out = r;
      return true;
    }
  }
  return false;
}

void FlightRecorder::Clear() {
  for (size_t i = 0; i < kShards; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mu);
    shards_[i].ring.clear();
    shards_[i].count = 0;
  }
  std::lock_guard<std::mutex> lock(slow_mu_);
  slow_ring_.clear();
  slow_count_ = 0;
}

void FlightRecorder::SetSlowLogSink(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(slow_mu_);
  slow_sink_ = std::move(sink);
}

std::string FlightRecorder::RenderList() const {
  const std::vector<QueryRecord> recent = Recent();
  const std::vector<QueryRecord> slow = Slow();
  std::ostringstream out;
  out << "      id status     ms  spans  query\n";
  auto line = [&](const QueryRecord& r, bool pinned) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%8llu %-5s %8.3f %6zu  ",
                  static_cast<unsigned long long>(r.id),
                  r.ok ? (pinned ? "SLOW" : "ok") : "ERR", r.total_micros / 1e3,
                  r.spans.size());
    out << buf << Headline(r.query, 60) << "\n";
  };
  for (const QueryRecord& r : recent) line(r, r.slow);
  if (!slow.empty()) {
    out << "--- pinned slow queries ---\n";
    for (const QueryRecord& r : slow) line(r, true);
  }
  return out.str();
}

std::string FlightRecorder::RenderDetail(const QueryRecord& record) {
  std::ostringstream out;
  out << "query " << record.id << (record.slow ? " [slow]" : "") << ": "
      << (record.ok ? "OK" : record.status) << "\n";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "total %.3f ms\n", record.total_micros / 1e3);
  out << buf << Headline(record.query, 200) << "\n";
  out << "  start_us     dur_us  tid depth span\n";
  std::vector<QueryTrace::Span> spans = record.spans;
  std::sort(spans.begin(), spans.end(),
            [](const QueryTrace::Span& a, const QueryTrace::Span& b) {
              return a.start_micros < b.start_micros;
            });
  for (const QueryTrace::Span& s : spans) {
    std::snprintf(buf, sizeof(buf), "%10.1f %10.1f %4u %5u ", s.start_micros,
                  s.micros, s.thread_id, s.depth);
    out << buf;
    for (uint32_t d = 0; d < s.depth; ++d) out << "  ";
    out << s.name << "\n";
  }
  for (const auto& [name, value] : record.counters) {
    std::snprintf(buf, sizeof(buf), "%-34s %9llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out << buf;
  }
  return out.str();
}

std::string FlightRecorder::ChromeTraceJson(const QueryRecord& record) {
  // Chrome trace_event format: one "X" (complete) event per span, ts/dur in
  // microseconds, pid = 1, tid = the recording thread's stable slot. A
  // metadata-style summary event carries the query text and counters.
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  out << "{\"name\":\"query " << record.id << "\",\"cat\":\"query\",\"ph\":\"X\","
      << "\"ts\":0,\"dur\":" << record.total_micros << ",\"pid\":1,\"tid\":0,"
      << "\"args\":{\"query\":\"" << JsonEscape(record.query) << "\",\"status\":\""
      << JsonEscape(record.status) << "\"";
  for (const auto& [name, value] : record.counters) {
    out << ",\"" << JsonEscape(name) << "\":" << value;
  }
  out << "}}";
  for (const QueryTrace::Span& s : record.spans) {
    out << ",{\"name\":\"" << JsonEscape(s.name) << "\",\"cat\":\"span\","
        << "\"ph\":\"X\",\"ts\":" << s.start_micros << ",\"dur\":" << s.micros
        << ",\"pid\":1,\"tid\":" << s.thread_id << "}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

std::string FlightRecorder::SlowLogLine(const QueryRecord& record) {
  std::map<std::string, double> stages;
  for (const QueryTrace::Span& s : record.spans) stages[s.name] += s.micros;
  std::ostringstream out;
  out << "{\"id\":" << record.id << ",\"ok\":" << (record.ok ? "true" : "false")
      << ",\"status\":\"" << JsonEscape(record.status) << "\",\"total_micros\":"
      << record.total_micros << ",\"query\":\"" << JsonEscape(record.query)
      << "\",\"stages\":{";
  bool first = true;
  for (const auto& [name, micros] : stages) {
    out << (first ? "" : ",") << "\"" << JsonEscape(name) << "\":" << micros;
    first = false;
  }
  out << "},\"counters\":{";
  first = true;
  for (const auto& [name, value] : record.counters) {
    out << (first ? "" : ",") << "\"" << JsonEscape(name) << "\":" << value;
    first = false;
  }
  out << "}}";
  return out.str();
}

}  // namespace tigervector::obs

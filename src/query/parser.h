#ifndef TIGERVECTOR_QUERY_PARSER_H_
#define TIGERVECTOR_QUERY_PARSER_H_

#include <string>
#include <vector>

#include "query/ast.h"
#include "util/result.h"

namespace tigervector {

// Parses a GSQL-subset script into statements. The subset covers the
// statement forms used throughout the paper: DDL (CREATE VERTEX/EDGE,
// CREATE EMBEDDING SPACE, ALTER ... ADD EMBEDDING ATTRIBUTE), declarative
// vector search (SELECT ... ORDER BY VECTOR_DIST ... LIMIT k, WHERE
// VECTOR_DIST < t), graph patterns with filters, vector similarity joins,
// the VectorSearch() function with query-composition options, and PRINT.
Result<std::vector<Statement>> ParseScript(const std::string& script);

}  // namespace tigervector

#endif  // TIGERVECTOR_QUERY_PARSER_H_

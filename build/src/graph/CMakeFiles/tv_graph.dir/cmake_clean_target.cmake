file(REMOVE_RECURSE
  "libtv_graph.a"
)

#ifndef TIGERVECTOR_QUERY_LEXER_H_
#define TIGERVECTOR_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace tigervector {

// Token kinds of the GSQL subset. Keywords are recognized case-insensitively
// and carry their canonical upper-case text.
enum class TokenKind {
  kIdent,
  kKeyword,
  kIntLit,
  kFloatLit,
  kStringLit,
  kParam,      // $name
  kLParen,     // (
  kRParen,     // )
  kLBrace,     // {
  kRBrace,     // }
  kLBracket,   // [
  kRBracket,   // ]
  kComma,
  kSemicolon,
  kColon,
  kDot,
  kAssign,     // =
  kEq,         // ==
  kNe,         // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kDash,       // -
  kArrowRight, // ->
  kArrowLeft,  // <-
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;     // identifier/keyword/string/param name
  int64_t int_value = 0;
  double float_value = 0;
  size_t line = 1;
  size_t column = 1;
};

// Tokenizes a GSQL script. `--` starts a comment to end of line.
Result<std::vector<Token>> Tokenize(const std::string& input);

// True when the token is the given (upper-case) keyword.
bool IsKeyword(const Token& token, const char* keyword);

}  // namespace tigervector

#endif  // TIGERVECTOR_QUERY_LEXER_H_

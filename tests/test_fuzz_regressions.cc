#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/database.h"
#include "testing/fuzz_harness.h"
#include "util/io.h"

namespace tigervector {
namespace {

// Regressions surfaced by tools/tv_fuzz. Each direct test below is the
// minimized form of a real fuzzer-found failure; the corpus runner at the
// bottom replays the original seeds end-to-end so the whole differential
// harness guards the fix, not just the unit-level repro.

constexpr size_t kDim = 8;

Database::Options MakeOptions(const std::string& dir) {
  Database::Options options;
  options.store.segment_capacity = 32;
  options.store.wal_path = dir + "/wal.log";
  options.embeddings.delta_dir = dir;
  return options;
}

void DefineSchema(Database* db) {
  EmbeddingTypeInfo info;
  info.dimension = kDim;
  info.model = "M";
  info.metric = Metric::kL2;
  ASSERT_TRUE(db->schema()->CreateVertexType("Item", {{"v", AttrType::kInt}}).ok());
  ASSERT_TRUE(db->schema()->AddEmbeddingAttr("Item", "emb", info).ok());
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Fuzzer find #1 (tv_fuzz seeds 91/105/120/172/227/238/358/368/469):
// a WAL append that fails part-way leaves a dangling record header as the
// log tail. A *smaller* record appended afterwards used to fit under the
// fault threshold, get acknowledged, and land beyond the garbage — where
// recovery's scan never reaches, so the acknowledged commit vanished
// ("deleted vid is visible again"). The log must refuse appends after an
// append failure until it is reopened.
TEST(FuzzRegression, WalRefusesAppendsAfterFailedAppend) {
  io::FaultInjector::Instance().Reset();
  const std::string dir = FreshDir("tv_fuzz_reg_wal");

  VertexId vid = kInvalidVertexId;
  {
    Database db(MakeOptions(dir));
    DefineSchema(&db);
    {
      Transaction txn = db.Begin();
      auto inserted = txn.InsertVertex("Item", {Value{int64_t{1}}});
      ASSERT_TRUE(inserted.ok());
      vid = *inserted;
      ASSERT_TRUE(
          txn.SetEmbedding(vid, "Item", "emb", std::vector<float>(kDim, 1.f)).ok());
      ASSERT_TRUE(txn.Commit().ok());
    }

    // Fail writes shortly past the current end of the log: the next
    // record's 12-byte header squeezes in, its payload does not.
    io::FaultSpec spec;
    spec.kind = io::FaultKind::kFailWrite;
    spec.after_bytes = db.store()->wal().appended_bytes() + 20;
    io::FaultInjector::Instance().Arm("wal.append", spec);

    {
      // Big record: insert + embedding. Header fits, payload crosses the
      // threshold, commit fails, and the log tail is now a torn record.
      Transaction txn = db.Begin();
      auto second = txn.InsertVertex("Item", {Value{int64_t{2}}});
      ASSERT_TRUE(second.ok());
      ASSERT_TRUE(
          txn.SetEmbedding(*second, "Item", "emb", std::vector<float>(kDim, 2.f))
              .ok());
      EXPECT_FALSE(txn.Commit().ok());
    }
    EXPECT_TRUE(db.store()->wal().broken());

    // Small record: a bare DeleteVertex encodes to a handful of bytes and
    // used to slip under the byte threshold and be acknowledged. It must
    // be refused instead — an acknowledged commit here is unrecoverable.
    Transaction txn = db.Begin();
    ASSERT_TRUE(txn.DeleteVertex(vid).ok());
    auto tid = txn.Commit();
    if (tid.ok()) {
      // If a future WAL learns to repair its tail in place, an acknowledged
      // delete is fine — but then recovery below must honor it.
      io::FaultInjector::Instance().Reset();
      Database recovered(MakeOptions(dir));
      DefineSchema(&recovered);
      ASSERT_TRUE(recovered.Recover({}).ok());
      EXPECT_FALSE(
          recovered.store()->IsVisible(vid, recovered.store()->visible_tid()))
          << "acknowledged DeleteVertex lost across recovery";
      return;
    }
    io::FaultInjector::Instance().Reset();
    // --- crash: drop the database with the torn tail on disk ---
  }

  // Durability invariant: everything acknowledged is recovered — vid was
  // inserted and never (successfully) deleted, so it must be visible.
  Database db(MakeOptions(dir));
  DefineSchema(&db);
  auto report = db.Recover({});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->wal_truncated);
  EXPECT_TRUE(db.store()->IsVisible(vid, db.store()->visible_tid()));
  auto v = db.store()->GetAttr(vid, "v", db.store()->visible_tid());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(std::get<int64_t>(*v), 1);
  std::filesystem::remove_all(dir);
}

// A reopened log (the recovery path truncates the torn tail first) accepts
// appends again; the broken flag must not leak across Open().
TEST(FuzzRegression, WalReopenClearsBrokenState) {
  io::FaultInjector::Instance().Reset();
  const std::string dir = FreshDir("tv_fuzz_reg_wal_reopen");
  const std::string path = dir + "/wal.log";

  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path).ok());
  Mutation m;
  m.kind = Mutation::Kind::kInsertVertex;
  m.vid = 0;
  m.vtype = 0;
  m.attrs = {Value{int64_t{7}}};
  ASSERT_TRUE(wal.Append(1, {m}).ok());

  io::FaultInjector::Instance().Arm(
      "wal.append", io::FaultSpec{io::FaultKind::kFailWrite,
                                  wal.appended_bytes() + 4});
  EXPECT_FALSE(wal.Append(2, {m}).ok());
  EXPECT_TRUE(wal.broken());
  io::FaultInjector::Instance().Reset();
  // Still refused after the fault is gone: the tail is still garbage.
  EXPECT_FALSE(wal.Append(3, {m}).ok());

  auto outcome = WriteAheadLog::ReadLog(path);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->records.size(), 1u);
  ASSERT_TRUE(io::TruncateFile(path, outcome->valid_bytes).ok());

  WriteAheadLog reopened;
  ASSERT_TRUE(reopened.Open(path).ok());
  EXPECT_FALSE(reopened.broken());
  ASSERT_TRUE(reopened.Append(2, {m}).ok());
  auto records = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
  std::filesystem::remove_all(dir);
}

// Replays the checked-in seed corpus through the full differential harness:
// every line is (seed, ops, faults[, sq8]) and must pass with zero
// divergences.
TEST(FuzzRegression, SeedCorpusPasses) {
  std::ifstream in(TV_FUZZ_CORPUS_FILE);
  ASSERT_TRUE(in.is_open()) << "missing corpus file " << TV_FUZZ_CORPUS_FILE;
  std::string line;
  size_t cases = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    tigervector::testing::FuzzOptions options;
    int faults = 0;
    ASSERT_TRUE(static_cast<bool>(fields >> options.seed >> options.ops >> faults))
        << "bad corpus line: " << line;
    options.with_faults = faults != 0;
    int sq8 = 0;  // optional trailing field; absent means fp32
    if (fields >> sq8) options.sq8 = sq8 != 0;
    auto result = tigervector::testing::RunFuzzCase(options);
    ++cases;
    if (result.ok) continue;
    const auto& f = result.failures.front();
    FAIL() << "corpus seed " << options.seed << " failed at op " << f.op_index
           << " (" << f.kind << "): " << f.detail
           << "\n  repro: " << tigervector::testing::ReproCommand(options, {});
  }
  EXPECT_GE(cases, 10u) << "corpus unexpectedly small";
}

}  // namespace
}  // namespace tigervector

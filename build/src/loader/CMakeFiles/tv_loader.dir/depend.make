# Empty dependencies file for tv_loader.
# This may be replaced when dependencies are built.

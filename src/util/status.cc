#include "util/status.h"

namespace tigervector {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kIncompatible:
      return "Incompatible";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kSemanticError:
      return "SemanticError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace tigervector

// AVX-512F one-pair kernels. This TU is compiled with -mavx512f and may
// only be entered through the runtime dispatcher (dispatch.cc), which has
// verified CPU support. The non-multiple-of-16 tail is handled with masked
// loads (zero-fill), so there is no scalar cleanup loop and short dims stay
// branch-light. Two 16-lane FMA accumulators per stream.

#if defined(TV_HAVE_AVX512_KERNELS)

#include <immintrin.h>

#include <cmath>
#include <cstddef>

#include "simd/kernels.h"

namespace tigervector::simd::internal {

namespace {

inline __mmask16 TailMask(size_t remaining) {
  return static_cast<__mmask16>((1u << remaining) - 1u);
}

}  // namespace

float Avx512L2(const float* a, const float* b, size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    const __m512 d0 =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    const __m512 d1 =
        _mm512_sub_ps(_mm512_loadu_ps(a + i + 16), _mm512_loadu_ps(b + i + 16));
    acc0 = _mm512_fmadd_ps(d0, d0, acc0);
    acc1 = _mm512_fmadd_ps(d1, d1, acc1);
  }
  if (i + 16 <= dim) {
    const __m512 d =
        _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    acc0 = _mm512_fmadd_ps(d, d, acc0);
    i += 16;
  }
  if (i < dim) {
    const __mmask16 m = TailMask(dim - i);
    const __m512 d = _mm512_sub_ps(_mm512_maskz_loadu_ps(m, a + i),
                                   _mm512_maskz_loadu_ps(m, b + i));
    acc1 = _mm512_fmadd_ps(d, d, acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

float Avx512Ip(const float* a, const float* b, size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i), acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  if (i + 16 <= dim) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i), acc0);
    i += 16;
  }
  if (i < dim) {
    const __mmask16 m = TailMask(dim - i);
    acc1 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, a + i),
                           _mm512_maskz_loadu_ps(m, b + i), acc1);
  }
  return _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
}

float Avx512Cosine(const float* a, const float* b, size_t dim) {
  __m512 dot = _mm512_setzero_ps();
  __m512 na = _mm512_setzero_ps();
  __m512 nb = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m512 va = _mm512_loadu_ps(a + i);
    const __m512 vb = _mm512_loadu_ps(b + i);
    dot = _mm512_fmadd_ps(va, vb, dot);
    na = _mm512_fmadd_ps(va, va, na);
    nb = _mm512_fmadd_ps(vb, vb, nb);
  }
  if (i < dim) {
    const __mmask16 m = TailMask(dim - i);
    const __m512 va = _mm512_maskz_loadu_ps(m, a + i);
    const __m512 vb = _mm512_maskz_loadu_ps(m, b + i);
    dot = _mm512_fmadd_ps(va, vb, dot);
    na = _mm512_fmadd_ps(va, va, na);
    nb = _mm512_fmadd_ps(vb, vb, nb);
  }
  const float dot_s = _mm512_reduce_add_ps(dot);
  const float na_s = _mm512_reduce_add_ps(na);
  const float nb_s = _mm512_reduce_add_ps(nb);
  const float denom = std::sqrt(na_s) * std::sqrt(nb_s);
  if (denom == 0.f) return 2.f;  // zero-norm sentinel: worst cosine distance
  return 1.f - dot_s / denom;
}

// ---------------------------------------------------------------------------
// int8 SQ8 kernels. 512-bit integer multiply-adds (vpmaddwd on zmm) need
// AVX512BW, which this TU does not enable (-mavx512f only, matching the
// dispatcher's CPUID gate) — so the int8 path uses 256-bit integer ops
// (AVX2, implied by -mavx512f) with two independent accumulators over 64
// codes per iteration. CPUs that also have AVX512BW get the true 512-bit
// kernels in distance_avx512bw.cc instead; these remain the F-without-BW
// fallback. Same exact-integer contract as the other levels: parity
// against scalar is bit-exact.
// ---------------------------------------------------------------------------

namespace {

inline int64_t HsumEpi32Pair(__m256i u, __m256i v) {
  const __m256i sum64 = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_cvtepi32_epi64(_mm256_castsi256_si128(u)),
                       _mm256_cvtepi32_epi64(_mm256_extracti128_si256(u, 1))),
      _mm256_add_epi64(_mm256_cvtepi32_epi64(_mm256_castsi256_si128(v)),
                       _mm256_cvtepi32_epi64(_mm256_extracti128_si256(v, 1))));
  __m128i s = _mm_add_epi64(_mm256_castsi256_si128(sum64),
                            _mm256_extracti128_si256(sum64, 1));
  s = _mm_add_epi64(s, _mm_unpackhi_epi64(s, s));
  return _mm_cvtsi128_si64(s);
}

inline __m256i Sq8L2Madd32(const int8_t* a, const int8_t* b, __m256i acc) {
  const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  const __m256i d_lo =
      _mm256_sub_epi16(_mm256_cvtepi8_epi16(_mm256_castsi256_si128(va)),
                       _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb)));
  const __m256i d_hi =
      _mm256_sub_epi16(_mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1)),
                       _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1)));
  acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d_lo, d_lo));
  return _mm256_add_epi32(acc, _mm256_madd_epi16(d_hi, d_hi));
}

inline __m256i Sq8DotMadd32(const int8_t* a, const int8_t* b, __m256i acc) {
  const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  acc = _mm256_add_epi32(
      acc, _mm256_madd_epi16(_mm256_cvtepi8_epi16(_mm256_castsi256_si128(va)),
                             _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb))));
  return _mm256_add_epi32(
      acc,
      _mm256_madd_epi16(_mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1)),
                        _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1))));
}

}  // namespace

int64_t Avx512Sq8L2(const int8_t* a, const int8_t* b, size_t dim) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 64 <= dim; i += 64) {
    acc0 = Sq8L2Madd32(a + i, b + i, acc0);
    acc1 = Sq8L2Madd32(a + i + 32, b + i + 32, acc1);
  }
  if (i + 32 <= dim) {
    acc0 = Sq8L2Madd32(a + i, b + i, acc0);
    i += 32;
  }
  int64_t total = HsumEpi32Pair(acc0, acc1);
  for (; i < dim; ++i) {
    const int32_t d = int32_t{a[i]} - int32_t{b[i]};
    total += d * d;
  }
  return total;
}

int64_t Avx512Sq8Dot(const int8_t* a, const int8_t* b, size_t dim) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 64 <= dim; i += 64) {
    acc0 = Sq8DotMadd32(a + i, b + i, acc0);
    acc1 = Sq8DotMadd32(a + i + 32, b + i + 32, acc1);
  }
  if (i + 32 <= dim) {
    acc0 = Sq8DotMadd32(a + i, b + i, acc0);
    i += 32;
  }
  int64_t total = HsumEpi32Pair(acc0, acc1);
  for (; i < dim; ++i) total += int32_t{a[i]} * int32_t{b[i]};
  return total;
}

}  // namespace tigervector::simd::internal

#endif  // TV_HAVE_AVX512_KERNELS

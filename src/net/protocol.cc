#include "net/protocol.h"

namespace tigervector::net {

namespace {

// Tags for the QueryParam variant on the wire.
constexpr uint8_t kParamInt = 0;
constexpr uint8_t kParamDouble = 1;
constexpr uint8_t kParamString = 2;
constexpr uint8_t kParamFloatVec = 3;

}  // namespace

// Stable wire ids, decoupled from the in-memory enum order so inserting a
// StatusCode never reinterprets old peers' errors.
uint32_t StatusCodeToWire(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 1;
    case StatusCode::kNotFound:
      return 2;
    case StatusCode::kAlreadyExists:
      return 3;
    case StatusCode::kOutOfRange:
      return 4;
    case StatusCode::kUnimplemented:
      return 5;
    case StatusCode::kInternal:
      return 6;
    case StatusCode::kAborted:
      return 7;
    case StatusCode::kIncompatible:
      return 8;
    case StatusCode::kIOError:
      return 9;
    case StatusCode::kParseError:
      return 10;
    case StatusCode::kSemanticError:
      return 11;
    case StatusCode::kDeadlineExceeded:
      return 12;
    case StatusCode::kUnavailable:
      return 13;
  }
  return 6;  // kInternal
}

StatusCode StatusCodeFromWire(uint32_t wire) {
  switch (wire) {
    case 0:
      return StatusCode::kOk;
    case 1:
      return StatusCode::kInvalidArgument;
    case 2:
      return StatusCode::kNotFound;
    case 3:
      return StatusCode::kAlreadyExists;
    case 4:
      return StatusCode::kOutOfRange;
    case 5:
      return StatusCode::kUnimplemented;
    case 6:
      return StatusCode::kInternal;
    case 7:
      return StatusCode::kAborted;
    case 8:
      return StatusCode::kIncompatible;
    case 9:
      return StatusCode::kIOError;
    case 10:
      return StatusCode::kParseError;
    case 11:
      return StatusCode::kSemanticError;
    case 12:
      return StatusCode::kDeadlineExceeded;
    case 13:
      return StatusCode::kUnavailable;
    default:
      return StatusCode::kInternal;
  }
}

std::string EncodeStatus(const Status& status) {
  WireWriter w;
  w.PutU32(StatusCodeToWire(status.code()));
  w.PutString(status.message());
  return w.Take();
}

Status DecodeStatus(const std::string& payload, Status* out) {
  WireReader r(payload);
  uint32_t code;
  std::string message;
  TV_RETURN_NOT_OK(r.GetU32(&code));
  TV_RETURN_NOT_OK(r.GetString(&message));
  *out = Status(StatusCodeFromWire(code), std::move(message));
  return Status::OK();
}

std::string EncodeQueryRequest(const QueryRequest& request) {
  WireWriter w;
  w.PutString(request.script);
  w.PutU32(static_cast<uint32_t>(request.params.size()));
  for (const auto& [name, value] : request.params) {
    w.PutString(name);
    if (const auto* i = std::get_if<int64_t>(&value)) {
      w.PutU8(kParamInt);
      w.PutI64(*i);
    } else if (const auto* d = std::get_if<double>(&value)) {
      w.PutU8(kParamDouble);
      w.PutF64(*d);
    } else if (const auto* s = std::get_if<std::string>(&value)) {
      w.PutU8(kParamString);
      w.PutString(*s);
    } else {
      w.PutU8(kParamFloatVec);
      w.PutFloatVec(std::get<std::vector<float>>(value));
    }
  }
  return w.Take();
}

Status DecodeQueryRequest(const std::string& payload, QueryRequest* out) {
  WireReader r(payload);
  TV_RETURN_NOT_OK(r.GetString(&out->script));
  uint32_t n_params;
  TV_RETURN_NOT_OK(r.GetU32(&n_params));
  out->params.clear();
  for (uint32_t i = 0; i < n_params; ++i) {
    std::string name;
    uint8_t tag;
    TV_RETURN_NOT_OK(r.GetString(&name));
    TV_RETURN_NOT_OK(r.GetU8(&tag));
    switch (tag) {
      case kParamInt: {
        int64_t v;
        TV_RETURN_NOT_OK(r.GetI64(&v));
        out->params[name] = v;
        break;
      }
      case kParamDouble: {
        double v;
        TV_RETURN_NOT_OK(r.GetF64(&v));
        out->params[name] = v;
        break;
      }
      case kParamString: {
        std::string v;
        TV_RETURN_NOT_OK(r.GetString(&v));
        out->params[name] = std::move(v);
        break;
      }
      case kParamFloatVec: {
        std::vector<float> v;
        TV_RETURN_NOT_OK(r.GetFloatVec(&v));
        out->params[name] = std::move(v);
        break;
      }
      default:
        return Status::IOError("unknown query parameter tag " +
                               std::to_string(tag));
    }
  }
  return Status::OK();
}

std::string EncodeScriptResult(const ScriptResult& result) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(result.prints.size()));
  for (const auto& printed : result.prints) {
    w.PutString(printed.name);
    w.PutU8(printed.is_distance_map ? 1 : 0);
    w.PutU32(static_cast<uint32_t>(printed.vertices.size()));
    for (VertexId vid : printed.vertices) w.PutU64(vid);
    w.PutU32(static_cast<uint32_t>(printed.distances.size()));
    for (const auto& [vid, dist] : printed.distances) {
      w.PutU64(vid);
      w.PutF32(dist);
    }
  }
  w.PutString(result.last_plan);
  w.PutU32(static_cast<uint32_t>(result.last_join_pairs.size()));
  for (const auto& pair : result.last_join_pairs) {
    w.PutU64(pair.source);
    w.PutU64(pair.target);
    w.PutF32(pair.distance);
  }
  w.PutU64(result.last_load_report.vertices_loaded);
  w.PutU64(result.last_load_report.embeddings_loaded);
  w.PutU64(result.last_load_report.rows_skipped);
  w.PutU32(static_cast<uint32_t>(result.last_load_report.warnings.size()));
  for (const auto& warning : result.last_load_report.warnings) {
    w.PutString(warning);
  }
  w.PutU8(result.profiled ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(result.profile_stage_micros.size()));
  for (const auto& [stage, micros] : result.profile_stage_micros) {
    w.PutString(stage);
    w.PutF64(micros);
  }
  w.PutU32(static_cast<uint32_t>(result.profile_counters.size()));
  for (const auto& [counter, value] : result.profile_counters) {
    w.PutString(counter);
    w.PutU64(value);
  }
  w.PutString(result.profile);
  w.PutU8(result.explained ? 1 : 0);
  w.PutU8(result.analyzed ? 1 : 0);
  w.PutString(result.explain);
  w.PutU64(result.flight_id);
  return w.Take();
}

Status DecodeScriptResult(const std::string& payload, ScriptResult* out) {
  WireReader r(payload);
  *out = ScriptResult();
  uint32_t n_prints;
  TV_RETURN_NOT_OK(r.GetU32(&n_prints));
  out->prints.resize(n_prints);
  for (auto& printed : out->prints) {
    TV_RETURN_NOT_OK(r.GetString(&printed.name));
    uint8_t is_map;
    TV_RETURN_NOT_OK(r.GetU8(&is_map));
    printed.is_distance_map = is_map != 0;
    uint32_t n_vertices;
    TV_RETURN_NOT_OK(r.GetU32(&n_vertices));
    printed.vertices.resize(n_vertices);
    for (auto& vid : printed.vertices) TV_RETURN_NOT_OK(r.GetU64(&vid));
    uint32_t n_distances;
    TV_RETURN_NOT_OK(r.GetU32(&n_distances));
    printed.distances.reserve(n_distances);
    for (uint32_t i = 0; i < n_distances; ++i) {
      uint64_t vid;
      float dist;
      TV_RETURN_NOT_OK(r.GetU64(&vid));
      TV_RETURN_NOT_OK(r.GetF32(&dist));
      printed.distances[vid] = dist;
    }
  }
  TV_RETURN_NOT_OK(r.GetString(&out->last_plan));
  uint32_t n_pairs;
  TV_RETURN_NOT_OK(r.GetU32(&n_pairs));
  out->last_join_pairs.resize(n_pairs);
  for (auto& pair : out->last_join_pairs) {
    TV_RETURN_NOT_OK(r.GetU64(&pair.source));
    TV_RETURN_NOT_OK(r.GetU64(&pair.target));
    TV_RETURN_NOT_OK(r.GetF32(&pair.distance));
  }
  uint64_t loaded, embedded, skipped;
  TV_RETURN_NOT_OK(r.GetU64(&loaded));
  TV_RETURN_NOT_OK(r.GetU64(&embedded));
  TV_RETURN_NOT_OK(r.GetU64(&skipped));
  out->last_load_report.vertices_loaded = static_cast<size_t>(loaded);
  out->last_load_report.embeddings_loaded = static_cast<size_t>(embedded);
  out->last_load_report.rows_skipped = static_cast<size_t>(skipped);
  uint32_t n_warnings;
  TV_RETURN_NOT_OK(r.GetU32(&n_warnings));
  out->last_load_report.warnings.resize(n_warnings);
  for (auto& warning : out->last_load_report.warnings) {
    TV_RETURN_NOT_OK(r.GetString(&warning));
  }
  uint8_t flag;
  TV_RETURN_NOT_OK(r.GetU8(&flag));
  out->profiled = flag != 0;
  uint32_t n_stages;
  TV_RETURN_NOT_OK(r.GetU32(&n_stages));
  for (uint32_t i = 0; i < n_stages; ++i) {
    std::string stage;
    double micros;
    TV_RETURN_NOT_OK(r.GetString(&stage));
    TV_RETURN_NOT_OK(r.GetF64(&micros));
    out->profile_stage_micros[stage] = micros;
  }
  uint32_t n_counters;
  TV_RETURN_NOT_OK(r.GetU32(&n_counters));
  for (uint32_t i = 0; i < n_counters; ++i) {
    std::string counter;
    uint64_t value;
    TV_RETURN_NOT_OK(r.GetString(&counter));
    TV_RETURN_NOT_OK(r.GetU64(&value));
    out->profile_counters[counter] = value;
  }
  TV_RETURN_NOT_OK(r.GetString(&out->profile));
  TV_RETURN_NOT_OK(r.GetU8(&flag));
  out->explained = flag != 0;
  TV_RETURN_NOT_OK(r.GetU8(&flag));
  out->analyzed = flag != 0;
  TV_RETURN_NOT_OK(r.GetString(&out->explain));
  TV_RETURN_NOT_OK(r.GetU64(&out->flight_id));
  if (!r.AtEnd()) {
    return Status::IOError("trailing bytes after ScriptResult payload");
  }
  return Status::OK();
}

}  // namespace tigervector::net

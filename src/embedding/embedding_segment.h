#ifndef TIGERVECTOR_EMBEDDING_EMBEDDING_SEGMENT_H_
#define TIGERVECTOR_EMBEDDING_EMBEDDING_SEGMENT_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "embedding/embedding_type.h"
#include "graph/types.h"
#include "hnsw/hnsw_index.h"
#include "hnsw/vector_index.h"
#include "util/bitmap.h"
#include "util/result.h"

namespace tigervector {

class ThreadPool;

// One committed vector mutation, the MVCC vector-delta record of the paper
// (Sec. 4.3): Action Flag (Upsert/Delete), ID, TID, Vector Value.
struct VectorDelta {
  enum class Action : uint8_t { kUpsert = 0, kDelete = 1 };
  Action action;
  VertexId id;
  Tid tid;
  std::vector<float> value;  // empty for deletes
};

// A sealed batch of vector deltas produced by the delta-merge vacuum. When
// the service is configured with a data directory, the batch is also
// persisted to `path` ("flushing deltas from the in-memory store to disk").
struct DeltaFile {
  // The segment's durable horizon when this file was sealed: the file holds
  // every delta the segment received in (base_tid, max_tid]. Recovery may
  // only re-attach a file whose base_tid equals the horizon already
  // reconstructed — otherwise there is a gap only WAL replay can fill, and
  // adopting the file would shadow that replay.
  Tid base_tid = 0;
  Tid max_tid = 0;
  std::vector<VectorDelta> deltas;
  std::string path;  // empty when in-memory only

  // Atomic (tmp + fsync + rename) write; a crash at any point leaves either
  // the previous file or no file, never a torn one.
  Status Save(const std::string& file_path);
  static Result<DeltaFile> Load(const std::string& file_path);
};

// Decoupled vector storage for one (vertex segment, embedding attribute)
// pair (paper Sec. 4.2, Figure 3): vectors follow the vertex partitioning
// scheme but live in their own embedding segment with a per-segment HNSW
// index, an in-memory delta store, and sealed delta files awaiting the
// index-merge vacuum.
class EmbeddingSegment {
 public:
  EmbeddingSegment(SegmentId segment_id, VertexId base_vid, uint32_t capacity,
                   const EmbeddingTypeInfo& info, const HnswParams& index_params);

  EmbeddingSegment(const EmbeddingSegment&) = delete;
  EmbeddingSegment& operator=(const EmbeddingSegment&) = delete;

  // --- Commit path (serialized by the engine commit lock) ---
  // Deltas at or below the durable horizon (already captured by an adopted
  // index snapshot or sealed delta file) are skipped, which makes WAL
  // replay over recovery artifacts idempotent.
  Status ApplyDelta(VectorDelta delta);

  // --- Vacuum (paper Fig. 4) ---
  // Step 1 (delta merge): seals in-memory deltas with tid <= up_to_tid into
  // a delta file; when `dir` is non-empty the file is persisted there as
  // `<file_stem>_seg<id>_tid<max>.delta` (stem defaults to "emb"). The file
  // is saved *before* the in-memory deltas are dropped: an I/O failure
  // leaves every committed delta in place.
  // Returns the number of deltas sealed.
  Result<size_t> DeltaMerge(Tid up_to_tid, const std::string& dir,
                            const std::string& file_stem = "emb");

  // Step 2 (index merge): folds sealed delta files with max_tid <=
  // up_to_tid into the vector index via UpdateItems, then retires them.
  // Returns the number of delta records merged.
  Result<size_t> IndexMerge(Tid up_to_tid, ThreadPool* pool);

  // Rebuilds the index from scratch out of the current live vectors
  // (snapshot + all pending deltas). Used when the update ratio is high
  // enough that rebuild beats incremental merge (paper Fig. 11).
  Status RebuildIndex(ThreadPool* pool);

  // --- Search ---
  struct SearchOptions {
    size_t k = 10;
    size_t ef = 64;
    FilterView filter;            // over global vids
    Tid read_tid = kMaxTid;       // visibility horizon
    // When a filter bitmap leaves fewer than this many valid points in the
    // segment, fall back to exact scan (paper Sec. 5.1). 0 disables.
    size_t bruteforce_threshold = 0;
    // Rerank multiple for quantized scans (candidates kept = factor * k);
    // 0 uses the process default (TV_RERANK_FACTOR, normally 3).
    size_t rerank_factor = 0;
  };

  struct SearchOutput {
    std::vector<SearchHit> hits;
    bool used_bruteforce = false;
    size_t delta_candidates = 0;
    bool used_quant = false;     // the index ranked on SQ8 codes
    size_t reranked = 0;         // candidates rescored with exact fp32
  };

  // Combines index-snapshot search with a brute-force scan over pending
  // deltas (paper Sec. 4.3: "Vector search queries combine index snapshot
  // search results with brute-force search results over vector deltas").
  SearchOutput TopKSearch(const float* query, const SearchOptions& options) const;

  // All hits with distance < threshold, same combination rule.
  SearchOutput RangeSearch(const float* query, float threshold,
                           const SearchOptions& options) const;

  // Latest visible vector for a vertex (checks deltas, then the index).
  Status GetEmbedding(VertexId vid, Tid read_tid, float* out) const;

  // --- Index snapshot persistence (paper Fig. 4: index snapshots are
  // on-disk artifacts the engine switches between) ---
  // Writes the current index snapshot to `path` (HNSW only).
  Status SaveIndexSnapshot(const std::string& path) const;
  // Replaces the index with a loaded snapshot; requires an empty pending
  // delta store (load happens at startup, before traffic).
  Status AdoptIndexSnapshot(std::unique_ptr<VectorIndex> index, Tid merged_tid);
  // Recovery: re-attaches a delta file sealed before a crash. Requires an
  // empty in-memory store and file.max_tid above the current durable
  // horizon; callers adopt files in ascending max_tid order.
  Status AdoptSealedFile(DeltaFile file);
  // Highest tid captured by on-disk artifacts (index snapshot or sealed
  // delta files); deltas at or below it are dropped by ApplyDelta.
  Tid durable_horizon() const;

  // --- Introspection ---
  SegmentId segment_id() const { return segment_id_; }
  VertexId base_vid() const { return base_vid_; }
  uint32_t capacity() const { return capacity_; }
  const EmbeddingTypeInfo& info() const { return info_; }
  Tid merged_tid() const;
  size_t pending_delta_count() const;   // in-memory + sealed, not yet merged
  size_t in_memory_delta_count() const;
  size_t sealed_file_count() const;
  size_t index_size() const;
  // Shared ownership so the caller's view stays valid across a concurrent
  // RebuildIndex swapping in a fresh index.
  std::shared_ptr<const VectorIndex> index() const;

 private:
  struct PendingState {
    // All deltas not yet folded into the index, in commit order.
    std::vector<VectorDelta> in_memory;
    std::vector<DeltaFile> sealed;
    // Earliest unmerged delta tid per id; drives the index-override check.
    std::unordered_map<VertexId, Tid> first_pending_tid;
  };

  // True when the index entry for `id` is superseded by a pending delta
  // visible at read_tid.
  bool OverriddenLocked(VertexId id, Tid read_tid) const;

  // Latest visible pending delta per id (delta-store scan).
  std::unordered_map<VertexId, const VectorDelta*> VisiblePendingLocked(
      Tid read_tid) const;

  void RebuildFirstPendingLocked();

  Tid DurableHorizonLocked() const;

  SegmentId segment_id_;
  VertexId base_vid_;
  uint32_t capacity_;
  EmbeddingTypeInfo info_;
  HnswParams index_params_;
  // Shared so IndexMerge can run UpdateItems outside the segment lock while
  // a concurrent RebuildIndex swaps in a fresh index: the merge keeps the
  // old index alive and detects the swap before retiring delta files.
  std::shared_ptr<VectorIndex> index_;
  Tid merged_tid_ = 0;

  mutable std::shared_mutex mu_;  // guards PendingState + merged_tid_
  PendingState pending_;
};

}  // namespace tigervector

#endif  // TIGERVECTOR_EMBEDDING_EMBEDDING_SEGMENT_H_

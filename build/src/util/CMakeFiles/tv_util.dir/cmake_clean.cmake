file(REMOVE_RECURSE
  "CMakeFiles/tv_util.dir/bitmap.cc.o"
  "CMakeFiles/tv_util.dir/bitmap.cc.o.d"
  "CMakeFiles/tv_util.dir/logging.cc.o"
  "CMakeFiles/tv_util.dir/logging.cc.o.d"
  "CMakeFiles/tv_util.dir/rng.cc.o"
  "CMakeFiles/tv_util.dir/rng.cc.o.d"
  "CMakeFiles/tv_util.dir/status.cc.o"
  "CMakeFiles/tv_util.dir/status.cc.o.d"
  "CMakeFiles/tv_util.dir/thread_pool.cc.o"
  "CMakeFiles/tv_util.dir/thread_pool.cc.o.d"
  "libtv_util.a"
  "libtv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

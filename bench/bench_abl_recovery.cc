// Ablation (crash recovery): WAL replay rate, and recovery time with index
// snapshots + sealed delta files adopted vs pure WAL replay. The WAL is the
// source of truth and always recovers alone, but replaying every vector
// write back into the delta store (and then re-vacuuming to rebuild the
// indexes) is the slow path; adopting the on-disk artifacts raises each
// segment's durable horizon so replay skips already-captured deltas and the
// indexes come back pre-built.
#include <filesystem>

#include "bench/bench_common.h"
#include "util/timer.h"

using namespace tigervector;
using namespace tigervector::bench;

namespace {

Database::Options MakeOptions(const std::string& dir) {
  Database::Options options;
  options.store.wal_path = dir + "/wal.log";
  options.store.wal_sync = false;  // measure replay, not load-time fsyncs
  options.embeddings.delta_dir = dir;
  return options;
}

double MeasureSearch(Database* db, const VectorDataset& dataset, size_t nq) {
  Timer timer;
  for (size_t q = 0; q < nq; ++q) {
    VectorSearchRequest request;
    request.attrs = {{"Item", "emb"}};
    request.query = dataset.QueryVector(q);
    request.k = 10;
    request.ef = 128;
    if (!db->embeddings()->TopKSearch(request).ok()) std::abort();
  }
  return timer.ElapsedMillis() / static_cast<double>(nq);
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(argc, argv);
  const size_t n = BaseN() / 2;
  const size_t nq = std::min<size_t>(QueryN(), 30);
  VectorDataset dataset = MakeSiftLike(n, nq);

  const std::string dir =
      std::filesystem::temp_directory_path() / "tv_bench_recovery";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string snap_dir = dir + "/snap";
  std::filesystem::create_directories(snap_dir);

  // --- Load phase: populate a database whose WAL we will recover from. ---
  EmbeddingTypeInfo info;
  info.dimension = dataset.dim;
  info.model = "bench";
  info.metric = Metric::kL2;
  size_t wal_records = 0;
  {
    auto db = std::make_unique<Database>(MakeOptions(dir));
    if (!db->schema()->CreateVertexType("Item", {}).ok()) std::abort();
    if (!db->schema()->AddEmbeddingAttr("Item", "emb", info).ok()) std::abort();
    constexpr size_t kBatch = 16;
    for (size_t i = 0; i < n; i += kBatch) {
      Transaction txn = db->Begin();
      for (size_t j = i; j < std::min(n, i + kBatch); ++j) {
        auto vid = txn.InsertVertex("Item", {});
        if (!vid.ok()) std::abort();
        std::vector<float> v(dataset.BaseVector(j),
                             dataset.BaseVector(j) + dataset.dim);
        if (!txn.SetEmbedding(*vid, "Item", "emb", std::move(v)).ok()) {
          std::abort();
        }
      }
      if (!txn.Commit().ok()) std::abort();
      ++wal_records;
    }
  }  // crash: no clean shutdown, nothing but the WAL survives

  PrintHeader("Ablation: recovery cost, pure WAL replay vs artifact adoption (" +
              std::to_string(n) + " vectors, " + std::to_string(wal_records) +
              " WAL records)");
  PrintRow({"mode", "recover s", "records/s", "vacuum s", "queryable s",
            "latency ms"});

  // --- Recovery A: WAL only. Every vector write is replayed into the
  // in-memory delta stores; the indexes must then be rebuilt by a vacuum
  // before searches run at index speed. ---
  double replay_rate = 0;
  {
    auto db = std::make_unique<Database>(MakeOptions(dir));
    if (!db->schema()->CreateVertexType("Item", {}).ok()) std::abort();
    if (!db->schema()->AddEmbeddingAttr("Item", "emb", info).ok()) std::abort();
    Timer recover;
    Database::RecoveryOptions ropts;
    ropts.wal_path = dir + "/wal.log";
    ropts.delta_dir = "";  // ignore sealed delta files for the pure-replay row
    auto report = db->Recover(ropts);
    if (!report.ok()) std::abort();
    const double recover_s = recover.ElapsedSeconds();
    replay_rate = static_cast<double>(report->wal_records_replayed) /
                  std::max(recover_s, 1e-9);
    Timer vac;
    if (!db->Vacuum().ok()) std::abort();
    const double vacuum_s = vac.ElapsedSeconds();
    PrintRow({"wal replay only", Fmt(recover_s, 3), Fmt(replay_rate, 0),
              Fmt(vacuum_s, 3), Fmt(recover_s + vacuum_s, 3),
              Fmt(MeasureSearch(db.get(), dataset, nq), 3)});

    // Leave behind the artifacts for recovery B: index snapshots covering
    // the full load, plus a small sealed-but-unmerged update tail.
    if (!db->embeddings()->SaveIndexSnapshots(snap_dir, nullptr).ok()) {
      std::abort();
    }
  }  // crash again

  // --- Recovery B: adopt snapshots + sealed delta files, then replay. The
  // WAL scan still runs end to end, but the vector deltas it carries are
  // below the durable horizon and are skipped, and the indexes load
  // pre-built — no vacuum needed before index-speed searches. ---
  {
    auto db = std::make_unique<Database>(MakeOptions(dir));
    if (!db->schema()->CreateVertexType("Item", {}).ok()) std::abort();
    if (!db->schema()->AddEmbeddingAttr("Item", "emb", info).ok()) std::abort();
    Timer recover;
    Database::RecoveryOptions ropts;
    ropts.wal_path = dir + "/wal.log";
    ropts.snapshot_dir = snap_dir;
    ropts.delta_dir = dir;
    auto report = db->Recover(ropts);
    if (!report.ok()) std::abort();
    const double recover_s = recover.ElapsedSeconds();
    PrintRow({"snapshots + deltas", Fmt(recover_s, 3),
              Fmt(static_cast<double>(report->wal_records_replayed) /
                      std::max(recover_s, 1e-9),
                  0),
              "0 (pre-built)", Fmt(recover_s, 3),
              Fmt(MeasureSearch(db.get(), dataset, nq), 3)});
    std::printf(
        "\nadopted %zu snapshots, %zu sealed delta files; pending deltas "
        "after recovery: %zu\n",
        report->embeddings.snapshots_adopted,
        report->embeddings.delta_files_adopted,
        db->embeddings()->TotalPendingDeltas());
  }

  std::filesystem::remove_all(dir);
  return 0;
}

#include "util/slowlog.h"

#include <memory>
#include <mutex>

#include "obs/flight_recorder.h"
#include "util/io.h"

namespace tigervector {

namespace {

std::mutex g_slowlog_mu;
std::unique_ptr<io::File> g_slowlog_file;

}  // namespace

Status InstallSlowLogFile(const std::string& path) {
  auto open = io::File::Open(path, "ab", "slowlog.append");
  if (!open.ok()) return open.status();
  {
    std::lock_guard<std::mutex> lock(g_slowlog_mu);
    g_slowlog_file = std::make_unique<io::File>(std::move(open).value());
  }
  obs::FlightRecorder::Global().SetSlowLogSink([](const std::string& line) {
    std::lock_guard<std::mutex> lock(g_slowlog_mu);
    if (g_slowlog_file == nullptr) return;
    // Append + flush per record; a failed write detaches the sink so one
    // bad disk does not turn every slow query into an error cascade.
    if (!g_slowlog_file->Write(line.data(), line.size()).ok() ||
        !g_slowlog_file->Write("\n", 1).ok() || !g_slowlog_file->Flush().ok()) {
      g_slowlog_file.reset();
    }
  });
  return Status::OK();
}

void CloseSlowLog() {
  obs::FlightRecorder::Global().SetSlowLogSink(nullptr);
  std::lock_guard<std::mutex> lock(g_slowlog_mu);
  g_slowlog_file.reset();
}

}  // namespace tigervector

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "loader/csv.h"
#include "loader/loading_job.h"
#include "query/session.h"

namespace tigervector {
namespace {

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
}

// ---------------- CSV ----------------

TEST(CsvTest, SplitsSimpleLine) {
  auto fields = SplitCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvTest, HandlesQuotedFieldsAndEscapes) {
  auto fields = SplitCsvLine("1,\"hello, world\",\"say \"\"hi\"\"\"");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "hello, world");
  EXPECT_EQ(fields[2], "say \"hi\"");
}

TEST(CsvTest, EmptyFields) {
  auto fields = SplitCsvLine("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(CsvTest, ReadFileSkipsHeaderAndCrLf) {
  const std::string path = ::testing::TempDir() + "/csv_test.csv";
  WriteFile(path, "id,name\r\n1,alice\r\n2,bob\n");
  CsvOptions options;
  options.skip_header = true;
  auto rows = ReadCsvFile(path, options);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][1], "alice");
  EXPECT_EQ((*rows)[1][0], "2");
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  EXPECT_FALSE(ReadCsvFile("/no/such/file.csv").ok());
}

TEST(CsvTest, ParseVectorField) {
  auto v = ParseVectorField("1.5:-2:0.25", ':');
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, (std::vector<float>{1.5f, -2.0f, 0.25f}));
  EXPECT_FALSE(ParseVectorField("1.5::2", ':').ok());
  EXPECT_FALSE(ParseVectorField("1.5:x", ':').ok());
  auto single = ParseVectorField("3.25", ':');
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->size(), 1u);
}

// ---------------- LoadingJob ----------------

class LoadingJobFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    ASSERT_TRUE(db_->schema()
                    ->CreateVertexType("Post", {{"id", AttrType::kInt},
                                                {"author", AttrType::kString},
                                                {"content", AttrType::kString}})
                    .ok());
    EmbeddingTypeInfo info;
    info.dimension = 3;
    info.model = "M";
    info.metric = Metric::kL2;
    ASSERT_TRUE(db_->schema()->AddEmbeddingAttr("Post", "content_emb", info).ok());
    vertex_file_ = ::testing::TempDir() + "/posts.csv";
    emb_file_ = ::testing::TempDir() + "/post_embs.csv";
    WriteFile(vertex_file_,
              "1,alice,hello world\n"
              "2,bob,graphs are great\n"
              "3,carol,vectors too\n");
    WriteFile(emb_file_,
              "1,0.1:0.2:0.3\n"
              "2,1:1:1\n"
              "3,2:2:2\n");
  }
  void TearDown() override {
    std::remove(vertex_file_.c_str());
    std::remove(emb_file_.c_str());
  }

  std::unique_ptr<Database> db_;
  std::string vertex_file_;
  std::string emb_file_;
};

TEST_F(LoadingJobFixture, LoadsVerticesAndEmbeddingsFromSeparateFiles) {
  LoadingJob job("j1", "g1");
  job.AddStep(VertexLoadStep{vertex_file_, "Post", {"id", "author", "content"}});
  job.AddStep(EmbeddingLoadStep{emb_file_, "Post", "content_emb", ':'});
  auto report = job.Run(db_.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->vertices_loaded, 3u);
  EXPECT_EQ(report->embeddings_loaded, 3u);
  EXPECT_EQ(report->rows_skipped, 0u);

  // The attributes landed.
  const auto* ids = job.IdMap("Post");
  ASSERT_NE(ids, nullptr);
  const Tid tid = db_->store()->visible_tid();
  auto author = db_->store()->GetAttr(ids->at("2"), "author", tid);
  ASSERT_TRUE(author.ok());
  EXPECT_EQ(std::get<std::string>(*author), "bob");
  // The embeddings landed (searchable after vacuum).
  ASSERT_TRUE(db_->Vacuum().ok());
  auto hits = db_->VectorSearch({{"Post", "content_emb"}}, {1, 1, 1}, 1);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->count(ids->at("2")), 1u);
}

TEST_F(LoadingJobFixture, UnknownExternalIdSkippedWithWarning) {
  WriteFile(emb_file_, "1,0:0:0\n99,1:1:1\n");
  LoadingJob job("j1", "g1");
  job.AddStep(VertexLoadStep{vertex_file_, "Post", {"id", "author", "content"}});
  job.AddStep(EmbeddingLoadStep{emb_file_, "Post", "content_emb", ':'});
  auto report = job.Run(db_.get());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->embeddings_loaded, 1u);
  EXPECT_EQ(report->rows_skipped, 1u);
  EXPECT_FALSE(report->warnings.empty());
}

TEST_F(LoadingJobFixture, MalformedRowsSkipped) {
  WriteFile(vertex_file_, "1,alice,ok\nnot_an_int,bob,bad id\n3,carol,ok\n");
  LoadingJob job("j1", "g1");
  job.AddStep(VertexLoadStep{vertex_file_, "Post", {"id", "author", "content"}});
  auto report = job.Run(db_.get());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->vertices_loaded, 2u);
  EXPECT_EQ(report->rows_skipped, 1u);
}

TEST_F(LoadingJobFixture, EmbeddingStepWithoutVertexStepFails) {
  LoadingJob job("j1", "g1");
  job.AddStep(EmbeddingLoadStep{emb_file_, "Post", "content_emb", ':'});
  EXPECT_FALSE(job.Run(db_.get()).ok());
}

TEST_F(LoadingJobFixture, WrongDimensionVectorSkipsTransactionally) {
  WriteFile(emb_file_, "1,0.1:0.2\n");  // dim 2, expected 3
  LoadingJob job("j1", "g1");
  job.AddStep(VertexLoadStep{vertex_file_, "Post", {"id", "author", "content"}});
  job.AddStep(EmbeddingLoadStep{emb_file_, "Post", "content_emb", ':'});
  // Dimension mismatch is a hard error from the transaction layer.
  EXPECT_FALSE(job.Run(db_.get()).ok());
}

TEST_F(LoadingJobFixture, GsqlLoadingJobStatement) {
  GsqlSession session(db_.get());
  const std::string script =
      "CREATE LOADING JOB j1 FOR GRAPH g1 {"
      "  LOAD \"" + vertex_file_ + "\" TO VERTEX Post VALUES (id, author, content);"
      "  LOAD \"" + emb_file_ + "\" TO EMBEDDING ATTRIBUTE content_emb"
      "    ON VERTEX Post VALUES (id, split(content_emb, \":\"));"
      "}";
  auto result = session.Run(script);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->last_load_report.vertices_loaded, 3u);
  EXPECT_EQ(result->last_load_report.embeddings_loaded, 3u);
  // Loaded data is immediately queryable.
  QueryParams params;
  params["qv"] = std::vector<float>{2, 2, 2};
  auto topk = session.Run(
      "R = SELECT s FROM (s:Post) ORDER BY VECTOR_DIST(s.content_emb, $qv)"
      " LIMIT 1; PRINT R;",
      params);
  ASSERT_TRUE(topk.ok()) << topk.status().ToString();
  EXPECT_EQ(topk->prints[0].vertices.size(), 1u);
}

TEST_F(LoadingJobFixture, GsqlLoadingJobParseErrors) {
  GsqlSession session(db_.get());
  EXPECT_FALSE(session.Run("CREATE LOADING JOB j FOR GRAPH g { LOAD }").ok());
  EXPECT_FALSE(
      session.Run("CREATE LOADING JOB j FOR GRAPH g { LOAD f TO VERTEX }").ok());
}

}  // namespace
}  // namespace tigervector

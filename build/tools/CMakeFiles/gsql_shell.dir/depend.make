# Empty dependencies file for gsql_shell.
# This may be replaced when dependencies are built.

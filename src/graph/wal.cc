#include "graph/wal.h"

#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace tigervector {

namespace {

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU64(out, s.size());
  out->insert(out->end(), s.begin(), s.end());
}

void PutValue(std::vector<uint8_t>* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.index()));
  switch (v.index()) {
    case 0:
      PutU64(out, static_cast<uint64_t>(std::get<int64_t>(v)));
      break;
    case 1: {
      uint64_t bits;
      const double d = std::get<double>(v);
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(out, bits);
      break;
    }
    case 2:
      PutString(out, std::get<std::string>(v));
      break;
    case 3:
      PutU8(out, std::get<bool>(v) ? 1 : 0);
      break;
  }
}

// Bounds-checked little-endian reader; all Get* return false on underflow.
struct Reader {
  const uint8_t* data;
  size_t len;
  size_t pos = 0;

  bool GetU8(uint8_t* v) {
    if (pos + 1 > len) return false;
    *v = data[pos++];
    return true;
  }
  bool GetU16(uint16_t* v) {
    if (pos + 2 > len) return false;
    *v = static_cast<uint16_t>(data[pos] | (data[pos + 1] << 8));
    pos += 2;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (pos + 8 > len) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) out |= uint64_t{data[pos + i]} << (8 * i);
    pos += 8;
    *v = out;
    return true;
  }
  bool GetString(std::string* s) {
    uint64_t n;
    if (!GetU64(&n) || pos + n > len) return false;
    s->assign(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return true;
  }
  bool GetValue(Value* v) {
    uint8_t tag;
    if (!GetU8(&tag)) return false;
    switch (tag) {
      case 0: {
        uint64_t raw;
        if (!GetU64(&raw)) return false;
        *v = static_cast<int64_t>(raw);
        return true;
      }
      case 1: {
        uint64_t bits;
        if (!GetU64(&bits)) return false;
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        *v = d;
        return true;
      }
      case 2: {
        std::string s;
        if (!GetString(&s)) return false;
        *v = std::move(s);
        return true;
      }
      case 3: {
        uint8_t b;
        if (!GetU8(&b)) return false;
        *v = (b != 0);
        return true;
      }
      default:
        return false;
    }
  }
};

}  // namespace

std::vector<uint8_t> WriteAheadLog::EncodeMutations(
    const std::vector<Mutation>& mutations) {
  std::vector<uint8_t> out;
  PutU64(&out, mutations.size());
  for (const Mutation& m : mutations) {
    PutU8(&out, static_cast<uint8_t>(m.kind));
    PutU64(&out, m.vid);
    switch (m.kind) {
      case Mutation::Kind::kInsertVertex:
        PutU16(&out, m.vtype);
        PutU64(&out, m.attrs.size());
        for (const Value& v : m.attrs) PutValue(&out, v);
        break;
      case Mutation::Kind::kSetAttr:
        PutU16(&out, m.attr_idx);
        PutValue(&out, m.value);
        break;
      case Mutation::Kind::kInsertEdge:
      case Mutation::Kind::kDeleteEdge:
        PutU16(&out, m.etype);
        PutU64(&out, m.dst);
        break;
      case Mutation::Kind::kDeleteVertex:
        break;
      case Mutation::Kind::kUpsertEmbedding: {
        PutString(&out, m.emb_attr);
        PutU64(&out, m.embedding.size());
        const size_t bytes = m.embedding.size() * sizeof(float);
        const size_t at = out.size();
        out.resize(at + bytes);
        std::memcpy(out.data() + at, m.embedding.data(), bytes);
        break;
      }
      case Mutation::Kind::kDeleteEmbedding:
        PutString(&out, m.emb_attr);
        break;
    }
  }
  return out;
}

Result<std::vector<Mutation>> WriteAheadLog::DecodeMutations(const uint8_t* data,
                                                             size_t len) {
  Reader r{data, len};
  uint64_t count;
  if (!r.GetU64(&count)) return Status::IOError("wal: truncated mutation count");
  std::vector<Mutation> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Mutation m;
    uint8_t kind;
    if (!r.GetU8(&kind) || !r.GetU64(&m.vid)) {
      return Status::IOError("wal: truncated mutation header");
    }
    m.kind = static_cast<Mutation::Kind>(kind);
    bool ok = true;
    switch (m.kind) {
      case Mutation::Kind::kInsertVertex: {
        uint64_t n = 0;
        ok = r.GetU16(&m.vtype) && r.GetU64(&n);
        for (uint64_t j = 0; ok && j < n; ++j) {
          Value v;
          ok = r.GetValue(&v);
          if (ok) m.attrs.push_back(std::move(v));
        }
        break;
      }
      case Mutation::Kind::kSetAttr:
        ok = r.GetU16(&m.attr_idx) && r.GetValue(&m.value);
        break;
      case Mutation::Kind::kInsertEdge:
      case Mutation::Kind::kDeleteEdge:
        ok = r.GetU16(&m.etype) && r.GetU64(&m.dst);
        break;
      case Mutation::Kind::kDeleteVertex:
        break;
      case Mutation::Kind::kUpsertEmbedding: {
        uint64_t n = 0;
        ok = r.GetString(&m.emb_attr) && r.GetU64(&n);
        if (ok) {
          const size_t bytes = n * sizeof(float);
          if (r.pos + bytes > r.len) {
            ok = false;
          } else {
            m.embedding.resize(n);
            std::memcpy(m.embedding.data(), r.data + r.pos, bytes);
            r.pos += bytes;
          }
        }
        break;
      }
      case Mutation::Kind::kDeleteEmbedding:
        ok = r.GetString(&m.emb_attr);
        break;
      default:
        ok = false;
    }
    if (!ok) return Status::IOError("wal: truncated mutation body");
    out.push_back(std::move(m));
  }
  return out;
}

Status WriteAheadLog::Open(const std::string& path, bool sync_on_commit) {
  auto file = io::File::Open(path, "ab", "wal.append");
  if (!file.ok()) return Status::IOError("cannot open wal at " + path);
  file_ = std::move(file).value();
  sync_on_commit_ = sync_on_commit;
  broken_ = false;
  return Status::OK();
}

Status WriteAheadLog::Append(Tid tid, const std::vector<Mutation>& mutations) {
  TV_SPAN("wal.append");
  Timer timer;
  // A failed append can leave a partial record as the log tail. Anything
  // appended after that garbage sits beyond the point where recovery stops
  // scanning, so an acknowledged commit would be silently unrecoverable.
  // Refuse until the log is reopened (recovery truncates the torn tail).
  if (broken_) {
    return Status::IOError("wal rejected append: earlier append failure left "
                           "an undefined tail; reopen the log first");
  }
  const std::vector<uint8_t> payload = EncodeMutations(mutations);
  ++appended_;
  bytes_ += payload.size() + 12;
  TV_COUNTER_INC("tv.wal.appends_total");
  TV_COUNTER_ADD("tv.wal.bytes_total", payload.size() + 12);
  if (!file_.is_open()) {
    TV_HISTOGRAM_OBSERVE("tv.wal.append_seconds", timer.ElapsedSeconds());
    return Status::OK();  // in-memory mode
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  Status st = file_.Write(&len, sizeof(len));
  if (st.ok()) st = file_.Write(&tid, sizeof(tid));
  if (st.ok() && !payload.empty()) st = file_.Write(payload.data(), payload.size());
  if (st.ok()) {
    // sync_on_commit: the commit protocol promises the record is on stable
    // storage before the transaction is acknowledged, so a buffered flush
    // is not enough — fsync for real.
    st = sync_on_commit_ ? Sync() : file_.Flush();
    TV_COUNTER_INC("tv.wal.flushes_total");
  }
  if (!st.ok()) {
    broken_ = true;
    TV_COUNTER_INC("tv.wal.append_failures_total");
  }
  TV_HISTOGRAM_OBSERVE("tv.wal.append_seconds", timer.ElapsedSeconds());
  return st;
}

Status WriteAheadLog::Sync() {
  if (!file_.is_open()) return Status::OK();
  TV_RETURN_NOT_OK(file_.Sync());
  ++fsyncs_;
  TV_COUNTER_INC("tv.wal.fsyncs_total");
  return Status::OK();
}

Result<WriteAheadLog::ReadOutcome> WriteAheadLog::ReadLog(const std::string& path) {
  auto open = io::File::Open(path, "rb");
  if (!open.ok()) return Status::IOError("cannot open wal at " + path);
  io::File f = std::move(open).value();
  ReadOutcome out;
  uint64_t offset = 0;
  for (;;) {
    // Any short read or undecodable payload from here to the end of the
    // current record is a torn tail: keep the complete prefix, remember
    // where it ends, and stop. A crash mid-append is expected to leave
    // exactly this artifact, so it must not fail recovery.
    uint32_t len;
    Tid tid;
    auto got = f.ReadSome(&len, sizeof(len));
    if (!got.ok()) return got.status();
    if (*got == 0) break;  // clean EOF on a record boundary
    if (*got < sizeof(len)) {
      out.truncated = true;
      break;
    }
    if (!f.Read(&tid, sizeof(tid)).ok()) {
      out.truncated = true;
      break;
    }
    std::vector<uint8_t> payload(len);
    if (len > 0 && !f.Read(payload.data(), len).ok()) {
      out.truncated = true;
      break;
    }
    auto mutations = DecodeMutations(payload.data(), payload.size());
    if (!mutations.ok()) {
      out.truncated = true;
      break;
    }
    offset += sizeof(len) + sizeof(tid) + len;
    out.records.push_back(Record{tid, std::move(mutations).value()});
  }
  out.valid_bytes = offset;
  if (out.truncated) TV_COUNTER_INC("tv.wal.torn_tails_total");
  return out;
}

Result<std::vector<WriteAheadLog::Record>> WriteAheadLog::ReadAll(
    const std::string& path) {
  auto outcome = ReadLog(path);
  if (!outcome.ok()) return outcome.status();
  return std::move(outcome->records);
}

}  // namespace tigervector

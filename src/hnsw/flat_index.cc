#include "hnsw/flat_index.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <queue>

namespace tigervector {

Status FlatIndex::AddPoint(uint64_t label, const float* vec) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = slots_.find(label);
  if (it != slots_.end()) {
    std::memcpy(data_.data() + it->second.offset, vec, dim_ * sizeof(float));
    if (it->second.deleted) {
      it->second.deleted = false;
      ++live_;
    }
    return Status::OK();
  }
  Slot slot;
  slot.offset = data_.size();
  data_.insert(data_.end(), vec, vec + dim_);
  order_.push_back(label);
  slots_.emplace(label, slot);
  ++live_;
  return Status::OK();
}

Status FlatIndex::UpdateItems(const std::vector<VectorIndexUpdate>& items,
                              ThreadPool* pool) {
  (void)pool;  // linear structure; batch applies sequentially
  for (const VectorIndexUpdate& item : items) {
    if (item.is_delete) {
      Status st = MarkDeleted(item.label);
      if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
    } else {
      TV_RETURN_NOT_OK(AddPoint(item.label, item.value.data()));
    }
  }
  return Status::OK();
}

Status FlatIndex::MarkDeleted(uint64_t label) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = slots_.find(label);
  if (it == slots_.end()) {
    return Status::NotFound("label " + std::to_string(label) + " not in index");
  }
  if (!it->second.deleted) {
    it->second.deleted = true;
    --live_;
  }
  return Status::OK();
}

bool FlatIndex::Contains(uint64_t label) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return slots_.count(label) > 0;
}

bool FlatIndex::IsDeleted(uint64_t label) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = slots_.find(label);
  return it == slots_.end() || it->second.deleted;
}

Status FlatIndex::GetEmbedding(uint64_t label, float* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = slots_.find(label);
  if (it == slots_.end()) {
    return Status::NotFound("label " + std::to_string(label) + " not in index");
  }
  std::memcpy(out, data_.data() + it->second.offset, dim_ * sizeof(float));
  return Status::OK();
}

std::vector<SearchHit> FlatIndex::TopKSearch(const float* query, size_t k, size_t ef,
                                             const FilterView& filter) const {
  (void)ef;  // exact index: no accuracy knob
  return BruteForceSearch(query, k, filter);
}

std::vector<SearchHit> FlatIndex::RangeSearch(const float* query, float threshold,
                                              size_t initial_k, size_t ef,
                                              const FilterView& filter) const {
  (void)initial_k;
  (void)ef;
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<SearchHit> out;
  for (size_t row = 0; row < order_.size(); ++row) {
    const uint64_t label = order_[row];
    auto it = slots_.find(label);
    if (it->second.deleted || !filter.Accepts(label)) continue;
    const float d =
        ComputeDistance(metric_, query, data_.data() + it->second.offset, dim_);
    if (d < threshold) out.push_back(SearchHit{d, label});
  }
  std::sort(out.begin(), out.end(), [](const SearchHit& a, const SearchHit& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.label < b.label;
  });
  return out;
}

std::vector<SearchHit> FlatIndex::BruteForceSearch(const float* query, size_t k,
                                                   const FilterView& filter) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  struct Entry {
    float distance;
    uint64_t label;
    bool operator<(const Entry& o) const {
      if (distance != o.distance) return distance < o.distance;
      return label < o.label;
    }
  };
  std::priority_queue<Entry> heap;
  for (size_t row = 0; row < order_.size(); ++row) {
    const uint64_t label = order_[row];
    auto it = slots_.find(label);
    if (it->second.deleted || !filter.Accepts(label)) continue;
    const float d =
        ComputeDistance(metric_, query, data_.data() + it->second.offset, dim_);
    if (heap.size() < k) {
      heap.push(Entry{d, label});
    } else if (k > 0 && Entry{d, label} < heap.top()) {
      heap.pop();
      heap.push(Entry{d, label});
    }
  }
  std::vector<SearchHit> out;
  out.reserve(heap.size());
  while (!heap.empty()) {
    out.push_back(SearchHit{heap.top().distance, heap.top().label});
    heap.pop();
  }
  std::reverse(out.begin(), out.end());
  return out;
}

size_t FlatIndex::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return live_;
}

std::vector<uint64_t> FlatIndex::Labels() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<uint64_t> out;
  out.reserve(live_);
  for (const auto& [label, slot] : slots_) {
    if (!slot.deleted) out.push_back(label);
  }
  return out;
}

}  // namespace tigervector

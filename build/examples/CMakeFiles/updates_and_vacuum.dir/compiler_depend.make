# Empty compiler generated dependencies file for updates_and_vacuum.
# This may be replaced when dependencies are built.

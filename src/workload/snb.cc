#include "workload/snb.h"

#include <algorithm>

#include "util/rng.h"

namespace tigervector {

namespace {

const char* kFirstNames[] = {"Alice", "Bob",   "Carol", "Dave",  "Erin",
                             "Frank", "Grace", "Heidi", "Ivan",  "Judy",
                             "Mallory", "Niaj", "Olivia", "Peggy", "Rupert",
                             "Sybil", "Trent", "Uma",   "Victor", "Wendy"};
const char* kLanguages[] = {"English", "Chinese", "Spanish", "German", "Hindi"};

}  // namespace

Status CreateSnbSchema(Database* db, const SnbConfig& config) {
  Schema* schema = db->schema();
  TV_RETURN_NOT_OK(schema
                       ->CreateVertexType("Person",
                                          {{"firstName", AttrType::kString},
                                           {"lastName", AttrType::kString},
                                           {"cid", AttrType::kInt}})
                       .status());
  TV_RETURN_NOT_OK(schema
                       ->CreateVertexType("Post",
                                          {{"content", AttrType::kString},
                                           {"language", AttrType::kString},
                                           {"length", AttrType::kInt},
                                           {"creationDate", AttrType::kInt},
                                           {"tag", AttrType::kInt}})
                       .status());
  TV_RETURN_NOT_OK(schema
                       ->CreateVertexType("Comment",
                                          {{"content", AttrType::kString},
                                           {"length", AttrType::kInt},
                                           {"creationDate", AttrType::kInt},
                                           {"tag", AttrType::kInt}})
                       .status());
  TV_RETURN_NOT_OK(
      schema->CreateVertexType("Country", {{"name", AttrType::kString}}).status());

  TV_RETURN_NOT_OK(
      schema->CreateEdgeType("knows", "Person", "Person", /*directed=*/false)
          .status());
  TV_RETURN_NOT_OK(
      schema->CreateEdgeType("hasCreator", "Post", "Person").status());
  TV_RETURN_NOT_OK(schema->CreateEdgeType("replyOf", "Comment", "Post").status());
  TV_RETURN_NOT_OK(
      schema->CreateEdgeType("isLocatedIn", "Person", "Country").status());

  // One embedding space shared by Post and Comment content embeddings
  // (paper Sec. 4.1, Figure 2) so multi-type vector search is allowed.
  EmbeddingTypeInfo info;
  info.dimension = config.embedding_dim;
  info.model = "SIFT";
  info.index = VectorIndexType::kHnsw;
  info.data_type = VectorDataType::kFloat32;
  info.metric = Metric::kL2;
  TV_RETURN_NOT_OK(schema->CreateEmbeddingSpace("snb_space", info));
  TV_RETURN_NOT_OK(
      schema->AddEmbeddingAttrInSpace("Post", "content_emb", "snb_space"));
  TV_RETURN_NOT_OK(
      schema->AddEmbeddingAttrInSpace("Comment", "content_emb", "snb_space"));
  return Status::OK();
}

Status LoadSnb(Database* db, const SnbConfig& config, SnbStats* stats) {
  Rng rng(config.seed);
  const size_t num_messages =
      config.num_persons * config.posts_per_person * (1 + config.comments_per_post);
  VectorDataset vectors =
      MakeSiftLikeWithDim(config.embedding_dim, num_messages, 0, config.seed + 1);
  size_t next_vector = 0;
  auto next_embedding = [&]() {
    std::vector<float> v(vectors.BaseVector(next_vector % vectors.num_base),
                         vectors.BaseVector(next_vector % vectors.num_base) +
                             config.embedding_dim);
    ++next_vector;
    return v;
  };

  // Countries.
  {
    Transaction txn = db->Begin();
    for (size_t i = 0; i < config.num_countries; ++i) {
      auto vid = txn.InsertVertex("Country", {std::string("Country") +
                                              std::to_string(i)});
      if (!vid.ok()) return vid.status();
      stats->countries.push_back(*vid);
    }
    TV_RETURN_NOT_OK(txn.Commit().status());
  }

  // Persons (community-structured), batched.
  const size_t communities = std::max<size_t>(1, config.communities);
  auto community_of = [&](size_t i) {
    return i * communities / std::max<size_t>(1, config.num_persons);
  };
  {
    Transaction txn = db->Begin();
    for (size_t i = 0; i < config.num_persons; ++i) {
      const char* first =
          i == 0 ? "Alice"
                 : kFirstNames[rng.NextBounded(sizeof(kFirstNames) /
                                               sizeof(kFirstNames[0]))];
      auto vid = txn.InsertVertex(
          "Person",
          {std::string(first), std::string("P") + std::to_string(i), int64_t{-1}});
      if (!vid.ok()) return vid.status();
      stats->persons.push_back(*vid);
      TV_RETURN_NOT_OK(txn.InsertEdge(
          "isLocatedIn", *vid,
          stats->countries[rng.NextBounded(config.num_countries)]));
      if ((i + 1) % config.batch_size == 0) {
        TV_RETURN_NOT_OK(txn.Commit().status());
        txn = db->Begin();
      }
    }
    TV_RETURN_NOT_OK(txn.Commit().status());
  }

  // knows edges: mostly intra-community.
  {
    Transaction txn = db->Begin();
    size_t edges = 0;
    for (size_t i = 0; i < config.num_persons; ++i) {
      const size_t degree = config.avg_knows / 2 + rng.NextBounded(2);
      for (size_t e = 0; e < degree; ++e) {
        size_t j;
        if (rng.NextBounded(10) < 9) {
          // Peer within the same community block.
          const size_t c = community_of(i);
          const size_t begin = c * config.num_persons / communities;
          const size_t end =
              std::min(config.num_persons, (c + 1) * config.num_persons / communities);
          if (end - begin < 2) continue;
          j = begin + rng.NextBounded(end - begin);
        } else {
          j = rng.NextBounded(config.num_persons);
        }
        if (j == i) continue;
        TV_RETURN_NOT_OK(
            txn.InsertEdge("knows", stats->persons[i], stats->persons[j]));
        ++edges;
        if (edges % (config.batch_size * 4) == 0) {
          TV_RETURN_NOT_OK(txn.Commit().status());
          txn = db->Begin();
        }
      }
    }
    TV_RETURN_NOT_OK(txn.Commit().status());
    stats->num_knows_edges = edges;
  }

  // Posts with embeddings (atomically committed with their vertex).
  int64_t date = 1'000'000;
  {
    Transaction txn = db->Begin();
    size_t count = 0;
    for (size_t i = 0; i < config.num_persons; ++i) {
      for (size_t p = 0; p < config.posts_per_person; ++p) {
        const std::string lang =
            kLanguages[rng.NextBounded(10) < 6 ? 0
                                               : 1 + rng.NextBounded(4)];
        auto vid = txn.InsertVertex(
            "Post", {std::string("post by ") + std::to_string(i), lang,
                     static_cast<int64_t>(rng.NextBounded(2000)), date++,
                     static_cast<int64_t>(rng.NextBounded(config.num_tags))});
        if (!vid.ok()) return vid.status();
        stats->posts.push_back(*vid);
        TV_RETURN_NOT_OK(txn.InsertEdge("hasCreator", *vid, stats->persons[i]));
        TV_RETURN_NOT_OK(txn.InsertEdge(
            "isLocatedIn", *vid,
            stats->countries[rng.NextBounded(config.num_countries)]));
        TV_RETURN_NOT_OK(
            txn.SetEmbedding(*vid, "Post", "content_emb", next_embedding()));
        if (++count % config.batch_size == 0) {
          TV_RETURN_NOT_OK(txn.Commit().status());
          txn = db->Begin();
        }
      }
    }
    TV_RETURN_NOT_OK(txn.Commit().status());
  }

  // Comments replying to posts, created by random friends-of-author.
  {
    Transaction txn = db->Begin();
    size_t count = 0;
    for (size_t pi = 0; pi < stats->posts.size(); ++pi) {
      for (size_t c = 0; c < config.comments_per_post; ++c) {
        const size_t author = rng.NextBounded(config.num_persons);
        auto vid = txn.InsertVertex(
            "Comment", {std::string("re: ") + std::to_string(pi),
                        static_cast<int64_t>(rng.NextBounded(500)), date++,
                        static_cast<int64_t>(rng.NextBounded(config.num_tags))});
        if (!vid.ok()) return vid.status();
        stats->comments.push_back(*vid);
        TV_RETURN_NOT_OK(
            txn.InsertEdge("hasCreator", *vid, stats->persons[author]));
        TV_RETURN_NOT_OK(txn.InsertEdge("replyOf", *vid, stats->posts[pi]));
        TV_RETURN_NOT_OK(txn.InsertEdge(
            "isLocatedIn", *vid,
            stats->countries[rng.NextBounded(config.num_countries)]));
        TV_RETURN_NOT_OK(
            txn.SetEmbedding(*vid, "Comment", "content_emb", next_embedding()));
        if (++count % config.batch_size == 0) {
          TV_RETURN_NOT_OK(txn.Commit().status());
          txn = db->Begin();
        }
      }
    }
    TV_RETURN_NOT_OK(txn.Commit().status());
  }

  stats->num_persons = stats->persons.size();
  stats->num_posts = stats->posts.size();
  stats->num_comments = stats->comments.size();

  // Fold all vector deltas into the per-segment indexes before queries.
  TV_RETURN_NOT_OK(db->Vacuum().status());
  return Status::OK();
}

}  // namespace tigervector

#ifndef TIGERVECTOR_NET_SOCKET_H_
#define TIGERVECTOR_NET_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace tigervector::net {

// Thin RAII wrapper over a connected TCP socket. All transfers are
// exact-length loops over send/recv; errors come back typed:
//   kDeadlineExceeded  -- a configured send/recv timeout fired
//   kIOError           -- peer closed the connection or a syscall failed
//
// Like util/io, every transfer consults the process-wide FaultInjector
// under this socket's fault site (set_fault_site), so tests can inject
// torn frames (kTornWrite: send a prefix, then hard-close), mid-write
// closes (kTornWrite with after_bytes = 0), and stalled peers (kStall:
// sleep before sending so the reader's timeout fires) deterministically,
// the same way WAL/recovery tests inject torn files.
class Socket {
 public:
  Socket() = default;
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  // Connects to host:port with a bounded connect timeout.
  static Result<Socket> Connect(const std::string& host, uint16_t port,
                                int timeout_ms);

  // Wraps an already-connected fd (from Listener::Accept).
  static Socket FromFd(int fd);

  bool is_open() const { return fd_.load(std::memory_order_relaxed) >= 0; }
  int fd() const { return fd_.load(std::memory_order_relaxed); }

  // Receive/send timeouts (SO_RCVTIMEO / SO_SNDTIMEO); 0 disables.
  Status SetRecvTimeout(int ms);
  Status SetSendTimeout(int ms);

  // Fault site consulted by SendAll/RecvAll; empty disables injection.
  void set_fault_site(std::string site) { fault_site_ = std::move(site); }

  // Sends exactly `len` bytes or returns a typed error.
  Status SendAll(const void* data, size_t len);
  // Receives exactly `len` bytes. A clean peer close before any byte is
  // kIOError "connection closed by peer"; mid-buffer EOF mentions the torn
  // transfer; a timeout is kDeadlineExceeded.
  Status RecvAll(void* data, size_t len);

  // Half-closes + closes the descriptor; safe on an empty socket. Also used
  // from another thread to unblock a pending RecvAll (server shutdown).
  void Shutdown();
  void Close();

 private:
  // Atomic because Shutdown() is called cross-thread to unblock a pending
  // transfer (server Stop); Close() exchanges to -1 so only one thread
  // ever closes the descriptor.
  std::atomic<int> fd_{-1};
  std::string fault_site_;
};

// A listening TCP socket bound to 127.0.0.1. Port 0 binds an ephemeral
// port; port() reports the actual one.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // `backlog` is the kernel accept queue bound: connections beyond it are
  // refused by the OS rather than piling up unseen.
  static Result<Listener> Listen(uint16_t port, int backlog);

  // Blocks until a connection arrives or the listener is closed (then
  // kAborted) or a syscall fails (kIOError).
  Result<Socket> Accept();

  uint16_t port() const { return port_; }
  bool is_open() const { return fd_.load(std::memory_order_relaxed) >= 0; }

  // Unblocks a pending Accept from another thread.
  void Close();

 private:
  // Atomic for the same reason as Socket::fd_: Close() races with a
  // blocked Accept() by design.
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
};

}  // namespace tigervector::net

#endif  // TIGERVECTOR_NET_SOCKET_H_

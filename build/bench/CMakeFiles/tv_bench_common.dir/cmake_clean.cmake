file(REMOVE_RECURSE
  "CMakeFiles/tv_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/tv_bench_common.dir/bench_common.cc.o.d"
  "libtv_bench_common.a"
  "libtv_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tv_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#ifndef TIGERVECTOR_GRAPH_WAL_H_
#define TIGERVECTOR_GRAPH_WAL_H_

#include <string>
#include <vector>

#include "graph/mutation.h"
#include "util/io.h"
#include "util/result.h"
#include "util/status.h"

namespace tigervector {

// Write-ahead log for committed transactions. Each record is
// [payload_len u32][tid u64][mutation payload]; the commit protocol appends
// the record (and, with sync_on_commit, fsyncs it) before the mutations are
// applied to the stores, so recovery can replay every committed transaction
// (paper Sec. 4.3: "Distributed and replicated write-ahead log (WAL) is
// used for durability"; this single-node reproduction keeps one log).
class WriteAheadLog {
 public:
  // In-memory-only WAL (no file). Records are still encoded so tests can
  // exercise the round trip.
  WriteAheadLog() = default;

  // Opens (creating or appending) a log file at `path`. With sync_on_commit
  // every Append fsyncs before reporting success; without it a crash can
  // lose the buffered tail (group-commit durability is traded for speed).
  Status Open(const std::string& path, bool sync_on_commit = false);

  // Appends one committed transaction. Thread-compatible: the engine's
  // commit lock already serializes callers.
  Status Append(Tid tid, const std::vector<Mutation>& mutations);

  // Forces everything appended so far to stable storage.
  Status Sync();

  struct Record {
    Tid tid;
    std::vector<Mutation> mutations;
  };

  // Result of scanning a log file. A torn tail — a final record cut short
  // by a crash mid-append — is the *expected* crash artifact, not an error:
  // the scan reports the complete prefix plus where the valid bytes end so
  // recovery can truncate the tail and proceed.
  struct ReadOutcome {
    std::vector<Record> records;
    // True when trailing bytes after the last complete record were dropped.
    bool truncated = false;
    // File offset one past the last complete record (== file size when not
    // truncated); the correct truncation point for the log.
    uint64_t valid_bytes = 0;
  };

  // Reads back all complete records of a log file, tolerating a torn tail.
  // Only a missing/unreadable file is an error.
  static Result<ReadOutcome> ReadLog(const std::string& path);

  // Compatibility wrapper over ReadLog that drops the truncation info.
  static Result<std::vector<Record>> ReadAll(const std::string& path);

  // Serialization helpers, exposed for tests.
  static std::vector<uint8_t> EncodeMutations(const std::vector<Mutation>& mutations);
  static Result<std::vector<Mutation>> DecodeMutations(const uint8_t* data, size_t len);

  uint64_t appended_records() const { return appended_; }
  uint64_t appended_bytes() const { return bytes_; }
  uint64_t fsyncs() const { return fsyncs_; }
  bool sync_on_commit() const { return sync_on_commit_; }
  // True after an append failed: the log tail is undefined (possibly a torn
  // record) and no further appends are accepted until the log is reopened.
  bool broken() const { return broken_; }

 private:
  io::File file_;
  bool sync_on_commit_ = false;
  bool broken_ = false;
  uint64_t appended_ = 0;
  uint64_t bytes_ = 0;
  uint64_t fsyncs_ = 0;
};

}  // namespace tigervector

#endif  // TIGERVECTOR_GRAPH_WAL_H_

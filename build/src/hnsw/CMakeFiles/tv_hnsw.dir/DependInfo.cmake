
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hnsw/brute_force.cc" "src/hnsw/CMakeFiles/tv_hnsw.dir/brute_force.cc.o" "gcc" "src/hnsw/CMakeFiles/tv_hnsw.dir/brute_force.cc.o.d"
  "/root/repo/src/hnsw/flat_index.cc" "src/hnsw/CMakeFiles/tv_hnsw.dir/flat_index.cc.o" "gcc" "src/hnsw/CMakeFiles/tv_hnsw.dir/flat_index.cc.o.d"
  "/root/repo/src/hnsw/hnsw_index.cc" "src/hnsw/CMakeFiles/tv_hnsw.dir/hnsw_index.cc.o" "gcc" "src/hnsw/CMakeFiles/tv_hnsw.dir/hnsw_index.cc.o.d"
  "/root/repo/src/hnsw/ivf_index.cc" "src/hnsw/CMakeFiles/tv_hnsw.dir/ivf_index.cc.o" "gcc" "src/hnsw/CMakeFiles/tv_hnsw.dir/ivf_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simd/CMakeFiles/tv_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/gsql_shell.dir/gsql_shell.cpp.o"
  "CMakeFiles/gsql_shell.dir/gsql_shell.cpp.o.d"
  "gsql_shell"
  "gsql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for tv_algo.
# This may be replaced when dependencies are built.

#include "loader/loading_job.h"

#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tigervector {

namespace {

// Parses a CSV field into the attribute's declared type.
Result<Value> ParseAttr(const std::string& field, AttrType type) {
  switch (type) {
    case AttrType::kInt: {
      char* end = nullptr;
      const long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == field.c_str() || *end != '\0') {
        return Status::ParseError("bad integer '" + field + "'");
      }
      return Value{static_cast<int64_t>(v)};
    }
    case AttrType::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') {
        return Status::ParseError("bad double '" + field + "'");
      }
      return Value{v};
    }
    case AttrType::kString:
      return Value{field};
    case AttrType::kBool:
      if (field == "true" || field == "1") return Value{true};
      if (field == "false" || field == "0") return Value{false};
      return Status::ParseError("bad bool '" + field + "'");
  }
  return Status::ParseError("unknown attribute type");
}

}  // namespace

Result<LoadReport> LoadingJob::Run(Database* db, size_t batch_size,
                                   const CsvOptions& csv) {
  TV_SPAN("loader.run");
  TV_COUNTER_INC("tv.loader.jobs_total");
  LoadReport report;
  for (const LoadStep& step : steps_) {
    if (const auto* vstep = std::get_if<VertexLoadStep>(&step)) {
      TV_RETURN_NOT_OK(RunVertexStep(db, *vstep, batch_size, csv, &report));
    } else {
      TV_RETURN_NOT_OK(RunEmbeddingStep(db, std::get<EmbeddingLoadStep>(step),
                                        batch_size, csv, &report));
    }
  }
  TV_COUNTER_ADD("tv.loader.rows_skipped_total", report.rows_skipped);
  return report;
}

const std::unordered_map<std::string, VertexId>* LoadingJob::IdMap(
    const std::string& vertex_type) const {
  auto it = id_maps_.find(vertex_type);
  return it == id_maps_.end() ? nullptr : &it->second;
}

Status LoadingJob::RunVertexStep(Database* db, const VertexLoadStep& step,
                                 size_t batch_size, const CsvOptions& csv,
                                 LoadReport* report) {
  TV_SPAN("loader.vertex_step");
  auto vt = db->schema()->GetVertexType(step.vertex_type);
  if (!vt.ok()) return vt.status();
  const VertexTypeDef& def = **vt;
  if (step.columns.empty()) {
    return Status::InvalidArgument("loading job step has no VALUES columns");
  }
  // Map each VALUES column to a declared attribute (or -1 when the column
  // is key-only, e.g. an `id` that is not an attribute).
  std::vector<int> attr_of_column(step.columns.size(), -1);
  for (size_t c = 0; c < step.columns.size(); ++c) {
    attr_of_column[c] = def.AttrIndex(step.columns[c]);
  }

  auto rows = ReadCsvFile(step.file, csv);
  if (!rows.ok()) return rows.status();
  auto& id_map = id_maps_[step.vertex_type];

  Transaction txn = db->Begin();
  size_t in_batch = 0;
  for (const auto& row : *rows) {
    if (row.size() < step.columns.size()) {
      ++report->rows_skipped;
      report->warnings.push_back("row with " + std::to_string(row.size()) +
                                 " fields, expected " +
                                 std::to_string(step.columns.size()));
      continue;
    }
    // Default-initialize all attributes, then fill from mapped columns.
    std::vector<Value> attrs;
    attrs.reserve(def.attrs.size());
    for (const AttrDef& a : def.attrs) {
      switch (a.type) {
        case AttrType::kInt:
          attrs.push_back(Value{int64_t{0}});
          break;
        case AttrType::kDouble:
          attrs.push_back(Value{0.0});
          break;
        case AttrType::kString:
          attrs.push_back(Value{std::string()});
          break;
        case AttrType::kBool:
          attrs.push_back(Value{false});
          break;
      }
    }
    bool row_ok = true;
    for (size_t c = 0; c < step.columns.size(); ++c) {
      if (attr_of_column[c] < 0) continue;
      auto value = ParseAttr(row[c], def.attrs[attr_of_column[c]].type);
      if (!value.ok()) {
        ++report->rows_skipped;
        report->warnings.push_back(value.status().message());
        row_ok = false;
        break;
      }
      attrs[attr_of_column[c]] = std::move(*value);
    }
    if (!row_ok) continue;
    auto vid = txn.InsertVertex(step.vertex_type, std::move(attrs));
    if (!vid.ok()) return vid.status();
    id_map[row[0]] = *vid;
    TV_COUNTER_INC("tv.loader.vertices_total");
    ++report->vertices_loaded;
    if (++in_batch >= batch_size) {
      TV_RETURN_NOT_OK(txn.Commit().status());
      txn = db->Begin();
      in_batch = 0;
    }
  }
  return txn.Commit().status();
}

Status LoadingJob::RunEmbeddingStep(Database* db, const EmbeddingLoadStep& step,
                                    size_t batch_size, const CsvOptions& csv,
                                    LoadReport* report) {
  TV_SPAN("loader.embedding_step");
  auto vt = db->schema()->GetVertexType(step.vertex_type);
  if (!vt.ok()) return vt.status();
  if ((*vt)->FindEmbeddingAttr(step.attr) == nullptr) {
    return Status::NotFound("embedding attribute " + step.attr + " on " +
                            step.vertex_type);
  }
  auto rows = ReadCsvFile(step.file, csv);
  if (!rows.ok()) return rows.status();
  auto map_it = id_maps_.find(step.vertex_type);
  if (map_it == id_maps_.end()) {
    return Status::InvalidArgument(
        "embedding step for " + step.vertex_type +
        " must follow a vertex step in the same loading job");
  }
  const auto& id_map = map_it->second;

  Transaction txn = db->Begin();
  size_t in_batch = 0;
  for (const auto& row : *rows) {
    if (row.size() < 2) {
      ++report->rows_skipped;
      continue;
    }
    auto vid_it = id_map.find(row[0]);
    if (vid_it == id_map.end()) {
      ++report->rows_skipped;
      report->warnings.push_back("unknown external id '" + row[0] + "'");
      continue;
    }
    auto vec = ParseVectorField(row[1], step.vector_separator);
    if (!vec.ok()) {
      ++report->rows_skipped;
      report->warnings.push_back(vec.status().message());
      continue;
    }
    TV_RETURN_NOT_OK(txn.SetEmbedding(vid_it->second, step.vertex_type, step.attr,
                                      std::move(*vec)));
    TV_COUNTER_INC("tv.loader.embeddings_total");
    ++report->embeddings_loaded;
    if (++in_batch >= batch_size) {
      TV_RETURN_NOT_OK(txn.Commit().status());
      txn = db->Begin();
      in_batch = 0;
    }
  }
  return txn.Commit().status();
}

}  // namespace tigervector

file(REMOVE_RECURSE
  "libtv_mpp.a"
)

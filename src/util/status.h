#ifndef TIGERVECTOR_UTIL_STATUS_H_
#define TIGERVECTOR_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace tigervector {

// Error handling follows the RocksDB/Arrow idiom: functions that can fail
// return a Status (or Result<T>, see result.h) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kAborted,         // transaction aborted (e.g., write-write conflict)
  kIncompatible,    // embedding metadata compatibility check failed
  kIOError,
  kParseError,        // GSQL syntax error
  kSemanticError,     // GSQL semantic analysis error
  kDeadlineExceeded,  // request deadline expired (cooperative cancellation)
  kUnavailable,       // server saturated / shutting down: retry later
};

// A Status holds a code plus a human-readable message. The OK status carries
// no message and is cheap to copy.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Incompatible(std::string msg) {
    return Status(StatusCode::kIncompatible, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status SemanticError(std::string msg) {
    return Status(StatusCode::kSemanticError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  // Returns "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

// Returns the Status if it is an error; usable only in functions returning
// Status.
#define TV_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::tigervector::Status _st = (expr);        \
    if (!_st.ok()) return _st;                 \
  } while (false)

}  // namespace tigervector

#endif  // TIGERVECTOR_UTIL_STATUS_H_

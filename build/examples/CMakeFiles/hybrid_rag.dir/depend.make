# Empty dependencies file for hybrid_rag.
# This may be replaced when dependencies are built.

#ifndef TIGERVECTOR_UTIL_CANCEL_H_
#define TIGERVECTOR_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace tigervector {

// Cooperative cancellation for long-running query work. A CancelToken
// carries a deadline and/or an explicit cancellation flag; the serving
// layer installs one thread-locally for the duration of a request
// (ScopedCancel), fan-out sites re-install it on worker threads alongside
// trace propagation, and the executor's scan loops and the HNSW searcher
// poll it every few hundred units of work. When the token fires, the
// in-progress loop abandons its partial result and the error propagates up
// as kDeadlineExceeded (deadline) or kUnavailable (explicit cancel, e.g.
// server shutdown) — a caller never observes a silently truncated top-k.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Arms the deadline. Passing a time in the past makes the next check
  // fire immediately.
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_release);
  }
  void SetDeadlineAfterMicros(uint64_t micros) {
    SetDeadline(std::chrono::steady_clock::now() +
                std::chrono::microseconds(micros));
  }

  // Explicit cancellation (client disconnected, server shutting down).
  // `reason` is surfaced in the resulting kUnavailable status.
  void Cancel(std::string reason);

  // Polled by scan loops. Records the first expiry sticky, so once a token
  // fires every later check agrees (a single query never observes a token
  // un-expire). Counts every call — the deterministic deadline tests use
  // TripAfterChecks to fire mid-scan without depending on wall-clock time.
  bool Expired();

  // OK until the token fires; then kDeadlineExceeded or kUnavailable.
  // Does not itself re-check the clock: pair with Expired().
  Status status() const;

  // Test hook: force the deadline to fire on the n-th Expired() call from
  // now. Deterministically simulates a deadline expiring mid-scan.
  void TripAfterChecks(uint64_t n) {
    trip_at_check_.store(checks_.load(std::memory_order_relaxed) + n,
                         std::memory_order_release);
  }
  uint64_t checks() const { return checks_.load(std::memory_order_relaxed); }
  bool fired() const { return fired_.load(std::memory_order_acquire); }

 private:
  std::atomic<uint64_t> checks_{0};
  std::atomic<uint64_t> trip_at_check_{0};  // 0 = disabled
  std::atomic<int64_t> deadline_ns_{0};     // steady_clock epoch ns; 0 = none
  std::atomic<bool> fired_{false};
  std::atomic<bool> cancelled_{false};
  // Written once before cancelled_ is published, read only after.
  std::string cancel_reason_;
};

// The token installed on the current thread, or nullptr. Fan-out sites pass
// it to workers the same way they propagate the active query trace.
CancelToken* CurrentCancelToken();

// Installs `token` (may be nullptr) as the current thread's token for the
// scope's lifetime, restoring the previous one on exit.
class ScopedCancel {
 public:
  explicit ScopedCancel(CancelToken* token);
  ~ScopedCancel();
  ScopedCancel(const ScopedCancel&) = delete;
  ScopedCancel& operator=(const ScopedCancel&) = delete;

 private:
  CancelToken* prev_;
};

// One rate-limited poll of the current token: returns true when a token is
// installed and has fired. Loops call this every kCancelCheckInterval units
// of work; with no token installed it is a single thread-local load.
bool CancelCheckExpired();

// Status form for Result-returning layers: OK when no token is installed
// or the token has not fired.
Status CancelCheckStatus();

// How many loop iterations (vertices scanned, HNSW hops) pass between two
// token polls. Bounds how far past its deadline a query can run: one check
// interval's worth of work.
inline constexpr uint32_t kCancelCheckInterval = 64;

}  // namespace tigervector

#endif  // TIGERVECTOR_UTIL_CANCEL_H_

# Empty dependencies file for tv_simd.
# This may be replaced when dependencies are built.

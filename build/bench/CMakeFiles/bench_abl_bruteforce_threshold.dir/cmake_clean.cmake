file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_bruteforce_threshold.dir/bench_abl_bruteforce_threshold.cc.o"
  "CMakeFiles/bench_abl_bruteforce_threshold.dir/bench_abl_bruteforce_threshold.cc.o.d"
  "bench_abl_bruteforce_threshold"
  "bench_abl_bruteforce_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_bruteforce_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

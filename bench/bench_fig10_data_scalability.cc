// Figure 10 reproduction: data-size scalability. The dataset grows 10x
// (N/10 -> N) at fixed search parameters on an 8-server simulated cluster;
// the paper's finding is that QPS decreases roughly proportionally to the
// data size (slightly sub-proportionally at low ef, where per-query fixed
// costs amortize and CPU utilization improves).
#include <map>

#include "bench/bench_common.h"
#include "mpp/cluster.h"
#include "workload/driver.h"

using namespace tigervector;
using namespace tigervector::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv);
  const size_t n = BaseN();
  const size_t nq = QueryN();
  const size_t k = 10;

  PrintHeader("Figure 10: data-size scalability (SIFT-like, 8 servers, k=" +
              std::to_string(k) + ")");
  PrintRow({"vectors", "ef", "recall", "QPS", "QPS ratio vs smallest"});

  std::vector<size_t> sizes = {n / 10, n / 4, n / 2, n};
  std::map<size_t, double> smallest_qps;  // per ef

  for (size_t size : sizes) {
    VectorDataset dataset = MakeSiftLike(size, nq);
    ComputeGroundTruth(&dataset, k, nullptr);
    const uint32_t seg_cap =
        static_cast<uint32_t>(std::max<size_t>(512, sizes.front() / 4));
    auto instance = LoadTigerVector(dataset, seg_cap);
    Cluster cluster(instance.db->store(), instance.db->embeddings(), {8, 2});
    for (size_t ef : {32u, 128u}) {
      const double recall = MeasureRecall(dataset, instance, k, ef);
      auto run = RunClosedLoop(ClientThreads(), 4, [&](size_t t, size_t i) {
        VectorSearchRequest request;
        request.attrs = {{"Item", "emb"}};
        request.query = dataset.QueryVector((t * 131 + i) % dataset.num_queries);
        request.k = k;
        request.ef = ef;
        if (!cluster.DistributedTopK(request).ok()) std::abort();
      });
      if (smallest_qps.find(ef) == smallest_qps.end()) smallest_qps[ef] = run.qps;
      PrintRow({std::to_string(size), std::to_string(ef), Fmt(recall, 4),
                Fmt(run.qps, 1), Fmt(run.qps / smallest_qps[ef] * 100, 1) + "%"});
    }
  }
  return 0;
}

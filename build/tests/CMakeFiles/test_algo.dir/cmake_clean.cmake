file(REMOVE_RECURSE
  "CMakeFiles/test_algo.dir/test_algo.cc.o"
  "CMakeFiles/test_algo.dir/test_algo.cc.o.d"
  "test_algo"
  "test_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

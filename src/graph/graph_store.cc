#include "graph/graph_store.h"

#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/io.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tigervector {

GraphStore::GraphStore(Schema* schema, Options options)
    : schema_(schema), options_(std::move(options)) {
  if (!options_.wal_path.empty()) {
    Status st = wal_.Open(options_.wal_path, options_.wal_sync);
    if (!st.ok()) {
      TV_LOG(Error) << "failed to open WAL: " << st.ToString();
    }
  }
}

VertexId GraphStore::AllocateVid() {
  const VertexId vid = next_vid_.fetch_add(1, std::memory_order_acq_rel);
  EnsureSegmentsFor(vid);
  return vid;
}

void GraphStore::EnsureSegmentsFor(VertexId vid) {
  const size_t seg = vid / options_.segment_capacity;
  {
    std::shared_lock<std::shared_mutex> lock(segments_mu_);
    if (seg < segments_.size()) return;
  }
  std::unique_lock<std::shared_mutex> lock(segments_mu_);
  while (segments_.size() <= seg) {
    const SegmentId id = static_cast<SegmentId>(segments_.size());
    segments_.push_back(std::make_unique<GraphSegment>(
        id, VertexId{id} * options_.segment_capacity, options_.segment_capacity));
  }
}

GraphSegment* GraphStore::SegmentFor(VertexId vid) {
  std::shared_lock<std::shared_mutex> lock(segments_mu_);
  const size_t seg = vid / options_.segment_capacity;
  if (seg >= segments_.size()) return nullptr;
  return segments_[seg].get();
}

const GraphSegment* GraphStore::SegmentForConst(VertexId vid) const {
  std::shared_lock<std::shared_mutex> lock(segments_mu_);
  const size_t seg = vid / options_.segment_capacity;
  if (seg >= segments_.size()) return nullptr;
  return segments_[seg].get();
}

Status GraphStore::ValidateMutations(const std::vector<Mutation>& mutations) const {
  // Vertices inserted earlier in the same transaction count as existing for
  // later mutations of that transaction.
  std::unordered_set<VertexId> inserted;
  const Tid read_tid = visible_tid();
  auto vertex_known = [&](VertexId vid) {
    return inserted.count(vid) > 0 || IsVisible(vid, read_tid);
  };
  for (const Mutation& m : mutations) {
    switch (m.kind) {
      case Mutation::Kind::kInsertVertex: {
        if (m.vtype >= schema_->num_vertex_types()) {
          return Status::InvalidArgument("unknown vertex type id");
        }
        const VertexTypeDef& def = schema_->vertex_type(m.vtype);
        if (m.attrs.size() != def.attrs.size()) {
          return Status::InvalidArgument("attribute count mismatch for " + def.name);
        }
        if (vertex_known(m.vid)) {
          return Status::AlreadyExists("vertex " + std::to_string(m.vid));
        }
        inserted.insert(m.vid);
        break;
      }
      case Mutation::Kind::kSetAttr:
      case Mutation::Kind::kDeleteVertex:
        if (!vertex_known(m.vid)) {
          return Status::NotFound("vertex " + std::to_string(m.vid));
        }
        break;
      case Mutation::Kind::kInsertEdge:
      case Mutation::Kind::kDeleteEdge: {
        if (m.etype >= schema_->num_edge_types()) {
          return Status::InvalidArgument("unknown edge type id");
        }
        if (!vertex_known(m.vid) || !vertex_known(m.dst)) {
          return Status::NotFound("edge endpoint missing");
        }
        break;
      }
      case Mutation::Kind::kUpsertEmbedding:
      case Mutation::Kind::kDeleteEmbedding: {
        if (!vertex_known(m.vid)) {
          return Status::NotFound("vertex " + std::to_string(m.vid));
        }
        break;
      }
    }
  }
  return Status::OK();
}

Status GraphStore::ApplyOne(const Mutation& m, Tid tid) {
  switch (m.kind) {
    case Mutation::Kind::kInsertVertex: {
      EnsureSegmentsFor(m.vid);
      GraphSegment* seg = SegmentFor(m.vid);
      TV_RETURN_NOT_OK(seg->ApplyInsertVertex(m.vid, m.vtype, m.attrs, tid));
      {
        std::unique_lock<std::shared_mutex> lock(bitmap_mu_);
        if (type_bitmaps_.size() <= m.vtype) type_bitmaps_.resize(m.vtype + 1);
        Bitmap& bm = type_bitmaps_[m.vtype];
        if (bm.size() <= m.vid) {
          // Grow in segment-sized strides to amortize re-allocation.
          Bitmap grown(((m.vid / options_.segment_capacity) + 1) *
                       options_.segment_capacity);
          for (size_t i = 0; i < bm.size(); ++i) {
            if (bm.Test(i)) grown.Set(i);
          }
          bm = std::move(grown);
        }
        bm.Set(m.vid);
      }
      return Status::OK();
    }
    case Mutation::Kind::kSetAttr:
      return SegmentFor(m.vid)->ApplySetAttr(m.vid, m.attr_idx, m.value, tid);
    case Mutation::Kind::kDeleteVertex: {
      GraphSegment* seg = SegmentFor(m.vid);
      TV_RETURN_NOT_OK(seg->ApplyDeleteVertex(m.vid, tid));
      const int vtype = seg->VertexType(m.vid);
      if (vtype >= 0) {
        std::unique_lock<std::shared_mutex> lock(bitmap_mu_);
        if (static_cast<size_t>(vtype) < type_bitmaps_.size() &&
            m.vid < type_bitmaps_[vtype].size()) {
          type_bitmaps_[vtype].Clear(m.vid);
        }
      }
      // Deleting a vertex also deletes its embeddings.
      if (embedding_sink_ != nullptr && vtype >= 0) {
        const VertexTypeDef& def = schema_->vertex_type(vtype);
        for (const EmbeddingAttrDef& e : def.embedding_attrs) {
          TV_RETURN_NOT_OK(
              embedding_sink_->ApplyDelete(def.id, e.name, m.vid, tid));
        }
      }
      return Status::OK();
    }
    case Mutation::Kind::kInsertEdge: {
      const EdgeTypeDef& def = schema_->edge_type(m.etype);
      TV_RETURN_NOT_OK(SegmentFor(m.vid)->ApplyAddEdge(m.vid, m.etype, m.dst,
                                                       /*out=*/true, tid));
      if (def.directed) {
        return SegmentFor(m.dst)->ApplyAddEdge(m.dst, m.etype, m.vid, /*out=*/false,
                                               tid);
      }
      // Undirected: store an outgoing entry on both endpoints.
      return SegmentFor(m.dst)->ApplyAddEdge(m.dst, m.etype, m.vid, /*out=*/true, tid);
    }
    case Mutation::Kind::kDeleteEdge: {
      const EdgeTypeDef& def = schema_->edge_type(m.etype);
      TV_RETURN_NOT_OK(SegmentFor(m.vid)->ApplyDeleteEdge(m.vid, m.etype, m.dst,
                                                          /*out=*/true, tid));
      if (def.directed) {
        return SegmentFor(m.dst)->ApplyDeleteEdge(m.dst, m.etype, m.vid,
                                                  /*out=*/false, tid);
      }
      return SegmentFor(m.dst)->ApplyDeleteEdge(m.dst, m.etype, m.vid, /*out=*/true,
                                                tid);
    }
    case Mutation::Kind::kUpsertEmbedding: {
      if (embedding_sink_ == nullptr) {
        return Status::Internal("embedding mutation without embedding sink");
      }
      const GraphSegment* seg = SegmentForConst(m.vid);
      const int vtype = seg != nullptr ? seg->VertexType(m.vid) : -1;
      if (vtype < 0) return Status::NotFound("vertex " + std::to_string(m.vid));
      return embedding_sink_->ApplyUpsert(static_cast<VertexTypeId>(vtype), m.emb_attr,
                                          m.vid, m.embedding, tid);
    }
    case Mutation::Kind::kDeleteEmbedding: {
      if (embedding_sink_ == nullptr) {
        return Status::Internal("embedding mutation without embedding sink");
      }
      const GraphSegment* seg = SegmentForConst(m.vid);
      const int vtype = seg != nullptr ? seg->VertexType(m.vid) : -1;
      if (vtype < 0) return Status::NotFound("vertex " + std::to_string(m.vid));
      return embedding_sink_->ApplyDelete(static_cast<VertexTypeId>(vtype), m.emb_attr,
                                          m.vid, tid);
    }
  }
  return Status::Internal("unknown mutation kind");
}

Result<Tid> GraphStore::CommitTransaction(const std::vector<Mutation>& mutations) {
  TV_SPAN("graph.commit");
  Timer timer;
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  TV_RETURN_NOT_OK(ValidateMutations(mutations));
  const Tid tid = next_tid_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // WAL before apply: a crash after this point replays the transaction.
  TV_RETURN_NOT_OK(wal_.Append(tid, mutations));
  for (const Mutation& m : mutations) {
    Status st = ApplyOne(m, tid);
    if (!st.ok()) {
      // Validation should have caught everything; an apply failure here
      // leaves a partially applied transaction that is never made visible.
      TV_LOG(Error) << "apply failed mid-commit (tid " << tid
                    << "): " << st.ToString();
      return st;
    }
  }
  visible_tid_.store(tid, std::memory_order_release);
  graph_version_.fetch_add(1, std::memory_order_acq_rel);
  TV_COUNTER_INC("tv.graph.commits_total");
  TV_COUNTER_ADD("tv.graph.committed_mutations_total", mutations.size());
  TV_HISTOGRAM_OBSERVE("tv.graph.commit_seconds", timer.ElapsedSeconds());
  return tid;
}

Status GraphStore::ReplayRecords(const std::vector<WriteAheadLog::Record>& records) {
  Tid max_tid = 0;
  VertexId max_vid = 0;
  for (const auto& rec : records) {
    for (const Mutation& m : rec.mutations) {
      if (m.vid != kInvalidVertexId && m.vid + 1 > max_vid) max_vid = m.vid + 1;
      if (m.kind == Mutation::Kind::kInsertEdge ||
          m.kind == Mutation::Kind::kDeleteEdge) {
        if (m.dst + 1 > max_vid) max_vid = m.dst + 1;
      }
      TV_RETURN_NOT_OK(ApplyOne(m, rec.tid));
    }
    if (rec.tid > max_tid) max_tid = rec.tid;
  }
  next_tid_.store(max_tid);
  visible_tid_.store(max_tid);
  graph_version_.fetch_add(1, std::memory_order_acq_rel);
  VertexId expect = next_vid_.load();
  if (max_vid > expect) next_vid_.store(max_vid);
  if (max_vid > 0) EnsureSegmentsFor(max_vid - 1);
  return Status::OK();
}

Status GraphStore::Recover(const std::string& wal_path) {
  auto records = WriteAheadLog::ReadAll(wal_path);
  if (!records.ok()) return records.status();
  return ReplayRecords(*records);
}

Result<GraphStore::WalRecoveryInfo> GraphStore::RecoverWal(
    const std::string& wal_path, bool truncate_tail) {
  WalRecoveryInfo info;
  if (!io::Exists(wal_path)) return info;  // nothing committed yet
  auto outcome = WriteAheadLog::ReadLog(wal_path);
  if (!outcome.ok()) return outcome.status();
  TV_RETURN_NOT_OK(ReplayRecords(outcome->records));
  info.records = outcome->records.size();
  info.max_tid = visible_tid();
  info.truncated = outcome->truncated;
  info.valid_bytes = outcome->valid_bytes;
  TV_COUNTER_ADD("tv.recovery.wal_records_replayed_total", info.records);
  if (info.truncated && truncate_tail) {
    // Cut the torn record so the next Append lands on a record boundary;
    // the prefix being truncated was never acknowledged to any client.
    TV_RETURN_NOT_OK(io::TruncateFile(wal_path, info.valid_bytes));
    TV_COUNTER_INC("tv.recovery.wal_truncations_total");
  }
  return info;
}

bool GraphStore::IsVisible(VertexId vid, Tid read_tid) const {
  const GraphSegment* seg = SegmentForConst(vid);
  return seg != nullptr && seg->IsVisible(vid, read_tid);
}

Result<VertexTypeId> GraphStore::GetVertexType(VertexId vid) const {
  const GraphSegment* seg = SegmentForConst(vid);
  const int vtype = seg != nullptr ? seg->VertexType(vid) : -1;
  if (vtype < 0) return Status::NotFound("vertex " + std::to_string(vid));
  return static_cast<VertexTypeId>(vtype);
}

Result<Value> GraphStore::GetAttr(VertexId vid, const std::string& attr_name,
                                  Tid read_tid) const {
  auto vtype = GetVertexType(vid);
  if (!vtype.ok()) return vtype.status();
  const VertexTypeDef& def = schema_->vertex_type(*vtype);
  const int idx = def.AttrIndex(attr_name);
  if (idx < 0) {
    return Status::NotFound("attribute " + attr_name + " on " + def.name);
  }
  return GetAttrByIndex(vid, static_cast<uint16_t>(idx), read_tid);
}

Result<Value> GraphStore::GetAttrByIndex(VertexId vid, uint16_t attr_idx,
                                         Tid read_tid) const {
  const GraphSegment* seg = SegmentForConst(vid);
  if (seg == nullptr) return Status::NotFound("vertex " + std::to_string(vid));
  Value out;
  TV_RETURN_NOT_OK(seg->GetAttr(vid, attr_idx, read_tid, &out));
  return out;
}

void GraphStore::ForEachNeighbor(VertexId vid, EdgeTypeId etype, Direction dir,
                                 Tid read_tid,
                                 const std::function<void(VertexId)>& fn) const {
  const GraphSegment* seg = SegmentForConst(vid);
  if (seg == nullptr) return;
  auto visible_fn = [&](VertexId peer) {
    if (IsVisible(peer, read_tid)) fn(peer);
  };
  if (dir == Direction::kOut || dir == Direction::kAny) {
    seg->ForEachEdge(vid, etype, /*out=*/true, read_tid, visible_fn);
  }
  if (dir == Direction::kIn || dir == Direction::kAny) {
    seg->ForEachEdge(vid, etype, /*out=*/false, read_tid, visible_fn);
  }
}

void GraphStore::VertexAction(
    ThreadPool* pool, const std::function<void(const GraphSegment&)>& fn) const {
  std::vector<const GraphSegment*> segs;
  {
    std::shared_lock<std::shared_mutex> lock(segments_mu_);
    segs.reserve(segments_.size());
    for (const auto& s : segments_) segs.push_back(s.get());
  }
  if (pool != nullptr && segs.size() > 1) {
    pool->ParallelFor(segs.size(), [&](size_t i) { fn(*segs[i]); });
  } else {
    for (const GraphSegment* s : segs) fn(*s);
  }
}

void GraphStore::ForEachVertexOfType(VertexTypeId vtype, Tid read_tid,
                                     ThreadPool* pool,
                                     const std::function<void(VertexId)>& fn) const {
  if (pool != nullptr) {
    // Parallel over segments; fn must be thread-safe in this mode.
    VertexAction(pool, [&](const GraphSegment& seg) {
      seg.ForEachVertex(vtype, read_tid, fn);
    });
  } else {
    VertexAction(nullptr, [&](const GraphSegment& seg) {
      seg.ForEachVertex(vtype, read_tid, fn);
    });
  }
}

TypeBitmapGuard GraphStore::LatestTypeBitmap(VertexTypeId vtype) const {
  std::shared_lock<std::shared_mutex> lock(bitmap_mu_);
  static const Bitmap kEmpty;
  const Bitmap* bm =
      vtype < type_bitmaps_.size() ? &type_bitmaps_[vtype] : &kEmpty;
  return TypeBitmapGuard(std::move(lock), bm);
}

size_t GraphStore::VacuumGraph() {
  const Tid up_to = visible_tid();
  // Snapshot the segment pointers and drop segments_mu_ before taking any
  // per-segment write lock: readers acquire segment-then-store (predicate
  // eval under a segment lock calls back into SegmentFor), so holding
  // store-then-segment here would close a lock-order cycle. Segments are
  // append-only and owned by stable unique_ptrs, so the snapshot stays
  // valid after the lock is released.
  std::vector<GraphSegment*> segments;
  {
    std::shared_lock<std::shared_mutex> lock(segments_mu_);
    segments.reserve(segments_.size());
    for (auto& seg : segments_) segments.push_back(seg.get());
  }
  size_t applied = 0;
  for (GraphSegment* seg : segments) applied += seg->Vacuum(up_to);
  graph_version_.fetch_add(1, std::memory_order_acq_rel);
  return applied;
}

size_t GraphStore::NumSegments() const {
  std::shared_lock<std::shared_mutex> lock(segments_mu_);
  return segments_.size();
}

const GraphSegment* GraphStore::SegmentAt(size_t i) const {
  std::shared_lock<std::shared_mutex> lock(segments_mu_);
  return i < segments_.size() ? segments_[i].get() : nullptr;
}

}  // namespace tigervector

file(REMOVE_RECURSE
  "libtv_algo.a"
)

#include "loader/csv.h"

#include <cstdio>
#include <cstdlib>

namespace tigervector {

std::vector<std::string> SplitCsvLine(const std::string& line, char delimiter) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"' && current.empty()) {
      in_quotes = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(const std::string& path,
                                                          const CsvOptions& options) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  bool first = true;
  int c;
  auto flush_line = [&] {
    // Trim a trailing \r (Windows line endings).
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) {
      if (!(first && options.skip_header)) {
        rows.push_back(SplitCsvLine(line, options.delimiter));
      }
      first = false;
    }
    line.clear();
  };
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') {
      flush_line();
    } else {
      line.push_back(static_cast<char>(c));
    }
  }
  flush_line();
  std::fclose(f);
  return rows;
}

Result<std::vector<float>> ParseVectorField(const std::string& field, char separator) {
  std::vector<float> out;
  size_t begin = 0;
  while (begin <= field.size()) {
    size_t end = field.find(separator, begin);
    if (end == std::string::npos) end = field.size();
    const std::string token = field.substr(begin, end - begin);
    if (token.empty()) {
      return Status::ParseError("empty vector component in '" + field + "'");
    }
    char* parse_end = nullptr;
    const float v = std::strtof(token.c_str(), &parse_end);
    if (parse_end == token.c_str() || *parse_end != '\0') {
      return Status::ParseError("bad vector component '" + token + "'");
    }
    out.push_back(v);
    if (end == field.size()) break;
    begin = end + 1;
  }
  return out;
}

}  // namespace tigervector

#include "embedding/embedding_segment.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "hnsw/flat_index.h"
#include "hnsw/ivf_index.h"
#include "obs/metrics.h"
#include "simd/sq8.h"
#include "obs/trace.h"
#include "util/io.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/topk_heap.h"

namespace tigervector {

namespace {
constexpr uint64_t kDeltaFileMagic = 0x54475644'454c5432ULL;  // "TGVDELT2"

// Factory over the embedding metadata's INDEX choice (paper Sec. 4.4: the
// embedding type decides which native index backs each segment).
std::unique_ptr<VectorIndex> CreateVectorIndex(const EmbeddingTypeInfo& info,
                                               const HnswParams& params) {
  const bool sq8 = QuantEnabled(info);
  switch (info.index) {
    case VectorIndexType::kHnsw: {
      HnswParams hnsw = params;
      hnsw.sq8 = sq8;
      return std::make_unique<HnswIndex>(hnsw);
    }
    case VectorIndexType::kFlat:
      return std::make_unique<FlatIndex>(params.dim, params.metric, sq8);
    case VectorIndexType::kIvfFlat: {
      IvfParams ivf;
      ivf.dim = params.dim;
      ivf.metric = params.metric;
      ivf.nlist = std::max<size_t>(8, params.max_elements / 128);
      ivf.seed = params.seed;
      ivf.sq8 = sq8;
      return std::make_unique<IvfFlatIndex>(ivf);
    }
  }
  return std::make_unique<HnswIndex>(params);
}
}  // namespace

Status DeltaFile::Save(const std::string& file_path) {
  // Atomic tmp + fsync + rename: a crash (or injected fault) anywhere in
  // here leaves either the previous file or none — Load never sees a torn
  // delta file produced by this path.
  auto create = io::AtomicFile::Create(file_path, "delta.save");
  if (!create.ok()) return create.status();
  io::AtomicFile f = std::move(create).value();
  TV_RETURN_NOT_OK(f.Write(&kDeltaFileMagic, sizeof(kDeltaFileMagic)));
  TV_RETURN_NOT_OK(f.Write(&base_tid, sizeof(base_tid)));
  TV_RETURN_NOT_OK(f.Write(&max_tid, sizeof(max_tid)));
  const uint64_t count = deltas.size();
  TV_RETURN_NOT_OK(f.Write(&count, sizeof(count)));
  for (const VectorDelta& d : deltas) {
    const uint8_t action = static_cast<uint8_t>(d.action);
    const uint64_t dim = d.value.size();
    TV_RETURN_NOT_OK(f.Write(&action, 1));
    TV_RETURN_NOT_OK(f.Write(&d.id, sizeof(d.id)));
    TV_RETURN_NOT_OK(f.Write(&d.tid, sizeof(d.tid)));
    TV_RETURN_NOT_OK(f.Write(&dim, sizeof(dim)));
    if (dim > 0) {
      TV_RETURN_NOT_OK(f.Write(d.value.data(), dim * sizeof(float)));
    }
  }
  TV_RETURN_NOT_OK(f.Commit());
  path = file_path;
  return Status::OK();
}

Result<DeltaFile> DeltaFile::Load(const std::string& file_path) {
  auto open = io::File::Open(file_path, "rb", "delta.load");
  if (!open.ok()) return open.status();
  io::File f = std::move(open).value();
  DeltaFile out;
  uint64_t magic = 0, count = 0;
  bool ok = f.Read(&magic, sizeof(magic)).ok() && magic == kDeltaFileMagic &&
            f.Read(&out.base_tid, sizeof(out.base_tid)).ok() &&
            f.Read(&out.max_tid, sizeof(out.max_tid)).ok() &&
            f.Read(&count, sizeof(count)).ok();
  for (uint64_t i = 0; ok && i < count; ++i) {
    VectorDelta d;
    uint8_t action = 0;
    uint64_t dim = 0;
    ok = f.Read(&action, 1).ok() && f.Read(&d.id, sizeof(d.id)).ok() &&
         f.Read(&d.tid, sizeof(d.tid)).ok() && f.Read(&dim, sizeof(dim)).ok();
    if (ok && dim > 0) {
      d.value.resize(dim);
      ok = f.Read(d.value.data(), dim * sizeof(float)).ok();
    }
    if (ok) {
      d.action = static_cast<VectorDelta::Action>(action);
      out.deltas.push_back(std::move(d));
    }
  }
  if (!ok) return Status::IOError("corrupt delta file " + file_path);
  out.path = file_path;
  return out;
}

EmbeddingSegment::EmbeddingSegment(SegmentId segment_id, VertexId base_vid,
                                   uint32_t capacity, const EmbeddingTypeInfo& info,
                                   const HnswParams& index_params)
    : segment_id_(segment_id),
      base_vid_(base_vid),
      capacity_(capacity),
      info_(info),
      index_params_(index_params) {
  index_params_.dim = info.dimension;
  index_params_.metric = info.metric;
  index_params_.max_elements = capacity;
  // Deterministic but distinct level draws per segment.
  index_params_.seed = index_params.seed + segment_id * 0x9e3779b9ULL;
  index_ = CreateVectorIndex(info_, index_params_);
}

Status EmbeddingSegment::ApplyDelta(VectorDelta delta) {
  if (delta.action == VectorDelta::Action::kUpsert &&
      delta.value.size() != info_.dimension) {
    return Status::InvalidArgument("vector delta dimension mismatch");
  }
  if (delta.id < base_vid_ || delta.id >= base_vid_ + capacity_) {
    return Status::InvalidArgument("vector delta id out of segment range");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (delta.tid <= DurableHorizonLocked()) {
    // Already captured by an adopted index snapshot or sealed delta file;
    // seen only when recovery replays the WAL over adopted artifacts. In
    // normal operation commit tids are strictly above the horizon.
    TV_COUNTER_INC("tv.recovery.replay_deltas_skipped_total");
    return Status::OK();
  }
  pending_.first_pending_tid.try_emplace(delta.id, delta.tid);
  pending_.in_memory.push_back(std::move(delta));
  TV_COUNTER_INC("tv.vacuum.delta_appends_total");
  return Status::OK();
}

Result<size_t> EmbeddingSegment::DeltaMerge(Tid up_to_tid, const std::string& dir,
                                            const std::string& file_stem) {
  TV_SPAN("vacuum.delta_merge");
  Timer timer;
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Deltas are appended in commit order, so the prefix with tid <= up_to_tid
  // is exactly what this pass seals.
  auto split = pending_.in_memory.begin();
  Tid max_tid = 0;
  while (split != pending_.in_memory.end() && split->tid <= up_to_tid) {
    max_tid = split->tid;
    ++split;
  }
  if (split == pending_.in_memory.begin()) return size_t{0};
  DeltaFile file;
  file.base_tid = DurableHorizonLocked();
  file.max_tid = max_tid;
  file.deltas.assign(std::make_move_iterator(pending_.in_memory.begin()),
                     std::make_move_iterator(split));
  const size_t sealed = file.deltas.size();
  if (!dir.empty()) {
    const std::string path = dir + "/" + file_stem + "_seg" +
                             std::to_string(segment_id_) + "_tid" +
                             std::to_string(max_tid) + ".delta";
    Status st = file.Save(path);
    if (!st.ok()) {
      // The deltas were moved out above; put them back so an I/O failure
      // never drops a committed delta (they stay recoverable in memory and
      // a later pass retries the seal).
      std::move(file.deltas.begin(), file.deltas.end(), pending_.in_memory.begin());
      TV_COUNTER_INC("tv.vacuum.delta_merge_failures_total");
      return st;
    }
  }
  pending_.in_memory.erase(pending_.in_memory.begin(), split);
  pending_.sealed.push_back(std::move(file));
  TV_COUNTER_INC("tv.vacuum.delta_merges_total");
  TV_COUNTER_ADD("tv.vacuum.delta_merge_records_total", sealed);
  TV_HISTOGRAM_OBSERVE("tv.vacuum.delta_merge_seconds", timer.ElapsedSeconds());
  return sealed;
}

Result<size_t> EmbeddingSegment::IndexMerge(Tid up_to_tid, ThreadPool* pool) {
  TV_SPAN("vacuum.index_merge");
  Timer timer;
  // Copy the deltas to merge (sealed files are ordered by max_tid) and
  // remember the identity of the retired prefix. A copy (rather than
  // pointers) keeps this safe against a concurrent DeltaMerge reallocating
  // the sealed list; the (max_tid, path) identities let the retirement step
  // below revalidate the prefix instead of blindly erasing by count.
  size_t merged_records = 0;
  std::vector<std::pair<Tid, std::string>> retired;
  std::unordered_map<VertexId, VectorDelta> latest;
  std::shared_ptr<VectorIndex> index;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    index = index_;
    for (const DeltaFile& f : pending_.sealed) {
      if (f.max_tid > up_to_tid) break;
      retired.emplace_back(f.max_tid, f.path);
      // Latest-wins dedup per id across the merged batch: the whole batch
      // becomes visible in the index atomically from the reader's
      // perspective (readers keep using the delta overlay until the files
      // are retired).
      for (const VectorDelta& d : f.deltas) {
        latest[d.id] = d;
        ++merged_records;
      }
    }
  }
  if (retired.empty()) return size_t{0};

  std::vector<VectorIndexUpdate> items;
  items.reserve(latest.size());
  for (const auto& [id, d] : latest) {
    VectorIndexUpdate item;
    item.label = id;
    item.is_delete = d.action == VectorDelta::Action::kDelete;
    item.value = d.value;
    items.push_back(std::move(item));
  }
  // Runs unlocked so searches and commits proceed; the shared_ptr keeps the
  // index alive even if a concurrent RebuildIndex swaps in a fresh one.
  TV_RETURN_NOT_OK(index->UpdateItems(items, pool));
  // Merge-triggered requantization: the segment's value distribution just
  // changed, so refresh the SQ8 statistics and codes (no-op on fp32-only
  // indexes). Also unlocked — concurrent searches keep their tier snapshot.
  TV_RETURN_NOT_OK(index->TrainQuantization());

  // Retire the merged files and advance the merged horizon; this is the
  // snapshot switch point (paper Fig. 4).
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (index_ != index) {
    // A concurrent RebuildIndex (or snapshot adoption) replaced the index
    // while we merged: it already folded every pending delta and retired
    // the files. Our updates went to the superseded index; drop them.
    return merged_records;
  }
  // Revalidate the retired prefix under the lock: only erase sealed files
  // that are still exactly the ones we merged — a concurrent RebuildIndex
  // or second IndexMerge may have cleared or shortened the list, and a
  // blind erase of [0, n) would then throw away unmerged files (or walk
  // off the end of the vector).
  size_t matched = 0;
  Tid new_merged = merged_tid_;
  while (matched < retired.size() && matched < pending_.sealed.size() &&
         pending_.sealed[matched].max_tid == retired[matched].first &&
         pending_.sealed[matched].path == retired[matched].second) {
    new_merged = std::max(new_merged, retired[matched].first);
    ++matched;
  }
  for (size_t i = 0; i < matched; ++i) {
    if (!pending_.sealed[i].path.empty()) {
      (void)io::RemoveFile(pending_.sealed[i].path);
    }
  }
  pending_.sealed.erase(pending_.sealed.begin(), pending_.sealed.begin() + matched);
  merged_tid_ = new_merged;
  RebuildFirstPendingLocked();
  TV_COUNTER_INC("tv.vacuum.index_merges_total");
  TV_COUNTER_ADD("tv.vacuum.index_merge_records_total", merged_records);
  TV_HISTOGRAM_OBSERVE("tv.vacuum.index_merge_seconds", timer.ElapsedSeconds());
  return merged_records;
}

Status EmbeddingSegment::RebuildIndex(ThreadPool* pool) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Collect live vectors = index live set overridden by pending deltas.
  std::unordered_map<VertexId, std::vector<float>> live;
  for (uint64_t label : index_->Labels()) {
    std::vector<float> vec(info_.dimension);
    if (index_->GetEmbedding(label, vec.data()).ok()) {
      live.emplace(label, std::move(vec));
    }
  }
  Tid max_tid = merged_tid_;
  auto apply = [&](const VectorDelta& d) {
    max_tid = std::max(max_tid, d.tid);
    if (d.action == VectorDelta::Action::kUpsert) {
      live[d.id] = d.value;
    } else {
      live.erase(d.id);
    }
  };
  for (const DeltaFile& f : pending_.sealed) {
    for (const VectorDelta& d : f.deltas) apply(d);
  }
  for (const VectorDelta& d : pending_.in_memory) apply(d);

  auto fresh = CreateVectorIndex(info_, index_params_);
  std::vector<std::pair<VertexId, const std::vector<float>*>> entries;
  entries.reserve(live.size());
  for (const auto& [id, vec] : live) entries.emplace_back(id, &vec);
  Status status = Status::OK();
  std::mutex status_mu;
  auto add_one = [&](size_t i) {
    Status st = fresh->AddPoint(entries[i].first, entries[i].second->data());
    if (!st.ok()) {
      std::lock_guard<std::mutex> g(status_mu);
      status = st;
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(entries.size(), add_one);
  } else {
    for (size_t i = 0; i < entries.size(); ++i) add_one(i);
  }
  TV_RETURN_NOT_OK(status);
  TV_RETURN_NOT_OK(fresh->TrainQuantization());
  for (DeltaFile& f : pending_.sealed) {
    if (!f.path.empty()) (void)io::RemoveFile(f.path);
  }
  pending_.sealed.clear();
  pending_.in_memory.clear();
  pending_.first_pending_tid.clear();
  merged_tid_ = max_tid;
  index_ = std::move(fresh);
  return Status::OK();
}

bool EmbeddingSegment::OverriddenLocked(VertexId id, Tid read_tid) const {
  auto it = pending_.first_pending_tid.find(id);
  return it != pending_.first_pending_tid.end() && it->second <= read_tid;
}

std::unordered_map<VertexId, const VectorDelta*> EmbeddingSegment::VisiblePendingLocked(
    Tid read_tid) const {
  std::unordered_map<VertexId, const VectorDelta*> latest;
  for (const DeltaFile& f : pending_.sealed) {
    for (const VectorDelta& d : f.deltas) {
      if (d.tid <= read_tid) latest[d.id] = &d;
    }
  }
  for (const VectorDelta& d : pending_.in_memory) {
    if (d.tid <= read_tid) latest[d.id] = &d;
  }
  return latest;
}

void EmbeddingSegment::RebuildFirstPendingLocked() {
  pending_.first_pending_tid.clear();
  for (const DeltaFile& f : pending_.sealed) {
    for (const VectorDelta& d : f.deltas) {
      pending_.first_pending_tid.try_emplace(d.id, d.tid);
    }
  }
  for (const VectorDelta& d : pending_.in_memory) {
    pending_.first_pending_tid.try_emplace(d.id, d.tid);
  }
}

namespace {

// Trampoline context combining the user filter with the pending-override
// check, handed to the HNSW index as its validity predicate.
struct CompositeFilterCtx {
  const EmbeddingSegment* segment;
  const FilterView* user_filter;
  Tid read_tid;
  // Set of overridden ids, precomputed under the segment lock so the
  // predicate itself is lock-free.
  const std::unordered_map<VertexId, const VectorDelta*>* overrides;
};

bool CompositeAccepts(const void* raw_ctx, uint64_t id) {
  const auto* ctx = static_cast<const CompositeFilterCtx*>(raw_ctx);
  if (!ctx->user_filter->Accepts(id)) return false;
  return ctx->overrides->find(id) == ctx->overrides->end();
}

}  // namespace

EmbeddingSegment::SearchOutput EmbeddingSegment::TopKSearch(
    const float* query, const SearchOptions& options) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  SearchOutput out;
  const auto overrides = VisiblePendingLocked(options.read_tid);
  CompositeFilterCtx ctx{this, &options.filter, options.read_tid, &overrides};
  FilterView composite(&CompositeAccepts, &ctx);

  // Brute-force fallback: when the predicate bitmap leaves too few valid
  // points in this segment's id range, a direct scan beats the index
  // (paper Sec. 5.1).
  bool bruteforce = false;
  if (options.bruteforce_threshold > 0 && options.filter.bitmap() != nullptr) {
    const size_t valid = options.filter.bitmap()->CountRange(
        base_vid_, base_vid_ + capacity_);
    bruteforce = valid < options.bruteforce_threshold;
  }
  // Per-query quantization scope: lets the index rank on SQ8 codes (when a
  // trained tier exists) with this query's rerank factor, and reports back
  // how many candidates the index actually reranked.
  std::vector<SearchHit> index_hits;
  {
    simd::ScopedQuantQuery quant_scope(true, options.rerank_factor);
    index_hits = bruteforce
                     ? index_->BruteForceSearch(query, options.k, composite)
                     : index_->TopKSearch(query, options.k, options.ef, composite);
    out.used_quant = quant_scope.quant_scans() > 0;
    out.reranked = quant_scope.reranked();
  }
  out.used_bruteforce = bruteforce;

  TopKHeap<VertexId> heap(options.k);
  for (const SearchHit& h : index_hits) heap.Push(h.distance, h.label);
  // Delta overlay: gather the visible upserts and score them through the
  // batched kernel rather than one pair call per delta.
  std::vector<const float*> delta_rows;
  std::vector<VertexId> delta_ids;
  delta_rows.reserve(overrides.size());
  delta_ids.reserve(overrides.size());
  for (const auto& [id, delta] : overrides) {
    if (delta->action != VectorDelta::Action::kUpsert) continue;
    if (!options.filter.Accepts(id)) continue;
    ++out.delta_candidates;
    delta_rows.push_back(delta->value.data());
    delta_ids.push_back(id);
  }
  if (!delta_rows.empty()) {
    std::vector<float> delta_dists(delta_rows.size());
    ComputeDistanceBatchGather(info_.metric, query, delta_rows.data(),
                               info_.dimension, delta_rows.size(),
                               delta_dists.data());
    for (size_t i = 0; i < delta_ids.size(); ++i) {
      heap.Push(delta_dists[i], delta_ids[i]);
    }
  }
  for (const auto& e : heap.TakeSorted()) {
    out.hits.push_back(SearchHit{e.distance, e.id});
  }
  return out;
}

EmbeddingSegment::SearchOutput EmbeddingSegment::RangeSearch(
    const float* query, float threshold, const SearchOptions& options) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  SearchOutput out;
  const auto overrides = VisiblePendingLocked(options.read_tid);
  CompositeFilterCtx ctx{this, &options.filter, options.read_tid, &overrides};
  FilterView composite(&CompositeAccepts, &ctx);

  // Brute-force fallback, mirroring TopKSearch: with few filter-accepted
  // points in this segment's range an exact scan is cheaper than the
  // adaptive index walk — and makes the range answer exact, which the
  // differential test harness relies on for its strict oracle tier.
  bool bruteforce = false;
  if (options.bruteforce_threshold > 0 && options.filter.bitmap() != nullptr) {
    const size_t valid = options.filter.bitmap()->CountRange(
        base_vid_, base_vid_ + capacity_);
    bruteforce = valid < options.bruteforce_threshold;
  }
  // Range answers stay exact: disable quantized scans for the whole call
  // (the index's own RangeSearch also pins this, but the brute-force tier
  // here would otherwise approximate).
  simd::ScopedQuantQuery exact_scope(false, 0);
  if (bruteforce) {
    for (const SearchHit& h :
         index_->BruteForceSearch(query, index_->size(), composite)) {
      if (h.distance < threshold) out.hits.push_back(h);
    }
    out.used_bruteforce = true;
  } else {
    out.hits = index_->RangeSearch(query, threshold, std::max<size_t>(options.k, 16),
                                   options.ef, composite);
  }
  // Delta overlay, batched (and threshold-fused: the kernel's return value
  // tells us when no delta row survives without a second pass).
  std::vector<const float*> delta_rows;
  std::vector<VertexId> delta_ids;
  delta_rows.reserve(overrides.size());
  delta_ids.reserve(overrides.size());
  for (const auto& [id, delta] : overrides) {
    if (delta->action != VectorDelta::Action::kUpsert) continue;
    if (!options.filter.Accepts(id)) continue;
    ++out.delta_candidates;
    delta_rows.push_back(delta->value.data());
    delta_ids.push_back(id);
  }
  if (!delta_rows.empty()) {
    std::vector<float> delta_dists(delta_rows.size());
    const size_t below = ComputeDistanceBatchGather(
        info_.metric, query, delta_rows.data(), info_.dimension,
        delta_rows.size(), delta_dists.data(), threshold);
    if (below > 0) {
      for (size_t i = 0; i < delta_ids.size(); ++i) {
        if (delta_dists[i] < threshold) {
          out.hits.push_back(SearchHit{delta_dists[i], delta_ids[i]});
        }
      }
    }
  }
  std::sort(out.hits.begin(), out.hits.end(),
            [](const SearchHit& a, const SearchHit& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.label < b.label;
            });
  return out;
}

Status EmbeddingSegment::GetEmbedding(VertexId vid, Tid read_tid, float* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (OverriddenLocked(vid, read_tid)) {
    const auto overrides = VisiblePendingLocked(read_tid);
    auto it = overrides.find(vid);
    if (it != overrides.end()) {
      if (it->second->action == VectorDelta::Action::kDelete) {
        return Status::NotFound("embedding for vertex " + std::to_string(vid) +
                                " was deleted");
      }
      std::memcpy(out, it->second->value.data(), info_.dimension * sizeof(float));
      return Status::OK();
    }
  }
  if (index_->Contains(vid) && !index_->IsDeleted(vid)) {
    return index_->GetEmbedding(vid, out);
  }
  return Status::NotFound("no embedding for vertex " + std::to_string(vid));
}

Status EmbeddingSegment::SaveIndexSnapshot(const std::string& path) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto* hnsw = dynamic_cast<const HnswIndex*>(index_.get());
  if (hnsw == nullptr) {
    return Status::Unimplemented("index snapshots are only supported for HNSW");
  }
  return hnsw->SaveToFile(path);
}

Status EmbeddingSegment::AdoptIndexSnapshot(std::unique_ptr<VectorIndex> index,
                                            Tid merged_tid) {
  if (index == nullptr) return Status::InvalidArgument("null index");
  if (index->dim() != info_.dimension) {
    return Status::InvalidArgument("snapshot dimension mismatch");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!pending_.in_memory.empty() || !pending_.sealed.empty()) {
    return Status::InvalidArgument(
        "cannot adopt an index snapshot with pending deltas");
  }
  index_ = std::move(index);
  merged_tid_ = merged_tid;
  return Status::OK();
}

Status EmbeddingSegment::AdoptSealedFile(DeltaFile file) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!pending_.in_memory.empty()) {
    return Status::InvalidArgument(
        "cannot adopt a sealed delta file over in-memory deltas");
  }
  if (file.max_tid <= DurableHorizonLocked()) {
    return Status::InvalidArgument("sealed delta file " + file.path +
                                   " is at or below the durable horizon");
  }
  if (file.base_tid != DurableHorizonLocked()) {
    // The file was sealed against a durable horizon we failed to
    // reconstruct (e.g. its index snapshot was rejected): between the
    // current horizon and base_tid there are deltas only the WAL has, and
    // adopting this file would raise the horizon over them, shadowing the
    // replay. Refuse; the WAL covers this file's contents too.
    return Status::InvalidArgument(
        "sealed delta file " + file.path + " is not contiguous with the " +
        "recovered durable horizon");
  }
  for (const VectorDelta& d : file.deltas) {
    pending_.first_pending_tid.try_emplace(d.id, d.tid);
  }
  pending_.sealed.push_back(std::move(file));
  TV_COUNTER_INC("tv.recovery.delta_files_adopted_total");
  return Status::OK();
}

Tid EmbeddingSegment::DurableHorizonLocked() const {
  return pending_.sealed.empty()
             ? merged_tid_
             : std::max(merged_tid_, pending_.sealed.back().max_tid);
}

Tid EmbeddingSegment::durable_horizon() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return DurableHorizonLocked();
}

Tid EmbeddingSegment::merged_tid() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return merged_tid_;
}

size_t EmbeddingSegment::pending_delta_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t count = pending_.in_memory.size();
  for (const DeltaFile& f : pending_.sealed) count += f.deltas.size();
  return count;
}

size_t EmbeddingSegment::in_memory_delta_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return pending_.in_memory.size();
}

size_t EmbeddingSegment::sealed_file_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return pending_.sealed.size();
}

size_t EmbeddingSegment::index_size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return index_->size();
}

std::shared_ptr<const VectorIndex> EmbeddingSegment::index() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return index_;
}

}  // namespace tigervector

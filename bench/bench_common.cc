#include "bench/bench_common.h"

#include <cstring>

#include "obs/metrics.h"
#include "util/slowlog.h"
#include "util/timer.h"

namespace tigervector::bench {

namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

std::string g_metrics_out;

void WriteMetricsSnapshot() {
  if (g_metrics_out.empty()) return;
  FILE* f = std::fopen(g_metrics_out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for metrics snapshot\n",
                 g_metrics_out.c_str());
    return;
  }
  const std::string json = obs::MetricsRegistry::Global().RenderJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "bench: wrote metrics snapshot to %s\n",
               g_metrics_out.c_str());
}

}  // namespace

void InitBench(int argc, char** argv) {
  constexpr char kFlag[] = "--metrics-out=";
  constexpr char kSlowlogFlag[] = "--slowlog-out=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      g_metrics_out = argv[i] + sizeof(kFlag) - 1;
      std::atexit(WriteMetricsSnapshot);
    } else if (std::strncmp(argv[i], kSlowlogFlag, sizeof(kSlowlogFlag) - 1) == 0) {
      // Queries exceeding the flight recorder's slow threshold are appended
      // to this file as JSONL while the bench runs.
      Status st = InstallSlowLogFile(argv[i] + sizeof(kSlowlogFlag) - 1);
      if (!st.ok()) {
        std::fprintf(stderr, "bench: slowlog install failed: %s\n",
                     st.ToString().c_str());
      }
      std::atexit(CloseSlowLog);
    }
  }
}

size_t BaseN() { return EnvSize("TV_BENCH_N", 20000); }
size_t QueryN() { return EnvSize("TV_BENCH_Q", 50); }
size_t ClientThreads() { return EnvSize("TV_BENCH_THREADS", 16); }

TigerVectorInstance LoadTigerVector(const VectorDataset& dataset,
                                    uint32_t segment_capacity, size_t m,
                                    size_t ef_construction, QuantOption quant) {
  TigerVectorInstance instance;
  Database::Options options;
  options.store.segment_capacity = segment_capacity;
  options.embeddings.index_params.m = m;
  options.embeddings.index_params.ef_construction = ef_construction;
  options.num_threads = 4;
  instance.db = std::make_unique<Database>(options);

  EmbeddingTypeInfo info;
  info.dimension = dataset.dim;
  info.model = "bench";
  info.metric = dataset.metric;
  info.quant = quant;
  auto vt = instance.db->schema()->CreateVertexType("Item", {});
  if (!vt.ok()) std::abort();
  if (!instance.db->schema()->AddEmbeddingAttr("Item", "emb", info).ok()) {
    std::abort();
  }

  // Data load: batched transactions writing vertices + vector deltas (the
  // "Data Load" phase of Table 2).
  Timer load_timer;
  const size_t batch = 2048;
  instance.vids.reserve(dataset.num_base);
  for (size_t begin = 0; begin < dataset.num_base; begin += batch) {
    Transaction txn = instance.db->Begin();
    const size_t end = std::min(dataset.num_base, begin + batch);
    for (size_t i = begin; i < end; ++i) {
      auto vid = txn.InsertVertex("Item", {});
      if (!vid.ok()) std::abort();
      std::vector<float> v(dataset.BaseVector(i), dataset.BaseVector(i) + dataset.dim);
      if (!txn.SetEmbedding(*vid, "Item", "emb", std::move(v)).ok()) std::abort();
      instance.vids.push_back(*vid);
    }
    if (!txn.Commit().ok()) std::abort();
  }
  instance.load_seconds = load_timer.ElapsedSeconds();

  // Index build: the two-stage vacuum folds every delta into the
  // per-segment HNSW indexes ("Index Build" phase of Table 2).
  Timer build_timer;
  if (!instance.db->Vacuum().ok()) std::abort();
  instance.build_seconds = build_timer.ElapsedSeconds();
  return instance;
}

double HitsRecall(const VectorDataset& dataset, size_t q,
                  const std::vector<SearchHit>& hits, size_t k) {
  std::vector<uint64_t> ids;
  ids.reserve(hits.size());
  for (const SearchHit& hit : hits) ids.push_back(hit.label);
  return RecallAtK(dataset, q, ids, k);
}

double MeasureRecall(const VectorDataset& dataset,
                     const TigerVectorInstance& instance, size_t k, size_t ef) {
  RecallMeter meter;
  for (size_t q = 0; q < dataset.num_queries; ++q) {
    VectorSearchRequest request;
    request.attrs = {{"Item", "emb"}};
    request.query = dataset.QueryVector(q);
    request.k = k;
    request.ef = ef;
    request.pool = instance.db->pool();
    auto result = instance.db->embeddings()->TopKSearch(request);
    if (!result.ok()) std::abort();
    // vids are allocated sequentially from 0 in load order, so the vid IS
    // the base index here.
    meter.Add(HitsRecall(dataset, q, result->hits, k));
  }
  return meter.Mean();
}

ThroughputPoint MeasureTigerVector(const VectorDataset& dataset,
                                   const TigerVectorInstance& instance, size_t k,
                                   size_t ef, size_t threads,
                                   size_t queries_per_thread) {
  ThroughputPoint point;
  point.ef = ef;
  point.recall = MeasureRecall(dataset, instance, k, ef);
  auto result = RunClosedLoop(threads, queries_per_thread, [&](size_t t, size_t i) {
    VectorSearchRequest request;
    request.attrs = {{"Item", "emb"}};
    request.query = dataset.QueryVector((t * 131 + i) % dataset.num_queries);
    request.k = k;
    request.ef = ef;
    // Closed-loop clients provide inter-query parallelism; segments run
    // sequentially within one query here (matching a saturated server).
    auto r = instance.db->embeddings()->TopKSearch(request);
    if (!r.ok()) std::abort();
  });
  point.qps = result.qps;
  point.mean_latency_ms = result.mean_latency_ms;
  point.p99_latency_ms = result.p99_ms;
  return point;
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintRow(const std::vector<std::string>& cells) {
  for (const auto& cell : cells) std::printf("%-14s", cell.c_str());
  std::printf("\n");
}

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace tigervector::bench

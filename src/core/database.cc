#include "core/database.h"

#include "embedding/embedding_type.h"
#include "simd/distance.h"
#include "simd/sq8.h"

namespace tigervector {

Database::Database(Options options) : options_(std::move(options)) {
  // Resolve the distance-kernel dispatch and quantization mode up front so
  // the selected ISA / TV_QUANT choice is logged (and the tv.simd.isa /
  // tv.quant.mode gauges set) at open time, not on the first search.
  simd::ActiveIsa();
  simd::ActiveQuantMode();
  cache_ = std::make_unique<cache::QueryCache>(options_.cache);
  store_ = std::make_unique<GraphStore>(&schema_, options_.store);
  embeddings_ = std::make_unique<EmbeddingService>(store_.get(), options_.embeddings);
  store_->SetEmbeddingSink(embeddings_.get());
  pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  if (options_.num_servers > 1) {
    Cluster::Options copts;
    copts.num_servers = options_.num_servers;
    copts.threads_per_server = options_.threads_per_server;
    cluster_ = std::make_unique<Cluster>(store_.get(), embeddings_.get(), copts);
  }
}

Result<Database::RecoveryReport> Database::Recover(const RecoveryOptions& options) {
  RecoveryReport report;
  // Snapshots first: they raise each segment's durable horizon so the WAL
  // replay below skips already-captured deltas.
  if (!options.snapshot_dir.empty()) {
    TV_RETURN_NOT_OK(
        embeddings_->RecoverSnapshots(options.snapshot_dir, &report.embeddings));
  }
  // Then sealed delta files, which extend the horizon past the snapshots.
  const std::string& delta_dir =
      options.delta_dir.empty() ? options_.embeddings.delta_dir : options.delta_dir;
  if (!delta_dir.empty()) {
    TV_RETURN_NOT_OK(embeddings_->RecoverDeltaFiles(delta_dir, &report.embeddings));
  }
  // WAL last: the source of truth. It is never pruned, so everything the
  // adopted artifacts missed (including everything, when none were usable)
  // is re-derived here.
  const std::string& wal_path =
      options.wal_path.empty() ? options_.store.wal_path : options.wal_path;
  if (!wal_path.empty()) {
    auto info = store_->RecoverWal(wal_path, options.truncate_torn_wal);
    if (!info.ok()) return info.status();
    report.wal_records_replayed = info->records;
    report.recovered_tid = info->max_tid;
    report.wal_truncated = info->truncated;
    report.wal_valid_bytes = info->valid_bytes;
  }
  return report;
}

Result<size_t> Database::Vacuum() {
  TV_RETURN_NOT_OK(embeddings_->RunDeltaMerge().status());
  // The index merge is the expensive stage; use the adaptive thread count
  // so foreground queries stay responsive.
  (void)embeddings_->SuggestVacuumThreads();
  auto merged = embeddings_->RunIndexMerge(pool_.get());
  if (!merged.ok()) return merged.status();
  store_->VacuumGraph();
  return *merged;
}

Result<VertexSet> Database::VectorSearch(
    const std::vector<std::pair<std::string, std::string>>& attrs,
    const std::vector<float>& query, size_t k, const VectorSearchFnOptions& options) {
  // Drop attributes whose vertex type the role cannot read (their vectors
  // are "unauthorized", paper Sec. 5.1); fail only when nothing remains.
  std::vector<std::pair<std::string, std::string>> permitted;
  const EmbeddingAttrDef* first_def = nullptr;
  std::string first_name;
  for (const auto& [type_name, attr] : attrs) {
    auto vt = schema_.GetVertexType(type_name);
    if (!vt.ok()) return vt.status();
    const EmbeddingAttrDef* def = (*vt)->FindEmbeddingAttr(attr);
    if (def != nullptr) {
      // Cross-attribute compatibility is a semantic property of the query
      // and is reported before any per-attribute validation (Sec. 4.1).
      if (first_def == nullptr) {
        first_def = def;
        first_name = type_name + "." + attr;
      } else {
        Status st = CheckCompatible(first_def->info, def->info);
        if (!st.ok()) {
          return Status::SemanticError("attributes " + first_name + " and " +
                                       type_name + "." + attr +
                                       " are not compatible: " + st.message());
        }
      }
      // Reject a query vector of the wrong dimensionality up front; the
      // search layer below only sees a raw pointer and would read past it.
      if (def->info.dimension != query.size()) {
        return Status::InvalidArgument(
            "query vector dimension " + std::to_string(query.size()) +
            " does not match " + type_name + "." + attr + " dimension " +
            std::to_string(def->info.dimension));
      }
    }
    if (access_.CanRead(options.role, (*vt)->id)) {
      permitted.emplace_back(type_name, attr);
    }
  }
  if (permitted.empty()) {
    return Status::InvalidArgument("permission denied: role '" + options.role +
                                   "' cannot read any requested vertex type");
  }
  VectorSearchRequest request;
  request.attrs = std::move(permitted);
  request.query = query.data();
  request.k = k;
  request.ef = options.ef;
  request.rerank_factor = options.rerank_factor;
  request.pool = pool_.get();
  // Pin the MVCC horizon once, before any per-attribute work: every segment
  // search answers at exactly this tid and the result cache keys on it.
  request.read_tid =
      options.read_tid != kMaxTid ? options.read_tid : store_->visible_tid();
  // The candidate set is fingerprinted once per search (it is the same for
  // every attribute); the O(vid_upper_bound) bitmap materialization is
  // deferred into the miss path so a warm cache hit skips it entirely.
  cache::Fingerprint filter_fp;
  Bitmap filter_bitmap;
  std::function<Status()> materialize;
  if (options.filter != nullptr) {
    filter_fp = cache::FingerprintIdSetUnordered(*options.filter);
    materialize = [&]() {
      filter_bitmap = VertexSetToBitmap(*options.filter, store_->vid_upper_bound());
      request.filter = FilterView(&filter_bitmap);
      return Status::OK();
    };
  }
  auto result = CachedTopK(request, query.size(), filter_fp, options.bypass_cache,
                           materialize, options.mpp_stats, options.cache_outcome);
  if (!result.ok()) return result.status();
  if (options.result_stats != nullptr) *options.result_stats = *result;
  VertexSet out;
  for (const SearchHit& hit : result->hits) {
    out.insert(hit.label);
    if (options.distance_map != nullptr) {
      (*options.distance_map)[hit.label] = hit.distance;
    }
  }
  return out;
}

Result<VectorSearchResult> Database::CachedTopK(
    VectorSearchRequest& request, size_t query_dim,
    const cache::Fingerprint& filter_fp, bool bypass_cache,
    const std::function<Status()>& materialize_filter,
    Cluster::DistributedStats* mpp_stats, cache::Outcome* outcome) {
  // With a simulated MPP cluster the search scatters to the logical servers
  // and gathers their local top-k lists; the merge invariant keeps the
  // result bit-identical to the single-node path, so both share one cache.
  auto run = [&]() -> Result<VectorSearchResult> {
    if (materialize_filter != nullptr) TV_RETURN_NOT_OK(materialize_filter());
    return cluster_ != nullptr ? cluster_->DistributedTopK(request, mpp_stats)
                               : embeddings_->TopKSearch(request);
  };
  if (outcome != nullptr) *outcome = cache::Outcome::kBypass;
  // A search overlapping a structural change (vacuum merge, rebuild) can
  // observe a half-merged index; such answers are neither served from nor
  // admitted to the cache.
  if (bypass_cache || !cache_->enabled() || request.read_tid == kMaxTid ||
      !embeddings_->structure_stable()) {
    return run();
  }
  cache::Fingerprint fp;
  for (const auto& [type_name, attr] : request.attrs) {
    fp = cache::CombineFingerprints(fp, cache::FingerprintString(type_name));
    fp = cache::CombineFingerprints(fp, cache::FingerprintString(attr));
  }
  fp = cache::CombineFingerprints(
      fp, cache::FingerprintBytes(request.query, query_dim * sizeof(float)));
  fp = cache::CombineFingerprint(fp, request.k);
  fp = cache::CombineFingerprint(fp, request.ef);
  fp = cache::CombineFingerprint(fp, request.bruteforce_threshold);
  // Quantized and exact scans return different (both correct) approximate
  // answers, and the rerank budget shapes the quantized one — salt the key
  // with both so TV_QUANT / rerank_factor A/B runs never share entries.
  fp = cache::CombineFingerprint(
      fp, static_cast<uint64_t>(simd::ActiveQuantMode()));
  fp = cache::CombineFingerprint(fp, request.rerank_factor != 0
                                         ? request.rerank_factor
                                         : simd::DefaultRerankFactor());
  const uint64_t structure_version = embeddings_->structure_version();
  const cache::CacheKey key =
      cache::TopKKey(fp, filter_fp, request.read_tid, structure_version);
  if (cache::QueryCache::TopKPtr entry = cache_->LookupTopK(key)) {
    if (outcome != nullptr) *outcome = cache::Outcome::kHit;
    VectorSearchResult cached;
    cached.hits.reserve(entry->hits.size());
    for (const auto& [distance, vid] : entry->hits) {
      cached.hits.push_back(SearchHit{distance, vid});
    }
    cached.segments_searched = entry->segments_searched;
    cached.bruteforce_segments = entry->bruteforce_segments;
    cached.delta_candidates = entry->delta_candidates;
    cached.quant_segments = entry->quant_segments;
    cached.reranked = entry->reranked;
    return cached;
  }
  if (outcome != nullptr) *outcome = cache::Outcome::kMiss;
  auto result = run();
  if (!result.ok()) return result;
  // Admit only if no structural change raced with the computation; the
  // version re-check pairs with the end-of-operation bump in the service.
  if (embeddings_->structure_stable() &&
      embeddings_->structure_version() == structure_version) {
    auto entry = std::make_shared<cache::QueryCache::TopKEntry>();
    entry->hits.reserve(result->hits.size());
    for (const SearchHit& hit : result->hits) {
      entry->hits.emplace_back(hit.distance, hit.label);
    }
    entry->segments_searched = result->segments_searched;
    entry->bruteforce_segments = result->bruteforce_segments;
    entry->delta_candidates = result->delta_candidates;
    entry->quant_segments = result->quant_segments;
    entry->reranked = result->reranked;
    cache_->InsertTopK(key, std::move(entry));
  }
  return result;
}

}  // namespace tigervector

# Empty dependencies file for tv_baselines.
# This may be replaced when dependencies are built.

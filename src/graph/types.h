#ifndef TIGERVECTOR_GRAPH_TYPES_H_
#define TIGERVECTOR_GRAPH_TYPES_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace tigervector {

// Global vertex id. One id space spans all vertex types; the segment of a
// vertex is vid / segment_capacity, its offset within the segment is
// vid % segment_capacity. Vector indexes use the vid as the label, which is
// what lets the engine's vertex-status bitmap double as the index filter.
using VertexId = uint64_t;
using VertexTypeId = uint16_t;
using EdgeTypeId = uint16_t;
using SegmentId = uint32_t;

// Transaction id. Monotonically increasing; a committed transaction's
// effects are visible to readers whose read_tid >= its tid.
using Tid = uint64_t;

constexpr VertexId kInvalidVertexId = UINT64_MAX;
constexpr Tid kMaxTid = UINT64_MAX;

// Scalar attribute types supported on vertices (embedding attributes are
// managed separately by the embedding service; see embedding/).
enum class AttrType : uint8_t { kInt = 0, kDouble = 1, kString = 2, kBool = 3 };

// Runtime attribute value.
using Value = std::variant<int64_t, double, std::string, bool>;

// Returns a debug string such as "42", "3.5", "\"abc\"", "true".
std::string ValueToString(const Value& v);

// Three-way-ish comparisons used by predicate evaluation. Comparing values
// of different alternatives (other than int/double promotion) returns false.
bool ValueEquals(const Value& a, const Value& b);
bool ValueLess(const Value& a, const Value& b);

struct AttrDef {
  std::string name;
  AttrType type;
};

enum class Direction : uint8_t { kOut = 0, kIn = 1, kAny = 2 };

}  // namespace tigervector

#endif  // TIGERVECTOR_GRAPH_TYPES_H_

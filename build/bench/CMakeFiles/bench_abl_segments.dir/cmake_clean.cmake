file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_segments.dir/bench_abl_segments.cc.o"
  "CMakeFiles/bench_abl_segments.dir/bench_abl_segments.cc.o.d"
  "bench_abl_segments"
  "bench_abl_segments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Ablation (Sec. 5.1 optimization): brute-force fallback for highly
// selective filters. When the predicate bitmap leaves very few valid
// points in a segment, scanning them exactly beats forcing the index to
// dig past mostly-filtered-out neighbors. This sweep compares filtered
// search latency with the threshold enabled vs disabled across filter
// sizes.
#include "bench/bench_common.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace tigervector;
using namespace tigervector::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv);
  const size_t n = BaseN();
  const size_t nq = std::min<size_t>(QueryN(), 30);
  const size_t k = 10;
  VectorDataset dataset = MakeSiftLike(n, nq);
  auto instance = LoadTigerVector(dataset);

  PrintHeader("Ablation: brute-force threshold for selective filters (k=" +
              std::to_string(k) + ")");
  PrintRow({"valid points", "with bf ms", "without bf ms", "speedup"});

  Rng rng(23);
  for (size_t valid_target : {8u, 32u, 128u, 1024u, 8192u}) {
    if (valid_target > n) continue;
    Bitmap bitmap(instance.db->store()->vid_upper_bound());
    for (size_t v = 0; v < valid_target; ++v) {
      bitmap.Set(instance.vids[rng.NextBounded(n)]);
    }
    auto measure = [&](size_t threshold) {
      Timer timer;
      for (size_t q = 0; q < nq; ++q) {
        VectorSearchRequest request;
        request.attrs = {{"Item", "emb"}};
        request.query = dataset.QueryVector(q);
        request.k = k;
        request.ef = 128;
        request.filter = FilterView(&bitmap);
        request.bruteforce_threshold = threshold;
        if (!instance.db->embeddings()->TopKSearch(request).ok()) std::abort();
      }
      return timer.ElapsedMillis() / nq;
    };
    // threshold=1 effectively disables the fallback (no segment has < 1
    // valid point once any are set); the default enables it.
    const double with_bf = measure(instance.db->embeddings()->options()
                                       .bruteforce_threshold);
    const double without_bf = measure(1);
    PrintRow({std::to_string(valid_target), Fmt(with_bf, 3), Fmt(without_bf, 3),
              Fmt(without_bf / with_bf, 2) + "x"});
  }
  return 0;
}
